package flashroute

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
)

// clusterGridSim builds the lockstep environment of the cluster
// equivalence grid: every timing- and flow-dependent topology feature is
// disabled, so the discovered set is a pure function of the probe set
// and the Doubletree closure argument of DESIGN.md §13 applies exactly.
func clusterGridSim(seed int64) *Simulation {
	return NewSimulation(SimConfig{
		Blocks:   2048,
		Seed:     seed,
		Lockstep: true,
		Mutate: func(p *netsim.Params) {
			p.DiamondProb = 0
			p.RegionDiamondProb = 0
			p.LoopStubProb = 0
			p.MiddleboxTTLResetProb = 0
			p.AddrRewriteStubProb = 0
			p.ApplianceProb = 0
			p.BalancedHopProb = 0
		},
	})
}

// clusterGridConfig disables preprobing: proximity-span prediction
// couples a block's split point to its neighbors' measurements, which
// straddle shard boundaries — the one engine feature whose outcome
// depends on which other destinations share the process.
func clusterGridConfig() Config {
	cfg := DefaultConfig()
	cfg.Preprobe = PreprobeOff
	cfg.CollectRoutes = true
	return cfg
}

// deepInterfaces collects the router interfaces seen at depth ≥ 2.
// TTL-1 hops are each vantage's private attachment link — workers
// 1..K-1 see their synthetic ingress and only vantage 0 can see the
// real first hop — so depth-1 interfaces are legitimately
// vantage-dependent and excluded from the cross-K invariant.
func deepInterfaces(fn func(func(*Route))) map[uint32]bool {
	set := make(map[uint32]bool)
	fn(func(r *Route) {
		for _, h := range r.Hops {
			if h.TTL >= 2 && h.Addr != r.Dst {
				set[h.Addr] = true
			}
		}
	})
	return set
}

func reachedSetCluster(res *ClusterResult) map[uint32]bool {
	set := make(map[uint32]bool)
	res.ForEachRoute(func(r *Route) {
		if r.Reached {
			set[r.Dst] = true
		}
	})
	return set
}

func sameAddrSet(t *testing.T, what string, got, want map[uint32]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for a := range want {
		if !got[a] {
			t.Errorf("%s: missing %s", what, FormatAddr(a))
			return
		}
	}
	for a := range got {
		if !want[a] {
			t.Errorf("%s: extra %s", what, FormatAddr(a))
			return
		}
	}
}

// TestClusterWorker1BitIdentical pins worker-count-1 against the plain
// single-process scan: same probes, byte-identical routes.
func TestClusterWorker1BitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		cfg := clusterGridConfig()

		base, err := clusterGridSim(seed).Scan(cfg)
		if err != nil {
			t.Fatalf("seed %d: plain scan: %v", seed, err)
		}
		cl, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: cluster scan: %v", seed, err)
		}

		if cl.Probes() != base.Probes() {
			t.Errorf("seed %d: cluster probes %d, plain %d", seed, cl.Probes(), base.Probes())
		}
		if cl.InterfaceCount() != base.InterfaceCount() {
			t.Errorf("seed %d: cluster interfaces %d, plain %d",
				seed, cl.InterfaceCount(), base.InterfaceCount())
		}
		var bj, cj bytes.Buffer
		if err := base.WriteJSONL(&bj); err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteJSONL(&cj); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bj.Bytes(), cj.Bytes()) {
			t.Errorf("seed %d: cluster K=1 routes differ from the plain scan", seed)
		}
	}
}

// TestClusterGridInvariant pins the tentpole's merge guarantee: across
// worker counts {1,2,4}, the merged reached set is identical and the
// merged interface set is identical modulo each worker's private
// first-hop ingress interface.
func TestClusterGridInvariant(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		cfg := clusterGridConfig()

		var wantReached, wantIfaces map[uint32]bool
		var baseProbes uint64
		for _, workers := range []int{1, 2, 4} {
			res, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if res.Interrupted() {
				t.Fatalf("seed %d workers %d: unexpectedly interrupted", seed, workers)
			}
			if got := len(res.Workers()); got != workers {
				t.Fatalf("seed %d workers %d: %d worker loops reported", seed, workers, got)
			}
			reached := reachedSetCluster(res)
			ifaces := deepInterfaces(res.ForEachRoute)
			if workers == 1 {
				wantReached, wantIfaces, baseProbes = reached, ifaces, res.Probes()
				continue
			}
			sameAddrSet(t, "reached", reached, wantReached)
			sameAddrSet(t, "interfaces", ifaces, wantIfaces)
			if res.StopPublished() == 0 || res.StopReceived() == 0 {
				t.Errorf("seed %d workers %d: no stop-set exchange (published %d, received %d)",
					seed, workers, res.StopPublished(), res.StopReceived())
			}
			t.Logf("seed %d workers %d: probes %d (K=1: %d), published %d, received %d, multipaths %d",
				seed, workers, res.Probes(), baseProbes,
				res.StopPublished(), res.StopReceived(), len(res.MultiPaths()))
		}
	}
}

// TestClusterGridInvariant6 is the IPv6 half of the grid: the v6
// topology is purely tiered (no diamonds, loops or middleboxes), so
// lockstep plus preprobe-off is the whole environment.
func TestClusterGridInvariant6(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		cfg := Config6{PreprobeOff: true, CollectRoutes: true}

		newSim := func() *Simulation6 {
			return NewSimulation6(Sim6Config{
				Prefixes: 300, TargetsPerPrefix: 4, Seed: seed, Lockstep: true,
			})
		}

		var wantReached, wantIfaces map[Addr6]bool
		for _, workers := range []int{1, 2, 4} {
			res, err := newSim().ScanCluster(cfg, ClusterOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			reached := make(map[Addr6]bool)
			res.ForEachRoute(func(r *Route6) {
				if r.Reached {
					reached[r.Dst] = true
				}
			})
			// Same depth ≥ 2 rule as v4: TTL-1 hops are the
			// vantage-private attachment links.
			ifaces := make(map[Addr6]bool)
			res.ForEachRoute(func(r *Route6) {
				for _, h := range r.Hops {
					if h.TTL >= 2 && h.Addr != r.Dst {
						ifaces[h.Addr] = true
					}
				}
			})
			if workers == 1 {
				if len(reached) == 0 {
					t.Fatalf("seed %d: baseline reached nothing", seed)
				}
				wantReached, wantIfaces = reached, ifaces
				continue
			}
			if len(reached) != len(wantReached) {
				t.Errorf("seed %d workers %d: reached %d targets, want %d",
					seed, workers, len(reached), len(wantReached))
			}
			for a := range wantReached {
				if !reached[a] {
					t.Errorf("seed %d workers %d: target %v not reached", seed, workers, a)
					break
				}
			}
			if len(ifaces) != len(wantIfaces) {
				t.Errorf("seed %d workers %d: %d route interfaces, want %d",
					seed, workers, len(ifaces), len(wantIfaces))
			}
		}
	}
}

// TestClusterWorkerKillMigratesShard pins the work-handoff path: a
// killed worker's shard resumes on a peer vantage via its final
// checkpoint, and the merged discovery still matches an undisturbed run.
func TestClusterWorkerKillMigratesShard(t *testing.T) {
	const seed = 5
	cfg := clusterGridConfig()

	base, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The kill fires from inside the Observer: under the virtual clock a
	// plain goroutine may not get scheduled until the scan is already
	// over, but the probe stream itself is guaranteed to still be live.
	var hptr atomic.Pointer[ClusterHandle]
	var probes atomic.Uint64
	var tried, killOK atomic.Bool
	cfg.Observer = func(dst uint32, ttl uint8, _ time.Duration) {
		if probes.Add(1) < 500 {
			return
		}
		if h := hptr.Load(); h != nil && tried.CompareAndSwap(false, true) {
			killOK.Store(h.KillWorker(1))
		}
	}
	h, err := clusterGridSim(seed).StartClusterScan(context.Background(), cfg,
		ClusterOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	hptr.Store(h)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !tried.Load() || !killOK.Load() {
		t.Fatalf("kill not delivered (tried=%v ok=%v)", tried.Load(), killOK.Load())
	}
	if res.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", res.Migrations())
	}
	if res.Interrupted() {
		t.Fatal("migrated scan reported Interrupted")
	}
	var resumed bool
	for _, w := range res.Workers() {
		if w.Resumed {
			if w.Shard != 1 {
				t.Errorf("resumed loop probed shard %d, want 1", w.Shard)
			}
			if w.Vantage == 1 {
				t.Error("resumed loop kept the killed vantage")
			}
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no worker loop marked Resumed")
	}
	sameAddrSet(t, "reached after migration", reachedSetCluster(res), reachedSetCluster(base))
	sameAddrSet(t, "interfaces after migration",
		deepInterfaces(res.ForEachRoute),
		deepInterfaces(base.ForEachRoute))
}
