package flashroute

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
)

// This file is the chaos half of the cluster test suite (DESIGN.md §15):
// instead of killing workers by hand (TestClusterWorkerKillMigratesShard),
// these tests inject vantage-scoped transport fault windows and hub
// faults and assert the coordinator heals the scan on its own — the
// merged discovery must equal an undisturbed run, with the failure
// accounting (Failures, Migrations, StopSetDegraded) matching what was
// injected.

// clusterChaosSim is clusterGridSim plus a deterministic fault schedule:
// the same lockstep environment as the equivalence grid, so discovery
// equality against an undisturbed run is exact, with transport-fault
// windows layered on top (they draw nothing from the impairment RNG, so
// probing outside the windows is untouched).
func clusterChaosSim(seed int64, faults []FaultWindow) *Simulation {
	return NewSimulation(SimConfig{
		Blocks:   2048,
		Seed:     seed,
		Lockstep: true,
		Impair:   Impairments{Faults: faults},
		Mutate: func(p *netsim.Params) {
			p.DiamondProb = 0
			p.RegionDiamondProb = 0
			p.LoopStubProb = 0
			p.MiddleboxTTLResetProb = 0
			p.AddrRewriteStubProb = 0
			p.ApplianceProb = 0
			p.BalancedHopProb = 0
		},
	})
}

// chaosGridDuration approximates how long the grid scan's probing phase
// lasts on the virtual clock (the reported ScanTime additionally drags
// out over rate-limited late deliveries, which carry no discovery).
// Fault windows are placed at fractions of this span.
const chaosGridDuration = 20 * time.Second

// TestClusterChaosFlapMigrates kills one of three workers by flapping
// its vantage link at 25/50/75% of the scan — an open-ended outage the
// worker cannot outwait. The engine's send-error abort surfaces the
// dead transport with a final checkpoint, the coordinator migrates the
// shard to a surviving vantage with no manual intervention, and the
// merged discovery equals an undisturbed run.
func TestClusterChaosFlapMigrates(t *testing.T) {
	const seed = 5
	cfg := clusterGridConfig()
	base, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		start := time.Duration(float64(chaosGridDuration) * frac)
		sim := clusterChaosSim(seed, []FaultWindow{{
			Kind: FaultFlap, Start: start, Duration: time.Hour,
			Scoped: true, Vantage: 1,
		}})
		res, err := sim.ScanCluster(cfg, ClusterOptions{
			Workers: 3,
			// Abort on the first failed write: the outage is permanent, so
			// limping through it can only lose discovery.
			AbortOnSendErrors: 1,
		})
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if res.Interrupted() {
			t.Fatalf("frac %v: healed scan reported Interrupted", frac)
		}
		if res.Migrations() != 1 {
			t.Fatalf("frac %v: Migrations = %d, want 1", frac, res.Migrations())
		}
		fails := res.Failures()
		if len(fails) != 1 {
			t.Fatalf("frac %v: Failures = %v, want exactly one", frac, fails)
		}
		if f := fails[0]; f.Shard != 1 || f.Vantage != 1 || f.Cause != ClusterCauseTransport {
			t.Errorf("frac %v: failure = %+v, want shard 1 vantage 1 cause transport", frac, f)
		}
		if ab := res.Abandoned(); len(ab) != 0 {
			t.Errorf("frac %v: abandoned shards %v, want none", frac, ab)
		}
		var resumed bool
		for _, w := range res.Workers() {
			if w.Resumed {
				resumed = true
				if w.Shard != 1 {
					t.Errorf("frac %v: resumed loop probed shard %d, want 1", frac, w.Shard)
				}
				if w.Vantage == 1 {
					t.Errorf("frac %v: resumed loop kept the flapped vantage", frac)
				}
			}
		}
		if !resumed {
			t.Fatalf("frac %v: no worker loop marked Resumed", frac)
		}
		sameAddrSet(t, "reached after auto-migration", reachedSetCluster(res), reachedSetCluster(base))
		sameAddrSet(t, "interfaces after auto-migration",
			deepInterfaces(res.ForEachRoute), deepInterfaces(base.ForEachRoute))
	}
}

// TestClusterChaosWatchdogStall exercises the other detection path: with
// the send-error abort disabled, a flapped worker makes no progress on
// either its probe counter or its reply stream, the progress watchdog
// declares it stalled, and the shard migrates just the same.
func TestClusterChaosWatchdogStall(t *testing.T) {
	const seed = 5
	cfg := clusterGridConfig()
	base, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim := clusterChaosSim(seed, []FaultWindow{{
		Kind: FaultFlap, Start: chaosGridDuration / 2, Duration: time.Hour,
		Scoped: true, Vantage: 1,
	}})
	res, err := sim.ScanCluster(cfg, ClusterOptions{
		Workers:           3,
		WatchdogTimeout:   2 * time.Second,
		AbortOnSendErrors: -1, // stall detection must carry the test alone
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted() {
		t.Fatal("healed scan reported Interrupted")
	}
	if res.Migrations() < 1 {
		t.Fatalf("Migrations = %d, want >= 1", res.Migrations())
	}
	fails := res.Failures()
	if len(fails) == 0 {
		t.Fatal("no worker failures recorded")
	}
	if f := fails[0]; f.Shard != 1 || f.Vantage != 1 || f.Cause != ClusterCauseStall {
		t.Errorf("first failure = %+v, want shard 1 vantage 1 cause stall", f)
	}
	if ab := res.Abandoned(); len(ab) != 0 {
		t.Errorf("abandoned shards %v, want none", ab)
	}
	sameAddrSet(t, "reached after watchdog migration", reachedSetCluster(res), reachedSetCluster(base))
	sameAddrSet(t, "interfaces after watchdog migration",
		deepInterfaces(res.ForEachRoute), deepInterfaces(base.ForEachRoute))
}

// TestClusterHubDegradationRecovers injects publish/drain failures into
// the stop-set hub for one worker mid-scan. The worker must degrade to
// local-only Doubletree mode (counted in StopSetDegraded), recover with
// a catch-up drain once the hub heals, and — because remote stop-set
// entries only ever suppress redundant probing — the merged discovery
// must still equal an undisturbed run, with no migrations at all.
func TestClusterHubDegradationRecovers(t *testing.T) {
	const seed = 5
	cfg := clusterGridConfig()
	base, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ops atomic.Uint64
	hubDown := errors.New("injected hub outage")
	res, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{
		Workers: 3,
		HubFaultHook: func(op string, worker int) error {
			if worker != 0 {
				return nil
			}
			// Worker 0 loses the hub for a window of its own hub
			// operations: long enough to straddle several publish batches,
			// with traffic on both sides.
			if n := ops.Add(1); n >= 3 && n < 40 {
				return hubDown
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted() {
		t.Fatal("degraded scan reported Interrupted")
	}
	if res.StopSetDegraded() == 0 {
		t.Fatal("StopSetDegraded = 0, want at least one degradation episode")
	}
	if res.Migrations() != 0 || len(res.Failures()) != 0 {
		t.Errorf("hub degradation caused worker failures: migrations=%d failures=%v",
			res.Migrations(), res.Failures())
	}
	if res.StopPublished() == 0 {
		t.Error("no stop-set entries published despite recovery")
	}
	sameAddrSet(t, "reached under hub degradation", reachedSetCluster(res), reachedSetCluster(base))
	sameAddrSet(t, "interfaces under hub degradation",
		deepInterfaces(res.ForEachRoute), deepInterfaces(base.ForEachRoute))
}

// TestClusterSetRateKillRace is the race pin for the coordinator's
// control surface: SetRate retargets and KillWorker fire concurrently
// with in-flight migrations (run under -race in CI). The rate must
// stick to relaunched loops, a kill landing on an already-finished or
// already-migrating loop must be a clean no-op, and the merged
// discovery still equals an undisturbed run.
func TestClusterSetRateKillRace(t *testing.T) {
	const seed = 5
	cfg := clusterGridConfig()
	base, err := clusterGridSim(seed).ScanCluster(cfg, ClusterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var hptr atomic.Pointer[ClusterHandle]
	var probes atomic.Uint64
	cfg.Observer = func(dst uint32, ttl uint8, _ time.Duration) {
		h := hptr.Load()
		if h == nil {
			return
		}
		switch n := probes.Add(1); {
		case n == 400:
			h.KillWorker(1)
		case n == 401:
			// Immediately racing the in-flight migration of shard 1:
			// retarget the rate (must propagate to the relaunched loop) and
			// fire a redundant kill (must not double-migrate).
			h.SetRate(40_000)
			h.KillWorker(1)
		case n == 900:
			h.KillWorker(2)
			h.SetRate(120_000)
		case n%250 == 0:
			h.SetRate(60_000 + int(n))
		}
	}
	h, err := clusterGridSim(seed).StartClusterScan(context.Background(), cfg,
		ClusterOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	hptr.Store(h)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted() {
		t.Fatal("scan reported Interrupted")
	}
	if res.Migrations() < 1 {
		t.Fatalf("Migrations = %d, want >= 1", res.Migrations())
	}
	for _, f := range res.Failures() {
		if f.Cause != ClusterCauseKill {
			t.Errorf("failure %+v: cause %s, want kill", f, f.Cause)
		}
	}
	sameAddrSet(t, "reached under control races", reachedSetCluster(res), reachedSetCluster(base))
	sameAddrSet(t, "interfaces under control races",
		deepInterfaces(res.ForEachRoute), deepInterfaces(base.ForEachRoute))
}
