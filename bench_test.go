package flashroute

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §3). Each benchmark executes the corresponding
// experiment from internal/experiments on a reduced universe and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every artifact's shape. Full-scale runs (and the recorded
// paper-vs-measured numbers) go through cmd/frexperiments; see
// EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/cluster"
	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/experiments"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/trace"
)

// benchBlocks is the universe size for benchmark runs: large enough for
// stable ratios, small enough that the full suite completes in minutes.
const benchBlocks = 8192

func benchScenario(i int) *experiments.Scenario {
	return experiments.NewScenario(benchBlocks, int64(42+i))
}

func BenchmarkFig3HopDistanceAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3HopDistanceAccuracy(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Exact, "%exact")
		b.ReportMetric(100*r.WithinOne, "%within1")
	}
}

func BenchmarkFig4PredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4PredictionAccuracy(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Exact, "%exact")
		b.ReportMetric(100*r.WithinOne, "%within1")
	}
}

func BenchmarkTable1RedundancyElimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1RedundancyElimination(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		var on16, off16 float64
		for _, r := range t.Rows {
			switch r.Name {
			case "split-16/redundancy-removal-on":
				on16 = float64(r.Probes)
			case "split-16/redundancy-removal-off":
				off16 = float64(r.Probes)
			}
		}
		b.ReportMetric(off16/on16, "probe-savings-x")
	}
}

func BenchmarkFig6GapLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure6GapLimit(benchScenario(i), []uint8{0, 2, 5, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t.Rows[2].Interfaces-t.Rows[0].Interfaces), "ifaces-gap0to5")
		b.ReportMetric(float64(t.Rows[3].Interfaces-t.Rows[2].Interfaces), "ifaces-gap5to8")
	}
}

func BenchmarkTable2Preprobing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2Preprobing(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		rows := map[string]experiments.Row{}
		for _, r := range t.Rows {
			rows[r.Name] = r
		}
		b.ReportMetric(float64(rows["32/no preprobing"].Probes)/float64(rows["32/random preprobing"].Probes),
			"fold-savings-x")
	}
}

func BenchmarkTable3ToolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3ToolComparison(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		rows := map[string]experiments.Row{}
		for _, r := range t.Rows {
			rows[r.Name] = r
		}
		fr16, y32 := rows["FlashRoute-16"], rows["Yarrp-32"]
		b.ReportMetric(100*float64(fr16.Probes)/float64(y32.Probes), "%probes-vs-yarrp32")
		b.ReportMetric(float64(y32.ScanTime)/float64(fr16.ScanTime), "speedup-x")
	}
}

func BenchmarkFig7ProbedTTLDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7ProbedTTLDistribution(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		var frMid, scMid float64
		for ttl := 7; ttl <= 14; ttl++ {
			frMid += float64(r.FlashRoute.Counts[ttl])
			scMid += float64(r.Scamper.Counts[ttl])
		}
		b.ReportMetric(scMid/frMid, "scamper-midttl-redundancy-x")
	}
}

func BenchmarkTable4Overprobing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4Overprobing(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		rows := map[string]experiments.OverprobeRow{}
		for _, row := range r.Rows {
			rows[row.Name] = row
		}
		b.ReportMetric(float64(rows["Yarrp-32"].DroppedProbes), "yarrp32-dropped")
		b.ReportMetric(float64(rows["FlashRoute-16"].DroppedProbes), "fr16-dropped")
	}
}

func BenchmarkTable5MaxRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5MaxRate(experiments.NewScenario(4096, int64(42+i)))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "FlashRoute-16" {
				b.ReportMetric(row.MeasuredKpps, "fr16-kpps")
			}
			if row.Name == "Yarrp-32" {
				b.ReportMetric(row.MeasuredKpps, "yarrp32-kpps")
			}
		}
	}
}

// BenchmarkSenderScaling measures the unthrottled probing rate at 1, 2, 4
// and 8 sender goroutines on the Table 5 fast network. The per-K rates are
// reported as custom metrics; allocation reporting keeps the steady-state
// send path honest (the per-probe path must stay allocation-free for the
// rate numbers to mean anything).
func BenchmarkSenderScaling(b *testing.B) {
	b.ReportAllocs()
	counts := []int{1, 2, 4, 8}
	sums := make(map[int]float64)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SenderScaling(
			experiments.NewScenario(4096, int64(42+i)), counts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Interfaces == 0 {
				b.Fatalf("senders=%d discovered no interfaces", row.Senders)
			}
			sums[row.Senders] += row.MeasuredKpps
		}
	}
	for _, k := range counts {
		b.ReportMetric(sums[k]/float64(b.N), fmt.Sprintf("s%d-kpps", k))
	}
}

// BenchmarkReceiverScaling measures the unthrottled probing rate at 1, 2,
// 4 and 8 receive workers with the sender count fixed at 4, on the Table 5
// fast network. R=1 is the classic inline receiver and must be no worse
// than before the pipeline existed; allocation reporting keeps the
// steady-state receive path honest (parse, dispatch and reply processing
// must not allocate per packet).
func BenchmarkReceiverScaling(b *testing.B) {
	b.ReportAllocs()
	counts := []int{1, 2, 4, 8}
	sums := make(map[int]float64)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReceiverScaling(
			experiments.NewScenario(4096, int64(42+i)), 4, counts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Interfaces == 0 {
				b.Fatalf("receivers=%d discovered no interfaces", row.Receivers)
			}
			sums[row.Receivers] += row.MeasuredKpps
		}
	}
	for _, r := range counts {
		b.ReportMetric(sums[r]/float64(b.N), fmt.Sprintf("r%d-kpps", r))
	}
}

// BenchmarkSenderScaling6 is BenchmarkSenderScaling through the IPv6
// instantiation of the generic engine: the sharded sender path must scale
// the same way whatever the address family, and the interface count must
// stay sender-count-invariant.
func BenchmarkSenderScaling6(b *testing.B) {
	b.ReportAllocs()
	counts := []int{1, 2, 4, 8}
	sums := make(map[int]float64)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SenderScaling6(256, 16, int64(42+i), counts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Interfaces == 0 {
				b.Fatalf("senders=%d discovered no interfaces", row.Senders)
			}
			sums[row.Senders] += row.MeasuredKpps
		}
	}
	for _, k := range counts {
		b.ReportMetric(sums[k]/float64(b.N), fmt.Sprintf("s%d-kpps", k))
	}
}

func BenchmarkFig8HitlistJaccard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8HitlistBias(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RandomInterfaces-r.HitlistInterfaces), "iface-deficit")
		b.ReportMetric(r.JaccardByDistance[1], "jaccard-dist1")
	}
}

func BenchmarkD2DiscoveryOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Discovery5_2(benchScenario(i), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.DiscoveryInterfaces-r.YarrpUDPInterfaces), "extra-ifaces")
	}
}

func BenchmarkD3AddressModification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Rewrite5_3(benchScenario(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MismatchFraction(), "%mismatched")
	}
}

// BenchmarkAblationProximitySpan sweeps the §5.4 span exploration.
func BenchmarkAblationProximitySpan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SpanSweep5_4(benchScenario(i), []int{1, 5, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[1].WithinOne, "%within1-span5")
		b.ReportMetric(float64(r.Rows[1].Predicted), "predicted-span5")
	}
}

// benchBatchSim builds a real-clock simulation whose responses are
// immediately deliverable (zero RTT, no ICMP rate limiting) and
// prebuilds one probe packet per block. Per-packet simulation work is
// identical at every batch size, so ns/op differences between the batch
// benchmarks are exactly the per-transport-call costs batching amortizes
// (clock reads, inbox locking, reader wakeups).
func benchBatchSim(blocks int) (*Simulation, *netsim.Conn, [][]byte) {
	sim := NewSimulation(SimConfig{
		Blocks:   blocks,
		Seed:     1,
		RealTime: true,
		Mutate: func(p *netsim.Params) {
			p.BaseRTT, p.PerHopRTT, p.JitterRTT = 0, 0, 0
			p.ICMPRateLimitPPS = 0
		},
	})
	conn := sim.Conn().(*netsim.Conn)
	targets := sim.RandomTargets()
	const stride = 64
	arena := make([]byte, blocks*stride)
	pkts := make([][]byte, blocks)
	for i := 0; i < blocks; i++ {
		buf := arena[i*stride : (i+1)*stride]
		n := probe.BuildFlashProbe(buf, sim.Vantage(), targets(i), 6, false, 0, 0, 33434)
		pkts[i] = buf[:n]
	}
	return sim, conn, pkts
}

// benchBatchCycle pushes packets through one write+drain cycle at the
// given batch size (size 1 uses the classic WritePacket/ReadPacket
// calls) and is shared by BenchmarkBatchWrite and the size sweep.
func benchBatchCycle(b *testing.B, conn *netsim.Conn, batch [][]byte, bufs [][]byte, sizes []int) {
	if len(batch) == 1 && len(bufs) == 1 {
		if err := conn.WritePacket(batch[0]); err != nil {
			b.Fatal(err)
		}
		for conn.Pending() > 0 {
			if _, err := conn.ReadPacket(bufs[0]); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	written := 0
	for written < len(batch) {
		w, err := conn.WriteBatch(batch[written:])
		if err != nil {
			b.Fatal(err)
		}
		written += w
	}
	for conn.Pending() > 0 {
		if _, err := conn.ReadBatch(bufs, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// runBatchBench is the timed loop: ns/op is per packet, so batch sizes
// compare directly. One warmup cycle before the timer sizes the reused
// scratch (send staging, read scratch, inbox) so the steady state stays
// allocation-free.
func runBatchBench(b *testing.B, size int) {
	_, conn, pkts := benchBatchSim(4096)
	defer conn.Close()
	nbuf := size
	if nbuf < 1 {
		nbuf = 1
	}
	bufs := make([][]byte, nbuf)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	sizes := make([]int, nbuf)
	benchBatchCycle(b, conn, pkts[:size], bufs, sizes)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n += size {
		if i+size > len(pkts) {
			i = 0
		}
		benchBatchCycle(b, conn, pkts[i:i+size], bufs, sizes)
		i += size
	}
}

// BenchmarkBatchWrite measures the batched send+drain data path at the
// engine's default arena granularity (32 packets per transport call).
// ns/op is per packet and the steady state must stay at 0 allocs/op.
func BenchmarkBatchWrite(b *testing.B) { runBatchBench(b, 32) }

// BenchmarkBatchSizeSweep compares per-packet data-path cost across
// batch sizes; size 1 is the classic one-packet-per-call path the
// batched sizes are measured against (the win at ≥32 is the headline
// number of the wire-speed data path work).
func BenchmarkBatchSizeSweep(b *testing.B) {
	for _, size := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) { runBatchBench(b, size) })
	}
}

// BenchmarkAblationDCBLocking measures the engine's sender throughput at
// the core of the paper's state-vs-parallelism argument (§3.4): per-probe
// cost including the per-DCB mutex and the linked-list traversal.
func BenchmarkAblationDCBLocking(b *testing.B) {
	sim := NewSimulation(SimConfig{Blocks: 16384, Seed: 1})
	cfg := DefaultConfig()
	cfg.Unthrottled = false
	cfg.PPS = 1 << 30 // effectively unthrottled but exercising the pacer
	b.ResetTimer()
	var probes uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Scan(cfg)
		if err != nil {
			b.Fatal(err)
		}
		probes += res.Probes()
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/scan")
}

// BenchmarkClusterStopSet measures the global stop set's two hot paths.
// "local-hit" is the per-probe backward-probing check when the address is
// already in the worker's own tier — the cluster refactor's contract is
// that this read allocates nothing and never touches the hub.
// "publish-adopt" is the batched cross-worker cycle: one worker
// publishing fresh entries, a peer draining the merge log.
func BenchmarkClusterStopSet(b *testing.B) {
	fam := core.IPv4Family()
	newLocal := func() core.StopSet[uint32] { return core.NewLocalStopSet(fam, 1, 1024) }
	b.Run("local-hit", func(b *testing.B) {
		ws := cluster.NewWorkerSet(cluster.NewHub[uint32](), 0, newLocal(), 64)
		for i := uint32(0); i < 1024; i++ {
			ws.Add(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !ws.Has(uint32(i) & 1023) {
				b.Fatal("lost entry")
			}
		}
	})
	b.Run("publish-adopt", func(b *testing.B) {
		hub := cluster.NewHub[uint32]()
		pub := cluster.NewWorkerSet(hub, 0, newLocal(), 64)
		sub := cluster.NewWorkerSet(hub, 1, newLocal(), 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pub.Add(uint32(i))
			if i&63 == 0 {
				sub.Has(uint32(i)) // forces a merge-log drain
			}
		}
	})
}

// BenchmarkTraceStore measures the slab-backed result store on the
// engine-facing write path (block-slot addressed, zero-alloc within
// reserved capacity) and over a full fill-and-emit cycle, reporting
// bytes/route — the memory half of the result-store tentpole, recorded
// in BENCH_<date>.json alongside the rate benchmarks.
func BenchmarkTraceStore(b *testing.B) {
	const slots = 4096
	const hopsPerRoute = 16
	format := probe.FormatAddr
	less := func(a, b uint32) bool { return a < b }
	hash := core.IPv4Family().HashAddr
	b.Run("AddHopAt", func(b *testing.B) {
		st := trace.NewSlotStoreOf[uint32](true, format, less, hash, slots, slots/2)
		st.Reserve(slots, b.N+slots, b.N+slots)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := i % slots
			st.AddHopAt(slot, uint32(slot)+1, uint8(i%hopsPerRoute)+1,
				uint32(0x0a000000+i), time.Microsecond)
		}
	})
	b.Run("FillAndEmit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := trace.NewSlotStoreOf[uint32](true, format, less, hash, slots, slots/2)
			st.Reserve(slots, slots*hopsPerRoute, slots*hopsPerRoute)
			for s := 0; s < slots; s++ {
				dst := uint32(s)*256 + 1
				for ttl := uint8(1); ttl <= hopsPerRoute; ttl++ {
					st.AddHopAt(s, dst, ttl, uint32(s*64+int(ttl)), time.Microsecond)
				}
			}
			routes := 0
			st.ForEachRouteSorted(func(*trace.RouteOf[uint32]) { routes++ })
			if routes != slots {
				b.Fatalf("routes=%d", routes)
			}
			if i == 0 {
				b.ReportMetric(float64(st.MemoryBytes())/float64(slots), "bytes/route")
			}
		}
	})
}
