package flashroute

import (
	"bufio"
	"fmt"
	"io"

	"github.com/flashroute/flashroute/internal/probe"
)

// ReadTargets implements FlashRoute's exterior-target-file option (paper
// §3.4: "FlashRoute also has an option to load IP addresses from an
// exterior file instead but would still only use one address per /24
// block"): one dotted-quad address per line, '#' comments allowed. Each
// listed address becomes its block's representative; later entries for
// the same block win; unlisted blocks keep the fallback function's pick
// (pass sim.RandomTargets() or nil to skip unlisted blocks entirely).
//
// The returned targets function is ready for Config.Targets; when
// fallback is nil, pair the returned skip function with Config.Skip so
// unlisted blocks are excluded from the scan.
func (s *Simulation) ReadTargets(r io.Reader, fallback func(block int) uint32) (targets func(block int) uint32, skip func(block int) bool, err error) {
	override := make(map[int]uint32)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		t := sc.Text()
		if t == "" || t[0] == '#' {
			continue
		}
		a, err := probe.ParseAddr(t)
		if err != nil {
			return nil, nil, fmt.Errorf("targets: line %d: %w", line, err)
		}
		if b, ok := s.BlockOf(a); ok {
			override[b] = a
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	targets = func(block int) uint32 {
		if a, ok := override[block]; ok {
			return a
		}
		if fallback != nil {
			return fallback(block)
		}
		return 0
	}
	skip = func(block int) bool {
		if fallback != nil {
			return false
		}
		_, ok := override[block]
		return !ok
	}
	return targets, skip, nil
}
