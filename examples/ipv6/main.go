// IPv6: FlashRoute6, the paper's §5.4 extension — tracerouting a sparse
// IPv6 candidate list with redesigned (hash-indexed) control state, while
// keeping FlashRoute's preprobing, split points, stop set and gap limit.
//
//	go run ./examples/ipv6
package main

import (
	"fmt"
	"log"

	"github.com/flashroute/flashroute"
)

func main() {
	sim := flashroute.NewSimulation6(flashroute.Sim6Config{
		Prefixes:         2048,
		TargetsPerPrefix: 16,
		Seed:             66,
	})
	targets := sim.Targets()
	fmt.Printf("IPv6 candidate list: %d targets across 2048 allocated /48s\n", len(targets))

	cfg := flashroute.Config6{PPS: 2000, CollectRoutes: true}
	res, err := sim.Scan(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  scan time:          %v\n", res.ScanTime())
	fmt.Printf("  probes:             %d (%.2f per target)\n",
		res.Probes(), float64(res.Probes())/float64(len(targets)))
	fmt.Printf("  interfaces found:   %d\n", res.InterfaceCount())
	fmt.Printf("  targets reached:    %d\n", res.ReachedCount())
	fmt.Printf("  distances measured: %d, same-prefix predicted: %d\n",
		res.DistancesMeasured(), res.DistancesPredicted())

	for _, dst := range targets {
		r := res.Route(dst)
		if r == nil || !r.Reached || len(r.Hops) < 5 {
			continue
		}
		fmt.Printf("\nroute to %s (%d hops):\n", dst, r.Length)
		for _, h := range r.Hops {
			fmt.Printf("  %2d  %-28s rtt=%v\n", h.TTL, h.Addr, h.RTT)
		}
		break
	}
}
