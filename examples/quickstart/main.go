// Quickstart: scan a simulated Internet with FlashRoute's recommended
// configuration (FlashRoute-16) and inspect what came back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/flashroute/flashroute"
)

func main() {
	// A 65,536-block (/8-sized) Internet, fully reproducible from the
	// seed. Virtual time: the scan reports faithful durations but runs in
	// about a second of real time.
	sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 65536, Seed: 2020})

	cfg := flashroute.DefaultConfig()
	cfg.PPS = 1000 // scale the paper's 100 Kpps to this universe's size
	cfg.CollectRoutes = true

	res, err := sim.Scan(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FlashRoute-16 over a 65,536-block simulated Internet")
	fmt.Printf("  scan time:          %v\n", res.ScanTime())
	fmt.Printf("  probes:             %d (%.2f per block; preprobing %d)\n",
		res.Probes(), float64(res.Probes())/65536, res.PreprobeProbes())
	fmt.Printf("  interfaces found:   %d\n", res.InterfaceCount())
	fmt.Printf("  distances measured: %d, predicted: %d\n",
		res.DistancesMeasured(), res.DistancesPredicted())

	// Print one discovered route end to end.
	targets := sim.RandomTargets()
	for b := 0; b < sim.Blocks(); b++ {
		r := res.Route(targets(b))
		if r == nil || !r.Reached || len(r.Hops) < 6 {
			continue
		}
		fmt.Printf("\nroute to %s (%d hops):\n", flashroute.FormatAddr(r.Dst), r.Length)
		for _, h := range r.Hops {
			fmt.Printf("  %2d  %-15s  rtt=%v\n", h.TTL, flashroute.FormatAddr(h.Addr), h.RTT)
		}
		break
	}
}
