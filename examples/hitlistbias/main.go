// Hitlistbias: the paper's §5.1 finding — the census hitlist's
// "most responsive address per /24" preferentially lands on gateway
// appliances at block peripheries, so tracerouting hitlist targets stops
// at stub entrances and misses the interfaces behind them.
//
//	go run ./examples/hitlistbias
package main

import (
	"fmt"
	"log"

	"github.com/flashroute/flashroute"
)

const (
	blocks = 32768
	seed   = 5
	pps    = 500
)

func main() {
	exhaust := func(targets func(int) uint32) *flashroute.Result {
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		cfg := flashroute.DefaultConfig()
		cfg.PPS = pps
		cfg.Exhaustive = true
		cfg.CollectRoutes = true
		if targets != nil {
			cfg.Targets = targets
		} else {
			cfg.Targets = sim.HitlistTargets()
		}
		res, err := sim.Scan(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Random representatives vs census-hitlist representatives, both
	// probed exhaustively (TTL 1..32, every block).
	random := exhaust(flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed}).RandomTargets())
	hitlist := exhaust(nil)

	fmt.Println("exhaustive scans of the same Internet:")
	fmt.Printf("  random targets:  %d interfaces\n", random.InterfaceCount())
	fmt.Printf("  hitlist targets: %d interfaces\n", hitlist.InterfaceCount())
	fmt.Printf("  interfaces shielded by hitlist bias: %d\n",
		random.InterfaceCount()-hitlist.InterfaceCount())

	// Route lengths among blocks where both targets answered — the
	// paper's controlled comparison.
	sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
	rndTargets := sim.RandomTargets()
	hlTargets := sim.HitlistTargets()
	randomLonger, hitlistLonger, both := 0, 0, 0
	for b := 0; b < blocks; b++ {
		rr := random.Route(rndTargets(b))
		rh := hitlist.Route(hlTargets(b))
		if rr == nil || rh == nil || !rr.Reached || !rh.Reached {
			continue
		}
		both++
		if rr.Length > rh.Length {
			randomLonger++
		} else if rh.Length > rr.Length {
			hitlistLonger++
		}
	}
	fmt.Printf("\nblocks where both targets responded: %d\n", both)
	fmt.Printf("  random route longer:  %d\n", randomLonger)
	fmt.Printf("  hitlist route longer: %d\n", hitlistLonger)
	fmt.Println("\nconclusion (paper §5.1): use the hitlist for preprobing hints only;")
	fmt.Println("probe random representatives to avoid biasing discovered topology.")
}
