// Comparison: the paper's Table 3 in miniature — FlashRoute, Yarrp and
// Scamper scanning identical copies of the same Internet.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/flashroute/flashroute"
)

const (
	blocks = 32768
	seed   = 7
	pps    = 500 // the paper's 100 Kpps, scaled to this universe
)

func main() {
	fmt.Printf("%-24s %12s %12s %14s\n", "tool", "interfaces", "probes", "scan time")

	// FlashRoute-16: split TTL 16, gap 5, hitlist preprobing.
	{
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		cfg := flashroute.DefaultConfig()
		cfg.PPS = pps
		cfg.Preprobe = flashroute.PreprobeHitlist
		cfg.PreprobeTargets = sim.HitlistTargets()
		res, err := sim.Scan(cfg)
		if err != nil {
			log.Fatal(err)
		}
		row("FlashRoute-16", res.InterfaceCount(), res.Probes(), res.ScanTime())
	}

	// FlashRoute-32.
	{
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		cfg := flashroute.DefaultConfig()
		cfg.PPS = pps
		cfg.SplitTTL = 32
		cfg.Preprobe = flashroute.PreprobeHitlist
		cfg.PreprobeTargets = sim.HitlistTargets()
		res, err := sim.Scan(cfg)
		if err != nil {
			log.Fatal(err)
		}
		row("FlashRoute-32", res.InterfaceCount(), res.Probes(), res.ScanTime())
	}

	// Yarrp-32 (Paris-TCP-ACK, exhaustive TTL 1..32).
	{
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		res, err := sim.RunYarrp(flashroute.YarrpConfig{PPS: pps})
		if err != nil {
			log.Fatal(err)
		}
		row("Yarrp-32", res.InterfaceCount(), res.Probes(), res.ScanTime())
	}

	// Yarrp-16 with fill mode (the configuration the paper shows loses
	// half the interfaces to its inherent gap limit of one).
	{
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		res, err := sim.RunYarrp(flashroute.YarrpConfig{
			PPS: pps, MaxTTL: 16, FillMode: true, FillMax: 32,
		})
		if err != nil {
			log.Fatal(err)
		}
		row("Yarrp-16 (fill mode)", res.InterfaceCount(), res.Probes(), res.ScanTime())
	}

	// Scamper-16 at its (scaled) 10 Kpps maximum.
	{
		sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
		res, err := sim.RunScamper(flashroute.ScamperConfig{PPS: pps / 10})
		if err != nil {
			log.Fatal(err)
		}
		row("Scamper-16", res.InterfaceCount(), res.Probes(), res.ScanTime())
	}
}

func row(name string, ifaces int, probes uint64, t interface{ String() string }) {
	fmt.Printf("%-24s %12d %12d %14s\n", name, ifaces, probes, t.String())
}
