// Discovery: FlashRoute's discovery-optimized mode (paper §5.2) — after a
// FlashRoute-32 main scan, extra backward-only scans with shifted source
// ports flip per-flow load balancers onto their alternative branches,
// revealing interfaces no single-flow scan (however exhaustive) can see.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"github.com/flashroute/flashroute"
)

const (
	blocks = 32768
	seed   = 99
	pps    = 500
)

func main() {
	// Baseline: exhaustive probing of every hop of every destination with
	// a single flow per destination (the paper's simulated Yarrp-32-UDP).
	exSim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
	exCfg := flashroute.DefaultConfig()
	exCfg.PPS = pps
	exCfg.Exhaustive = true
	exhaustive, err := exSim.Scan(exCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Discovery-optimized: FlashRoute-32 plus three port-varied scans
	// sharing the stop set.
	doSim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: blocks, Seed: seed})
	doCfg := flashroute.DefaultConfig()
	doCfg.PPS = pps
	doCfg.SplitTTL = 32
	doCfg.ExtraScans = 3
	discovery, err := doSim.Scan(doCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovery-optimized mode vs exhaustive single-flow probing")
	fmt.Printf("  exhaustive (yarrp-32-udp sim): %6d interfaces, %8d probes, %v\n",
		exhaustive.InterfaceCount(), exhaustive.Probes(), exhaustive.ScanTime())
	fmt.Printf("  flashroute-32 + 3 extra scans: %6d interfaces, %8d probes, %v\n",
		discovery.InterfaceCount(), discovery.Probes(), discovery.ScanTime())
	fmt.Printf("  load-balanced alternates only port variation can reach: +%d\n",
		discovery.InterfaceCount()-exhaustive.InterfaceCount())

	// Show a few of the alternates.
	shown := 0
	discovery.ForEachInterface(func(addr uint32) {
		if shown < 5 && !exhaustive.HasInterface(addr) {
			fmt.Printf("    e.g. %s\n", flashroute.FormatAddr(addr))
			shown++
		}
	})
}
