package flashroute

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/hitlist"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// SimConfig parameterizes a simulated Internet (see DESIGN.md for the
// model and its calibration against the paper's measurements).
type SimConfig struct {
	// Blocks is the number of /24 blocks in the universe (up to 2^22).
	Blocks int
	// CIDRs optionally defines the universe from address ranges instead
	// of a synthetic block count (prefix lengths up to /24).
	CIDRs []string
	// Seed makes the whole Internet reproducible.
	Seed int64
	// RealTime runs the simulation on the wall clock instead of virtual
	// time (virtual time is the default: scans complete in milliseconds
	// of real time while reporting faithful scan durations).
	RealTime bool
	// Lockstep removes every timing-dependent topology behavior — ICMP
	// rate limiting, dynamic route flaps, RTT jitter — so discovery
	// becomes a pure function of the probe set, independent of pacing,
	// interleaving and clock mode. Combined with
	// Config.NoRedundancyElimination this is the environment of the
	// engine's equivalence test suites: an interrupted-and-resumed (or
	// rate-retargeted) scan finds exactly what an uninterrupted one does.
	// Applied before Mutate, which may override it.
	Lockstep bool
	// Impair layers packet-level pathologies (loss, burst loss,
	// duplication, reordering, jitter) over the network. The zero value is
	// the perfect network; see Impairments.
	Impair Impairments
	// Mutate, if set, adjusts the topology parameters before generation
	// (silence rates, middlebox prevalence, rate limits, ...). It runs
	// after Impair is applied and may override it.
	Mutate func(*netsim.Params)
}

// Impairments models the packet-level pathologies of probing the live
// Internet: independent and bursty (Gilbert–Elliott) loss, duplication,
// bounded reordering and extra latency jitter, applied symmetrically to
// probes and responses. All decisions are drawn deterministically from
// the simulation seed, so impaired scans are as reproducible as perfect
// ones (exactly with one sender, statistically with several). The zero
// value disables everything.
type Impairments struct {
	// LossProb is the independent per-packet loss probability.
	LossProb float64
	// BurstToBad, BurstToGood and BurstLoss parameterize Gilbert–Elliott
	// burst loss: the per-packet good→bad and bad→good transition
	// probabilities and the extra loss probability while in the bad state
	// (combined with LossProb). Mean burst length is 1/BurstToGood
	// packets; the stationary bad fraction BurstToBad/(BurstToBad+BurstToGood).
	BurstToBad  float64
	BurstToGood float64
	BurstLoss   float64
	// DupProb is the probability a surviving packet is duplicated once.
	DupProb float64
	// ReorderProb delays a response by uniform [0, ReorderWindow) extra,
	// letting later traffic overtake it (bounded reordering). Both must be
	// set to have an effect.
	ReorderProb   float64
	ReorderWindow time.Duration
	// ExtraJitter adds uniform [0, ExtraJitter) latency to every response.
	ExtraJitter time.Duration
	// Faults are deterministic transport-fault windows: time intervals
	// (relative to the simulation epoch) during which writes fail with a
	// transient error, deliveries stall to the window's end, or the whole
	// connection flaps. Unlike the probabilistic impairments above they
	// draw no randomness, so a fault schedule is exactly reproducible —
	// and an empty schedule leaves scans bit-identical.
	Faults []FaultWindow
}

// FaultKind classifies a transport-fault window.
type FaultKind = netsim.FaultKind

// Fault kinds for FaultWindow.Kind.
const (
	// FaultWriteError makes every WritePacket during the window fail with
	// a transient (Temporary()) error — exercising the scanner's send
	// retries.
	FaultWriteError = netsim.FaultWriteError
	// FaultReadStall delays every delivery scheduled inside the window to
	// the window's end (a stalled reader draining in one burst).
	FaultReadStall = netsim.FaultReadStall
	// FaultFlap blackholes the connection: writes fail and in-window
	// deliveries are dropped.
	FaultFlap = netsim.FaultFlap
)

// FaultWindow is one transport-fault interval.
type FaultWindow struct {
	// Start is when the fault begins, relative to the simulation epoch.
	Start time.Duration
	// Duration is how long it lasts.
	Duration time.Duration
	// Kind selects the failure mode.
	Kind FaultKind
	// Scoped restricts the window to connections entering the topology at
	// exactly Vantage (cluster worker Vantage's private link). Unscoped
	// windows — the zero value — hit every connection; Scoped is a
	// separate flag because vantage 0 is itself a real vantage.
	Scoped  bool
	Vantage int
}

func (im Impairments) toNetsim() netsim.Impairments {
	out := netsim.Impairments{
		LossProb:      im.LossProb,
		GEGoodToBad:   im.BurstToBad,
		GEBadToGood:   im.BurstToGood,
		GEBadLoss:     im.BurstLoss,
		DupProb:       im.DupProb,
		ReorderProb:   im.ReorderProb,
		ReorderWindow: im.ReorderWindow,
		ExtraJitter:   im.ExtraJitter,
	}
	for _, f := range im.Faults {
		out.Faults = append(out.Faults, netsim.FaultWindow{
			Start: f.Start, Duration: f.Duration, Kind: f.Kind,
			Scoped: f.Scoped, Vantage: f.Vantage,
		})
	}
	return out
}

// Simulation is a synthetic Internet bound to a clock — the substrate all
// examples and experiments scan against.
type Simulation struct {
	topo  *netsim.Topology
	net   *netsim.Net
	clock simclock.Waiter
	seed  int64
	hl    *hitlist.Hitlist
}

// NewSimulation generates the Internet. It panics on invalid
// configuration (synthetic sizes out of range); use NewSimulationCIDRs
// for user-supplied ranges, which returns their parse errors instead.
func NewSimulation(cfg SimConfig) *Simulation {
	s, err := NewSimulationCIDRs(cfg)
	if err != nil {
		panic(fmt.Sprintf("flashroute: bad SimConfig.CIDRs: %v", err))
	}
	return s
}

// NewSimulationCIDRs generates the Internet like NewSimulation but
// returns an error for invalid SimConfig.CIDRs instead of panicking —
// the constructor for universes that arrive from user input (CLI flags,
// API requests). Synthetic sizing errors (Blocks out of range with no
// CIDRs given) still panic, as they are programmer mistakes.
func NewSimulationCIDRs(cfg SimConfig) (*Simulation, error) {
	var u *netsim.Universe
	if len(cfg.CIDRs) > 0 {
		var err error
		u, err = netsim.ParseUniverse(cfg.CIDRs)
		if err != nil {
			return nil, err
		}
	} else {
		u = netsim.NewSyntheticUniverse(cfg.Blocks)
	}
	params := netsim.DefaultParams(cfg.Seed)
	params.Impair = cfg.Impair.toNetsim()
	if cfg.Lockstep {
		params.ICMPRateLimitPPS = 0
		params.DynamicBlockProb = 0
		params.JitterRTT = 0
	}
	if cfg.Mutate != nil {
		cfg.Mutate(&params)
	}
	topo := netsim.NewTopology(u, params)
	var clock simclock.Waiter
	if cfg.RealTime {
		clock = simclock.NewReal()
	} else {
		clock = simclock.NewVirtual(time.Unix(0, 0))
	}
	return &Simulation{
		topo:  topo,
		net:   netsim.New(topo, clock),
		clock: clock,
		seed:  cfg.Seed,
	}, nil
}

// Blocks returns the number of /24 blocks in the simulated universe.
func (s *Simulation) Blocks() int { return s.topo.U.NumBlocks() }

// Vantage returns the scanning vantage point's source address.
func (s *Simulation) Vantage() uint32 { return s.topo.Vantage() }

// Clock returns the simulation's clock (pass it to NewScanner alongside
// Conn for custom setups).
func (s *Simulation) Clock() Clock { return s.clock }

// Conn opens a raw-socket-like connection into the simulated network.
func (s *Simulation) Conn() PacketConn { return s.net.NewConn() }

// BlockAddr returns the base address of the i-th /24 block.
func (s *Simulation) BlockAddr(i int) uint32 { return s.topo.U.BlockAddr(i) }

// BlockOf maps an address to its block index.
func (s *Simulation) BlockOf(addr uint32) (int, bool) { return s.topo.U.BlockIndex(addr) }

// RandomTargets returns the default per-block random representative
// function, seeded by the simulation seed.
func (s *Simulation) RandomTargets() func(block int) uint32 {
	u := s.topo.U
	seed := uint64(s.seed)
	return func(block int) uint32 {
		z := seed*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93 + 0x1234
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z ^= z >> 31
		return u.BlockAddr(block) | uint32(1+z%254)
	}
}

// HitlistTargets generates (once) and returns the simulated census
// hitlist's per-block targets (paper §4.1.3, §5.1).
func (s *Simulation) HitlistTargets() func(block int) uint32 {
	if s.hl == nil {
		s.hl = hitlist.Generate(s.topo)
	}
	return s.hl.TargetFunc()
}

// PingCensus rebuilds the hitlist the way the census actually works — by
// sending ICMP echo requests through this simulation's network — and
// makes it the hitlist subsequent HitlistTargets/WriteHitlist calls use.
// It returns the number of ping-responsive entries found.
func (s *Simulation) PingCensus() (responsive int, err error) {
	h, err := hitlist.GenerateViaPings(s.topo.U, s.net.NewConn(), s.clock, s.seed)
	if err != nil {
		return 0, err
	}
	s.hl = h
	return h.Responsive(), nil
}

// WriteHitlist stores the simulated hitlist in FlashRoute's
// one-address-per-line exterior-file format.
func (s *Simulation) WriteHitlist(w io.Writer) error {
	if s.hl == nil {
		s.hl = hitlist.Generate(s.topo)
	}
	_, err := s.hl.WriteTo(w)
	return err
}

// TrueDistance returns the simulator's ground-truth hop distance of an
// address (0 if unrouted) — for validating measurements in examples and
// tests.
func (s *Simulation) TrueDistance(addr uint32) uint8 {
	return s.topo.DistanceNow(addr, s.net.Elapsed())
}

// Stats reports the network-side counters accumulated so far.
func (s *Simulation) Stats() SimStats {
	return SimStats{
		ProbesSeen:   s.net.Stats.ProbesSent.Load(),
		Responses:    s.net.Stats.Responses.Load(),
		RateLimited:  s.net.Stats.RateLimited.Load(),
		SilentHops:   s.net.Stats.SilentHops.Load(),
		NoRoute:      s.net.Stats.NoRoute.Load(),
		ProbesLost:   s.net.Stats.ProbesLost.Load(),
		RepliesLost:  s.net.Stats.RepliesLost.Load(),
		Duplicates:   s.net.Stats.Duplicates.Load(),
		Reordered:    s.net.Stats.Reordered.Load(),
		WriteFaults:  s.net.Stats.WriteFaults.Load(),
		FaultDropped: s.net.Stats.FaultDropped.Load(),
		FaultStalled: s.net.Stats.FaultStalled.Load(),
	}
}

// SimStats are network-side counters of a simulation. The impairment and
// fault-window counters stay zero on a perfect network.
type SimStats struct {
	ProbesSeen  uint64
	Responses   uint64
	RateLimited uint64
	SilentHops  uint64
	NoRoute     uint64
	ProbesLost  uint64
	RepliesLost uint64
	Duplicates  uint64
	Reordered   uint64
	// WriteFaults counts writes rejected by fault windows; FaultDropped
	// and FaultStalled count deliveries a flap window discarded and a
	// stall window delayed.
	WriteFaults  uint64
	FaultDropped uint64
	FaultStalled uint64
}

// Scan runs a FlashRoute scan against this simulation, filling in the
// universe-dependent configuration fields (Blocks, Targets, BlockOf,
// Source) when unset. Multi-sender scans (Config.Senders > 1) work on
// the virtual clock but give up deterministic probe interleaving; pin
// Senders to 1 (the default) when reproducing paper tables.
func (s *Simulation) Scan(cfg Config) (*Result, error) {
	return s.ScanContext(context.Background(), cfg)
}

// ScanContext is Scan with graceful cancellation (see
// Scanner.RunContext).
func (s *Simulation) ScanContext(ctx context.Context, cfg Config) (*Result, error) {
	s.fill(&cfg)
	sc, err := NewScanner(cfg, s.Conn(), s.clock)
	if err != nil {
		return nil, err
	}
	return sc.RunContext(ctx)
}

// ResumeScan continues a checkpointed scan against this simulation (see
// ResumeScanner for the configuration contract).
func (s *Simulation) ResumeScan(cfg Config, snapshot []byte) (*Result, error) {
	return s.ResumeScanContext(context.Background(), cfg, snapshot)
}

// ResumeScanContext is ResumeScan with graceful cancellation.
func (s *Simulation) ResumeScanContext(ctx context.Context, cfg Config, snapshot []byte) (*Result, error) {
	s.fill(&cfg)
	sc, err := ResumeScanner(cfg, s.Conn(), s.clock, snapshot)
	if err != nil {
		return nil, err
	}
	return sc.RunContext(ctx)
}

func (s *Simulation) fill(cfg *Config) {
	if cfg.Blocks == 0 {
		cfg.Blocks = s.Blocks()
	}
	if cfg.Targets == nil {
		cfg.Targets = s.RandomTargets()
	}
	if cfg.VaryExtraScanTargets && cfg.ExtraScanTargets == nil {
		u := s.topo.U
		seed := uint64(s.seed)
		cfg.ExtraScanTargets = func(block, scan int) uint32 {
			z := seed*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93 +
				uint64(scan)*0xa0761d6478bd642f + 0x9b
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z ^= z >> 31
			return u.BlockAddr(block) | uint32(1+z%254)
		}
	}
	if cfg.BlockOf == nil {
		cfg.BlockOf = s.BlockOf
	}
	if cfg.Source == 0 {
		cfg.Source = s.Vantage()
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.seed
	}
}
