package flashroute

import (
	"time"

	"github.com/flashroute/flashroute/internal/scamper"
	"github.com/flashroute/flashroute/internal/yarrp"
)

// YarrpProbeType selects Yarrp's probe flavor.
type YarrpProbeType int

const (
	// YarrpTCPAck is Yarrp's default Paris-TCP-ACK probe.
	YarrpTCPAck YarrpProbeType = iota
	// YarrpUDP reproduces Yarrp's UDP mode including its elapsed-time
	// encoding flaw: long scans fail with "message too long" (paper
	// §4.2.1 footnote 2).
	YarrpUDP
)

// YarrpConfig parameterizes a Yarrp baseline scan (Beverly, IMC 2016).
// Zero TTL/PPS fields mean the paper defaults (1..32 at 100 Kpps).
type YarrpConfig struct {
	Blocks  int
	Targets func(block int) uint32
	BlockOf func(addr uint32) (int, bool)
	Source  uint32

	ProbeType YarrpProbeType
	MinTTL    uint8
	MaxTTL    uint8
	// FillMode enables Yarrp6's sequential fill beyond MaxTTL up to
	// FillMax (with its inherent gap limit of one).
	FillMode bool
	FillMax  uint8
	PPS      int
	// NeighborhoodLimit enables k-hop neighborhood protection.
	NeighborhoodLimit   uint8
	NeighborhoodTimeout time.Duration

	CollectRoutes bool
	Observer      func(dst uint32, ttl uint8, at time.Duration)
	Seed          int64
}

// YarrpResult is what a Yarrp scan produced.
type YarrpResult struct {
	inner *yarrp.Result
}

// Probes returns the total probes (fill probes included).
func (r *YarrpResult) Probes() uint64 { return r.inner.ProbesSent }

// FillProbes returns the probes issued by fill mode.
func (r *YarrpResult) FillProbes() uint64 { return r.inner.FillProbes }

// SkippedByProtection counts probes suppressed by neighborhood
// protection.
func (r *YarrpResult) SkippedByProtection() uint64 { return r.inner.SkippedByProtection }

// ScanTime returns the scan's duration.
func (r *YarrpResult) ScanTime() time.Duration { return r.inner.ScanTime }

// InterfaceCount returns the number of unique router interfaces found.
func (r *YarrpResult) InterfaceCount() int { return r.inner.Store.Interfaces().Len() }

// HasInterface reports whether addr was discovered.
func (r *YarrpResult) HasInterface(addr uint32) bool { return r.inner.Store.Interfaces().Has(addr) }

// RunYarrp runs a Yarrp scan against the simulation.
func (s *Simulation) RunYarrp(cfg YarrpConfig) (*YarrpResult, error) {
	ic := yarrp.DefaultConfig()
	ic.Blocks = cfg.Blocks
	if ic.Blocks == 0 {
		ic.Blocks = s.Blocks()
	}
	ic.Targets = cfg.Targets
	if ic.Targets == nil {
		ic.Targets = s.RandomTargets()
	}
	ic.BlockOf = cfg.BlockOf
	if ic.BlockOf == nil {
		ic.BlockOf = s.BlockOf
	}
	ic.Source = cfg.Source
	if ic.Source == 0 {
		ic.Source = s.Vantage()
	}
	ic.ProbeType = yarrp.ProbeType(cfg.ProbeType)
	if cfg.MinTTL != 0 {
		ic.MinTTL = cfg.MinTTL
	}
	if cfg.MaxTTL != 0 {
		ic.MaxTTL = cfg.MaxTTL
	}
	ic.FillMode = cfg.FillMode
	if cfg.FillMax != 0 {
		ic.FillMax = cfg.FillMax
	}
	if cfg.PPS != 0 {
		ic.PPS = cfg.PPS
	}
	ic.NeighborhoodLimit = cfg.NeighborhoodLimit
	if cfg.NeighborhoodTimeout != 0 {
		ic.NeighborhoodTimeout = cfg.NeighborhoodTimeout
	}
	ic.CollectRoutes = cfg.CollectRoutes
	ic.Observer = cfg.Observer
	ic.Seed = cfg.Seed
	if ic.Seed == 0 {
		ic.Seed = s.seed
	}
	sc, err := yarrp.NewScanner(ic, s.Conn(), s.clock)
	if err != nil {
		return nil, err
	}
	res, err := sc.Run()
	if err != nil {
		return nil, err
	}
	return &YarrpResult{inner: res}, nil
}

// ScamperConfig parameterizes a Scamper baseline scan (Luckie, IMC 2010)
// as configured in the paper: first-TTL 16, max TTL 32, gap 5, one probe
// per hop, at most 10 Kpps.
type ScamperConfig struct {
	Blocks  int
	Targets func(block int) uint32
	BlockOf func(addr uint32) (int, bool)
	Source  uint32

	FirstTTL uint8
	MaxTTL   uint8
	GapLimit uint8
	PPS      int

	CollectRoutes bool
	Observer      func(dst uint32, ttl uint8, at time.Duration)
	Seed          int64
}

// ScamperResult is what a Scamper scan produced.
type ScamperResult struct {
	inner *scamper.Result
}

// Probes returns the probe count.
func (r *ScamperResult) Probes() uint64 { return r.inner.ProbesSent }

// ScanTime returns the scan duration.
func (r *ScamperResult) ScanTime() time.Duration { return r.inner.ScanTime }

// InterfaceCount returns the unique router interfaces found.
func (r *ScamperResult) InterfaceCount() int { return r.inner.Store.Interfaces().Len() }

// RunScamper runs a Scamper scan against the simulation.
func (s *Simulation) RunScamper(cfg ScamperConfig) (*ScamperResult, error) {
	ic := scamper.DefaultConfig()
	ic.Blocks = cfg.Blocks
	if ic.Blocks == 0 {
		ic.Blocks = s.Blocks()
	}
	ic.Targets = cfg.Targets
	if ic.Targets == nil {
		ic.Targets = s.RandomTargets()
	}
	ic.BlockOf = cfg.BlockOf
	if ic.BlockOf == nil {
		ic.BlockOf = s.BlockOf
	}
	ic.Source = cfg.Source
	if ic.Source == 0 {
		ic.Source = s.Vantage()
	}
	if cfg.FirstTTL != 0 {
		ic.FirstTTL = cfg.FirstTTL
	}
	if cfg.MaxTTL != 0 {
		ic.MaxTTL = cfg.MaxTTL
	}
	if cfg.GapLimit != 0 {
		ic.GapLimit = cfg.GapLimit
	}
	if cfg.PPS != 0 {
		ic.PPS = cfg.PPS
	}
	ic.CollectRoutes = cfg.CollectRoutes
	ic.Observer = cfg.Observer
	ic.Seed = cfg.Seed
	if ic.Seed == 0 {
		ic.Seed = s.seed
	}
	sc, err := scamper.NewScanner(ic, s.Conn(), s.clock)
	if err != nil {
		return nil, err
	}
	res, err := sc.Run()
	if err != nil {
		return nil, err
	}
	return &ScamperResult{inner: res}, nil
}
