package flashroute

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/core6"
)

// scanHandle is the family-independent half of a running scan: live
// progress, rate retargeting, cancellation and completion signaling.
// The family-specific handle types embed it and add the typed result.
type scanHandle struct {
	cancel  context.CancelFunc
	done    chan struct{}
	probes  atomic.Uint64
	setRate func(pps int)
	err     error // written before done closes, read after
}

// Probes returns the number of probes issued so far — a monotone live
// progress counter, safe to read from any goroutine while the scan runs.
func (h *scanHandle) Probes() uint64 { return h.probes.Load() }

// SetRate retargets the scan's aggregate probing rate (see
// Scanner.SetRate). Safe from any goroutine while the scan runs; calls
// after completion are harmless no-ops on the finished scanner.
func (h *scanHandle) SetRate(pps int) { h.setRate(pps) }

// Cancel requests graceful cancellation: the scan stops sending, drains
// in-flight replies, writes a final checkpoint when checkpointing is
// armed, and completes with a valid partial result (Interrupted set).
func (h *scanHandle) Cancel() { h.cancel() }

// Done is closed when the scan has completed and its result is ready.
func (h *scanHandle) Done() <-chan struct{} { return h.done }

// ScanHandle is a running IPv4 scan started with Simulation.StartScan or
// Simulation.StartResumeScan: poll Probes for live progress, retarget the
// rate with SetRate, Cancel for a graceful partial result, and Wait (or
// select on Done) for completion.
type ScanHandle struct {
	scanHandle
	res *Result
}

// Wait blocks until the scan completes and returns its result.
func (h *ScanHandle) Wait() (*Result, error) {
	<-h.done
	return h.res, h.err
}

// ScanHandle6 is ScanHandle for IPv6 scans.
type ScanHandle6 struct {
	scanHandle
	res *Result6
}

// Wait blocks until the scan completes and returns its result.
func (h *ScanHandle6) Wait() (*Result6, error) {
	<-h.done
	return h.res, h.err
}

// StartScan begins a scan asynchronously and returns a handle to it.
// Configuration errors are returned synchronously (the handle is nil);
// once a handle is returned the scan is running and will complete. The
// handle's probe counter wraps Config.Observer, so a caller-supplied
// observer still sees every probe.
func (s *Simulation) StartScan(ctx context.Context, cfg Config) (*ScanHandle, error) {
	s.fill(&cfg)
	h := &ScanHandle{}
	cfg.Observer = h.countingObserver(cfg.Observer)
	sc, err := NewScanner(cfg, s.Conn(), s.clock)
	if err != nil {
		return nil, err
	}
	h.start(ctx, sc)
	return h, nil
}

// StartResumeScan is StartScan over a checkpoint snapshot (see
// ResumeScanner for the configuration contract). Snapshot decode and
// validation errors — ErrCheckpointComplete included — are returned
// synchronously.
func (s *Simulation) StartResumeScan(ctx context.Context, cfg Config, snapshot []byte) (*ScanHandle, error) {
	s.fill(&cfg)
	h := &ScanHandle{}
	cfg.Observer = h.countingObserver(cfg.Observer)
	sc, err := ResumeScanner(cfg, s.Conn(), s.clock, snapshot)
	if err != nil {
		return nil, err
	}
	h.start(ctx, sc)
	return h, nil
}

func (h *ScanHandle) countingObserver(user func(uint32, uint8, time.Duration)) func(uint32, uint8, time.Duration) {
	return func(dst uint32, ttl uint8, at time.Duration) {
		h.probes.Add(1)
		if user != nil {
			user(dst, ttl, at)
		}
	}
}

func (h *ScanHandle) start(ctx context.Context, sc *Scanner) {
	ctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	h.done = make(chan struct{})
	h.setRate = sc.SetRate
	go func() {
		defer cancel()
		h.res, h.err = sc.RunContext(ctx)
		close(h.done)
	}()
}

// StartScan begins an IPv6 scan asynchronously; same contract as
// Simulation.StartScan.
func (s *Simulation6) StartScan(ctx context.Context, cfg Config6) (*ScanHandle6, error) {
	h := &ScanHandle6{}
	cfg.Observer = h.countingObserver(cfg.Observer)
	ic, conn := s.toCore6(cfg)
	sc, err := core6.NewScanner(ic, conn, s.clock)
	if err != nil {
		return nil, err
	}
	h.start(ctx, sc)
	return h, nil
}

// StartResumeScan begins a resumed IPv6 scan asynchronously; same
// contract as Simulation.StartResumeScan.
func (s *Simulation6) StartResumeScan(ctx context.Context, cfg Config6, snapshot []byte) (*ScanHandle6, error) {
	h := &ScanHandle6{}
	cfg.Observer = h.countingObserver(cfg.Observer)
	ic, conn := s.toCore6(cfg)
	sc, err := core6.ResumeScanner(ic, conn, s.clock, snapshot)
	if err != nil {
		return nil, err
	}
	h.start(ctx, sc)
	return h, nil
}

func (h *ScanHandle6) countingObserver(user func(Addr6, uint8, time.Duration)) func(Addr6, uint8, time.Duration) {
	return func(dst Addr6, ttl uint8, at time.Duration) {
		h.probes.Add(1)
		if user != nil {
			user(dst, ttl, at)
		}
	}
}

func (h *ScanHandle6) start(ctx context.Context, sc *core6.Scanner) {
	ctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	h.done = make(chan struct{})
	h.setRate = sc.SetRate
	go func() {
		defer cancel()
		res, err := sc.RunContext(ctx)
		if err != nil {
			h.err = err
		} else {
			h.res = &Result6{inner: res}
		}
		close(h.done)
	}()
}
