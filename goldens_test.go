package flashroute

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestResultOutputGolden pins the exact JSONL and CSV bytes the result
// store emits across the scan grid — seeds {1,7,21} × Senders {1,4} ×
// Receivers {1,4} × both families, all in the lockstep environment where
// discovery (and every RTT) is a pure function of the probe set. The
// hashes live in testdata/result_goldens.json; they were captured from
// the map-of-pointers store and must survive any store reimplementation
// byte for byte.
//
// Regenerate with FR_UPDATE_GOLDENS=1 go test -run TestResultOutputGolden .
// — regeneration runs every cell twice and fails if the bytes are not
// reproducible, so an accidentally nondeterministic cell cannot be pinned.
func TestResultOutputGolden(t *testing.T) {
	const goldenPath = "testdata/result_goldens.json"
	update := os.Getenv("FR_UPDATE_GOLDENS") != ""

	type cell struct {
		JSONL string `json:"jsonl_sha256"`
		CSV   string `json:"csv_sha256"`
	}
	got := map[string]cell{}

	hash := func(b []byte) string {
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}

	runV4 := func(seed int64, senders, receivers int) cell {
		sim := NewSimulation(SimConfig{Blocks: 512, Seed: seed, Lockstep: true})
		res, err := sim.Scan(Config{
			Senders: senders, Receivers: receivers,
			CollectRoutes: true, Seed: seed,
			// The stop set couples destinations through probe order, which
			// varies with sender interleaving — disable it so multi-sender
			// cells are byte-deterministic (see newLockstepEnv in core).
			NoRedundancyElimination: true,
		})
		if err != nil {
			t.Fatalf("v4 seed=%d S=%d R=%d: %v", seed, senders, receivers, err)
		}
		var j, c bytes.Buffer
		if err := res.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return cell{JSONL: hash(j.Bytes()), CSV: hash(c.Bytes())}
	}
	runV6 := func(seed int64, senders, receivers int) cell {
		sim := NewSimulation6(Sim6Config{Prefixes: 96, TargetsPerPrefix: 4, Seed: seed, Lockstep: true})
		res, err := sim.Scan(Config6{
			Senders: senders, Receivers: receivers,
			CollectRoutes: true, Seed: seed,
			NoRedundancyElimination: true,
		})
		if err != nil {
			t.Fatalf("v6 seed=%d S=%d R=%d: %v", seed, senders, receivers, err)
		}
		var j, c bytes.Buffer
		if err := res.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return cell{JSONL: hash(j.Bytes()), CSV: hash(c.Bytes())}
	}

	for _, seed := range []int64{1, 7, 21} {
		for _, senders := range []int{1, 4} {
			for _, receivers := range []int{1, 4} {
				key4 := fmt.Sprintf("v4/seed%d/S%d/R%d", seed, senders, receivers)
				key6 := fmt.Sprintf("v6/seed%d/S%d/R%d", seed, senders, receivers)
				got[key4] = runV4(seed, senders, receivers)
				got[key6] = runV6(seed, senders, receivers)
				if update {
					// Reproducibility gate: a cell whose bytes vary run to
					// run must never be pinned as a golden.
					if again := runV4(seed, senders, receivers); again != got[key4] {
						t.Fatalf("%s: output not reproducible, refusing to pin", key4)
					}
					if again := runV6(seed, senders, receivers); again != got[key6] {
						t.Fatalf("%s: output not reproducible, refusing to pin", key6)
					}
				}
			}
		}
	}

	if update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]cell, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with FR_UPDATE_GOLDENS=1): %v", err)
	}
	var want map[string]cell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, grid produced %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from grid", k)
			continue
		}
		if g.JSONL != w.JSONL {
			t.Errorf("%s: JSONL bytes diverged from golden", k)
		}
		if g.CSV != w.CSV {
			t.Errorf("%s: CSV bytes diverged from golden", k)
		}
	}
}
