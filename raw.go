package flashroute

import (
	"github.com/flashroute/flashroute/internal/netsim"
)

// Universe maps a live scan's target address space — given as CIDR
// ranges — to the dense /24 block index FlashRoute's control structure
// is built on (paper §3.4, Figure 5). It supplies the Targets/BlockOf
// pair a non-simulated Config needs, the same mapping Simulation wires
// automatically.
//
// Typical live-scan setup (see cmd/flashroute's -transport raw):
//
//	u, _ := flashroute.ParseTargetCIDRs([]string{"203.0.113.0/24"})
//	cfg := flashroute.DefaultConfig()
//	cfg.Blocks = u.NumBlocks()
//	cfg.Targets = u.RandomTargets(seed)
//	cfg.BlockOf = u.BlockOf
//	cfg.Skip = u.SkipFor(flashroute.ReservedExclusions())
//	conn, _ := flashroute.DialRaw()
//	sc, _ := flashroute.NewScanner(cfg, conn, flashroute.RealClock())
type Universe struct {
	inner *netsim.Universe
}

// ParseTargetCIDRs builds a universe from CIDR strings like
// "10.0.0.0/8". Prefix lengths longer than /24 are rejected; blocks are
// deduplicated and ordered by address.
func ParseTargetCIDRs(cidrs []string) (*Universe, error) {
	u, err := netsim.ParseUniverse(cidrs)
	if err != nil {
		return nil, err
	}
	return &Universe{inner: u}, nil
}

// NumBlocks returns the number of /24 blocks in the universe.
func (u *Universe) NumBlocks() int { return u.inner.NumBlocks() }

// BlockAddr returns the base address (host octet zero) of block i.
func (u *Universe) BlockAddr(i int) uint32 { return u.inner.BlockAddr(i) }

// BlockOf maps an address to its block index; ready for Config.BlockOf.
func (u *Universe) BlockOf(addr uint32) (int, bool) { return u.inner.BlockIndex(addr) }

// RandomTargets returns a seeded per-block random representative
// function (one address per /24, host octet 1..254) ready for
// Config.Targets — the same derivation Simulation.RandomTargets uses.
func (u *Universe) RandomTargets(seed int64) func(block int) uint32 {
	inner := u.inner
	s := uint64(seed)
	return func(block int) uint32 {
		z := s*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93 + 0x1234
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z ^= z >> 31
		return inner.BlockAddr(block) | uint32(1+z%254)
	}
}

// SkipFor adapts an exclusion list to Config.Skip for this universe
// (whole /24 blocks are excluded, as in the paper §3.4).
func (u *Universe) SkipFor(e *ExclusionList) func(block int) bool {
	return e.inner.SkipFunc(u.inner.BlockAddr)
}
