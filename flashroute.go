// Package flashroute is a Go implementation of FlashRoute (Huang,
// Rabinovich, Al-Dalky — "FlashRoute: Efficient Traceroute on a Massive
// Scale", IMC 2020): a traceroute engine for Internet-wide topology
// discovery that combines Yarrp-style decoupled, highly parallel probing
// with Doubletree-style redundancy elimination, preprobing-based split
// points, and a compact per-destination control state.
//
// The package exposes:
//
//   - Scanner: the FlashRoute engine itself, runnable over any PacketConn
//     (a raw socket in production, or the bundled Internet simulation);
//   - Simulation: a seeded synthetic IPv4 Internet with virtual time,
//     reproducing the structural properties the paper's evaluation
//     depends on (see DESIGN.md);
//   - RunYarrp / RunScamper: the baseline scanners the paper compares
//     against;
//   - Hitlist helpers modeling the ISI census hitlist and its bias.
//
// Quick start (see examples/quickstart):
//
//	sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 65536, Seed: 1})
//	cfg := flashroute.DefaultConfig()
//	res, err := sim.Scan(cfg)
//	fmt.Println(res.InterfaceCount(), res.Probes, res.ScanTime)
package flashroute

import (
	"context"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/output"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/rawsock"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// PacketConn is the raw network access the scanners need: write whole
// IPv4 probe packets and read whole response packets. The bundled
// Simulation provides one; live scanning uses the Linux raw-socket
// transport in internal/rawsock (cmd/flashroute's -transport raw).
// Transports may additionally implement the engine's optional
// BatchWriter/BatchReader capabilities (see Config.Batch) to amortize
// per-packet transport overhead; the engine detects them by interface
// assertion, so plain PacketConns keep working unchanged.
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// Clock abstracts time for the engines; use RealClock for live scanning.
// Simulations supply their own deterministic virtual clock.
type Clock = simclock.Waiter

// RealClock returns the wall clock.
func RealClock() Clock { return simclock.NewReal() }

// PreprobeMode selects the preprobing strategy (paper §3.3, §4.1.3).
type PreprobeMode int

const (
	// PreprobeOff disables the preprobing phase.
	PreprobeOff PreprobeMode = iota
	// PreprobeRandom preprobes the scan's own random representatives.
	PreprobeRandom
	// PreprobeHitlist preprobes hitlist addresses while the main scan
	// probes random representatives (avoids the hitlist bias, §5.1).
	PreprobeHitlist
)

// Config parameterizes a FlashRoute scan. Zero values of the TTL/gap
// fields mean "paper default"; use DefaultConfig for the recommended
// FlashRoute-16 configuration.
type Config struct {
	// Blocks is the number of /24 blocks scanned (the size of the DCB
	// array, paper §3.4).
	Blocks int
	// Targets returns the representative address for each block. When
	// nil, a Simulation-backed scan uses its random representatives.
	Targets func(block int) uint32
	// BlockOf maps an address to its block index. When nil, a
	// Simulation-backed scan uses its universe.
	BlockOf func(addr uint32) (int, bool)
	// Source is the vantage point's address.
	Source uint32

	// SplitTTL is where backward and forward probing commence for routes
	// without measured distances (default 16).
	SplitTTL uint8
	// GapLimit stops forward probing after that many consecutive silent
	// hops (default 5). Set GapLimitZero for a 0 gap limit.
	GapLimit uint8
	// GapLimitZero forces a gap limit of zero (no forward probing); a
	// plain zero GapLimit means "default 5".
	GapLimitZero bool
	// PPS is the probing rate (default 100,000); <=0 means unthrottled.
	PPS int
	// Unthrottled disables pacing (Table 5 style); a plain zero PPS means
	// "default 100 Kpps".
	Unthrottled bool
	// Senders is the number of sending goroutines; the destination
	// permutation is sharded into that many contiguous slices, each driven
	// by its own sender with its own pacer so the aggregate rate still
	// honors PPS. <=0 and 1 both mean a single sender — the paper-faithful
	// configuration, and the only one whose probe interleaving is
	// deterministic on the simulation's virtual clock.
	Senders int
	// Receivers is the number of reply-processing workers. With >1 the
	// receive path is sharded: workers parse packets in parallel and
	// dispatch each decoded reply to the worker owning block % Receivers
	// (block-affinity dispatch). <=0 and 1 both mean the classic single
	// inline receiver — the paper's configuration (§3.2), bit-identical
	// to previous releases. Simulation-backed scans wire the per-worker
	// read handles automatically; custom transports must implement
	// NewReader on their PacketConn (see core.PacketReader).
	Receivers int
	// Batch is the maximum number of packets moved per transport call on
	// both the send and receive paths, when the transport supports batch
	// I/O (core.BatchWriter / core.BatchReader — the simulation and the
	// raw-socket backend both do). Senders accumulate probes in per-shard
	// packet arenas and flush before every blocking point, so results are
	// identical to unbatched operation; receivers pull up to Batch
	// responses per call into per-worker arenas. 0 and 1 both mean the
	// classic one-packet-per-call data path.
	Batch int

	// Preprobe selects the preprobing mode (default PreprobeRandom);
	// PreprobeTargets supplies hitlist addresses for PreprobeHitlist.
	Preprobe        PreprobeMode
	PreprobeTargets func(block int) uint32
	// ProximitySpan is the distance-prediction span (default 5).
	ProximitySpan int

	// PreprobeRetries re-sends the preprobe to blocks still unmeasured
	// after each preprobing pass, up to that many extra passes — loss
	// tolerance for lossy paths (0, the default, is the paper's single
	// pass).
	PreprobeRetries int
	// ForwardRetries re-probes the trailing gap-limit window of a
	// destination whose forward probing went silent, up to that many times
	// per destination per scan, so a burst of lost replies does not end
	// forward probing early. 0 (the default) disables retries.
	ForwardRetries int
	// ForwardTimeout is how long a destination's forward probing must have
	// been silent before a retry fires (default 500ms). Only meaningful
	// with ForwardRetries > 0.
	ForwardTimeout time.Duration

	// NoRedundancyElimination disables backward-probing termination at
	// convergence points (paper Table 1 "off").
	NoRedundancyElimination bool
	// Exhaustive probes every TTL 1..32 for every destination with no
	// early termination (the paper's Yarrp-32-UDP simulation mode).
	Exhaustive bool
	// ExtraScans enables discovery-optimized mode with that many
	// port-varied extra scans (paper §5.2).
	ExtraScans int
	// AdaptiveExtraScans bounds extra-scan start TTLs by observed route
	// lengths (paper §5.4; ~40% extra-scan probe savings).
	AdaptiveExtraScans bool
	// VaryExtraScanTargets makes each extra scan probe a different
	// address within each block (paper §5.4's mitigation for
	// one-address-per-/24), exposing address-dependent internal paths.
	// Simulation-backed scans derive the alternates automatically; custom
	// setups set ExtraScanTargets instead.
	VaryExtraScanTargets bool
	// ExtraScanTargets supplies the per-(block, scan) alternate
	// destination explicitly.
	ExtraScanTargets func(block, scan int) uint32
	// Skip excludes blocks (exclusion lists, reserved space).
	Skip func(block int) bool
	// CollectRoutes retains full per-destination hop lists in the Result.
	CollectRoutes bool
	// Observer, when set, sees every probe issued.
	Observer func(dst uint32, ttl uint8, at time.Duration)
	// Seed keys the probing permutation.
	Seed int64

	// CheckpointSink arms crash-safe checkpointing: the engine hands it a
	// versioned, checksummed snapshot of the complete scan state on every
	// trigger and once more on the way out (cancellation included). Resume
	// a snapshot with ResumeScanner / Simulation.ResumeScan.
	CheckpointSink func(snapshot []byte) error
	// CheckpointEvery snapshots every N probes sent; CheckpointInterval
	// snapshots when that much scan time has passed since the last one.
	// Both zero (with a sink set) means only the final snapshot.
	CheckpointEvery    int
	CheckpointInterval time.Duration

	// DrainWait is how long to keep receiving after the last probe of a
	// phase (default 2s); MinRoundTime is the minimum duration of a main
	// probing round (default 1s). The defaults fit live scanning; tests
	// and services running many short real-clock scans shrink them.
	DrainWait    time.Duration
	MinRoundTime time.Duration

	// SendRetries bounds the retransmissions of a probe whose WritePacket
	// failed with a transient (Temporary()) error, with capped exponential
	// backoff between attempts. 0 means the default of 3; negative
	// disables retrying. Permanent failures are never retried; they are
	// counted in Result.SendErrors.
	SendRetries int
	// CancelGrace is how long a cancelled scan keeps draining in-flight
	// replies before returning its partial result (default: the engine's
	// drain wait).
	CancelGrace time.Duration
}

// DefaultConfig returns the paper's recommended FlashRoute-16
// configuration (split 16, gap 5, span 5, random preprobing, 100 Kpps).
func DefaultConfig() Config {
	return Config{
		SplitTTL:      16,
		GapLimit:      5,
		PPS:           100_000,
		Preprobe:      PreprobeRandom,
		ProximitySpan: 5,
	}
}

// toCore translates the public config to the engine's.
func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.Blocks = c.Blocks
	cc.Targets = core.TargetFunc(c.Targets)
	cc.BlockOf = core.BlockFunc(c.BlockOf)
	cc.Source = c.Source
	if c.SplitTTL != 0 {
		cc.SplitTTL = c.SplitTTL
	}
	if c.GapLimit != 0 {
		cc.GapLimit = c.GapLimit
	}
	if c.GapLimitZero {
		cc.GapLimit = 0
	}
	if c.PPS != 0 {
		cc.PPS = c.PPS
	}
	if c.Unthrottled {
		cc.PPS = 0
	}
	cc.Senders = c.Senders
	cc.Receivers = c.Receivers
	cc.Batch = c.Batch
	cc.Preprobe = core.PreprobeMode(c.Preprobe)
	cc.PreprobeTargets = core.TargetFunc(c.PreprobeTargets)
	cc.ProximitySpan = c.ProximitySpan
	cc.PreprobeRetries = c.PreprobeRetries
	cc.ForwardRetries = c.ForwardRetries
	cc.ForwardTimeout = c.ForwardTimeout
	cc.NoRedundancyElimination = c.NoRedundancyElimination
	cc.Exhaustive = c.Exhaustive
	cc.ExtraScans = c.ExtraScans
	cc.AdaptiveExtraScans = c.AdaptiveExtraScans
	cc.ExtraScanTargets = c.ExtraScanTargets
	cc.Skip = c.Skip
	cc.CollectRoutes = c.CollectRoutes
	cc.Observer = core.ProbeObserver(c.Observer)
	cc.Seed = c.Seed
	cc.CheckpointSink = c.CheckpointSink
	cc.CheckpointEvery = c.CheckpointEvery
	cc.CheckpointInterval = c.CheckpointInterval
	if c.DrainWait != 0 {
		cc.DrainWait = c.DrainWait
	}
	if c.MinRoundTime != 0 {
		cc.MinRoundTime = c.MinRoundTime
	}
	cc.SendRetries = c.SendRetries
	cc.CancelGrace = c.CancelGrace
	return cc
}

// Hop is one discovered interface on a route.
type Hop struct {
	TTL  uint8
	Addr uint32
	RTT  time.Duration
}

// Route is the discovered path to one destination.
type Route struct {
	Dst     uint32
	Hops    []Hop
	Reached bool
	Length  uint8
}

// Result is what a scan produced.
type Result struct {
	inner *core.Result
}

// Probes returns the total probe count (preprobing and extra scans
// included).
func (r *Result) Probes() uint64 { return r.inner.ProbesSent }

// PreprobeProbes returns the probes spent in the preprobing phase.
func (r *Result) PreprobeProbes() uint64 { return r.inner.PreprobeProbes }

// ScanTime returns the scan's total duration on its clock.
func (r *Result) ScanTime() time.Duration { return r.inner.ScanTime }

// Rounds returns the number of main probing rounds.
func (r *Result) Rounds() int { return r.inner.Rounds }

// InterfaceCount returns the number of unique responding interfaces.
func (r *Result) InterfaceCount() int { return r.inner.Store.Interfaces().Len() }

// HasInterface reports whether the given address was discovered.
func (r *Result) HasInterface(addr uint32) bool { return r.inner.Store.Interfaces().Has(addr) }

// ForEachInterface visits every discovered interface address.
func (r *Result) ForEachInterface(fn func(addr uint32)) {
	r.inner.Store.Interfaces().ForEach(fn)
}

// Route returns the discovered route to dst (nil if nothing about dst was
// observed). Hop lists are only populated when Config.CollectRoutes was
// set.
func (r *Result) Route(dst uint32) *Route {
	rt := r.inner.Store.Route(dst)
	if rt == nil {
		return nil
	}
	out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
	for _, h := range rt.Hops {
		out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
	}
	return out
}

// NumRoutes returns the number of destinations with at least one
// response.
func (r *Result) NumRoutes() int { return r.inner.Store.NumRoutes() }

// ForEachRoute visits every route with responses.
func (r *Result) ForEachRoute(fn func(*Route)) {
	r.inner.Store.ForEachRoute(func(rt *trace.Route) {
		out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
		for _, h := range rt.Hops {
			out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
		}
		fn(out)
	})
}

// MeasuredDistance returns the preprobe-measured hop distance of a block
// (0 when unmeasured) and whether it came from a direct measurement or a
// proximity-span prediction.
func (r *Result) MeasuredDistance(block int) (distance uint8, predicted bool) {
	if r.inner.Measured != nil && r.inner.Measured[block] != 0 {
		return r.inner.Measured[block], false
	}
	if r.inner.Predicted != nil && r.inner.Predicted[block] != 0 {
		return r.inner.Predicted[block], true
	}
	return 0, false
}

// DistancesMeasured and DistancesPredicted count preprobing outcomes.
func (r *Result) DistancesMeasured() int  { return r.inner.DistancesMeasured }
func (r *Result) DistancesPredicted() int { return r.inner.DistancesPredicted }

// MismatchedResponses counts responses discarded because their quoted
// destination failed the source-port checksum test (in-flight destination
// modification, paper §5.3).
func (r *Result) MismatchedResponses() uint64 { return r.inner.MismatchedResponses }

// RetransmittedProbes counts probes re-issued by the loss-tolerance knobs
// (Config.PreprobeRetries and Config.ForwardRetries); always zero with
// both at their zero defaults.
func (r *Result) RetransmittedProbes() uint64 { return r.inner.RetransmittedProbes }

// DuplicateResponses counts replies discarded because their (destination,
// TTL) had already been processed — duplicated packets on the network, or
// re-answers elicited by retransmitted probes.
func (r *Result) DuplicateResponses() uint64 { return r.inner.DuplicateResponses }

// ReadErrors counts receive-path read errors (transport failures distinct
// from unparseable packets).
func (r *Result) ReadErrors() uint64 { return r.inner.ReadErrors }

// SendErrors counts probes abandoned because the transport's WritePacket
// failed permanently or exhausted Config.SendRetries.
func (r *Result) SendErrors() uint64 { return r.inner.SendErrors }

// SendRetries counts write attempts re-issued after transient
// (Temporary()) transport failures.
func (r *Result) SendRetries() uint64 { return r.inner.SendRetries }

// CheckpointErrors counts snapshots Config.CheckpointSink failed to
// persist (the scan continues regardless).
func (r *Result) CheckpointErrors() uint64 { return r.inner.CheckpointErrors }

// Interrupted reports that the scan was cancelled before completion; the
// result is the valid partial state at cancellation plus the CancelGrace
// drain.
func (r *Result) Interrupted() bool { return r.inner.Interrupted }

// WriteCSV writes collected routes as CSV (destination,ttl,hop,rtt_us,
// reached).
func (r *Result) WriteCSV(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.Store.WriteCSV(w)
}

// WriteBinary writes collected routes in the compact binary record format
// (read back with cmd/frreport or internal/output.Reader) and returns the
// number of records.
func (r *Result) WriteBinary(w interface{ Write([]byte) (int, error) }) (uint64, error) {
	return output.WriteStore(w, r.inner.Store)
}

// WriteJSONL writes collected routes as one JSON object per line.
func (r *Result) WriteJSONL(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.Store.WriteJSONL(w)
}

// Scanner runs FlashRoute scans over an arbitrary PacketConn and Clock —
// the integration point for custom (non-simulated) transports.
type Scanner struct {
	inner *core.Scanner
}

// NewScanner validates the configuration and binds it to a transport.
func NewScanner(cfg Config, conn PacketConn, clock Clock) (*Scanner, error) {
	sc, err := core.NewScanner(wireReaders(cfg, conn), conn, clock)
	if err != nil {
		return nil, err
	}
	return &Scanner{inner: sc}, nil
}

// ErrCheckpointComplete is returned by the resume entry points when the
// snapshot records a scan that already ran to completion.
var ErrCheckpointComplete = core.ErrCheckpointComplete

// ResumeScanner reconstructs a scan mid-flight from a checkpoint snapshot
// (written by Config.CheckpointSink); Run continues it. The configuration
// must describe the same scan — same Seed, Blocks and probing geometry —
// while machinery knobs (Senders, Receivers, PPS, checkpointing) are free
// to differ.
func ResumeScanner(cfg Config, conn PacketConn, clock Clock, snapshot []byte) (*Scanner, error) {
	sc, err := core.ResumeScanner(wireReaders(cfg, conn), conn, clock, snapshot)
	if err != nil {
		return nil, err
	}
	return &Scanner{inner: sc}, nil
}

// ErrRawUnsupported is returned by DialRaw on platforms without the
// raw-socket transport (anything but linux/amd64 and linux/arm64).
var ErrRawUnsupported = rawsock.ErrUnsupported

// DialRaw opens the Linux raw-socket transport: an IPPROTO_RAW send
// socket plus an IPPROTO_ICMP receive socket, with batch I/O mapped onto
// sendmmsg(2)/recvmmsg(2) when Config.Batch > 1. Requires CAP_NET_RAW
// (typically root). The returned PacketConn plugs directly into
// NewScanner; Receivers > 1 and Batch work out of the box.
func DialRaw() (PacketConn, error) {
	c, err := rawsock.Dial()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// wireReaders translates the config and hands sharded receive workers
// their per-worker read handles: simulation and raw-socket connections
// know how to provide them, so Receivers > 1 works out of the box.
func wireReaders(cfg Config, conn PacketConn) core.Config {
	cc := cfg.toCore()
	if cfg.Receivers > 1 {
		switch c := conn.(type) {
		case *netsim.Conn:
			cc.NewReader = func() core.PacketReader { return c.NewReader() }
		case *rawsock.Conn:
			cc.NewReader = func() core.PacketReader { return c.NewReader() }
		}
	}
	return cc
}

// Run executes the scan and returns its result.
func (s *Scanner) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// SetRate retargets the aggregate probing rate, mid-scan included: the
// new rate is re-split across the sender shards exactly as Config.PPS
// was at startup, each shard adopting its new share at its next probe.
// Safe to call from any goroutine at any time. Rates below 1 pps are
// clamped to 1 — SetRate reshapes pacing, it cannot remove it.
func (s *Scanner) SetRate(pps int) { s.inner.SetRate(pps) }

// RunContext is Run with graceful cancellation: when ctx is cancelled the
// scan stops sending, drains in-flight replies for Config.CancelGrace,
// writes a final checkpoint (when checkpointing is armed) and returns the
// valid partial result with Interrupted set.
func (s *Scanner) RunContext(ctx context.Context) (*Result, error) {
	res, err := s.inner.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}

// FormatAddr renders an address in dotted-quad form.
func FormatAddr(addr uint32) string { return probe.FormatAddr(addr) }

// ParseAddr parses a dotted-quad address.
func ParseAddr(s string) (uint32, error) { return probe.ParseAddr(s) }

// Footprint is the memory accounting of an IPv4 scan configuration: the
// paper's §3.4/§5.4 control-state math (DCB array, per-DCB locks,
// side arrays) extended with the slab-backed result store.
type Footprint = core.Footprint

// EstimateFootprint prices a scan over the given number of /24 blocks
// without allocating anything — the planning mode behind the CLI's
// -footprint flag. Routes are assumed collected; the ResultBytes field
// models every block responding with hops out to the mean route length.
func EstimateFootprint(blocks int) Footprint {
	return core.EstimateFootprint(blocks, core.LockMutex)
}

// CountBlocks returns the number of /24 blocks the given CIDRs cover —
// the sizing input to EstimateFootprint when the universe is defined by
// address ranges rather than a block count.
func CountBlocks(cidrs []string) (int, error) {
	u, err := netsim.ParseUniverse(cidrs)
	if err != nil {
		return 0, err
	}
	return u.NumBlocks(), nil
}
