package flashroute

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPublicCheckpointResume exercises the crash-safety surface end to
// end through the public API: checkpoint a scan, cancel it, resume the
// snapshot against a fresh simulation of the same seed, and compare the
// discovered interface count against an uninterrupted run.
func TestPublicCheckpointResume(t *testing.T) {
	const blocks, seed = 512, 7
	mk := func() *Simulation { return NewSimulation(SimConfig{Blocks: blocks, Seed: seed}) }

	base, err := mk().Scan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var snap []byte
	cfg := DefaultConfig()
	cfg.CheckpointEvery = int(base.Probes() / 2)
	cfg.CheckpointSink = func(b []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if snap == nil {
			snap = append([]byte(nil), b...)
			cancel()
		}
		return nil
	}
	cfg.CancelGrace = 100 * time.Millisecond
	part, err := mk().ScanContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted() {
		t.Fatal("killed scan not marked Interrupted")
	}
	if part.CheckpointErrors() != 0 {
		t.Fatalf("healthy sink reported %d errors", part.CheckpointErrors())
	}
	mu.Lock()
	data := snap
	mu.Unlock()
	if data == nil {
		t.Fatal("no snapshot captured")
	}

	resumed, err := mk().ResumeScan(DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted() {
		t.Fatal("resumed run should have completed")
	}
	// The default simulation has route dynamics and rate limits, so exact
	// equality is not guaranteed; discovery must land close.
	lo, hi := base.InterfaceCount()*9/10, base.InterfaceCount()*11/10
	if n := resumed.InterfaceCount(); n < lo || n > hi {
		t.Errorf("resumed run found %d interfaces, baseline %d", n, base.InterfaceCount())
	}

	// A completed snapshot (the resumed run's own final state) refuses to
	// resume again.
	var finalSnap []byte
	cfg2 := DefaultConfig()
	cfg2.CheckpointSink = func(b []byte) error {
		finalSnap = append([]byte(nil), b...)
		return nil
	}
	if _, err := mk().Scan(cfg2); err != nil {
		t.Fatal(err)
	}
	if _, err := mk().ResumeScan(DefaultConfig(), finalSnap); !errors.Is(err, ErrCheckpointComplete) {
		t.Fatalf("resume of completed scan: %v, want ErrCheckpointComplete", err)
	}
}

// TestPublicFaultWindows drives the deterministic fault schedule through
// SimConfig.Impair and checks the counters surface in SimStats and the
// Result.
func TestPublicFaultWindows(t *testing.T) {
	faults, err := ParseFaultSpec("write:2s+30ms,stall:3020ms+100ms")
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation(SimConfig{Blocks: 256, Seed: 6, Impair: Impairments{Faults: faults}})
	cfg := DefaultConfig()
	cfg.SendRetries = 10
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterfaceCount() == 0 {
		t.Fatal("scan discovered nothing through the fault schedule")
	}
	stats := sim.Stats()
	if stats.WriteFaults == 0 {
		t.Error("write-error window never fired")
	}
	if stats.FaultStalled == 0 {
		t.Error("stall window never fired")
	}
	if res.SendRetries() == 0 {
		t.Error("write faults produced no retries")
	}
}

// TestParseFaultSpec pins the spec grammar.
func TestParseFaultSpec(t *testing.T) {
	got, err := ParseFaultSpec("write:2s+500ms, stall:3s+1s ,flap:4s+200ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultWindow{
		{Start: 2 * time.Second, Duration: 500 * time.Millisecond, Kind: FaultWriteError},
		{Start: 3 * time.Second, Duration: time.Second, Kind: FaultReadStall},
		{Start: 4 * time.Second, Duration: 200 * time.Millisecond, Kind: FaultFlap},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d windows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "write", "write:2s", "burn:1s+1s", "write:x+1s", "write:1s+x", "write:-1s+1s", "write:1s+0s"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
