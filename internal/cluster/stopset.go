package cluster

import (
	"sync"
	"sync/atomic"

	"github.com/flashroute/flashroute/internal/core"
)

// This file implements the cluster's globally shared stop set: the
// Doubletree redundancy elimination of the paper (§3.2), extended past
// the process boundary the way Yarrp's distributed probing frames it.
//
// The design is publish/subscribe over an append-only merge log:
//
//   - every worker owns a private two-tier core.StopSet: the local tier
//     is the engine's default sharded set (everything this worker
//     discovered itself), the remote tier is a map of entries other
//     workers published;
//   - Has is local-first: a local hit costs exactly what the
//     single-process engine pays (one map read, zero allocations); only
//     a local miss consults the hub, draining any log suffix published
//     since the last look;
//   - Add inserts locally and batches the address for async publication
//     (PublishBatch entries per hub append, so K workers do not contend
//     on the hub mutex per reply);
//   - remote entries only ever SUPPRESS backward probing — they are
//     never removed and never force probing that local knowledge would
//     have skipped — so a worker's probing decisions are a
//     deterministic function of its own replies plus the prefix of the
//     merge log it has observed.

// hubEntry is one published discovery: the address plus the worker that
// published it, so subscribers can skip their own entries on drain.
type hubEntry[A comparable] struct {
	worker int
	addr   A
}

// Hub is the coordinator's stop-set exchange: an append-only log of
// (worker, interface) discoveries with a generation counter subscribers
// compare against their drain cursor. One Hub is shared by all workers
// of a cluster scan.
type Hub[A comparable] struct {
	mu  sync.Mutex
	log []hubEntry[A]

	// faultHook, when set, is consulted before every publish and drain
	// (ops "publish" and "drain") on behalf of the calling worker; a
	// non-nil error makes the operation fail, degrading that worker to
	// local-only Doubletree mode (see WorkerSet). Test injection only —
	// an in-process hub has no real failure mode, but a networked one
	// would, and the degradation machinery must be exercised.
	faultHook func(op string, worker int) error

	// gen is the published log length, advanced after the entries are
	// visible under mu. Subscribers read it lock-free in Has: equal to
	// their drain cursor means nothing new, so the common no-news path
	// costs one atomic load.
	gen atomic.Uint64
}

// NewHub creates an empty exchange.
func NewHub[A comparable]() *Hub[A] { return &Hub[A]{} }

// SetFaultHook installs the publish/drain fault injector. Call before
// the scan starts (it is read under the hub mutex thereafter).
func (h *Hub[A]) SetFaultHook(fn func(op string, worker int) error) {
	h.mu.Lock()
	h.faultHook = fn
	h.mu.Unlock()
}

// publish appends addrs to the merge log on behalf of worker w. An
// injected fault (SetFaultHook) fails the whole batch: nothing is
// appended and the caller keeps its entries for re-publication.
func (h *Hub[A]) publish(w int, addrs []A) error {
	if len(addrs) == 0 {
		return nil
	}
	h.mu.Lock()
	if h.faultHook != nil {
		if err := h.faultHook("publish", w); err != nil {
			h.mu.Unlock()
			return err
		}
	}
	for _, a := range addrs {
		h.log = append(h.log, hubEntry[A]{worker: w, addr: a})
	}
	n := uint64(len(h.log))
	h.mu.Unlock()
	h.gen.Store(n)
	return nil
}

// Published reports the total number of log entries (post-scan stats).
func (h *Hub[A]) Published() uint64 { return h.gen.Load() }

// defaultPublishBatch is how many locally discovered interfaces a worker
// accumulates before one hub append.
const defaultPublishBatch = 64

// WorkerSet is one worker's view of the shared stop set: the pluggable
// core.StopSet the coordinator injects into each engine instance via
// ConfigOf.StopSet. See the file comment for the two-tier design.
type WorkerSet[A comparable] struct {
	hub    *Hub[A] // nil: detached (independent-scan baseline)
	worker int
	local  core.StopSet[A]
	batch  int

	// pubMu guards the publication batch. Engine Add calls may arrive
	// concurrently from R receive workers.
	pubMu   sync.Mutex
	pending []A

	// remMu guards the remote tier and the drain cursor; drained mirrors
	// the cursor as an atomic so Has can skip the lock when there is
	// nothing new to drain.
	remMu    sync.RWMutex
	remote   map[A]struct{}
	cursor   int
	drained  atomic.Uint64
	received uint64 // remote entries adopted (stats, under remMu)

	// Degraded operation (local-only Doubletree mode): when a publish or
	// drain fails, the worker freezes its remote tier at the log prefix
	// it has already observed and stops consulting the hub — safe by
	// construction, because remote entries only ever SUPPRESS probing,
	// so the worker merely re-probes what peers would have saved it, and
	// its decisions stay a deterministic function of its local replies
	// plus the observed prefix. Pending publications are retained;
	// recovery is attempted at each publish point (a full batch or a
	// Flush), and success re-publishes the backlog and catches up on the
	// whole missed log suffix in one drain. episodes counts degradation
	// entries (stats).
	degraded atomic.Bool
	episodes atomic.Uint64
}

// NewWorkerSet builds worker w's view over the hub. local becomes the
// worker's private tier (use core.NewLocalStopSet with the worker's
// receiver count); batch <= 0 uses the default publication batch. A nil
// hub detaches the worker — the independent-scan baseline the probe
// savings experiment compares against.
func NewWorkerSet[A comparable](hub *Hub[A], w int, local core.StopSet[A], batch int) *WorkerSet[A] {
	if batch <= 0 {
		batch = defaultPublishBatch
	}
	return &WorkerSet[A]{
		hub:    hub,
		worker: w,
		local:  local,
		batch:  batch,
		remote: make(map[A]struct{}),
	}
}

// Has reports membership: local tier first (the zero-allocation hot
// path), then — only on a miss — the remote tier, after draining any
// merge-log suffix published since the last drain. In degraded mode the
// drain is skipped entirely: the remote tier is frozen at the observed
// log prefix, so membership answers stay deterministic while the hub is
// unreachable.
func (w *WorkerSet[A]) Has(a A) bool {
	if w.local.Has(a) {
		return true
	}
	if w.hub == nil {
		return false
	}
	if !w.degraded.Load() && w.hub.gen.Load() != w.drained.Load() {
		if err := w.drain(); err != nil {
			w.enterDegraded()
		}
	}
	w.remMu.RLock()
	_, ok := w.remote[a]
	w.remMu.RUnlock()
	return ok
}

// enterDegraded flips the worker into local-only Doubletree mode (once
// per episode).
func (w *WorkerSet[A]) enterDegraded() {
	if w.degraded.CompareAndSwap(false, true) {
		w.episodes.Add(1)
	}
}

// drain adopts the unread merge-log suffix into the remote tier,
// skipping this worker's own entries (they are already local). A fault
// injected by the hub hook fails the drain with nothing adopted.
func (w *WorkerSet[A]) drain() error {
	w.remMu.Lock()
	h := w.hub
	h.mu.Lock()
	if h.faultHook != nil {
		if err := h.faultHook("drain", w.worker); err != nil {
			h.mu.Unlock()
			w.remMu.Unlock()
			return err
		}
	}
	tail := h.log[w.cursor:]
	w.cursor = len(h.log)
	gen := uint64(len(h.log))
	for _, e := range tail {
		if e.worker != w.worker {
			w.remote[e.addr] = struct{}{}
			w.received++
		}
	}
	h.mu.Unlock()
	w.drained.Store(gen)
	w.remMu.Unlock()
	return nil
}

// Add inserts a discovered interface locally and queues it for
// publication. The engine calls Add once per reply, so repeats of an
// already-known interface are the common case — they publish nothing.
func (w *WorkerSet[A]) Add(a A) {
	if w.local.Has(a) {
		return
	}
	w.local.Add(a)
	if w.hub == nil {
		return
	}
	w.remMu.RLock()
	_, known := w.remote[a]
	w.remMu.RUnlock()
	if known {
		return // another worker already published it
	}
	w.pubMu.Lock()
	w.pending = append(w.pending, a)
	if len(w.pending) >= w.batch {
		w.publishPending()
	}
	w.pubMu.Unlock()
}

// publishPending pushes the publication backlog to the hub (caller holds
// pubMu). A failed publish keeps the backlog and degrades the worker; a
// successful one while degraded is the recovery signal — the worker
// catches up on the entire missed log suffix in one drain and resumes
// normal two-tier operation.
func (w *WorkerSet[A]) publishPending() {
	if err := w.hub.publish(w.worker, w.pending); err != nil {
		w.enterDegraded()
		return
	}
	w.pending = w.pending[:0]
	if w.degraded.Load() {
		if err := w.drain(); err != nil {
			return // hub flapped again mid-recovery; stay degraded
		}
		w.degraded.Store(false)
	}
}

// Flush publishes any partial batch (phase ends and scan exit). While
// degraded it doubles as a recovery probe: an empty backlog still
// attempts the catch-up drain.
func (w *WorkerSet[A]) Flush() {
	if w.hub == nil {
		return
	}
	w.pubMu.Lock()
	if len(w.pending) > 0 || w.degraded.Load() {
		w.publishPending()
	}
	w.pubMu.Unlock()
}

// ForEach visits the local tier, then remote entries not already local
// (checkpoint encoding: a migrated shard resumes with at least as much
// suppression as it died with).
func (w *WorkerSet[A]) ForEach(fn func(A)) {
	w.local.ForEach(fn)
	w.remMu.RLock()
	for a := range w.remote {
		if !w.local.Has(a) {
			fn(a)
		}
	}
	w.remMu.RUnlock()
}

// Size counts distinct entries across both tiers.
func (w *WorkerSet[A]) Size() int {
	n := w.local.Size()
	w.remMu.RLock()
	for a := range w.remote {
		if !w.local.Has(a) {
			n++
		}
	}
	w.remMu.RUnlock()
	return n
}

// Received reports how many remote entries this worker adopted.
func (w *WorkerSet[A]) Received() uint64 {
	w.remMu.RLock()
	defer w.remMu.RUnlock()
	return w.received
}

// Degraded reports whether the worker is currently in local-only
// Doubletree mode.
func (w *WorkerSet[A]) Degraded() bool { return w.degraded.Load() }

// DegradedEpisodes reports how many times this worker entered degraded
// mode.
func (w *WorkerSet[A]) DegradedEpisodes() uint64 { return w.episodes.Load() }
