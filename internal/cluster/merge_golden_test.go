package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/trace"
)

// buildSyntheticStores constructs K worker stores with deterministic,
// overlapping content: shared destinations observed from several workers
// (hop dedup), disagreeing TTL views (multi-path conflicts), reached and
// unreached destinations, and per-worker-only destinations. Everything is
// a pure function of (k, seed) so the merged output can be pinned.
func buildSyntheticStores(k int, seed uint64) []*trace.StoreOf[uint32] {
	rng := seed
	next := func() uint64 {
		// splitmix64 — deterministic across runs and architectures.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fd
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	stores := make([]*trace.StoreOf[uint32], k)
	for i := range stores {
		stores[i] = newStore()
	}
	const dsts = 40
	for d := 0; d < dsts; d++ {
		dst := uint32(0x0A000000) + uint32(d)*7
		length := 3 + int(next()%6)
		reachedBy := -1
		if next()%3 != 0 {
			reachedBy = int(next()) % k
			if reachedBy < 0 {
				reachedBy = -reachedBy
			}
		}
		for ttl := 1; ttl <= length; ttl++ {
			hop := uint32(0xC0000000) + uint32(d)*37 + uint32(ttl)
			rtt := time.Duration(1000+int(next()%9000)) * time.Microsecond
			// Each hop lands in one or two workers; every third TTL the
			// second worker sees a DIFFERENT interface (multi-path).
			w1 := int(next() % uint64(k))
			stores[w1].AddHop(dst, uint8(ttl), hop, rtt)
			if k > 1 && next()%2 == 0 {
				w2 := (w1 + 1) % k
				if ttl%3 == 0 {
					stores[w2].AddHop(dst, uint8(ttl), hop^0x00010000, rtt+5*time.Microsecond)
				} else {
					stores[w2].AddHop(dst, uint8(ttl), hop, rtt+11*time.Microsecond)
				}
			}
		}
		if reachedBy >= 0 {
			stores[reachedBy].SetReached(dst, uint8(length), dst, time.Duration(500+int(next()%500))*time.Microsecond)
		}
	}
	return stores
}

// TestMergeStoresGolden pins the merged JSONL/CSV bytes (and the conflict
// list) produced by mergeStores over deterministic synthetic worker stores
// at K ∈ {1,2,4}. Captured from the pre-slab store; any store or merge
// reimplementation must reproduce these bytes exactly. Regenerate with
// FR_UPDATE_GOLDENS=1.
func TestMergeStoresGolden(t *testing.T) {
	const goldenPath = "testdata/merge_goldens.json"
	update := os.Getenv("FR_UPDATE_GOLDENS") != ""
	fam := core.IPv4Family()

	type cell struct {
		JSONL     string `json:"jsonl_sha256"`
		CSV       string `json:"csv_sha256"`
		Conflicts string `json:"conflicts_sha256"`
	}
	hash := func(b []byte) string {
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}

	got := map[string]cell{}
	for _, k := range []int{1, 2, 4} {
		stores := buildSyntheticStores(k, 0xF1A54)
		merged, conflicts := mergeStores(fam, true, stores)
		var j, c, cf bytes.Buffer
		if err := merged.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := merged.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		for _, mp := range conflicts {
			fmt.Fprintf(&cf, "%08x %d %v\n", mp.Dst, mp.TTL, mp.Addrs)
		}
		got[fmt.Sprintf("K%d", k)] = cell{
			JSONL: hash(j.Bytes()), CSV: hash(c.Bytes()), Conflicts: hash(cf.Bytes()),
		}
	}

	if update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d merge golden cells", len(keys))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with FR_UPDATE_GOLDENS=1): %v", err)
	}
	var want map[string]cell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: merged output diverged from golden (got %+v want %+v)", k, got[k], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("cell count %d, golden has %d", len(got), len(want))
	}
}
