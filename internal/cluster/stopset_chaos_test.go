package cluster

import (
	"errors"
	"fmt"
	"testing"

	"github.com/flashroute/flashroute/internal/core"
)

// newTestWorkerSet builds a worker view with a tiny publish batch so
// tests can force publications without hundreds of adds.
func newTestWorkerSet(hub *Hub[uint32], w, batch int) *WorkerSet[uint32] {
	return NewWorkerSet[uint32](hub, w, core.NewLocalStopSet(core.IPv4Family(), 1, 0), batch)
}

// TestWorkerSetDegradedFrozenPrefix pins the determinism property that
// makes local-only Doubletree mode safe (DESIGN.md §15): a degraded
// worker's membership answers are a pure function of its own local adds
// plus the merge-log prefix it observed before degrading. Entries peers
// publish during the outage must be invisible — the worker behaves
// exactly like one attached to a hub whose log ends at that prefix.
func TestWorkerSetDegradedFrozenPrefix(t *testing.T) {
	hubDown := errors.New("injected hub outage")

	// Live hub: peer (worker 1) publishes a prefix, worker 0 observes it,
	// then the hub "goes down" for worker 0 and the peer keeps publishing.
	hub := NewHub[uint32]()
	w0 := newTestWorkerSet(hub, 0, 4)
	peer := newTestWorkerSet(hub, 1, 4)
	prefix := []uint32{100, 101, 102}
	suffix := []uint32{200, 201, 202, 203}
	for _, a := range prefix {
		peer.Add(a)
	}
	peer.Flush()
	if w0.Has(999) { // local+remote miss, but drains the published prefix
		t.Fatal("phantom membership")
	}

	var down bool
	hub.SetFaultHook(func(op string, worker int) error {
		if down && worker == 0 {
			return hubDown
		}
		return nil
	})
	down = true
	for _, a := range suffix {
		peer.Add(a)
	}
	peer.Flush()
	if !w0.Has(prefix[0]) {
		// gen moved, drain fails, worker 0 degrades — but the already
		// observed prefix must keep answering.
		t.Fatal("degraded worker lost its observed prefix")
	}
	if !w0.Degraded() {
		t.Fatal("worker not degraded after a failed drain")
	}
	if got := w0.DegradedEpisodes(); got != 1 {
		t.Fatalf("DegradedEpisodes = %d, want 1", got)
	}

	// Control: a worker over a hub whose log IS the observed prefix.
	ctlHub := NewHub[uint32]()
	ctl := newTestWorkerSet(ctlHub, 0, 4)
	ctlPeer := newTestWorkerSet(ctlHub, 1, 4)
	for _, a := range prefix {
		ctlPeer.Add(a)
	}
	ctlPeer.Flush()

	// Identical local discovery on both, then compare every answer over
	// the whole universe of addresses in play.
	locals := []uint32{7, 8, 100} // 100 also arrives locally: tiers overlap
	for _, a := range locals {
		w0.Add(a)
		ctl.Add(a)
	}
	probeSet := append(append(append([]uint32{}, prefix...), suffix...), 7, 8, 9, 999)
	for _, a := range probeSet {
		if got, want := w0.Has(a), ctl.Has(a); got != want {
			t.Errorf("Has(%d) = %v under degradation, control says %v", a, got, want)
		}
	}
	for _, a := range suffix {
		if w0.Has(a) {
			t.Errorf("degraded worker sees %d, published during the outage", a)
		}
	}

	// Recovery: the hub heals, and the next publish point (a Flush probe)
	// re-publishes the backlog and catches up on the whole missed suffix.
	down = false
	w0.Flush()
	if w0.Degraded() {
		t.Fatal("worker still degraded after the hub healed")
	}
	if got := w0.DegradedEpisodes(); got != 1 {
		t.Fatalf("DegradedEpisodes after recovery = %d, want 1", got)
	}
	for _, a := range suffix {
		if !w0.Has(a) {
			t.Errorf("catch-up drain missed %d", a)
		}
	}
	// The backlog accumulated while degraded (locals minus the overlap
	// entry the peer already published) must have reached the log.
	if got := hub.Published(); got != uint64(len(prefix)+len(suffix)+2) {
		t.Errorf("hub log has %d entries, want %d (prefix+suffix+recovered backlog)",
			got, len(prefix)+len(suffix)+2)
	}
}

// TestWorkerSetDegradedPublishPath degrades via the other entry point —
// a failed batch publication — and checks the pending batch survives the
// outage instead of being dropped.
func TestWorkerSetDegradedPublishPath(t *testing.T) {
	hubDown := errors.New("injected hub outage")
	hub := NewHub[uint32]()
	var down bool
	hub.SetFaultHook(func(op string, worker int) error {
		if down && worker == 0 {
			return hubDown
		}
		return nil
	})
	w0 := newTestWorkerSet(hub, 0, 2)

	down = true
	w0.Add(10)
	w0.Add(11) // batch of 2 full -> publish fails -> degraded
	if !w0.Degraded() {
		t.Fatal("worker not degraded after a failed publish")
	}
	w0.Add(12)
	if got := hub.Published(); got != 0 {
		t.Fatalf("hub log has %d entries during the outage, want 0", got)
	}

	down = false
	w0.Flush()
	if w0.Degraded() {
		t.Fatal("worker still degraded after the hub healed")
	}
	if got := hub.Published(); got != 3 {
		t.Fatalf("hub log has %d entries after recovery, want the full backlog of 3", got)
	}
	if got := w0.DegradedEpisodes(); got != 1 {
		t.Fatalf("DegradedEpisodes = %d, want 1", got)
	}
}

// TestWorkerSetDegradedEpisodesCount pins the episode counter: one per
// degrade/recover cycle, not one per failed operation.
func TestWorkerSetDegradedEpisodesCount(t *testing.T) {
	hub := NewHub[uint32]()
	var failing bool
	hub.SetFaultHook(func(op string, worker int) error {
		if failing {
			return fmt.Errorf("injected %s outage", op)
		}
		return nil
	})
	w0 := newTestWorkerSet(hub, 0, 2)
	for cycle := 1; cycle <= 3; cycle++ {
		failing = true
		w0.Add(uint32(100 * cycle))
		w0.Add(uint32(100*cycle + 1))
		w0.Flush() // repeated failing ops within one episode
		if got := w0.DegradedEpisodes(); got != uint64(cycle) {
			t.Fatalf("cycle %d: DegradedEpisodes = %d", cycle, got)
		}
		failing = false
		w0.Flush()
		if w0.Degraded() {
			t.Fatalf("cycle %d: not recovered", cycle)
		}
	}
}
