package cluster

import (
	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/permute"
)

// Shard is one worker's slice of the scan: the half-open range
// [Start, End) of PERMUTED positions in the destination sequence. Shards
// partition the permuted universe, not the block index space, so each
// worker probes a contiguous run of the exact sequence a single-process
// scan would walk — worker count 1 is the whole sequence, bit-identical
// to the classic engine.
type Shard struct {
	Start, End int
}

// Blocks returns the number of permuted positions in the shard.
func (s Shard) Blocks() int { return s.End - s.Start }

// Assign carves the permuted destination universe of a scan into
// `workers` near-equal contiguous shards. blocks and seed must match the
// engine config the shards will run under (the engine derives its
// probing permutation from exactly these plus the family's PermSalt).
func Assign(blocks, workers int) []Shard {
	if workers < 1 {
		workers = 1
	}
	if workers > blocks {
		workers = blocks
	}
	shards := make([]Shard, workers)
	base, rem := blocks/workers, blocks%workers
	pos := 0
	for w := range shards {
		n := base
		if w < rem {
			n++
		}
		shards[w] = Shard{Start: pos, End: pos + n}
		pos += n
	}
	return shards
}

// positionsOf inverts the engine's destination permutation: pos[b] is
// the permuted position of block b, so a shard's Skip predicate is one
// array lookup per block. The permutation is the engine's own (Feistel
// over the block count, keyed by seed XOR the family's salt — see
// ScannerOf.RunContext), which is what makes "contiguous permuted
// range" and "the prefix the single-process scan would probe first"
// the same thing.
func positionsOf[A comparable](fam core.Family[A], blocks int, seed int64) []uint32 {
	perm := permute.NewFeistel(uint64(blocks), uint64(seed)^fam.PermSalt())
	pos := make([]uint32, blocks)
	for i := 0; i < blocks; i++ {
		pos[perm.Map(uint64(i))] = uint32(i)
	}
	return pos
}

// shardSkip composes a shard's membership test with the scan's own Skip
// (exclusion lists still apply inside every shard).
func shardSkip(pos []uint32, sh Shard, base func(int) bool) func(int) bool {
	return func(block int) bool {
		if base != nil && base(block) {
			return true
		}
		p := int(pos[block])
		return p < sh.Start || p >= sh.End
	}
}
