// Package cluster implements distributed multi-vantage scanning: a
// coordinator that carves the permuted destination universe into
// per-worker shards, K worker loops driving real core.ScannerOf
// instances — each over its own network vantage with a distinct
// first-hop path — a globally shared stop set with batched async
// publish/subscribe (stopset.go), and a conflict-aware union of the
// per-worker traces (merge.go). A killed worker's shard migrates to a
// peer mid-scan: its final checkpoint (the internal/snapshot codec) is
// the work-handoff wire format, and the peer resumes it through the
// engine's confirmed-vs-sent rewind. See DESIGN.md §13.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// Env binds a cluster scan to its environment: the address family, the
// complete engine configuration every worker derives its shard config
// from, the shared clock, and a vantage-indexed connection factory.
type Env[A comparable] struct {
	Fam core.Family[A]
	// Base is the scan configuration a single-process run would use.
	// The coordinator copies it per worker, composing Skip with the
	// shard predicate and injecting the shared stop set; Base itself is
	// never mutated. Base.CheckpointSink is ignored — cluster workers
	// checkpoint into coordinator memory, where the snapshot serves as
	// the shard-migration payload.
	Base core.ConfigOf[A]
	// Clock is shared by every worker loop (each engine registers its
	// own actors on it; the coordinator itself is not an actor and
	// never holds up virtual time).
	Clock simclock.Waiter
	// NewConn opens a connection entering the topology at the given
	// vantage, plus a per-receiver reader factory for Base.Receivers > 1
	// (the factory may be nil when Base.Receivers <= 1).
	NewConn func(vantage int) (core.PacketConn, func() core.PacketReader, error)
}

// Options parameterizes the cluster run.
type Options struct {
	// Workers is the shard/worker count K; <= 1 means one worker, which
	// reproduces the single-process scan bit-identically.
	Workers int
	// Independent detaches the workers' stop sets from the hub — K
	// truly independent scans over the same shards, the baseline the
	// probe-savings experiment compares against.
	Independent bool
	// PublishBatch is the stop-set publication batch (default 64).
	PublishBatch int
}

// WorkerStats describes one worker loop's share of the scan.
type WorkerStats struct {
	Shard        int    // shard index this loop probed
	Vantage      int    // network vantage it probed from
	Blocks       int    // permuted positions in the shard
	ProbesSent   uint64 // probes this loop issued
	StopReceived uint64 // remote stop-set entries it adopted
	Resumed      bool   // this loop resumed a migrated shard
	Interrupted  bool   // this loop ended by cancellation
}

// Result is the merged outcome of a cluster scan.
type Result[A comparable] struct {
	// Store is the conflict-aware union of every worker's trace store.
	Store *trace.StoreOf[A]
	// MultiPaths lists (dst, TTL) observations where the union saw more
	// than one interface — multi-path evidence, kept, never overwritten.
	MultiPaths []MultiPath[A]

	ProbesSent          uint64
	PreprobeProbes      uint64
	RetransmittedProbes uint64
	DuplicateResponses  uint64
	MismatchedResponses uint64
	UnparsedResponses   uint64
	ReadErrors          uint64
	SendErrors          uint64
	ScanTime            time.Duration

	// Workers has one entry per worker loop in completion order (a
	// migrated shard contributes one entry per attempt).
	Workers []WorkerStats
	// Migrations counts shard handoffs (KillWorker → peer resume).
	Migrations int
	// StopPublished is the merge-log length; StopReceived the total
	// remote adoptions across workers. Both zero for Independent runs.
	StopPublished uint64
	StopReceived  uint64
	// Interrupted reports at least one shard did not run to completion
	// (cancellation); the result is the valid partial merge.
	Interrupted bool
}

// workerDone is one worker loop's completion report.
type workerDone[A comparable] struct {
	shard   int
	vantage int
	resumed bool
	res     *core.ResultOf[A]
	err     error
	snap    []byte
	ws      *WorkerSet[A]
}

// Run is a cluster scan in flight (Start).
type Run[A comparable] struct {
	env    Env[A]
	opt    Options
	hub    *Hub[A]
	shards []Shard
	pos    []uint32

	events chan workerDone[A]
	done   chan struct{}
	res    *Result[A]
	err    error

	probes atomic.Uint64 // live probe counter across all loops
	obsMu  sync.Mutex    // serializes Base.Observer across loops

	mu            sync.Mutex
	cancels       map[int]context.CancelFunc // shard -> active loop cancel
	scanners      map[int]*core.ScannerOf[A] // shard -> active scanner
	killRequested map[int]bool
	migrations    int
	canceled      bool

	start time.Time
}

// Start validates the environment and launches the cluster scan. ctx
// cancels the whole run (gracefully: every worker drains in-flight
// replies and the partial merge is returned with Interrupted set).
func Start[A comparable](ctx context.Context, env Env[A], opt Options) (*Run[A], error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if env.Fam == nil {
		return nil, errors.New("cluster: Env.Fam is required")
	}
	if env.Clock == nil {
		return nil, errors.New("cluster: Env.Clock is required")
	}
	if env.NewConn == nil {
		return nil, errors.New("cluster: Env.NewConn is required")
	}
	if env.Base.Blocks <= 0 {
		return nil, errors.New("cluster: Base.Blocks must be positive")
	}
	shards := Assign(env.Base.Blocks, opt.Workers)
	r := &Run[A]{
		env:           env,
		opt:           opt,
		shards:        shards,
		events:        make(chan workerDone[A], len(shards)),
		done:          make(chan struct{}),
		cancels:       make(map[int]context.CancelFunc),
		scanners:      make(map[int]*core.ScannerOf[A]),
		killRequested: make(map[int]bool),
		start:         env.Clock.Now(),
	}
	if !opt.Independent {
		r.hub = NewHub[A]()
	}
	if len(shards) > 1 {
		r.pos = positionsOf(env.Fam, env.Base.Blocks, env.Base.Seed)
	}
	for w := range shards {
		if err := r.launch(ctx, w, w, nil, false); err != nil {
			// Abandon loops already launched; they drain into the
			// buffered events channel and exit.
			r.cancelAll()
			return nil, err
		}
	}
	go r.coordinate(ctx)
	return r, nil
}

// share splits the aggregate pps across the worker count the way the
// engine splits it across sender shards: base rate plus one for the
// first rem workers. pps <= 0 (unthrottled) passes through.
func share(pps, workers, w int) int {
	if pps <= 0 {
		return pps
	}
	s := pps / workers
	if w < pps%workers {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardHint sizes a worker's local stop set for its share of the
// universe (with a floor so tiny shards still start useful).
func shardHint(blocks, workers int) int {
	h := blocks / workers
	if h < 64 {
		h = 64
	}
	return h
}

// launch starts one worker loop for a shard: a fresh scan when snap is
// nil, a migration resume otherwise.
func (r *Run[A]) launch(ctx context.Context, shard, vantage int, snap []byte, resumed bool) error {
	cfg := r.env.Base
	// The single-worker run keeps Base.Skip untouched: the whole config
	// is then field-for-field what core.NewScannerOf would have seen,
	// which is what makes K=1 bit-identical to the classic engine.
	if len(r.shards) > 1 {
		cfg.Skip = shardSkip(r.pos, r.shards[shard], r.env.Base.Skip)
	}
	local := core.NewLocalStopSet(r.env.Fam, max(cfg.Receivers, 1), shardHint(cfg.Blocks, len(r.shards)))
	ws := NewWorkerSet(r.hub, shard, local, r.opt.PublishBatch)
	cfg.StopSet = ws
	cfg.PPS = share(r.env.Base.PPS, len(r.shards), shard)

	// The handoff sink: every snapshot (cadenced and final) lands in
	// coordinator memory; on a kill, the latest one is the migration
	// payload.
	var snapMu sync.Mutex
	var latest []byte
	cfg.CheckpointSink = func(b []byte) error {
		snapMu.Lock()
		latest = append(latest[:0], b...)
		snapMu.Unlock()
		return nil
	}

	baseObs := r.env.Base.Observer
	cfg.Observer = func(dst A, ttl uint8, at time.Duration) {
		r.probes.Add(1)
		if baseObs != nil {
			r.obsMu.Lock()
			baseObs(dst, ttl, at)
			r.obsMu.Unlock()
		}
	}

	conn, newReader, err := r.env.NewConn(vantage)
	if err != nil {
		return fmt.Errorf("cluster: open vantage %d: %w", vantage, err)
	}
	if newReader != nil {
		cfg.NewReader = newReader
	}

	var sc *core.ScannerOf[A]
	if snap == nil {
		sc, err = core.NewScannerOf(r.env.Fam, cfg, conn, r.env.Clock)
	} else {
		sc, err = core.Resume(r.env.Fam, cfg, conn, r.env.Clock, snap)
	}
	if err != nil {
		conn.Close()
		return err
	}

	wctx, cancel := context.WithCancel(ctx)
	r.mu.Lock()
	r.cancels[shard] = cancel
	r.scanners[shard] = sc
	r.mu.Unlock()

	go func() {
		res, runErr := sc.RunContext(wctx)
		ws.Flush()
		cancel()
		r.mu.Lock()
		delete(r.cancels, shard)
		delete(r.scanners, shard)
		r.mu.Unlock()
		snapMu.Lock()
		final := append([]byte(nil), latest...)
		snapMu.Unlock()
		r.events <- workerDone[A]{shard: shard, vantage: vantage,
			resumed: resumed, res: res, err: runErr, snap: final, ws: ws}
	}()
	return nil
}

// coordinate collects worker completions, migrates killed shards, and
// merges when the last loop reports. It runs off-clock: it only ever
// reacts to completion events, so it cannot stall virtual time.
func (r *Run[A]) coordinate(ctx context.Context) {
	defer close(r.done)
	var order []workerDone[A]
	complete := make(map[int]bool, len(r.shards))
	outstanding := len(r.shards)
	var firstErr error
	for outstanding > 0 {
		ev := <-r.events
		outstanding--
		if ev.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %d (vantage %d): %w", ev.shard, ev.vantage, ev.err)
			}
			r.cancelAll()
			continue
		}
		order = append(order, ev)
		if !ev.res.Interrupted {
			complete[ev.shard] = true
			continue
		}
		r.mu.Lock()
		migrate := r.killRequested[ev.shard] && !r.canceled
		r.killRequested[ev.shard] = false
		r.mu.Unlock()
		if !migrate || firstErr != nil {
			continue
		}
		// The shard's work hands off to a peer vantage: the killed
		// worker's final checkpoint resumes there through the engine's
		// confirmed-vs-sent rewind.
		adopt := (ev.vantage + 1) % len(r.shards)
		err := r.launch(ctx, ev.shard, adopt, ev.snap, true)
		if errors.Is(err, core.ErrCheckpointComplete) {
			// The kill raced scan completion: the "partial" result is
			// the whole shard.
			complete[ev.shard] = true
			continue
		}
		if err != nil {
			firstErr = fmt.Errorf("cluster: migrate shard %d to vantage %d: %w", ev.shard, adopt, err)
			r.cancelAll()
			continue
		}
		r.mu.Lock()
		r.migrations++
		r.mu.Unlock()
		outstanding++
	}
	if firstErr != nil {
		r.err = firstErr
		return
	}
	r.res = r.merge(order, complete)
}

// merge folds the completed loops into the cluster result.
func (r *Run[A]) merge(order []workerDone[A], complete map[int]bool) *Result[A] {
	out := &Result[A]{}
	stores := make([]*trace.StoreOf[A], 0, len(order))
	for _, ev := range order {
		res, ws := ev.res, ev.ws
		stores = append(stores, res.Store)
		out.ProbesSent += res.ProbesSent
		out.PreprobeProbes += res.PreprobeProbes
		out.RetransmittedProbes += res.RetransmittedProbes
		out.DuplicateResponses += res.DuplicateResponses
		out.MismatchedResponses += res.MismatchedResponses
		out.UnparsedResponses += res.UnparsedResponses
		out.ReadErrors += res.ReadErrors
		out.SendErrors += res.SendErrors
		st := WorkerStats{
			Shard:        ev.shard,
			Vantage:      ev.vantage,
			Blocks:       r.shards[ev.shard].Blocks(),
			ProbesSent:   res.ProbesSent,
			StopReceived: ws.Received(),
			Resumed:      ev.resumed,
			Interrupted:  res.Interrupted,
		}
		out.StopReceived += st.StopReceived
		out.Workers = append(out.Workers, st)
	}
	for w := range r.shards {
		if !complete[w] {
			out.Interrupted = true
		}
	}
	if r.hub != nil {
		out.StopPublished = r.hub.Published()
	}
	r.mu.Lock()
	out.Migrations = r.migrations
	r.mu.Unlock()
	out.Store, out.MultiPaths = mergeStores(r.env.Fam, r.env.Base.CollectRoutes, stores)
	out.ScanTime = r.env.Clock.Now().Sub(r.start)
	return out
}

// Wait blocks until the cluster scan completes and returns the merged
// result (a valid partial merge with Interrupted set after Cancel).
func (r *Run[A]) Wait() (*Result[A], error) {
	<-r.done
	return r.res, r.err
}

// Probes reports the live probe count across all worker loops.
func (r *Run[A]) Probes() uint64 { return r.probes.Load() }

// SetRate retargets the aggregate probing rate, split across the worker
// loops the way the initial rate was (each engine then re-splits its
// share across its senders).
func (r *Run[A]) SetRate(pps int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for shard, sc := range r.scanners {
		sc.SetRate(share(pps, len(r.shards), shard))
	}
}

// Cancel requests a graceful stop of every worker loop.
func (r *Run[A]) Cancel() {
	r.mu.Lock()
	r.canceled = true
	r.mu.Unlock()
	r.cancelAll()
}

func (r *Run[A]) cancelAll() {
	r.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(r.cancels))
	for _, c := range r.cancels {
		cancels = append(cancels, c)
	}
	r.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// KillWorker cancels the loop currently probing the given shard and
// marks it for migration: the coordinator resumes the shard's final
// checkpoint on a peer vantage. Reports whether a loop was killed.
func (r *Run[A]) KillWorker(shard int) bool {
	r.mu.Lock()
	cancel, ok := r.cancels[shard]
	if !ok || r.canceled || r.killRequested[shard] {
		r.mu.Unlock()
		return false
	}
	r.killRequested[shard] = true
	r.mu.Unlock()
	cancel()
	return true
}

// Scan is Start + Wait: the blocking form.
func Scan[A comparable](ctx context.Context, env Env[A], opt Options) (*Result[A], error) {
	run, err := Start(ctx, env, opt)
	if err != nil {
		return nil, err
	}
	return run.Wait()
}
