// Package cluster implements distributed multi-vantage scanning: a
// coordinator that carves the permuted destination universe into
// per-worker shards, K worker loops driving real core.ScannerOf
// instances — each over its own network vantage with a distinct
// first-hop path — a globally shared stop set with batched async
// publish/subscribe (stopset.go), and a conflict-aware union of the
// per-worker traces (merge.go). A killed worker's shard migrates to a
// peer mid-scan: its final checkpoint (the internal/snapshot codec) is
// the work-handoff wire format, and the peer resumes it through the
// engine's confirmed-vs-sent rewind. See DESIGN.md §13.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// Env binds a cluster scan to its environment: the address family, the
// complete engine configuration every worker derives its shard config
// from, the shared clock, and a vantage-indexed connection factory.
type Env[A comparable] struct {
	Fam core.Family[A]
	// Base is the scan configuration a single-process run would use.
	// The coordinator copies it per worker, composing Skip with the
	// shard predicate and injecting the shared stop set; Base itself is
	// never mutated. Base.CheckpointSink is ignored — cluster workers
	// checkpoint into coordinator memory, where the snapshot serves as
	// the shard-migration payload.
	Base core.ConfigOf[A]
	// Clock is shared by every worker loop (each engine registers its
	// own actors on it; the coordinator itself is not an actor and
	// never holds up virtual time).
	Clock simclock.Waiter
	// NewConn opens a connection entering the topology at the given
	// vantage, plus a per-receiver reader factory for Base.Receivers > 1
	// (the factory may be nil when Base.Receivers <= 1).
	NewConn func(vantage int) (core.PacketConn, func() core.PacketReader, error)
}

// Options parameterizes the cluster run.
type Options struct {
	// Workers is the shard/worker count K; <= 1 means one worker, which
	// reproduces the single-process scan bit-identically.
	Workers int
	// Independent detaches the workers' stop sets from the hub — K
	// truly independent scans over the same shards, the baseline the
	// probe-savings experiment compares against.
	Independent bool
	// PublishBatch is the stop-set publication batch (default 64).
	PublishBatch int

	// WatchdogTimeout arms the supervisor's progress watchdog: a worker
	// loop whose probe counter AND reply stream both stall for this long
	// of clock time is declared failed and its shard migrated to a peer
	// vantage, exactly as if KillWorker had been called. 0 (the default)
	// disables the watchdog entirely — no extra clock actor exists and a
	// fault-free run is bit-identical to the unsupervised engine. With
	// the watchdog armed on a virtual clock, ScanTime may include up to
	// one trailing watchdog tick (the watchdog's park deadline is the
	// only one left once the engines exit).
	WatchdogTimeout time.Duration

	// MaxMigrations bounds how many times one shard may migrate before
	// it is abandoned (recorded in Result.Abandoned; the partial merge
	// stays valid). 0 means the default of 3; negative disables
	// migration (every failure abandons the shard).
	MaxMigrations int

	// AbortOnSendErrors is forwarded to every worker's engine config: a
	// worker that drops this many probes to write failures aborts with
	// core.ErrTransportDead and the supervisor migrates its shard. 0
	// defaults to 32 when WatchdogTimeout is set (a supervised cluster
	// wants dead transports surfaced, not ground through), else stays 0
	// (inert, the prior behavior). Negative disables it explicitly.
	AbortOnSendErrors int

	// HubFaultHook injects publish/drain failures into the stop-set hub
	// (tests): a non-nil error from the hook degrades the calling worker
	// to local-only Doubletree mode until the hook passes again. nil —
	// the default — means the hub never fails.
	HubFaultHook func(op string, worker int) error

	// CheckpointSink, when set, additionally receives every worker
	// snapshot (cadenced per CheckpointEvery probes and final), keyed by
	// shard — the persistence hook frserved uses so a daemon restart can
	// resume every shard. Coordinator-memory handoff snapshots are kept
	// regardless; sink errors are counted by the engine and do not stop
	// the scan.
	CheckpointSink func(shard int, snap []byte) error
	// CheckpointEvery triggers a cadenced snapshot every N probes per
	// worker (0: final snapshots only).
	CheckpointEvery int
	// ResumeSnapshots seeds shards with previously persisted snapshots
	// (shard index -> snapshot): each listed shard resumes through the
	// engine's confirmed-vs-sent rewind instead of starting fresh. A
	// snapshot of a completed shard re-runs the shard from scratch (on
	// the deterministic simulator that reproduces the identical result).
	ResumeSnapshots map[int][]byte
}

// FailureCause classifies why a worker loop was declared failed.
type FailureCause uint8

const (
	// CauseKill: an explicit KillWorker call.
	CauseKill FailureCause = iota
	// CauseStall: the watchdog saw no probe or reply progress for
	// WatchdogTimeout.
	CauseStall
	// CauseTransport: the engine aborted with core.ErrTransportDead.
	CauseTransport
	// CauseLaunch: a migration attempt itself failed (vantage conn or
	// checkpoint resume error).
	CauseLaunch
)

// String names the cause for logs and status reports.
func (c FailureCause) String() string {
	switch c {
	case CauseKill:
		return "kill"
	case CauseStall:
		return "stall"
	case CauseTransport:
		return "transport"
	case CauseLaunch:
		return "launch"
	}
	return "unknown"
}

// WorkerFailure records one declared worker failure.
type WorkerFailure struct {
	Shard   int          // shard the failed loop was probing
	Vantage int          // vantage it failed at
	Cause   FailureCause // why it was declared failed
	Err     error        // engine or launch error, nil for kill/stall
}

// WorkerStats describes one worker loop's share of the scan.
type WorkerStats struct {
	Shard        int    // shard index this loop probed
	Vantage      int    // network vantage it probed from
	Blocks       int    // permuted positions in the shard
	ProbesSent   uint64 // probes this loop issued
	StopReceived uint64 // remote stop-set entries it adopted
	Resumed      bool   // this loop resumed a migrated shard
	Interrupted  bool   // this loop ended by cancellation
}

// Result is the merged outcome of a cluster scan.
type Result[A comparable] struct {
	// Store is the conflict-aware union of every worker's trace store.
	Store *trace.StoreOf[A]
	// MultiPaths lists (dst, TTL) observations where the union saw more
	// than one interface — multi-path evidence, kept, never overwritten.
	MultiPaths []MultiPath[A]

	ProbesSent          uint64
	PreprobeProbes      uint64
	RetransmittedProbes uint64
	DuplicateResponses  uint64
	MismatchedResponses uint64
	UnparsedResponses   uint64
	ReadErrors          uint64
	SendErrors          uint64
	ScanTime            time.Duration

	// Workers has one entry per worker loop in completion order (a
	// migrated shard contributes one entry per attempt).
	Workers []WorkerStats
	// Migrations counts shard handoffs (KillWorker → peer resume).
	Migrations int
	// Failures lists every declared worker failure in detection order
	// (kills, watchdog stalls, transport deaths, failed relaunches).
	Failures []WorkerFailure
	// Abandoned lists shards that exhausted their migration budget; their
	// partial discoveries are in the merge and Interrupted is set.
	Abandoned []int
	// StopSetDegraded counts local-only Doubletree episodes: how many
	// times a worker's hub publish/drain failed and it fell back to its
	// private stop set until the hub recovered.
	StopSetDegraded uint64
	// StopPublished is the merge-log length; StopReceived the total
	// remote adoptions across workers. Both zero for Independent runs.
	StopPublished uint64
	StopReceived  uint64
	// Interrupted reports at least one shard did not run to completion
	// (cancellation); the result is the valid partial merge.
	Interrupted bool
}

// workerDone is one worker loop's completion report.
type workerDone[A comparable] struct {
	shard   int
	vantage int
	resumed bool
	res     *core.ResultOf[A]
	err     error
	snap    []byte
	ws      *WorkerSet[A]
}

// migOutcome is one relauncher's report: a migration attempt either
// registered a new worker loop (err nil) or failed.
type migOutcome struct {
	shard   int
	vantage int
	snap    []byte
	err     error
}

// Run is a cluster scan in flight (Start).
type Run[A comparable] struct {
	env           Env[A]
	opt           Options
	hub           *Hub[A]
	shards        []Shard
	pos           []uint32
	maxMigrations int

	events chan workerDone[A]
	ctrl   chan migOutcome
	done   chan struct{}
	res    *Result[A]
	err    error

	probes atomic.Uint64 // live probe counter across all loops
	obsMu  sync.Mutex    // serializes Base.Observer across loops

	mu         sync.Mutex
	cancels    map[int]context.CancelFunc // shard -> active loop cancel
	scanners   map[int]*core.ScannerOf[A] // shard -> active scanner
	failCause  map[int]FailureCause       // shard -> pending declared failure
	workerSets []*WorkerSet[A]            // every stop-set view ever created
	rate       int                        // last SetRate value (rateSet true)
	rateSet    bool
	migrations int
	canceled   bool

	// Coordinator-owned state (only the coordinate goroutine touches
	// these; no lock needed).
	attempts  map[int]int  // shard -> migrations consumed
	suspect   map[int]bool // vantages with a declared failure
	failures  []WorkerFailure
	abandoned []int

	// Watchdog (Options.WatchdogTimeout > 0): a clock actor that parks
	// with a deadline, samples per-shard progress each tick, and fails
	// shards whose counters froze. wdStop + Unpark stops it.
	wdParker *simclock.Parker
	wdStop   atomic.Bool
	wdSeen   map[int]wdProgress

	start time.Time
}

// wdProgress is the watchdog's last progress sample for one shard.
type wdProgress struct {
	probes, replies uint64
	since           time.Time
}

// Start validates the environment and launches the cluster scan. ctx
// cancels the whole run (gracefully: every worker drains in-flight
// replies and the partial merge is returned with Interrupted set).
func Start[A comparable](ctx context.Context, env Env[A], opt Options) (*Run[A], error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if env.Fam == nil {
		return nil, errors.New("cluster: Env.Fam is required")
	}
	if env.Clock == nil {
		return nil, errors.New("cluster: Env.Clock is required")
	}
	if env.NewConn == nil {
		return nil, errors.New("cluster: Env.NewConn is required")
	}
	if env.Base.Blocks <= 0 {
		return nil, errors.New("cluster: Base.Blocks must be positive")
	}
	if opt.WatchdogTimeout > 0 && opt.AbortOnSendErrors == 0 {
		opt.AbortOnSendErrors = 32
	}
	shards := Assign(env.Base.Blocks, opt.Workers)
	r := &Run[A]{
		env:           env,
		opt:           opt,
		shards:        shards,
		maxMigrations: opt.MaxMigrations,
		events:        make(chan workerDone[A], len(shards)),
		ctrl:          make(chan migOutcome, len(shards)),
		done:          make(chan struct{}),
		cancels:       make(map[int]context.CancelFunc),
		scanners:      make(map[int]*core.ScannerOf[A]),
		failCause:     make(map[int]FailureCause),
		attempts:      make(map[int]int),
		suspect:       make(map[int]bool),
		start:         env.Clock.Now(),
	}
	if r.maxMigrations == 0 {
		r.maxMigrations = 3
	} else if r.maxMigrations < 0 {
		r.maxMigrations = 0
	}
	if !opt.Independent {
		r.hub = NewHub[A]()
		if opt.HubFaultHook != nil {
			r.hub.SetFaultHook(opt.HubFaultHook)
		}
	}
	if len(shards) > 1 {
		r.pos = positionsOf(env.Fam, env.Base.Blocks, env.Base.Seed)
	}
	for w := range shards {
		var err error
		if snap := opt.ResumeSnapshots[w]; len(snap) > 0 {
			err = r.launch(ctx, w, w, snap, true)
			if errors.Is(err, core.ErrCheckpointComplete) {
				// The persisted snapshot already covers the whole shard.
				// Rather than decode its results out of band, re-run the
				// shard fresh: on the deterministic simulator that
				// reproduces the identical discoveries.
				err = r.launch(ctx, w, w, nil, false)
			}
		} else {
			err = r.launch(ctx, w, w, nil, false)
		}
		if err != nil {
			// Abandon loops already launched; they drain into the
			// buffered events channel and exit.
			r.cancelAll()
			return nil, err
		}
	}
	if opt.WatchdogTimeout > 0 {
		r.wdParker = env.Clock.NewParker()
		r.wdSeen = make(map[int]wdProgress)
		env.Clock.AddActor()
		go r.watchdog()
	}
	go r.coordinate(ctx)
	return r, nil
}

// share splits the aggregate pps across the worker count the way the
// engine splits it across sender shards: base rate plus one for the
// first rem workers. pps <= 0 (unthrottled) passes through.
func share(pps, workers, w int) int {
	if pps <= 0 {
		return pps
	}
	s := pps / workers
	if w < pps%workers {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardHint sizes a worker's local stop set for its share of the
// universe (with a floor so tiny shards still start useful).
func shardHint(blocks, workers int) int {
	h := blocks / workers
	if h < 64 {
		h = 64
	}
	return h
}

// launch starts one worker loop for a shard: a fresh scan when snap is
// nil, a migration resume otherwise.
func (r *Run[A]) launch(ctx context.Context, shard, vantage int, snap []byte, resumed bool) error {
	cfg := r.env.Base
	// The single-worker run keeps Base.Skip untouched: the whole config
	// is then field-for-field what core.NewScannerOf would have seen,
	// which is what makes K=1 bit-identical to the classic engine.
	if len(r.shards) > 1 {
		cfg.Skip = shardSkip(r.pos, r.shards[shard], r.env.Base.Skip)
	}
	local := core.NewLocalStopSet(r.env.Fam, max(cfg.Receivers, 1), shardHint(cfg.Blocks, len(r.shards)))
	ws := NewWorkerSet(r.hub, shard, local, r.opt.PublishBatch)
	cfg.StopSet = ws
	cfg.PPS = share(r.env.Base.PPS, len(r.shards), shard)
	if r.opt.AbortOnSendErrors > 0 {
		cfg.AbortOnSendErrors = r.opt.AbortOnSendErrors
	}

	// The handoff sink: every snapshot (cadenced and final) lands in
	// coordinator memory; on a kill, the latest one is the migration
	// payload. An external Options.CheckpointSink additionally receives
	// each snapshot keyed by shard (frserved's per-shard persistence);
	// its errors surface through the engine's CheckpointErrors counter.
	var snapMu sync.Mutex
	var latest []byte
	extSink := r.opt.CheckpointSink
	if extSink != nil && r.opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = r.opt.CheckpointEvery
	}
	cfg.CheckpointSink = func(b []byte) error {
		snapMu.Lock()
		latest = append(latest[:0], b...)
		snapMu.Unlock()
		if extSink != nil {
			return extSink(shard, b)
		}
		return nil
	}

	baseObs := r.env.Base.Observer
	cfg.Observer = func(dst A, ttl uint8, at time.Duration) {
		r.probes.Add(1)
		if baseObs != nil {
			r.obsMu.Lock()
			baseObs(dst, ttl, at)
			r.obsMu.Unlock()
		}
	}

	conn, newReader, err := r.env.NewConn(vantage)
	if err != nil {
		return fmt.Errorf("cluster: open vantage %d: %w", vantage, err)
	}
	if newReader != nil {
		cfg.NewReader = newReader
	}

	var sc *core.ScannerOf[A]
	if snap == nil {
		sc, err = core.NewScannerOf(r.env.Fam, cfg, conn, r.env.Clock)
	} else {
		sc, err = core.Resume(r.env.Fam, cfg, conn, r.env.Clock, snap)
	}
	if err != nil {
		conn.Close()
		return err
	}

	wctx, cancel := context.WithCancel(ctx)
	r.mu.Lock()
	r.cancels[shard] = cancel
	r.scanners[shard] = sc
	r.workerSets = append(r.workerSets, ws)
	// A relaunched shard starts from fresh live counters; drop any stale
	// watchdog sample so the new loop gets a full timeout of grace.
	delete(r.wdSeen, shard)
	// A SetRate issued while this shard was between loops (mid-migration)
	// never reached a scanner; apply the latest rate to the fresh one so
	// a relaunched shard probes at the current target, not the startup
	// rate.
	if r.rateSet {
		sc.SetRate(share(r.rate, len(r.shards), shard))
	}
	r.mu.Unlock()

	go func() {
		res, runErr := sc.RunContext(wctx)
		ws.Flush()
		// Deregister before cancel(): KillWorker must never observe (and
		// "kill") a loop that has already finished — a stale cancel is
		// harmless, but the kill mark it would leave behind could migrate
		// a future loop of this shard that was merely cancelled.
		r.mu.Lock()
		delete(r.cancels, shard)
		delete(r.scanners, shard)
		r.mu.Unlock()
		cancel()
		snapMu.Lock()
		final := append([]byte(nil), latest...)
		snapMu.Unlock()
		r.events <- workerDone[A]{shard: shard, vantage: vantage,
			resumed: resumed, res: res, err: runErr, snap: final, ws: ws}
	}()
	return nil
}

// watchdog is the supervisor's progress monitor (Options.WatchdogTimeout
// > 0): a clock actor that wakes every timeout, samples each active
// engine's live probe/reply counters, and declares a shard failed when
// BOTH froze across a full timeout — the stalled-worker signature a
// transport error alone cannot surface. A false positive (a worker that
// was merely slow) is safe: migration resumes the shard from its final
// checkpoint, costing only the rewound probes.
func (r *Run[A]) watchdog() {
	defer r.env.Clock.DoneActor()
	clock := r.env.Clock
	for {
		clock.Park(r.wdParker, clock.Now().Add(r.opt.WatchdogTimeout))
		if r.wdStop.Load() {
			return
		}
		now := clock.Now()
		var stalled []int
		r.mu.Lock()
		for shard, sc := range r.scanners {
			p, q := sc.LiveCounters()
			s, ok := r.wdSeen[shard]
			if !ok || s.probes != p || s.replies != q {
				r.wdSeen[shard] = wdProgress{probes: p, replies: q, since: now}
				continue
			}
			if now.Sub(s.since) >= r.opt.WatchdogTimeout {
				stalled = append(stalled, shard)
			}
		}
		r.mu.Unlock()
		for _, shard := range stalled {
			r.failShard(shard, CauseStall)
		}
	}
}

// stopWatchdog releases the watchdog actor (idempotent).
func (r *Run[A]) stopWatchdog() {
	if r.wdParker == nil {
		return
	}
	r.wdStop.Store(true)
	r.env.Clock.Unpark(r.wdParker)
}

// coordinate is the supervisor loop: it collects worker completions and
// relaunch outcomes, classifies failures (kills, watchdog stalls,
// transport deaths, failed relaunches), drives the checkpoint-handoff
// migration path within each shard's budget, and merges when the last
// loop reports. It runs off-clock: it only ever reacts to events, so it
// cannot stall virtual time.
func (r *Run[A]) coordinate(ctx context.Context) {
	defer close(r.done)
	defer r.stopWatchdog()
	var order []workerDone[A]
	complete := make(map[int]bool, len(r.shards))
	outstanding := len(r.shards)
	var firstErr error
	for outstanding > 0 {
		select {
		case ev := <-r.events:
			outstanding--
			r.mu.Lock()
			cause, failed := r.failCause[ev.shard]
			delete(r.failCause, ev.shard)
			canceled := r.canceled
			r.mu.Unlock()
			if ev.err != nil {
				if errors.Is(ev.err, core.ErrTransportDead) && ev.res != nil {
					// The engine aborted on a dead transport but its
					// partial result and final checkpoint are valid:
					// treat it as a declared failure, not a fatal error.
					cause, failed = CauseTransport, true
				} else {
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: shard %d (vantage %d): %w", ev.shard, ev.vantage, ev.err)
					}
					r.cancelAll()
					continue
				}
			}
			order = append(order, ev)
			if !ev.res.Interrupted {
				complete[ev.shard] = true
				continue
			}
			if !failed || canceled || firstErr != nil {
				// Plain cancellation: the partial result stands, no
				// migration.
				continue
			}
			r.failures = append(r.failures, WorkerFailure{
				Shard: ev.shard, Vantage: ev.vantage, Cause: cause, Err: ev.err})
			r.suspect[ev.vantage] = true
			if r.tryMigrate(ctx, ev.shard, ev.vantage, ev.snap) {
				outstanding++
			}

		case m := <-r.ctrl:
			outstanding--
			if firstErr != nil {
				continue
			}
			if m.err == nil {
				// The relaunch registered a new worker loop; its
				// workerDone will arrive later.
				r.mu.Lock()
				r.migrations++
				r.mu.Unlock()
				outstanding++
				continue
			}
			if errors.Is(m.err, core.ErrCheckpointComplete) {
				// The failure raced scan completion: the "partial"
				// result already in order is the whole shard.
				complete[m.shard] = true
				continue
			}
			// The adoption vantage itself failed to launch: another
			// failure, retried against the next surviving vantage.
			r.failures = append(r.failures, WorkerFailure{
				Shard: m.shard, Vantage: m.vantage, Cause: CauseLaunch, Err: m.err})
			r.suspect[m.vantage] = true
			if r.tryMigrate(ctx, m.shard, m.vantage, m.snap) {
				outstanding++
			}
		}
	}
	if firstErr != nil {
		r.err = firstErr
		return
	}
	r.res = r.merge(order, complete)
}

// tryMigrate spends one unit of a failed shard's migration budget on a
// relaunch at the next surviving peer vantage, with exponential backoff
// between successive attempts. It reports whether a relaunch is pending
// (a migOutcome will arrive on r.ctrl); false means the budget is
// exhausted and the shard was abandoned. Coordinator goroutine only.
func (r *Run[A]) tryMigrate(ctx context.Context, shard, from int, snap []byte) bool {
	attempt := r.attempts[shard]
	if attempt >= r.maxMigrations {
		r.abandoned = append(r.abandoned, shard)
		return false
	}
	r.attempts[shard] = attempt + 1
	adopt := r.pickVantage(from)
	backoff := migrationBackoff(attempt)
	go func() {
		if backoff > 0 {
			// The backoff sleeps on the shared clock, so it must be a
			// registered actor for its duration (the coordinator itself
			// stays off-clock).
			r.env.Clock.AddActor()
			r.env.Clock.Sleep(backoff)
			r.env.Clock.DoneActor()
		}
		err := r.launch(ctx, shard, adopt, snap, true)
		r.ctrl <- migOutcome{shard: shard, vantage: adopt, snap: snap, err: err}
	}()
	return true
}

// migrationBackoff is the delay before migration attempt n (0-based):
// the first handoff is immediate — the shard's checkpoint is already in
// hand — and each retry after a failed relaunch doubles from 100ms,
// capped at 2s.
func migrationBackoff(attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := 100 * time.Millisecond << (attempt - 1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// pickVantage chooses the adoption vantage for a shard that failed at
// vantage from: the next vantage in cyclic order with no declared
// failure, falling back to plain cyclic order when every vantage is
// suspect (a suspect vantage may well have recovered — and with every
// peer down there is nothing better to try). Coordinator goroutine only.
func (r *Run[A]) pickVantage(from int) int {
	k := len(r.shards)
	for i := 1; i <= k; i++ {
		v := (from + i) % k
		if !r.suspect[v] {
			return v
		}
	}
	return (from + 1) % k
}

// merge folds the completed loops into the cluster result.
func (r *Run[A]) merge(order []workerDone[A], complete map[int]bool) *Result[A] {
	out := &Result[A]{}
	stores := make([]*trace.StoreOf[A], 0, len(order))
	for _, ev := range order {
		res, ws := ev.res, ev.ws
		stores = append(stores, res.Store)
		out.ProbesSent += res.ProbesSent
		out.PreprobeProbes += res.PreprobeProbes
		out.RetransmittedProbes += res.RetransmittedProbes
		out.DuplicateResponses += res.DuplicateResponses
		out.MismatchedResponses += res.MismatchedResponses
		out.UnparsedResponses += res.UnparsedResponses
		out.ReadErrors += res.ReadErrors
		out.SendErrors += res.SendErrors
		st := WorkerStats{
			Shard:        ev.shard,
			Vantage:      ev.vantage,
			Blocks:       r.shards[ev.shard].Blocks(),
			ProbesSent:   res.ProbesSent,
			StopReceived: ws.Received(),
			Resumed:      ev.resumed,
			Interrupted:  res.Interrupted,
		}
		out.StopReceived += st.StopReceived
		out.Workers = append(out.Workers, st)
	}
	for w := range r.shards {
		if !complete[w] {
			out.Interrupted = true
		}
	}
	if r.hub != nil {
		out.StopPublished = r.hub.Published()
	}
	r.mu.Lock()
	out.Migrations = r.migrations
	for _, ws := range r.workerSets {
		out.StopSetDegraded += ws.DegradedEpisodes()
	}
	r.mu.Unlock()
	out.Failures = r.failures
	out.Abandoned = append([]int(nil), r.abandoned...)
	sort.Ints(out.Abandoned)
	out.Store, out.MultiPaths = mergeStores(r.env.Fam, r.env.Base.CollectRoutes, stores)
	out.ScanTime = r.env.Clock.Now().Sub(r.start)
	return out
}

// Wait blocks until the cluster scan completes and returns the merged
// result (a valid partial merge with Interrupted set after Cancel).
func (r *Run[A]) Wait() (*Result[A], error) {
	<-r.done
	return r.res, r.err
}

// Probes reports the live probe count across all worker loops.
func (r *Run[A]) Probes() uint64 { return r.probes.Load() }

// Migrations reports the live shard-handoff count (post-scan it equals
// Result.Migrations).
func (r *Run[A]) Migrations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.migrations
}

// StopSetDegraded reports the live count of local-only Doubletree
// episodes across all worker stop-set views.
func (r *Run[A]) StopSetDegraded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, ws := range r.workerSets {
		n += ws.DegradedEpisodes()
	}
	return n
}

// SetRate retargets the aggregate probing rate, split across the worker
// loops the way the initial rate was (each engine then re-splits its
// share across its senders). The rate is recorded so a shard that is
// mid-migration when SetRate arrives — absent from the scanner table —
// still adopts it when its relaunched loop registers.
func (r *Run[A]) SetRate(pps int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rate = pps
	r.rateSet = true
	for shard, sc := range r.scanners {
		sc.SetRate(share(pps, len(r.shards), shard))
	}
}

// Cancel requests a graceful stop of every worker loop.
func (r *Run[A]) Cancel() {
	r.mu.Lock()
	r.canceled = true
	r.mu.Unlock()
	r.cancelAll()
}

func (r *Run[A]) cancelAll() {
	r.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(r.cancels))
	for _, c := range r.cancels {
		cancels = append(cancels, c)
	}
	r.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// KillWorker cancels the loop currently probing the given shard and
// marks it for migration: the coordinator resumes the shard's final
// checkpoint on a peer vantage. Reports whether a loop was killed.
func (r *Run[A]) KillWorker(shard int) bool {
	return r.failShard(shard, CauseKill)
}

// failShard declares the loop currently probing shard failed with the
// given cause and cancels it; the coordinator migrates the shard when
// the loop's final checkpoint arrives. Reports whether a live loop was
// marked (false: no active loop, the run was cancelled, or a failure is
// already pending for the shard).
func (r *Run[A]) failShard(shard int, cause FailureCause) bool {
	r.mu.Lock()
	cancel, ok := r.cancels[shard]
	if _, pending := r.failCause[shard]; !ok || r.canceled || pending {
		r.mu.Unlock()
		return false
	}
	r.failCause[shard] = cause
	r.mu.Unlock()
	cancel()
	return true
}

// Scan is Start + Wait: the blocking form.
func Scan[A comparable](ctx context.Context, env Env[A], opt Options) (*Result[A], error) {
	run, err := Start(ctx, env, opt)
	if err != nil {
		return nil, err
	}
	return run.Wait()
}
