package cluster

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/trace"
)

func newStore() *trace.StoreOf[uint32] {
	fam := core.IPv4Family()
	return trace.NewStoreOfSized[uint32](true, fam.FormatAddr, fam.AddrLess, 8, 8)
}

func TestMergeStoresConflictKeepsBoth(t *testing.T) {
	fam := core.IPv4Family()
	const dst = uint32(0x0B000001)

	a := newStore()
	a.AddHop(dst, 3, 0xF0000001, 10*time.Microsecond)
	a.AddHop(dst, 2, 0xF0000002, 8*time.Microsecond)

	b := newStore()
	b.AddHop(dst, 3, 0xF0000009, 99*time.Microsecond) // conflicting TTL-3 view
	b.SetReached(dst, 5, dst, 50*time.Microsecond)

	merged, conflicts := mergeStores(fam, true, []*trace.StoreOf[uint32]{a, b})
	rt := merged.Route(dst)
	if rt == nil {
		t.Fatal("merged route missing")
	}
	if !rt.Reached || rt.Length != 5 {
		t.Fatalf("Reached=%v Length=%d, want true/5", rt.Reached, rt.Length)
	}
	// Both TTL-3 interfaces survive: multi-path, not overwrite.
	var at3 []uint32
	for _, h := range rt.Hops {
		if h.TTL == 3 {
			at3 = append(at3, h.Addr)
		}
	}
	if len(at3) != 2 {
		t.Fatalf("TTL-3 hops = %v, want both interfaces kept", at3)
	}
	if len(conflicts) != 1 || conflicts[0].Dst != dst || conflicts[0].TTL != 3 {
		t.Fatalf("conflicts = %+v, want one at (dst, 3)", conflicts)
	}
	if len(conflicts[0].Addrs) != 2 || conflicts[0].Addrs[0] != 0xF0000001 || conflicts[0].Addrs[1] != 0xF0000009 {
		t.Fatalf("conflict addrs = %v, want sorted pair", conflicts[0].Addrs)
	}
	// Interface sets union.
	for _, a := range []uint32{0xF0000001, 0xF0000002, 0xF0000009} {
		if !merged.Interfaces().Has(a) {
			t.Fatalf("interface %x missing from union", a)
		}
	}
}

func TestMergeStoresDedupAndLength(t *testing.T) {
	fam := core.IPv4Family()
	const dst = uint32(0x0B000002)

	a := newStore()
	a.AddHop(dst, 4, 0xF0000011, 11*time.Microsecond)

	b := newStore()
	b.AddHop(dst, 4, 0xF0000011, 77*time.Microsecond) // same observation, later RTT
	b.AddHop(dst, 6, 0xF0000012, 12*time.Microsecond)

	merged, conflicts := mergeStores(fam, true, []*trace.StoreOf[uint32]{a, b})
	if len(conflicts) != 0 {
		t.Fatalf("agreeing observations reported as conflicts: %+v", conflicts)
	}
	rt := merged.Route(dst)
	if len(rt.Hops) != 2 {
		t.Fatalf("hops = %+v, want deduplicated pair", rt.Hops)
	}
	if rt.Hops[0].RTT != 11*time.Microsecond {
		t.Fatalf("dedup kept RTT %v, want first observation's 11µs", rt.Hops[0].RTT)
	}
	// No store reached the destination: Length is the max observed.
	if rt.Reached || rt.Length != 6 {
		t.Fatalf("Reached=%v Length=%d, want false/6", rt.Reached, rt.Length)
	}
}

func TestMergeStoresDeterministicOrder(t *testing.T) {
	fam := core.IPv4Family()
	a := newStore()
	b := newStore()
	for i := uint32(0); i < 50; i++ {
		a.AddHop(0x0B000100+i, 3, 0xF0001000+i, time.Microsecond)
		b.AddHop(0x0B000100+i, 2, 0xF0002000+i, time.Microsecond)
	}
	m1, _ := mergeStores(fam, true, []*trace.StoreOf[uint32]{a, b})
	m2, _ := mergeStores(fam, true, []*trace.StoreOf[uint32]{a, b})
	var s1, s2 []uint32
	m1.ForEachRoute(func(r *trace.RouteOf[uint32]) { s1 = append(s1, r.Dst) })
	m2.ForEachRoute(func(r *trace.RouteOf[uint32]) { s2 = append(s2, r.Dst) })
	if len(s1) != 50 || len(s2) != 50 {
		t.Fatalf("route counts %d/%d, want 50/50", len(s1), len(s2))
	}
}
