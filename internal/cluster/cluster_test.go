package cluster

import (
	"testing"

	"github.com/flashroute/flashroute/internal/core"
)

func TestAssignPartitions(t *testing.T) {
	cases := []struct{ blocks, workers int }{
		{10, 1}, {10, 2}, {10, 3}, {10, 4}, {7, 7}, {3, 8}, {1000, 6},
	}
	for _, c := range cases {
		shards := Assign(c.blocks, c.workers)
		want := c.workers
		if want > c.blocks {
			want = c.blocks
		}
		if len(shards) != want {
			t.Fatalf("Assign(%d,%d): %d shards, want %d", c.blocks, c.workers, len(shards), want)
		}
		pos := 0
		for i, sh := range shards {
			if sh.Start != pos {
				t.Fatalf("Assign(%d,%d): shard %d starts at %d, want %d",
					c.blocks, c.workers, i, sh.Start, pos)
			}
			if sh.Blocks() <= 0 {
				t.Fatalf("Assign(%d,%d): shard %d empty", c.blocks, c.workers, i)
			}
			pos = sh.End
		}
		if pos != c.blocks {
			t.Fatalf("Assign(%d,%d): shards cover %d positions, want %d",
				c.blocks, c.workers, pos, c.blocks)
		}
		// Near-equal: sizes differ by at most one.
		min, max := shards[0].Blocks(), shards[0].Blocks()
		for _, sh := range shards {
			if n := sh.Blocks(); n < min {
				min = n
			} else if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("Assign(%d,%d): shard sizes range %d..%d", c.blocks, c.workers, min, max)
		}
	}
}

func TestShardSkipPartition(t *testing.T) {
	fam := core.IPv4Family()
	const blocks = 257
	shards := Assign(blocks, 4)
	pos := positionsOf(fam, blocks, 42)
	owners := make([]int, blocks)
	for b := range owners {
		owners[b] = -1
	}
	for w, sh := range shards {
		skip := shardSkip(pos, sh, nil)
		for b := 0; b < blocks; b++ {
			if !skip(b) {
				if owners[b] != -1 {
					t.Fatalf("block %d owned by shards %d and %d", b, owners[b], w)
				}
				owners[b] = w
			}
		}
	}
	for b, w := range owners {
		if w == -1 {
			t.Fatalf("block %d owned by no shard", b)
		}
	}
	// The base skip still applies inside shards.
	base := func(b int) bool { return b == 7 }
	for _, sh := range shards {
		if !shardSkip(pos, sh, base)(7) {
			t.Fatal("base Skip not honored")
		}
	}
}

func newLocal() core.StopSet[uint32] {
	return core.NewLocalStopSet(core.IPv4Family(), 1, 16)
}

func TestWorkerSetLocalFirst(t *testing.T) {
	hub := NewHub[uint32]()
	a := NewWorkerSet(hub, 0, newLocal(), 4)
	b := NewWorkerSet(hub, 1, newLocal(), 4)

	a.Add(10)
	a.Add(20)
	if !a.Has(10) || !a.Has(20) {
		t.Fatal("local entries missing")
	}
	// Below the batch threshold nothing is published yet.
	if b.Has(10) {
		t.Fatal("entry visible before publish")
	}
	a.Flush()
	if !b.Has(10) || !b.Has(20) {
		t.Fatal("published entries not visible after flush")
	}
	if b.Received() != 2 {
		t.Fatalf("Received = %d, want 2", b.Received())
	}
	// A worker never re-adopts its own entries.
	a2 := a.Received()
	if a.Has(999) { // force a drain attempt
		t.Fatal("phantom entry")
	}
	if a.Received() != a2 {
		t.Fatal("worker adopted its own published entries")
	}
}

func TestWorkerSetBatchPublish(t *testing.T) {
	hub := NewHub[uint32]()
	a := NewWorkerSet(hub, 0, newLocal(), 3)
	a.Add(1)
	a.Add(2)
	if hub.Published() != 0 {
		t.Fatalf("published %d entries before batch filled", hub.Published())
	}
	a.Add(3) // fills the batch
	if hub.Published() != 3 {
		t.Fatalf("published %d entries after batch, want 3", hub.Published())
	}
	// Repeats of known entries publish nothing.
	a.Add(1)
	a.Add(2)
	a.Flush()
	if hub.Published() != 3 {
		t.Fatalf("repeats were re-published: log length %d", hub.Published())
	}
}

func TestWorkerSetRemoteSuppressOnly(t *testing.T) {
	hub := NewHub[uint32]()
	a := NewWorkerSet(hub, 0, newLocal(), 1)
	b := NewWorkerSet(hub, 1, newLocal(), 1)
	a.Add(77) // batch 1: publishes immediately
	if !b.Has(77) {
		t.Fatal("remote entry not adopted")
	}
	// Remote entries count in Size/ForEach but never disappear.
	if b.Size() != 1 {
		t.Fatalf("Size = %d, want 1", b.Size())
	}
	seen := map[uint32]bool{}
	b.ForEach(func(x uint32) { seen[x] = true })
	if !seen[77] {
		t.Fatal("ForEach skipped remote entry")
	}
	// Adding an address already known remotely does not republish it.
	pub := hub.Published()
	b.Add(77)
	b.Flush()
	if hub.Published() != pub {
		t.Fatal("remote-known entry republished")
	}
	if b.Size() != 1 {
		t.Fatalf("Size after local add = %d, want 1", b.Size())
	}
}

func TestWorkerSetDetached(t *testing.T) {
	a := NewWorkerSet[uint32](nil, 0, newLocal(), 4)
	a.Add(5)
	if !a.Has(5) || a.Has(6) {
		t.Fatal("detached set misbehaves")
	}
	a.Flush() // must not panic
	if a.Size() != 1 || a.Received() != 0 {
		t.Fatal("detached set stats wrong")
	}
}

// TestWorkerSetLocalHitAllocs pins the hot path: a Has that hits the
// local tier allocates nothing, cluster or not.
func TestWorkerSetLocalHitAllocs(t *testing.T) {
	hub := NewHub[uint32]()
	a := NewWorkerSet(hub, 0, newLocal(), 64)
	a.Add(42)
	allocs := testing.AllocsPerRun(1000, func() {
		if !a.Has(42) {
			t.Fatal("lost entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("local-hit Has allocates %.1f/op, want 0", allocs)
	}
}

// TestWorkerSetDeterministicGivenLog pins the determinism contract: two
// workers replaying the same merge log prefix answer Has identically.
func TestWorkerSetDeterministicGivenLog(t *testing.T) {
	hub := NewHub[uint32]()
	pub := NewWorkerSet(hub, 0, newLocal(), 1)
	for i := uint32(0); i < 100; i++ {
		pub.Add(i)
	}
	x := NewWorkerSet(hub, 1, newLocal(), 1)
	y := NewWorkerSet(hub, 2, newLocal(), 1)
	for i := uint32(0); i < 200; i++ {
		if x.Has(i) != y.Has(i) {
			t.Fatalf("workers disagree on %d", i)
		}
	}
	if x.Received() != 100 || y.Received() != 100 {
		t.Fatalf("received %d/%d, want 100/100", x.Received(), y.Received())
	}
}
