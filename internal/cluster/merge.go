package cluster

import (
	"sort"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/trace"
)

// MultiPath records a merge conflict that is really an observation: two
// probing contexts (a migrated shard's before/after halves, or route
// dynamics between them) saw DIFFERENT interfaces for the same
// (destination, TTL). The union keeps every address — a multi-path
// observation, never an overwrite — and surfaces the conflict here.
type MultiPath[A comparable] struct {
	Dst   A
	TTL   uint8
	Addrs []A // every interface observed at this TTL, AddrLess-sorted
}

// mergeStores unions per-worker trace stores into one topology.
//
// Rules (DESIGN.md §13):
//   - interface sets union directly;
//   - a destination's hop list is the union of its hop lists across
//     stores, deduplicated by (TTL, address) — the first observation's
//     RTT wins, in worker order;
//   - the same TTL with differing addresses keeps all of them and emits
//     a MultiPath record;
//   - Reached is the OR across stores; Length comes from a reached
//     store when any reached (the measured distance), else the maximum;
//   - iteration is position-independent: destinations and hops are
//     sorted with the family's address order, so the merged store is
//     deterministic regardless of worker completion order.
func mergeStores[A comparable](fam core.Family[A], collectRoutes bool,
	stores []*trace.StoreOf[A]) (*trace.StoreOf[A], []MultiPath[A]) {

	type hopKey struct {
		ttl  uint8
		addr A
	}
	routes := make(map[A][]*trace.RouteOf[A])
	var dsts []A
	totalIfaces := 0
	for _, st := range stores {
		st.ForEachRoute(func(r *trace.RouteOf[A]) {
			if len(routes[r.Dst]) == 0 {
				dsts = append(dsts, r.Dst)
			}
			routes[r.Dst] = append(routes[r.Dst], r)
		})
		totalIfaces += st.Interfaces().Len()
	}
	sort.Slice(dsts, func(i, j int) bool { return fam.AddrLess(dsts[i], dsts[j]) })

	merged := trace.NewStoreOfSized[A](collectRoutes, fam.FormatAddr, fam.AddrLess,
		len(dsts), totalIfaces)
	for _, st := range stores {
		for a := range st.Interfaces() {
			merged.AddInterface(a)
		}
	}

	var conflicts []MultiPath[A]
	for _, dst := range dsts {
		parts := routes[dst]
		out := &trace.RouteOf[A]{Dst: dst}
		seen := make(map[hopKey]struct{})
		byTTL := make(map[uint8][]A)
		for _, r := range parts {
			if r.Reached {
				out.Reached = true
				if r.Length > 0 && (out.Length == 0 || r.Length < out.Length) {
					// Reached lengths should agree; a migrated shard's
					// halves can differ when only one saw the
					// unreachable — keep the measured (smallest) one.
					out.Length = r.Length
				}
			}
			for _, h := range r.Hops {
				k := hopKey{ttl: h.TTL, addr: h.Addr}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				out.Hops = append(out.Hops, h)
				byTTL[h.TTL] = append(byTTL[h.TTL], h.Addr)
			}
		}
		if !out.Reached {
			for _, r := range parts {
				if r.Length > out.Length {
					out.Length = r.Length
				}
			}
		}
		sort.SliceStable(out.Hops, func(i, j int) bool {
			if out.Hops[i].TTL != out.Hops[j].TTL {
				return out.Hops[i].TTL < out.Hops[j].TTL
			}
			return fam.AddrLess(out.Hops[i].Addr, out.Hops[j].Addr)
		})
		for ttl, addrs := range byTTL {
			if len(addrs) > 1 {
				sort.Slice(addrs, func(i, j int) bool { return fam.AddrLess(addrs[i], addrs[j]) })
				conflicts = append(conflicts, MultiPath[A]{Dst: dst, TTL: ttl, Addrs: addrs})
			}
		}
		merged.RestoreRoute(out)
	}
	sort.Slice(conflicts, func(i, j int) bool {
		if conflicts[i].Dst != conflicts[j].Dst {
			return fam.AddrLess(conflicts[i].Dst, conflicts[j].Dst)
		}
		return conflicts[i].TTL < conflicts[j].TTL
	})
	return merged, conflicts
}
