package cluster

import (
	"sort"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/trace"
)

// MultiPath records a merge conflict that is really an observation: two
// probing contexts (a migrated shard's before/after halves, or route
// dynamics between them) saw DIFFERENT interfaces for the same
// (destination, TTL). The union keeps every address — a multi-path
// observation, never an overwrite — and surfaces the conflict here.
type MultiPath[A comparable] struct {
	Dst   A
	TTL   uint8
	Addrs []A // every interface observed at this TTL, AddrLess-sorted
}

// mergeStores unions per-worker trace stores into one topology.
//
// Rules (DESIGN.md §13):
//   - interface sets union directly;
//   - a destination's hop list is the union of its hop lists across
//     stores, deduplicated by (TTL, address) — the first observation's
//     RTT wins, in worker order;
//   - the same TTL with differing addresses keeps all of them and emits
//     a MultiPath record;
//   - Reached is the OR across stores; Length comes from a reached
//     store when any reached (the measured distance), else the maximum;
//   - iteration is position-independent: destinations and hops are
//     sorted with the family's address order, so the merged store is
//     deterministic regardless of worker completion order.
//
// The merge streams: trace.UnionOf's k-way merge surfaces each
// destination's routes adjacently (earlier workers first on ties), so
// only one destination's working set is live at a time — no map of
// every route across every store is built, and the output lands
// directly in a slab-backed store.
func mergeStores[A comparable](fam core.Family[A], collectRoutes bool,
	stores []*trace.StoreOf[A]) (*trace.StoreOf[A], []MultiPath[A]) {

	type hopKey struct {
		ttl  uint8
		addr A
	}
	totalRoutes, totalIfaces := 0, 0
	for _, st := range stores {
		totalRoutes += st.NumRoutes()
		totalIfaces += st.Interfaces().Len()
	}
	merged := trace.NewStoreOfSized[A](collectRoutes, fam.FormatAddr, fam.AddrLess,
		totalRoutes, totalIfaces)
	for _, st := range stores {
		for a := range st.Interfaces().All() {
			merged.AddInterface(a)
		}
	}

	var conflicts []MultiPath[A]
	var cur *trace.RouteOf[A]
	var maxLen uint8 // max Length across this destination's parts
	seen := make(map[hopKey]struct{})
	byTTL := make(map[uint8][]A)

	flush := func() {
		if cur == nil {
			return
		}
		if !cur.Reached {
			cur.Length = maxLen
		}
		sort.SliceStable(cur.Hops, func(i, j int) bool {
			if cur.Hops[i].TTL != cur.Hops[j].TTL {
				return cur.Hops[i].TTL < cur.Hops[j].TTL
			}
			return fam.AddrLess(cur.Hops[i].Addr, cur.Hops[j].Addr)
		})
		for ttl, addrs := range byTTL {
			if len(addrs) > 1 {
				sort.Slice(addrs, func(i, j int) bool { return fam.AddrLess(addrs[i], addrs[j]) })
				conflicts = append(conflicts, MultiPath[A]{Dst: cur.Dst, TTL: ttl, Addrs: addrs})
			}
		}
		merged.RestoreRoute(cur)
		cur = nil
	}

	trace.UnionOf(stores).ForEachRouteSorted(func(r *trace.RouteOf[A]) {
		if cur == nil || r.Dst != cur.Dst {
			flush()
			cur = &trace.RouteOf[A]{Dst: r.Dst}
			maxLen = 0
			clear(seen)
			clear(byTTL)
		}
		if r.Reached {
			cur.Reached = true
			if r.Length > 0 && (cur.Length == 0 || r.Length < cur.Length) {
				// Reached lengths should agree; a migrated shard's
				// halves can differ when only one saw the
				// unreachable — keep the measured (smallest) one.
				cur.Length = r.Length
			}
		}
		if r.Length > maxLen {
			maxLen = r.Length
		}
		for _, h := range r.Hops {
			k := hopKey{ttl: h.TTL, addr: h.Addr}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			cur.Hops = append(cur.Hops, h)
			byTTL[h.TTL] = append(byTTL[h.TTL], h.Addr)
		}
	})
	flush()

	sort.Slice(conflicts, func(i, j int) bool {
		if conflicts[i].Dst != conflicts[j].Dst {
			return fam.AddrLess(conflicts[i].Dst, conflicts[j].Dst)
		}
		return conflicts[i].TTL < conflicts[j].TTL
	})
	return merged, conflicts
}
