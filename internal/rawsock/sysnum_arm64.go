//go:build linux && arm64

package rawsock

// Syscall numbers the stdlib syscall package does not export on every
// architecture (sendmmsg postdates the frozen tables).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
