//go:build linux && (amd64 || arm64)

package rawsock

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// ErrUnsupported is returned by Dial on platforms without the raw-socket
// implementation; on this platform it exists only so callers can test
// errors.Is uniformly.
var ErrUnsupported = errors.New("rawsock: raw-socket transport not supported on this platform")

// errClosed is returned for operations on a closed connection (reads
// translate it to io.EOF, matching the engine's transport contract).
var errClosed = errors.New("rawsock: connection closed")

const (
	ipv4HeaderLen = 20
	// pollTimeout bounds how long a read blocks in the kernel before
	// re-checking the closed and wake flags: Close and Wake are honored
	// within one interval.
	pollTimeout = 100 * time.Millisecond
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count. On 64-bit targets the trailing uint32 pads the
// struct to 64 bytes, matching the C layout (the build tag excludes
// 32-bit targets, whose msghdr field types differ).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// Conn is the raw-socket transport. It implements the engine's
// PacketConn, BatchWriter and BatchReader contracts; NewReader hands out
// additional read handles (sharing the receive socket — the kernel
// delivers each packet to exactly one concurrent reader) for the sharded
// receive pipeline.
type Conn struct {
	sendFD int
	recvFD int
	closed atomic.Bool

	// wrMu serializes WriteBatch callers over the shared scratch below
	// (several sender shards may flush concurrently; sendmmsg on one
	// socket is kernel-serialized anyway).
	wrMu  sync.Mutex
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	addrs []syscall.RawSockaddrInet4

	// rd is the connection's own read state (the single-receiver path).
	rd Reader
}

// Reader is one read handle onto the shared receive socket.
type Reader struct {
	c     *Conn
	woken atomic.Bool
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
}

// Dial opens the send and receive raw sockets. Requires CAP_NET_RAW.
func Dial() (*Conn, error) {
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW|syscall.SOCK_CLOEXEC, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("rawsock: opening send socket (raw sockets need CAP_NET_RAW): %w", err)
	}
	recv, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW|syscall.SOCK_CLOEXEC, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("rawsock: opening receive socket: %w", err)
	}
	tv := syscall.NsecToTimeval(pollTimeout.Nanoseconds())
	if err := syscall.SetsockoptTimeval(recv, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
		syscall.Close(send)
		syscall.Close(recv)
		return nil, fmt.Errorf("rawsock: SO_RCVTIMEO: %w", err)
	}
	// Deep buffers ride out reply bursts and send spikes; best effort —
	// the kernel clamps to its rmem/wmem ceilings.
	syscall.SetsockoptInt(recv, syscall.SOL_SOCKET, syscall.SO_RCVBUF, 4<<20)
	syscall.SetsockoptInt(send, syscall.SOL_SOCKET, syscall.SO_SNDBUF, 4<<20)
	c := &Conn{sendFD: send, recvFD: recv}
	c.rd.c = c
	return c, nil
}

// Close marks the connection closed and closes both sockets; blocked
// readers observe the flag within one poll interval and return io.EOF.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err1 := syscall.Close(c.sendFD)
	err2 := syscall.Close(c.recvFD)
	if err1 != nil {
		return err1
	}
	return err2
}

// NewReader returns an additional read handle for a receive worker.
func (c *Conn) NewReader() *Reader { return &Reader{c: c} }

// WritePacket sends one complete IPv4 packet to the destination in its
// header.
func (c *Conn) WritePacket(pkt []byte) error {
	if c.closed.Load() {
		return errClosed
	}
	if len(pkt) < ipv4HeaderLen {
		return fmt.Errorf("rawsock: packet too short for an IPv4 header: %d bytes", len(pkt))
	}
	var sa syscall.SockaddrInet4
	copy(sa.Addr[:], pkt[16:20])
	if err := syscall.Sendto(c.sendFD, pkt, 0, &sa); err != nil {
		return fmt.Errorf("rawsock: sendto: %w", err)
	}
	return nil
}

// growSend sizes the sendmmsg scratch to n messages. Caller holds wrMu.
func (c *Conn) growSend(n int) {
	if cap(c.hdrs) < n {
		c.hdrs = make([]mmsghdr, n)
		c.iovs = make([]syscall.Iovec, n)
		c.addrs = make([]syscall.RawSockaddrInet4, n)
	}
	c.hdrs = c.hdrs[:n]
	c.iovs = c.iovs[:n]
	c.addrs = c.addrs[:n]
}

// WriteBatch sends pkts with one sendmmsg call, honoring the engine's
// partial-write contract: the returned count is how many packets the
// kernel consumed; a short count with a non-nil error singles out the
// packet that failed (the caller retries it and resubmits the rest). A
// short count with a nil error means the kernel stopped early — the
// caller resubmits the remainder and the failure, if any, surfaces on
// that call's first packet.
func (c *Conn) WriteBatch(pkts [][]byte) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	if c.closed.Load() {
		return 0, errClosed
	}
	c.growSend(len(pkts))
	for i, p := range pkts {
		if len(p) < ipv4HeaderLen {
			return i, fmt.Errorf("rawsock: packet too short for an IPv4 header: %d bytes", len(p))
		}
		a := &c.addrs[i]
		*a = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		copy(a.Addr[:], p[16:20])
		c.iovs[i] = syscall.Iovec{Base: &p[0], Len: uint64(len(p))}
		c.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(a)),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &c.iovs[i],
			Iovlen:  1,
		}}
	}
	n, _, errno := syscall.Syscall6(sysSendmmsg,
		uintptr(c.sendFD), uintptr(unsafe.Pointer(&c.hdrs[0])), uintptr(len(pkts)), 0, 0, 0)
	if errno != 0 {
		// Nothing was sent and the error refers to pkts[0] — per-packet
		// semantics (syscall.Errno carries Temporary for the engine's
		// transient-retry machinery).
		return 0, fmt.Errorf("rawsock: sendmmsg: %w", errno)
	}
	return int(n), nil
}

// readPacket is the shared single-packet receive: polls the socket,
// honoring close (io.EOF) and — when woken is non-nil — Wake (0, nil).
func (c *Conn) readPacket(buf []byte, woken *atomic.Bool) (int, error) {
	for {
		if c.closed.Load() {
			return 0, io.EOF
		}
		if woken != nil && woken.Swap(false) {
			return 0, nil
		}
		n, _, err := syscall.Recvfrom(c.recvFD, buf, 0)
		if err == nil {
			return n, nil
		}
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR {
			continue
		}
		if c.closed.Load() {
			return 0, io.EOF // racing Close: the socket went away under us
		}
		return 0, fmt.Errorf("rawsock: recvfrom: %w", err)
	}
}

// readBatch is the shared recvmmsg receive into bufs: blocks for the
// first packet (MSG_WAITFORONE), then takes whatever else is already
// queued, up to len(bufs). Returns (0, nil) on a poll timeout or Wake so
// the caller can service its queue; io.EOF once closed.
func (c *Conn) readBatch(bufs [][]byte, sizes []int, hdrs *[]mmsghdr, iovs *[]syscall.Iovec, woken *atomic.Bool) (int, error) {
	k := len(bufs)
	if len(sizes) < k {
		k = len(sizes)
	}
	if k == 0 {
		return 0, nil
	}
	if cap(*hdrs) < k {
		*hdrs = make([]mmsghdr, k)
		*iovs = make([]syscall.Iovec, k)
	}
	h, v := (*hdrs)[:k], (*iovs)[:k]
	for i := 0; i < k; i++ {
		v[i] = syscall.Iovec{Base: &bufs[i][0], Len: uint64(len(bufs[i]))}
		h[i] = mmsghdr{hdr: syscall.Msghdr{Iov: &v[i], Iovlen: 1}}
	}
	for {
		if c.closed.Load() {
			return 0, io.EOF
		}
		if woken != nil && woken.Swap(false) {
			return 0, nil
		}
		n, _, errno := syscall.Syscall6(sysRecvmmsg,
			uintptr(c.recvFD), uintptr(unsafe.Pointer(&h[0])), uintptr(k),
			uintptr(syscall.MSG_WAITFORONE), 0, 0)
		if errno == 0 {
			for i := 0; i < int(n); i++ {
				sizes[i] = int(h[i].len)
			}
			return int(n), nil
		}
		if errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK || errno == syscall.EINTR {
			// Poll timeout: let the caller notice closes/wakes promptly.
			return 0, nil
		}
		if c.closed.Load() {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("rawsock: recvmmsg: %w", errno)
	}
}

// ReadPacket receives one complete IPv4 response packet.
func (c *Conn) ReadPacket(buf []byte) (int, error) { return c.readPacket(buf, nil) }

// ReadBatch receives up to len(bufs) response packets with one recvmmsg
// call (after blocking for the first).
func (c *Conn) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	return c.readBatch(bufs, sizes, &c.rd.hdrs, &c.rd.iovs, nil)
}

// ReadPacket receives one packet; (0, nil) reports a Wake interrupt.
func (r *Reader) ReadPacket(buf []byte) (int, error) { return r.c.readPacket(buf, &r.woken) }

// ReadBatch receives up to len(bufs) packets; (0, nil) reports a Wake
// interrupt or an empty poll.
func (r *Reader) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	return r.c.readBatch(bufs, sizes, &r.hdrs, &r.iovs, &r.woken)
}

// Wake releases a blocked ReadPacket/ReadBatch within one poll interval.
func (r *Reader) Wake() { r.woken.Store(true) }
