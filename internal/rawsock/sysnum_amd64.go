//go:build linux && amd64

package rawsock

// Syscall numbers the stdlib syscall package does not export on every
// architecture (sendmmsg postdates the frozen tables).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
