//go:build linux && (amd64 || arm64)

package rawsock

import (
	"encoding/binary"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

const (
	loopback = uint32(0x7f000001) // 127.0.0.1
	// smokePort is a high port nothing should be listening on; the UDP
	// probe to it elicits an ICMP port unreachable from the loopback
	// stack — the same response class a FlashRoute probe reaching its
	// destination produces (paper §3.2).
	smokePort = uint16(44327)
)

// dialOrSkip opens the raw transport, skipping the test where the
// environment denies raw sockets (unprivileged CI).
func dialOrSkip(t *testing.T) *Conn {
	t.Helper()
	c, err := Dial()
	if err != nil {
		if errors.Is(err, syscall.EPERM) || errors.Is(err, syscall.EACCES) {
			t.Skipf("raw sockets unavailable (need CAP_NET_RAW): %v", err)
		}
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func buildSmokeProbe(t *testing.T, ttl uint8) []byte {
	t.Helper()
	buf := make([]byte, 256)
	n := probe.BuildFlashProbe(buf, loopback, loopback, ttl, false, 0, 0, smokePort)
	return buf[:n]
}

// isSmokeReply reports whether pkt is the ICMP port unreachable our
// loopback probe elicits (the ICMP socket sees every ICMP packet on the
// host, so the reader must filter).
func isSmokeReply(pkt []byte) bool {
	r, err := probe.ParseResponse(pkt)
	if err != nil {
		return false
	}
	return r.Hop == loopback &&
		r.ICMP.Type == probe.ICMPTypeDestUnreachable &&
		r.ICMP.Code == probe.ICMPCodePortUnreachable &&
		binary.BigEndian.Uint16(r.ICMP.QuotedTransport[2:4]) == smokePort
}

// TestLoopbackSmoke sends one probe to a closed loopback port over the
// single-packet path and reads back the ICMP port unreachable.
func TestLoopbackSmoke(t *testing.T) {
	c := dialOrSkip(t)
	pkt := buildSmokeProbe(t, probe.MaxTTL)
	if err := c.WritePacket(pkt); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	buf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n, err := c.ReadPacket(buf)
		if err != nil {
			t.Fatalf("ReadPacket: %v", err)
		}
		if n > 0 && isSmokeReply(buf[:n]) {
			return
		}
	}
	t.Fatal("no ICMP port unreachable received on loopback within 5s")
}

// TestLoopbackSmokeBatch drives the same exchange through WriteBatch and
// ReadBatch. The kernel rate-limits ICMP errors per peer, so one matching
// reply out of the batch is success.
func TestLoopbackSmokeBatch(t *testing.T) {
	c := dialOrSkip(t)
	pkts := make([][]byte, 8)
	for i := range pkts {
		pkts[i] = buildSmokeProbe(t, probe.MaxTTL)
	}
	sent := 0
	for sent < len(pkts) {
		n, err := c.WriteBatch(pkts[sent:])
		if err != nil {
			t.Fatalf("WriteBatch after %d packets: %v", sent, err)
		}
		if n == 0 {
			t.Fatalf("WriteBatch made no progress at packet %d", sent)
		}
		sent += n
	}
	bufs := make([][]byte, 16)
	for i := range bufs {
		bufs[i] = make([]byte, 4096)
	}
	sizes := make([]int, len(bufs))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		k, err := c.ReadBatch(bufs, sizes)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		for i := 0; i < k; i++ {
			if isSmokeReply(bufs[i][:sizes[i]]) {
				return
			}
		}
	}
	t.Fatal("no ICMP port unreachable received via ReadBatch within 5s")
}

// TestReaderWake verifies a Reader blocked in ReadPacket returns (0, nil)
// promptly after Wake, and that Close unblocks readers with io.EOF.
func TestReaderWake(t *testing.T) {
	c := dialOrSkip(t)
	r := c.NewReader()

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.ReadPacket(buf)
			if err != nil {
				done <- err
				return
			}
			if n == 0 { // Wake interrupt
				done <- nil
				return
			}
			// Stray ICMP traffic on the host; keep waiting for the wake.
		}
	}()
	time.Sleep(50 * time.Millisecond)
	r.Wake()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("woken ReadPacket returned error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wake did not unblock ReadPacket within 2s")
	}

	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.ReadPacket(buf)
			if err != nil {
				done <- err
				return
			}
			_ = n
		}
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, io.EOF) {
			t.Fatalf("ReadPacket after Close: got %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock ReadPacket within 2s")
	}
}
