//go:build !(linux && (amd64 || arm64))

package rawsock

import "errors"

// ErrUnsupported is returned by Dial on platforms without the raw-socket
// implementation.
var ErrUnsupported = errors.New("rawsock: raw-socket transport requires linux/amd64 or linux/arm64")

// Conn is an inert stub on this platform; Dial never returns one.
type Conn struct{}

// Reader is an inert stub on this platform.
type Reader struct{}

// Dial reports that the platform has no raw-socket implementation.
func Dial() (*Conn, error) { return nil, ErrUnsupported }

func (*Conn) WritePacket([]byte) error                 { return ErrUnsupported }
func (*Conn) WriteBatch([][]byte) (int, error)         { return 0, ErrUnsupported }
func (*Conn) ReadPacket([]byte) (int, error)           { return 0, ErrUnsupported }
func (*Conn) ReadBatch([][]byte, []int) (int, error)   { return 0, ErrUnsupported }
func (*Conn) Close() error                             { return nil }
func (*Conn) NewReader() *Reader                       { return &Reader{} }
func (*Reader) ReadPacket([]byte) (int, error)         { return 0, ErrUnsupported }
func (*Reader) ReadBatch([][]byte, []int) (int, error) { return 0, ErrUnsupported }
func (*Reader) Wake()                                  {}
