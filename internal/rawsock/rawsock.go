// Package rawsock is the Linux raw-socket transport: a PacketConn (plus
// the engine's optional BatchWriter/BatchReader capabilities) backed by
// two raw sockets — an IPPROTO_RAW socket for sending the scanners'
// self-built IPv4 probe packets (IP_HDRINCL is implied, the destination
// is lifted from each packet's header) and an IPPROTO_ICMP socket for
// receiving responses as complete IPv4 packets, exactly the shape
// probe.ParseResponse expects.
//
// Batch I/O maps directly onto sendmmsg(2)/recvmmsg(2), so a scan
// configured with Config.Batch crosses the kernel once per arena instead
// of once per packet. Readers poll with a short SO_RCVTIMEO so Close and
// Wake are honored within one poll interval without goroutine-unsafe fd
// tricks.
//
// Opening raw sockets requires CAP_NET_RAW (typically root); Dial
// returns a descriptive error otherwise. On platforms without the
// implementation (anything but linux/amd64 and linux/arm64) Dial returns
// ErrUnsupported and the types are inert stubs, so callers can link and
// gate on Dial unconditionally.
package rawsock
