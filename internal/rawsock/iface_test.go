package rawsock

import "github.com/flashroute/flashroute/internal/core"

// Compile-time checks that both the Linux implementation and the stub
// satisfy the engine's transport contracts (this file carries no build
// tag on purpose).
var (
	_ core.PacketConn   = (*Conn)(nil)
	_ core.BatchWriter  = (*Conn)(nil)
	_ core.BatchReader  = (*Conn)(nil)
	_ core.PacketReader = (*Reader)(nil)
	_ core.BatchReader  = (*Reader)(nil)
)
