// Package metrics provides the statistical machinery of the paper's
// evaluation: probe/interface counters, PDFs and CDFs over small integer
// supports (Figures 3, 4), per-TTL probing profiles (Figure 7), Jaccard
// similarity of interface sets (Figure 8), and the ICMP-rate-limit
// overprobing analysis (Table 4).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/flashroute/flashroute/internal/trace"
)

// IntHist is a histogram over a small signed-integer support, used for the
// hop-distance difference distributions of Figures 3 and 4.
type IntHist struct {
	min, max int
	counts   []uint64
	total    uint64
	// overflow counts samples outside [min,max]; they are included in the
	// total so fractions remain honest.
	overflow uint64
}

// NewIntHist returns a histogram covering [min, max] inclusive.
func NewIntHist(min, max int) *IntHist {
	if max < min {
		panic("metrics: NewIntHist max < min")
	}
	return &IntHist{min: min, max: max, counts: make([]uint64, max-min+1)}
}

// Add records one sample.
func (h *IntHist) Add(v int) {
	h.total++
	if v < h.min || v > h.max {
		h.overflow++
		return
	}
	h.counts[v-h.min]++
}

// Total returns the number of samples recorded.
func (h *IntHist) Total() uint64 { return h.total }

// PDF returns the fraction of samples equal to v.
func (h *IntHist) PDF(v int) float64 {
	if h.total == 0 || v < h.min || v > h.max {
		return 0
	}
	return float64(h.counts[v-h.min]) / float64(h.total)
}

// CDF returns the fraction of samples <= v.
func (h *IntHist) CDF(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v < h.min {
		return 0
	}
	if v > h.max {
		v = h.max
	}
	var c uint64
	for i := h.min; i <= v; i++ {
		c += h.counts[i-h.min]
	}
	return float64(c) / float64(h.total)
}

// FractionWithin returns the fraction of samples v with |v| <= r — the
// "within one hop" style statistics of §3.3.2 and §3.3.4.
func (h *IntHist) FractionWithin(r int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for v := -r; v <= r; v++ {
		if v >= h.min && v <= h.max {
			c += h.counts[v-h.min]
		}
	}
	return float64(c) / float64(h.total)
}

// WriteTSV emits "value pdf cdf" rows for plotting.
func (h *IntHist) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "value\tpdf\tcdf"); err != nil {
		return err
	}
	for v := h.min; v <= h.max; v++ {
		if _, err := fmt.Fprintf(w, "%d\t%.6f\t%.6f\n", v, h.PDF(v), h.CDF(v)); err != nil {
			return err
		}
	}
	return nil
}

// TTLProfile counts, per TTL, how many targets had a probe issued at that
// TTL — the quantity plotted in Figure 7.
type TTLProfile struct {
	Counts [33]uint64 // index = TTL, 1..32 used
}

// Add records that some target was probed at the given TTL.
func (p *TTLProfile) Add(ttl uint8) {
	if int(ttl) < len(p.Counts) {
		p.Counts[ttl]++
	}
}

// WriteTSV emits "ttl targets" rows.
func (p *TTLProfile) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "ttl\ttargets"); err != nil {
		return err
	}
	for ttl := 1; ttl < len(p.Counts); ttl++ {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", ttl, p.Counts[ttl]); err != nil {
			return err
		}
	}
	return nil
}

// Jaccard returns the Jaccard index |a∩b| / |a∪b| of two interface sets.
// Identical sets yield 1, disjoint sets 0; two empty sets yield 1.
func Jaccard(a, b trace.InterfaceSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for addr := range small {
		if large.Has(addr) {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// HopMapper resolves which interface a probe (dst, ttl) would hit, per a
// reference topology (the paper uses the Scamper-discovered topology for
// its Table 4 analysis). ok is false if the reference topology has no
// responding hop there.
type HopMapper func(dst uint32, ttl uint8) (hop uint32, ok bool)

// Overprobe implements the paper's router-overprobing analysis (§4.2.2):
// it replays a tool's probe stream against a reference topology and counts
// interfaces that receive more probes than the ICMP rate limit in any
// one-second window of the scan, plus the number of probes in excess
// (which the rate-limited router would not answer).
type Overprobe struct {
	limit  int
	mapper HopMapper
	state  map[uint32]*ovState
}

type ovState struct {
	second     int64
	inSecond   int
	dropped    uint64
	overprobed bool
}

// NewOverprobe returns an analyzer assuming `limit` ICMP responses per
// second per interface (the paper uses 500 pps, the upper bound of [19]).
func NewOverprobe(limit int, mapper HopMapper) *Overprobe {
	return &Overprobe{limit: limit, mapper: mapper, state: make(map[uint32]*ovState)}
}

// Observe feeds one probe issuance (destination, TTL, time since scan
// start). It must be called in nondecreasing time order per interface;
// the engines' probe observers satisfy this naturally.
func (o *Overprobe) Observe(dst uint32, ttl uint8, at time.Duration) {
	hop, ok := o.mapper(dst, ttl)
	if !ok {
		return
	}
	s := o.state[hop]
	if s == nil {
		s = &ovState{second: -1}
		o.state[hop] = s
	}
	sec := int64(at / time.Second)
	if sec != s.second {
		s.second = sec
		s.inSecond = 0
	}
	s.inSecond++
	if s.inSecond > o.limit {
		s.dropped++
		s.overprobed = true
	}
}

// Result returns the number of overprobed interfaces and the total number
// of dropped (unanswered) probes.
func (o *Overprobe) Result() (overprobedInterfaces int, droppedProbes uint64) {
	for _, s := range o.state {
		if s.overprobed {
			overprobedInterfaces++
		}
		droppedProbes += s.dropped
	}
	return
}

// JaccardByDistance computes, for each hop distance d from the
// destination, the Jaccard index between the interfaces that scans A and B
// observed at that distance — Figure 8. Distance 0 is the destination
// itself; distance d is the hop d positions before the end of the route.
// Only destinations in the same /24 block are compared, so A and B must
// cover the same universe.
func JaccardByDistance(a, b *trace.Store, maxDist int) []float64 {
	setsA := interfacesByDistance(a, maxDist)
	setsB := interfacesByDistance(b, maxDist)
	out := make([]float64, maxDist+1)
	for d := 0; d <= maxDist; d++ {
		out[d] = Jaccard(setsA[d], setsB[d])
	}
	return out
}

func interfacesByDistance(st *trace.Store, maxDist int) []trace.InterfaceSet {
	sets := make([]trace.InterfaceSet, maxDist+1)
	for d := range sets {
		sets[d] = make(trace.InterfaceSet)
	}
	st.ForEachRoute(func(r *trace.Route) {
		if r.Length == 0 {
			return
		}
		for _, h := range r.Hops {
			d := int(r.Length) - int(h.TTL)
			if d >= 0 && d <= maxDist {
				sets[d].Add(h.Addr)
			}
		}
	})
	return sets
}

// Resilience summarizes a scan's loss-tolerance accounting: what the
// network did to packets (as counted by the impairment layer) and what
// the scanner did about it (retransmissions issued, duplicate replies
// discarded). All-zero on a perfect network with retries disabled.
type Resilience struct {
	ProbesLost          uint64 // outbound probes the network dropped
	RepliesLost         uint64 // responses the network dropped
	Duplicates          uint64 // packets the network duplicated
	Reordered           uint64 // responses delayed by the reordering window
	Retransmitted       uint64 // probes the scanner re-issued (preprobe + forward retries)
	DuplicatesDiscarded uint64 // replies the scanner dropped as already processed
	ReadErrors          uint64 // receive-path read errors (distinct from unparsed packets)
	SendErrors          uint64 // probes abandoned after WritePacket failed permanently
	SendRetries         uint64 // transient write failures recovered by retrying
}

// Any reports whether anything at all happened — used to keep the
// perfect-network report output unchanged.
func (r *Resilience) Any() bool {
	return r.ProbesLost != 0 || r.RepliesLost != 0 || r.Duplicates != 0 ||
		r.Reordered != 0 || r.Retransmitted != 0 || r.DuplicatesDiscarded != 0 ||
		r.ReadErrors != 0 || r.SendErrors != 0 || r.SendRetries != 0
}

// WriteText renders the resilience counters as report lines.
func (r *Resilience) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"probes lost:          %d\n"+
			"replies lost:         %d\n"+
			"duplicated packets:   %d\n"+
			"reordered replies:    %d\n"+
			"retransmitted probes: %d\n"+
			"duplicates discarded: %d\n"+
			"read errors:          %d\n"+
			"send errors:          %d\n"+
			"send retries:         %d\n",
		r.ProbesLost, r.RepliesLost, r.Duplicates,
		r.Reordered, r.Retransmitted, r.DuplicatesDiscarded, r.ReadErrors,
		r.SendErrors, r.SendRetries)
	return err
}

// FormatDuration renders a scan duration the way the paper's tables do:
// M:SS.cc or H:MM:SS.cc.
func FormatDuration(d time.Duration) string {
	cs := d.Milliseconds() / 10
	h := cs / 360000
	m := cs % 360000 / 6000
	s := cs % 6000 / 100
	f := cs % 100
	if h > 0 {
		return fmt.Sprintf("%d:%02d:%02d.%02d", h, m, s, f)
	}
	return fmt.Sprintf("%d:%02d.%02d", m, s, f)
}

// SortedKeys returns the keys of a uint32-keyed map in ascending order
// (deterministic reporting helper).
func SortedKeys[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
