package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/flashroute/flashroute/internal/trace"
)

func TestIntHistPDFCDF(t *testing.T) {
	h := NewIntHist(-5, 5)
	for _, v := range []int{0, 0, 0, 1, -1, 2, 7} { // 7 overflows
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
	if got := h.PDF(0); math.Abs(got-3.0/7) > 1e-9 {
		t.Fatalf("PDF(0)=%v", got)
	}
	if got := h.CDF(0); math.Abs(got-4.0/7) > 1e-9 { // -1 and three 0s
		t.Fatalf("CDF(0)=%v", got)
	}
	if got := h.CDF(5); math.Abs(got-6.0/7) > 1e-9 { // overflow excluded
		t.Fatalf("CDF(5)=%v", got)
	}
	if got := h.FractionWithin(1); math.Abs(got-5.0/7) > 1e-9 {
		t.Fatalf("FractionWithin(1)=%v", got)
	}
	if h.CDF(-6) != 0 || h.PDF(9) != 0 {
		t.Fatal("out-of-range queries")
	}
}

func TestIntHistCDFMonotoneProperty(t *testing.T) {
	h := NewIntHist(-32, 32)
	prop := func(vals []int8) bool {
		for _, v := range vals {
			h.Add(int(v) % 33)
		}
		prev := 0.0
		for v := -32; v <= 32; v++ {
			c := h.CDF(v)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHistWriteTSV(t *testing.T) {
	h := NewIntHist(0, 2)
	h.Add(1)
	var sb strings.Builder
	if err := h.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 || lines[0] != "value\tpdf\tcdf" {
		t.Fatalf("tsv %q", sb.String())
	}
}

func TestJaccard(t *testing.T) {
	a := trace.InterfaceSet{1: {}, 2: {}, 3: {}}
	b := trace.InterfaceSet{2: {}, 3: {}, 4: {}}
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("jaccard=%v want 0.5", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("identical sets")
	}
	if Jaccard(a, trace.InterfaceSet{}) != 0 {
		t.Fatal("disjoint with empty")
	}
	if Jaccard(trace.InterfaceSet{}, trace.InterfaceSet{}) != 1 {
		t.Fatal("two empty sets")
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		a, b := make(trace.InterfaceSet), make(trace.InterfaceSet)
		for _, x := range xs {
			a[uint32(x)] = struct{}{}
		}
		for _, y := range ys {
			b[uint32(y)] = struct{}{}
		}
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTLProfile(t *testing.T) {
	var p TTLProfile
	p.Add(1)
	p.Add(16)
	p.Add(16)
	p.Add(40) // out of range, ignored
	if p.Counts[16] != 2 || p.Counts[1] != 1 {
		t.Fatalf("counts %v", p.Counts)
	}
	var sb strings.Builder
	if err := p.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "16\t2") {
		t.Fatalf("tsv %q", sb.String())
	}
}

func TestOverprobe(t *testing.T) {
	// Every probe to any destination at TTL 5 maps to interface 0xAA.
	mapper := func(dst uint32, ttl uint8) (uint32, bool) {
		if ttl == 5 {
			return 0xAA, true
		}
		return 0, false
	}
	o := NewOverprobe(10, mapper)
	// 15 probes at TTL 5 within the same second: 5 dropped.
	for i := 0; i < 15; i++ {
		o.Observe(uint32(i), 5, 100*time.Millisecond)
	}
	// Probes at unmapped TTLs never count.
	for i := 0; i < 100; i++ {
		o.Observe(uint32(i), 9, 100*time.Millisecond)
	}
	over, dropped := o.Result()
	if over != 1 || dropped != 5 {
		t.Fatalf("over=%d dropped=%d want 1,5", over, dropped)
	}
	// Next second: budget refreshes; 10 more probes are all fine.
	for i := 0; i < 10; i++ {
		o.Observe(uint32(i), 5, 1100*time.Millisecond)
	}
	over, dropped = o.Result()
	if over != 1 || dropped != 5 {
		t.Fatalf("after refresh: over=%d dropped=%d", over, dropped)
	}
}

func TestJaccardByDistance(t *testing.T) {
	// Scan A and B agree far from destinations, disagree at distance 0-1.
	a, b := trace.NewStore(true), trace.NewStore(true)
	for i := uint32(0); i < 50; i++ {
		dst := 0x04000000 + i<<8 + 9
		// Shared infra at TTLs 1,2 (distance 3,2 from dest at length 4).
		a.AddHop(dst, 1, 0xF0000001, 0)
		b.AddHop(dst, 1, 0xF0000001, 0)
		a.AddHop(dst, 2, 0xF0000002, 0)
		b.AddHop(dst, 2, 0xF0000002, 0)
		// Distinct last hops and destinations.
		a.AddHop(dst, 3, 0x0A000000+i, 0)
		b.AddHop(dst, 3, 0x0B000000+i, 0)
		a.SetReached(dst, 4, dst, 0)
		b.SetReached(dst, 4, dst^1, 0)
	}
	j := JaccardByDistance(a, b, 3)
	if j[0] != 0 || j[1] != 0 {
		t.Fatalf("near-destination similarity should be 0: %v", j)
	}
	if j[2] != 1 || j[3] != 1 {
		t.Fatalf("far similarity should be 1: %v", j)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		17*time.Minute + 16*time.Second + 560*time.Millisecond: "17:16.56",
		time.Hour + 15*time.Second + 210*time.Millisecond:      "1:00:15.21",
		3*time.Hour + 43*time.Minute + 27*time.Second:          "3:43:27.00",
		time.Second: "0:01.00",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Fatalf("FormatDuration(%v)=%q want %q", d, got, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[uint32]int{5: 1, 1: 2, 9: 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("sorted %v", got)
	}
}
