package trace

// StripedStoreOf is a result store split into per-writer stripes for the
// sharded receive pipeline: worker i writes only Stripe(i), so AddHop and
// SetReached never contend across workers. The engine's block-affinity
// dispatch guarantees every destination is written by exactly one worker,
// making the stripes' route maps disjoint by construction; interface sets
// may overlap (the same router answers probes to destinations owned by
// different workers) and are unioned at Merge.
type StripedStoreOf[A comparable] struct {
	stripes []*StoreOf[A]

	collectRoutes bool
	format        func(A) string
	less          func(A, A) bool
}

// NewStripedStoreOf returns an n-stripe store. routeHint and ifaceHint are
// capacity hints for the whole scan; each stripe receives its share.
func NewStripedStoreOf[A comparable](n int, collectRoutes bool, format func(A) string, less func(A, A) bool, routeHint, ifaceHint int) *StripedStoreOf[A] {
	if n < 1 {
		n = 1
	}
	st := &StripedStoreOf[A]{
		stripes:       make([]*StoreOf[A], n),
		collectRoutes: collectRoutes,
		format:        format,
		less:          less,
	}
	for i := range st.stripes {
		st.stripes[i] = NewStoreOfSized(collectRoutes, format, less,
			routeHint/n, ifaceHint/n)
	}
	return st
}

// Stripe returns stripe i, a plain single-writer store.
func (st *StripedStoreOf[A]) Stripe(i int) *StoreOf[A] { return st.stripes[i] }

// Merge combines all stripes into one store: route entries are moved (the
// stripes must be destination-disjoint, which block-affinity dispatch
// guarantees) and interface sets unioned. Call after all writers have
// stopped; the stripes must not be written afterwards.
func (st *StripedStoreOf[A]) Merge() *StoreOf[A] {
	routes, ifaces := 0, 0
	for _, s := range st.stripes {
		routes += len(s.routes)
		ifaces += len(s.interfaces)
	}
	out := NewStoreOfSized(st.collectRoutes, st.format, st.less, routes, ifaces)
	for _, s := range st.stripes {
		for dst, r := range s.routes {
			out.routes[dst] = r
		}
		for a := range s.interfaces {
			out.interfaces[a] = struct{}{}
		}
	}
	return out
}
