package trace

// StripedStoreOf is a result store split into per-writer stripes for the
// sharded receive pipeline: worker i writes only Stripe(i), so AddHopAt
// and SetReachedAt never contend across workers. The engine's
// block-affinity dispatch guarantees every destination is written by
// exactly one worker, making the stripes' routes disjoint by
// construction; interface sets may overlap (the same router answers
// probes to destinations owned by different workers) and are unioned at
// Union.
type StripedStoreOf[A comparable] struct {
	stripes []*StoreOf[A]

	collectRoutes bool
	format        func(A) string
	less          func(A, A) bool
	hash          func(A) uint64
}

// NewStripedStoreOf returns an n-stripe slot-mode store over a
// blocks-block universe: worker i owns the blocks ≡ i (mod n), so its
// stripe gets ceil(blocks/n) slots and the engine addresses a block's
// record as slot block/n. ifaceHint is an interface-count hint for the
// whole scan; each stripe receives its share.
func NewStripedStoreOf[A comparable](n int, collectRoutes bool, format func(A) string, less func(A, A) bool, hash func(A) uint64, blocks, ifaceHint int) *StripedStoreOf[A] {
	if n < 1 {
		n = 1
	}
	st := &StripedStoreOf[A]{
		stripes:       make([]*StoreOf[A], n),
		collectRoutes: collectRoutes,
		format:        format,
		less:          less,
		hash:          hash,
	}
	perStripe := (blocks + n - 1) / n
	for i := range st.stripes {
		st.stripes[i] = NewSlotStoreOf(collectRoutes, format, less, hash,
			perStripe, ifaceHint/n)
	}
	return st
}

// Stripe returns stripe i, a plain single-writer store.
func (st *StripedStoreOf[A]) Stripe(i int) *StoreOf[A] { return st.stripes[i] }

// Union returns a read view over all stripes as one store: routes stay in
// place in their stripes (no copy — emit k-way merges the per-stripe
// sorted views), and the interface sets, which are small relative to the
// hop slabs, are unioned eagerly. Call after all writers have stopped;
// the stripes must not be written afterwards.
func (st *StripedStoreOf[A]) Union() *StoreOf[A] {
	out := UnionOf(st.stripes)
	if out == st.stripes[0] {
		return out
	}
	total := 0
	for _, s := range st.stripes {
		total += s.ifaces.Len()
	}
	out.ifaces = newInterfaceTable[A](st.hash, total)
	for _, s := range st.stripes {
		s.ifaces.ForEach(func(a A) { out.ifaces.Add(a) })
	}
	return out
}

// UnionOf returns a route-only read view over stores: sorted iteration
// k-way merges the parts without copying them, and on equal destinations
// (allowed here, unlike the engine's disjoint stripes) emits the
// earlier-listed store's route first, so callers can group adjacent
// duplicates with a stable precedence. Stores that are themselves union
// views are flattened, preserving listing order. Unlike
// StripedStoreOf.Union, the view's own interface set stays empty —
// callers needing interfaces iterate the parts (the mid-scan checkpoint
// encoder's path). A single plain store is returned as itself.
func UnionOf[A comparable](stores []*StoreOf[A]) *StoreOf[A] {
	flat := make([]*StoreOf[A], 0, len(stores))
	for _, s := range stores {
		if s.parts != nil {
			flat = append(flat, s.parts...)
		} else {
			flat = append(flat, s)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &StoreOf[A]{
		collectRoutes: flat[0].collectRoutes,
		format:        flat[0].format,
		less:          flat[0].less,
		parts:         flat,
	}
}
