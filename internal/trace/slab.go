package trace

import (
	"time"
	"unsafe"
)

// The hop slab is the store's only per-hop storage: a chunked
// structure-of-arrays pool that every route's hops append into, linked
// by index. Compared to a []HopOf per route this removes the slice
// header and the repeated grow-and-copy of per-route appends (a route's
// hops arrive one at a time over the whole scan), and it makes the
// append path allocation-free except for one chunk allocation per 4096
// hops — amortized to zero on the receive hot path.
const (
	hopChunkShift = 12
	hopChunkSize  = 1 << hopChunkShift
	hopChunkMask  = hopChunkSize - 1
)

// hopChunk holds hopChunkSize hops as parallel arrays. Splitting the
// fields keeps the uint8 TTLs from padding every entry to the widest
// alignment: a v4 hop costs 17 bytes here vs 24 in a []HopOf.
type hopChunk[A comparable] struct {
	addr [hopChunkSize]A
	rtt  [hopChunkSize]int64 // time.Duration ticks
	next [hopChunkSize]int32 // intra-route chain link; -1 ends the chain
	ttl  [hopChunkSize]uint8
}

type hopSlab[A comparable] struct {
	chunks []*hopChunk[A]
	n      int
}

// append stores one hop and returns its slab index.
func (s *hopSlab[A]) append(ttl uint8, addr A, rtt time.Duration) int32 {
	i := s.n
	if i>>hopChunkShift == len(s.chunks) {
		s.chunks = append(s.chunks, new(hopChunk[A]))
	}
	c := s.chunks[i>>hopChunkShift]
	j := i & hopChunkMask
	c.addr[j] = addr
	c.rtt[j] = int64(rtt)
	c.next[j] = -1
	c.ttl[j] = ttl
	s.n++
	return int32(i)
}

func (s *hopSlab[A]) setNext(i, next int32) {
	s.chunks[i>>hopChunkShift].next[i&hopChunkMask] = next
}

func (s *hopSlab[A]) at(i int32) (ttl uint8, addr A, rtt time.Duration, next int32) {
	c := s.chunks[i>>hopChunkShift]
	j := i & hopChunkMask
	return c.ttl[j], c.addr[j], time.Duration(c.rtt[j]), c.next[j]
}

// reserve pre-allocates chunks for n total hops.
func (s *hopSlab[A]) reserve(n int) {
	for len(s.chunks)<<hopChunkShift < n {
		s.chunks = append(s.chunks, new(hopChunk[A]))
	}
}

func (s *hopSlab[A]) memoryBytes() uint64 {
	var c hopChunk[A]
	return uint64(len(s.chunks)) * uint64(unsafe.Sizeof(c))
}
