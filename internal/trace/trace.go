// Package trace holds the measurement results of a scan: discovered
// interfaces, per-destination routes, and the analyses the paper performs
// on them (route lengths, loops, on-route destination appearances).
//
// FlashRoute itself is deliberately minimal about results — responses are
// self-describing (paper §3.1), so result collection is a pure consumer of
// the response stream and never feeds back into probing. That separation
// is preserved here: engines emit (destination, TTL, hop, RTT) tuples and
// "destination reached" events; this package stores and analyzes them.
//
// The store is generic over the address representation: the IPv4 engine
// instantiates it at uint32 (the Hop/Route/Store aliases below), the IPv6
// engine at its 16-byte address type. Formatting and ordering — the only
// family-specific operations the store needs — are injected at
// construction.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

// HopOf is one discovered interface on a route.
type HopOf[A comparable] struct {
	TTL  uint8         // hop distance from the vantage point
	Addr A             // interface address that responded
	RTT  time.Duration // round-trip time derived from the probe timestamp
}

// RouteOf is the discovered path to one destination.
type RouteOf[A comparable] struct {
	Dst     A          // the probed destination address
	Hops    []HopOf[A] // sorted by TTL ascending; gaps are unresponsive hops
	Reached bool       // destination answered (host/port/proto unreachable)
	// Length is the hop distance of the destination if Reached, else the
	// largest responding TTL observed.
	Length uint8
}

// InterfaceSetOf is a set of interface addresses.
type InterfaceSetOf[A comparable] map[A]struct{}

// IPv4 instantiations, keeping the original names for v4 call sites.
type (
	Hop          = HopOf[uint32]
	Route        = RouteOf[uint32]
	InterfaceSet = InterfaceSetOf[uint32]
	Store        = StoreOf[uint32]
)

// Add inserts addr and reports whether it was newly added.
func (s InterfaceSetOf[A]) Add(addr A) bool {
	if _, ok := s[addr]; ok {
		return false
	}
	s[addr] = struct{}{}
	return true
}

// Has reports membership.
func (s InterfaceSetOf[A]) Has(addr A) bool {
	_, ok := s[addr]
	return ok
}

// Len returns the set cardinality.
func (s InterfaceSetOf[A]) Len() int { return len(s) }

// StoreOf accumulates scan results. It is written by a single receiver
// goroutine (the engines' response thread) and read after the scan; it is
// not safe for concurrent mutation.
type StoreOf[A comparable] struct {
	routes     map[A]*RouteOf[A]
	interfaces InterfaceSetOf[A]
	// collectRoutes controls whether per-destination hop lists are kept.
	// Interface counting alone needs far less memory, which matters for
	// full-universe scans.
	collectRoutes bool

	format func(A) string  // address rendering for the writers
	less   func(A, A) bool // address ordering for deterministic output
}

// NewStoreOf returns a store over the address type A; format and less
// supply the family's address rendering and ordering for the writers. If
// collectRoutes is false, only the interface set and per-destination
// reach/length summaries are kept.
func NewStoreOf[A comparable](collectRoutes bool, format func(A) string, less func(A, A) bool) *StoreOf[A] {
	return NewStoreOfSized(collectRoutes, format, less, 0, 0)
}

// NewStoreOfSized is NewStoreOf with capacity hints for the route and
// interface maps, so a scan over a known universe does not pay
// incremental map growth on the receive path (a million-target scan
// rehashes the route map ~20 times from empty). Hints are advisory; 0
// means no hint.
func NewStoreOfSized[A comparable](collectRoutes bool, format func(A) string, less func(A, A) bool, routeHint, ifaceHint int) *StoreOf[A] {
	return &StoreOf[A]{
		routes:        make(map[A]*RouteOf[A], routeHint),
		interfaces:    make(InterfaceSetOf[A], ifaceHint),
		collectRoutes: collectRoutes,
		format:        format,
		less:          less,
	}
}

// NewStore returns an IPv4 store.
func NewStore(collectRoutes bool) *Store {
	return NewStoreOf[uint32](collectRoutes, probe.FormatAddr,
		func(a, b uint32) bool { return a < b })
}

func (st *StoreOf[A]) route(dst A) *RouteOf[A] {
	r := st.routes[dst]
	if r == nil {
		r = &RouteOf[A]{Dst: dst}
		st.routes[dst] = r
	}
	return r
}

// AddHop records a TTL-exceeded response from addr for a probe to dst at
// the given TTL.
func (st *StoreOf[A]) AddHop(dst A, ttl uint8, addr A, rtt time.Duration) {
	st.AddHopReportNew(dst, ttl, addr, rtt)
}

// AddHopReportNew is AddHop, additionally reporting whether addr is a
// never-before-seen interface (Yarrp's neighborhood protection keys off
// this signal).
func (st *StoreOf[A]) AddHopReportNew(dst A, ttl uint8, addr A, rtt time.Duration) bool {
	isNew := st.interfaces.Add(addr)
	r := st.route(dst)
	if ttl > r.Length && !r.Reached {
		r.Length = ttl
	}
	if st.collectRoutes {
		r.Hops = append(r.Hops, HopOf[A]{TTL: ttl, Addr: addr, RTT: rtt})
	}
	return isNew
}

// SetReached records that the destination itself answered. ttl is its hop
// distance when known; pass 0 when the response carries no distance (a
// bare TCP RST), which preserves any previously recorded length.
//
// Destination responses do NOT enter the interface set: the paper's
// "interfaces discovered" metric counts router interfaces revealed by
// TTL-exceeded responses (see DESIGN.md — this is the only reading
// consistent with the paper's Table 3 and §5.1 numbers simultaneously).
func (st *StoreOf[A]) SetReached(dst A, ttl uint8, addr A, rtt time.Duration) {
	r := st.route(dst)
	wasReached := r.Reached
	r.Reached = true
	if ttl > 0 {
		r.Length = ttl
	}
	// Probes beyond the destination's distance all reach it and answer;
	// record the destination hop once.
	if st.collectRoutes && ttl > 0 && !wasReached {
		r.Hops = append(r.Hops, HopOf[A]{TTL: ttl, Addr: addr, RTT: rtt})
	}
}

// Interfaces returns the set of unique responding interfaces.
func (st *StoreOf[A]) Interfaces() InterfaceSetOf[A] { return st.interfaces }

// RestoreRoute installs a fully-formed route record, replacing any
// existing entry for its destination — the checkpoint-resume path, which
// must NOT replay hops through AddHop (that would re-insert hop addresses
// into the interface set with fresh dedup state). Interface-set contents
// are restored separately via AddInterface.
func (st *StoreOf[A]) RestoreRoute(r *RouteOf[A]) { st.routes[r.Dst] = r }

// AddInterface inserts one address into the interface set without any
// route bookkeeping (checkpoint-resume path).
func (st *StoreOf[A]) AddInterface(a A) { st.interfaces[a] = struct{}{} }

// Route returns the route to dst with hops sorted by TTL, or nil if no
// response involving dst was recorded.
func (st *StoreOf[A]) Route(dst A) *RouteOf[A] {
	r := st.routes[dst]
	if r == nil {
		return nil
	}
	sort.Slice(r.Hops, func(i, j int) bool { return r.Hops[i].TTL < r.Hops[j].TTL })
	return r
}

// NumRoutes returns the number of destinations with at least one response.
func (st *StoreOf[A]) NumRoutes() int { return len(st.routes) }

// ForEachRoute calls fn for every stored route. Hop order within a route
// is unspecified unless Route() was used.
func (st *StoreOf[A]) ForEachRoute(fn func(*RouteOf[A])) {
	for _, r := range st.routes {
		fn(r)
	}
}

// HasLoop reports whether the route visits the same interface at two
// TTLs at least two hops apart — the forwarding-loop signature of §5.1
// (stub networks bouncing packets for nonexistent addresses back to their
// ISP). A repeat at adjacent TTLs is not a loop: it is the signature of a
// route that gained or lost one hop mid-scan (route dynamics).
func (r *RouteOf[A]) HasLoop() bool {
	seen := make(map[A]uint8, len(r.Hops))
	for _, h := range r.Hops {
		if prev, ok := seen[h.Addr]; ok {
			d := int(h.TTL) - int(prev)
			if d < 0 {
				d = -d
			}
			if d >= 2 {
				return true
			}
		}
		seen[h.Addr] = h.TTL
	}
	return false
}

// HopAt returns the interface observed at the given TTL, if any.
func (r *RouteOf[A]) HopAt(ttl uint8) (A, bool) {
	for _, h := range r.Hops {
		if h.TTL == ttl {
			return h.Addr, true
		}
	}
	var zero A
	return zero, false
}

// sortedDsts returns the stored destinations in st.less order.
func (st *StoreOf[A]) sortedDsts() []A {
	dsts := make([]A, 0, len(st.routes))
	for d := range st.routes {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return st.less(dsts[i], dsts[j]) })
	return dsts
}

// WriteJSONL writes one JSON object per route:
// {"dst":"a.b.c.d","reached":bool,"length":n,"hops":[{"ttl":n,"addr":"...","rtt_us":n},...]}.
func (st *StoreOf[A]) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	type jsonHop struct {
		TTL   uint8  `json:"ttl"`
		Addr  string `json:"addr"`
		RTTus int64  `json:"rtt_us"`
	}
	type jsonRoute struct {
		Dst     string    `json:"dst"`
		Reached bool      `json:"reached"`
		Length  uint8     `json:"length"`
		Hops    []jsonHop `json:"hops"`
	}
	enc := json.NewEncoder(bw)
	for _, d := range st.sortedDsts() {
		r := st.Route(d)
		jr := jsonRoute{
			Dst:     st.format(d),
			Reached: r.Reached,
			Length:  r.Length,
			Hops:    make([]jsonHop, 0, len(r.Hops)),
		}
		for _, h := range r.Hops {
			jr.Hops = append(jr.Hops, jsonHop{
				TTL: h.TTL, Addr: st.format(h.Addr), RTTus: h.RTT.Microseconds(),
			})
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes all stored routes as CSV rows:
// destination,ttl,hop,rtt_us,reached.
func (st *StoreOf[A]) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "destination,ttl,hop,rtt_us,reached"); err != nil {
		return err
	}
	for _, d := range st.sortedDsts() {
		r := st.Route(d)
		for _, h := range r.Hops {
			reached := 0
			if r.Reached && h.TTL == r.Length {
				reached = 1
			}
			if _, err := fmt.Fprintf(bw, "%s,%d,%s,%d,%d\n",
				st.format(d), h.TTL, st.format(h.Addr),
				h.RTT.Microseconds(), reached); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
