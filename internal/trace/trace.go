// Package trace holds the measurement results of a scan: discovered
// interfaces, per-destination routes, and the analyses the paper performs
// on them (route lengths, loops, on-route destination appearances).
//
// FlashRoute itself is deliberately minimal about results — responses are
// self-describing (paper §3.1), so result collection is a pure consumer of
// the response stream and never feeds back into probing. That separation
// is preserved here: engines emit (destination, TTL, hop, RTT) tuples and
// "destination reached" events; this package stores and analyzes them.
//
// The store is generic over the address representation: the IPv4 engine
// instantiates it at uint32 (the Hop/Route/Store aliases below), the IPv6
// engine at its 16-byte address type. Formatting and ordering — the only
// family-specific operations the store needs — are injected at
// construction.
//
// # Layout
//
// Results are kept compact rather than as a map of pointers. Route
// records live in one flat array; the engine addresses them by block
// slot (it already knows dst → block, so the per-reply map lookup
// disappears — see AddHopAt), while dst-keyed callers (the Yarrp and
// Scamper baselines, cluster merging, checkpoint restore) go through an
// index map. Hops append into a chunked slab shared by all routes and
// chain by index, so recording a reply allocates nothing in steady
// state; the interface set is the open-addressed InterfaceTableOf. Emit
// is streaming: the writers walk a sorted view (k-way merged across
// stripes for StripedStoreOf.Union results) instead of materializing a
// combined copy of the topology.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
	"unsafe"

	"github.com/flashroute/flashroute/internal/probe"
)

// HopOf is one discovered interface on a route.
type HopOf[A comparable] struct {
	TTL  uint8         // hop distance from the vantage point
	Addr A             // interface address that responded
	RTT  time.Duration // round-trip time derived from the probe timestamp
}

// RouteOf is the discovered path to one destination.
type RouteOf[A comparable] struct {
	Dst     A          // the probed destination address
	Hops    []HopOf[A] // sorted by TTL ascending; gaps are unresponsive hops
	Reached bool       // destination answered (host/port/proto unreachable)
	// Length is the hop distance of the destination if Reached, else the
	// largest responding TTL observed.
	Length uint8
}

// IPv4 instantiations, keeping the original names for v4 call sites.
type (
	Hop          = HopOf[uint32]
	Route        = RouteOf[uint32]
	InterfaceSet = InterfaceSetOf[uint32]
	Store        = StoreOf[uint32]
)

// routeRec is the in-store route record: fixed size, no slice header.
// Hops chain through the slab from head; tail makes append O(1).
type routeRec[A comparable] struct {
	dst     A
	head    int32 // first hop slab index, -1 = none
	tail    int32 // last hop slab index, -1 = none
	nhops   int32
	length  uint8
	reached bool
}

// StoreOf accumulates scan results. It is written by a single receiver
// goroutine (the engines' response thread) and read after the scan; it is
// not safe for concurrent mutation.
//
// A store addresses routes one of two ways. Slot mode (NewSlotStoreOf)
// backs the engines: the caller supplies the block slot with each write
// (AddHopAt / SetReachedAt) and the store keeps a flat slot → record
// array — no hashing on the hot path. Map mode (NewStoreOf and friends)
// keeps a dst → record index for callers without a block structure. A
// slot-mode store also accepts dst-keyed calls (checkpoint fallback,
// post-scan reads) through a lazily built index; a destination must not
// be written through both paths.
type StoreOf[A comparable] struct {
	recs   []routeRec[A]
	slots  []int32     // slot → record index+1; nil in map mode
	index  map[A]int32 // dst → record index+1; nil until needed in slot mode
	hops   hopSlab[A]
	ifaces InterfaceTableOf[A]

	// collectRoutes controls whether per-destination hop lists are kept.
	// Interface counting alone needs far less memory, which matters for
	// full-universe scans.
	collectRoutes bool

	format func(A) string  // address rendering for the writers
	less   func(A, A) bool // address ordering for deterministic output

	// parts is non-nil for the union view returned by
	// StripedStoreOf.Union: reads delegate to the referenced stripes
	// (which stay dst-disjoint by block-affinity dispatch) instead of
	// copying them. A union store must not be written.
	parts []*StoreOf[A]
}

// NewStoreOf returns a map-mode store over the address type A; format and
// less supply the family's address rendering and ordering for the
// writers. If collectRoutes is false, only the interface set and
// per-destination reach/length summaries are kept.
func NewStoreOf[A comparable](collectRoutes bool, format func(A) string, less func(A, A) bool) *StoreOf[A] {
	return NewStoreOfSized(collectRoutes, format, less, 0, 0)
}

// NewStoreOfSized is NewStoreOf with capacity hints for the route records
// and the interface table, so a scan over a known universe does not pay
// incremental growth on the receive path. Hints are advisory; 0 means no
// hint.
func NewStoreOfSized[A comparable](collectRoutes bool, format func(A) string, less func(A, A) bool, routeHint, ifaceHint int) *StoreOf[A] {
	return &StoreOf[A]{
		recs:          make([]routeRec[A], 0, routeHint),
		index:         make(map[A]int32, routeHint),
		ifaces:        newInterfaceTable[A](memHashOf[A](), ifaceHint),
		collectRoutes: collectRoutes,
		format:        format,
		less:          less,
	}
}

// NewSlotStoreOf returns a slot-mode store with slots block slots: the
// engine's store, written through AddHopAt/SetReachedAt with the block
// slot it already computed for the reply. hash feeds the interface
// table (the family's address hash).
func NewSlotStoreOf[A comparable](collectRoutes bool, format func(A) string, less func(A, A) bool, hash func(A) uint64, slots, ifaceHint int) *StoreOf[A] {
	return &StoreOf[A]{
		recs:          make([]routeRec[A], 0, slots),
		slots:         make([]int32, slots),
		ifaces:        newInterfaceTable[A](hash, ifaceHint),
		collectRoutes: collectRoutes,
		format:        format,
		less:          less,
	}
}

// NewStore returns an IPv4 map-mode store.
func NewStore(collectRoutes bool) *Store {
	return NewStoreOf[uint32](collectRoutes, probe.FormatAddr,
		func(a, b uint32) bool { return a < b })
}

// newRec appends a fresh record for dst and returns its index.
func (st *StoreOf[A]) newRec(dst A) int32 {
	ri := int32(len(st.recs))
	st.recs = append(st.recs, routeRec[A]{dst: dst, head: -1, tail: -1})
	return ri
}

// recAt returns the record index for (slot, dst), creating it on first
// touch. Slot-mode only. A block's representative address can change
// mid-scan (§5.4 extra-scan target variation), in which case the block's
// later destinations overflow to the dst index so each keeps its own
// route, as the map store did.
func (st *StoreOf[A]) recAt(slot int, dst A) int32 {
	ri := st.slots[slot]
	if ri == 0 {
		ri = st.newRec(dst) + 1
		st.slots[slot] = ri
		if st.index != nil {
			st.index[dst] = ri
		}
		return ri - 1
	}
	if st.recs[ri-1].dst != dst {
		return st.recFor(dst)
	}
	return ri - 1
}

// recFor returns the record index for dst, creating it on first touch.
func (st *StoreOf[A]) recFor(dst A) int32 {
	if st.index == nil {
		st.buildIndex()
	}
	ri := st.index[dst]
	if ri == 0 {
		ri = st.newRec(dst) + 1
		st.index[dst] = ri
	}
	return ri - 1
}

// lookup returns the record index for dst, or -1. Read-only: never
// creates.
func (st *StoreOf[A]) lookup(dst A) int32 {
	if st.index == nil {
		st.buildIndex()
	}
	return st.index[dst] - 1
}

// buildIndex constructs the dst index of a slot-mode store on first
// dst-keyed access — post-scan in practice, so the engine's receive path
// never touches a map.
func (st *StoreOf[A]) buildIndex() {
	st.index = make(map[A]int32, len(st.recs))
	for i := range st.recs {
		st.index[st.recs[i].dst] = int32(i) + 1
	}
}

// addHop records one TTL-exceeded observation on record ri.
func (st *StoreOf[A]) addHop(ri int32, ttl uint8, addr A, rtt time.Duration) bool {
	isNew := st.ifaces.Add(addr)
	r := &st.recs[ri]
	if ttl > r.length && !r.reached {
		r.length = ttl
	}
	if st.collectRoutes {
		h := st.hops.append(ttl, addr, rtt)
		if r.tail >= 0 {
			st.hops.setNext(r.tail, h)
		} else {
			r.head = h
		}
		r.tail = h
		r.nhops++
	}
	return isNew
}

// AddHop records a TTL-exceeded response from addr for a probe to dst at
// the given TTL.
func (st *StoreOf[A]) AddHop(dst A, ttl uint8, addr A, rtt time.Duration) {
	st.AddHopReportNew(dst, ttl, addr, rtt)
}

// AddHopReportNew is AddHop, additionally reporting whether addr is a
// never-before-seen interface (Yarrp's neighborhood protection keys off
// this signal).
func (st *StoreOf[A]) AddHopReportNew(dst A, ttl uint8, addr A, rtt time.Duration) bool {
	return st.addHop(st.recFor(dst), ttl, addr, rtt)
}

// AddHopAt is AddHop addressed by block slot instead of a map lookup —
// the engine's receive path, which already mapped the reply to its block.
func (st *StoreOf[A]) AddHopAt(slot int, dst A, ttl uint8, addr A, rtt time.Duration) {
	st.addHop(st.recAt(slot, dst), ttl, addr, rtt)
}

// setReached records a destination answer on record ri.
func (st *StoreOf[A]) setReached(ri int32, ttl uint8, addr A, rtt time.Duration) {
	r := &st.recs[ri]
	wasReached := r.reached
	r.reached = true
	if ttl > 0 {
		r.length = ttl
	}
	// Probes beyond the destination's distance all reach it and answer;
	// record the destination hop once.
	if st.collectRoutes && ttl > 0 && !wasReached {
		h := st.hops.append(ttl, addr, rtt)
		if r.tail >= 0 {
			st.hops.setNext(r.tail, h)
		} else {
			r.head = h
		}
		r.tail = h
		r.nhops++
	}
}

// SetReached records that the destination itself answered. ttl is its hop
// distance when known; pass 0 when the response carries no distance (a
// bare TCP RST), which preserves any previously recorded length.
//
// Destination responses do NOT enter the interface set: the paper's
// "interfaces discovered" metric counts router interfaces revealed by
// TTL-exceeded responses (see DESIGN.md — this is the only reading
// consistent with the paper's Table 3 and §5.1 numbers simultaneously).
func (st *StoreOf[A]) SetReached(dst A, ttl uint8, addr A, rtt time.Duration) {
	st.setReached(st.recFor(dst), ttl, addr, rtt)
}

// SetReachedAt is SetReached addressed by block slot (see AddHopAt).
func (st *StoreOf[A]) SetReachedAt(slot int, dst A, ttl uint8, addr A, rtt time.Duration) {
	st.setReached(st.recAt(slot, dst), ttl, addr, rtt)
}

// Interfaces returns the set of unique responding interfaces.
func (st *StoreOf[A]) Interfaces() *InterfaceTableOf[A] { return &st.ifaces }

// AddInterface inserts one address into the interface set without any
// route bookkeeping (checkpoint-resume path).
func (st *StoreOf[A]) AddInterface(a A) { st.ifaces.Add(a) }

// restoreInto resets record ri and installs r's contents.
func (st *StoreOf[A]) restoreInto(ri int32, r *RouteOf[A]) {
	rec := &st.recs[ri]
	rec.head, rec.tail, rec.nhops = -1, -1, 0
	rec.reached = r.Reached
	rec.length = r.Length
	for _, h := range r.Hops {
		hi := st.hops.append(h.TTL, h.Addr, h.RTT)
		if rec.tail >= 0 {
			st.hops.setNext(rec.tail, hi)
		} else {
			rec.head = hi
		}
		rec.tail = hi
		rec.nhops++
	}
}

// RestoreRoute installs a fully-formed route record, replacing any
// existing entry for its destination — the checkpoint-resume path, which
// must NOT replay hops through AddHop (that would re-insert hop addresses
// into the interface set with fresh dedup state). Interface-set contents
// are restored separately via AddInterface.
func (st *StoreOf[A]) RestoreRoute(r *RouteOf[A]) {
	st.restoreInto(st.recFor(r.Dst), r)
}

// RestoreRouteAt is RestoreRoute addressed by block slot (see AddHopAt).
func (st *StoreOf[A]) RestoreRouteAt(slot int, r *RouteOf[A]) {
	st.restoreInto(st.recAt(slot, r.Dst), r)
}

// materializeInto fills out from record ri, reusing out.Hops capacity.
// Hops come out TTL-sorted. The sort runs over the pristine insertion
// order on every call (the slab chain is never reordered), so repeated
// materialization of the same record is identical — unlike the old
// store, which re-sorted a shared slice in place on every Route call
// and could flip equal-TTL hops between calls (see the double-call
// regression test). sort.Slice rather than SliceStable deliberately:
// it reproduces the exact equal-TTL permutation of the pre-slab store,
// keeping emitted bytes identical.
func (st *StoreOf[A]) materializeInto(ri int32, out *RouteOf[A]) {
	rec := &st.recs[ri]
	out.Dst = rec.dst
	out.Reached = rec.reached
	out.Length = rec.length
	out.Hops = out.Hops[:0]
	for h := rec.head; h >= 0; {
		ttl, addr, rtt, next := st.hops.at(h)
		out.Hops = append(out.Hops, HopOf[A]{TTL: ttl, Addr: addr, RTT: rtt})
		h = next
	}
	sort.Slice(out.Hops, func(i, j int) bool { return out.Hops[i].TTL < out.Hops[j].TTL })
}

// Route returns the route to dst with hops sorted by TTL, or nil if no
// response involving dst was recorded. The returned route is a fresh
// copy; mutating it does not affect the store.
func (st *StoreOf[A]) Route(dst A) *RouteOf[A] {
	if st.parts != nil {
		for _, p := range st.parts {
			if r := p.Route(dst); r != nil {
				return r
			}
		}
		return nil
	}
	ri := st.lookup(dst)
	if ri < 0 {
		return nil
	}
	r := &RouteOf[A]{}
	st.materializeInto(ri, r)
	return r
}

// NumRoutes returns the number of destinations with at least one response.
func (st *StoreOf[A]) NumRoutes() int {
	if st.parts != nil {
		n := 0
		for _, p := range st.parts {
			n += p.NumRoutes()
		}
		return n
	}
	return len(st.recs)
}

// ForEachRoute calls fn for every stored route, each a fresh TTL-sorted
// copy that fn may retain. Iteration order is unspecified.
func (st *StoreOf[A]) ForEachRoute(fn func(*RouteOf[A])) {
	if st.parts != nil {
		for _, p := range st.parts {
			p.ForEachRoute(fn)
		}
		return
	}
	for ri := range st.recs {
		r := &RouteOf[A]{}
		st.materializeInto(int32(ri), r)
		fn(r)
	}
}

// sortedRecIdx returns this store's record indexes in st.less order of
// destination.
func (st *StoreOf[A]) sortedRecIdx() []int32 {
	idx := make([]int32, len(st.recs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		return st.less(st.recs[idx[i]].dst, st.recs[idx[j]].dst)
	})
	return idx
}

// ForEachRouteSorted streams every route in ascending destination order —
// a k-way merge across stripes for a union store, with no combined copy
// materialized. The route passed to fn is reused between calls: copy it
// if retained. This is the emit path under WriteJSONL/WriteCSV and the
// checkpoint encoder.
func (st *StoreOf[A]) ForEachRouteSorted(fn func(*RouteOf[A])) {
	var scratch RouteOf[A]
	if st.parts == nil {
		for _, ri := range st.sortedRecIdx() {
			st.materializeInto(ri, &scratch)
			fn(&scratch)
		}
		return
	}
	// K-way merge over per-stripe sorted views. K is the receiver count
	// (single digits): a linear min scan per step beats heap bookkeeping.
	order := make([][]int32, len(st.parts))
	pos := make([]int, len(st.parts))
	for i, p := range st.parts {
		order[i] = p.sortedRecIdx()
	}
	for {
		best := -1
		for i, p := range st.parts {
			if pos[i] >= len(order[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a := p.recs[order[i][pos[i]]].dst
			b := st.parts[best].recs[order[best][pos[best]]].dst
			if st.less(a, b) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		st.parts[best].materializeInto(order[best][pos[best]], &scratch)
		pos[best]++
		fn(&scratch)
	}
}

// HasLoop reports whether the route visits the same interface at two
// TTLs at least two hops apart — the forwarding-loop signature of §5.1
// (stub networks bouncing packets for nonexistent addresses back to their
// ISP). A repeat at adjacent TTLs is not a loop: it is the signature of a
// route that gained or lost one hop mid-scan (route dynamics).
func (r *RouteOf[A]) HasLoop() bool {
	seen := make(map[A]uint8, len(r.Hops))
	for _, h := range r.Hops {
		if prev, ok := seen[h.Addr]; ok {
			d := int(h.TTL) - int(prev)
			if d < 0 {
				d = -d
			}
			if d >= 2 {
				return true
			}
		}
		seen[h.Addr] = h.TTL
	}
	return false
}

// HopAt returns the interface observed at the given TTL, if any.
func (r *RouteOf[A]) HopAt(ttl uint8) (A, bool) {
	for _, h := range r.Hops {
		if h.TTL == ttl {
			return h.Addr, true
		}
	}
	var zero A
	return zero, false
}

// MemoryBytes returns the store's result-state footprint: route records,
// slot array, hop slab, interface table, and the dst index if built. A
// union store reports the sum over its stripes plus its own interface
// table.
func (st *StoreOf[A]) MemoryBytes() uint64 {
	total := st.ifaces.MemoryBytes()
	if st.parts != nil {
		for _, p := range st.parts {
			total += p.MemoryBytes()
		}
		return total
	}
	var rec routeRec[A]
	var addr A
	total += uint64(cap(st.recs)) * uint64(unsafe.Sizeof(rec))
	total += uint64(len(st.slots)) * 4
	total += st.hops.memoryBytes()
	// map overhead approximation: key + 8-byte value + bucket slack.
	total += uint64(len(st.index)) * (uint64(unsafe.Sizeof(addr)) + 12)
	return total
}

// Reserve pre-allocates capacity for the given totals so subsequent
// AddHop/AddHopAt/SetReached calls within them allocate nothing — the
// allocation-regression pins depend on this.
func (st *StoreOf[A]) Reserve(routes, hops, ifaces int) {
	if cap(st.recs) < routes {
		recs := make([]routeRec[A], len(st.recs), routes)
		copy(recs, st.recs)
		st.recs = recs
	}
	st.hops.reserve(hops)
	st.ifaces.Reserve(ifaces)
}

// WriteJSONL writes one JSON object per route:
// {"dst":"a.b.c.d","reached":bool,"length":n,"hops":[{"ttl":n,"addr":"...","rtt_us":n},...]},
// in ascending destination order, streaming — no merged copy of a striped
// store is materialized.
func (st *StoreOf[A]) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	type jsonHop struct {
		TTL   uint8  `json:"ttl"`
		Addr  string `json:"addr"`
		RTTus int64  `json:"rtt_us"`
	}
	type jsonRoute struct {
		Dst     string    `json:"dst"`
		Reached bool      `json:"reached"`
		Length  uint8     `json:"length"`
		Hops    []jsonHop `json:"hops"`
	}
	enc := json.NewEncoder(bw)
	var jr jsonRoute
	var err error
	st.ForEachRouteSorted(func(r *RouteOf[A]) {
		if err != nil {
			return
		}
		jr.Dst = st.format(r.Dst)
		jr.Reached = r.Reached
		jr.Length = r.Length
		jr.Hops = jr.Hops[:0]
		for _, h := range r.Hops {
			jr.Hops = append(jr.Hops, jsonHop{
				TTL: h.TTL, Addr: st.format(h.Addr), RTTus: h.RTT.Microseconds(),
			})
		}
		if jr.Hops == nil {
			jr.Hops = []jsonHop{}
		}
		err = enc.Encode(&jr)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSV writes all stored routes as CSV rows:
// destination,ttl,hop,rtt_us,reached — ascending destination order,
// streaming like WriteJSONL.
func (st *StoreOf[A]) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "destination,ttl,hop,rtt_us,reached"); err != nil {
		return err
	}
	var err error
	st.ForEachRouteSorted(func(r *RouteOf[A]) {
		if err != nil {
			return
		}
		for _, h := range r.Hops {
			reached := 0
			if r.Reached && h.TTL == r.Length {
				reached = 1
			}
			if _, werr := fmt.Fprintf(bw, "%s,%d,%s,%d,%d\n",
				st.format(r.Dst), h.TTL, st.format(h.Addr),
				h.RTT.Microseconds(), reached); werr != nil {
				err = werr
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
