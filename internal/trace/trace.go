// Package trace holds the measurement results of a scan: discovered
// interfaces, per-destination routes, and the analyses the paper performs
// on them (route lengths, loops, on-route destination appearances).
//
// FlashRoute itself is deliberately minimal about results — responses are
// self-describing (paper §3.1), so result collection is a pure consumer of
// the response stream and never feeds back into probing. That separation
// is preserved here: engines emit (destination, TTL, hop, RTT) tuples and
// "destination reached" events; this package stores and analyzes them.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

// Hop is one discovered interface on a route.
type Hop struct {
	TTL  uint8         // hop distance from the vantage point
	Addr uint32        // interface address that responded
	RTT  time.Duration // round-trip time derived from the probe timestamp
}

// Route is the discovered path to one destination.
type Route struct {
	Dst     uint32 // the probed destination address
	Hops    []Hop  // sorted by TTL ascending; gaps are unresponsive hops
	Reached bool   // destination answered (host/port/proto unreachable)
	// Length is the hop distance of the destination if Reached, else the
	// largest responding TTL observed.
	Length uint8
}

// InterfaceSet is a set of interface addresses.
type InterfaceSet map[uint32]struct{}

// Add inserts addr and reports whether it was newly added.
func (s InterfaceSet) Add(addr uint32) bool {
	if _, ok := s[addr]; ok {
		return false
	}
	s[addr] = struct{}{}
	return true
}

// Has reports membership.
func (s InterfaceSet) Has(addr uint32) bool {
	_, ok := s[addr]
	return ok
}

// Len returns the set cardinality.
func (s InterfaceSet) Len() int { return len(s) }

// Store accumulates scan results. It is written by a single receiver
// goroutine (the engines' response thread) and read after the scan; it is
// not safe for concurrent mutation.
type Store struct {
	routes     map[uint32]*Route
	interfaces InterfaceSet
	// CollectRoutes controls whether per-destination hop lists are kept.
	// Interface counting alone needs far less memory, which matters for
	// full-universe scans.
	collectRoutes bool
}

// NewStore returns a Store. If collectRoutes is false, only the interface
// set and per-destination reach/length summaries are kept.
func NewStore(collectRoutes bool) *Store {
	return &Store{
		routes:        make(map[uint32]*Route),
		interfaces:    make(InterfaceSet),
		collectRoutes: collectRoutes,
	}
}

func (st *Store) route(dst uint32) *Route {
	r := st.routes[dst]
	if r == nil {
		r = &Route{Dst: dst}
		st.routes[dst] = r
	}
	return r
}

// AddHop records a TTL-exceeded response from addr for a probe to dst at
// the given TTL.
func (st *Store) AddHop(dst uint32, ttl uint8, addr uint32, rtt time.Duration) {
	st.AddHopReportNew(dst, ttl, addr, rtt)
}

// AddHopReportNew is AddHop, additionally reporting whether addr is a
// never-before-seen interface (Yarrp's neighborhood protection keys off
// this signal).
func (st *Store) AddHopReportNew(dst uint32, ttl uint8, addr uint32, rtt time.Duration) bool {
	isNew := st.interfaces.Add(addr)
	r := st.route(dst)
	if ttl > r.Length && !r.Reached {
		r.Length = ttl
	}
	if st.collectRoutes {
		r.Hops = append(r.Hops, Hop{TTL: ttl, Addr: addr, RTT: rtt})
	}
	return isNew
}

// SetReached records that the destination itself answered. ttl is its hop
// distance when known; pass 0 when the response carries no distance (a
// bare TCP RST), which preserves any previously recorded length.
//
// Destination responses do NOT enter the interface set: the paper's
// "interfaces discovered" metric counts router interfaces revealed by
// TTL-exceeded responses (see DESIGN.md — this is the only reading
// consistent with the paper's Table 3 and §5.1 numbers simultaneously).
func (st *Store) SetReached(dst uint32, ttl uint8, addr uint32, rtt time.Duration) {
	r := st.route(dst)
	wasReached := r.Reached
	r.Reached = true
	if ttl > 0 {
		r.Length = ttl
	}
	// Probes beyond the destination's distance all reach it and answer;
	// record the destination hop once.
	if st.collectRoutes && ttl > 0 && !wasReached {
		r.Hops = append(r.Hops, Hop{TTL: ttl, Addr: addr, RTT: rtt})
	}
}

// Interfaces returns the set of unique responding interfaces.
func (st *Store) Interfaces() InterfaceSet { return st.interfaces }

// Route returns the route to dst with hops sorted by TTL, or nil if no
// response involving dst was recorded.
func (st *Store) Route(dst uint32) *Route {
	r := st.routes[dst]
	if r == nil {
		return nil
	}
	sort.Slice(r.Hops, func(i, j int) bool { return r.Hops[i].TTL < r.Hops[j].TTL })
	return r
}

// NumRoutes returns the number of destinations with at least one response.
func (st *Store) NumRoutes() int { return len(st.routes) }

// ForEachRoute calls fn for every stored route. Hop order within a route
// is unspecified unless Route() was used.
func (st *Store) ForEachRoute(fn func(*Route)) {
	for _, r := range st.routes {
		fn(r)
	}
}

// HasLoop reports whether the route visits the same interface at two
// TTLs at least two hops apart — the forwarding-loop signature of §5.1
// (stub networks bouncing packets for nonexistent addresses back to their
// ISP). A repeat at adjacent TTLs is not a loop: it is the signature of a
// route that gained or lost one hop mid-scan (route dynamics).
func (r *Route) HasLoop() bool {
	seen := make(map[uint32]uint8, len(r.Hops))
	for _, h := range r.Hops {
		if prev, ok := seen[h.Addr]; ok {
			d := int(h.TTL) - int(prev)
			if d < 0 {
				d = -d
			}
			if d >= 2 {
				return true
			}
		}
		seen[h.Addr] = h.TTL
	}
	return false
}

// HopAt returns the interface observed at the given TTL, if any.
func (r *Route) HopAt(ttl uint8) (uint32, bool) {
	for _, h := range r.Hops {
		if h.TTL == ttl {
			return h.Addr, true
		}
	}
	return 0, false
}

// WriteJSONL writes one JSON object per route:
// {"dst":"a.b.c.d","reached":bool,"length":n,"hops":[{"ttl":n,"addr":"...","rtt_us":n},...]}.
func (st *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dsts := make([]uint32, 0, len(st.routes))
	for d := range st.routes {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	type jsonHop struct {
		TTL   uint8  `json:"ttl"`
		Addr  string `json:"addr"`
		RTTus int64  `json:"rtt_us"`
	}
	type jsonRoute struct {
		Dst     string    `json:"dst"`
		Reached bool      `json:"reached"`
		Length  uint8     `json:"length"`
		Hops    []jsonHop `json:"hops"`
	}
	enc := json.NewEncoder(bw)
	for _, d := range dsts {
		r := st.Route(d)
		jr := jsonRoute{
			Dst:     probe.FormatAddr(d),
			Reached: r.Reached,
			Length:  r.Length,
			Hops:    make([]jsonHop, 0, len(r.Hops)),
		}
		for _, h := range r.Hops {
			jr.Hops = append(jr.Hops, jsonHop{
				TTL: h.TTL, Addr: probe.FormatAddr(h.Addr), RTTus: h.RTT.Microseconds(),
			})
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes all stored routes as CSV rows:
// destination,ttl,hop,rtt_us,reached.
func (st *Store) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "destination,ttl,hop,rtt_us,reached"); err != nil {
		return err
	}
	dsts := make([]uint32, 0, len(st.routes))
	for d := range st.routes {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		r := st.Route(d)
		for _, h := range r.Hops {
			reached := 0
			if r.Reached && h.TTL == r.Length {
				reached = 1
			}
			if _, err := fmt.Fprintf(bw, "%s,%d,%s,%d,%d\n",
				probe.FormatAddr(d), h.TTL, probe.FormatAddr(h.Addr),
				h.RTT.Microseconds(), reached); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
