package trace

import (
	"bytes"
	"testing"
	"time"
)

// TestRouteDoubleCallStable pins the fix for the in-place-sort bug: the
// map store sorted the route's own hop slice on every Route call, so a
// second call sorted an already-sorted slice and could return a
// different equal-TTL permutation than the first (and corrupted the
// store's insertion order as a side effect). The slab store materializes
// from the pristine insertion-order chain on every call, so repeated
// calls must agree byte for byte — including on routes long enough
// (n ≥ ~12) for the unstable sort to actually permute equal elements.
func TestRouteDoubleCallStable(t *testing.T) {
	st := NewStore(true)
	const dst = 50
	// A long route with equal-TTL pairs (the destination-distance
	// ambiguity: a TTL-exceeded and an unreachable at the same hop).
	for ttl := uint8(1); ttl <= 14; ttl++ {
		st.AddHop(dst, ttl, uint32(0x0a000000)+uint32(ttl), time.Millisecond)
	}
	st.AddHop(dst, 14, 0x0b000001, 2*time.Millisecond)
	st.AddHop(dst, 7, 0x0b000002, 2*time.Millisecond)

	r1 := st.Route(dst)
	r2 := st.Route(dst)
	if len(r1.Hops) != len(r2.Hops) {
		t.Fatalf("hop counts diverge: %d vs %d", len(r1.Hops), len(r2.Hops))
	}
	for i := range r1.Hops {
		if r1.Hops[i] != r2.Hops[i] {
			t.Fatalf("hop %d diverges across calls: %+v vs %+v", i, r1.Hops[i], r2.Hops[i])
		}
	}

	// The writers must be repeat-stable too.
	var a, b bytes.Buffer
	if err := st.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL output differs across calls")
	}
}

func hashU32(a uint32) uint64 {
	z := uint64(a) * 0x9e3779b97f4a7c15
	z ^= z >> 32
	return z
}

// TestHotPathZeroAllocs pins the tentpole's allocation contract: within
// reserved capacity, the engine-facing write path — AddHopAt,
// SetReachedAt, and interface-table hits — allocates nothing. A
// regression here puts the allocator back on the receive path at
// Table 5 rates.
func TestHotPathZeroAllocs(t *testing.T) {
	const slots = 1024
	st := NewSlotStoreOf[uint32](true, func(uint32) string { return "" },
		func(a, b uint32) bool { return a < b }, hashU32, slots, 0)
	st.Reserve(slots, 1<<16, 1<<16)

	var i uint32
	allocs := testing.AllocsPerRun(5000, func() {
		slot := int(i) % slots
		st.AddHopAt(slot, uint32(slot)+1, uint8(i%30)+1, 0x0a000000+i, time.Microsecond)
		i++
	})
	if allocs != 0 {
		t.Fatalf("AddHopAt: %v allocs/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		slot := int(i) % slots
		st.SetReachedAt(slot, uint32(slot)+1, 31, 0xdead0000+i, time.Microsecond)
		i++
	})
	if allocs != 0 {
		t.Fatalf("SetReachedAt: %v allocs/op, want 0", allocs)
	}

	ifaces := st.Interfaces()
	allocs = testing.AllocsPerRun(1000, func() {
		ifaces.Add(0x0a000001) // already present: a pure probe hit
	})
	if allocs != 0 {
		t.Fatalf("interface-set hit: %v allocs/op, want 0", allocs)
	}
}

// TestSlotStoreExtraTargetOverflow covers the §5.4 hazard the slot store
// must handle: extra-scan target variation changes a block's
// representative mid-scan, so one slot sees two destinations. Each must
// keep its own route, as the map store guaranteed.
func TestSlotStoreExtraTargetOverflow(t *testing.T) {
	st := NewSlotStoreOf[uint32](true, func(uint32) string { return "" },
		func(a, b uint32) bool { return a < b }, hashU32, 4, 0)
	st.AddHopAt(2, 100, 3, 0xA, time.Millisecond)
	st.AddHopAt(2, 200, 5, 0xB, time.Millisecond) // same slot, new target
	st.SetReachedAt(2, 200, 6, 200, time.Millisecond)

	if n := st.NumRoutes(); n != 2 {
		t.Fatalf("routes=%d want 2 (per-destination, not per-slot)", n)
	}
	r100, r200 := st.Route(100), st.Route(200)
	if r100 == nil || len(r100.Hops) != 1 || r100.Reached {
		t.Fatalf("route 100 merged with the block's later target: %+v", r100)
	}
	if r200 == nil || len(r200.Hops) != 2 || !r200.Reached || r200.Length != 6 {
		t.Fatalf("route 200 wrong: %+v", r200)
	}
}

// BenchmarkTraceStore measures the engine-facing write path and reports
// bytes/route — the tentpole's memory metric (the frbench suite includes
// this benchmark; BENCH_*.json records it).
func BenchmarkTraceStore(b *testing.B) {
	const slots = 4096
	const hopsPerRoute = 16
	b.Run("AddHopAt", func(b *testing.B) {
		st := NewSlotStoreOf[uint32](true, func(uint32) string { return "" },
			func(a, b uint32) bool { return a < b }, hashU32, slots, slots/2)
		st.Reserve(slots, b.N+slots, b.N+slots)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := i % slots
			st.AddHopAt(slot, uint32(slot)+1, uint8(i%hopsPerRoute)+1,
				uint32(0x0a000000+i), time.Microsecond)
		}
	})
	b.Run("SetReachedAt", func(b *testing.B) {
		st := NewSlotStoreOf[uint32](true, func(uint32) string { return "" },
			func(a, b uint32) bool { return a < b }, hashU32, slots, slots/2)
		st.Reserve(slots, b.N+slots, slots)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := i % slots
			st.SetReachedAt(slot, uint32(slot)+1, uint8(i%hopsPerRoute)+1,
				uint32(0xc0000000+i), time.Microsecond)
		}
	})
	b.Run("FillAndEmit", func(b *testing.B) {
		// One full store lifecycle per iteration: fill every slot with a
		// mean-length route, then stream it out sorted.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := NewSlotStoreOf[uint32](true, func(uint32) string { return "" },
				func(a, b uint32) bool { return a < b }, hashU32, slots, slots/2)
			st.Reserve(slots, slots*hopsPerRoute, slots*hopsPerRoute)
			for s := 0; s < slots; s++ {
				dst := uint32(s)*256 + 1
				for ttl := uint8(1); ttl <= hopsPerRoute; ttl++ {
					st.AddHopAt(s, dst, ttl, uint32(s*64+int(ttl)), time.Microsecond)
				}
			}
			routes := 0
			st.ForEachRouteSorted(func(*RouteOf[uint32]) { routes++ })
			if routes != slots {
				b.Fatalf("routes=%d", routes)
			}
			if i == 0 {
				b.ReportMetric(float64(st.MemoryBytes())/float64(slots), "bytes/route")
			}
		}
	})
}
