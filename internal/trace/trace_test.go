package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	st := NewStore(true)
	st.AddHop(100, 3, 0xA, time.Millisecond)
	st.AddHop(100, 1, 0xB, time.Millisecond)
	st.AddHop(100, 2, 0xA, time.Millisecond) // same interface twice
	st.SetReached(100, 4, 100, 2*time.Millisecond)

	// Destination responses do not enter the interface set (router
	// interfaces only — see the SetReached doc comment).
	if st.Interfaces().Len() != 2 {
		t.Fatalf("interfaces=%d want 2 (A, B)", st.Interfaces().Len())
	}
	r := st.Route(100)
	if r == nil || !r.Reached || r.Length != 4 {
		t.Fatalf("route %+v", r)
	}
	if len(r.Hops) != 4 {
		t.Fatalf("hops=%d", len(r.Hops))
	}
	for i := 1; i < len(r.Hops); i++ {
		if r.Hops[i-1].TTL > r.Hops[i].TTL {
			t.Fatal("hops not sorted by TTL")
		}
	}
	if a, ok := r.HopAt(3); !ok || a != 0xA {
		t.Fatalf("HopAt(3)=%#x,%v", a, ok)
	}
	if _, ok := r.HopAt(9); ok {
		t.Fatal("HopAt(9) should miss")
	}
}

func TestStoreLengthSemantics(t *testing.T) {
	st := NewStore(false)
	st.AddHop(7, 10, 1, 0)
	if st.Route(7).Length != 10 {
		t.Fatal("length should track max hop TTL")
	}
	// A bare RST (unknown distance) must not clobber the length.
	st.SetReached(7, 0, 7, 0)
	r := st.Route(7)
	if !r.Reached || r.Length != 10 {
		t.Fatalf("route %+v", r)
	}
	// A real unreachable fixes the length even below the max probed TTL.
	st.SetReached(7, 8, 7, 0)
	if st.Route(7).Length != 8 {
		t.Fatal("definitive distance should overwrite")
	}
	// Later hop responses must not raise a reached route's length.
	st.AddHop(7, 12, 9, 0)
	if st.Route(7).Length != 8 {
		t.Fatal("late hop raised a definitive length")
	}
}

func TestAddHopReportNew(t *testing.T) {
	st := NewStore(false)
	if !st.AddHopReportNew(1, 1, 0xCC, 0) {
		t.Fatal("first sighting should be new")
	}
	if st.AddHopReportNew(2, 5, 0xCC, 0) {
		t.Fatal("second sighting should not be new")
	}
}

func TestHasLoop(t *testing.T) {
	r := &Route{Hops: []Hop{{TTL: 1, Addr: 5}, {TTL: 2, Addr: 6}, {TTL: 3, Addr: 5}}}
	if !r.HasLoop() {
		t.Fatal("loop not detected")
	}
	r2 := &Route{Hops: []Hop{{TTL: 1, Addr: 5}, {TTL: 2, Addr: 6}}}
	if r2.HasLoop() {
		t.Fatal("false loop")
	}
	// The same interface at the same TTL (duplicate response) is no loop.
	r3 := &Route{Hops: []Hop{{TTL: 1, Addr: 5}, {TTL: 1, Addr: 5}}}
	if r3.HasLoop() {
		t.Fatal("duplicate response misread as loop")
	}
	// A repeat at ADJACENT TTLs is route dynamics (a hop inserted or
	// removed mid-scan), not a forwarding loop.
	r4 := &Route{Hops: []Hop{{TTL: 4, Addr: 5}, {TTL: 5, Addr: 5}}}
	if r4.HasLoop() {
		t.Fatal("route flap misread as loop")
	}
}

func TestForEachRouteAndCount(t *testing.T) {
	st := NewStore(false)
	for i := uint32(0); i < 10; i++ {
		st.AddHop(i, 1, 100+i, 0)
	}
	if st.NumRoutes() != 10 {
		t.Fatalf("routes=%d", st.NumRoutes())
	}
	n := 0
	st.ForEachRoute(func(*Route) { n++ })
	if n != 10 {
		t.Fatalf("visited %d", n)
	}
	if st.Route(99) != nil {
		t.Fatal("unknown destination should be nil")
	}
}

func TestWriteCSV(t *testing.T) {
	st := NewStore(true)
	st.AddHop(0x04000001, 1, 0xF0000001, 1500*time.Microsecond)
	st.SetReached(0x04000001, 2, 0x04000001, 2*time.Millisecond)
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines=%d: %q", len(lines), out)
	}
	if lines[0] != "destination,ttl,hop,rtt_us,reached" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "4.0.0.1,1,240.0.0.1,1500,0") {
		t.Fatalf("row %q", lines[1])
	}
	if !strings.Contains(lines[2], "4.0.0.1,2,4.0.0.1,2000,1") {
		t.Fatalf("row %q", lines[2])
	}
}

func TestWriteJSONL(t *testing.T) {
	st := NewStore(true)
	st.AddHop(0x04000001, 1, 0xF0000001, 1500*time.Microsecond)
	st.SetReached(0x04000001, 2, 0x04000001, 2*time.Millisecond)
	st.AddHop(0x04000102, 5, 0xF0000002, time.Millisecond)
	var buf bytes.Buffer
	if err := st.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines=%d: %q", len(lines), buf.String())
	}
	var first struct {
		Dst     string `json:"dst"`
		Reached bool   `json:"reached"`
		Length  uint8  `json:"length"`
		Hops    []struct {
			TTL   uint8  `json:"ttl"`
			Addr  string `json:"addr"`
			RTTus int64  `json:"rtt_us"`
		} `json:"hops"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Dst != "4.0.0.1" || !first.Reached || first.Length != 2 || len(first.Hops) != 2 {
		t.Fatalf("route %+v", first)
	}
	if first.Hops[0].Addr != "240.0.0.1" || first.Hops[0].RTTus != 1500 {
		t.Fatalf("hop %+v", first.Hops[0])
	}
}

func TestInterfaceSet(t *testing.T) {
	s := make(InterfaceSet)
	if !s.Add(1) || s.Add(1) {
		t.Fatal("Add newness wrong")
	}
	if !s.Has(1) || s.Has(2) {
		t.Fatal("Has wrong")
	}
	if s.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestNoRouteCollection(t *testing.T) {
	st := NewStore(false)
	st.AddHop(5, 3, 9, 0)
	r := st.Route(5)
	if len(r.Hops) != 0 {
		t.Fatal("hops retained despite collectRoutes=false")
	}
	if r.Length != 3 {
		t.Fatal("summary fields must still work")
	}
}
