package trace

import (
	"iter"
	"unsafe"
)

// InterfaceSetOf is a map-based set of interface addresses. It remains
// the currency of the analysis layer (metrics.Jaccard, per-distance
// interface sets) where map ergonomics matter and sizes are small; the
// store itself tracks discovered interfaces in the open-addressed
// InterfaceTableOf below, which costs one word per entry and allocates
// nothing on the hit path.
type InterfaceSetOf[A comparable] map[A]struct{}

// Add inserts addr and reports whether it was newly added.
func (s InterfaceSetOf[A]) Add(addr A) bool {
	if _, ok := s[addr]; ok {
		return false
	}
	s[addr] = struct{}{}
	return true
}

// Has reports membership.
func (s InterfaceSetOf[A]) Has(addr A) bool {
	_, ok := s[addr]
	return ok
}

// Len returns the set cardinality.
func (s InterfaceSetOf[A]) Len() int { return len(s) }

// memHashOf returns a hash over the memory representation of A, the
// default when the caller injects none. Valid only for address-like
// types whose bytes determine equality — uint32 and fixed-size byte
// arrays, the only instantiations in this codebase; a type containing
// pointers or strings must supply its own hash.
func memHashOf[A comparable]() func(A) uint64 {
	return func(a A) uint64 {
		b := unsafe.Slice((*byte)(unsafe.Pointer(&a)), unsafe.Sizeof(a))
		h := uint64(0xcbf29ce484222325) // FNV-1a
		for _, c := range b {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		// FNV mixes low bits weakly for short keys; finish with an
		// avalanche so the table's mask sees every input bit.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return h
	}
}

// InterfaceTableOf is an open-addressed hash set of interface addresses
// with linear probing and power-of-two growth: one A per slot, no
// per-entry allocation, and a zero-allocation hit path (the common case
// on the receive path — a core router answers for thousands of
// destinations but is inserted once). The zero address is kept out of
// band (hasZero) so the zero value of A can mark empty slots.
//
// It is written by a single goroutine and read after the scan, like the
// store that owns it.
type InterfaceTableOf[A comparable] struct {
	keys    []A // len is a power of two; zero value = empty slot
	n       int // occupied slots (excluding the out-of-band zero)
	hasZero bool
	hash    func(A) uint64
}

func newInterfaceTable[A comparable](hash func(A) uint64, hint int) InterfaceTableOf[A] {
	t := InterfaceTableOf[A]{hash: hash}
	if hint > 0 {
		t.keys = make([]A, tableSizeFor(hint))
	}
	return t
}

// tableSizeFor returns the power-of-two table length that holds n
// entries under the 3/4 load-factor bound.
func tableSizeFor(n int) int {
	size := 16
	for size*3 < n*4 {
		size <<= 1
	}
	return size
}

// Add inserts addr and reports whether it was newly added.
func (t *InterfaceTableOf[A]) Add(addr A) bool {
	var zero A
	if addr == zero {
		if t.hasZero {
			return false
		}
		t.hasZero = true
		return true
	}
	if len(t.keys) == 0 || (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := t.hash(addr) & mask
	for {
		k := t.keys[i]
		if k == addr {
			return false
		}
		if k == zero {
			t.keys[i] = addr
			t.n++
			return true
		}
		i = (i + 1) & mask
	}
}

// Has reports membership.
func (t *InterfaceTableOf[A]) Has(addr A) bool {
	var zero A
	if addr == zero {
		return t.hasZero
	}
	if len(t.keys) == 0 {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	i := t.hash(addr) & mask
	for {
		k := t.keys[i]
		if k == addr {
			return true
		}
		if k == zero {
			return false
		}
		i = (i + 1) & mask
	}
}

// Len returns the set cardinality.
func (t *InterfaceTableOf[A]) Len() int {
	n := t.n
	if t.hasZero {
		n++
	}
	return n
}

// All returns an iterator over every stored address, in table order
// (unspecified). Usable as `for a := range t.All()`.
func (t *InterfaceTableOf[A]) All() iter.Seq[A] {
	return func(yield func(A) bool) {
		var zero A
		if t.hasZero && !yield(zero) {
			return
		}
		for _, k := range t.keys {
			if k != zero && !yield(k) {
				return
			}
		}
	}
}

// ForEach calls fn for every stored address.
func (t *InterfaceTableOf[A]) ForEach(fn func(A)) {
	for a := range t.All() {
		fn(a)
	}
}

// Reserve grows the table to hold n entries without further rehashing.
func (t *InterfaceTableOf[A]) Reserve(n int) {
	if size := tableSizeFor(n); size > len(t.keys) {
		t.rehash(size)
	}
}

// MemoryBytes returns the table's backing-array footprint.
func (t *InterfaceTableOf[A]) MemoryBytes() uint64 {
	var a A
	return uint64(len(t.keys)) * uint64(unsafe.Sizeof(a))
}

func (t *InterfaceTableOf[A]) grow() {
	size := 2 * len(t.keys)
	if size == 0 {
		size = 16
	}
	t.rehash(size)
}

func (t *InterfaceTableOf[A]) rehash(size int) {
	old := t.keys
	t.keys = make([]A, size)
	var zero A
	mask := uint64(size - 1)
	for _, k := range old {
		if k == zero {
			continue
		}
		i := t.hash(k) & mask
		for t.keys[i] != zero {
			i = (i + 1) & mask
		}
		t.keys[i] = k
	}
}
