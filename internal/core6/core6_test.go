package core6

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

type env struct {
	topo  *netsim6.Topology
	clock *simclock.Virtual
	net   *netsim6.Net
	cfg   Config
}

func newEnv(t testing.TB, prefixes, perPrefix int, seed int64) *env {
	t.Helper()
	p := netsim6.DefaultParams(seed)
	p.Prefixes = prefixes
	p.TargetsPerPrefix = perPrefix
	topo := netsim6.NewTopology(p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim6.New(topo, clock)
	cfg := DefaultConfig()
	cfg.Targets = topo.Targets()
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.PPS = 50_000
	return &env{topo: topo, clock: clock, net: n, cfg: cfg}
}

func (e *env) run(t testing.TB) *Result {
	t.Helper()
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScan6Completes(t *testing.T) {
	e := newEnv(t, 128, 8, 1)
	res := e.run(t)
	if res.ProbesSent == 0 || res.InterfaceCount() == 0 {
		t.Fatalf("empty scan: %d probes %d ifaces", res.ProbesSent, res.InterfaceCount())
	}
	if res.ReachedCount() == 0 {
		t.Fatal("no targets reached")
	}
	// Candidate lists are pre-filtered; most targets should answer.
	frac := float64(res.ReachedCount()) / float64(len(e.cfg.Targets))
	if frac < 0.3 {
		t.Fatalf("reached fraction %.2f too low for a candidate list", frac)
	}
	t.Logf("ipv6: %d targets, %d probes, %d ifaces, %d reached, %v",
		len(e.cfg.Targets), res.ProbesSent, res.InterfaceCount(), res.ReachedCount(), res.ScanTime)
}

// TestPreprobe6MeasuresDistances: the one-probe distance measurement must
// carry over to IPv6 and match ground truth.
func TestPreprobe6MeasuresDistances(t *testing.T) {
	e := newEnv(t, 256, 8, 2)
	res := e.run(t)
	if res.DistancesMeasured == 0 {
		t.Fatal("no distances measured")
	}
	if res.DistancesPredicted == 0 {
		t.Fatal("same-prefix prediction produced nothing")
	}
	t.Logf("measured=%d predicted=%d of %d targets",
		res.DistancesMeasured, res.DistancesPredicted, len(e.cfg.Targets))
}

// TestRedundancyElimination6: the stop set must save probes in IPv6 too.
func TestRedundancyElimination6(t *testing.T) {
	on := newEnv(t, 256, 8, 3)
	resOn := on.run(t)

	off := newEnv(t, 256, 8, 3)
	off.cfg.NoRedundancyElimination = true
	resOff := off.run(t)

	if resOff.ProbesSent < resOn.ProbesSent*3/2 {
		t.Fatalf("elimination saved too little: on=%d off=%d", resOn.ProbesSent, resOff.ProbesSent)
	}
	if float64(resOn.InterfaceCount()) < 0.9*float64(resOff.InterfaceCount()) {
		t.Fatalf("elimination lost interfaces: %d vs %d",
			resOn.InterfaceCount(), resOff.InterfaceCount())
	}
	t.Logf("on: %d probes/%d ifaces; off: %d probes/%d ifaces",
		resOn.ProbesSent, resOn.InterfaceCount(), resOff.ProbesSent, resOff.InterfaceCount())
}

// TestRoutes6AreCoherent: collected routes match the simulator's ground
// truth distances.
func TestRoutes6AreCoherent(t *testing.T) {
	e := newEnv(t, 128, 4, 4)
	e.cfg.CollectRoutes = true
	res := e.run(t)
	checked := 0
	for _, dst := range e.cfg.Targets {
		r := res.Route(dst)
		if r == nil || !r.Reached {
			continue
		}
		truth := e.topo.DistanceNow(dst)
		if truth == 0 {
			continue
		}
		if r.Length != truth {
			t.Fatalf("route length %d != ground truth %d for %s", r.Length, truth, dst)
		}
		for _, h := range r.Hops {
			if h.TTL > r.Length {
				t.Fatalf("hop beyond route end: %+v", h)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("too few routes checked: %d", checked)
	}
}

func TestScanner6Validation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := NewScanner(Config{}, nil, clock); err == nil {
		t.Fatal("empty targets accepted")
	}
	cfg := DefaultConfig()
	cfg.Targets = []probe6.Addr{{0x20}}
	cfg.SplitTTL = 99
	if _, err := NewScanner(cfg, nil, clock); err == nil {
		t.Fatal("bad split accepted")
	}
}

// stubConn serves a fixed set of response packets, then EOF; writes are
// discarded. It lets tests inject hand-crafted responses into a full
// scanner run.
type stubConn struct {
	mu   sync.Mutex
	pkts [][]byte
}

func (c *stubConn) WritePacket(p []byte) error { return nil }

func (c *stubConn) ReadPacket(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pkts) == 0 {
		return 0, io.EOF
	}
	p := c.pkts[0]
	c.pkts = c.pkts[1:]
	return copy(buf, p), nil
}

func (c *stubConn) Close() error { return nil }

func TestSparseIndexIgnoresForeignResponses(t *testing.T) {
	// A response quoting a destination outside the target list must be
	// dropped, not crash or misattribute.
	e := newEnv(t, 8, 4, 5)
	e.cfg.Preprobe = false // probe into the void; only the injected reply arrives
	var foreign probe6.Addr
	foreign[0] = 0xfd
	var pkt [probe6.HeaderLen + probe6.ICMPErrorLen]byte
	quote := probe6.Header{NextHeader: probe6.ProtoUDP, HopLimit: 3, Dst: foreign}
	outer := probe6.Header{
		PayloadLength: probe6.ICMPErrorLen,
		NextHeader:    probe6.ProtoICMPv6,
		HopLimit:      64,
		Src:           foreign,
		Dst:           e.topo.Vantage(),
	}
	outer.Marshal(pkt[:])
	var tp [8]byte
	// Source port must satisfy the checksum test for the lookup to even
	// be attempted.
	cs := probe6.AddrChecksum(foreign)
	tp[0], tp[1] = byte(cs>>8), byte(cs)
	tp[4], tp[5] = 0, probe6.UDPHeaderLen
	probe6.MarshalICMPError(pkt[probe6.HeaderLen:], probe6.ICMP6TypeTimeExceeded,
		probe6.ICMP6CodeHopLimit, &quote, tp[:])
	sc, err := NewScanner(e.cfg, &stubConn{pkts: [][]byte{pkt[:]}}, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.UnparsedResponses != 1 {
		t.Fatalf("foreign response not dropped: unparsed=%d", res.UnparsedResponses)
	}
	if res.InterfaceCount() != 0 {
		t.Fatalf("foreign response misattributed: %d interfaces", res.InterfaceCount())
	}
}
