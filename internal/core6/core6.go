// Package core6 implements FlashRoute6 — the IPv6 extension of FlashRoute
// the paper plans in §5.4.
//
// The probing strategy is FlashRoute's (§3.2-3.3): preprobing for
// hop-distance split points, round-based backward and forward probing
// over a shuffled target sequence, Doubletree stop-set termination, a
// forward gap limit, and decoupled sender/receiver threads.
//
// The control state is redesigned exactly as §5.4 anticipates: IPv6
// targets are sparse candidate lists, not a dense prefix lattice, so the
// destination control blocks live in an array indexed by *list position*
// with the random permutation woven through it, while the receiving
// thread locates DCBs through a hash index keyed by address. (The IPv4
// engine's response lookup is a O(1) array access by /24 prefix; here it
// is one map lookup — the price of 2^128 sparsity.)
//
// Proximity-span prediction does not carry over: adjacent /24 blocks
// share supernet routes, but numerically adjacent IPv6 candidates share
// nothing. Instead, measured distances of targets within the same /48
// predict their list-mates' distances (same-prefix prediction).
package core6

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/permute"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

// PacketConn is the raw IPv6 network access.
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// Config parameterizes a FlashRoute6 scan.
type Config struct {
	// Targets is the candidate list to trace (Yarrp6-style).
	Targets []probe6.Addr
	// Source is the vantage point address.
	Source probe6.Addr

	// SplitTTL, GapLimit, MaxTTL as in IPv4 (§3.2); defaults 16/5/32.
	SplitTTL uint8
	GapLimit uint8
	MaxTTL   uint8

	// PPS throttles probing; <= 0 disables (real-clock only).
	PPS int

	// Preprobe enables the one-probe distance measurement phase; with
	// SamePrefixPrediction, measured distances predict unmeasured targets
	// within the same /48.
	Preprobe             bool
	SamePrefixPrediction bool

	// NoRedundancyElimination disables stop-set termination.
	NoRedundancyElimination bool

	// CollectRoutes keeps per-target hop lists.
	CollectRoutes bool

	Seed         int64
	DrainWait    time.Duration
	MinRoundTime time.Duration
}

// DefaultConfig returns FlashRoute6 defaults.
func DefaultConfig() Config {
	return Config{
		SplitTTL:             16,
		GapLimit:             5,
		MaxTTL:               probe6.MaxHopLimit,
		PPS:                  100_000,
		Preprobe:             true,
		SamePrefixPrediction: true,
		DrainWait:            2 * time.Second,
		MinRoundTime:         time.Second,
	}
}

// Hop is a discovered interface on a route.
type Hop struct {
	TTL  uint8
	Addr probe6.Addr
	RTT  time.Duration
}

// Route is the discovered path to one target.
type Route struct {
	Dst     probe6.Addr
	Hops    []Hop
	Reached bool
	Length  uint8
}

// Result is what a scan produced.
type Result struct {
	ProbesSent     uint64
	PreprobeProbes uint64
	ScanTime       time.Duration
	Rounds         int

	DistancesMeasured  int
	DistancesPredicted int

	MismatchedResponses uint64
	UnparsedResponses   uint64

	interfaces map[probe6.Addr]struct{}
	routes     map[probe6.Addr]*Route
}

// InterfaceCount returns the number of unique router interfaces found.
func (r *Result) InterfaceCount() int { return len(r.interfaces) }

// HasInterface reports whether addr was discovered.
func (r *Result) HasInterface(a probe6.Addr) bool {
	_, ok := r.interfaces[a]
	return ok
}

// Interfaces returns the discovered router interfaces in ascending
// address order.
func (r *Result) Interfaces() []probe6.Addr {
	out := make([]probe6.Addr, 0, len(r.interfaces))
	for a := range r.interfaces {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Route returns the route traced to a target (nil if no responses), with
// hops sorted by TTL.
func (r *Result) Route(a probe6.Addr) *Route {
	rt := r.routes[a]
	if rt == nil {
		return nil
	}
	sort.Slice(rt.Hops, func(i, j int) bool { return rt.Hops[i].TTL < rt.Hops[j].TTL })
	return rt
}

// ReachedCount returns how many targets answered.
func (r *Result) ReachedCount() int {
	n := 0
	for _, rt := range r.routes {
		if rt.Reached {
			n++
		}
	}
	return n
}

// dcb6 is the FlashRoute6 destination control block: Listing 1 fields,
// indexed by target-list position.
type dcb6 struct {
	nextBackward   uint8
	nextForward    uint8
	forwardHorizon uint8
	flags          uint8
	next, prev     uint32
}

const (
	dcbForwardDone = 1 << iota
	dcbRemoved
)

const noHead = ^uint32(0)

// Scanner runs FlashRoute6 scans.
type Scanner struct {
	cfg   Config
	conn  PacketConn
	clock simclock.Waiter
	start time.Time

	dcbs   []dcb6
	locks  []sync.Mutex
	splits []uint8
	order  []uint32

	// index is the sparse response-to-DCB lookup (§5.4's redesign).
	index map[probe6.Addr]uint32

	stopSet map[probe6.Addr]struct{}

	distMu   sync.Mutex
	measured []uint8
	phase    atomic.Int32

	res *Result

	probesSent   uint64
	rounds       int
	mismatched   atomic.Uint64
	unparsed     atomic.Uint64
	paceCount    int
	paceBatch    int
	paceInterval time.Duration
	pktBuf       [probe6.HeaderLen + probe6.UDPHeaderLen + 64]byte
}

// NewScanner validates the configuration.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("core6: Config.Targets must be non-empty")
	}
	if cfg.MaxTTL == 0 || cfg.MaxTTL > probe6.MaxHopLimit {
		return nil, fmt.Errorf("core6: MaxTTL must be in 1..%d", probe6.MaxHopLimit)
	}
	if cfg.SplitTTL == 0 || cfg.SplitTTL > cfg.MaxTTL {
		return nil, errors.New("core6: SplitTTL must be in 1..MaxTTL")
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.MinRoundTime <= 0 {
		cfg.MinRoundTime = time.Second
	}
	n := len(cfg.Targets)
	s := &Scanner{
		cfg:     cfg,
		conn:    conn,
		clock:   clock,
		dcbs:    make([]dcb6, n),
		locks:   make([]sync.Mutex, n),
		splits:  make([]uint8, n),
		index:   make(map[probe6.Addr]uint32, n),
		stopSet: make(map[probe6.Addr]struct{}),
		res: &Result{
			interfaces: make(map[probe6.Addr]struct{}),
			routes:     make(map[probe6.Addr]*Route),
		},
	}
	for i, a := range cfg.Targets {
		s.index[a] = uint32(i)
	}
	if cfg.PPS > 0 {
		s.paceBatch = cfg.PPS / 200
		if s.paceBatch < 1 {
			s.paceBatch = 1
		}
		s.paceInterval = time.Duration(int64(time.Second) * int64(s.paceBatch) / int64(cfg.PPS))
	}
	return s, nil
}

// Run executes the scan (same actor contract as the IPv4 engine).
func (s *Scanner) Run() (*Result, error) {
	s.start = s.clock.Now()
	n := len(s.cfg.Targets)

	perm := permute.NewFeistel(uint64(n), uint64(s.cfg.Seed)^0x6b7a5c3d)
	s.order = make([]uint32, 0, n)
	for i := uint64(0); i < uint64(n); i++ {
		s.order = append(s.order, uint32(perm.Map(i)))
	}

	s.clock.AddActor() // sender first (see the IPv4 engine)
	s.clock.AddActor()
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		defer s.clock.DoneActor()
		s.receiveLoop()
	}()

	if s.cfg.Preprobe {
		s.measured = make([]uint8, n)
		for _, i := range s.order {
			s.sendProbe(s.cfg.Targets[i], s.cfg.MaxTTL, true)
		}
		s.clock.Sleep(s.cfg.DrainWait)
	}
	s.distMu.Lock()
	s.phase.Store(1)
	s.distMu.Unlock()
	if s.cfg.Preprobe {
		s.res.PreprobeProbes = s.probesSent
	}

	s.initDCBs()
	s.runRounds()
	s.clock.Sleep(s.cfg.DrainWait)

	s.res.ScanTime = s.clock.Now().Sub(s.start)
	s.conn.Close()
	s.clock.DoneActor()
	<-recvDone

	s.res.ProbesSent = s.probesSent
	s.res.Rounds = s.rounds
	s.res.MismatchedResponses = s.mismatched.Load()
	s.res.UnparsedResponses = s.unparsed.Load()
	return s.res, nil
}

// initDCBs assigns split points from measurements, same-prefix
// predictions, or the default.
func (s *Scanner) initDCBs() {
	var prefixDist map[[6]byte]uint8
	if s.cfg.Preprobe && s.cfg.SamePrefixPrediction {
		prefixDist = make(map[[6]byte]uint8)
		for i, a := range s.cfg.Targets {
			if m := s.measured[i]; m != 0 {
				var key [6]byte
				copy(key[:], a[:6])
				prefixDist[key] = m
			}
		}
	}
	for i := range s.dcbs {
		split := s.cfg.SplitTTL
		if s.measured != nil && s.measured[i] != 0 {
			split = s.measured[i]
			s.res.DistancesMeasured++
		} else if prefixDist != nil {
			var key [6]byte
			copy(key[:], s.cfg.Targets[i][:6])
			if p, ok := prefixDist[key]; ok {
				split = p
				s.res.DistancesPredicted++
			}
		}
		if split > s.cfg.MaxTTL {
			split = s.cfg.MaxTTL
		}
		d := &s.dcbs[i]
		d.nextBackward = split
		d.nextForward = split + 1
		d.forwardHorizon = split + s.cfg.GapLimit
		if d.forwardHorizon > s.cfg.MaxTTL {
			d.forwardHorizon = s.cfg.MaxTTL
		}
		s.splits[i] = split
	}
}

// runRounds mirrors the IPv4 engine's round loop over the permuted
// circular list.
func (s *Scanner) runRounds() {
	// Thread the circular list.
	var prev uint32 = noHead
	var head uint32 = noHead
	size := 0
	for _, idx := range s.order {
		if head == noHead {
			head = idx
		} else {
			s.dcbs[prev].next = idx
			s.dcbs[idx].prev = prev
		}
		prev = idx
		size++
	}
	if size > 0 {
		s.dcbs[prev].next = head
		s.dcbs[head].prev = prev
	}

	for size > 0 {
		roundStart := s.clock.Now()
		cur := head
		count := size
		for i := 0; i < count && size > 0; i++ {
			d := &s.dcbs[cur]
			next := d.next

			var bw, fw uint8
			s.locks[cur].Lock()
			if d.nextBackward > 0 {
				bw = d.nextBackward
				d.nextBackward--
			}
			if d.flags&dcbForwardDone == 0 && d.nextForward <= d.forwardHorizon {
				fw = d.nextForward
				d.nextForward++
			}
			s.locks[cur].Unlock()

			dst := s.cfg.Targets[cur]
			if bw > 0 {
				s.sendProbe(dst, bw, false)
			}
			if fw > 0 {
				s.sendProbe(dst, fw, false)
			}
			if bw == 0 && fw == 0 {
				s.locks[cur].Lock()
				done := d.nextBackward == 0 &&
					(d.flags&dcbForwardDone != 0 || d.nextForward > d.forwardHorizon)
				s.locks[cur].Unlock()
				if done {
					d.flags |= dcbRemoved
					size--
					if size == 0 {
						break
					}
					nn, pp := d.next, d.prev
					s.dcbs[pp].next = nn
					s.dcbs[nn].prev = pp
					if head == cur {
						head = nn
					}
				}
			}
			cur = next
		}
		s.rounds++
		if rem := s.cfg.MinRoundTime - s.clock.Now().Sub(roundStart); rem > 0 {
			s.clock.Sleep(rem)
		}
	}
}

func (s *Scanner) sendProbe(dst probe6.Addr, hopLimit uint8, preprobe bool) {
	elapsed := s.clock.Now().Sub(s.start)
	n := probe6.BuildProbe(s.pktBuf[:], s.cfg.Source, dst, hopLimit, preprobe,
		elapsed, 0, probe6.TracerouteDstPort)
	_ = s.conn.WritePacket(s.pktBuf[:n])
	s.probesSent++
	if s.paceBatch > 0 {
		s.paceCount++
		if s.paceCount >= s.paceBatch {
			s.paceCount = 0
			s.clock.Sleep(s.paceInterval)
		}
	}
}

func (s *Scanner) receiveLoop() {
	var buf [4096]byte
	for {
		n, err := s.conn.ReadPacket(buf[:])
		if err != nil {
			if err != io.EOF {
				s.unparsed.Add(1)
			}
			return
		}
		s.handleResponse(buf[:n])
	}
}

func (s *Scanner) handleResponse(pkt []byte) {
	resp, err := probe6.ParseResponse(pkt)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	fi, err := probe6.ParseQuote(&resp.ICMP)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	if !fi.ChecksumMatches(0) {
		s.mismatched.Add(1)
		return
	}
	idx, ok := s.index[fi.Dst] // the sparse lookup of §5.4
	if !ok {
		s.unparsed.Add(1)
		return
	}
	now := s.clock.Now().Sub(s.start)
	rtt := fi.RTT(now)

	if fi.Preprobe {
		if resp.ICMP.IsUnreachable() {
			dist := distance6(fi)
			s.recordReached(fi.Dst, dist, rtt)
			s.stopSet[resp.Hop] = struct{}{}
			if dist >= 1 && dist <= s.cfg.MaxTTL {
				s.distMu.Lock()
				if s.phase.Load() == 0 && s.measured != nil {
					s.measured[idx] = dist
				}
				s.distMu.Unlock()
			}
		} else if resp.ICMP.IsHopLimitExceeded() {
			s.recordHop(fi.Dst, fi.InitHopLimit, resp.Hop, rtt)
			s.stopSet[resp.Hop] = struct{}{}
		}
		return
	}

	d := &s.dcbs[idx]
	switch {
	case resp.ICMP.IsHopLimitExceeded():
		s.recordHop(fi.Dst, fi.InitHopLimit, resp.Hop, rtt)
		_, seen := s.stopSet[resp.Hop]
		s.stopSet[resp.Hop] = struct{}{}
		s.locks[idx].Lock()
		if fi.InitHopLimit <= s.splits[idx] {
			if fi.InitHopLimit == 1 || (seen && !s.cfg.NoRedundancyElimination) {
				d.nextBackward = 0
			}
		} else if d.flags&dcbForwardDone == 0 {
			h := fi.InitHopLimit + s.cfg.GapLimit
			if h > s.cfg.MaxTTL {
				h = s.cfg.MaxTTL
			}
			if h > d.forwardHorizon {
				d.forwardHorizon = h
			}
		}
		s.locks[idx].Unlock()

	case resp.ICMP.IsUnreachable():
		s.recordReached(fi.Dst, distance6(fi), rtt)
		s.stopSet[resp.Hop] = struct{}{}
		s.locks[idx].Lock()
		d.flags |= dcbForwardDone
		s.locks[idx].Unlock()

	default:
		s.unparsed.Add(1)
	}
}

func (s *Scanner) route(dst probe6.Addr) *Route {
	r := s.res.routes[dst]
	if r == nil {
		r = &Route{Dst: dst}
		s.res.routes[dst] = r
	}
	return r
}

func (s *Scanner) recordHop(dst probe6.Addr, ttl uint8, hop probe6.Addr, rtt time.Duration) {
	s.res.interfaces[hop] = struct{}{}
	r := s.route(dst)
	if ttl > r.Length && !r.Reached {
		r.Length = ttl
	}
	if s.cfg.CollectRoutes {
		r.Hops = append(r.Hops, Hop{TTL: ttl, Addr: hop, RTT: rtt})
	}
}

func (s *Scanner) recordReached(dst probe6.Addr, dist uint8, rtt time.Duration) {
	r := s.route(dst)
	wasReached := r.Reached
	r.Reached = true
	if dist > 0 {
		r.Length = dist
	}
	if s.cfg.CollectRoutes && dist > 0 && !wasReached {
		r.Hops = append(r.Hops, Hop{TTL: dist, Addr: dst, RTT: rtt})
	}
}

func distance6(fi probe6.Info) uint8 {
	d := int(fi.InitHopLimit) - int(fi.ResidualHopLimit) + 1
	if d < 1 {
		return 1
	}
	if d > probe6.MaxHopLimit {
		return probe6.MaxHopLimit
	}
	return uint8(d)
}
