// Package core6 implements FlashRoute6 — the IPv6 extension of FlashRoute
// the paper plans in §5.4.
//
// The probing engine is the generic internal/core engine instantiated at
// the 16-byte IPv6 address type: rounds, sharded multi-sender probing,
// pacing, Doubletree stop-set termination, the forward gap limit,
// duplicate-reply dedup, and the loss-tolerance retries all come from the
// shared implementation. This package contributes only what §5.4 says
// must differ:
//
//   - the control state is indexed by *candidate-list position* — IPv6
//     targets are sparse lists, not a dense prefix lattice — with the
//     receiving thread locating DCBs through a hash index keyed by
//     address (one map lookup, the price of 2^128 sparsity);
//   - proximity-span prediction does not carry over: numerically adjacent
//     IPv6 candidates share nothing. Instead, measured distances of
//     targets within the same /48 predict their list-mates' distances
//     (same-prefix prediction), supplied to the engine as a Predict hook;
//   - the IPv6 wire formats (internal/probe6) behind the engine's Family
//     interface.
package core6

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sort"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// PacketConn is the raw IPv6 network access (same contract as the IPv4
// engine's).
type PacketConn = core.PacketConn

// BatchWriter and BatchReader are the optional batch-I/O capabilities a
// transport may implement (same contracts as the IPv4 engine's).
type (
	BatchWriter = core.BatchWriter
	BatchReader = core.BatchReader
)

// PacketReader is the per-receiver read handle of the sharded receive
// pipeline (same contract as the IPv4 engine's).
type PacketReader = core.PacketReader

// Config parameterizes a FlashRoute6 scan.
type Config struct {
	// Targets is the candidate list to trace (Yarrp6-style).
	Targets []probe6.Addr
	// Source is the vantage point address.
	Source probe6.Addr

	// SplitTTL, GapLimit, MaxTTL as in IPv4 (§3.2); defaults 16/5/32.
	SplitTTL uint8
	GapLimit uint8
	MaxTTL   uint8

	// PPS throttles probing; <= 0 disables (real-clock only).
	PPS int

	// Senders is the number of sending goroutines sharing the PPS budget
	// (the engine's sharded multi-sender mode); <= 0 and 1 both mean the
	// deterministic single-sender configuration.
	Senders int

	// Receivers is the number of reply-processing workers (the engine's
	// sharded receive pipeline); <= 0 and 1 both mean the classic inline
	// receiver. NewReader supplies the per-worker read handles and is
	// required when Receivers > 1.
	Receivers int
	NewReader func() PacketReader

	// Batch is the maximum number of packets per transport call on both
	// data paths (the engine's batched I/O mode; core.ConfigOf.Batch).
	// <= 1 means one packet per call.
	Batch int

	// Preprobe enables the one-probe distance measurement phase; with
	// SamePrefixPrediction, measured distances predict unmeasured targets
	// within the same /48.
	Preprobe             bool
	SamePrefixPrediction bool

	// PreprobeRetries re-preprobes still-unmeasured targets after the
	// preprobe drain, up to this many extra passes (loss tolerance).
	PreprobeRetries int

	// ForwardRetries lets a target whose forward probing went silent for
	// the whole GapLimit rewind and re-probe the gap up to this many
	// times; ForwardTimeout is how long it waits for in-flight replies
	// first (default 500ms).
	ForwardRetries int
	ForwardTimeout time.Duration

	// NoRedundancyElimination disables stop-set termination.
	NoRedundancyElimination bool

	// Skip excludes candidate-list entries from the scan; the cluster
	// coordinator uses it to carve per-worker shards. nil scans all.
	Skip func(block int) bool

	// StopSet substitutes the engine's Doubletree stop set (nil = the
	// default in-process implementation); TraceSink tees discovery
	// events. See the generic core.ConfigOf fields of the same names.
	StopSet   core.StopSet[probe6.Addr]
	TraceSink core.TraceSink[probe6.Addr]

	// CollectRoutes keeps per-target hop lists.
	CollectRoutes bool

	// Observer, if non-nil, sees every probe issuance (same contract as
	// the IPv4 engine's Config.Observer: serialized across senders, so it
	// need not be thread-safe).
	Observer func(dst probe6.Addr, ttl uint8, at time.Duration)

	Seed         int64
	DrainWait    time.Duration
	MinRoundTime time.Duration

	// CheckpointSink arms crash-safe checkpointing: it receives every
	// snapshot the engine writes (see core.ConfigOf). CheckpointEvery and
	// CheckpointInterval set the probe-count and scan-time cadences.
	CheckpointSink     func(snapshot []byte) error
	CheckpointEvery    int
	CheckpointInterval time.Duration

	// SendRetries bounds retransmissions of probes whose WritePacket
	// failed transiently (0 = engine default, negative disables);
	// CancelGrace is the post-cancellation drain window.
	SendRetries int
	CancelGrace time.Duration
}

// DefaultConfig returns FlashRoute6 defaults.
func DefaultConfig() Config {
	return Config{
		SplitTTL:             16,
		GapLimit:             5,
		MaxTTL:               probe6.MaxHopLimit,
		PPS:                  100_000,
		Preprobe:             true,
		SamePrefixPrediction: true,
		DrainWait:            2 * time.Second,
		MinRoundTime:         time.Second,
	}
}

// Hop is a discovered interface on a route.
type Hop struct {
	TTL  uint8
	Addr probe6.Addr
	RTT  time.Duration
}

// Route is the discovered path to one target.
type Route struct {
	Dst     probe6.Addr
	Hops    []Hop
	Reached bool
	Length  uint8
}

// Result is what a scan produced.
type Result struct {
	ProbesSent     uint64
	PreprobeProbes uint64
	ScanTime       time.Duration
	Rounds         int

	DistancesMeasured  int
	DistancesPredicted int

	MismatchedResponses uint64
	UnparsedResponses   uint64
	ReadErrors          uint64

	// RetransmittedProbes / DuplicateResponses report the loss-tolerance
	// machinery: probes re-issued by preprobe and forward-gap retries,
	// and replies discarded by the duplicate guard.
	RetransmittedProbes uint64
	DuplicateResponses  uint64

	// SendErrors / SendRetries report the transport fault tolerance:
	// probes abandoned on permanent write failure and transient-failure
	// retry attempts. CheckpointErrors counts CheckpointSink failures.
	// Interrupted reports cancellation before completion.
	SendErrors       uint64
	SendRetries      uint64
	CheckpointErrors uint64
	Interrupted      bool

	store *trace.StoreOf[probe6.Addr]
}

// InterfaceCount returns the number of unique router interfaces found.
func (r *Result) InterfaceCount() int { return r.store.Interfaces().Len() }

// HasInterface reports whether addr was discovered.
func (r *Result) HasInterface(a probe6.Addr) bool { return r.store.Interfaces().Has(a) }

// Interfaces returns the discovered router interfaces in ascending
// address order.
func (r *Result) Interfaces() []probe6.Addr {
	set := r.store.Interfaces()
	out := make([]probe6.Addr, 0, set.Len())
	for a := range set.All() {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Route returns the route traced to a target (nil if no responses), with
// hops sorted by TTL.
func (r *Result) Route(a probe6.Addr) *Route {
	rt := r.store.Route(a)
	if rt == nil {
		return nil
	}
	out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
	for _, h := range rt.Hops {
		out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
	}
	return out
}

// ForEachRoute visits every target with at least one response, hops
// sorted by TTL.
func (r *Result) ForEachRoute(fn func(*Route)) {
	r.store.ForEachRoute(func(rt *trace.RouteOf[probe6.Addr]) {
		out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
		for _, h := range rt.Hops {
			out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
		}
		sort.Slice(out.Hops, func(i, j int) bool { return out.Hops[i].TTL < out.Hops[j].TTL })
		fn(out)
	})
}

// WriteJSONL writes the stored routes as one JSON object per line, in
// ascending destination order (hop lists require Config.CollectRoutes).
func (r *Result) WriteJSONL(w io.Writer) error { return r.store.WriteJSONL(w) }

// WriteCSV writes the stored routes as CSV rows in ascending destination
// order (destination,ttl,hop,rtt_us,reached).
func (r *Result) WriteCSV(w io.Writer) error { return r.store.WriteCSV(w) }

// ReachedCount returns how many targets answered.
func (r *Result) ReachedCount() int {
	n := 0
	r.store.ForEachRoute(func(rt *trace.RouteOf[probe6.Addr]) {
		if rt.Reached {
			n++
		}
	})
	return n
}

// family6 supplies the IPv6 wire formats and bounds to the generic
// engine.
type family6 struct{}

func (family6) MaxTTL() uint8    { return probe6.MaxHopLimit }
func (family6) PermSalt() uint64 { return 0x6b7a5c3d }

func (family6) BuildProbe(buf []byte, src, dst probe6.Addr, ttl uint8, preprobe bool,
	elapsed time.Duration, srcPortOffset uint16) int {
	return probe6.BuildProbe(buf, src, dst, ttl, preprobe, elapsed,
		srcPortOffset, probe6.TracerouteDstPort)
}

func (family6) ParseReply(pkt []byte, scanOffset uint16, now time.Duration) core.Reply[probe6.Addr] {
	resp, err := probe6.ParseResponse(pkt)
	if err != nil {
		return core.Reply[probe6.Addr]{Kind: core.ReplyUnparsed}
	}
	fi, err := probe6.ParseQuote(&resp.ICMP)
	if err != nil {
		return core.Reply[probe6.Addr]{Kind: core.ReplyUnparsed}
	}
	if !fi.ChecksumMatches(scanOffset) {
		return core.Reply[probe6.Addr]{Kind: core.ReplyMismatch}
	}
	r := core.Reply[probe6.Addr]{
		Dst:      fi.Dst,
		Hop:      resp.Hop,
		InitTTL:  fi.InitHopLimit,
		Preprobe: fi.Preprobe,
		RTT:      fi.RTT(now),
	}
	switch {
	case resp.ICMP.IsHopLimitExceeded():
		r.Kind = core.ReplyTTLExceeded
	case resp.ICMP.IsUnreachable():
		r.Kind = core.ReplyUnreachable
		r.Dist = distance6(fi)
	default:
		r.Kind = core.ReplyOther
	}
	return r
}

func (family6) FormatAddr(a probe6.Addr) string { return a.String() }
func (family6) AddrLess(a, b probe6.Addr) bool  { return bytes.Compare(a[:], b[:]) < 0 }

func (family6) HashAddr(a probe6.Addr) uint64 {
	// Fold the 16 address bytes into two big-endian words, combine, and
	// run the splitmix64 finalizer for avalanche across the shard pick.
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(a[i])
		lo = lo<<8 | uint64(a[8+i])
	}
	z := (hi ^ lo) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func (family6) AddrSize() int { return 16 }

func (family6) PutAddr(b []byte, a probe6.Addr) { copy(b, a[:]) }

func (family6) GetAddr(b []byte) probe6.Addr {
	var a probe6.Addr
	copy(a[:], b)
	return a
}

// distance6 recovers the target's hop distance from a
// destination-unreachable response.
func distance6(fi probe6.Info) uint8 {
	d := int(fi.InitHopLimit) - int(fi.ResidualHopLimit) + 1
	if d < 1 {
		return 1
	}
	if d > probe6.MaxHopLimit {
		return probe6.MaxHopLimit
	}
	return uint8(d)
}

// samePrefixPredict builds the engine Predict hook implementing §5.4's
// same-/48 prediction: the measured distance of any target in a /48
// predicts its unmeasured list-mates (ascending list order, last
// measurement wins — matching the pre-unification scanner).
func samePrefixPredict(targets []probe6.Addr) func(measured, predicted []uint8) {
	return func(measured, predicted []uint8) {
		prefixDist := make(map[[6]byte]uint8)
		for i := range targets {
			if m := measured[i]; m != 0 {
				var key [6]byte
				copy(key[:], targets[i][:6])
				prefixDist[key] = m
			}
		}
		for i := range targets {
			if measured[i] != 0 {
				continue
			}
			var key [6]byte
			copy(key[:], targets[i][:6])
			if p, ok := prefixDist[key]; ok {
				predicted[i] = p
			}
		}
	}
}

// Scanner runs FlashRoute6 scans: the generic engine instantiated at
// probe6.Addr with the sparse list-position index as its block mapping.
type Scanner struct {
	inner *core.ScannerOf[probe6.Addr]
}

// buildEngineConfig translates a FlashRoute6 config into the generic
// engine's, installing the sparse response-to-DCB lookup of §5.4:
// candidate-list position is the block index, recovered from quoted
// destinations by hash.
func buildEngineConfig(cfg Config) (core.ConfigOf[probe6.Addr], error) {
	if len(cfg.Targets) == 0 {
		return core.ConfigOf[probe6.Addr]{}, errors.New("core6: Config.Targets must be non-empty")
	}
	targets := cfg.Targets
	index := make(map[probe6.Addr]uint32, len(targets))
	for i, a := range targets {
		index[a] = uint32(i)
	}
	ecfg := core.ConfigOf[probe6.Addr]{
		Blocks:  len(targets),
		Targets: func(block int) probe6.Addr { return targets[block] },
		BlockOf: func(a probe6.Addr) (int, bool) {
			i, ok := index[a]
			return int(i), ok
		},
		Source:                  cfg.Source,
		SplitTTL:                cfg.SplitTTL,
		GapLimit:                cfg.GapLimit,
		MaxTTL:                  cfg.MaxTTL,
		PPS:                     cfg.PPS,
		Senders:                 cfg.Senders,
		Receivers:               cfg.Receivers,
		NewReader:               cfg.NewReader,
		Batch:                   cfg.Batch,
		PreprobeRetries:         cfg.PreprobeRetries,
		ForwardRetries:          cfg.ForwardRetries,
		ForwardTimeout:          cfg.ForwardTimeout,
		NoRedundancyElimination: cfg.NoRedundancyElimination,
		Skip:                    cfg.Skip,
		StopSet:                 cfg.StopSet,
		TraceSink:               cfg.TraceSink,
		CollectRoutes:           cfg.CollectRoutes,
		Observer:                cfg.Observer,
		Seed:                    cfg.Seed,
		DrainWait:               cfg.DrainWait,
		MinRoundTime:            cfg.MinRoundTime,
		CheckpointSink:          cfg.CheckpointSink,
		CheckpointEvery:         cfg.CheckpointEvery,
		CheckpointInterval:      cfg.CheckpointInterval,
		SendRetries:             cfg.SendRetries,
		CancelGrace:             cfg.CancelGrace,
	}
	if cfg.Preprobe {
		ecfg.Preprobe = core.PreprobeRandom
		if cfg.SamePrefixPrediction {
			ecfg.Predict = samePrefixPredict(targets)
		}
		// With Predict nil and ProximitySpan 0 the engine predicts
		// nothing, which is exactly the no-prediction configuration.
	} else {
		ecfg.Preprobe = core.PreprobeOff
	}
	return ecfg, nil
}

// Family returns the probe6.Addr family, for callers that drive the
// generic engine directly (the cluster coordinator).
func Family() core.Family[probe6.Addr] { return family6{} }

// EngineConfig translates a FlashRoute6 config into the generic engine's
// form — the same translation NewScanner performs — so the cluster
// coordinator can derive per-worker engine configs from one v6 spec.
func EngineConfig(cfg Config) (core.ConfigOf[probe6.Addr], error) {
	return buildEngineConfig(cfg)
}

// NewScanner validates the configuration.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	ecfg, err := buildEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewScannerOf[probe6.Addr](family6{}, ecfg, conn, clock)
	if err != nil {
		return nil, err
	}
	return &Scanner{inner: inner}, nil
}

// ResumeScanner reconstructs a FlashRoute6 scan mid-flight from a
// checkpoint snapshot; Run on the returned scanner continues it. The
// configuration must describe the same scan (targets, seed, geometry).
func ResumeScanner(cfg Config, conn PacketConn, clock simclock.Waiter, data []byte) (*Scanner, error) {
	ecfg, err := buildEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.Resume[probe6.Addr](family6{}, ecfg, conn, clock, data)
	if err != nil {
		return nil, err
	}
	return &Scanner{inner: inner}, nil
}

// SetRate retargets the aggregate probing rate, mid-scan included (see
// the generic engine's SetRate: re-split across shards, adopted at each
// shard's next probe; pps < 1 clamps to 1).
func (s *Scanner) SetRate(pps int) { s.inner.SetRate(pps) }

// Run executes the scan (same actor contract as the IPv4 engine: call
// from a goroutine not registered with the clock).
func (s *Scanner) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with graceful cancellation: on ctx cancellation the
// scan stops sending, drains for CancelGrace, and returns the valid
// partial result with Interrupted set (writing a final checkpoint when
// checkpointing is armed).
func (s *Scanner) RunContext(ctx context.Context) (*Result, error) {
	eres, err := s.inner.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		ProbesSent:          eres.ProbesSent,
		PreprobeProbes:      eres.PreprobeProbes,
		ScanTime:            eres.ScanTime,
		Rounds:              eres.Rounds,
		DistancesMeasured:   eres.DistancesMeasured,
		DistancesPredicted:  eres.DistancesPredicted,
		MismatchedResponses: eres.MismatchedResponses,
		UnparsedResponses:   eres.UnparsedResponses,
		ReadErrors:          eres.ReadErrors,
		RetransmittedProbes: eres.RetransmittedProbes,
		DuplicateResponses:  eres.DuplicateResponses,
		SendErrors:          eres.SendErrors,
		SendRetries:         eres.SendRetries,
		CheckpointErrors:    eres.CheckpointErrors,
		Interrupted:         eres.Interrupted,
		store:               eres.Store,
	}, nil
}
