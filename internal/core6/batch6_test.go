package core6

import (
	"testing"
)

// TestBatch6GoldenFingerprint: Config.Batch > 1 on the IPv6 stack must be
// bit-identical to the unbatched engine — the same golden fingerprints
// and probe budgets TestGoldenFingerprint6 pins.
func TestBatch6GoldenFingerprint(t *testing.T) {
	cases := []struct {
		seed   int64
		fp     uint64
		probes uint64
	}{
		{1, 0xa97488fdcbbcc75d, 12630},
		{7, 0xbda5ae5b63051e5f, 12478},
		{21, 0x45b30d442c927e68, 12466},
	}
	for _, tc := range cases {
		e := newEnv(t, 256, 8, tc.seed)
		e.cfg.Batch = 32
		res := e.run(t)
		if fp := fpOf6(res, e.cfg.Targets); fp != tc.fp {
			t.Errorf("seed %d batch=32: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
		if res.ProbesSent != tc.probes {
			t.Errorf("seed %d batch=32: probes %d, want %d", tc.seed, res.ProbesSent, tc.probes)
		}
	}
}

// TestBatch6EquivalenceGrid: batched Senders × Receivers combinations
// must discover exactly what the unbatched sequential scan does — the
// IPv6 half of the engine-wide batch equivalence grid. Redundancy
// elimination is disabled so the discovered topology is a pure function
// of the probe set (the stop set otherwise couples targets through probe
// order).
func TestBatch6EquivalenceGrid(t *testing.T) {
	for _, seed := range []int64{1, 7, 21} {
		mk := func() *env {
			e := newEnv(t, 128, 8, seed)
			// Lockstep conditions (see the IPv4 newLockstepEnv): no ICMP
			// rate limiting or jitter, no stop-set coupling — discovery is
			// a pure function of the probe set, identical across grid
			// points.
			e.topo.P.ICMPRateLimitPPS = 0
			e.topo.P.JitterRTT = 0
			e.cfg.NoRedundancyElimination = true
			return e
		}
		base := mk().run(t)
		baseFP := fpOf6(base, mk().cfg.Targets)
		if base.InterfaceCount() == 0 {
			t.Fatalf("seed %d: degenerate baseline", seed)
		}
		for _, senders := range []int{1, 4} {
			for _, receivers := range []int{1, 4} {
				e := mk()
				e.cfg.Batch = 32
				e.cfg.Senders = senders
				e.cfg.Receivers = receivers
				conn := e.net.NewConn()
				if receivers > 1 {
					e.cfg.NewReader = func() PacketReader { return conn.NewReader() }
				}
				sc, err := NewScanner(e.cfg, conn, e.clock)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sc.Run()
				if err != nil {
					t.Fatal(err)
				}
				if fp := fpOf6(res, e.cfg.Targets); fp != baseFP {
					t.Errorf("seed=%d senders=%d receivers=%d batch=32: fingerprint %#x, want %#x (interfaces %d vs %d)",
						seed, senders, receivers, fp, baseFP,
						res.InterfaceCount(), base.InterfaceCount())
				}
			}
		}
	}
}
