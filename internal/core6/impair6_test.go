package core6

import (
	"bytes"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/probe6"
)

// newLockstepEnv6 builds an IPv6 environment whose response behavior is a
// pure function of which probes are sent, independent of when they are
// sent: no per-interface ICMP rate limiting and no RTT jitter (the v6
// topology has no route dynamics to disable). With redundancy elimination
// off as well — the stop set couples targets through reply order — the
// discovered topology depends only on the probe set, so runs with
// different Senders values or monotone impairments compare exactly.
func newLockstepEnv6(t testing.TB, prefixes, perPrefix int, seed int64) *env {
	t.Helper()
	e := newEnv(t, prefixes, perPrefix, seed)
	e.topo.P.ICMPRateLimitPPS = 0
	e.topo.P.JitterRTT = 0
	e.cfg.NoRedundancyElimination = true
	return e
}

// reachedSet6 collects the targets a scan reached.
func reachedSet6(res *Result, targets []probe6.Addr) map[probe6.Addr]bool {
	m := make(map[probe6.Addr]bool)
	for _, dst := range targets {
		if rt := res.Route(dst); rt != nil && rt.Reached {
			m[dst] = true
		}
	}
	return m
}

// TestImpairmentDeterminism6: same topology seed + same Impairments ⇒ the
// same IPv6 scan, reply for reply. Two runs must agree on the
// fingerprint, the probe count and every impairment counter — the v6
// engine inherits the v4 guarantee through the shared core.
func TestImpairmentDeterminism6(t *testing.T) {
	im := netsim6.Impairments{
		LossProb:      0.08,
		GEGoodToBad:   0.01,
		GEBadToGood:   0.25,
		GEBadLoss:     0.5,
		DupProb:       0.03,
		ReorderProb:   0.05,
		ReorderWindow: 40 * time.Millisecond,
		ExtraJitter:   10 * time.Millisecond,
	}
	run := func() (*Result, *netsim6.Stats) {
		e := newEnv(t, 256, 8, 7)
		e.topo.P.Impair = im
		e.cfg.PreprobeRetries = 1
		e.cfg.ForwardRetries = 1
		return e.run(t), &e.net.Stats
	}
	r1, s1 := run()
	r2, s2 := run()

	if fp1, fp2 := fpOf6(r1, nil), fpOf6(r2, nil); fp1 != fp2 {
		t.Errorf("fingerprints differ across identical runs: %#x vs %#x", fp1, fp2)
	}
	if r1.ProbesSent != r2.ProbesSent {
		t.Errorf("probe counts differ: %d vs %d", r1.ProbesSent, r2.ProbesSent)
	}
	if r1.RetransmittedProbes != r2.RetransmittedProbes {
		t.Errorf("retransmit counts differ: %d vs %d", r1.RetransmittedProbes, r2.RetransmittedProbes)
	}
	if r1.DuplicateResponses != r2.DuplicateResponses {
		t.Errorf("duplicate counts differ: %d vs %d", r1.DuplicateResponses, r2.DuplicateResponses)
	}
	for _, c := range []struct {
		name string
		a, b uint64
	}{
		{"ProbesLost", s1.ProbesLost.Load(), s2.ProbesLost.Load()},
		{"RepliesLost", s1.RepliesLost.Load(), s2.RepliesLost.Load()},
		{"Duplicates", s1.Duplicates.Load(), s2.Duplicates.Load()},
		{"Reordered", s1.Reordered.Load(), s2.Reordered.Load()},
	} {
		if c.a != c.b {
			t.Errorf("netsim6 %s differs: %d vs %d", c.name, c.a, c.b)
		}
		if c.a == 0 {
			t.Errorf("netsim6 %s is zero — impairment not exercised", c.name)
		}
	}
	t.Logf("probes=%d retransmits=%d dups=%d interfaces=%d",
		r1.ProbesSent, r1.RetransmittedProbes, r1.DuplicateResponses, r1.InterfaceCount())
}

// TestMultiSenderInvariant6: in the lockstep environment the discovered
// topology is a pure function of the probe set, which does not depend on
// how the permuted order is sharded — one sender and four must find
// exactly the same interfaces and reach exactly the same targets.
func TestMultiSenderInvariant6(t *testing.T) {
	run := func(senders int) (*Result, []probe6.Addr) {
		e := newLockstepEnv6(t, 256, 8, 9)
		e.cfg.Senders = senders
		return e.run(t), e.cfg.Targets
	}
	one, targets := run(1)
	four, _ := run(4)

	i1, i4 := one.Interfaces(), four.Interfaces()
	if len(i1) != len(i4) {
		t.Fatalf("interface counts differ: 1 sender=%d, 4 senders=%d", len(i1), len(i4))
	}
	for k := range i1 {
		if !bytes.Equal(i1[k][:], i4[k][:]) {
			t.Fatalf("interface sets diverge at %d: %s vs %s", k, i1[k], i4[k])
		}
	}
	r1, r4 := reachedSet6(one, targets), reachedSet6(four, targets)
	if len(r1) != len(r4) {
		t.Fatalf("reached counts differ: 1 sender=%d, 4 senders=%d", len(r1), len(r4))
	}
	for d := range r1 {
		if !r4[d] {
			t.Fatalf("target %s reached only with 1 sender", d)
		}
	}
	t.Logf("invariant holds: %d interfaces, %d reached", len(i1), len(r1))
}

// TestMultiSenderImpaired6: the sharded sender path composes with the
// impairment layer and the retry machinery — a 4-sender scan under loss
// and duplication must complete, retry, and discover a subset of what the
// clean 4-sender scan finds (loss is monotone in lockstep).
func TestMultiSenderImpaired6(t *testing.T) {
	run := func(im netsim6.Impairments) (*Result, []probe6.Addr) {
		e := newLockstepEnv6(t, 256, 8, 13)
		e.cfg.Senders = 4
		e.cfg.ForwardRetries = 1
		e.topo.P.Impair = im
		return e.run(t), e.cfg.Targets
	}
	clean, targets := run(netsim6.Impairments{})
	lossy, _ := run(netsim6.Impairments{LossProb: 0.15, DupProb: 0.05})

	ci, li := clean.Interfaces(), lossy.Interfaces()
	cset := make(map[probe6.Addr]bool, len(ci))
	for _, a := range ci {
		cset[a] = true
	}
	for _, a := range li {
		if !cset[a] {
			t.Errorf("interface %s discovered only under loss", a)
		}
	}
	cr, lr := reachedSet6(clean, targets), reachedSet6(lossy, targets)
	for d := range lr {
		if !cr[d] {
			t.Errorf("target %s reached only under loss", d)
		}
	}
	if lossy.RetransmittedProbes == 0 {
		t.Error("impaired multi-sender run recorded no retransmits")
	}
	t.Logf("interfaces: clean=%d lossy=%d; reached: clean=%d lossy=%d (retransmits=%d)",
		len(ci), len(li), len(cr), len(lr), lossy.RetransmittedProbes)
}

// TestPreprobeRetry6: under loss, preprobe retry passes must recover
// measured distances a single pass lost.
func TestPreprobeRetry6(t *testing.T) {
	run := func(retries int) *Result {
		e := newEnv(t, 256, 8, 1)
		e.topo.P.Impair = netsim6.Impairments{LossProb: 0.30}
		e.cfg.PreprobeRetries = retries
		return e.run(t)
	}
	plain := run(0)
	retried := run(2)

	if retried.RetransmittedProbes == 0 {
		t.Fatal("retry runs recorded no retransmitted probes")
	}
	if retried.DistancesMeasured <= plain.DistancesMeasured {
		t.Errorf("retries measured %d distances, single pass %d — no recovery",
			retried.DistancesMeasured, plain.DistancesMeasured)
	}
	t.Logf("measured: plain=%d retried=%d (retransmits=%d)",
		plain.DistancesMeasured, retried.DistancesMeasured, retried.RetransmittedProbes)
}

// TestForwardRetry6: under loss, rewinding the silent forward gap must
// not lose discovery relative to giving up (lockstep environment, where
// retransmissions cannot cost unrelated replies).
func TestForwardRetry6(t *testing.T) {
	run := func(retries int) (*Result, []probe6.Addr) {
		e := newLockstepEnv6(t, 256, 8, 1)
		e.topo.P.Impair = netsim6.Impairments{LossProb: 0.15}
		e.cfg.ForwardRetries = retries
		return e.run(t), e.cfg.Targets
	}
	plain, targets := run(0)
	retried, _ := run(1)

	if retried.RetransmittedProbes == 0 {
		t.Fatal("forward retries recorded no retransmitted probes")
	}
	ip, ir := plain.InterfaceCount(), retried.InterfaceCount()
	rp, rr := len(reachedSet6(plain, targets)), len(reachedSet6(retried, targets))
	if ir < ip {
		t.Errorf("forward retries discovered fewer interfaces: %d < %d", ir, ip)
	}
	if rr < rp {
		t.Errorf("forward retries reached fewer targets: %d < %d", rr, rp)
	}
	t.Logf("interfaces: plain=%d retried=%d; reached: plain=%d retried=%d (retransmits=%d)",
		ip, ir, rp, rr, retried.RetransmittedProbes)
}

// TestDuplicateReplyDedup6 is the regression test for the duplicate-reply
// guard the v6 engine inherits from the shared core: with every packet
// duplicated, a duplicated Hop-Limit-Exceeded reply must neither change
// the discovered topology nor double-count a hop in any route (before the
// guard, each duplicated reply re-appended its interface at the same
// hop limit and could terminate backward probing early against its own
// stop-set entry).
func TestDuplicateReplyDedup6(t *testing.T) {
	run := func(dup float64) (*Result, []probe6.Addr) {
		e := newLockstepEnv6(t, 256, 8, 11)
		e.cfg.CollectRoutes = true
		e.topo.P.Impair = netsim6.Impairments{DupProb: dup}
		return e.run(t), e.cfg.Targets
	}
	clean, targets := run(0)
	duped, _ := run(1)

	if fc, fd := fpOf6(clean, targets), fpOf6(duped, targets); fc != fd {
		t.Errorf("duplication changed the discovered topology: %#x vs %#x", fc, fd)
	}
	if duped.DuplicateResponses == 0 {
		t.Error("DupProb=1 produced no counted duplicate responses")
	}
	for _, dst := range targets {
		rt := duped.Route(dst)
		if rt == nil {
			continue
		}
		seen := make(map[uint8]int, len(rt.Hops))
		for _, h := range rt.Hops {
			seen[h.TTL]++
			if seen[h.TTL] > 1 {
				t.Fatalf("route to %s double-counts hop limit %d under duplication", dst, h.TTL)
			}
		}
	}
	t.Logf("interfaces=%d duplicates discarded=%d",
		duped.InterfaceCount(), duped.DuplicateResponses)
}
