package core6

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim6"
)

// TestResume6Equivalence: the crash-safety property holds through the
// IPv6 instantiation — kill a scan at its first checkpoint, resume the
// snapshot in a fresh environment, and the union of the two runs matches
// the uninterrupted topology exactly (lockstep environment).
func TestResume6Equivalence(t *testing.T) {
	const prefixes, perPrefix, seed = 256, 8, 9
	base := newLockstepEnv6(t, prefixes, perPrefix, seed)
	baseline := base.run(t)
	baseFP := fpOf6(baseline, base.cfg.Targets)
	if baseline.InterfaceCount() == 0 {
		t.Fatal("degenerate baseline")
	}

	e := newLockstepEnv6(t, prefixes, perPrefix, seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var snap []byte
	e.cfg.CheckpointEvery = int(baseline.ProbesSent / 2)
	e.cfg.CheckpointSink = func(b []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if snap == nil {
			snap = append([]byte(nil), b...)
			cancel()
		}
		return nil
	}
	e.cfg.CancelGrace = 100 * time.Millisecond
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	part, err := sc.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted {
		t.Fatal("killed scan not marked Interrupted")
	}
	mu.Lock()
	data := snap
	mu.Unlock()
	if data == nil {
		t.Fatal("no checkpoint captured")
	}

	e2 := newLockstepEnv6(t, prefixes, perPrefix, seed)
	rsc, err := ResumeScanner(e2.cfg, e2.net.NewConn(), e2.clock, data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := rsc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fp := fpOf6(resumed, e2.cfg.Targets); fp != baseFP {
		t.Errorf("resumed fingerprint %#x, want %#x (interfaces %d vs %d, reached %d vs %d)",
			fp, baseFP, resumed.InterfaceCount(), baseline.InterfaceCount(),
			len(reachedSet6(resumed, e2.cfg.Targets)), len(reachedSet6(baseline, base.cfg.Targets)))
	}
}

// TestFaultWindow6WriteErrorSurvived: the deterministic write-error
// window is survivable by send retries on the IPv6 transport too — the
// lockstep topology comes out bit-identical to a clean run.
func TestFaultWindow6WriteErrorSurvived(t *testing.T) {
	const prefixes, perPrefix, seed = 256, 8, 4
	base := newLockstepEnv6(t, prefixes, perPrefix, seed)
	clean := base.run(t)

	e := newLockstepEnv6(t, prefixes, perPrefix, seed)
	e.topo.P.Impair.Faults = []netsim6.FaultWindow{
		// Inside the first main-round burst: the 2048-probe preprobe sweep
		// takes ~41 ms, then the 2 s drain puts round 1 at ~2.04 s.
		{Start: 2050 * time.Millisecond, Duration: 30 * time.Millisecond, Kind: netsim6.FaultWriteError},
	}
	e.cfg.SendRetries = 10
	res := e.run(t)
	if fp, want := fpOf6(res, e.cfg.Targets), fpOf6(clean, base.cfg.Targets); fp != want {
		t.Errorf("write-error window changed the topology: fingerprint %#x, want %#x", fp, want)
	}
	if res.SendRetries == 0 {
		t.Error("window produced no retries")
	}
	if res.SendErrors != 0 {
		t.Errorf("survivable window still abandoned %d probes", res.SendErrors)
	}
	if e.net.Stats.WriteFaults.Load() == 0 {
		t.Error("WriteFaults not counted")
	}
}
