package core6

import (
	"bytes"
	"sort"
	"testing"

	"github.com/flashroute/flashroute/internal/probe6"
)

// fpOf6 fingerprints a FlashRoute6 scan's discovered topology: FNV-1a
// over the sorted interface set and the sorted reached-target set. Probe
// order and timing do not enter the fingerprint, only what was
// discovered — the IPv6 analogue of the IPv4 engine's fpOf.
func fpOf6(res *Result, targets []probe6.Addr) uint64 {
	ifaces := res.Interfaces()
	var reached []probe6.Addr
	for _, dst := range targets {
		if rt := res.Route(dst); rt != nil && rt.Reached {
			reached = append(reached, dst)
		}
	}
	sort.Slice(reached, func(i, j int) bool {
		return bytes.Compare(reached[i][:], reached[j][:]) < 0
	})
	h := uint64(14695981039346656037)
	mix := func(a probe6.Addr) {
		for _, b := range a {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	for _, a := range ifaces {
		mix(a)
	}
	h ^= 0xff
	h *= 1099511628211
	for _, d := range reached {
		mix(d)
	}
	return h
}

// TestGoldenFingerprint6 pins the v6 scanner's discovered topology and
// probe budget on a perfect network with a single sender: the safety net
// under which the engine can be refactored. The fingerprints below were
// captured from the standalone (pre-unification) FlashRoute6 scanner and
// must never drift.
func TestGoldenFingerprint6(t *testing.T) {
	cases := []struct {
		seed   int64
		fp     uint64
		probes uint64
	}{
		{1, 0xa97488fdcbbcc75d, 12630},
		{7, 0xbda5ae5b63051e5f, 12478},
		{21, 0x45b30d442c927e68, 12466},
	}
	for _, tc := range cases {
		e := newEnv(t, 256, 8, tc.seed)
		res := e.run(t)
		if fp := fpOf6(res, e.cfg.Targets); fp != tc.fp {
			t.Errorf("seed %d: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
		if res.ProbesSent != tc.probes {
			t.Errorf("seed %d: probes %d, want %d", tc.seed, res.ProbesSent, tc.probes)
		}
		if res.InterfaceCount() == 0 || res.ReachedCount() == 0 {
			t.Errorf("seed %d: degenerate scan (%d interfaces, %d reached)",
				tc.seed, res.InterfaceCount(), res.ReachedCount())
		}
	}
}
