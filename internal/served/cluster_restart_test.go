package served

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	flashroute "github.com/flashroute/flashroute"
)

// goldenCluster computes a cluster spec's uninterrupted discovery
// fingerprint with a direct virtual-clock library run, mirroring
// golden() for the coordinator path.
func goldenCluster(t *testing.T, spec JobSpec) uint64 {
	t.Helper()
	spec.RealTime = false
	sim, err := flashroute.NewSimulationCIDRs(spec.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.ScanCluster(spec.ScanConfig(), flashroute.ClusterOptions{Workers: spec.Workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return discoveryFP(buf.Bytes())
}

// TestClusterJobRestartResume pins the per-shard persistence path: a
// cluster job interrupted by a daemon stop leaves one checkpoint per
// shard behind, and a fresh daemon over the same state dir resumes
// every shard from its snapshot instead of re-running the job from
// scratch. The one-worker job must land on the uninterrupted golden
// fingerprint; the two-worker job must resume both shards and finish
// with discovery.
func TestClusterJobRestartResume(t *testing.T) {
	state := t.TempDir()
	// NoRedundancyElimination, as in TestDaemonRestartResume: a resumed
	// run's rewind re-probes with a fuller stop set than the golden run
	// had at the same point, so Doubletree suppression makes resumed
	// routes legitimately sparser; without it, discovery is
	// checkpoint-exact.
	fast := JobSpec{
		Type: "cluster", RealTime: true, Lockstep: true, NoRedundancyElimination: true,
		PPS: 3_000, MinRoundTimeMS: 1, DrainWaitMS: 25, CheckpointEvery: 500,
	}
	k1 := fast
	k1.Tenant, k1.Workers, k1.Blocks, k1.Seed = "alice", 1, 512, 11
	k2 := fast
	k2.Tenant, k2.Workers, k2.Blocks, k2.Seed = "bob", 2, 512, 7

	// Phase 1: get both jobs probing past their first per-shard
	// checkpoints, then stop the daemon mid-scan.
	srv1, err := New(Config{StateDir: state, GlobalPPS: 100_000, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newHTTP(t, srv1)
	ids := map[string]JobSpec{}
	workersOf := map[string]int{}
	for _, spec := range []JobSpec{k1, k2} {
		id := submit(t, ts1, spec)
		ids[id] = spec
		workersOf[id] = spec.Workers
	}
	goldenK1 := goldenCluster(t, k1)
	for id, spec := range ids {
		want := spec.Workers
		pollStatus(t, ts1, id, 30*time.Second, func(st *JobStatus) bool {
			if terminal(st) {
				t.Fatalf("job %s finished before the daemon stop (state %s)", id, st.State)
			}
			if st.State != StateRunning || st.Probes < 1_000 {
				return false
			}
			snaps, err := srv1.store.ShardCheckpoints(id)
			return err == nil && len(snaps) == want
		})
	}
	ts1.Close()
	srv1.Stop()

	// Every shard left a checkpoint behind (the engines write a final one
	// on the way out) and the job table still says running — the restart
	// cue.
	for id, spec := range ids {
		snaps, err := srv1.store.ShardCheckpoints(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != spec.Workers {
			t.Fatalf("job %s: %d shard checkpoints persisted, want %d", id, len(snaps), spec.Workers)
		}
		for shard, snap := range snaps {
			if len(snap) == 0 {
				t.Fatalf("job %s shard %d: empty checkpoint", id, shard)
			}
		}
	}

	// Phase 2: a fresh daemon must mark both jobs for per-shard resume
	// and finish them.
	srv2, err := New(Config{StateDir: state, GlobalPPS: 100_000, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newHTTP(t, srv2)
	defer func() { ts2.Close(); srv2.Stop() }()
	for id, spec := range ids {
		j := srv2.JobForTest(id)
		if j == nil {
			t.Fatalf("restarted daemon lost job %s", id)
		}
		if !j.resume {
			t.Fatalf("job %s was not marked for resume", id)
		}
		if len(j.shardSnaps) != spec.Workers {
			t.Fatalf("job %s: %d shard snapshots loaded, want %d", id, len(j.shardSnaps), spec.Workers)
		}
	}
	for id, spec := range ids {
		st := pollStatus(t, ts2, id, 120*time.Second, terminal)
		if st.State != StateDone {
			t.Fatalf("resumed cluster job %s ended %s (%s)", id, st.State, st.Error)
		}
		if st.Probes == 0 || st.Interfaces == 0 {
			t.Fatalf("resumed cluster job %s reports no discovery: %+v", id, st)
		}
		resp, got := get(t, ts2.URL+"/v1/jobs/"+id+"/results")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results %s: %d %s", id, resp.StatusCode, got)
		}
		if spec.Workers == 1 {
			// One worker is the deterministic case: the resumed run must be
			// discovery-identical to an uninterrupted virtual-clock run.
			if fp := discoveryFP(got); fp != goldenK1 {
				t.Errorf("K=1 cluster job %s: resumed fingerprint %#x, golden %#x", id, fp, goldenK1)
			}
		}
		// Terminal jobs keep no shard snapshots around.
		snaps, err := srv2.store.ShardCheckpoints(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != 0 {
			t.Errorf("finished job %s still has %d shard checkpoints", id, len(snaps))
		}
	}
}
