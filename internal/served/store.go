package served

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Job states as persisted and served.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// JobRecord is the durable row of the job table: everything needed to
// re-list the job after a restart and to decide whether it must resume.
type JobRecord struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	State     string    `json:"state"`
	Spec      JobSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Probes is the final probe count of a finished job.
	Probes uint64 `json:"probes,omitempty"`
	// Interfaces is the discovered interface count of a finished job.
	Interfaces int `json:"interfaces,omitempty"`
	// Migrations is the shard-handoff count of a finished cluster job.
	Migrations int `json:"migrations,omitempty"`
	// StopSetDegraded is the stop-set degradation episode count of a
	// finished cluster job.
	StopSetDegraded uint64 `json:"stopset_degraded,omitempty"`
}

// Store is the daemon's state directory: one JSON record, one checkpoint
// snapshot and one NDJSON result file per job, under <dir>/jobs. All
// writes go through an atomic temp-file rename, so a crash never leaves
// a half-written record to resume from.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens a state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("served: state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (st *Store) recordPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".json")
}

// CheckpointPath is where a job's latest snapshot lives.
func (st *Store) CheckpointPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".ckpt")
}

// ResultsPath is where a finished job's NDJSON results live.
func (st *Store) ResultsPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".ndjson")
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutRecord persists a job record atomically.
func (st *Store) PutRecord(r *JobRecord) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return atomicWrite(st.recordPath(r.ID), data)
}

// PutCheckpoint persists a job's latest snapshot atomically.
func (st *Store) PutCheckpoint(id string, snapshot []byte) error {
	return atomicWrite(st.CheckpointPath(id), snapshot)
}

// ShardCheckpointPath is where one shard's snapshot of a cluster job
// lives. Cluster jobs persist one checkpoint per shard (each worker
// loop has its own engine state), so a daemon restart can resume every
// shard rather than re-running the whole job.
func (st *Store) ShardCheckpointPath(id string, shard int) string {
	return filepath.Join(st.dir, "jobs", fmt.Sprintf("%s.shard-%d.ckpt", id, shard))
}

// PutShardCheckpoint persists one shard's latest snapshot atomically.
func (st *Store) PutShardCheckpoint(id string, shard int, snapshot []byte) error {
	return atomicWrite(st.ShardCheckpointPath(id, shard), snapshot)
}

// ShardCheckpoints loads every persisted shard snapshot of a cluster
// job, keyed by shard index. An empty map means the job has no shard
// checkpoints (it barely started — re-run it fresh).
func (st *Store) ShardCheckpoints(id string) (map[int][]byte, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	prefix := id + ".shard-"
	out := make(map[int][]byte)
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		numStr, ok := strings.CutSuffix(rest, ".ckpt")
		if !ok {
			continue
		}
		shard, err := strconv.Atoi(numStr)
		if err != nil || shard < 0 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		out[shard] = data
	}
	return out, nil
}

// RemoveShardCheckpoints deletes a finished cluster job's shard
// snapshots (they are only meaningful while the job can still resume).
func (st *Store) RemoveShardCheckpoints(id string) error {
	snaps, err := st.ShardCheckpoints(id)
	if err != nil {
		return err
	}
	for shard := range snaps {
		if err := os.Remove(st.ShardCheckpointPath(id, shard)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Checkpoint loads a job's snapshot; ok is false when none was written.
func (st *Store) Checkpoint(id string) (snapshot []byte, ok bool, err error) {
	data, err := os.ReadFile(st.CheckpointPath(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// PutResults persists a job's NDJSON results atomically.
func (st *Store) PutResults(id string, ndjson []byte) error {
	return atomicWrite(st.ResultsPath(id), ndjson)
}

// PutResultsStream persists a job's NDJSON results atomically without
// buffering them in memory: write streams into a buffered temp file
// that is renamed over the results path on success and removed on any
// failure — the emit path's k-way merge over store stripes flows
// straight to disk.
func (st *Store) PutResultsStream(id string, write func(io.Writer) error) error {
	path := st.ResultsPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadResults loads a finished job's NDJSON results.
func (st *Store) ReadResults(id string) ([]byte, error) {
	return os.ReadFile(st.ResultsPath(id))
}

// LoadAll reads every persisted job record, ordered by submission time
// (ties broken by ID) — the job table a restarting daemon resumes from.
// Lexicographic ID order is NOT creation order once the sequential
// counter outgrows its zero padding, so the timestamp is authoritative.
func (st *Store) LoadAll() ([]*JobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var out []*JobRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		var r JobRecord
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("served: corrupt job record %s: %w", name, err)
		}
		out = append(out, &r)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.Before(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
