package served

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestReadyz pins the readiness probe: 200 with capacity numbers while
// the daemon can accept work, 503 once it is shutting down — distinct
// from /healthz, which only says the process is up.
func TestReadyz(t *testing.T) {
	srv, ts := newTestServer(t, Config{GlobalPPS: 50_000, MaxActive: 2, MaxQueued: 8})

	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d %s, want 200", resp.StatusCode, body)
	}
	var rd Readiness
	if err := json.Unmarshal(body, &rd); err != nil {
		t.Fatalf("bad /readyz body %s: %v", body, err)
	}
	if !rd.Ready {
		t.Errorf("idle daemon not ready: %+v", rd)
	}
	if rd.QueueCapacity != 8 || rd.MaxActive != 2 {
		t.Errorf("capacity numbers %+v, want queue 8, active 2", rd)
	}
	if rd.QueueDepth != 0 || rd.ActiveJobs != 0 {
		t.Errorf("idle daemon reports work: %+v", rd)
	}
	if rd.BudgetHeadroom != 50_000 {
		t.Errorf("idle headroom %d, want the full ceiling", rd.BudgetHeadroom)
	}

	// /healthz stays a bare liveness probe.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	// A shutting-down daemon reports itself not ready.
	srv.Stop()
	rd = srv.Readiness()
	if rd.Ready {
		t.Errorf("stopped daemon still ready: %+v", rd)
	}
}
