package served

import (
	"testing"
	"time"
)

// TestListOrderDeterministic pins GET /v1/jobs ordering: jobs come back
// in creation-time order with ID as the tie-break, across a daemon
// restart. The record IDs below are chosen so lexicographic ID order
// disagrees with submission order ("job-1000000" sorts before
// "job-999999" once the sequential counter outgrows its zero padding) —
// the old ID-sorted reload got this wrong.
func TestListOrderDeterministic(t *testing.T) {
	state := t.TempDir()
	st, err := OpenStore(state)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	recs := []*JobRecord{
		{ID: "job-999999", Submitted: t0, State: StateDone},
		{ID: "job-1000000", Submitted: t0.Add(time.Minute), State: StateDone},
		{ID: "job-1000001", Submitted: t0.Add(time.Minute), State: StateDone}, // tie: ID breaks it
	}
	// Write in scrambled order; on-disk order must not matter.
	for _, i := range []int{1, 2, 0} {
		if err := st.PutRecord(recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	now := t0.Add(time.Hour)
	srv, err := New(Config{StateDir: state, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// A freshly submitted job sorts after everything reloaded.
	id, apiErr := srv.Submit(JobSpec{Blocks: 16, Seed: 1, PPS: 100_000})
	if apiErr != nil {
		t.Fatal(apiErr)
	}

	want := []string{"job-999999", "job-1000000", "job-1000001", id}
	for try := 0; try < 2; try++ {
		list := srv.List()
		if len(list) != len(want) {
			t.Fatalf("List returned %d jobs, want %d", len(list), len(want))
		}
		for i, js := range list {
			if js.ID != want[i] {
				t.Fatalf("List[%d] = %s, want %s (try %d)", i, js.ID, want[i], try)
			}
		}
	}
}
