package served

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	flashroute "github.com/flashroute/flashroute"
)

// Config parameterizes the daemon.
type Config struct {
	// StateDir is where the job table, checkpoints and results persist.
	StateDir string
	// GlobalPPS is the probing-rate ceiling divided across running jobs
	// (default 100,000).
	GlobalPPS int
	// MaxActive bounds concurrently running jobs (default 4); MaxQueued
	// bounds jobs waiting behind them (default 64) — submissions beyond
	// it are rejected with 429.
	MaxActive int
	MaxQueued int
	// CheckpointEvery is the default per-job snapshot cadence in probes
	// (default 10,000); a job spec may override it.
	CheckpointEvery int
	// WatchdogTimeout arms the cluster coordinator's per-worker progress
	// watchdog for cluster jobs (see ClusterOptions.WatchdogTimeout).
	// Zero (the default) leaves it disabled.
	WatchdogTimeout time.Duration
	// MaxMigrations bounds per-shard handoffs for cluster jobs (0 =
	// coordinator default; negative disables migration).
	MaxMigrations int
	// Now supplies record timestamps (default time.Now); tests pin it.
	Now func() time.Time
}

// liveScan is the family-independent face of a running scan handle;
// both flashroute.ScanHandle and ScanHandle6 satisfy it.
type liveScan interface {
	Probes() uint64
	SetRate(pps int)
	Cancel()
}

// Job is one submitted scan. Mutable fields are guarded by the server
// lock except the atomics, which the HTTP handlers read live.
type Job struct {
	ID        string
	Tenant    string
	Spec      JobSpec
	Submitted time.Time

	state      string
	errMsg     string
	probes     uint64 // final count once terminal
	interfaces int    // final count once terminal

	resume     bool           // restart path: continue from snapshot
	snapshot   []byte         // loaded checkpoint (nil: start fresh)
	shardSnaps map[int][]byte // cluster restart path: per-shard checkpoints

	migrations   int    // final shard-handoff count once terminal
	degraded     uint64 // final stop-set degradation episodes once terminal
	userCanceled atomic.Bool
	cancel       context.CancelFunc
	rate         atomic.Int64
	handle       atomic.Value // liveScan
	done         chan struct{}
}

// liveHandle returns the running scan handle, nil before the scan
// starts or after the job goroutine exits.
func (j *Job) liveHandle() liveScan {
	if h, ok := j.handle.Load().(liveScan); ok {
		return h
	}
	return nil
}

// applyRate is the budget's push callback: remember the grant and, when
// the scan is already running, retarget its pacers immediately.
func (j *Job) applyRate(pps int) {
	j.rate.Store(int64(pps))
	if h := j.liveHandle(); h != nil {
		h.SetRate(pps)
	}
}

// Server is the scan-as-a-service daemon core: admission, scheduling,
// budget division, persistence and restart-resume. The HTTP layer in
// http.go is a thin translation over it.
type Server struct {
	cfg    Config
	store  *Store
	budget *Budget

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listing
	queue   []*Job
	active  int
	nextID  int
	stopped bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New opens (or re-opens) a server over a state directory. Re-opening
// re-lists the persisted job table: terminal jobs are kept for listing,
// queued jobs re-enter the queue, and jobs that were running when the
// previous daemon stopped are re-queued to resume from their latest
// checkpoint — fingerprint-identical to an uninterrupted run.
func New(cfg Config) (*Server, error) {
	if cfg.GlobalPPS == 0 {
		cfg.GlobalPPS = 100_000
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10_000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	store, err := OpenStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   store,
		budget:  NewBudget(cfg.GlobalPPS),
		jobs:    make(map[string]*Job),
		baseCtx: ctx,
		stop:    stop,
	}
	recs, err := store.LoadAll()
	if err != nil {
		stop()
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		j := &Job{
			ID:         rec.ID,
			Tenant:     rec.Tenant,
			Spec:       rec.Spec,
			Submitted:  rec.Submitted,
			state:      rec.State,
			errMsg:     rec.Error,
			probes:     rec.Probes,
			interfaces: rec.Interfaces,
			migrations: rec.Migrations,
			degraded:   rec.StopSetDegraded,
			done:       make(chan struct{}),
		}
		// Parse the full numeric suffix: a width-limited Sscanf of
		// "job-%06d" silently truncates seven-digit IDs, letting the
		// counter collide with (and overwrite) a reloaded job.
		if rest, ok := strings.CutPrefix(rec.ID, "job-"); ok {
			if n, err := strconv.Atoi(rest); err == nil && n >= s.nextID {
				s.nextID = n + 1
			}
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		switch rec.State {
		case StateQueued:
			s.queue = append(s.queue, j)
		case StateRunning:
			// In flight when the previous daemon stopped: resume from the
			// latest snapshot (none yet means the scan barely started —
			// re-run it fresh, which in sim mode is the same scan).
			// Cluster jobs checkpoint per shard; every shard with a
			// persisted snapshot resumes where it left off.
			if rec.Spec.Type == "cluster" {
				snaps, err := store.ShardCheckpoints(j.ID)
				if err != nil {
					stop()
					return nil, err
				}
				if len(snaps) > 0 {
					j.resume = true
					j.shardSnaps = snaps
				}
			} else {
				snap, ok, err := store.Checkpoint(j.ID)
				if err != nil {
					stop()
					return nil, err
				}
				j.resume = ok
				j.snapshot = snap
			}
			j.state = StateQueued
			s.queue = append(s.queue, j)
		default:
			close(j.done) // terminal: listing only
		}
	}
	s.admitLocked()
	return s, nil
}

// Submit validates and enqueues a job, returning its ID. Admission
// errors are structured: bad specs map to 4xx, a full queue to 429.
func (s *Server) Submit(spec JobSpec) (string, *APIError) {
	if apiErr := spec.Validate(); apiErr != nil {
		return "", apiErr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return "", &APIError{Code: "shutting_down", Message: "server is shutting down"}
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		return "", &APIError{Code: "queue_full",
			Message: fmt.Sprintf("job queue is full (%d queued)", len(s.queue))}
	}
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	j := &Job{
		ID:        id,
		Tenant:    spec.Tenant,
		Spec:      spec,
		Submitted: s.cfg.Now(),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	if err := s.store.PutRecord(s.recordLocked(j)); err != nil {
		return "", &APIError{Code: "store_error", Message: err.Error()}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	s.admitLocked()
	return id, nil
}

// recordLocked snapshots a job into its durable record form. Caller
// holds s.mu.
func (s *Server) recordLocked(j *Job) *JobRecord {
	return &JobRecord{
		ID:         j.ID,
		Tenant:     j.Tenant,
		State:      j.state,
		Spec:       j.Spec,
		Submitted:  j.Submitted,
		Error:      j.errMsg,
		Probes:     j.probes,
		Interfaces: j.interfaces,

		Migrations:      j.migrations,
		StopSetDegraded: j.degraded,
	}
}

// admitLocked starts queued jobs while the active bound allows. Caller
// holds s.mu.
func (s *Server) admitLocked() {
	for s.active < s.cfg.MaxActive && len(s.queue) > 0 && !s.stopped {
		j := s.queue[0]
		s.queue = s.queue[1:]
		j.state = StateRunning
		// Persist the transition before probing starts: if the daemon
		// dies any time after this line, the restart sees "running" and
		// resumes (or re-runs) the job.
		if err := s.store.PutRecord(s.recordLocked(j)); err != nil {
			j.state = StateFailed
			j.errMsg = err.Error()
			close(j.done)
			continue
		}
		s.active++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// runJob owns one job from start to terminal state (or to the daemon's
// stop, which leaves it resumable).
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	canceledEarly := j.userCanceled.Load()
	s.mu.Unlock()
	if canceledEarly {
		// Cancel raced admission: finish without probing.
		s.finishJob(j, StateCanceled, "", nil)
		return
	}

	rate := s.budget.Add(j.ID, j.Tenant, j.Spec.PPS, j.applyRate)
	defer s.budget.Remove(j.ID)

	every := j.Spec.CheckpointEvery
	if every == 0 {
		every = s.cfg.CheckpointEvery
	}
	sink := func(snapshot []byte) error { return s.store.PutCheckpoint(j.ID, snapshot) }

	if j.Spec.Type == "cluster" {
		s.runCluster(ctx, j, rate, every)
	} else if j.Spec.Family == FamilyV6 {
		s.runV6(ctx, j, rate, every, sink)
	} else {
		s.runV4(ctx, j, rate, every, sink)
	}
}

func (s *Server) runV4(ctx context.Context, j *Job, rate, every int, sink func([]byte) error) {
	sim, err := flashroute.NewSimulationCIDRs(j.Spec.SimConfig())
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	cfg := j.Spec.ScanConfig()
	cfg.PPS = rate
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = sink
	var h *flashroute.ScanHandle
	if j.resume {
		h, err = sim.StartResumeScan(ctx, cfg, j.snapshot)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			// The previous daemon died between the scan's final snapshot
			// and its results write: the scan is done but its output was
			// lost. Sim-mode scans are deterministic, so a fresh run
			// regenerates the identical result.
			h, err = sim.StartScan(ctx, cfg)
		}
	} else {
		h, err = sim.StartScan(ctx, cfg)
	}
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	j.handle.Store(liveScan(h))
	h.SetRate(int(j.rate.Load())) // adopt any grant change that raced the start
	res, err := h.Wait()
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	final := func(state string) {
		s.finishJob(j, state, "", &scanSummary{
			probes: res.Probes(), interfaces: res.InterfaceCount(),
			writeNDJSON: func(w io.Writer) error { return res.WriteJSONL(w) },
		})
	}
	switch {
	case res.Interrupted() && j.userCanceled.Load():
		final(StateCanceled) // valid partial result
	case res.Interrupted():
		s.releaseInterrupted(j) // daemon stop: stays resumable
	default:
		final(StateDone)
	}
}

func (s *Server) runV6(ctx context.Context, j *Job, rate, every int, sink func([]byte) error) {
	sim := flashroute.NewSimulation6(j.Spec.Sim6Config())
	cfg := j.Spec.Scan6Config()
	cfg.PPS = rate
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = sink
	var h *flashroute.ScanHandle6
	var err error
	if j.resume {
		h, err = sim.StartResumeScan(ctx, cfg, j.snapshot)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			h, err = sim.StartScan(ctx, cfg)
		}
	} else {
		h, err = sim.StartScan(ctx, cfg)
	}
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	j.handle.Store(liveScan(h))
	h.SetRate(int(j.rate.Load()))
	res, err := h.Wait()
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	final := func(state string) {
		s.finishJob(j, state, "", &scanSummary{
			probes: res.Probes(), interfaces: res.InterfaceCount(),
			writeNDJSON: func(w io.Writer) error { return res.WriteJSONL(w) },
		})
	}
	switch {
	case res.Interrupted() && j.userCanceled.Load():
		final(StateCanceled)
	case res.Interrupted():
		s.releaseInterrupted(j)
	default:
		final(StateDone)
	}
}

// clusterOutcome is the family-independent view of a finished cluster
// scan that runCluster needs to terminate a job.
type clusterOutcome struct {
	interrupted bool
	probes      uint64
	interfaces  int
	migrations  int
	degraded    uint64
	jsonl       func(io.Writer) error
}

// runCluster runs a "cluster" job: the multi-vantage coordinator of
// DESIGN.md §13, with the spec's Workers loops sharing one global stop
// set and the self-healing supervisor of §15 on top (armed only when
// the daemon configures WatchdogTimeout). Every worker persists a
// per-shard checkpoint each `every` probes, so a daemon restart resumes
// every shard from its snapshot; shard handoff inside the coordinator
// covers worker loss while the daemon is up. At one worker with no
// faults the resumed/re-run output is bit-identical; at K>1 the merged
// output is deterministic given the stop-set merge log, whose
// interleaving varies run to run (DESIGN.md §13).
func (s *Server) runCluster(ctx context.Context, j *Job, rate, every int) {
	opt := flashroute.ClusterOptions{
		Workers:         j.Spec.Workers,
		WatchdogTimeout: s.cfg.WatchdogTimeout,
		MaxMigrations:   s.cfg.MaxMigrations,
		CheckpointEvery: every,
		CheckpointSink: func(shard int, snapshot []byte) error {
			return s.store.PutShardCheckpoint(j.ID, shard, snapshot)
		},
		ResumeSnapshots: j.shardSnaps,
	}
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	var h liveScan
	var wait func() (*clusterOutcome, error)
	if j.Spec.Family == FamilyV6 {
		sim := flashroute.NewSimulation6(j.Spec.Sim6Config())
		cfg := j.Spec.Scan6Config()
		cfg.PPS = rate
		ch, err := sim.StartClusterScan(ctx, cfg, opt)
		if err != nil {
			s.finishJob(j, StateFailed, err.Error(), nil)
			return
		}
		h = ch
		wait = func() (*clusterOutcome, error) {
			res, err := ch.Wait()
			if err != nil {
				return nil, err
			}
			return &clusterOutcome{
				interrupted: res.Interrupted(),
				probes:      res.Probes(),
				interfaces:  res.InterfaceCount(),
				migrations:  res.Migrations(),
				degraded:    res.StopSetDegraded(),
				jsonl:       func(w io.Writer) error { return res.WriteJSONL(w) },
			}, nil
		}
	} else {
		sim, err := flashroute.NewSimulationCIDRs(j.Spec.SimConfig())
		if err != nil {
			s.finishJob(j, StateFailed, err.Error(), nil)
			return
		}
		ch, err := sim.StartClusterScan(ctx, j.clusterConfigV4(rate), opt)
		if err != nil {
			s.finishJob(j, StateFailed, err.Error(), nil)
			return
		}
		h = ch
		wait = func() (*clusterOutcome, error) {
			res, err := ch.Wait()
			if err != nil {
				return nil, err
			}
			return &clusterOutcome{
				interrupted: res.Interrupted(),
				probes:      res.Probes(),
				interfaces:  res.InterfaceCount(),
				migrations:  res.Migrations(),
				degraded:    res.StopSetDegraded(),
				jsonl:       func(w io.Writer) error { return res.WriteJSONL(w) },
			}, nil
		}
	}
	j.handle.Store(h)
	h.SetRate(int(j.rate.Load()))
	out, err := wait()
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	final := func(state string) {
		// The shard snapshots only matter while the job can still resume.
		_ = s.store.RemoveShardCheckpoints(j.ID)
		s.finishJob(j, state, "", &scanSummary{
			probes: out.probes, interfaces: out.interfaces,
			migrations: out.migrations, degraded: out.degraded,
			writeNDJSON: out.jsonl,
		})
	}
	switch {
	case out.interrupted && j.userCanceled.Load():
		final(StateCanceled)
	case out.interrupted:
		s.releaseInterrupted(j) // restart resumes every shard from its checkpoint
	default:
		final(StateDone)
	}
}

// clusterConfigV4 is the v4 scan config of a cluster job.
func (j *Job) clusterConfigV4(rate int) flashroute.Config {
	cfg := j.Spec.ScanConfig()
	cfg.PPS = rate
	return cfg
}

type scanSummary struct {
	probes     uint64
	interfaces int
	migrations int    // cluster jobs: shard handoffs
	degraded   uint64 // cluster jobs: stop-set degradation episodes
	// writeNDJSON streams the job's NDJSON results — the store's sorted
	// emit path — so finishing a job never holds the full output in
	// memory alongside the result store.
	writeNDJSON func(io.Writer) error
}

// finishJob moves a job to a terminal state, persists its record (and
// results, when it produced any) and frees its scheduler slot.
func (s *Server) finishJob(j *Job, state, errMsg string, sum *scanSummary) {
	if sum != nil {
		if err := s.store.PutResultsStream(j.ID, sum.writeNDJSON); err != nil && state != StateFailed {
			state, errMsg = StateFailed, err.Error()
		}
	}
	s.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	if sum != nil {
		j.probes = sum.probes
		j.interfaces = sum.interfaces
		j.migrations = sum.migrations
		j.degraded = sum.degraded
	}
	rec := s.recordLocked(j)
	s.active--
	close(j.done)
	s.admitLocked()
	s.mu.Unlock()
	// Persisting outside the lock: the in-memory transition is already
	// visible; a write failure here only costs durability of a terminal
	// state, which a restart re-derives by re-running the job.
	_ = s.store.PutRecord(rec)
}

// releaseInterrupted ends the goroutine of a job the daemon's own stop
// interrupted: its record stays "running" on disk (the restart cue to
// resume it) and its final checkpoint — written by the engine on the way
// out — carries the exact probing state.
func (s *Server) releaseInterrupted(j *Job) {
	s.mu.Lock()
	s.active--
	close(j.done)
	s.mu.Unlock()
}

// Cancel requests cancellation: queued jobs are dropped immediately,
// running jobs stop gracefully and keep their partial results.
func (s *Server) Cancel(id string) *APIError {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return &APIError{Code: "not_found", Message: "no such job"}
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		j.userCanceled.Store(true)
		rec := s.recordLocked(j)
		close(j.done)
		s.mu.Unlock()
		_ = s.store.PutRecord(rec)
		return nil
	case StateRunning:
		j.userCanceled.Store(true)
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		s.mu.Unlock()
		return &APIError{Code: "finished", Message: "job already " + j.state}
	}
}

// JobStatus is the live view of one job.
type JobStatus struct {
	ID         string    `json:"id"`
	Tenant     string    `json:"tenant,omitempty"`
	State      string    `json:"state"`
	Probes     uint64    `json:"probes"`
	RatePPS    int       `json:"rate_pps,omitempty"`
	Interfaces int       `json:"interfaces,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Error      string    `json:"error,omitempty"`

	// Migrations and StopSetDegraded surface the self-healing
	// supervisor's counters for cluster jobs: live while the job runs,
	// final once terminal.
	Migrations      int    `json:"migrations,omitempty"`
	StopSetDegraded uint64 `json:"stopset_degraded,omitempty"`
}

// clusterLive is the extra face a running cluster handle exposes; both
// flashroute.ClusterHandle and ClusterHandle6 satisfy it.
type clusterLive interface {
	Migrations() int
	StopSetDegraded() uint64
}

// Status reports a job's live state; running jobs expose their monotone
// probe counter and currently granted rate.
func (s *Server) Status(id string) (*JobStatus, *APIError) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, &APIError{Code: "not_found", Message: "no such job"}
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	return st, nil
}

func (s *Server) statusLocked(j *Job) *JobStatus {
	st := &JobStatus{
		ID:         j.ID,
		Tenant:     j.Tenant,
		State:      j.state,
		Probes:     j.probes,
		Interfaces: j.interfaces,
		Submitted:  j.Submitted,
		Error:      j.errMsg,
	}
	st.Migrations = j.migrations
	st.StopSetDegraded = j.degraded
	if j.state == StateRunning {
		if h := j.liveHandle(); h != nil {
			st.Probes = h.Probes()
			if cl, ok := h.(clusterLive); ok {
				st.Migrations = cl.Migrations()
				st.StopSetDegraded = cl.StopSetDegraded()
			}
		}
		st.RatePPS = int(j.rate.Load())
	}
	return st
}

// List returns every known job in deterministic submission order:
// creation time first, ID as the tie-break. The in-memory order slice is
// already chronological for jobs submitted to this process, but jobs
// reloaded after a restart carry older timestamps, so the sort is what
// makes GET /v1/jobs stable across daemon generations.
func (s *Server) List() []*JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.Before(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Results returns the NDJSON results of a finished job.
func (s *Server) Results(id string) ([]byte, *APIError) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state string
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		return nil, &APIError{Code: "not_found", Message: "no such job"}
	}
	switch state {
	case StateDone, StateCanceled:
		data, err := s.store.ReadResults(id)
		if err != nil {
			return nil, &APIError{Code: "no_results", Message: err.Error()}
		}
		return data, nil
	case StateFailed:
		return nil, &APIError{Code: "failed", Message: "job failed; no results"}
	default:
		return nil, &APIError{Code: "not_finished", Message: "job is " + state}
	}
}

// Readiness is the /readyz payload: whether the daemon can usefully
// accept a new submission, plus the scheduler depth and rate headroom
// behind that verdict.
type Readiness struct {
	Ready          bool `json:"ready"`
	QueueDepth     int  `json:"queue_depth"`
	QueueCapacity  int  `json:"queue_capacity"`
	ActiveJobs     int  `json:"active_jobs"`
	MaxActive      int  `json:"max_active"`
	BudgetHeadroom int  `json:"budget_headroom_pps"`
}

// Readiness reports admission capacity: not ready while shutting down
// or with a full queue (a submission would get 429 anyway).
func (s *Server) Readiness() Readiness {
	s.mu.Lock()
	r := Readiness{
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.MaxQueued,
		ActiveJobs:    s.active,
		MaxActive:     s.cfg.MaxActive,
	}
	stopped := s.stopped
	s.mu.Unlock()
	r.BudgetHeadroom = s.budget.Headroom()
	r.Ready = !stopped && r.QueueDepth < r.QueueCapacity
	return r
}

// Stop shuts the server down gracefully: no new submissions, every
// running job is interrupted (writing its final checkpoint on the way
// out) and left resumable, queued jobs stay queued. Returns when all
// job goroutines have exited.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Wait blocks until the job reaches a terminal state or the daemon's
// stop releases it; test helper.
func (j *Job) Wait() { <-j.done }

// JobForTest exposes a job by ID for the test suites.
func (s *Server) JobForTest(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}
