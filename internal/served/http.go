package served

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs            submit a JobSpec            → 202 {"id":...}
//	GET    /v1/jobs            list jobs                   → 200 [JobStatus]
//	GET    /v1/jobs/{id}       one job's live status       → 200 JobStatus
//	GET    /v1/jobs/{id}/results  finished job's NDJSON    → 200 stream
//	DELETE /v1/jobs/{id}       cancel (graceful)           → 202
//	GET    /healthz            liveness                    → 200 "ok"
//	GET    /readyz             admission readiness         → 200/503 Readiness
//
// /healthz answers "is the process up"; /readyz answers "would a
// submission be accepted" — 503 while shutting down or with a full
// queue, with the queue depth, active-job count and probing-rate
// headroom in the body either way (load balancers route on the status,
// operators read the body).
//
// Every error response carries {"error": {"code","message","field"}}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := s.Readiness()
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rd)
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, s.List())
		default:
			writeAPIError(w, &APIError{Code: "method_not_allowed", Message: r.Method + " not allowed"})
		}
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, sub, _ := strings.Cut(rest, "/")
		if id == "" {
			writeAPIError(w, &APIError{Code: "not_found", Message: "no such job"})
			return
		}
		switch {
		case sub == "" && r.Method == http.MethodGet:
			st, apiErr := s.Status(id)
			if apiErr != nil {
				writeAPIError(w, apiErr)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case sub == "" && r.Method == http.MethodDelete:
			if apiErr := s.Cancel(id); apiErr != nil {
				writeAPIError(w, apiErr)
				return
			}
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": "canceling"})
		case sub == "results" && r.Method == http.MethodGet:
			data, apiErr := s.Results(id)
			if apiErr != nil {
				writeAPIError(w, apiErr)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Write(data)
		default:
			writeAPIError(w, &APIError{Code: "method_not_allowed", Message: r.Method + " " + r.URL.Path + " not allowed"})
		}
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeAPIError(w, &APIError{Code: "bad_json", Message: err.Error()})
		return
	}
	id, apiErr := s.Submit(spec)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateQueued})
}

// statusOf maps structured error codes to HTTP statuses.
func statusOf(e *APIError) int {
	switch e.Code {
	case "bad_spec", "bad_json":
		return http.StatusBadRequest
	case "not_found":
		return http.StatusNotFound
	case "queue_full":
		return http.StatusTooManyRequests
	case "finished", "not_finished", "failed", "no_results":
		return http.StatusConflict
	case "shutting_down":
		return http.StatusServiceUnavailable
	case "method_not_allowed":
		return http.StatusMethodNotAllowed
	default:
		return http.StatusInternalServerError
	}
}

func writeAPIError(w http.ResponseWriter, e *APIError) {
	writeJSON(w, statusOf(e), map[string]*APIError{"error": e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
