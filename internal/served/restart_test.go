package served

import (
	"bytes"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"testing"
	"time"

	flashroute "github.com/flashroute/flashroute"
)

// newHTTP fronts a server whose lifetime the test manages itself (the
// restart test stops and re-opens daemons explicitly).
func newHTTP(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(srv.Handler())
}

var rttRe = regexp.MustCompile(`"rtt_us":-?\d+`)

// discoveryFP fingerprints an NDJSON result stream by its discoveries
// alone: destinations, hop TTLs and addresses, reachability — with the
// RTT fields zeroed, since wall-clock RTTs differ between a real-time
// daemon run and its virtual-clock golden while the lockstep
// environment keeps everything else identical.
func discoveryFP(ndjson []byte) uint64 {
	h := fnv.New64a()
	h.Write(rttRe.ReplaceAll(ndjson, []byte(`"rtt_us":0`)))
	return h.Sum64()
}

// golden computes a spec's uninterrupted discovery fingerprint with a
// direct virtual-clock library run — the lockstep environment makes it
// rate- and timing-invariant, so it is THE answer the daemon's
// interrupted-and-resumed real-time run must reproduce.
func golden(t *testing.T, spec JobSpec) uint64 {
	t.Helper()
	spec.RealTime = false
	var buf bytes.Buffer
	if spec.Family == FamilyV6 {
		res, err := flashroute.NewSimulation6(spec.Sim6Config()).Scan(spec.Scan6Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	} else {
		sim, err := flashroute.NewSimulationCIDRs(spec.SimConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Scan(spec.ScanConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return discoveryFP(buf.Bytes())
}

// TestDaemonRestartResume is the tentpole's acceptance test: kill the
// daemon with three jobs (two IPv4, one IPv6) in flight, restart it
// against the same state directory, and require every job to resume and
// finish with a discovery fingerprint identical to an uninterrupted
// run — the service-level replay of TestResumeEquivalenceGrid's
// lockstep-environment guarantee.
func TestDaemonRestartResume(t *testing.T) {
	state := t.TempDir()
	fast := JobSpec{
		RealTime: true, Lockstep: true, NoRedundancyElimination: true,
		PPS: 3_000, MinRoundTimeMS: 1, DrainWaitMS: 25, CheckpointEvery: 500,
	}
	specs := map[string]JobSpec{}
	j1 := fast
	j1.Tenant, j1.Blocks, j1.Seed = "alice", 512, 7
	j2 := fast
	j2.Tenant, j2.Blocks, j2.Seed = "bob", 512, 11
	j3 := fast
	j3.Tenant, j3.Family, j3.Prefixes, j3.TargetsPerPrefix, j3.Seed = "carol", FamilyV6, 64, 16, 5

	goldens := map[string]uint64{}

	// Phase 1: run the daemon, get all three jobs probing past their
	// first checkpoints, then stop it mid-scan.
	srv1, err := New(Config{StateDir: state, GlobalPPS: 100_000, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newHTTP(t, srv1)
	for _, spec := range []JobSpec{j1, j2, j3} {
		id := submit(t, ts1, spec)
		specs[id] = spec
		goldens[id] = golden(t, spec)
	}
	for id := range specs {
		pollStatus(t, ts1, id, 30*time.Second, func(st *JobStatus) bool {
			if terminal(st) {
				t.Fatalf("job %s finished before the daemon stop (state %s)", id, st.State)
			}
			if st.State != StateRunning || st.Probes < 1_000 {
				return false
			}
			_, err := os.Stat(srv1.store.CheckpointPath(id))
			return err == nil
		})
	}
	ts1.Close()
	srv1.Stop()

	// The persisted job table still lists every job as running — the
	// restart cue — and each has a checkpoint (the engine writes a final
	// one on the way out).
	recs, err := srv1.store.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("job table lists %d jobs, want 3", len(recs))
	}
	for _, rec := range recs {
		if rec.State != StateRunning {
			t.Fatalf("job %s persisted as %q, want running", rec.ID, rec.State)
		}
		if _, ok, _ := srv1.store.Checkpoint(rec.ID); !ok {
			t.Fatalf("job %s has no checkpoint to resume from", rec.ID)
		}
	}

	// Phase 2: a fresh daemon over the same state dir must re-list the
	// table, resume every in-flight job, and land on the goldens.
	srv2, err := New(Config{StateDir: state, GlobalPPS: 100_000, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newHTTP(t, srv2)
	defer func() { ts2.Close(); srv2.Stop() }()
	for id := range specs {
		j := srv2.JobForTest(id)
		if j == nil {
			t.Fatalf("restarted daemon lost job %s", id)
		}
		if !j.resume {
			t.Fatalf("job %s was not marked for resume", id)
		}
	}
	for id := range specs {
		st := pollStatus(t, ts2, id, 120*time.Second, terminal)
		if st.State != StateDone {
			t.Fatalf("resumed job %s ended %s (%s)", id, st.State, st.Error)
		}
		resp, got := get(t, ts2.URL+"/v1/jobs/"+id+"/results")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results %s: %d %s", id, resp.StatusCode, got)
		}
		if fp := discoveryFP(got); fp != goldens[id] {
			t.Errorf("job %s (family %q): resumed fingerprint %#x, uninterrupted golden %#x",
				id, specs[id].Family, fp, goldens[id])
		}
	}
}
