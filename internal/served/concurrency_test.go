package served

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestBudgetDivision pins the scheduler's arithmetic: equal split across
// tenants, equal split within a tenant, per-job caps honored, floors
// never starve a job.
func TestBudgetDivision(t *testing.T) {
	b := NewBudget(90_000)
	rate := func(id string) int { return b.Rate(id) }

	if got := b.Add("a1", "alice", 0, nil); got != 90_000 {
		t.Fatalf("sole job granted %d, want 90000", got)
	}
	b.Add("b1", "bob", 0, nil)
	if rate("a1") != 45_000 || rate("b1") != 45_000 {
		t.Fatalf("two tenants: %d/%d, want 45000 each", rate("a1"), rate("b1"))
	}
	b.Add("b2", "bob", 0, nil)
	if rate("a1") != 45_000 || rate("b1") != 22_500 || rate("b2") != 22_500 {
		t.Fatalf("intra-tenant split: a1=%d b1=%d b2=%d", rate("a1"), rate("b1"), rate("b2"))
	}
	b.Add("c1", "carol", 1_000, nil) // asks for less than its share
	if rate("c1") != 1_000 {
		t.Fatalf("capped job granted %d, want its requested 1000", rate("c1"))
	}
	if rate("a1") != 30_000 {
		t.Fatalf("three tenants: a1=%d, want 30000", rate("a1"))
	}
	b.Remove("b1")
	b.Remove("b2")
	b.Remove("c1")
	if rate("a1") != 90_000 {
		t.Fatalf("last job standing granted %d, want the full ceiling", rate("a1"))
	}
}

// TestBudgetInvariantUnderChurn: across randomized concurrent add/remove
// transitions, the sum of granted rates observed at every recomputation
// must never exceed the global ceiling.
func TestBudgetInvariantUnderChurn(t *testing.T) {
	const global = 120_000
	b := NewBudget(global)
	var worst int
	b.onChange = func(rates map[string]int) {
		sum := 0
		for _, r := range rates {
			sum += r
		}
		if sum > worst {
			worst = sum // under b.mu: no torn reads
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", g%3)
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%d-j%d", g, i)
				want := 0
				if i%2 == 0 {
					want = 1_000 * (i + 1)
				}
				b.Add(id, tenant, want, func(int) {})
				if i%3 != 0 {
					b.Remove(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if worst > global {
		t.Fatalf("granted rates summed to %d, ceiling %d", worst, global)
	}
	if worst == 0 {
		t.Fatal("invariant hook never observed a recomputation")
	}
}

// TestServerConcurrentTenants: N tenants submitting concurrently; every
// job completes, and the sum of active granted rates never exceeds the
// global ceiling across all start/finish transitions (checked by the
// budget's recomputation hook, which fires inside every transition).
func TestServerConcurrentTenants(t *testing.T) {
	const global = 100_000
	srv, ts := newTestServer(t, Config{GlobalPPS: global, MaxActive: 4, MaxQueued: 64})

	var mu sync.Mutex
	worst := 0
	srv.budget.onChange = func(rates map[string]int) {
		sum := 0
		for _, r := range rates {
			sum += r
		}
		mu.Lock()
		if sum > worst {
			worst = sum
		}
		mu.Unlock()
	}

	const tenants, jobsPer = 5, 2
	ids := make(chan string, tenants*jobsPer)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				ids <- submit(t, ts, JobSpec{
					Tenant: fmt.Sprintf("tenant-%d", tn),
					Blocks: 256, Seed: int64(100 + tn*10 + j),
					Lockstep: true,
				})
			}
		}(tn)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		st := pollStatus(t, ts, id, 60*time.Second, terminal)
		if st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
		if st.Probes == 0 {
			t.Fatalf("job %s reports zero probes", id)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if worst > global {
		t.Fatalf("active rates summed to %d, ceiling %d", worst, global)
	}
	if worst == 0 {
		t.Fatal("budget hook never fired")
	}
}

// TestQueueBound: the admission queue never accepts beyond its bound —
// the excess submission is rejected with a structured 429, and capacity
// freed by cancellation is reusable.
func TestQueueBound(t *testing.T) {
	_, ts := newTestServer(t, Config{GlobalPPS: 100_000, MaxActive: 1, MaxQueued: 2})

	// One slow real-clock job occupies the single active slot...
	running := submit(t, ts, JobSpec{
		Blocks: 4096, Seed: 9, RealTime: true, PPS: 500,
		DrainWaitMS: 20, MinRoundTimeMS: 1,
	})
	pollStatus(t, ts, running, 30*time.Second, func(st *JobStatus) bool {
		return st.State == StateRunning
	})
	// ...two more fill the queue...
	q1 := submit(t, ts, JobSpec{Blocks: 64, Seed: 1, Lockstep: true})
	q2 := submit(t, ts, JobSpec{Blocks: 64, Seed: 2, Lockstep: true})
	// ...and the next submission must be refused with 429/queue_full.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Blocks: 64, Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d %s, want 429", resp.StatusCode, body)
	}

	// Cancelling a queued job frees a slot; the next submission fits.
	if resp, body := del(t, ts.URL+"/v1/jobs/"+q2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: %d %s", resp.StatusCode, body)
	}
	q3 := submit(t, ts, JobSpec{Blocks: 64, Seed: 4, Lockstep: true})

	// Unblock the worker and let the queue drain.
	if resp, body := del(t, ts.URL+"/v1/jobs/"+running); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: %d %s", resp.StatusCode, body)
	}
	for _, id := range []string{q1, q3} {
		st := pollStatus(t, ts, id, 60*time.Second, terminal)
		if st.State != StateDone {
			t.Fatalf("queued job %s ended %s (%s)", id, st.State, st.Error)
		}
	}
	if st := pollStatus(t, ts, q2, 10*time.Second, terminal); st.State != StateCanceled {
		t.Fatalf("cancelled queued job ended %s", st.State)
	}
}
