package served

import "sync"

// Budget divides a global probing-rate ceiling across running jobs: the
// ceiling is split equally among tenants with at least one running job,
// each tenant's share equally among that tenant's jobs, and every job is
// additionally capped by the rate it asked for. All divisions floor, so
// the invariant the race tests pin — the sum of granted rates never
// exceeds the ceiling — holds across every add/remove transition by
// construction (unused per-job remainders are not redistributed).
//
// Every transition recomputes all grants and pushes changed ones to the
// jobs' apply callbacks (Scanner.SetRate downstream) while the lock is
// held, so no interleaving of two transitions can ever leave the applied
// rates summing above the ceiling.
type Budget struct {
	mu     sync.Mutex
	global int
	jobs   map[string]*grant

	// onChange, when set, observes every recomputation under the lock:
	// the granted rates by job ID, after they have been applied. Test
	// hook for the sum-never-exceeds-ceiling invariant.
	onChange func(rates map[string]int)
}

type grant struct {
	tenant string
	want   int // requested rate; <=0 means "no request, take the share"
	rate   int // currently granted
	apply  func(pps int)
}

// NewBudget builds a scheduler for a global ceiling in packets per
// second. A non-positive ceiling panics: an unthrottled service would
// let every job send unpaced.
func NewBudget(globalPPS int) *Budget {
	if globalPPS <= 0 {
		panic("served: global PPS ceiling must be positive")
	}
	return &Budget{global: globalPPS, jobs: make(map[string]*grant)}
}

// Add registers a running job and returns its initial granted rate.
// apply is invoked — under the budget lock — every time a later
// transition changes this job's grant.
func (b *Budget) Add(id, tenant string, want int, apply func(pps int)) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.jobs[id] = &grant{tenant: tenant, want: want, apply: apply}
	b.recompute()
	return b.jobs[id].rate
}

// Remove drops a finished job and re-splits the ceiling among the rest.
func (b *Budget) Remove(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[id]; !ok {
		return
	}
	delete(b.jobs, id)
	b.recompute()
}

// Rate returns the current grant of a job (0 if unknown).
func (b *Budget) Rate(id string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g, ok := b.jobs[id]; ok {
		return g.rate
	}
	return 0
}

// Headroom reports the unallocated slice of the global ceiling: the
// ceiling minus the sum of currently granted rates, floored at zero
// (per-job minimum grants can nominally oversubscribe a tiny ceiling).
// Readiness reporting uses it to show how much probing rate a new job
// could claim.
func (b *Budget) Headroom() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	used := 0
	for _, g := range b.jobs {
		used += g.rate
	}
	if used >= b.global {
		return 0
	}
	return b.global - used
}

// recompute re-derives every grant. Caller holds b.mu.
func (b *Budget) recompute() {
	perTenant := make(map[string]int)
	for _, g := range b.jobs {
		perTenant[g.tenant]++
	}
	if len(perTenant) > 0 {
		tenantShare := b.global / len(perTenant)
		for _, g := range b.jobs {
			share := tenantShare / perTenant[g.tenant]
			if share < 1 {
				share = 1 // floor: a job must be able to make progress
			}
			rate := share
			if g.want > 0 && g.want < rate {
				rate = g.want
			}
			if rate != g.rate {
				g.rate = rate
				if g.apply != nil {
					g.apply(rate)
				}
			}
		}
	}
	if b.onChange != nil {
		rates := make(map[string]int, len(b.jobs))
		for id, g := range b.jobs {
			rates[id] = g.rate
		}
		b.onChange(rates)
	}
}
