package served

import (
	"testing"
	"time"
)

// TestClusterJobRuns: a type:"cluster" job runs the multi-vantage
// coordinator to completion and streams merged NDJSON results. The
// byte-determinism check pins Workers:1, where the cluster path is
// bit-identical to a plain scan; at K>1 the merged bytes depend on the
// stop-set merge-log interleaving (DESIGN.md §13), so the K=2 job is
// asserted to complete with discovery, not to reproduce bytes.
func TestClusterJobRuns(t *testing.T) {
	srv, ts := newTestServer(t, Config{GlobalPPS: 1_000_000})

	one := JobSpec{
		Type: "cluster", Workers: 1,
		Blocks: 256, Seed: 11, Lockstep: true, PPS: 200_000,
	}
	var fps [2][]byte
	for i := range fps {
		id := submit(t, ts, one)
		st := pollStatus(t, ts, id, 30*time.Second, terminal)
		if st.State != StateDone {
			t.Fatalf("cluster job %s ended %q (%s)", id, st.State, st.Error)
		}
		if st.Probes == 0 || st.Interfaces == 0 {
			t.Fatalf("cluster job %s reports no discovery: %+v", id, st)
		}
		data, apiErr := srv.Results(id)
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		if len(data) == 0 {
			t.Fatalf("cluster job %s has empty results", id)
		}
		fps[i] = data
	}
	if string(fps[0]) != string(fps[1]) {
		t.Fatal("identical one-worker cluster submissions produced different results")
	}

	// Multi-worker v4 job: completes and discovers.
	id := submit(t, ts, JobSpec{
		Type: "cluster", Workers: 2,
		Blocks: 256, Seed: 11, Lockstep: true, PPS: 200_000,
	})
	st := pollStatus(t, ts, id, 30*time.Second, terminal)
	if st.State != StateDone {
		t.Fatalf("K=2 cluster job ended %q (%s)", st.State, st.Error)
	}
	if st.Probes == 0 || st.Interfaces == 0 {
		t.Fatalf("K=2 cluster job reports no discovery: %+v", st)
	}

	// IPv6 cluster jobs run too.
	id = submit(t, ts, JobSpec{
		Type: "cluster", Workers: 2, Family: FamilyV6,
		Prefixes: 64, TargetsPerPrefix: 4, Seed: 3, Lockstep: true,
	})
	st = pollStatus(t, ts, id, 30*time.Second, terminal)
	if st.State != StateDone {
		t.Fatalf("v6 cluster job ended %q (%s)", st.State, st.Error)
	}
}

// TestClusterJobSpecValidation: the type/workers fields are validated as
// structured errors.
func TestClusterJobSpecValidation(t *testing.T) {
	cases := []struct {
		spec  JobSpec
		field string
	}{
		{JobSpec{Type: "warp", Blocks: 16}, "type"},
		{JobSpec{Type: "cluster", Workers: 65, Blocks: 16}, "workers"},
		{JobSpec{Type: "cluster", Workers: -1, Blocks: 16}, "workers"},
		{JobSpec{Workers: 2, Blocks: 16}, "workers"}, // workers without cluster
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Fatalf("spec %+v accepted, want bad_spec on %s", c.spec, c.field)
		}
		if err.Field != c.field {
			t.Fatalf("spec %+v rejected on field %q, want %q", c.spec, err.Field, c.field)
		}
	}
	ok := JobSpec{Type: "cluster", Workers: 4, Blocks: 16}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid cluster spec rejected: %v", err)
	}
}
