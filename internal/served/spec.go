// Package served is the scan-as-a-service layer behind cmd/frserved: an
// HTTP/JSON job API over the flashroute library, with a bounded admission
// queue, per-tenant division of a global probing budget, and
// checkpoint-backed job persistence so a daemon restart resumes every
// in-flight scan exactly where it stopped (see DESIGN.md §12).
package served

import (
	"fmt"
	"time"

	flashroute "github.com/flashroute/flashroute"
	"github.com/flashroute/flashroute/internal/netsim"
)

// Families accepted in JobSpec.Family.
const (
	FamilyV4 = "ipv4"
	FamilyV6 = "ipv6"
)

// JobSpec is the wire-format description of one scan job. The universe
// fields select sim-mode targets (the daemon's deterministic backend):
// CIDRs or Blocks for IPv4, Prefixes/TargetsPerPrefix for IPv6.
type JobSpec struct {
	// Tenant identifies the budget owner; empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Family is "ipv4" (default) or "ipv6".
	Family string `json:"family,omitempty"`
	// Type is the job kind: "scan" (default) runs one engine instance;
	// "cluster" runs the distributed coordinator of DESIGN.md §13 —
	// Workers worker loops over distinct vantage ingresses sharing one
	// global stop set, results merged conflict-aware.
	Type string `json:"type,omitempty"`
	// Workers is the cluster job's worker-loop count (default 2, max 64).
	Workers int `json:"workers,omitempty"`

	// CIDRs or Blocks define the IPv4 universe (exactly one of them).
	CIDRs  []string `json:"cidrs,omitempty"`
	Blocks int      `json:"blocks,omitempty"`
	// Prefixes and TargetsPerPrefix define the IPv6 universe.
	Prefixes         int `json:"prefixes,omitempty"`
	TargetsPerPrefix int `json:"targets_per_prefix,omitempty"`

	// Seed keys topology generation and the probing permutation.
	Seed int64 `json:"seed,omitempty"`
	// PPS is the requested probing rate; the scheduler caps the granted
	// rate by the tenant's share of the global budget. 0 means "whatever
	// the budget grants".
	PPS int `json:"pps,omitempty"`

	SplitTTL  uint8 `json:"split_ttl,omitempty"`
	GapLimit  uint8 `json:"gap_limit,omitempty"`
	Senders   int   `json:"senders,omitempty"`
	Receivers int   `json:"receivers,omitempty"`

	// Protocol selects the probe protocol; "udp" (the default) is the
	// only one the engine implements (the paper's probing mode), so
	// anything else is rejected with a structured error.
	Protocol string `json:"protocol,omitempty"`

	// RealTime runs the job's simulation on the wall clock (virtual time
	// is the default: jobs complete in milliseconds).
	RealTime bool `json:"real_time,omitempty"`
	// Lockstep removes timing-dependent topology behavior (see
	// SimConfig.Lockstep) — the deterministic test environment.
	Lockstep                bool `json:"lockstep,omitempty"`
	NoRedundancyElimination bool `json:"no_redundancy_elimination,omitempty"`

	// Impairments for sim mode (a useful subset of
	// flashroute.Impairments).
	LossProb      float64 `json:"loss_prob,omitempty"`
	DupProb       float64 `json:"dup_prob,omitempty"`
	ExtraJitterMS int     `json:"extra_jitter_ms,omitempty"`

	// DrainWaitMS / MinRoundTimeMS shrink the engine's drain and
	// minimum-round durations for short real-clock jobs (0 = defaults).
	DrainWaitMS    int `json:"drain_wait_ms,omitempty"`
	MinRoundTimeMS int `json:"min_round_time_ms,omitempty"`

	// CheckpointEvery snapshots the job every N probes (0 means the
	// server default), feeding the persistence that makes restart-resume
	// possible.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// APIError is the structured error body every 4xx/5xx response carries:
// {"error":{"code":"...","message":"...","field":"..."}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

func badSpec(field, format string, args ...any) *APIError {
	return &APIError{Code: "bad_spec", Message: fmt.Sprintf(format, args...), Field: field}
}

// Validate checks a spec the way the API admits it: every malformed
// field — the CIDR list included — is a structured error, never a panic
// or a silently empty universe downstream.
func (s *JobSpec) Validate() *APIError {
	switch s.Family {
	case "", FamilyV4:
		if len(s.CIDRs) > 0 && s.Blocks > 0 {
			return badSpec("cidrs", "give cidrs or blocks, not both")
		}
		if len(s.CIDRs) == 0 && s.Blocks <= 0 {
			return badSpec("blocks", "an ipv4 job needs cidrs or a positive blocks count")
		}
		if s.Blocks > 1<<22 {
			return badSpec("blocks", "blocks %d out of range (max %d)", s.Blocks, 1<<22)
		}
		if len(s.CIDRs) > 0 {
			if _, err := netsim.ParseUniverse(s.CIDRs); err != nil {
				return badSpec("cidrs", "%v", err)
			}
		}
		if s.Prefixes != 0 || s.TargetsPerPrefix != 0 {
			return badSpec("prefixes", "prefixes/targets_per_prefix are ipv6 fields")
		}
	case FamilyV6:
		if len(s.CIDRs) > 0 || s.Blocks != 0 {
			return badSpec("cidrs", "cidrs/blocks are ipv4 fields")
		}
		if s.Prefixes < 0 || s.TargetsPerPrefix < 0 {
			return badSpec("prefixes", "prefixes and targets_per_prefix must be non-negative")
		}
	default:
		return badSpec("family", "unknown family %q (want %q or %q)", s.Family, FamilyV4, FamilyV6)
	}
	switch s.Type {
	case "", "scan":
		if s.Workers != 0 {
			return badSpec("workers", "workers is a cluster-job field")
		}
	case "cluster":
		if s.Workers < 0 || s.Workers > 64 {
			return badSpec("workers", "workers must be in 0..64 (0 means the default)")
		}
	default:
		return badSpec("type", "unknown type %q (want %q or %q)", s.Type, "scan", "cluster")
	}
	switch s.Protocol {
	case "", "udp":
	case "icmp", "tcp":
		return badSpec("protocol", "protocol %q not implemented (only udp probing)", s.Protocol)
	default:
		return badSpec("protocol", "unknown protocol %q", s.Protocol)
	}
	if s.PPS < 0 {
		return badSpec("pps", "pps must be non-negative")
	}
	if s.Senders < 0 || s.Receivers < 0 {
		return badSpec("senders", "senders and receivers must be non-negative")
	}
	if s.LossProb < 0 || s.LossProb >= 1 || s.DupProb < 0 || s.DupProb >= 1 {
		return badSpec("loss_prob", "probabilities must be in [0,1)")
	}
	if s.DrainWaitMS < 0 || s.MinRoundTimeMS < 0 || s.ExtraJitterMS < 0 {
		return badSpec("drain_wait_ms", "durations must be non-negative")
	}
	if s.CheckpointEvery < 0 {
		return badSpec("checkpoint_every", "checkpoint_every must be non-negative")
	}
	return nil
}

func (s *JobSpec) impairments() flashroute.Impairments {
	return flashroute.Impairments{
		LossProb:    s.LossProb,
		DupProb:     s.DupProb,
		ExtraJitter: time.Duration(s.ExtraJitterMS) * time.Millisecond,
	}
}

// SimConfig translates the spec's universe and environment fields. Only
// valid for IPv4 specs.
func (s *JobSpec) SimConfig() flashroute.SimConfig {
	return flashroute.SimConfig{
		Blocks:   s.Blocks,
		CIDRs:    s.CIDRs,
		Seed:     s.Seed,
		RealTime: s.RealTime,
		Lockstep: s.Lockstep,
		Impair:   s.impairments(),
	}
}

// Sim6Config translates the spec for IPv6 jobs.
func (s *JobSpec) Sim6Config() flashroute.Sim6Config {
	return flashroute.Sim6Config{
		Prefixes:         s.Prefixes,
		TargetsPerPrefix: s.TargetsPerPrefix,
		Seed:             s.Seed,
		RealTime:         s.RealTime,
		Lockstep:         s.Lockstep,
		Impair:           s.impairments(),
	}
}

// ScanConfig translates the spec's probing fields to a scan
// configuration. Routes are always collected — the results endpoint
// streams them.
func (s *JobSpec) ScanConfig() flashroute.Config {
	cfg := flashroute.DefaultConfig()
	if s.SplitTTL != 0 {
		cfg.SplitTTL = s.SplitTTL
	}
	if s.GapLimit != 0 {
		cfg.GapLimit = s.GapLimit
	}
	if s.PPS > 0 {
		cfg.PPS = s.PPS
	}
	cfg.Senders = s.Senders
	cfg.Receivers = s.Receivers
	cfg.NoRedundancyElimination = s.NoRedundancyElimination
	cfg.CollectRoutes = true
	cfg.Seed = s.Seed
	cfg.DrainWait = time.Duration(s.DrainWaitMS) * time.Millisecond
	cfg.MinRoundTime = time.Duration(s.MinRoundTimeMS) * time.Millisecond
	return cfg
}

// Scan6Config is ScanConfig for IPv6 jobs.
func (s *JobSpec) Scan6Config() flashroute.Config6 {
	cfg := flashroute.Config6{
		SplitTTL:                s.SplitTTL,
		GapLimit:                s.GapLimit,
		Senders:                 s.Senders,
		Receivers:               s.Receivers,
		NoRedundancyElimination: s.NoRedundancyElimination,
		CollectRoutes:           true,
		Seed:                    s.Seed,
		DrainWait:               time.Duration(s.DrainWaitMS) * time.Millisecond,
		MinRoundTime:            time.Duration(s.MinRoundTimeMS) * time.Millisecond,
	}
	if s.PPS > 0 {
		cfg.PPS = s.PPS
	}
	return cfg
}
