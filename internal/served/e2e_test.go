package served

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	flashroute "github.com/flashroute/flashroute"
)

// newTestServer builds a daemon over a fresh state dir and an httptest
// front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Stop() })
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func del(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// submit posts a spec and returns the accepted job ID.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
		t.Fatalf("submit: bad body %s (%v)", body, err)
	}
	return out.ID
}

// pollStatus GETs a job's status until pred holds or the deadline
// passes, asserting the probe counter never goes backwards.
func pollStatus(t *testing.T, ts *httptest.Server, id string, deadline time.Duration, pred func(*JobStatus) bool) *JobStatus {
	t.Helper()
	var last uint64
	end := time.Now().Add(deadline)
	for {
		resp, body := get(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status %s: %v in %s", id, err, body)
		}
		if st.State == StateRunning || st.State == StateDone {
			if st.Probes < last {
				t.Fatalf("progress went backwards: %d after %d", st.Probes, last)
			}
			last = st.Probes
		}
		if pred(&st) {
			return &st
		}
		if time.Now().After(end) {
			t.Fatalf("job %s: deadline waiting (state %s, %d probes)", id, st.State, st.Probes)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(st *JobStatus) bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCanceled
}

// TestAPISubmitProgressResults: the e2e happy path — submit, watch
// monotone progress, stream results, and get byte-for-byte what a direct
// library Scan of the same spec produces.
func TestAPISubmitProgressResults(t *testing.T) {
	spec := JobSpec{Blocks: 512, Seed: 7, Lockstep: true, NoRedundancyElimination: true}
	_, ts := newTestServer(t, Config{GlobalPPS: 100_000})

	id := submit(t, ts, spec)
	st := pollStatus(t, ts, id, 30*time.Second, terminal)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	if st.Probes == 0 || st.Interfaces == 0 {
		t.Fatalf("done job reports %d probes, %d interfaces", st.Probes, st.Interfaces)
	}

	resp, got := get(t, ts.URL+"/v1/jobs/"+id+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, got)
	}

	// Direct library run of the same spec: the daemon's stream must be
	// byte-for-byte identical (virtual clock, lockstep environment, same
	// seed and configuration — the granted rate equals the default).
	sim, err := flashroute.NewSimulationCIDRs(spec.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Scan(spec.ScanConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streamed results differ from direct scan: %d vs %d bytes", len(got), want.Len())
	}
	if res.Probes() != st.Probes {
		t.Errorf("API reports %d probes, direct scan %d", st.Probes, res.Probes())
	}

	// The job list includes it.
	respL, bodyL := get(t, ts.URL+"/v1/jobs")
	if respL.StatusCode != http.StatusOK || !strings.Contains(string(bodyL), id) {
		t.Fatalf("list: %d %s", respL.StatusCode, bodyL)
	}
}

// TestAPICancelPartial: cancelling mid-scan yields state "canceled" and
// a valid partial NDJSON result.
func TestAPICancelPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{GlobalPPS: 100_000})
	id := submit(t, ts, JobSpec{
		Blocks: 2048, Seed: 3, RealTime: true, PPS: 2_000,
		DrainWaitMS: 30, MinRoundTimeMS: 1,
	})
	pollStatus(t, ts, id, 30*time.Second, func(st *JobStatus) bool {
		return st.State == StateRunning && st.Probes > 500
	})
	resp, body := del(t, ts.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	st := pollStatus(t, ts, id, 30*time.Second, terminal)
	if st.State != StateCanceled {
		t.Fatalf("job ended %s, want canceled", st.State)
	}
	resp, got := get(t, ts.URL+"/v1/jobs/"+id+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial results: %d %s", resp.StatusCode, got)
	}
	lines := bytes.Split(bytes.TrimSpace(got), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("cancelled job produced no partial routes")
	}
	for i, line := range lines {
		var route struct {
			Dst  string `json:"dst"`
			Hops []struct {
				TTL  uint8  `json:"ttl"`
				Addr string `json:"addr"`
			} `json:"hops"`
		}
		if err := json.Unmarshal(line, &route); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if route.Dst == "" {
			t.Fatalf("line %d has no destination", i)
		}
	}
	// Cancelling a finished job is a structured conflict.
	resp, body = del(t, ts.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: %d %s", resp.StatusCode, body)
	}
}

// TestAPIMalformedSubmissions: every malformed submission maps to a 4xx
// with a structured {"error":{code,message,field}} body — never a panic
// or a silently wrong scan.
func TestAPIMalformedSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{GlobalPPS: 100_000})
	cases := []struct {
		name      string
		body      string
		wantCode  string
		wantField string
	}{
		{"bad json", `{`, "bad_json", ""},
		{"unknown field", `{"blocks":16,"bogus":1}`, "bad_json", ""},
		{"no universe", `{"seed":1}`, "bad_spec", "blocks"},
		{"both universes", `{"blocks":16,"cidrs":["10.0.0.0/24"]}`, "bad_spec", "cidrs"},
		{"trailing garbage cidr", `{"cidrs":["10.0.0.0/8x"]}`, "bad_spec", "cidrs"},
		{"long prefix", `{"cidrs":["10.0.0.0/28"]}`, "bad_spec", "cidrs"},
		{"junk cidr", `{"cidrs":["bogus"]}`, "bad_spec", "cidrs"},
		{"bad family", `{"family":"ipv5","blocks":16}`, "bad_spec", "family"},
		{"v6 fields on v4", `{"blocks":16,"prefixes":4}`, "bad_spec", "prefixes"},
		{"v4 fields on v6", `{"family":"ipv6","blocks":16}`, "bad_spec", "cidrs"},
		{"negative pps", `{"blocks":16,"pps":-5}`, "bad_spec", "pps"},
		{"bad protocol", `{"blocks":16,"protocol":"gre"}`, "bad_spec", "protocol"},
		{"unimplemented protocol", `{"blocks":16,"protocol":"tcp"}`, "bad_spec", "protocol"},
		{"bad loss", `{"blocks":16,"loss_prob":1.5}`, "bad_spec", "loss_prob"},
		{"oversized blocks", fmt.Sprintf(`{"blocks":%d}`, 1<<23), "bad_spec", "blocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, buf.Bytes())
			}
			var out struct {
				Error APIError `json:"error"`
			}
			if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
				t.Fatalf("unstructured error body %s", buf.Bytes())
			}
			if out.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q", out.Error.Code, tc.wantCode)
			}
			if tc.wantField != "" && out.Error.Field != tc.wantField {
				t.Errorf("field %q, want %q", out.Error.Field, tc.wantField)
			}
			if out.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}

	// Unknown job IDs are structured 404s; results of an unfinished job
	// a structured 409.
	if resp, _ := get(t, ts.URL+"/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := del(t, ts.URL+"/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown: %d, want 404", resp.StatusCode)
	}
}

// TestHealthz: the liveness endpoint CI smokes.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}
