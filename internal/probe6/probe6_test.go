package probe6

import (
	"testing"
	"testing/quick"
	"time"
)

func addr(b byte) Addr {
	var a Addr
	a[0], a[15] = 0x20, b
	a[1] = 0x01
	return a
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		TrafficClass:  7,
		FlowLabel:     0xABCDE,
		PayloadLength: 99,
		NextHeader:    ProtoUDP,
		HopLimit:      17,
		Src:           addr(1),
		Dst:           addr(2),
	}
	var b [HeaderLen]byte
	h.Marshal(b[:])
	var g Header
	if err := g.Unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: %+v vs %+v", g, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(tc uint8, fl uint32, pl uint16, hop uint8, sb, db byte) bool {
		h := Header{
			TrafficClass:  tc,
			FlowLabel:     fl & 0xfffff,
			PayloadLength: pl,
			NextHeader:    ProtoUDP,
			HopLimit:      hop,
			Src:           addr(sb),
			Dst:           addr(db),
		}
		var b [HeaderLen]byte
		h.Marshal(b[:])
		var g Header
		return g.Unmarshal(b[:]) == nil && g == h
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderErrors(t *testing.T) {
	var g Header
	if err := g.Unmarshal(make([]byte, 8)); err != ErrTruncated {
		t.Fatal(err)
	}
	b := make([]byte, HeaderLen)
	b[0] = 0x45 // IPv4
	if err := g.Unmarshal(b); err != ErrBadVersion {
		t.Fatal(err)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	var buf [128]byte
	src, dst := addr(1), addr(99)
	elapsed := 12*time.Minute + 345*time.Millisecond
	n := BuildProbe(buf[:], src, dst, 27, true, elapsed, 0, TracerouteDstPort)

	var quoted Header
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.HopLimit = 4 // residual at the responder
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMP6TypeDestUnreachable, ICMP6CodePortUnreachable,
		&quoted, buf[HeaderLen:HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	if !m.IsUnreachable() || m.IsHopLimitExceeded() {
		t.Fatal("type predicates wrong")
	}
	fi, err := ParseQuote(&m)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Dst != dst || fi.InitHopLimit != 27 || !fi.Preprobe || fi.ResidualHopLimit != 4 {
		t.Fatalf("info %+v", fi)
	}
	wantTS := uint32(elapsed.Milliseconds()) & tsMask
	if fi.TSMillis != wantTS {
		t.Fatalf("ts=%d want %d", fi.TSMillis, wantTS)
	}
	if !fi.ChecksumMatches(0) {
		t.Fatal("checksum must match")
	}
}

func TestProbeTimestampProperty(t *testing.T) {
	var buf [128]byte
	prop := func(ms uint32, hop uint8, db byte, pre bool) bool {
		hop = hop%MaxHopLimit + 1
		ms &= tsMask
		n := BuildProbe(buf[:], addr(1), addr(db), hop, pre,
			time.Duration(ms)*time.Millisecond, 0, TracerouteDstPort)
		var quoted Header
		if quoted.Unmarshal(buf[:n]) != nil {
			return false
		}
		var resp [ICMPErrorLen]byte
		MarshalICMPError(resp[:], ICMP6TypeTimeExceeded, ICMP6CodeHopLimit,
			&quoted, buf[HeaderLen:HeaderLen+8])
		var m ICMPError
		if m.UnmarshalICMPError(resp[:]) != nil {
			return false
		}
		fi, err := ParseQuote(&m)
		return err == nil && fi.TSMillis == ms && fi.InitHopLimit == hop && fi.Preprobe == pre
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTWrap(t *testing.T) {
	fi := Info{TSMillis: tsMask - 100} // sent just before the 20-bit wrap
	rtt := fi.RTT(time.Duration(tsMask+200) * time.Millisecond)
	if rtt != 300*time.Millisecond {
		t.Fatalf("rtt=%v", rtt)
	}
}

func TestChecksumMismatchOnRewrite(t *testing.T) {
	var buf [128]byte
	dst := addr(50)
	n := BuildProbe(buf[:], addr(1), dst, 10, false, 0, 0, TracerouteDstPort)
	var quoted Header
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.Dst[15] ^= 1
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMP6TypeDestUnreachable, ICMP6CodePortUnreachable,
		&quoted, buf[HeaderLen:HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	fi, _ := ParseQuote(&m)
	if fi.ChecksumMatches(0) {
		t.Fatal("rewritten destination must not match")
	}
}

func TestParseResponseFull(t *testing.T) {
	var pbuf [128]byte
	dst := addr(7)
	n := BuildProbe(pbuf[:], addr(1), dst, 16, false, time.Second, 0, TracerouteDstPort)
	var quoted Header
	if err := quoted.Unmarshal(pbuf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.HopLimit = 1

	hop := addr(200)
	var pkt [HeaderLen + ICMPErrorLen]byte
	outer := Header{
		PayloadLength: ICMPErrorLen,
		NextHeader:    ProtoICMPv6,
		HopLimit:      64,
		Src:           hop,
		Dst:           addr(1),
	}
	outer.Marshal(pkt[:])
	MarshalICMPError(pkt[HeaderLen:], ICMP6TypeTimeExceeded, ICMP6CodeHopLimit,
		&quoted, pbuf[HeaderLen:HeaderLen+8])
	r, err := ParseResponse(pkt[:])
	if err != nil {
		t.Fatal(err)
	}
	if r.Hop != hop || !r.ICMP.IsHopLimitExceeded() {
		t.Fatalf("response %+v", r)
	}
	fi, err := ParseQuote(&r.ICMP)
	if err != nil || fi.Dst != dst || fi.InitHopLimit != 16 {
		t.Fatalf("info %+v err %v", fi, err)
	}
}

func TestAddrChecksumNonZeroProperty(t *testing.T) {
	prop := func(bs [16]byte) bool { return AddrChecksum(Addr(bs)) != 0 }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	a := addr(0xBB)
	if got := a.String(); got != "2001:0:0:0:0:0:0:bb" {
		t.Fatalf("String()=%q", got)
	}
}
