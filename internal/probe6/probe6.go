// Package probe6 implements the IPv6 wire formats and probe encoding for
// FlashRoute6 — the IPv6 extension the paper plans in §5.4.
//
// IPv6 changes the encoding constraints of §3.1: there is no IPID field,
// but the 20-bit flow label is available (and is part of what per-flow
// load balancers hash, so it doubles as the Paris flow discipline —
// exactly how Yarrp6 uses it). FlashRoute6 packs the probing context as:
//
//   - flow label bits 19..15: initial hop limit (1..32, stored minus 1);
//   - flow label bit 14: preprobing-phase flag;
//   - flow label bits 13..0 plus 6 bits of payload length: a 20-bit
//     millisecond timestamp (wrap ~17.5 minutes);
//   - UDP source port: checksum of the destination address, detecting
//     in-flight destination rewriting as in IPv4 (§5.3).
package probe6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Addr is an IPv6 address. It is a value type usable as a map key — the
// property the sparse control state of FlashRoute6 relies on.
type Addr [16]byte

// String renders the address in the canonical hex form (no zero
// compression; diagnostic use).
func (a Addr) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		binary.BigEndian.Uint16(a[0:]), binary.BigEndian.Uint16(a[2:]),
		binary.BigEndian.Uint16(a[4:]), binary.BigEndian.Uint16(a[6:]),
		binary.BigEndian.Uint16(a[8:]), binary.BigEndian.Uint16(a[10:]),
		binary.BigEndian.Uint16(a[12:]), binary.BigEndian.Uint16(a[14:]))
}

// HeaderLen is the fixed IPv6 header length.
const HeaderLen = 40

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// Next-header protocol numbers.
const (
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// ICMPv6 types/codes used by traceroute probing (RFC 4443).
const (
	ICMP6TypeDestUnreachable = 1
	ICMP6TypeTimeExceeded    = 3
	ICMP6CodeHopLimit        = 0
	ICMP6CodePortUnreachable = 4
)

// MaxHopLimit is the largest initial hop limit representable in the
// 5-bit flow-label slot.
const MaxHopLimit = 32

// TracerouteDstPort mirrors the IPv4 convention.
const TracerouteDstPort = 33434

// Errors.
var (
	ErrTruncated  = errors.New("probe6: truncated packet")
	ErrBadVersion = errors.New("probe6: bad IP version")
)

// Header is the fixed IPv6 header.
type Header struct {
	TrafficClass  uint8
	FlowLabel     uint32 // 20 bits
	PayloadLength uint16
	NextHeader    uint8
	HopLimit      uint8
	Src, Dst      Addr
}

// Marshal writes the header into b (at least HeaderLen bytes).
func (h *Header) Marshal(b []byte) int {
	if len(b) < HeaderLen {
		panic("probe6: Header.Marshal buffer too small")
	}
	fl := h.FlowLabel & 0xfffff
	binary.BigEndian.PutUint32(b[0:], uint32(6)<<28|uint32(h.TrafficClass)<<20|fl)
	binary.BigEndian.PutUint16(b[4:], h.PayloadLength)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	copy(b[8:24], h.Src[:])
	copy(b[24:40], h.Dst[:])
	return HeaderLen
}

// Unmarshal parses the header from b.
func (h *Header) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	w := binary.BigEndian.Uint32(b[0:])
	if w>>28 != 6 {
		return ErrBadVersion
	}
	h.TrafficClass = uint8(w >> 20)
	h.FlowLabel = w & 0xfffff
	h.PayloadLength = binary.BigEndian.Uint16(b[4:])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	copy(h.Src[:], b[8:24])
	copy(h.Dst[:], b[24:40])
	return nil
}

// AddrChecksum folds an IPv6 address into a 16-bit Internet checksum,
// used as the probe source port (0 maps to 0xffff: port 0 is reserved).
func AddrChecksum(a Addr) uint16 {
	var sum uint32
	for i := 0; i < 16; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(a[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	cs := ^uint16(sum)
	if cs == 0 {
		cs = 0xffff
	}
	return cs
}

// Flow-label encoding layout.
const (
	flHopShift = 15
	flPreBit   = 1 << 14
	flTSMask   = (1 << 14) - 1 // high 14 of the 20-bit timestamp
	tsLowBits  = 6
	tsLowMask  = (1 << tsLowBits) - 1
	tsBits     = 20
	tsMask     = (1 << tsBits) - 1
)

// Info is the probing context recovered from an ICMPv6 response.
type Info struct {
	Dst              Addr
	InitHopLimit     uint8
	ResidualHopLimit uint8
	Preprobe         bool
	TSMillis         uint32 // 20-bit millisecond timestamp
	SrcPort, DstPort uint16
}

// RTT derives the round-trip time, handling the ~17.5-minute wrap.
func (i Info) RTT(receivedAt time.Duration) time.Duration {
	recv := uint32(receivedAt.Milliseconds()) & tsMask
	delta := (recv - i.TSMillis) & tsMask
	return time.Duration(delta) * time.Millisecond
}

// ChecksumMatches reports whether the quoted source port matches the
// checksum of the quoted destination plus the scan offset.
func (i Info) ChecksumMatches(scanOffset uint16) bool {
	return i.SrcPort == AddrChecksum(i.Dst)+scanOffset
}

// Disclosure mirrors the IPv4 probes' research-disclosure payload.
const Disclosure = "flashroute6-go topology measurement research"

// BuildProbe serializes a FlashRoute6 UDP probe into buf and returns its
// length.
func BuildProbe(buf []byte, src, dst Addr, hopLimit uint8, preprobe bool, elapsed time.Duration, srcPortOffset uint16, dstPort uint16) int {
	if hopLimit < 1 || hopLimit > MaxHopLimit {
		panic("probe6: BuildProbe hop limit out of range")
	}
	ts := uint32(elapsed.Milliseconds()) & tsMask
	fl := uint32(hopLimit-1) << flHopShift
	if preprobe {
		fl |= flPreBit
	}
	fl |= (ts >> tsLowBits) & flTSMask
	payloadLen := int(ts & tsLowMask)
	udpLen := UDPHeaderLen + payloadLen
	total := HeaderLen + udpLen
	if len(buf) < total {
		panic("probe6: BuildProbe buffer too small")
	}
	h := Header{
		FlowLabel:     fl,
		PayloadLength: uint16(udpLen),
		NextHeader:    ProtoUDP,
		HopLimit:      hopLimit,
		Src:           src,
		Dst:           dst,
	}
	h.Marshal(buf)
	binary.BigEndian.PutUint16(buf[HeaderLen+0:], AddrChecksum(dst)+srcPortOffset)
	binary.BigEndian.PutUint16(buf[HeaderLen+2:], dstPort)
	binary.BigEndian.PutUint16(buf[HeaderLen+4:], uint16(udpLen))
	binary.BigEndian.PutUint16(buf[HeaderLen+6:], 0)
	for i := 0; i < payloadLen; i++ {
		buf[HeaderLen+UDPHeaderLen+i] = Disclosure[i%len(Disclosure)]
	}
	return total
}

// ICMPErrorLen is the ICMPv6 error length used here: 8 bytes of ICMPv6
// header + the quoted IPv6 header + 8 bytes of the original transport.
const ICMPErrorLen = 8 + HeaderLen + 8

// ICMPError is a parsed ICMPv6 error with its quote.
type ICMPError struct {
	Type, Code      uint8
	Quote           Header
	QuotedTransport [8]byte
}

// MarshalICMPError builds an ICMPv6 error message into b.
func MarshalICMPError(b []byte, icmpType, code uint8, quote *Header, quotedTransport []byte) int {
	if len(b) < ICMPErrorLen {
		panic("probe6: MarshalICMPError buffer too small")
	}
	b[0], b[1] = icmpType, code
	b[2], b[3] = 0, 0 // checksum (pseudo-header based; simulator leaves 0)
	binary.BigEndian.PutUint32(b[4:], 0)
	quote.Marshal(b[8:])
	n := copy(b[8+HeaderLen:ICMPErrorLen], quotedTransport)
	for i := 8 + HeaderLen + n; i < ICMPErrorLen; i++ {
		b[i] = 0
	}
	return ICMPErrorLen
}

// UnmarshalICMPError parses an ICMPv6 error from b.
func (m *ICMPError) UnmarshalICMPError(b []byte) error {
	if len(b) < ICMPErrorLen {
		return ErrTruncated
	}
	m.Type, m.Code = b[0], b[1]
	if err := m.Quote.Unmarshal(b[8:]); err != nil {
		return err
	}
	copy(m.QuotedTransport[:], b[8+HeaderLen:8+HeaderLen+8])
	return nil
}

// IsHopLimitExceeded reports a hop's time-exceeded message.
func (m *ICMPError) IsHopLimitExceeded() bool {
	return m.Type == ICMP6TypeTimeExceeded && m.Code == ICMP6CodeHopLimit
}

// IsUnreachable reports a destination-unreachable message.
func (m *ICMPError) IsUnreachable() bool { return m.Type == ICMP6TypeDestUnreachable }

// ParseQuote recovers the FlashRoute6 probing context from an ICMPv6
// error.
func ParseQuote(m *ICMPError) (Info, error) {
	if m.Quote.NextHeader != ProtoUDP {
		return Info{}, errors.New("probe6: quoted packet is not UDP")
	}
	fl := m.Quote.FlowLabel
	udpLen := binary.BigEndian.Uint16(m.QuotedTransport[4:])
	ts := (fl&flTSMask)<<tsLowBits | uint32(udpLen-UDPHeaderLen)&tsLowMask
	return Info{
		Dst:              m.Quote.Dst,
		InitHopLimit:     uint8(fl>>flHopShift) + 1,
		ResidualHopLimit: m.Quote.HopLimit,
		Preprobe:         fl&flPreBit != 0,
		TSMillis:         ts,
		SrcPort:          binary.BigEndian.Uint16(m.QuotedTransport[0:]),
		DstPort:          binary.BigEndian.Uint16(m.QuotedTransport[2:]),
	}, nil
}

// Response is a fully parsed ICMPv6 response packet.
type Response struct {
	Hop  Addr
	ICMP ICMPError
}

// ParseResponse parses a complete IPv6 packet carrying an ICMPv6 error.
func ParseResponse(pkt []byte) (Response, error) {
	var outer Header
	if err := outer.Unmarshal(pkt); err != nil {
		return Response{}, err
	}
	if outer.NextHeader != ProtoICMPv6 {
		return Response{}, errors.New("probe6: response is not ICMPv6")
	}
	var r Response
	r.Hop = outer.Src
	if err := r.ICMP.UnmarshalICMPError(pkt[HeaderLen:]); err != nil {
		return Response{}, err
	}
	return r, nil
}
