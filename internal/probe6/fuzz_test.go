package probe6

import (
	"testing"
	"time"
)

// The IPv6 parse paths have the same one-line contract as probe's: no
// input — truncated, corrupted or adversarial — may panic, and what a
// parser accepts must decode to representable probing context. Seeds are
// built from the real probe builder plus truncations and corruptions, so
// coverage starts at the interesting packet shapes.

// seedResponse6 builds a complete ICMPv6 error response to a FlashRoute6
// probe, the way a simulated hop would.
func seedResponse6(icmpType, code, residual uint8, preprobe bool) []byte {
	src, dst := addr(1), addr(99)
	var pr [128]byte
	n := BuildProbe(pr[:], src, dst, 12, preprobe, 1234*time.Millisecond, 0, TracerouteDstPort)
	var quoted Header
	if err := quoted.Unmarshal(pr[:n]); err != nil {
		panic(err)
	}
	quoted.HopLimit = residual
	var pkt [HeaderLen + ICMPErrorLen]byte
	outer := Header{
		PayloadLength: ICMPErrorLen,
		NextHeader:    ProtoICMPv6,
		HopLimit:      64,
		Src:           addr(200),
		Dst:           src,
	}
	outer.Marshal(pkt[:])
	MarshalICMPError(pkt[HeaderLen:], icmpType, code, &quoted, pr[HeaderLen:HeaderLen+8])
	return append([]byte(nil), pkt[:]...)
}

// FuzzParseResponse6: the full IPv6 response path (outer header + ICMPv6
// error + quoted probe decoding) must never panic, and accepted inputs
// must decode to in-range probing context.
func FuzzParseResponse6(f *testing.F) {
	f.Add(seedResponse6(ICMP6TypeTimeExceeded, ICMP6CodeHopLimit, 1, false))
	f.Add(seedResponse6(ICMP6TypeDestUnreachable, ICMP6CodePortUnreachable, 20, false))
	f.Add(seedResponse6(ICMP6TypeTimeExceeded, ICMP6CodeHopLimit, 3, true))
	full := seedResponse6(ICMP6TypeTimeExceeded, ICMP6CodeHopLimit, 1, false)
	for _, cut := range []int{0, 1, HeaderLen - 1, HeaderLen,
		HeaderLen + 7, HeaderLen + ICMPErrorLen - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	bad := append([]byte(nil), full...)
	bad[0] = 0x45 // IPv4 version nibble
	f.Add(bad)
	proto := append([]byte(nil), full...)
	proto[6] = ProtoUDP // outer packet not ICMPv6
	f.Add(proto)
	quoteProto := append([]byte(nil), full...)
	quoteProto[HeaderLen+8+6] = ProtoICMPv6 // quoted packet not UDP
	f.Add(quoteProto)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseResponse(data)
		if err != nil {
			return
		}
		r.ICMP.IsHopLimitExceeded()
		r.ICMP.IsUnreachable()
		fi, err := ParseQuote(&r.ICMP)
		if err != nil {
			return
		}
		if fi.InitHopLimit < 1 || fi.InitHopLimit > MaxHopLimit {
			t.Fatalf("InitHopLimit %d out of range", fi.InitHopLimit)
		}
		if fi.TSMillis > tsMask {
			t.Fatalf("TSMillis %d exceeds the 20-bit field", fi.TSMillis)
		}
		fi.ChecksumMatches(0)
		if rtt := fi.RTT(time.Duration(fi.TSMillis+5) * time.Millisecond); rtt < 0 {
			t.Fatalf("negative RTT %v", rtt)
		}
	})
}

// FuzzHeader6: IPv6 header parsing must never panic, and every accepted
// header must survive a Marshal/Unmarshal round trip.
func FuzzHeader6(f *testing.F) {
	var buf [HeaderLen]byte
	h := Header{TrafficClass: 7, FlowLabel: 0xABCDE, PayloadLength: 48,
		NextHeader: ProtoUDP, HopLimit: 17, Src: addr(1), Dst: addr(2)}
	h.Marshal(buf[:])
	f.Add(append([]byte(nil), buf[:]...))
	f.Add(append([]byte(nil), buf[:HeaderLen-1]...))
	f.Add([]byte{0x45, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.Unmarshal(data); err != nil {
			return
		}
		var out [HeaderLen]byte
		h.Marshal(out[:])
		var back Header
		if err := back.Unmarshal(out[:]); err != nil {
			t.Fatalf("re-Unmarshal failed: %v", err)
		}
		if back != h {
			t.Fatalf("round trip changed header: %+v != %+v", back, h)
		}
	})
}
