package netsim6

import (
	"io"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

func topo(t testing.TB, prefixes, perPrefix int, seed int64) *Topology {
	t.Helper()
	p := DefaultParams(seed)
	p.Prefixes = prefixes
	p.TargetsPerPrefix = perPrefix
	return NewTopology(p)
}

func TestTargetListShape(t *testing.T) {
	tp := topo(t, 64, 8, 1)
	targets := tp.Targets()
	if len(targets) != 64*8 {
		t.Fatalf("targets=%d", len(targets))
	}
	seen := map[probe6.Addr]bool{}
	for _, a := range targets {
		if seen[a] {
			t.Fatalf("duplicate target %s", a)
		}
		seen[a] = true
		if a[0] != 0x20 || a[1] != 0x01 || a[2] != 0x0d || a[3] != 0xb8 {
			t.Fatalf("target outside 2001:db8::/32: %s", a)
		}
	}
}

func TestRouteStructure6(t *testing.T) {
	tp := topo(t, 256, 4, 2)
	checked := 0
	for _, dst := range tp.Targets() {
		d := tp.DistanceNow(dst)
		if d == 0 || !tp.HostResponds(dst) {
			continue
		}
		for hl := uint8(1); hl < d; hl++ {
			h := tp.Resolve(dst, hl)
			if h.Kind != HopRouter && h.Kind != HopSilentRouter {
				t.Fatalf("hl=%d dist=%d: want router, got %+v", hl, d, h)
			}
		}
		for _, hl := range []uint8{d, 32} {
			h := tp.Resolve(dst, hl)
			if h.Kind != HopDest {
				t.Fatalf("hl=%d dist=%d: want dest, got %+v", hl, d, h)
			}
			if got := hl - h.Residual + 1; got != d {
				t.Fatalf("residual arithmetic: hl=%d residual=%d dist=%d", hl, h.Residual, d)
			}
		}
		checked++
		if checked > 200 {
			break
		}
	}
	if checked < 50 {
		t.Fatalf("checked only %d live targets", checked)
	}
}

func TestGatewayAlwaysResponds(t *testing.T) {
	tp := topo(t, 64, 2, 3)
	for i := 0; i < 64; i++ {
		gw := tp.prefixes[i].gateway
		if !tp.HostResponds(gw) {
			t.Fatalf("gateway %s must respond", gw)
		}
		h := tp.Resolve(gw, 32)
		if h.Kind != HopDest {
			t.Fatalf("gateway probe: %+v", h)
		}
	}
}

func TestUnknownPrefixSilent(t *testing.T) {
	tp := topo(t, 8, 2, 4)
	var foreign probe6.Addr
	foreign[0] = 0xfd
	if h := tp.Resolve(foreign, 16); h.Kind != HopNone {
		t.Fatalf("foreign prefix should be unrouted, got %+v", h)
	}
	if tp.DistanceNow(foreign) != 0 {
		t.Fatal("foreign distance should be 0")
	}
}

func TestConn6EndToEnd(t *testing.T) {
	tp := topo(t, 64, 4, 5)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(tp, clock)
	conn := n.NewConn()

	dst := tp.prefixes[0].gateway
	dist := tp.DistanceNow(dst)

	var pkt [128]byte
	ln := probe6.BuildProbe(pkt[:], tp.Vantage(), dst, 32, true, 0, 0, probe6.TracerouteDstPort)

	clock.AddActor()
	defer clock.DoneActor()
	if err := conn.WritePacket(pkt[:ln]); err != nil {
		t.Fatal(err)
	}
	var buf [MaxResponseLen]byte
	rn, err := conn.ReadPacket(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := probe6.ParseResponse(buf[:rn])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ICMP.IsUnreachable() || resp.Hop != dst {
		t.Fatalf("response %+v", resp)
	}
	fi, err := probe6.ParseQuote(&resp.ICMP)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint8(32) - fi.ResidualHopLimit + 1; got != dist {
		t.Fatalf("measured %d want %d", got, dist)
	}
	conn.Close()
	if _, err := conn.ReadPacket(buf[:]); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRateLimit6(t *testing.T) {
	p := DefaultParams(6)
	p.Prefixes, p.TargetsPerPrefix = 8, 2
	p.ICMPRateLimitPPS = 5
	tp := NewTopology(p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(tp, clock)
	allowed := 0
	for i := 0; i < 12; i++ {
		if n.allowICMP(tp.core[0], 0) {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("allowed=%d want 5", allowed)
	}
	if !n.allowICMP(tp.core[0], time.Second) {
		t.Fatal("budget should refresh")
	}
}

func TestWriteMalformed6(t *testing.T) {
	tp := topo(t, 8, 2, 7)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(tp, clock)
	conn := n.NewConn()
	if err := conn.WritePacket([]byte{6 << 4}); err == nil {
		t.Fatal("short packet accepted")
	}
}
