// Package netsim6 is the IPv6 substrate for FlashRoute6 (the paper's §5.4
// extension): a seeded synthetic IPv6 Internet and a packet-level
// connection delivering real IPv6/ICMPv6 bytes on a pluggable clock.
//
// The defining difference from IPv4 is sparsity: allocated IPv6 space is
// a scattering of prefixes in an astronomically larger space, so there is
// no notion of "every /24"; scans run over candidate target lists, and
// the scanner's control state must be indexed by hash rather than by
// address prefix (the redesign the paper anticipates).
package netsim6

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/simnet"
)

// Impairments is the shared packet-impairment model, aliased so IPv6
// call sites read netsim6.Impairments; see simnet.Impairments.
type Impairments = simnet.Impairments

// FaultWindow and FaultKind describe the deterministic transport-fault
// windows (Impairments.Faults), aliased for the same reason.
type (
	FaultWindow = simnet.FaultWindow
	FaultKind   = simnet.FaultKind
)

const (
	FaultWriteError = simnet.FaultWriteError
	FaultReadStall  = simnet.FaultReadStall
	FaultFlap       = simnet.FaultFlap
)

// Params shape the synthetic IPv6 Internet.
type Params struct {
	Seed int64
	// Prefixes is the number of allocated /48 prefixes; TargetsPerPrefix
	// the number of candidate addresses per prefix in the target list
	// (like Yarrp6's candidate lists).
	Prefixes         int
	TargetsPerPrefix int

	CoreHops        int
	Regions         int
	RegionHopsMin   int
	RegionHopsMax   int
	Providers       int
	ProviderHopsMin int
	ProviderHopsMax int

	SilentRouterProb float64
	// HostRespProb is the probability a candidate target exists and
	// answers port-unreachable (candidate lists are pre-filtered, so this
	// is much higher than IPv4's random-representative rate).
	HostRespProb float64

	ICMPRateLimitPPS int
	BaseRTT          time.Duration
	PerHopRTT        time.Duration
	JitterRTT        time.Duration

	// Impair layers packet-level pathologies (loss, bursts, duplication,
	// reordering, extra jitter) over the modeled network — the same
	// deterministic model the IPv4 simulator uses. The zero value is the
	// perfect network.
	Impair Impairments
}

// DefaultParams returns calibrated defaults for the given seed.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:             seed,
		Prefixes:         1024,
		TargetsPerPrefix: 16,
		CoreHops:         3,
		Regions:          6,
		RegionHopsMin:    2,
		RegionHopsMax:    5,
		Providers:        64,
		ProviderHopsMin:  4,
		ProviderHopsMax:  10,
		SilentRouterProb: 0.15,
		HostRespProb:     0.55,
		ICMPRateLimitPPS: 500,
		BaseRTT:          12 * time.Millisecond,
		PerHopRTT:        2 * time.Millisecond,
		JitterRTT:        30 * time.Millisecond,
	}
}

// HopKind classifies a probe's fate.
type HopKind uint8

const (
	HopNone HopKind = iota
	HopRouter
	HopSilentRouter
	HopDest
	HopDestSilent
)

// Hop is the outcome of resolving a probe.
type Hop struct {
	Kind     HopKind
	Addr     probe6.Addr
	Depth    uint8
	Residual uint8
}

type prefix6 struct {
	provider int32
	gateway  probe6.Addr
}

// Topology is the synthetic IPv6 Internet.
type Topology struct {
	P Params

	vantage probe6.Addr
	core    []probe6.Addr

	regionPaths   [][]probe6.Addr
	providerPaths [][]probe6.Addr
	providerReg   []int32

	prefixes []prefix6
	// prefIdx maps the /48 (first 6 bytes) to the prefix index — the
	// sparse lookup that replaces IPv4's dense array.
	prefIdx map[[6]byte]int32

	targets []probe6.Addr

	hashSeed uint64
}

// NewTopology generates the IPv6 Internet and its candidate target list.
func NewTopology(p Params) *Topology {
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{
		P:        p,
		prefIdx:  make(map[[6]byte]int32, p.Prefixes),
		hashSeed: uint64(p.Seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc908,
	}
	t.vantage = infraAddr(0, 1)
	t.core = make([]probe6.Addr, p.CoreHops)
	for i := range t.core {
		t.core[i] = infraAddr(1, uint32(i+1))
	}
	span := func(min, max int) int {
		if max <= min {
			return min
		}
		return min + rng.Intn(max-min+1)
	}
	t.regionPaths = make([][]probe6.Addr, p.Regions)
	for r := range t.regionPaths {
		path := make([]probe6.Addr, span(p.RegionHopsMin, p.RegionHopsMax))
		for j := range path {
			path[j] = infraAddr(2, uint32(r)<<8|uint32(j+1))
		}
		t.regionPaths[r] = path
	}
	t.providerPaths = make([][]probe6.Addr, p.Providers)
	t.providerReg = make([]int32, p.Providers)
	for pr := range t.providerPaths {
		path := make([]probe6.Addr, span(p.ProviderHopsMin, p.ProviderHopsMax))
		for j := range path {
			path[j] = infraAddr(3, uint32(pr)<<8|uint32(j+1))
		}
		t.providerPaths[pr] = path
		t.providerReg[pr] = int32(rng.Intn(p.Regions))
	}
	t.prefixes = make([]prefix6, p.Prefixes)
	for i := range t.prefixes {
		pref := &t.prefixes[i]
		pref.provider = int32(rng.Intn(p.Providers))
		base := t.prefixBase(i)
		gw := base
		gw[15] = 1
		pref.gateway = gw
		var key [6]byte
		copy(key[:], base[:6])
		t.prefIdx[key] = int32(i)
	}
	// Candidate target list: TargetsPerPrefix pseudo-random interface IDs
	// per allocated prefix, deduplicated against the gateway.
	t.targets = make([]probe6.Addr, 0, p.Prefixes*p.TargetsPerPrefix)
	for i := range t.prefixes {
		base := t.prefixBase(i)
		for j := 0; j < p.TargetsPerPrefix; j++ {
			a := base
			binary.BigEndian.PutUint64(a[8:], t.hash(uint64(i), uint64(j), 0x7a))
			if a == t.prefixes[i].gateway {
				a[15] ^= 0x80
			}
			t.targets = append(t.targets, a)
		}
	}
	return t
}

// prefixBase returns the /48 base address of prefix i (2001:db8:xxxx::).
func (t *Topology) prefixBase(i int) probe6.Addr {
	var a probe6.Addr
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
	binary.BigEndian.PutUint16(a[4:], uint16(i))
	return a
}

// infraAddr mints router interface addresses outside the target space.
func infraAddr(tier uint8, n uint32) probe6.Addr {
	var a probe6.Addr
	a[0], a[1] = 0x2a, tier
	binary.BigEndian.PutUint32(a[12:], n)
	return a
}

func (t *Topology) hash(a, b, c uint64) uint64 {
	z := t.hashSeed + a*0x9e3779b97f4a7c15 + b*0xd6e8feb86659fd93 + c*0xa0761d6478bd642f
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Topology) chance(h uint64, p float64) bool {
	return float64(h>>11)/float64(1<<53) < p
}

func addrWord(a probe6.Addr) uint64 {
	return binary.BigEndian.Uint64(a[8:]) ^ uint64(binary.BigEndian.Uint32(a[0:]))
}

func (t *Topology) silent(a probe6.Addr) bool {
	if a == t.core[0] || IsIngressIface(a) {
		return false
	}
	return t.chance(t.hash(addrWord(a), 0x51, 0), t.P.SilentRouterProb)
}

// ingressTier is the infraAddr tier minting per-vantage ingress
// interfaces; generated routers use the low tiers, so no collision.
const ingressTier = 0xfe

// IngressIface returns the first-hop interface address seen by probes
// sourced at vantage v (v > 0; vantage 0 uses the classic core path).
func IngressIface(v int) probe6.Addr { return infraAddr(ingressTier, uint32(v)) }

// IsIngressIface reports whether a is a per-vantage ingress interface.
func IsIngressIface(a probe6.Addr) bool { return a[0] == 0x2a && a[1] == ingressTier }

// Vantage returns the scanning source address.
func (t *Topology) Vantage() probe6.Addr { return t.vantage }

// Targets returns the candidate target list.
func (t *Topology) Targets() []probe6.Addr { return t.targets }

// HostResponds reports whether a candidate target answers probes.
func (t *Topology) HostResponds(a probe6.Addr) bool {
	if i, ok := t.prefixOf(a); ok && t.prefixes[i].gateway == a {
		return true
	}
	return t.chance(t.hash(addrWord(a), 0xb0, 0), t.P.HostRespProb)
}

func (t *Topology) prefixOf(a probe6.Addr) (int32, bool) {
	var key [6]byte
	copy(key[:], a[:6])
	i, ok := t.prefIdx[key]
	return i, ok
}

// DistanceNow returns the hop distance of a target, 0 if unrouted.
func (t *Topology) DistanceNow(a probe6.Addr) uint8 {
	i, ok := t.prefixOf(a)
	if !ok {
		return 0
	}
	pref := &t.prefixes[i]
	pr := int(pref.provider)
	d := len(t.core) + len(t.regionPaths[t.providerReg[pr]]) + len(t.providerPaths[pr]) + 1
	if a != pref.gateway {
		d++
	}
	return uint8(d)
}

// Resolve determines what a probe encounters.
func (t *Topology) Resolve(dst probe6.Addr, hopLimit uint8) Hop {
	return t.ResolveFrom(0, dst, hopLimit)
}

// ResolveFrom is Resolve for a probe entering at vantage v: vantage 0 is
// the classic path, any other vantage reaches the same core through a
// private one-hop ingress link resolving to IngressIface(v) at depth 1.
func (t *Topology) ResolveFrom(v int, dst probe6.Addr, hopLimit uint8) Hop {
	i, ok := t.prefixOf(dst)
	if !ok {
		return Hop{Kind: HopNone}
	}
	if v > 0 && hopLimit == 1 {
		return t.routerHop(IngressIface(v), hopLimit)
	}
	pref := &t.prefixes[i]
	pr := int(pref.provider)
	region := t.regionPaths[t.providerReg[pr]]
	provider := t.providerPaths[pr]

	d := int(hopLimit)
	if d <= len(t.core) {
		return t.routerHop(t.core[d-1], hopLimit)
	}
	d -= len(t.core)
	if d <= len(region) {
		return t.routerHop(region[d-1], hopLimit)
	}
	d -= len(region)
	if d <= len(provider) {
		return t.routerHop(provider[d-1], hopLimit)
	}
	d -= len(provider)

	gwDepth := int(hopLimit) - d + 1
	if dst == pref.gateway {
		return Hop{Kind: HopDest, Addr: dst, Depth: uint8(gwDepth),
			Residual: hopLimit - uint8(gwDepth) + 1}
	}
	if d == 1 {
		return t.routerHop(pref.gateway, hopLimit)
	}
	if !t.HostResponds(dst) {
		return Hop{Kind: HopNone}
	}
	depth := uint8(gwDepth + 1)
	return Hop{Kind: HopDest, Addr: dst, Depth: depth, Residual: hopLimit - depth + 1}
}

func (t *Topology) routerHop(a probe6.Addr, hopLimit uint8) Hop {
	kind := HopRouter
	if t.silent(a) {
		kind = HopSilentRouter
	}
	return Hop{Kind: kind, Addr: a, Depth: hopLimit, Residual: 1}
}

// ---- packet-level network ----

// ErrClosed is returned by writes on a closed Conn.
var ErrClosed = errors.New("netsim6: connection closed")

// Stats counts network-side events.
type Stats struct {
	ProbesSent  atomic.Uint64
	RateLimited atomic.Uint64
	Silent      atomic.Uint64
	NoRoute     atomic.Uint64

	// Responses plus the impairment-layer counters, promoted from the
	// shared substrate.
	simnet.DeliveryStats
}

// Net binds the topology to a clock.
type Net struct {
	topo  *Topology
	clock simclock.Waiter
	epoch time.Time

	Stats Stats

	// Rate-limit buckets, sharded so concurrent senders do not contend
	// on one global mutex for every probe.
	buckets *simnet.Buckets[probe6.Addr]
}

// bucketShardOf folds all address bytes: IPv6 responder populations are
// biased in their interface identifier, so no single byte spreads well.
func bucketShardOf(a probe6.Addr) uint32 {
	h := uint32(2166136261)
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// New creates an IPv6 network on the clock.
func New(topo *Topology, clock simclock.Waiter) *Net {
	return &Net{topo: topo, clock: clock, epoch: clock.Now(),
		buckets: simnet.NewBuckets[probe6.Addr](bucketShardOf)}
}

// Topo returns the topology.
func (n *Net) Topo() *Topology { return n.topo }

// Clock returns the clock driving this network.
func (n *Net) Clock() simclock.Waiter { return n.clock }

// Elapsed returns time since the network epoch.
func (n *Net) Elapsed() time.Duration { return n.clock.Now().Sub(n.epoch) }

func (n *Net) allowICMP(a probe6.Addr, now time.Duration) bool {
	return n.buckets.Allow(a, n.topo.P.ICMPRateLimitPPS, now)
}

func (n *Net) rtt(depth uint8, h uint64) time.Duration {
	p := &n.topo.P
	j := time.Duration(0)
	if p.JitterRTT > 0 {
		j = time.Duration(h % uint64(p.JitterRTT))
	}
	return p.BaseRTT + time.Duration(depth)*p.PerHopRTT + j
}

// respPayload is a scheduled response, materialized into bytes at read
// time. Its delivery time and ordering sequence live in the inbox item
// wrapping it — the same allocation-free value-typed fast path as the
// IPv4 simulator.
type respPayload struct {
	unreach   bool
	hop       probe6.Addr
	quote     probe6.Header
	transport [8]byte
}

// Conn is the raw IPv6 connection.
type Conn struct {
	net *Net
	// vantage selects the ingress path probes take into the topology
	// (Topology.ResolveFrom); 0 is the classic vantage point. Replies
	// route back by connection, and the source address stays the vantage
	// point's for every value.
	vantage int
	imp     *simnet.ImpairState // nil unless Params.Impair is enabled
	inbox   *simnet.Inbox[respPayload]

	// Batch-path scratch, reused across calls so the steady state stays
	// allocation-free. wrMu serializes WriteBatch callers (several sender
	// shards may batch-write the same Conn); rdScratch belongs to the
	// Conn-level reader, of which the contract allows exactly one.
	wrMu      sync.Mutex
	wrStage   []simnet.Pending[respPayload]
	rdScratch []respPayload
}

// NewConn opens a connection from the vantage point.
func (n *Net) NewConn() *Conn {
	return n.NewVantageConn(0)
}

// NewVantageConn opens a connection entering the topology at vantage v
// (v == 0 is NewConn exactly; see the IPv4 simulator's NewVantageConn).
func (n *Net) NewVantageConn(v int) *Conn {
	c := &Conn{net: n, vantage: v, inbox: simnet.NewInbox[respPayload](n.clock, n.epoch)}
	if n.topo.P.Impair.Enabled() {
		c.imp = simnet.NewImpairState(n.topo.P.Seed)
	}
	return c
}

// MaxResponseLen is the largest response ReadPacket produces.
const MaxResponseLen = probe6.HeaderLen + probe6.ICMPErrorLen

// WritePacket injects a serialized IPv6 probe.
func (c *Conn) WritePacket(pkt []byte) error {
	return c.write1(pkt, c.net.Elapsed(), nil)
}

// WriteBatch injects pkts in order (sendmmsg shape). It returns the
// number of packets consumed; a non-nil error with n < len(pkts) means
// pkts[n] failed and packets after it were not attempted. Responses
// elicited by the batch are committed to the inbox under one lock with
// one reader wakeup, with per-packet impairment and fault draws in write
// order — the RNG stream is identical to the unbatched path's.
func (c *Conn) WriteBatch(pkts [][]byte) (int, error) {
	n := c.net
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	// One clock read covers the whole batch: on the virtual clock no time
	// can pass while the writer runs; fault windows re-read below.
	now := n.Elapsed()
	faults := n.topo.P.Impair.HasFaults()
	c.wrStage = c.wrStage[:0]
	for i, pkt := range pkts {
		pktNow := now
		if faults {
			pktNow = n.Elapsed() // a window edge may split the batch on a real clock
		}
		if err := c.write1(pkt, pktNow, &c.wrStage); err != nil {
			if !simnet.ScheduleAllResponses(c.inbox, &n.Stats.DeliveryStats, c.wrStage) {
				return i, ErrClosed
			}
			return i, err
		}
	}
	if !simnet.ScheduleAllResponses(c.inbox, &n.Stats.DeliveryStats, c.wrStage) {
		return len(pkts), ErrClosed
	}
	return len(pkts), nil
}

// write1 is the full per-packet write path at instant now. Responses are
// delivered straight to the inbox (stage nil) or appended to *stage for
// one batched commit.
func (c *Conn) write1(pkt []byte, now time.Duration, stage *[]simnet.Pending[respPayload]) error {
	n := c.net

	// Transport-fault windows: a faulted write fails before the probe
	// enters the network at all — not counted as sent, no impairment
	// draws consumed, so zero-fault runs are bit-identical.
	if im := &n.topo.P.Impair; im.HasFaults() && im.WriteFault(now, c.vantage) {
		n.Stats.WriteFaults.Add(1)
		return &simnet.TransientError{Op: "write"}
	}

	n.Stats.ProbesSent.Add(1)
	var hdr probe6.Header
	if err := hdr.Unmarshal(pkt); err != nil || len(pkt) < probe6.HeaderLen+8 {
		if err == nil {
			err = probe6.ErrTruncated
		}
		return err
	}
	if hdr.HopLimit == 0 {
		return nil
	}

	// Outbound impairments: a lost probe never reaches a hop (no resolve,
	// no rate-limit debit); a duplicated probe traverses the network twice.
	copies := 1
	if c.imp != nil {
		copies = c.imp.ProbeFate(&n.topo.P.Impair)
		if copies == 0 {
			n.Stats.ProbesLost.Add(1)
			return nil
		}
		if copies == 2 {
			n.Stats.Duplicates.Add(1)
		}
	}

	hop := n.topo.ResolveFrom(c.vantage, hdr.Dst, hdr.HopLimit)
	switch hop.Kind {
	case HopNone:
		n.Stats.NoRoute.Add(uint64(copies))
		return nil
	case HopSilentRouter, HopDestSilent:
		n.Stats.Silent.Add(uint64(copies))
		return nil
	}
	var transport [8]byte
	copy(transport[:], pkt[probe6.HeaderLen:probe6.HeaderLen+8])
	quote := hdr
	quote.HopLimit = hop.Residual

	resp := respPayload{
		unreach:   hop.Kind == HopDest,
		hop:       hop.Addr,
		quote:     quote,
		transport: transport,
	}
	at := now + n.rtt(hop.Depth, n.topo.hash(addrWord(hdr.Dst), uint64(hdr.HopLimit), uint64(now)))
	for i := 0; i < copies; i++ {
		// Each duplicate debits the responder's ICMP budget separately.
		if !n.allowICMP(hop.Addr, now) {
			n.Stats.RateLimited.Add(1)
			continue
		}
		if err := c.deliver(resp, at, stage); err != nil {
			return err
		}
	}
	return nil
}

// deliver schedules one emitted response for delivery to the inbox,
// applying inbound impairments when enabled. With impairments off it is
// exactly the pre-impairment scheduling path. With stage non-nil the
// surviving response is appended there instead — same fault and
// impairment draws, commit deferred to the caller.
func (c *Conn) deliver(resp respPayload, at time.Duration, stage *[]simnet.Pending[respPayload]) error {
	if im := &c.net.topo.P.Impair; im.HasFaults() {
		adj, dropped := im.DeliveryFault(at, c.vantage)
		if dropped {
			c.net.Stats.FaultDropped.Add(1)
			return nil
		}
		if adj != at {
			c.net.Stats.FaultStalled.Add(1)
			at = adj
		}
	}
	if stage != nil {
		if p, ok := simnet.StageResponse(c.imp, &c.net.topo.P.Impair,
			&c.net.Stats.DeliveryStats, resp, at); ok {
			*stage = append(*stage, p)
		}
		return nil
	}
	if !simnet.ScheduleResponse(c.inbox, c.imp, &c.net.topo.P.Impair,
		&c.net.Stats.DeliveryStats, resp, at) {
		return ErrClosed
	}
	return nil
}

// ReadPacket blocks for the next deliverable response.
func (c *Conn) ReadPacket(buf []byte) (int, error) {
	p, ok := c.inbox.Next()
	if !ok {
		return 0, io.EOF
	}
	return c.materialize(buf, &p), nil
}

// ReadBatch is the batch form of ReadPacket (recvmmsg shape): it blocks
// until a response is deliverable, then fills bufs[i]/sizes[i] with every
// response already deliverable at that instant, in ReadPacket order, up
// to len(bufs). (0, io.EOF) once closed and drained; one reader only.
func (c *Conn) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	if len(c.rdScratch) < len(bufs) {
		c.rdScratch = make([]respPayload, len(bufs))
	}
	k, ok := c.inbox.NextBatch(c.rdScratch[:len(bufs)])
	if !ok {
		return 0, io.EOF
	}
	for i := 0; i < k; i++ {
		sizes[i] = c.materialize(bufs[i], &c.rdScratch[i])
	}
	return k, nil
}

// Reader is a per-receiver read handle on the Conn (the IPv6 twin of
// netsim's): each receive worker of a sharded receive pipeline holds its
// own Reader so R workers can drain the same inbox concurrently.
type Reader struct {
	c       *Conn
	rd      *simnet.Reader[respPayload]
	scratch []respPayload // ReadBatch staging, owned by this handle's worker
}

// NewReader opens a read handle.
func (c *Conn) NewReader() *Reader {
	return &Reader{c: c, rd: c.inbox.NewReader()}
}

// ReadPacket is Conn.ReadPacket on this handle; it returns (0, nil) when
// the wait was interrupted by Wake before a response became deliverable.
func (r *Reader) ReadPacket(buf []byte) (int, error) {
	p, ok, eof := r.rd.Next()
	if eof {
		return 0, io.EOF
	}
	if !ok {
		return 0, nil
	}
	return r.c.materialize(buf, &p), nil
}

// ReadBatch is Conn.ReadBatch on this handle, with the Reader extension:
// it returns (0, nil) when the wait was interrupted by Wake before any
// response became deliverable.
func (r *Reader) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	if len(r.scratch) < len(bufs) {
		r.scratch = make([]respPayload, len(bufs))
	}
	k, eof := r.rd.NextBatch(r.scratch[:len(bufs)])
	if eof {
		return 0, io.EOF
	}
	for i := 0; i < k; i++ {
		sizes[i] = r.c.materialize(bufs[i], &r.scratch[i])
	}
	return k, nil
}

// Wake interrupts this handle's blocked (or next) ReadPacket.
func (r *Reader) Wake() { r.rd.Wake() }

func (c *Conn) materialize(buf []byte, p *respPayload) int {
	total := probe6.HeaderLen + probe6.ICMPErrorLen
	outer := probe6.Header{
		PayloadLength: probe6.ICMPErrorLen,
		NextHeader:    probe6.ProtoICMPv6,
		HopLimit:      64,
		Src:           p.hop,
		Dst:           c.net.topo.vantage,
	}
	outer.Marshal(buf)
	icmpType, code := uint8(probe6.ICMP6TypeTimeExceeded), uint8(probe6.ICMP6CodeHopLimit)
	if p.unreach {
		icmpType, code = probe6.ICMP6TypeDestUnreachable, probe6.ICMP6CodePortUnreachable
	}
	q := p.quote
	probe6.MarshalICMPError(buf[probe6.HeaderLen:], icmpType, code, &q, p.transport[:])
	return total
}

// Close closes the connection; buffered responses drain, then EOF.
func (c *Conn) Close() error {
	c.inbox.Close()
	return nil
}

// Pending returns the number of scheduled, not yet read responses.
func (c *Conn) Pending() int { return c.inbox.Len() }
