// Package simclock provides pluggable time for the probing engines and the
// network simulator.
//
// Every quantity FlashRoute's evaluation reports — scan time, probing rate,
// round pacing, ICMP rate-limit windows, RTTs — is a function of time. To
// reproduce the paper's full-/24-scale experiments on one machine we run
// the engines against a deterministic virtual clock: time advances only
// when every registered actor (sender thread, receiver thread, ...) is
// blocked, and it jumps straight to the earliest instant at which any of
// them can make progress. The same engines run unmodified against the real
// clock (used for the maximum-probing-rate experiment, paper Table 5, and
// for live deployments).
//
// The coordination primitive is the Parker: a blocking site that can be
// released either by a deadline (virtual or real) or by an explicit Unpark
// from another actor (e.g. the simulator delivering a packet to a blocked
// reader). Unpark means "wake up and re-evaluate your condition", so
// spurious wakeups are always safe.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal interface engine code paces itself with.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling actor for d.
	Sleep(d time.Duration)
}

// Waiter extends Clock with actor registration and parking. The virtual
// clock needs to know how many actors exist so it can tell "everyone is
// blocked, advance time" from "someone is still running".
type Waiter interface {
	Clock
	// AddActor registers one more concurrently running actor. Call it
	// before starting the actor's goroutine.
	AddActor()
	// DoneActor unregisters an actor. Call it when the actor exits.
	DoneActor()
	// NewParker allocates a blocking site for use with Park/Unpark.
	NewParker() *Parker
	// Park blocks the calling actor until Unpark is called on p or until
	// deadline (if nonzero) is reached. It reports whether the wakeup was
	// an explicit Unpark.
	Park(p *Parker, deadline time.Time) (unparked bool)
	// Unpark releases an actor blocked on p, or records the signal if the
	// actor parks later... it never blocks.
	Unpark(p *Parker)
}

// Parker is a blocking site managed by a Waiter. A Parker must not be
// shared by two actors blocking at the same time.
type Parker struct {
	// virtual-clock fields, guarded by Virtual.mu
	woken    bool
	deadline int64 // ns since base; 0 = none
	active   bool

	// real-clock field
	ch chan struct{}
}

// Virtual is a deterministic simulated clock. The zero value is not
// usable; use NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	cond   *sync.Cond
	base   time.Time
	now    int64 // ns since base
	actors int
	parked []*Parker
}

var _ Waiter = (*Virtual)(nil)

// NewVirtual returns a virtual clock whose epoch is start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{base: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.base.Add(time.Duration(v.now))
}

// Elapsed returns how much virtual time has passed since the epoch.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return time.Duration(v.now)
}

// AddActor registers a running actor.
func (v *Virtual) AddActor() {
	v.mu.Lock()
	v.actors++
	v.mu.Unlock()
}

// DoneActor unregisters an actor and, if everyone remaining is parked,
// advances time.
func (v *Virtual) DoneActor() {
	v.mu.Lock()
	v.actors--
	if v.actors < 0 {
		v.mu.Unlock()
		panic("simclock: DoneActor without matching AddActor")
	}
	if msg := v.maybeAdvance(); msg != "" {
		v.mu.Unlock()
		panic(msg)
	}
	v.mu.Unlock()
}

// NewParker allocates a parking site.
func (v *Virtual) NewParker() *Parker { return &Parker{} }

// Sleep advances the actor past d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	var p Parker
	v.mu.Lock()
	v.parkLocked(&p, v.now+int64(d))
	v.mu.Unlock()
}

// Park blocks until Unpark(p) or the deadline.
func (v *Virtual) Park(p *Parker, deadline time.Time) bool {
	var dl int64
	if !deadline.IsZero() {
		dl = int64(deadline.Sub(v.base))
		if dl == 0 {
			dl = 1 // distinguish "epoch deadline" from "no deadline"
		}
	}
	v.mu.Lock()
	unparked := v.parkLocked(p, dl)
	v.mu.Unlock()
	return unparked
}

// parkLocked blocks the calling actor with v.mu held. dl==0 means no
// deadline. It returns whether the wakeup was an explicit Unpark.
func (v *Virtual) parkLocked(p *Parker, dl int64) bool {
	if p.active {
		panic("simclock: Parker parked twice concurrently")
	}
	if p.woken {
		// An Unpark arrived between the caller's condition check and this
		// park; consume it immediately.
		p.woken = false
		return true
	}
	if dl != 0 && v.now >= dl {
		return false
	}
	p.deadline = dl
	p.active = true
	v.parked = append(v.parked, p)
	if msg := v.maybeAdvance(); msg != "" {
		v.removeParked(p)
		p.active = false
		v.mu.Unlock()
		panic(msg)
	}
	for !p.woken && (dl == 0 || v.now < dl) {
		v.cond.Wait()
	}
	v.removeParked(p)
	p.active = false
	unparked := p.woken
	p.woken = false
	return unparked
}

// Unpark wakes the actor blocked on p (or marks the signal for the next
// Park if none is blocked yet).
func (v *Virtual) Unpark(p *Parker) {
	v.mu.Lock()
	p.woken = true
	v.cond.Broadcast()
	v.mu.Unlock()
}

func (v *Virtual) removeParked(p *Parker) {
	for i, q := range v.parked {
		if q == p {
			last := len(v.parked) - 1
			v.parked[i] = v.parked[last]
			v.parked[last] = nil
			v.parked = v.parked[:last]
			return
		}
	}
}

// maybeAdvance jumps virtual time forward when every registered actor is
// parked. Must be called with v.mu held. A non-empty return value is a
// deadlock diagnostic; the caller must release v.mu and panic with it
// (panicking here would leave the mutex held and hang other actors).
func (v *Virtual) maybeAdvance() string {
	if v.actors == 0 || len(v.parked) < v.actors {
		return ""
	}
	min := int64(0)
	for _, p := range v.parked {
		if p.woken {
			// Someone has a pending wake; no advance needed, the broadcast
			// from Unpark handles it.
			return ""
		}
		if p.deadline != 0 && (min == 0 || p.deadline < min) {
			min = p.deadline
		}
	}
	if min == 0 {
		return fmt.Sprintf("simclock: deadlock — all %d actors parked with no deadline", v.actors)
	}
	if min > v.now {
		v.now = min
	}
	v.cond.Broadcast()
	return ""
}

// Real is the wall clock. Its Park/Unpark use channels and timers.
type Real struct{}

var _ Waiter = (*Real)(nil)

// NewReal returns the wall-clock Waiter.
func NewReal() *Real { return &Real{} }

// Now returns time.Now().
func (*Real) Now() time.Time { return time.Now() }

// Sleep delegates to time.Sleep.
func (*Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// AddActor is a no-op for the real clock.
func (*Real) AddActor() {}

// DoneActor is a no-op for the real clock.
func (*Real) DoneActor() {}

// NewParker allocates a parking site backed by a channel.
func (*Real) NewParker() *Parker {
	return &Parker{ch: make(chan struct{}, 1)}
}

// Park blocks on the parker's channel, optionally with a deadline.
func (*Real) Park(p *Parker, deadline time.Time) bool {
	if deadline.IsZero() {
		<-p.ch
		return true
	}
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ch:
		return true
	case <-t.C:
		return false
	}
}

// Unpark signals the parker; the signal is retained if no one is parked.
func (*Real) Unpark(p *Parker) {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}
