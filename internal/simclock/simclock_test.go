package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualSleepSingleActor(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	v.Sleep(10 * time.Millisecond)
	v.Sleep(5 * time.Millisecond)
	if got := v.Elapsed(); got != 15*time.Millisecond {
		t.Fatalf("elapsed=%v want 15ms", got)
	}
}

func TestVirtualSleepZeroAndNegative(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Elapsed(); got != 0 {
		t.Fatalf("elapsed=%v want 0", got)
	}
}

func TestVirtualTwoActorsInterleave(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var order []int
	var mu sync.Mutex
	record := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	v.AddActor()
	v.AddActor()
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer v.DoneActor()
		for i := 0; i < 3; i++ {
			v.Sleep(10 * time.Millisecond) // wakes at 10, 20, 30
			record(1)
		}
	}()
	go func() {
		defer wg.Done()
		defer v.DoneActor()
		for i := 0; i < 2; i++ {
			v.Sleep(15 * time.Millisecond) // wakes at 15, 30
			record(2)
		}
	}()
	wg.Wait()
	if got := v.Elapsed(); got != 30*time.Millisecond {
		t.Fatalf("elapsed=%v want 30ms", got)
	}
	// The first three wakeups are strictly ordered: 10(1), 15(2), 20(1).
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 1}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order=%v want prefix %v", order, want)
		}
	}
}

func TestVirtualParkUnpark(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	p := v.NewParker()
	var delivered atomic.Bool
	v.AddActor()
	v.AddActor()
	done := make(chan bool, 1)
	go func() {
		defer v.DoneActor()
		unparked := v.Park(p, time.Time{}) // no deadline; must be unparked
		done <- unparked
	}()
	go func() {
		defer v.DoneActor()
		v.Sleep(time.Second)
		delivered.Store(true)
		v.Unpark(p)
	}()
	if got := <-done; !got {
		t.Fatal("Park returned without Unpark")
	}
	if !delivered.Load() {
		t.Fatal("woke before Unpark")
	}
	if v.Elapsed() != time.Second {
		t.Fatalf("elapsed=%v want 1s", v.Elapsed())
	}
}

func TestVirtualParkDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := v.NewParker()
	unparked := v.Park(p, v.Now().Add(50*time.Millisecond))
	if unparked {
		t.Fatal("expected deadline wake")
	}
	if v.Elapsed() != 50*time.Millisecond {
		t.Fatalf("elapsed=%v", v.Elapsed())
	}
}

func TestVirtualPendingUnparkConsumed(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := v.NewParker()
	v.Unpark(p) // signal before parking
	if !v.Park(p, v.Now().Add(time.Hour)) {
		t.Fatal("pending unpark not consumed")
	}
	if v.Elapsed() != 0 {
		t.Fatalf("park should not have advanced time, elapsed=%v", v.Elapsed())
	}
}

func TestVirtualParkExpiredDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	v.Sleep(time.Second)
	p := v.NewParker()
	if v.Park(p, v.Now().Add(-time.Millisecond)) {
		t.Fatal("expired deadline should return false")
	}
	if v.Elapsed() != time.Second {
		t.Fatalf("elapsed=%v", v.Elapsed())
	}
}

func TestVirtualDeadlockPanics(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.AddActor()
	p := v.NewParker()
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
		v.DoneActor()
	}()
	v.Park(p, time.Time{}) // sole actor, no deadline, no one to unpark
}

func TestVirtualManyActorsDeterministic(t *testing.T) {
	run := func() time.Duration {
		v := NewVirtual(time.Unix(0, 0))
		var wg sync.WaitGroup
		for a := 0; a < 8; a++ {
			v.AddActor()
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				defer v.DoneActor()
				for i := 0; i < 100; i++ {
					v.Sleep(time.Duration(a+1) * time.Millisecond)
				}
			}(a)
		}
		wg.Wait()
		return v.Elapsed()
	}
	first := run()
	if first != 800*time.Millisecond {
		t.Fatalf("elapsed=%v want 800ms (slowest actor: 100 x 8ms)", first)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: %v vs %v", got, first)
		}
	}
}

func TestRealClockSmoke(t *testing.T) {
	r := NewReal()
	start := r.Now()
	r.Sleep(10 * time.Millisecond)
	if e := r.Now().Sub(start); e < 9*time.Millisecond {
		t.Fatalf("real sleep too short: %v", e)
	}
	p := r.NewParker()
	go func() { r.Unpark(p) }()
	if !r.Park(p, time.Now().Add(5*time.Second)) {
		t.Fatal("real unpark lost")
	}
	if r.Park(p, time.Now().Add(20*time.Millisecond)) {
		t.Fatal("expected real deadline wake")
	}
}

func TestRealPendingUnpark(t *testing.T) {
	r := NewReal()
	p := r.NewParker()
	r.Unpark(p)
	r.Unpark(p) // double signal collapses into one
	if !r.Park(p, time.Time{}) {
		t.Fatal("pending unpark not consumed")
	}
}

func TestVirtualNowMatchesBase(t *testing.T) {
	base := time.Date(2020, 10, 27, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(base)
	v.AddActor()
	defer v.DoneActor()
	v.Sleep(90 * time.Second)
	if want := base.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now=%v want %v", v.Now(), want)
	}
}
