package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// seal writes a representative field mix and returns the sealed bytes.
func seal(version uint16) []byte {
	w := NewWriter(version)
	w.U8(7)
	w.Bool(true)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Bytes([]byte("hello"))
	w.Raw([]byte{1, 2, 3, 4})
	return w.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := seal(3)
	r, err := NewReader(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() {
		t.Error("Bool = false")
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Raw(4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Raw = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("Err after full read: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

// TestTruncated: chopping the snapshot anywhere must be rejected at
// NewReader — either as too short or as a checksum mismatch — never
// accepted.
func TestTruncated(t *testing.T) {
	data := seal(1)
	for cut := 0; cut < len(data); cut++ {
		_, err := NewReader(data[:cut], 1)
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
			!errors.Is(err, ErrBadMagic) {
			t.Fatalf("truncation to %d bytes: unexpected error %v", cut, err)
		}
	}
}

// TestBitFlip: flipping any single bit must fail the checksum (or the
// magic, for flips in the first four bytes).
func TestBitFlip(t *testing.T) {
	data := seal(1)
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x10
		_, err := NewReader(corrupt, 1)
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestWrongVersion(t *testing.T) {
	data := seal(2)
	if _, err := NewReader(data, 3); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 2 read as 3: %v", err)
	}
	if _, err := NewReader(data, 2); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := seal(1)
	data[0] = 'X'
	if _, err := NewReader(data, 1); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
}

// TestOverrunSticky: reading past the payload sets a sticky error and
// returns zero values rather than panicking.
func TestOverrunSticky(t *testing.T) {
	w := NewWriter(1)
	w.U8(5)
	r, err := NewReader(w.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 5 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("overrun U64 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Error stays sticky; further reads keep returning zeros.
	if got := r.U32(); got != 0 {
		t.Fatalf("post-error U32 = %d", got)
	}
}

// TestEmptyPayload: a header+trailer-only snapshot is valid and empty.
func TestEmptyPayload(t *testing.T) {
	r, err := NewReader(NewWriter(9).Finish(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}
