// Package snapshot is the low-level codec under the engine's
// checkpoint/resume support: a versioned, checksummed, append-only binary
// format with typed accessors.
//
// The format is deliberately simple — a fixed header, a flat sequence of
// fixed-width little-endian fields and length-prefixed byte strings, and a
// trailing CRC32 over everything before it:
//
//	magic   [4]byte  "FRCP"
//	version uint16
//	payload ...      (writer-defined field sequence)
//	crc32   uint32   IEEE, over magic+version+payload
//
// There is no field tagging or schema negotiation: a snapshot is only
// meaningful to the exact code that wrote it, so the version number is the
// schema and any mismatch is a hard error. Corruption detection, not
// recovery, is the goal — a truncated or bit-flipped snapshot must fail
// loudly before any state is restored, never yield a partial resume.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a snapshot file.
var Magic = [4]byte{'F', 'R', 'C', 'P'}

// Codec errors. Decoding wraps them with context; use errors.Is.
var (
	// ErrTruncated: the data ends before a declared field or the trailer.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrBadMagic: the data does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrChecksum: the trailing CRC32 does not match the content.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrVersion: the snapshot was written by a different format version.
	ErrVersion = errors.New("snapshot: version mismatch")
)

// headerLen is magic + version; trailerLen the CRC32.
const (
	headerLen  = 4 + 2
	trailerLen = 4
)

// Writer accumulates a snapshot payload and seals it with the checksum.
type Writer struct {
	buf []byte
}

// NewWriter starts a snapshot at the given format version.
func NewWriter(version uint16) *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, Magic[:]...)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, version)
	return w
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bytes appends a uint32 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends b with no length prefix (fixed-width fields the reader
// knows the size of, e.g. addresses).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Finish appends the CRC32 trailer and returns the sealed snapshot. The
// Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf
}

// Reader decodes a sealed snapshot. All validation — length, magic,
// checksum, version — happens in NewReader, so by the time the typed
// getters run, the bytes are known-good; getters only fail on overrun
// (a writer/reader schema disagreement), and the error is sticky.
type Reader struct {
	buf []byte // payload only (header and trailer stripped)
	off int
	err error
}

// NewReader validates data (length, magic, CRC32, version) and returns a
// payload reader positioned at the first field.
func NewReader(data []byte, wantVersion uint16) (*Reader, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != wantVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d",
			ErrVersion, v, wantVersion)
	}
	return &Reader{buf: body[headerLen:]}, nil
}

// Err returns the first decoding error (overrun), if any. Callers check
// it once after reading a batch of fields.
func (r *Reader) Err() error { return r.err }

// take returns the next n payload bytes, or nil after setting the sticky
// error on overrun.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: field overruns payload at offset %d", ErrTruncated, r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool reads a one-byte boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bytes reads a uint32-length-prefixed byte string. The returned slice
// aliases the snapshot buffer; copy it to retain past the decode.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	return r.take(int(n))
}

// Raw reads n bytes with no length prefix. The returned slice aliases the
// snapshot buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Remaining reports how many unread payload bytes are left (schema
// self-checks at the end of a decode).
func (r *Reader) Remaining() int { return len(r.buf) - r.off }
