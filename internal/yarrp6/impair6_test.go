package yarrp6

import (
	"testing"

	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/simclock"
)

// lockstep6 builds a simulation whose replies are a pure function of the
// probe set: no per-interface ICMP rate limiting, no RTT jitter. Runs
// that only add packet loss or duplication then compare structurally.
func lockstep6(t testing.TB, prefixes, perPrefix int, seed int64) (*netsim6.Topology, *netsim6.Net, *simclock.Virtual) {
	t.Helper()
	topo, n, clock := sim(t, prefixes, perPrefix, seed)
	topo.P.ICMPRateLimitPPS = 0
	topo.P.JitterRTT = 0
	return topo, n, clock
}

func runYarrp6(t testing.TB, topo *netsim6.Topology, n *netsim6.Net, clock *simclock.Virtual,
	mutate func(*Config)) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Targets = topo.Targets()
	cfg.Source = topo.Vantage()
	cfg.PPS = 50_000
	if mutate != nil {
		mutate(&cfg)
	}
	sc, err := NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestYarrp6LossMonotonicity: the exhaustive sweep probes a fixed
// (target, hop-limit) set and fill probes chain only off received
// replies, so in lockstep every probe a lossy run sends the clean run
// sends too — loss can only shrink what Yarrp6 discovers, never change
// it.
func TestYarrp6LossMonotonicity(t *testing.T) {
	topoC, netC, clockC := lockstep6(t, 256, 8, 3)
	clean := runYarrp6(t, topoC, netC, clockC, nil)

	topoL, netL, clockL := lockstep6(t, 256, 8, 3)
	topoL.P.Impair = netsim6.Impairments{LossProb: 0.20}
	lossy := runYarrp6(t, topoL, netL, clockL, nil)

	if netL.Stats.ProbesLost.Load() == 0 || netL.Stats.RepliesLost.Load() == 0 {
		t.Fatal("loss impairment not exercised")
	}
	for _, a := range lossy.Interfaces() {
		if !clean.HasInterface(a) {
			t.Errorf("interface %s discovered only under loss", a)
		}
	}
	for _, dst := range topoL.Targets() {
		if lossy.HasReached(dst) && !clean.HasReached(dst) {
			t.Errorf("target %s reached only under loss", dst)
		}
	}
	if lossy.InterfaceCount() >= clean.InterfaceCount() {
		t.Errorf("20%% loss did not shrink discovery: lossy=%d clean=%d",
			lossy.InterfaceCount(), clean.InterfaceCount())
	}
	if lossy.FillProbes >= clean.FillProbes {
		t.Errorf("loss did not shrink the fill chain: lossy=%d clean=%d",
			lossy.FillProbes, clean.FillProbes)
	}
	t.Logf("clean: %d ifaces/%d fill; lossy: %d ifaces/%d fill",
		clean.InterfaceCount(), clean.FillProbes, lossy.InterfaceCount(), lossy.FillProbes)
}

// TestYarrp6DuplicateInvariance: with fill mode off the probe set is
// fixed, so duplicating every packet multiplies replies but cannot change
// the discovered interface or reached sets. (Fill mode is excluded
// deliberately: stateless fill re-probes per received reply, so
// duplication inflates the fill chain — the statelessness cost the
// FlashRoute6 duplicate guard avoids.)
func TestYarrp6DuplicateInvariance(t *testing.T) {
	noFill := func(c *Config) { c.FillMode = false }

	topoC, netC, clockC := lockstep6(t, 256, 8, 5)
	clean := runYarrp6(t, topoC, netC, clockC, noFill)

	topoD, netD, clockD := lockstep6(t, 256, 8, 5)
	topoD.P.Impair = netsim6.Impairments{DupProb: 1}
	duped := runYarrp6(t, topoD, netD, clockD, noFill)

	if netD.Stats.Duplicates.Load() == 0 {
		t.Fatal("duplication impairment not exercised")
	}
	if clean.ProbesSent != duped.ProbesSent {
		t.Errorf("fill-off probe counts differ: clean=%d duped=%d",
			clean.ProbesSent, duped.ProbesSent)
	}
	ci, di := clean.Interfaces(), duped.Interfaces()
	if len(ci) != len(di) {
		t.Fatalf("interface counts differ: clean=%d duped=%d", len(ci), len(di))
	}
	for k := range ci {
		if ci[k] != di[k] {
			t.Fatalf("interface sets diverge at %d: %s vs %s", k, ci[k], di[k])
		}
	}
	if clean.ReachedCount() != duped.ReachedCount() {
		t.Fatalf("reached counts differ: clean=%d duped=%d",
			clean.ReachedCount(), duped.ReachedCount())
	}
	for _, dst := range topoD.Targets() {
		if clean.HasReached(dst) != duped.HasReached(dst) {
			t.Fatalf("reached sets diverge at %s", dst)
		}
	}
	t.Logf("%d interfaces, %d reached invariant under %d duplicated packets",
		len(ci), clean.ReachedCount(), netD.Stats.Duplicates.Load())
}

// TestYarrp6DuplicationInflatesFill quantifies the comparison property:
// with fill on, mild duplication makes stateless Yarrp6 send extra fill
// probes for replies it has already acted on, while discovering nothing
// new.
func TestYarrp6DuplicationInflatesFill(t *testing.T) {
	topoC, netC, clockC := lockstep6(t, 256, 8, 7)
	clean := runYarrp6(t, topoC, netC, clockC, nil)

	topoD, netD, clockD := lockstep6(t, 256, 8, 7)
	topoD.P.Impair = netsim6.Impairments{DupProb: 0.05}
	duped := runYarrp6(t, topoD, netD, clockD, nil)

	if netD.Stats.Duplicates.Load() == 0 {
		t.Fatal("duplication impairment not exercised")
	}
	if duped.FillProbes <= clean.FillProbes {
		t.Errorf("duplication did not inflate the fill chain: duped=%d clean=%d",
			duped.FillProbes, clean.FillProbes)
	}
	for _, a := range duped.Interfaces() {
		if !clean.HasInterface(a) {
			t.Errorf("interface %s discovered only under duplication", a)
		}
	}
	t.Logf("fill probes: clean=%d duped=%d (+%d) for the same %d interfaces",
		clean.FillProbes, duped.FillProbes, duped.FillProbes-clean.FillProbes,
		clean.InterfaceCount())
}
