// Package yarrp6 reimplements Yarrp6 (Beverly et al., IMC 2018 — the
// paper's reference [5]) as the IPv6 baseline for FlashRoute6: fully
// stateless randomized (target, hop-limit) probing over a candidate list,
// with the fill mode that paper introduced.
//
// Yarrp6 encodes its probing context the same way FlashRoute6 does —
// there is no IPv6 IPID, so the initial hop limit rides in the flow label
// and the send time in the flow label + payload length (this repository's
// probe6 encoding is shared; Yarrp6's actual format differs in detail but
// carries the same information).
package yarrp6

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/permute"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

// PacketConn is the raw IPv6 network access.
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// Config parameterizes a Yarrp6 scan.
type Config struct {
	Targets []probe6.Addr
	Source  probe6.Addr

	// MinTTL..MaxTTL is probed exhaustively for every target; FillMode
	// extends sequentially beyond MaxTTL up to FillMax with Yarrp's
	// inherent gap limit of one.
	MinTTL   uint8
	MaxTTL   uint8
	FillMode bool
	FillMax  uint8

	PPS int

	CollectInterfaces bool // kept for symmetry; interfaces always counted
	Seed              int64
	DrainWait         time.Duration
}

// DefaultConfig returns the Yarrp6 configuration used for comparisons:
// exhaustive hop limits 1..16 with fill to 32 (the IMC 2018 paper's
// recommended IPv6 regime).
func DefaultConfig() Config {
	return Config{
		MinTTL:    1,
		MaxTTL:    16,
		FillMode:  true,
		FillMax:   32,
		PPS:       100_000,
		DrainWait: 2 * time.Second,
	}
}

// Result is what a scan produced.
type Result struct {
	ProbesSent uint64
	FillProbes uint64
	ScanTime   time.Duration

	interfaces map[probe6.Addr]struct{}
	reached    map[probe6.Addr]struct{}
}

// InterfaceCount returns the unique router interfaces discovered.
func (r *Result) InterfaceCount() int { return len(r.interfaces) }

// HasInterface reports whether addr was discovered.
func (r *Result) HasInterface(a probe6.Addr) bool {
	_, ok := r.interfaces[a]
	return ok
}

// Interfaces returns the discovered router interfaces in ascending
// address order.
func (r *Result) Interfaces() []probe6.Addr {
	out := make([]probe6.Addr, 0, len(r.interfaces))
	for a := range r.interfaces {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// ReachedCount returns how many targets answered.
func (r *Result) ReachedCount() int { return len(r.reached) }

// HasReached reports whether the target answered.
func (r *Result) HasReached(a probe6.Addr) bool {
	_, ok := r.reached[a]
	return ok
}

// Scanner runs Yarrp6 scans.
type Scanner struct {
	cfg   Config
	conn  PacketConn
	clock simclock.Waiter
	start time.Time

	res *Result

	probesSent   uint64
	fillProbes   atomic.Uint64
	unparsed     atomic.Uint64
	paceCount    int
	paceBatch    int
	paceInterval time.Duration
	pktBuf       [probe6.HeaderLen + probe6.UDPHeaderLen + 64]byte
}

// NewScanner validates the configuration.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("yarrp6: Config.Targets must be non-empty")
	}
	if cfg.MinTTL < 1 || cfg.MaxTTL > probe6.MaxHopLimit || cfg.MinTTL > cfg.MaxTTL {
		return nil, errors.New("yarrp6: bad hop-limit range")
	}
	if cfg.FillMode && (cfg.FillMax < cfg.MaxTTL || cfg.FillMax > probe6.MaxHopLimit) {
		return nil, errors.New("yarrp6: FillMax must be in MaxTTL..32")
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	s := &Scanner{
		cfg:   cfg,
		conn:  conn,
		clock: clock,
		res: &Result{
			interfaces: make(map[probe6.Addr]struct{}),
			reached:    make(map[probe6.Addr]struct{}),
		},
	}
	if cfg.PPS > 0 {
		s.paceBatch = cfg.PPS / 200
		if s.paceBatch < 1 {
			s.paceBatch = 1
		}
		s.paceInterval = time.Duration(int64(time.Second) * int64(s.paceBatch) / int64(cfg.PPS))
	}
	return s, nil
}

// Run executes the scan (same actor contract as the other engines).
func (s *Scanner) Run() (*Result, error) {
	s.start = s.clock.Now()

	s.clock.AddActor()
	s.clock.AddActor()
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		defer s.clock.DoneActor()
		s.receiveLoop()
	}()

	ttlRange := uint64(s.cfg.MaxTTL-s.cfg.MinTTL) + 1
	perm := permute.NewFeistel(uint64(len(s.cfg.Targets))*ttlRange, uint64(s.cfg.Seed)^0x66aa2b4c)
	it := permute.NewIterator(perm)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		target := s.cfg.Targets[v/ttlRange]
		ttl := s.cfg.MinTTL + uint8(v%ttlRange)
		s.sendProbe(target, ttl, false)
	}
	s.clock.Sleep(s.cfg.DrainWait)

	s.res.ProbesSent = s.probesSent + s.fillProbes.Load()
	s.res.FillProbes = s.fillProbes.Load()
	s.res.ScanTime = s.clock.Now().Sub(s.start)
	s.conn.Close()
	s.clock.DoneActor()
	<-recvDone
	return s.res, nil
}

func (s *Scanner) sendProbe(dst probe6.Addr, ttl uint8, fill bool) {
	elapsed := s.clock.Now().Sub(s.start)
	n := probe6.BuildProbe(s.pktBuf[:], s.cfg.Source, dst, ttl, false,
		elapsed, 0, probe6.TracerouteDstPort)
	_ = s.conn.WritePacket(s.pktBuf[:n])
	if fill {
		s.fillProbes.Add(1)
		return
	}
	s.probesSent++
	if s.paceBatch > 0 {
		s.paceCount++
		if s.paceCount >= s.paceBatch {
			s.paceCount = 0
			s.clock.Sleep(s.paceInterval)
		}
	}
}

func (s *Scanner) receiveLoop() {
	var buf [4096]byte
	var fillBuf [probe6.HeaderLen + probe6.UDPHeaderLen + 64]byte
	for {
		n, err := s.conn.ReadPacket(buf[:])
		if err != nil {
			if err != io.EOF {
				s.unparsed.Add(1)
			}
			return
		}
		s.handle(buf[:n], fillBuf[:])
	}
}

func (s *Scanner) handle(pkt, fillBuf []byte) {
	resp, err := probe6.ParseResponse(pkt)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	fi, err := probe6.ParseQuote(&resp.ICMP)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	switch {
	case resp.ICMP.IsHopLimitExceeded():
		s.res.interfaces[resp.Hop] = struct{}{}
		// Fill mode: extend one hop past the farthest response.
		if s.cfg.FillMode && fi.InitHopLimit >= s.cfg.MaxTTL && fi.InitHopLimit < s.cfg.FillMax {
			elapsed := s.clock.Now().Sub(s.start)
			n := probe6.BuildProbe(fillBuf, s.cfg.Source, fi.Dst, fi.InitHopLimit+1,
				false, elapsed, 0, probe6.TracerouteDstPort)
			_ = s.conn.WritePacket(fillBuf[:n])
			s.fillProbes.Add(1)
		}
	case resp.ICMP.IsUnreachable():
		s.res.reached[fi.Dst] = struct{}{}
	default:
		s.unparsed.Add(1)
	}
}
