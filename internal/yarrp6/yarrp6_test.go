package yarrp6

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/core6"
	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

func sim(t testing.TB, prefixes, perPrefix int, seed int64) (*netsim6.Topology, *netsim6.Net, *simclock.Virtual) {
	t.Helper()
	p := netsim6.DefaultParams(seed)
	p.Prefixes = prefixes
	p.TargetsPerPrefix = perPrefix
	topo := netsim6.NewTopology(p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	return topo, netsim6.New(topo, clock), clock
}

func TestYarrp6ExactBaseProbeCount(t *testing.T) {
	topo, n, clock := sim(t, 64, 4, 1)
	cfg := DefaultConfig()
	cfg.Targets = topo.Targets()
	cfg.Source = topo.Vantage()
	cfg.PPS = 50_000
	sc, err := NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(len(cfg.Targets)) * 16
	if res.ProbesSent-res.FillProbes != base {
		t.Fatalf("base probes=%d want %d", res.ProbesSent-res.FillProbes, base)
	}
	if res.InterfaceCount() == 0 || res.ReachedCount() == 0 {
		t.Fatal("empty scan")
	}
	if res.FillProbes == 0 {
		t.Fatal("fill mode sent nothing despite deep routes")
	}
	t.Logf("yarrp6: %d probes (%d fill), %d ifaces, %d reached",
		res.ProbesSent, res.FillProbes, res.InterfaceCount(), res.ReachedCount())
}

// TestFlashRoute6BeatsYarrp6 is the IPv6 analogue of Table 3: on the same
// candidate list, FlashRoute6 must discover a comparable interface set
// with substantially fewer probes.
func TestFlashRoute6BeatsYarrp6(t *testing.T) {
	topoA, netA, clockA := sim(t, 512, 8, 2)
	ycfg := DefaultConfig()
	ycfg.Targets = topoA.Targets()
	ycfg.Source = topoA.Vantage()
	ycfg.PPS = 50_000
	ysc, err := NewScanner(ycfg, netA.NewConn(), clockA)
	if err != nil {
		t.Fatal(err)
	}
	yres, err := ysc.Run()
	if err != nil {
		t.Fatal(err)
	}

	topoB, netB, clockB := sim(t, 512, 8, 2)
	fcfg := core6.DefaultConfig()
	fcfg.Targets = topoB.Targets()
	fcfg.Source = topoB.Vantage()
	fcfg.PPS = 50_000
	fsc, err := core6.NewScanner(fcfg, netB.NewConn(), clockB)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fsc.Run()
	if err != nil {
		t.Fatal(err)
	}

	if fres.ProbesSent*2 >= yres.ProbesSent {
		t.Fatalf("FlashRoute6 should use <50%% of Yarrp6's probes: %d vs %d",
			fres.ProbesSent, yres.ProbesSent)
	}
	if float64(fres.InterfaceCount()) < 0.9*float64(yres.InterfaceCount()) {
		t.Fatalf("FlashRoute6 lost too many interfaces: %d vs %d",
			fres.InterfaceCount(), yres.InterfaceCount())
	}
	t.Logf("yarrp6: %d probes/%d ifaces; flashroute6: %d probes/%d ifaces (%.0f%% of probes)",
		yres.ProbesSent, yres.InterfaceCount(), fres.ProbesSent, fres.InterfaceCount(),
		100*float64(fres.ProbesSent)/float64(yres.ProbesSent))
}

func TestYarrp6Validation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := NewScanner(Config{}, nil, clock); err == nil {
		t.Fatal("empty targets accepted")
	}
	cfg := DefaultConfig()
	cfg.Targets = make([]probe6.Addr, 1)
	cfg.FillMax = 8
	if _, err := NewScanner(cfg, nil, clock); err == nil {
		t.Fatal("bad FillMax accepted")
	}
}
