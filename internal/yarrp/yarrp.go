// Package yarrp reimplements the Yarrp scanner (Beverly, IMC 2016; Yarrp6,
// IMC 2018) as the paper's baseline: fully stateless, randomized
// (destination, TTL) probing at high rate.
//
// Reproduced behaviours, faithful to the baseline rather than charitable:
//
//   - a keyed random permutation over the (block, TTL) space issues every
//     probe exactly once with O(1) state (the ZMap-derived design);
//   - Paris-TCP-ACK probes by default; the UDP mode reproduces the probe
//     encoding whose packet-length field outgrows the MTU on long scans
//     ("Message too long", paper §4.2.1 footnote 2);
//   - fill mode (Yarrp-16): TTLs 1..MaxTTL are probed exhaustively and
//     hops beyond MaxTTL are probed one at a time, each triggered by the
//     response from the previous one — which implies an inherent gap limit
//     of one silent hop (paper §4.2.1);
//   - neighborhood protection: probes within k hops of the vantage point
//     are suppressed once no new interface has been seen at that distance
//     for a timeout (paper §4.2.1).
package yarrp

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/permute"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// PacketConn is the raw network access Yarrp needs (identical to
// FlashRoute's; both run over internal/netsim or a raw socket).
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// ProbeType selects the probe flavor.
type ProbeType int

const (
	// TCPAck is Yarrp's default Paris-TCP-ACK probe.
	TCPAck ProbeType = iota
	// UDP reproduces Yarrp's UDP mode including its elapsed-time encoding
	// flaw; long scans fail with probe.ErrMessageTooLong.
	UDP
)

// Config parameterizes a Yarrp scan.
type Config struct {
	// Blocks, Targets, BlockOf and Source define the scanned universe,
	// as in the FlashRoute engine.
	Blocks  int
	Targets func(block int) uint32
	BlockOf func(addr uint32) (int, bool)
	Source  uint32

	// ProbeType selects TCP-ACK (default) or UDP probes.
	ProbeType ProbeType

	// MinTTL..MaxTTL is the exhaustively probed range (Yarrp-32: 1..32;
	// Yarrp-16: 1..16 with FillMode).
	MinTTL uint8
	MaxTTL uint8

	// FillMode sequentially extends probing beyond MaxTTL up to FillMax,
	// one hop per received farthest-hop response (Yarrp6's fill mode).
	FillMode bool
	FillMax  uint8

	// PPS is the probing rate; <= 0 disables throttling.
	PPS int

	// NeighborhoodLimit enables k-hop neighborhood protection when > 0:
	// probes at TTL <= k are skipped once no new interface has appeared
	// at that TTL for NeighborhoodTimeout (default 30 s).
	NeighborhoodLimit   uint8
	NeighborhoodTimeout time.Duration

	// CollectRoutes keeps per-destination hop lists.
	CollectRoutes bool
	// Observer sees every probe issued. In FillMode it is invoked from
	// both the sending and the receiving goroutine and must be safe for
	// concurrent use.
	Observer func(dst uint32, ttl uint8, at time.Duration)
	// Seed keys the probing permutation.
	Seed int64
	// DrainWait is the post-send receive window (default 2 s).
	DrainWait time.Duration
}

// DefaultConfig returns the Yarrp-32 configuration of the paper's
// comparison (TCP-ACK, TTLs 1..32, 100 Kpps).
func DefaultConfig() Config {
	return Config{
		ProbeType:           TCPAck,
		MinTTL:              1,
		MaxTTL:              32,
		FillMax:             32,
		PPS:                 100_000,
		NeighborhoodTimeout: 30 * time.Second,
		DrainWait:           2 * time.Second,
	}
}

// Result is what a Yarrp scan produced.
type Result struct {
	Store      *trace.Store
	ProbesSent uint64
	// FillProbes is the subset issued by fill mode (also in ProbesSent).
	FillProbes uint64
	// SkippedByProtection counts probes suppressed by neighborhood
	// protection.
	SkippedByProtection uint64
	ScanTime            time.Duration
}

// Scanner runs Yarrp scans.
type Scanner struct {
	cfg   Config
	conn  PacketConn
	clock simclock.Waiter
	start time.Time

	store *trace.Store

	probesSent   uint64 // sender-thread counter
	fillProbes   atomic.Uint64
	skipped      uint64
	unparsed     atomic.Uint64
	lastNewIface [33]atomic.Int64 // ns since start of last new interface per TTL

	paceCount    int
	paceBatch    int
	paceInterval time.Duration

	sendErr atomic.Value // error

	pktBuf [probe.MTU]byte
}

// NewScanner validates the configuration.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	if cfg.Blocks <= 0 || cfg.Targets == nil || cfg.BlockOf == nil {
		return nil, errors.New("yarrp: Blocks, Targets and BlockOf are required")
	}
	if cfg.MinTTL < 1 || cfg.MaxTTL > probe.MaxTTL || cfg.MinTTL > cfg.MaxTTL {
		return nil, fmt.Errorf("yarrp: bad TTL range %d..%d", cfg.MinTTL, cfg.MaxTTL)
	}
	if cfg.FillMode && (cfg.FillMax < cfg.MaxTTL || cfg.FillMax > probe.MaxTTL) {
		return nil, errors.New("yarrp: FillMax must be in MaxTTL..32")
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.NeighborhoodTimeout <= 0 {
		cfg.NeighborhoodTimeout = 30 * time.Second
	}
	s := &Scanner{
		cfg:   cfg,
		conn:  conn,
		clock: clock,
		store: trace.NewStore(cfg.CollectRoutes),
	}
	if cfg.PPS > 0 {
		s.paceBatch = cfg.PPS / 200
		if s.paceBatch < 1 {
			s.paceBatch = 1
		}
		s.paceInterval = time.Duration(int64(time.Second) * int64(s.paceBatch) / int64(cfg.PPS))
	}
	return s, nil
}

// Run executes the scan. Like the FlashRoute engine, it registers the
// sender (the calling goroutine) and a receiver goroutine with the clock.
func (s *Scanner) Run() (*Result, error) {
	s.start = s.clock.Now()

	// Sender registers first; a receiver parking as the sole registered
	// actor would trip the virtual clock's deadlock detector.
	s.clock.AddActor()
	s.clock.AddActor()
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		defer s.clock.DoneActor()
		s.receiveLoop()
	}()

	ttlRange := uint64(s.cfg.MaxTTL-s.cfg.MinTTL) + 1
	perm := permute.NewFeistel(uint64(s.cfg.Blocks)*ttlRange, uint64(s.cfg.Seed)^0x9aeb1a2b)
	it := permute.NewIterator(perm)
	var abort error
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		block := int(v / ttlRange)
		ttl := s.cfg.MinTTL + uint8(v%ttlRange)
		if s.protected(ttl) {
			s.skipped++
			continue
		}
		if err := s.sendProbe(s.cfg.Targets(block), ttl, false); err != nil {
			// Yarrp's UDP encoding failure kills the scan (§4.2.1 fn 2).
			abort = err
			break
		}
	}
	s.clock.Sleep(s.cfg.DrainWait)

	res := &Result{
		Store:               s.store,
		ProbesSent:          s.probesSent + s.fillProbes.Load(),
		FillProbes:          s.fillProbes.Load(),
		SkippedByProtection: s.skipped,
		ScanTime:            s.clock.Now().Sub(s.start),
	}
	s.conn.Close()
	s.clock.DoneActor()
	<-recvDone
	return res, abort
}

// protected reports whether neighborhood protection suppresses a probe at
// this TTL right now.
func (s *Scanner) protected(ttl uint8) bool {
	if s.cfg.NeighborhoodLimit == 0 || ttl > s.cfg.NeighborhoodLimit {
		return false
	}
	last := s.lastNewIface[ttl].Load()
	now := int64(s.clock.Now().Sub(s.start))
	return now-last > int64(s.cfg.NeighborhoodTimeout)
}

// sendProbe builds and writes one probe from the sending thread.
func (s *Scanner) sendProbe(dst uint32, ttl uint8, fill bool) error {
	elapsed := s.clock.Now().Sub(s.start)
	var n int
	switch s.cfg.ProbeType {
	case TCPAck:
		n = probe.BuildYarrpTCPProbe(s.pktBuf[:], s.cfg.Source, dst, ttl, elapsed)
	case UDP:
		var err error
		n, err = probe.BuildYarrpUDPProbe(s.pktBuf[:], s.cfg.Source, dst, ttl, elapsed)
		if err != nil {
			return err
		}
	}
	_ = s.conn.WritePacket(s.pktBuf[:n])
	if fill {
		s.fillProbes.Add(1)
	} else {
		s.probesSent++
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer(dst, ttl, elapsed)
	}
	if !fill {
		s.pace()
	}
	return nil
}

func (s *Scanner) pace() {
	if s.paceBatch == 0 {
		return
	}
	s.paceCount++
	if s.paceCount >= s.paceBatch {
		s.paceCount = 0
		s.clock.Sleep(s.paceInterval)
	}
}

// receiveLoop decodes responses statelessly from the quoted headers. In
// fill mode, a TTL-exceeded response from the farthest probed hop triggers
// the probe for the next hop — this receive-driven chaining is exactly
// what gives Yarrp its inherent gap limit of one (§4.2.1).
func (s *Scanner) receiveLoop() {
	var buf [4096]byte
	var fillBuf [probe.MTU]byte
	for {
		n, err := s.conn.ReadPacket(buf[:])
		if err != nil {
			if err != io.EOF {
				s.unparsed.Add(1)
			}
			return
		}
		s.handleResponse(buf[:n], fillBuf[:])
	}
}

func (s *Scanner) handleResponse(pkt []byte, fillBuf []byte) {
	var outer probe.IPv4
	if err := outer.Unmarshal(pkt); err != nil {
		s.unparsed.Add(1)
		return
	}
	now := s.clock.Now().Sub(s.start)

	// TCP RST from a destination (TCP-ACK mode): the target exists and
	// answered; no TTL or quoted context is available.
	if outer.Protocol == probe.ProtoTCP {
		var tcp probe.TCP
		if err := tcp.Unmarshal(pkt[probe.IPv4HeaderLen:]); err != nil || tcp.Flags&probe.FlagRST == 0 {
			s.unparsed.Add(1)
			return
		}
		rtt := time.Duration(uint32(now.Milliseconds())-tcp.Seq) * time.Millisecond
		s.store.SetReached(outer.Src, 0, outer.Src, rtt)
		return
	}

	resp, err := probe.ParseResponse(pkt)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	yi, err := probe.ParseYarrpQuote(&resp.ICMP)
	if err != nil {
		s.unparsed.Add(1)
		return
	}
	rtt := time.Duration(uint32(now.Milliseconds())-yi.ElapsedMillis) * time.Millisecond

	switch {
	case resp.ICMP.IsTTLExceeded():
		if s.store.AddHopReportNew(yi.Dst, yi.InitTTL, resp.Hop, rtt) {
			s.lastNewIface[yi.InitTTL].Store(int64(now))
		}
		// Fill mode: extend one hop past the farthest response, if it was
		// not already the destination.
		if s.cfg.FillMode && yi.InitTTL >= s.cfg.MaxTTL && yi.InitTTL < s.cfg.FillMax {
			_ = s.sendFill(yi.Dst, yi.InitTTL+1)
		}
	case resp.ICMP.IsUnreachable():
		dist := int(yi.InitTTL) - int(yi.ResidualTTL) + 1
		if dist < 1 {
			dist = 1
		}
		s.store.SetReached(yi.Dst, uint8(dist), resp.Hop, rtt)
	default:
		s.unparsed.Add(1)
	}
}

// sendFill issues a fill-mode probe from the receiving thread.
func (s *Scanner) sendFill(dst uint32, ttl uint8) error {
	elapsed := s.clock.Now().Sub(s.start)
	var buf [probe.MTU]byte
	var n int
	switch s.cfg.ProbeType {
	case TCPAck:
		n = probe.BuildYarrpTCPProbe(buf[:], s.cfg.Source, dst, ttl, elapsed)
	case UDP:
		var err error
		n, err = probe.BuildYarrpUDPProbe(buf[:], s.cfg.Source, dst, ttl, elapsed)
		if err != nil {
			return err
		}
	}
	_ = s.conn.WritePacket(buf[:n])
	s.fillProbes.Add(1)
	if s.cfg.Observer != nil {
		s.cfg.Observer(dst, ttl, elapsed)
	}
	return nil
}
