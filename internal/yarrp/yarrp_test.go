package yarrp

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// countReached tallies destinations that answered the scan.
func countReached(r *Result) int {
	n := 0
	r.Store.ForEachRoute(func(rt *trace.Route) {
		if rt.Reached {
			n++
		}
	})
	return n
}

type env struct {
	topo  *netsim.Topology
	clock *simclock.Virtual
	net   *netsim.Net
	cfg   Config
}

func newEnv(t testing.TB, blocks int, seed int64) *env {
	t.Helper()
	u := netsim.NewSyntheticUniverse(blocks)
	topo := netsim.NewTopology(u, netsim.DefaultParams(seed))
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim.New(topo, clock)
	cfg := DefaultConfig()
	cfg.Blocks = blocks
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.PPS = 50_000
	cfg.Targets = func(block int) uint32 {
		z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return u.BlockAddr(block) | uint32(1+z%254)
	}
	cfg.BlockOf = func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
	return &env{topo: topo, clock: clock, net: n, cfg: cfg}
}

func (e *env) run(t testing.TB) (*Result, error) {
	t.Helper()
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Run()
}

// TestYarrp32ExactProbeCount: the stateless scanner sends exactly
// blocks x 32 probes, by construction.
func TestYarrp32ExactProbeCount(t *testing.T) {
	const blocks = 512
	e := newEnv(t, blocks, 1)
	res, err := e.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbesSent != blocks*32 {
		t.Fatalf("probes=%d want %d", res.ProbesSent, blocks*32)
	}
	if res.Store.Interfaces().Len() == 0 {
		t.Fatal("no interfaces")
	}
	t.Logf("yarrp-32 TCP: %d probes, %d interfaces", res.ProbesSent, res.Store.Interfaces().Len())
}

// TestYarrp16FillModeFindsFewerInterfaces reproduces §4.2.1: Yarrp-16's
// fill mode, with its inherent gap limit of one, discovers substantially
// fewer interfaces than Yarrp-32 while not saving proportionally.
func TestYarrp16FillModeFindsFewerInterfaces(t *testing.T) {
	const blocks = 8192
	full := newEnv(t, blocks, 2)
	resFull, err := full.run(t)
	if err != nil {
		t.Fatal(err)
	}

	fill := newEnv(t, blocks, 2)
	fill.cfg.MaxTTL = 16
	fill.cfg.FillMode = true
	fill.cfg.FillMax = 32
	resFill, err := fill.run(t)
	if err != nil {
		t.Fatal(err)
	}

	i32, i16 := resFull.Store.Interfaces().Len(), resFill.Store.Interfaces().Len()
	if i16 >= i32 {
		t.Fatalf("fill mode should find fewer interfaces: 16=%d 32=%d", i16, i32)
	}
	// The paper reports Yarrp-16 finding less than half of Yarrp-32's
	// interfaces at full Internet scale; the deficit shrinks on small
	// universes (infrastructure is a larger share), so require < 88%
	// here and leave the headline ratio to the Table 3 experiment.
	if float64(i16) > 0.88*float64(i32) {
		t.Errorf("fill mode found too many interfaces: 16=%d 32=%d (want < 88%%)", i16, i32)
	}
	if resFill.FillProbes == 0 {
		t.Fatal("fill mode sent no fill probes")
	}
	t.Logf("yarrp-32: %d ifaces; yarrp-16: %d ifaces (%.0f%%), %d fill probes",
		i32, i16, 100*float64(i16)/float64(i32), resFill.FillProbes)
}

// TestYarrpUDPFailsOnLongScans reproduces footnote 2 of §4.2.1: the UDP
// encoding outgrows the MTU and the scan aborts with "message too long".
func TestYarrpUDPFailsOnLongScans(t *testing.T) {
	const blocks = 8192
	e := newEnv(t, blocks, 3)
	e.cfg.ProbeType = UDP
	e.cfg.PPS = 100 // slow scan -> large elapsed encoding -> overflow
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Run()
	if err != probe.ErrMessageTooLong {
		t.Fatalf("want ErrMessageTooLong, got %v", err)
	}
}

// TestYarrpUDPShortScanFindsMore: over a short scan (no overflow), UDP
// probes elicit strictly more destination responses than TCP-ACK
// (§4.2.1 / [16]); total interface counts are compared on the count of
// reached destinations, which is the signal the probe type controls.
func TestYarrpUDPShortScanFindsMore(t *testing.T) {
	const blocks = 8192
	tcp := newEnv(t, blocks, 4)
	resTCP, err := tcp.run(t)
	if err != nil {
		t.Fatal(err)
	}
	udp := newEnv(t, blocks, 4)
	udp.cfg.ProbeType = UDP
	resUDP, err := udp.run(t)
	if err != nil {
		t.Fatal(err)
	}
	ru, rt := countReached(resUDP), countReached(resTCP)
	if ru <= rt {
		t.Fatalf("UDP should reach more destinations: udp=%d tcp=%d", ru, rt)
	}
	t.Logf("reached destinations: udp=%d tcp=%d; interfaces udp=%d tcp=%d",
		ru, rt, resUDP.Store.Interfaces().Len(), resTCP.Store.Interfaces().Len())
}

// TestNeighborhoodProtection reproduces the §4.2.1 experiment: k-hop
// protection reduces probes at the cost of missing neighborhood
// interfaces.
func TestNeighborhoodProtection(t *testing.T) {
	const blocks = 4096
	base := newEnv(t, blocks, 5)
	base.cfg.PPS = 10_000 // lengthen the scan so the timeout can engage
	resBase, err := base.run(t)
	if err != nil {
		t.Fatal(err)
	}

	prot := newEnv(t, blocks, 5)
	prot.cfg.PPS = 10_000
	prot.cfg.NeighborhoodLimit = 6
	prot.cfg.NeighborhoodTimeout = 2 * time.Second
	resProt, err := prot.run(t)
	if err != nil {
		t.Fatal(err)
	}

	if resProt.SkippedByProtection == 0 {
		t.Fatal("protection never engaged")
	}
	if resProt.ProbesSent >= resBase.ProbesSent {
		t.Fatalf("protection should reduce probes: base=%d prot=%d",
			resBase.ProbesSent, resProt.ProbesSent)
	}
	ib, ip := resBase.Store.Interfaces().Len(), resProt.Store.Interfaces().Len()
	if ip > ib {
		t.Fatalf("protection cannot find more interfaces: base=%d prot=%d", ib, ip)
	}
	t.Logf("base: %d probes/%d ifaces; 6-hop protection: %d probes (%d skipped)/%d ifaces",
		resBase.ProbesSent, ib, resProt.ProbesSent, resProt.SkippedByProtection, ip)
}

func TestYarrpConfigValidation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	bad := []Config{
		{},
		func() Config {
			c := DefaultConfig()
			c.Blocks = 10
			c.Targets = func(int) uint32 { return 1 }
			c.BlockOf = func(uint32) (int, bool) { return 0, true }
			c.MinTTL = 20
			c.MaxTTL = 10
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Blocks = 10
			c.Targets = func(int) uint32 { return 1 }
			c.BlockOf = func(uint32) (int, bool) { return 0, true }
			c.MaxTTL = 16
			c.FillMode = true
			c.FillMax = 8
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := NewScanner(cfg, nil, clock); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}
