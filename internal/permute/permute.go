// Package permute implements keyed pseudorandom permutations over an
// arbitrary-size index space.
//
// FlashRoute, like ZMap and Yarrp before it, must visit a very large set of
// probing targets in an order that looks random (so that topologically close
// routers are not probed back-to-back, which would trip ICMP rate limits)
// while using O(1) state. This package provides that primitive: a keyed
// Feistel network over the smallest even-bit-width binary domain covering
// the requested size, with cycle-walking to restrict the bijection to
// [0, size).
//
// Two users exist in this repository:
//
//   - FlashRoute computes a random permutation once, at initialization, to
//     thread its destination control blocks into a circular doubly linked
//     list (paper §3.4).
//   - Yarrp has no per-destination state at all and instead evaluates the
//     permutation on the fly for every (block, TTL) pair it probes
//     (paper §2).
package permute

import "fmt"

// maxRounds is the number of Feistel rounds applied. Four rounds of a
// non-cryptographic round function are ample for statistical scattering of
// probe targets; this is a traffic-shaping device, not a cipher.
const maxRounds = 4

// Permutation is a bijection on [0, Size()).
type Permutation interface {
	// Size returns the cardinality of the permuted domain.
	Size() uint64
	// Map returns the image of i. It panics if i >= Size().
	Map(i uint64) uint64
	// Inverse returns the preimage of j. It panics if j >= Size().
	Inverse(j uint64) uint64
}

// Feistel is a keyed Feistel-network permutation over [0, size) using
// cycle-walking. The zero value is not usable; use NewFeistel.
type Feistel struct {
	size     uint64
	halfBits uint
	halfMask uint64
	keys     [maxRounds]uint64
}

var _ Permutation = (*Feistel)(nil)

// NewFeistel returns a permutation of [0, size) keyed by seed. Two
// permutations built with the same size and seed are identical; different
// seeds give unrelated orders. size must be at least 1.
func NewFeistel(size uint64, seed uint64) *Feistel {
	if size == 0 {
		panic("permute: NewFeistel size must be >= 1")
	}
	// Find the smallest even bit-width 2h such that 2^(2h) >= size.
	var bits uint = 2
	for bits < 64 && (uint64(1)<<bits) < size {
		bits += 2
	}
	f := &Feistel{
		size:     size,
		halfBits: bits / 2,
		halfMask: (uint64(1) << (bits / 2)) - 1,
	}
	// Derive round keys from the seed with a splitmix64 sequence.
	s := seed
	for i := range f.keys {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		f.keys[i] = z ^ (z >> 31)
	}
	return f
}

// Size returns the cardinality of the permuted domain.
func (f *Feistel) Size() uint64 { return f.size }

// round is the Feistel round function: a cheap integer hash of the half
// block mixed with the round key, truncated to the half width.
func (f *Feistel) round(half, key uint64) uint64 {
	x := half ^ key
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 29
	return x & f.halfMask
}

// encryptOnce applies one full pass of the Feistel network over the binary
// domain (which may be larger than size).
func (f *Feistel) encryptOnce(v uint64) uint64 {
	l := v >> f.halfBits
	r := v & f.halfMask
	for _, k := range f.keys {
		l, r = r, l^f.round(r, k)
	}
	return l<<f.halfBits | r
}

// decryptOnce inverts encryptOnce.
func (f *Feistel) decryptOnce(v uint64) uint64 {
	l := v >> f.halfBits
	r := v & f.halfMask
	for i := len(f.keys) - 1; i >= 0; i-- {
		l, r = r^f.round(l, f.keys[i]), l
	}
	return l<<f.halfBits | r
}

// Map returns the image of i under the permutation, cycle-walking out of
// the binary domain until the result lands inside [0, size).
func (f *Feistel) Map(i uint64) uint64 {
	if i >= f.size {
		panic(fmt.Sprintf("permute: Map(%d) out of range [0,%d)", i, f.size))
	}
	v := f.encryptOnce(i)
	for v >= f.size {
		v = f.encryptOnce(v)
	}
	return v
}

// Inverse returns the preimage of j under the permutation.
func (f *Feistel) Inverse(j uint64) uint64 {
	if j >= f.size {
		panic(fmt.Sprintf("permute: Inverse(%d) out of range [0,%d)", j, f.size))
	}
	v := f.decryptOnce(j)
	for v >= f.size {
		v = f.decryptOnce(v)
	}
	return v
}

// Iterator walks a Permutation in sequence: it yields Map(0), Map(1), ...
// with O(1) state, exactly the access pattern of a stateless scanner.
type Iterator struct {
	p    Permutation
	next uint64
}

// NewIterator returns an iterator positioned at the start of p's order.
func NewIterator(p Permutation) *Iterator { return &Iterator{p: p} }

// Next returns the next permuted index. ok is false once the full domain
// has been exhausted.
func (it *Iterator) Next() (v uint64, ok bool) {
	if it.next >= it.p.Size() {
		return 0, false
	}
	v = it.p.Map(it.next)
	it.next++
	return v, true
}

// Remaining returns how many values Next will still yield.
func (it *Iterator) Remaining() uint64 { return it.p.Size() - it.next }

// Reset rewinds the iterator to the beginning.
func (it *Iterator) Reset() { it.next = 0 }
