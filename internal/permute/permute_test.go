package permute

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFeistelBijectionSmall(t *testing.T) {
	for _, size := range []uint64{1, 2, 3, 5, 16, 17, 100, 255, 256, 257, 1000, 4096} {
		f := NewFeistel(size, 42)
		seen := make(map[uint64]bool, size)
		for i := uint64(0); i < size; i++ {
			v := f.Map(i)
			if v >= size {
				t.Fatalf("size=%d Map(%d)=%d out of range", size, i, v)
			}
			if seen[v] {
				t.Fatalf("size=%d Map(%d)=%d already produced", size, i, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != size {
			t.Fatalf("size=%d covered only %d values", size, len(seen))
		}
	}
}

func TestFeistelInverse(t *testing.T) {
	for _, size := range []uint64{1, 7, 64, 1023, 100000} {
		f := NewFeistel(size, 7)
		for i := uint64(0); i < size; i += 1 + size/997 {
			if got := f.Inverse(f.Map(i)); got != i {
				t.Fatalf("size=%d Inverse(Map(%d))=%d", size, i, got)
			}
			if got := f.Map(f.Inverse(i)); got != i {
				t.Fatalf("size=%d Map(Inverse(%d))=%d", size, i, got)
			}
		}
	}
}

func TestFeistelInverseProperty(t *testing.T) {
	const size = 1 << 20
	f := NewFeistel(size, 99)
	prop := func(i uint64) bool {
		i %= size
		return f.Inverse(f.Map(i)) == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelDeterministicBySeed(t *testing.T) {
	a := NewFeistel(10000, 1)
	b := NewFeistel(10000, 1)
	c := NewFeistel(10000, 2)
	same, diff := 0, 0
	for i := uint64(0); i < 10000; i++ {
		if a.Map(i) != b.Map(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a.Map(i) == c.Map(i) {
			same++
		} else {
			diff++
		}
	}
	if diff < 9000 {
		t.Fatalf("different seeds should mostly disagree; same=%d diff=%d", same, diff)
	}
}

// TestFeistelScatter checks the traffic-shaping property FlashRoute relies
// on: consecutive iterator outputs should not be numerically adjacent.
func TestFeistelScatter(t *testing.T) {
	const size = 1 << 16
	f := NewFeistel(size, 3)
	adjacent := 0
	prev := f.Map(0)
	for i := uint64(1); i < size; i++ {
		v := f.Map(i)
		d := int64(v) - int64(prev)
		if d < 0 {
			d = -d
		}
		if d <= 8 {
			adjacent++
		}
		prev = v
	}
	// For a random permutation, P(|gap| <= 8) ~ 16/65536; allow 10x slack.
	if adjacent > size*16*10/65536 {
		t.Fatalf("too many near-adjacent outputs: %d", adjacent)
	}
}

func TestFeistelMapPanicsOutOfRange(t *testing.T) {
	f := NewFeistel(10, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Map(10)
}

func TestIterator(t *testing.T) {
	const size = 5000
	f := NewFeistel(size, 11)
	it := NewIterator(f)
	seen := make(map[uint64]bool)
	n := uint64(0)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		n++
	}
	if n != size {
		t.Fatalf("iterated %d values, want %d", n, size)
	}
	if it.Remaining() != 0 {
		t.Fatalf("remaining=%d", it.Remaining())
	}
	it.Reset()
	if v, ok := it.Next(); !ok || v != f.Map(0) {
		t.Fatalf("reset did not rewind: %d %v", v, ok)
	}
}

func TestIteratorRemaining(t *testing.T) {
	f := NewFeistel(10, 0)
	it := NewIterator(f)
	for want := uint64(10); want > 0; want-- {
		if it.Remaining() != want {
			t.Fatalf("remaining=%d want %d", it.Remaining(), want)
		}
		it.Next()
	}
}

func BenchmarkFeistelMap(b *testing.B) {
	f := NewFeistel(1<<24, 42)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Map(uint64(i) & (1<<24 - 1))
	}
	_ = sink
}

func TestFeistelLargeDomainSpotBijection(t *testing.T) {
	// For a large domain, spot-check injectivity over random samples.
	const size = 1 << 28
	f := NewFeistel(size, 5)
	rng := rand.New(rand.NewSource(1))
	seen := make(map[uint64]uint64)
	for k := 0; k < 200000; k++ {
		i := uint64(rng.Int63()) % size
		v := f.Map(i)
		if v >= size {
			t.Fatalf("Map(%d)=%d out of range", i, v)
		}
		if j, ok := seen[v]; ok && j != i {
			t.Fatalf("collision: Map(%d)==Map(%d)==%d", i, j, v)
		}
		seen[v] = i
	}
}
