package probe

import (
	"errors"
	"time"
)

// DisclosurePayload is embedded in probe payload bytes, following the
// paper's ethics appendix: probes disclose identity, contact information
// and research intent to anyone capturing them.
const DisclosurePayload = "flashroute-go topology measurement research; opt-out: see whois of source"

// ErrMessageTooLong mirrors the "Network API error: Message too long"
// failure the paper reports for Yarrp's UDP mode (§4.2.1 footnote 2): the
// encoding of elapsed time into the packet length field eventually exceeds
// the interface MTU.
var ErrMessageTooLong = errors.New("probe: message too long")

// MTU is the simulated interface MTU (Ethernet). The Yarrp-UDP length
// encoding fails once a probe would exceed it.
const MTU = 1500

// FlashRoute IPID layout (paper §3.1): 5 bits initial TTL, 1 bit
// preprobing flag, 10 bits of timestamp. The remaining 6 timestamp bits
// ride in the UDP length field (as payload length), for a 16-bit
// millisecond timestamp wrapping at 65.536 s.
const (
	flashTTLShift   = 11
	flashPreBit     = 1 << 10
	flashTSHighMask = 0x03ff
	flashTSLowBits  = 6
	flashTSLowMask  = (1 << flashTSLowBits) - 1
	// MaxTTL is the largest initial TTL representable in the 5-bit IPID
	// field (values 1..32 are stored as 0..31).
	MaxTTL = 32
)

// FlashInfo is the probing context recovered from an ICMP response to a
// FlashRoute probe — everything needed to interpret the measurement
// without any per-probe state at the scanner.
type FlashInfo struct {
	Dst         uint32 // quoted destination (the probed target)
	InitTTL     uint8  // initial TTL of the probe (1..32)
	ResidualTTL uint8  // TTL remaining when the responder saw the probe
	Preprobe    bool   // probe was sent during the preprobing phase
	TSMillis    uint16 // send timestamp, milliseconds mod 65536
	SrcPort     uint16
	DstPort     uint16
}

// RTT derives the round-trip time from the echoed send timestamp and the
// receive time, handling the 65.536 s wraparound.
func (fi FlashInfo) RTT(receivedAt time.Duration) time.Duration {
	recvMS := uint16(receivedAt.Milliseconds())
	delta := recvMS - fi.TSMillis // wraps naturally in uint16
	return time.Duration(delta) * time.Millisecond
}

// ChecksumMatches reports whether the quoted source port equals the
// checksum of the quoted destination address plus the given scan offset.
// A mismatch means a middlebox rewrote the destination in flight and the
// response must be discarded (paper §5.3). The offset is zero for the main
// scan and i for the i-th extra scan of discovery-optimized mode (§5.2).
func (fi FlashInfo) ChecksumMatches(scanOffset uint16) bool {
	return fi.SrcPort == AddrChecksum(fi.Dst)+scanOffset
}

// BuildFlashProbe serializes a complete FlashRoute UDP probe packet
// (IPv4 + UDP + disclosure payload) into buf and returns its length.
//
//   - ttl is the initial TTL (1..MaxTTL);
//   - preprobe marks preprobing-phase probes (paper §3.3);
//   - elapsed is time since scan start, encoded at millisecond granularity;
//   - srcPortOffset shifts the Paris flow identifier for discovery-
//     optimized extra scans (paper §5.2);
//   - dstPort is typically TracerouteDstPort.
func BuildFlashProbe(buf []byte, src, dst uint32, ttl uint8, preprobe bool, elapsed time.Duration, srcPortOffset uint16, dstPort uint16) int {
	if ttl < 1 || ttl > MaxTTL {
		panic("probe: BuildFlashProbe TTL out of range")
	}
	ts := uint16(elapsed.Milliseconds())
	id := uint16(ttl-1) << flashTTLShift
	if preprobe {
		id |= flashPreBit
	}
	id |= (ts >> flashTSLowBits) & flashTSHighMask
	payloadLen := int(ts & flashTSLowMask)
	udpLen := uint16(UDPHeaderLen + payloadLen)
	total := IPv4HeaderLen + int(udpLen)
	if len(buf) < total {
		panic("probe: BuildFlashProbe buffer too small")
	}
	ip := IPv4{
		TotalLength: uint16(total),
		ID:          id,
		TTL:         ttl,
		Protocol:    ProtoUDP,
		Src:         src,
		Dst:         dst,
	}
	ip.Marshal(buf)
	udp := UDP{
		SrcPort: AddrChecksum(dst) + srcPortOffset,
		DstPort: dstPort,
		Length:  udpLen,
	}
	udp.Marshal(buf[IPv4HeaderLen:])
	for i := 0; i < payloadLen; i++ {
		buf[IPv4HeaderLen+UDPHeaderLen+i] = DisclosurePayload[i%len(DisclosurePayload)]
	}
	return total
}

// ParseFlashQuote recovers the FlashRoute probing context from a parsed
// ICMP error message.
func ParseFlashQuote(m *ICMPError) (FlashInfo, error) {
	if m.Quote.Protocol != ProtoUDP {
		return FlashInfo{}, errors.New("probe: quoted packet is not UDP")
	}
	var udp UDP
	if err := udp.Unmarshal(m.QuotedTransport[:]); err != nil {
		return FlashInfo{}, err
	}
	id := m.Quote.ID
	ts := (id&flashTSHighMask)<<flashTSLowBits | (udp.Length-UDPHeaderLen)&flashTSLowMask
	return FlashInfo{
		Dst:         m.Quote.Dst,
		InitTTL:     uint8(id>>flashTTLShift) + 1,
		ResidualTTL: m.Quote.TTL,
		Preprobe:    id&flashPreBit != 0,
		TSMillis:    ts,
		SrcPort:     udp.SrcPort,
		DstPort:     udp.DstPort,
	}, nil
}

// YarrpInfo is the probing context recovered from a response to a Yarrp
// probe. Yarrp encodes the elapsed scan time in the TCP sequence number
// (TCP-ACK mode) or in the UDP checksum + length fields (UDP mode).
type YarrpInfo struct {
	Dst           uint32
	InitTTL       uint8
	ResidualTTL   uint8
	ElapsedMillis uint32
	SrcPort       uint16
	DstPort       uint16
}

// yarrpTTLShift stores the initial TTL in the top bits of the IPID, as
// Yarrp does, so responses can be attributed to a hop distance.
const yarrpTTLShift = 11

// BuildYarrpTCPProbe serializes a Yarrp-style Paris-TCP-ACK probe. The
// elapsed time since scan start is carried in the sequence number field.
func BuildYarrpTCPProbe(buf []byte, src, dst uint32, ttl uint8, elapsed time.Duration) int {
	if ttl < 1 || ttl > MaxTTL {
		panic("probe: BuildYarrpTCPProbe TTL out of range")
	}
	total := IPv4HeaderLen + TCPHeaderLen
	if len(buf) < total {
		panic("probe: BuildYarrpTCPProbe buffer too small")
	}
	ip := IPv4{
		TotalLength: uint16(total),
		ID:          uint16(ttl-1) << yarrpTTLShift,
		TTL:         ttl,
		Protocol:    ProtoTCP,
		Src:         src,
		Dst:         dst,
	}
	ip.Marshal(buf)
	tcp := TCP{
		SrcPort: AddrChecksum(dst), // Paris: constant flow id per target
		DstPort: 80,
		Seq:     uint32(elapsed.Milliseconds()),
		Flags:   FlagACK,
		Window:  1024,
	}
	tcp.Marshal(buf[IPv4HeaderLen:])
	return total
}

// BuildYarrpUDPProbe serializes a Yarrp-style UDP probe, reproducing the
// encoding flaw the paper reports: the elapsed time is split across the
// UDP checksum field (low 16 bits of milliseconds) and the packet length
// field. The length grows with elapsed time and eventually exceeds the
// MTU, at which point this function returns ErrMessageTooLong — exactly
// the "Message too long" failure of §4.2.1.
func BuildYarrpUDPProbe(buf []byte, src, dst uint32, ttl uint8, elapsed time.Duration) (int, error) {
	if ttl < 1 || ttl > MaxTTL {
		panic("probe: BuildYarrpUDPProbe TTL out of range")
	}
	ms := elapsed.Milliseconds()
	payloadLen := int(ms >> 10) // high-order elapsed bits become length
	udpLen := UDPHeaderLen + payloadLen
	total := IPv4HeaderLen + udpLen
	if total > MTU {
		return 0, ErrMessageTooLong
	}
	if len(buf) < total {
		panic("probe: BuildYarrpUDPProbe buffer too small")
	}
	ip := IPv4{
		TotalLength: uint16(total),
		ID:          uint16(ttl-1) << yarrpTTLShift,
		TTL:         ttl,
		Protocol:    ProtoUDP,
		Src:         src,
		Dst:         dst,
	}
	ip.Marshal(buf)
	udp := UDP{
		SrcPort:  AddrChecksum(dst),
		DstPort:  TracerouteDstPort,
		Length:   uint16(udpLen),
		Checksum: uint16(ms), // low 16 bits of elapsed milliseconds
	}
	udp.Marshal(buf[IPv4HeaderLen:])
	for i := 0; i < payloadLen; i++ {
		buf[IPv4HeaderLen+UDPHeaderLen+i] = DisclosurePayload[i%len(DisclosurePayload)]
	}
	return total, nil
}

// ParseYarrpQuote recovers the Yarrp probing context from a parsed ICMP
// error message, for either probe mode.
func ParseYarrpQuote(m *ICMPError) (YarrpInfo, error) {
	yi := YarrpInfo{
		Dst:         m.Quote.Dst,
		InitTTL:     uint8(m.Quote.ID>>yarrpTTLShift) + 1,
		ResidualTTL: m.Quote.TTL,
	}
	switch m.Quote.Protocol {
	case ProtoTCP:
		var tcp TCP
		if err := tcp.Unmarshal(m.QuotedTransport[:]); err != nil {
			return YarrpInfo{}, err
		}
		yi.ElapsedMillis = tcp.Seq
		yi.SrcPort, yi.DstPort = tcp.SrcPort, tcp.DstPort
	case ProtoUDP:
		var udp UDP
		if err := udp.Unmarshal(m.QuotedTransport[:]); err != nil {
			return YarrpInfo{}, err
		}
		yi.ElapsedMillis = uint32(udp.Length-UDPHeaderLen)<<10 | uint32(udp.Checksum)&0x3ff
		yi.SrcPort, yi.DstPort = udp.SrcPort, udp.DstPort
	default:
		return YarrpInfo{}, errors.New("probe: quoted packet is neither TCP nor UDP")
	}
	return yi, nil
}

// Response is a fully parsed ICMP response packet.
type Response struct {
	Hop  uint32 // IP of the responding interface (outer source address)
	ICMP ICMPError
}

// ParseResponse parses a complete IPv4 packet carrying an ICMP error.
func ParseResponse(pkt []byte) (Response, error) {
	var outer IPv4
	if err := outer.Unmarshal(pkt); err != nil {
		return Response{}, err
	}
	if outer.Protocol != ProtoICMP {
		return Response{}, errors.New("probe: response is not ICMP")
	}
	var r Response
	r.Hop = outer.Src
	if err := r.ICMP.UnmarshalICMPError(pkt[IPv4HeaderLen:]); err != nil {
		return Response{}, err
	}
	return r, nil
}
