package probe

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS:         0,
		TotalLength: 28,
		ID:          0xBEEF,
		TTL:         17,
		Protocol:    ProtoUDP,
		Src:         0x0A000001,
		Dst:         0xC0A80101,
	}
	var b [IPv4HeaderLen]byte
	h.Marshal(b[:])
	if !VerifyChecksum(b[:]) {
		t.Fatal("marshaled header checksum invalid")
	}
	var g IPv4
	if err := g.Unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if g.ID != h.ID || g.TTL != h.TTL || g.Src != h.Src || g.Dst != h.Dst ||
		g.Protocol != h.Protocol || g.TotalLength != h.TotalLength {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	prop := func(id uint16, ttl uint8, src, dst uint32, tl uint16) bool {
		h := IPv4{TotalLength: tl, ID: id, TTL: ttl, Protocol: ProtoTCP, Src: src, Dst: dst}
		var b [IPv4HeaderLen]byte
		h.Marshal(b[:])
		var g IPv4
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h && VerifyChecksum(b[:])
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4UnmarshalErrors(t *testing.T) {
	var g IPv4
	if err := g.Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x65 // version 6
	if err := g.Unmarshal(b); err != ErrBadVersion {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
	b[0] = 0x46 // IHL 6: options
	if err := g.Unmarshal(b); err == nil {
		t.Fatal("want options error")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum=%#x want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestAddrChecksumNonZero(t *testing.T) {
	prop := func(a uint32) bool { return AddrChecksum(a) != 0 }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrFormatParseRoundTrip(t *testing.T) {
	for _, a := range []uint32{0, 0x01020304, 0xC0A80101, 0xFFFFFFFF} {
		got, err := ParseAddr(FormatAddr(a))
		if err != nil || got != a {
			t.Fatalf("round trip of %#x: got %#x err %v", a, got, err)
		}
	}
	if _, err := ParseAddr("1.2.3.999"); err == nil {
		t.Fatal("expected error for octet > 255")
	}
	if _, err := ParseAddr("junk"); err == nil {
		t.Fatal("expected error for junk")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 4321, DstPort: TracerouteDstPort, Length: 42, Checksum: 7}
	var b [UDPHeaderLen]byte
	u.Marshal(b[:])
	var g UDP
	if err := g.Unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != u {
		t.Fatalf("got %+v want %+v", g, u)
	}
}

func TestTCPRoundTripAndShortQuote(t *testing.T) {
	tc := TCP{SrcPort: 1, DstPort: 80, Seq: 0xDEADBEEF, Ack: 5, Flags: FlagACK, Window: 1024}
	var b [TCPHeaderLen]byte
	tc.Marshal(b[:])
	var g TCP
	if err := g.Unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != tc {
		t.Fatalf("got %+v want %+v", g, tc)
	}
	// An ICMP quote only guarantees 8 bytes.
	var short TCP
	if err := short.Unmarshal(b[:8]); err != nil {
		t.Fatal(err)
	}
	if short.SrcPort != tc.SrcPort || short.Seq != tc.Seq {
		t.Fatal("short quote lost ports or seq")
	}
}

func TestFlashProbeRoundTrip(t *testing.T) {
	var buf [128]byte
	src, dst := uint32(0x0A000001), uint32(0x10203040)
	elapsed := 33*time.Second + 123*time.Millisecond
	n := BuildFlashProbe(buf[:], src, dst, 27, true, elapsed, 0, TracerouteDstPort)

	// Simulate a responder: it sees the probe with a decremented TTL and
	// quotes the header back.
	var quoted IPv4
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.TTL = 5 // residual at responder
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeDestUnreachable, ICMPCodePortUnreachable,
		&quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])

	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	if !m.IsUnreachable() || m.IsTTLExceeded() {
		t.Fatal("type predicates wrong")
	}
	fi, err := ParseFlashQuote(&m)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Dst != dst {
		t.Fatalf("dst=%#x", fi.Dst)
	}
	if fi.InitTTL != 27 {
		t.Fatalf("initTTL=%d", fi.InitTTL)
	}
	if !fi.Preprobe {
		t.Fatal("preprobe flag lost")
	}
	if fi.ResidualTTL != 5 {
		t.Fatalf("residual=%d", fi.ResidualTTL)
	}
	wantTS := uint16(elapsed.Milliseconds())
	if fi.TSMillis != wantTS {
		t.Fatalf("ts=%d want %d", fi.TSMillis, wantTS)
	}
	if !fi.ChecksumMatches(0) {
		t.Fatal("source port checksum should match")
	}
}

func TestFlashProbeTimestampProperty(t *testing.T) {
	var buf [128]byte
	prop := func(ms uint16, ttl uint8, dst uint32, pre bool) bool {
		ttl = ttl%MaxTTL + 1
		elapsed := time.Duration(ms) * time.Millisecond
		n := BuildFlashProbe(buf[:], 1, dst, ttl, pre, elapsed, 0, TracerouteDstPort)
		var quoted IPv4
		if quoted.Unmarshal(buf[:n]) != nil {
			return false
		}
		var resp [ICMPErrorLen]byte
		MarshalICMPError(resp[:], ICMPTypeTimeExceeded, ICMPCodeTTLExceeded,
			&quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])
		var m ICMPError
		if m.UnmarshalICMPError(resp[:]) != nil {
			return false
		}
		fi, err := ParseFlashQuote(&m)
		return err == nil && fi.TSMillis == ms && fi.InitTTL == ttl &&
			fi.Preprobe == pre && fi.Dst == dst
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlashRTTWraparound(t *testing.T) {
	fi := FlashInfo{TSMillis: 65000}
	// Sent at 65.000 s, received at 65.700 s -> timestamp wrapped.
	rtt := fi.RTT(65*time.Second + 700*time.Millisecond)
	if rtt != 700*time.Millisecond {
		t.Fatalf("rtt=%v want 700ms", rtt)
	}
	// Also across the wrap boundary.
	fi = FlashInfo{TSMillis: 65500}
	rtt = fi.RTT(66*time.Second + 100*time.Millisecond) // recv ms = 66100 % 65536 = 564
	if rtt != 600*time.Millisecond {
		t.Fatalf("rtt=%v want 600ms", rtt)
	}
}

func TestFlashChecksumMismatchDetectsRewrite(t *testing.T) {
	var buf [128]byte
	dst := uint32(0x08080808)
	n := BuildFlashProbe(buf[:], 1, dst, 10, false, 0, 0, TracerouteDstPort)
	var quoted IPv4
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.Dst = 0x08080809 // middlebox rewrote the destination
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeDestUnreachable, ICMPCodePortUnreachable,
		&quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	fi, err := ParseFlashQuote(&m)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ChecksumMatches(0) {
		t.Fatal("rewritten destination must not pass the checksum test")
	}
}

func TestFlashDiscoveryScanOffset(t *testing.T) {
	var buf [128]byte
	dst := uint32(0x01010101)
	n := BuildFlashProbe(buf[:], 1, dst, 10, false, 0, 3, TracerouteDstPort)
	var quoted IPv4
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeTimeExceeded, 0, &quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	fi, _ := ParseFlashQuote(&m)
	if fi.ChecksumMatches(0) {
		t.Fatal("offset-3 probe should not match offset 0")
	}
	if !fi.ChecksumMatches(3) {
		t.Fatal("offset-3 probe should match offset 3")
	}
}

func TestYarrpTCPRoundTrip(t *testing.T) {
	var buf [64]byte
	dst := uint32(0x22334455)
	n := BuildYarrpTCPProbe(buf[:], 1, dst, 31, 1234*time.Millisecond)
	var quoted IPv4
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.TTL = 1
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeTimeExceeded, 0, &quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	yi, err := ParseYarrpQuote(&m)
	if err != nil {
		t.Fatal(err)
	}
	if yi.InitTTL != 31 || yi.Dst != dst || yi.ElapsedMillis != 1234 {
		t.Fatalf("yarrp info %+v", yi)
	}
}

func TestYarrpUDPRoundTripAndOverflow(t *testing.T) {
	var buf [MTU]byte
	dst := uint32(0x22334455)
	elapsed := 90 * time.Second
	n, err := BuildYarrpUDPProbe(buf[:], 1, dst, 7, elapsed)
	if err != nil {
		t.Fatal(err)
	}
	var quoted IPv4
	if err := quoted.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeTimeExceeded, 0, &quoted, buf[IPv4HeaderLen:IPv4HeaderLen+8])
	var m ICMPError
	if err := m.UnmarshalICMPError(resp[:]); err != nil {
		t.Fatal(err)
	}
	yi, err := ParseYarrpQuote(&m)
	if err != nil {
		t.Fatal(err)
	}
	ms := uint32(elapsed.Milliseconds())
	// The UDP encoding only preserves elapsed time at ~1 s granularity in
	// the length field plus 10 low bits in the checksum.
	if yi.ElapsedMillis>>10 != ms>>10 {
		t.Fatalf("elapsed high bits: got %d want %d", yi.ElapsedMillis>>10, ms>>10)
	}
	if yi.ElapsedMillis&0x3ff != ms&0x3ff {
		t.Fatalf("elapsed low bits: got %d want %d", yi.ElapsedMillis&0x3ff, ms&0x3ff)
	}

	// The paper's footnote 2: long scans overflow the length field.
	if _, err := BuildYarrpUDPProbe(buf[:], 1, dst, 7, 45*time.Minute); err != ErrMessageTooLong {
		t.Fatalf("want ErrMessageTooLong, got %v", err)
	}
}

func TestParseResponseFull(t *testing.T) {
	// Build probe, then a full response packet (outer IPv4 + ICMP).
	var probeBuf [128]byte
	dst := uint32(0x10000001)
	n := BuildFlashProbe(probeBuf[:], 0x0A000001, dst, 16, false, time.Second, 0, TracerouteDstPort)
	var quoted IPv4
	if err := quoted.Unmarshal(probeBuf[:n]); err != nil {
		t.Fatal(err)
	}
	quoted.TTL = 1

	hop := uint32(0x0B0B0B0B)
	var pkt [IPv4HeaderLen + ICMPErrorLen]byte
	outer := IPv4{
		TotalLength: uint16(len(pkt)),
		TTL:         64,
		Protocol:    ProtoICMP,
		Src:         hop,
		Dst:         0x0A000001,
	}
	outer.Marshal(pkt[:])
	MarshalICMPError(pkt[IPv4HeaderLen:], ICMPTypeTimeExceeded, 0, &quoted,
		probeBuf[IPv4HeaderLen:IPv4HeaderLen+8])

	r, err := ParseResponse(pkt[:])
	if err != nil {
		t.Fatal(err)
	}
	if r.Hop != hop {
		t.Fatalf("hop=%#x", r.Hop)
	}
	if !r.ICMP.IsTTLExceeded() {
		t.Fatal("expected TTL exceeded")
	}
	fi, err := ParseFlashQuote(&r.ICMP)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Dst != dst || fi.InitTTL != 16 {
		t.Fatalf("info %+v", fi)
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, err := ParseResponse(make([]byte, 4)); err == nil {
		t.Fatal("want truncation error")
	}
	var pkt [IPv4HeaderLen + ICMPErrorLen]byte
	outer := IPv4{TotalLength: uint16(len(pkt)), TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2}
	outer.Marshal(pkt[:])
	if _, err := ParseResponse(pkt[:]); err == nil {
		t.Fatal("want not-ICMP error")
	}
}

func TestICMPErrorChecksumValid(t *testing.T) {
	var probeBuf [64]byte
	n := BuildFlashProbe(probeBuf[:], 1, 2, 3, false, 0, 0, TracerouteDstPort)
	var quoted IPv4
	if err := quoted.Unmarshal(probeBuf[:n]); err != nil {
		t.Fatal(err)
	}
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeTimeExceeded, 0, &quoted, probeBuf[IPv4HeaderLen:IPv4HeaderLen+8])
	if Checksum(resp[:]) != 0 {
		t.Fatal("ICMP checksum over full message should verify to zero")
	}
}

func BenchmarkBuildFlashProbe(b *testing.B) {
	var buf [128]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildFlashProbe(buf[:], 1, uint32(i), uint8(i%32)+1, false,
			time.Duration(i)*time.Microsecond, 0, TracerouteDstPort)
	}
}

func BenchmarkParseFlashQuote(b *testing.B) {
	var probeBuf [128]byte
	n := BuildFlashProbe(probeBuf[:], 1, 0xDEADBEEF, 16, false, time.Second, 0, TracerouteDstPort)
	var quoted IPv4
	quoted.Unmarshal(probeBuf[:n])
	var resp [ICMPErrorLen]byte
	MarshalICMPError(resp[:], ICMPTypeTimeExceeded, 0, &quoted, probeBuf[IPv4HeaderLen:IPv4HeaderLen+8])
	var m ICMPError
	m.UnmarshalICMPError(resp[:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFlashQuote(&m); err != nil {
			b.Fatal(err)
		}
	}
}
