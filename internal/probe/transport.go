package probe

import (
	"encoding/binary"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// TCPHeaderLen is the length of a minimal (option-less) TCP header.
const TCPHeaderLen = 20

// TracerouteDstPort is the base destination port reserved for traceroute
// (the classic UDP traceroute port range starts here). FlashRoute's
// preprobing sends to exactly this port to solicit port-unreachable
// responses from end hosts (paper §3.3.1).
const TracerouteDstPort = 33434

// UDP is a UDP header. Length covers header + payload, per RFC 768.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Marshal writes the header into b (at least UDPHeaderLen bytes).
// The checksum field is written as-is; scanners in this repository use the
// checksum field as an encoding slot (Yarrp-UDP) or leave it zero
// ("no checksum" per RFC 768), so no pseudo-header sum is computed here.
func (u *UDP) Marshal(b []byte) int {
	if len(b) < UDPHeaderLen {
		panic("probe: UDP.Marshal buffer too small")
	}
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], u.Length)
	binary.BigEndian.PutUint16(b[6:], u.Checksum)
	return UDPHeaderLen
}

// Unmarshal parses a UDP header from b.
func (u *UDP) Unmarshal(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:])
	u.DstPort = binary.BigEndian.Uint16(b[2:])
	u.Length = binary.BigEndian.Uint16(b[4:])
	u.Checksum = binary.BigEndian.Uint16(b[6:])
	return nil
}

// TCP is a minimal TCP header sufficient for ACK probes.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // e.g. FlagACK
	Window  uint16
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Marshal writes the header into b (at least TCPHeaderLen bytes).
func (t *TCP) Marshal(b []byte) int {
	if len(b) < TCPHeaderLen {
		panic("probe: TCP.Marshal buffer too small")
	}
	binary.BigEndian.PutUint16(b[0:], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:], t.DstPort)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:], t.Window)
	b[16], b[17] = 0, 0 // checksum (unused by the simulator)
	b[18], b[19] = 0, 0 // urgent pointer
	return TCPHeaderLen
}

// Unmarshal parses a TCP header from b. Only the first 8 bytes (ports and
// sequence number) are guaranteed present in an ICMP quote, so Unmarshal
// accepts 8-byte quotes and zeroes the rest.
func (t *TCP) Unmarshal(b []byte) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:])
	t.DstPort = binary.BigEndian.Uint16(b[2:])
	t.Seq = binary.BigEndian.Uint32(b[4:])
	if len(b) >= TCPHeaderLen {
		t.Ack = binary.BigEndian.Uint32(b[8:])
		t.Flags = b[13]
		t.Window = binary.BigEndian.Uint16(b[14:])
	} else {
		t.Ack, t.Flags, t.Window = 0, 0, 0
	}
	return nil
}
