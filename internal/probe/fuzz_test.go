package probe

import (
	"bytes"
	"testing"
	"time"
)

// The fuzz targets hold one line: no input — however truncated, corrupted
// or adversarial — may panic a parser. Responses come off a raw socket
// (or the simulator standing in for one), so every byte is attacker
// controlled. On accepted inputs the targets additionally check the
// parse/serialize round-trip invariants the engines rely on.
//
// Seed corpora live in testdata/fuzz/<Target>/ and are built from the
// real probe builders plus truncations and bit flips, so coverage starts
// at the interesting packet shapes instead of random noise.

// seedFlashResponse builds a full ICMP error response to a FlashRoute
// probe, the way a simulated hop would.
func seedFlashResponse(icmpType, code, residual uint8) []byte {
	var pr [256]byte
	n := BuildFlashProbe(pr[:], 0x0a000001, 0xc0a80101, 7, false,
		1234*time.Millisecond, 0, TracerouteDstPort)
	var quote IPv4
	if err := quote.Unmarshal(pr[:n]); err != nil {
		panic(err)
	}
	quote.TTL = residual
	var resp [256]byte
	outer := IPv4{
		TotalLength: uint16(IPv4HeaderLen + ICMPErrorLen),
		TTL:         64,
		Protocol:    ProtoICMP,
		Src:         0xac100101,
		Dst:         0x0a000001,
	}
	outer.Marshal(resp[:])
	MarshalICMPError(resp[IPv4HeaderLen:], icmpType, code, &quote, pr[IPv4HeaderLen:IPv4HeaderLen+8])
	return append([]byte(nil), resp[:IPv4HeaderLen+ICMPErrorLen]...)
}

func seedYarrpResponse(udp bool) []byte {
	var pr [256]byte
	var n int
	if udp {
		var err error
		n, err = BuildYarrpUDPProbe(pr[:], 0x0a000001, 0xc0a80101, 9, 5*time.Second)
		if err != nil {
			panic(err)
		}
	} else {
		n = BuildYarrpTCPProbe(pr[:], 0x0a000001, 0xc0a80101, 9, 5*time.Second)
	}
	var quote IPv4
	if err := quote.Unmarshal(pr[:n]); err != nil {
		panic(err)
	}
	quote.TTL = 1
	var resp [256]byte
	outer := IPv4{
		TotalLength: uint16(IPv4HeaderLen + ICMPErrorLen),
		TTL:         64,
		Protocol:    ProtoICMP,
		Src:         0xac100101,
		Dst:         0x0a000001,
	}
	outer.Marshal(resp[:])
	MarshalICMPError(resp[IPv4HeaderLen:], ICMPTypeTimeExceeded, ICMPCodeTTLExceeded,
		&quote, pr[IPv4HeaderLen:IPv4HeaderLen+8])
	return append([]byte(nil), resp[:IPv4HeaderLen+ICMPErrorLen]...)
}

func fuzzResponseSeeds(f *testing.F) {
	f.Add(seedFlashResponse(ICMPTypeTimeExceeded, ICMPCodeTTLExceeded, 1))
	f.Add(seedFlashResponse(ICMPTypeDestUnreachable, ICMPCodePortUnreachable, 25))
	f.Add(seedYarrpResponse(false))
	f.Add(seedYarrpResponse(true))
	full := seedFlashResponse(ICMPTypeTimeExceeded, ICMPCodeTTLExceeded, 1)
	for _, cut := range []int{0, 1, IPv4HeaderLen - 1, IPv4HeaderLen,
		IPv4HeaderLen + 7, IPv4HeaderLen + ICMPErrorLen - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	bad := append([]byte(nil), full...)
	bad[0] = 0x65 // IPv6 version nibble
	f.Add(bad)
	opt := append([]byte(nil), full...)
	opt[0] = 0x46 // IHL 6: options, unsupported
	f.Add(opt)
	proto := append([]byte(nil), full...)
	proto[9] = ProtoUDP // outer packet not ICMP
	f.Add(proto)
}

// FuzzParseResponse: the full response-parsing path (outer IPv4 + ICMP
// error + quoted probe decoding) must never panic, and accepted inputs
// must decode to in-range probing context.
func FuzzParseResponse(f *testing.F) {
	fuzzResponseSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseResponse(data)
		if err != nil {
			return
		}
		// The quote decoders run on whatever the network handed back; they
		// may reject it but must not panic, and what they accept must be
		// representable.
		if fi, err := ParseFlashQuote(&r.ICMP); err == nil {
			if fi.InitTTL < 1 || fi.InitTTL > MaxTTL {
				t.Fatalf("FlashInfo.InitTTL %d out of range", fi.InitTTL)
			}
			fi.ChecksumMatches(0)
			if rtt := fi.RTT(time.Duration(fi.TSMillis+5) * time.Millisecond); rtt < 0 {
				t.Fatalf("negative RTT %v", rtt)
			}
		}
		if yi, err := ParseYarrpQuote(&r.ICMP); err == nil {
			if yi.InitTTL < 1 || yi.InitTTL > MaxTTL {
				t.Fatalf("YarrpInfo.InitTTL %d out of range", yi.InitTTL)
			}
		}
		r.ICMP.IsTTLExceeded()
		r.ICMP.IsUnreachable()
	})
}

// FuzzParseEchoReply: the hitlist census parser must never panic, and may
// only accept packets long enough to actually hold an echo reply.
func FuzzParseEchoReply(f *testing.F) {
	var buf [64]byte
	n := BuildEchoRequest(buf[:], 0x0a000001, 0xc0a80101, 0x1234, 7)
	req := append([]byte(nil), buf[:n]...)
	f.Add(req)
	reply := append([]byte(nil), req...)
	reply[IPv4HeaderLen] = ICMPTypeEchoReply
	f.Add(reply)
	f.Add(reply[:IPv4HeaderLen+4])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, id, seq, ok := ParseEchoReply(data)
		if !ok {
			return
		}
		if len(data) < IPv4HeaderLen+EchoLen {
			t.Fatalf("accepted %d-byte packet (min %d): from=%#x id=%d seq=%d",
				len(data), IPv4HeaderLen+EchoLen, from, id, seq)
		}
	})
}

// FuzzIPv4: header parsing must never panic, and every accepted header
// must survive a Marshal/Unmarshal round trip with a valid checksum.
func FuzzIPv4(f *testing.F) {
	var buf [64]byte
	h := IPv4{TotalLength: 48, ID: 0xbeef, TTL: 16, Protocol: ProtoUDP,
		Src: 0x0a000001, Dst: 0xc0a80101}
	h.Marshal(buf[:])
	f.Add(append([]byte(nil), buf[:IPv4HeaderLen]...))
	f.Add(append([]byte(nil), buf[:IPv4HeaderLen-1]...))
	f.Add([]byte{0x60, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv4
		if err := h.Unmarshal(data); err != nil {
			return
		}
		var out [IPv4HeaderLen]byte
		h.Marshal(out[:])
		if !VerifyChecksum(out[:]) {
			t.Fatal("Marshal produced an invalid checksum")
		}
		var back IPv4
		if err := back.Unmarshal(out[:]); err != nil {
			t.Fatalf("re-Unmarshal failed: %v", err)
		}
		// The checksum is recomputed; everything else must round-trip.
		h.Checksum = back.Checksum
		if back != h {
			t.Fatalf("round trip changed header: %+v != %+v", back, h)
		}
	})
}

// FuzzTransport: the UDP and TCP header parsers (fed from untrusted ICMP
// quotes) must never panic, and accepted headers must round-trip.
func FuzzTransport(f *testing.F) {
	var buf [TCPHeaderLen]byte
	(&UDP{SrcPort: 33434, DstPort: TracerouteDstPort, Length: 14, Checksum: 0xabcd}).Marshal(buf[:])
	f.Add(append([]byte(nil), buf[:UDPHeaderLen]...))
	(&TCP{SrcPort: 80, DstPort: 443, Seq: 0xdeadbeef, Ack: 1, Flags: FlagACK, Window: 1024}).Marshal(buf[:])
	f.Add(append([]byte(nil), buf[:]...))
	f.Add(append([]byte(nil), buf[:8]...))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var u UDP
		if err := u.Unmarshal(data); err == nil {
			var out [UDPHeaderLen]byte
			u.Marshal(out[:])
			if !bytes.Equal(out[:], data[:UDPHeaderLen]) {
				t.Fatalf("UDP round trip changed bytes: % x != % x", out, data[:UDPHeaderLen])
			}
		}
		var tc TCP
		if err := tc.Unmarshal(data); err == nil {
			var out [TCPHeaderLen]byte
			tc.Marshal(out[:])
			var back TCP
			if err := back.Unmarshal(out[:]); err != nil {
				t.Fatalf("TCP re-Unmarshal failed: %v", err)
			}
			// An 8-byte quote zeroes Ack/Flags/Window by contract; the
			// round trip must preserve whatever Unmarshal reported.
			if back != tc {
				t.Fatalf("TCP round trip changed header: %+v != %+v", back, tc)
			}
		}
	})
}
