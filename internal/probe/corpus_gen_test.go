package probe

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate fuzz seed corpora")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	full := seedFlashResponse(ICMPTypeTimeExceeded, ICMPCodeTTLExceeded, 1)
	write("FuzzParseResponse", "flash-ttl-exceeded", full)
	write("FuzzParseResponse", "flash-unreachable",
		seedFlashResponse(ICMPTypeDestUnreachable, ICMPCodePortUnreachable, 25))
	write("FuzzParseResponse", "yarrp-tcp", seedYarrpResponse(false))
	write("FuzzParseResponse", "yarrp-udp", seedYarrpResponse(true))
	for _, cut := range []int{IPv4HeaderLen, IPv4HeaderLen + 7, len(full) - 1} {
		write("FuzzParseResponse", fmt.Sprintf("truncated-%d", cut), full[:cut])
	}
	corrupt := append([]byte(nil), full...)
	corrupt[IPv4HeaderLen+8+9] = 255 // quoted protocol: neither UDP nor TCP
	write("FuzzParseResponse", "quote-bad-proto", corrupt)

	var buf [64]byte
	n := BuildEchoRequest(buf[:], 0x0a000001, 0xc0a80101, 0x1234, 7)
	reply := append([]byte(nil), buf[:n]...)
	reply[IPv4HeaderLen] = ICMPTypeEchoReply
	write("FuzzParseEchoReply", "echo-reply", reply)
	write("FuzzParseEchoReply", "echo-request", buf[:n])
	write("FuzzParseEchoReply", "truncated", reply[:IPv4HeaderLen+4])

	h := IPv4{TotalLength: 48, ID: 0xbeef, TTL: 16, Protocol: ProtoUDP,
		Src: 0x0a000001, Dst: 0xc0a80101}
	h.Marshal(buf[:])
	write("FuzzIPv4", "udp-header", buf[:IPv4HeaderLen])
	write("FuzzIPv4", "short", buf[:IPv4HeaderLen-1])

	var probe [256]byte
	pn := BuildFlashProbe(probe[:], 0x0a000001, 0xc0a80101, 7, true,
		42*time.Millisecond, 3, TracerouteDstPort)
	write("FuzzTransport", "flash-udp", probe[IPv4HeaderLen:pn])
	pn = BuildYarrpTCPProbe(probe[:], 0x0a000001, 0xc0a80101, 9, 5*time.Second)
	write("FuzzTransport", "yarrp-tcp", probe[IPv4HeaderLen:pn])
	write("FuzzTransport", "tcp-quote-8", probe[IPv4HeaderLen:IPv4HeaderLen+8])
}
