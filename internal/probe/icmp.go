package probe

import (
	"encoding/binary"
)

// ICMP message types and codes used by traceroute-style scanning.
const (
	ICMPTypeDestUnreachable = 3
	ICMPTypeEchoRequest     = 8
	ICMPTypeEchoReply       = 0
	ICMPTypeTimeExceeded    = 11

	ICMPCodeTTLExceeded     = 0
	ICMPCodeHostUnreachable = 1
	ICMPCodeProtoUnreach    = 2
	ICMPCodePortUnreachable = 3
)

// ICMPErrorLen is the length of an ICMP error message carrying the
// standard quote: 8 bytes of ICMP header + 20 bytes quoted IPv4 header +
// 8 bytes of the original transport header.
const ICMPErrorLen = 8 + IPv4HeaderLen + 8

// ICMPError is a parsed ICMP error message (time exceeded or destination
// unreachable) including the quoted original headers — everything a
// stateless scanner needs to reconstruct which probe elicited it.
type ICMPError struct {
	Type uint8
	Code uint8

	// Quote is the original IPv4 header as seen by the responder; its TTL
	// is the residual TTL, which is what makes one-probe hop-distance
	// measurement possible (paper §3.3.1).
	Quote IPv4

	// QuotedTransport holds the first 8 bytes of the original transport
	// header (UDP header, or TCP ports+sequence).
	QuotedTransport [8]byte
}

// MarshalICMPError builds a complete ICMP error message into b and returns
// the number of bytes written. quoteHdr is the original probe's IPv4
// header (with the residual TTL already set by the caller) and
// quotedTransport the first 8 bytes of the original transport header.
func MarshalICMPError(b []byte, icmpType, code uint8, quoteHdr *IPv4, quotedTransport []byte) int {
	if len(b) < ICMPErrorLen {
		panic("probe: MarshalICMPError buffer too small")
	}
	b[0] = icmpType
	b[1] = code
	b[2], b[3] = 0, 0                    // checksum, filled below
	binary.BigEndian.PutUint32(b[4:], 0) // unused
	quoteHdr.Marshal(b[8 : 8+IPv4HeaderLen])
	n := copy(b[8+IPv4HeaderLen:ICMPErrorLen], quotedTransport)
	for i := 8 + IPv4HeaderLen + n; i < ICMPErrorLen; i++ {
		b[i] = 0
	}
	cs := Checksum(b[:ICMPErrorLen])
	binary.BigEndian.PutUint16(b[2:], cs)
	return ICMPErrorLen
}

// UnmarshalICMPError parses an ICMP error message from b.
func (m *ICMPError) UnmarshalICMPError(b []byte) error {
	if len(b) < ICMPErrorLen {
		return ErrTruncated
	}
	m.Type = b[0]
	m.Code = b[1]
	if err := m.Quote.Unmarshal(b[8 : 8+IPv4HeaderLen]); err != nil {
		return err
	}
	copy(m.QuotedTransport[:], b[8+IPv4HeaderLen:8+IPv4HeaderLen+8])
	return nil
}

// IsTTLExceeded reports whether the message is a hop's TTL-expired report.
func (m *ICMPError) IsTTLExceeded() bool {
	return m.Type == ICMPTypeTimeExceeded && m.Code == ICMPCodeTTLExceeded
}

// IsUnreachable reports whether the message is any destination-unreachable
// variant, i.e. evidence that the probe reached the end target
// (paper §3.2: "host/port/protocol unreachable").
func (m *ICMPError) IsUnreachable() bool {
	return m.Type == ICMPTypeDestUnreachable
}

// EchoLen is the length of an ICMP echo request/reply as built here
// (8-byte ICMP header, no payload).
const EchoLen = 8

// BuildEchoRequest serializes a complete ICMP echo request packet
// (IPv4 + ICMP) into buf — the probe type the census hitlist experiment
// uses (paper §5.1) — and returns its length.
func BuildEchoRequest(buf []byte, src, dst uint32, id, seq uint16) int {
	total := IPv4HeaderLen + EchoLen
	if len(buf) < total {
		panic("probe: BuildEchoRequest buffer too small")
	}
	ip := IPv4{
		TotalLength: uint16(total),
		ID:          id,
		TTL:         64,
		Protocol:    ProtoICMP,
		Src:         src,
		Dst:         dst,
	}
	ip.Marshal(buf)
	b := buf[IPv4HeaderLen:]
	b[0], b[1] = ICMPTypeEchoRequest, 0
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:], id)
	binary.BigEndian.PutUint16(b[6:], seq)
	cs := Checksum(b[:EchoLen])
	binary.BigEndian.PutUint16(b[2:], cs)
	return total
}

// ParseEchoReply parses a complete ICMP echo reply packet and returns the
// responder and the echoed id/seq. It returns ok=false for any other
// packet.
func ParseEchoReply(pkt []byte) (from uint32, id, seq uint16, ok bool) {
	var outer IPv4
	if outer.Unmarshal(pkt) != nil || outer.Protocol != ProtoICMP {
		return 0, 0, 0, false
	}
	b := pkt[IPv4HeaderLen:]
	if len(b) < EchoLen || b[0] != ICMPTypeEchoReply {
		return 0, 0, 0, false
	}
	return outer.Src, binary.BigEndian.Uint16(b[4:]), binary.BigEndian.Uint16(b[6:]), true
}
