// Package probe implements the wire formats and probe encodings used by
// FlashRoute and the baseline scanners it is evaluated against.
//
// Everything a massive-scale stateless or semi-stateless tracerouter knows
// about an in-flight probe must be carried by the probe packet itself and
// echoed back inside the ICMP response's quoted header (paper §3.1). This
// package provides:
//
//   - IPv4 / UDP / TCP / ICMP header serialization and parsing (RFC 791,
//     768, 793, 792) with the standard Internet checksum;
//   - the FlashRoute probe encoding: 5 bits of the IPID carry the initial
//     TTL, 1 bit flags the preprobing phase, and the remaining 10 IPID
//     bits plus 6 bits of the UDP length field carry a 16-bit millisecond
//     timestamp (wrap ~65.5 s);
//   - the source-port-is-checksum-of-destination discipline used to detect
//     in-flight destination modification (paper §5.3) and to keep a fixed
//     Paris flow identifier per destination (paper §3);
//   - Yarrp's probe encodings (TCP sequence-number timestamp; and the UDP
//     checksum+length encoding whose length-field overflow the paper
//     reports in §4.2.1 footnote 2), reproduced faithfully for the
//     baseline comparisons.
package probe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers used by the scanners.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of a minimal (option-less) IPv4 header.
const IPv4HeaderLen = 20

// Errors returned by the parsers.
var (
	ErrTruncated  = errors.New("probe: truncated packet")
	ErrNotIPv4    = errors.New("probe: not an IPv4 packet")
	ErrBadVersion = errors.New("probe: bad IP version")
)

// IPv4 is a minimal IPv4 header. Addresses are big-endian uint32 values,
// which is the representation every hot path in this repository uses.
type IPv4 struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	FlagsFrag   uint16
	TTL         uint8
	Protocol    uint8
	Checksum    uint16
	Src         uint32
	Dst         uint32
}

// Marshal writes the header into b, which must be at least IPv4HeaderLen
// bytes, computing the header checksum. It returns the bytes written.
func (h *IPv4) Marshal(b []byte) int {
	if len(b) < IPv4HeaderLen {
		panic("probe: IPv4.Marshal buffer too small")
	}
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLength)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], h.FlagsFrag)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:], h.Src)
	binary.BigEndian.PutUint32(b[16:], h.Dst)
	cs := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:], cs)
	h.Checksum = cs
	return IPv4HeaderLen
}

// Unmarshal parses an IPv4 header from b. It does not verify the checksum;
// use VerifyChecksum for that.
func (h *IPv4) Unmarshal(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	if b[0]&0x0f != 5 {
		return fmt.Errorf("probe: IPv4 options unsupported (IHL=%d)", b[0]&0x0f)
	}
	h.TOS = b[1]
	h.TotalLength = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.FlagsFrag = binary.BigEndian.Uint16(b[6:])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	h.Src = binary.BigEndian.Uint32(b[12:])
	h.Dst = binary.BigEndian.Uint32(b[16:])
	return nil
}

// VerifyChecksum reports whether the header checksum of the raw IPv4
// header bytes in b is valid.
func VerifyChecksum(b []byte) bool {
	if len(b) < IPv4HeaderLen {
		return false
	}
	return Checksum(b[:IPv4HeaderLen]) == 0
}

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// AddrChecksum computes the 16-bit Internet checksum of a single IPv4
// address. FlashRoute uses this value as the probe source port so a
// response whose quoted destination no longer matches its quoted source
// port reveals in-flight destination modification (paper §3.1, §5.3).
func AddrChecksum(addr uint32) uint16 {
	sum := (addr >> 16) + (addr & 0xffff)
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	cs := ^uint16(sum)
	if cs == 0 {
		// Port 0 is reserved; fold to a fixed non-zero value.
		cs = 0xffff
	}
	return cs
}

// FormatAddr renders a uint32 IPv4 address in dotted-quad form.
func FormatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseAddr parses a dotted-quad IPv4 address into a uint32.
func ParseAddr(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("probe: bad IPv4 address %q: %w", s, err)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("probe: bad IPv4 address %q", s)
		}
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}
