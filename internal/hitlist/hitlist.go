// Package hitlist builds and loads per-/24 "most responsive address"
// lists, modeling the ISI Census Hitlist [18] the paper uses for
// preprobing and studies for bias (§4.1.3, §5.1).
//
// The generator mirrors how the census works: it selects, per block, the
// address most responsive to ICMP echo over time. Because stub-network
// gateway appliances answer pings far more reliably than end hosts, the
// selection lands on routers at the block periphery whenever one is
// present — exactly the bias the paper uncovers (hitlist targets sit at
// shorter hop distances and shield stub interiors from discovery).
package hitlist

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

// Hitlist maps each block of a universe to its most-responsive address.
type Hitlist struct {
	addrs      []uint32
	responsive int
}

// Generate builds the hitlist for the topology's universe by "pinging"
// candidate addresses: router interfaces located in the block first (they
// answer most reliably), then host octets in ascending order. Blocks with
// no responsive address get a fallback entry at host octet 1 (the census
// keeps low-score entries too).
func Generate(topo *netsim.Topology) *Hitlist {
	u := topo.U
	n := u.NumBlocks()
	h := &Hitlist{addrs: make([]uint32, n)}
	for b := 0; b < n; b++ {
		base := u.BlockAddr(b)
		var pick uint32
		// Router interfaces in this block answer pings persistently; the
		// census's long-running experiment would always settle on them.
		if gw := topo.GatewayOfBlock(b); gw != 0 && gw>>8 == base>>8 && topo.PingResponsive(gw) {
			pick = gw
		}
		if pick == 0 {
			for oct := uint32(1); oct <= 254; oct++ {
				cand := base | oct
				if topo.PingResponsive(cand) {
					pick = cand
					break
				}
			}
		}
		if pick != 0 {
			h.responsive++
		} else {
			pick = base | 1
		}
		h.addrs[b] = pick
	}
	return h
}

// Addr returns the hitlist address for a block (never zero; unresponsive
// blocks carry their fallback entry).
func (h *Hitlist) Addr(block int) uint32 {
	return h.addrs[block]
}

// TargetFunc adapts the hitlist for the scanners' target interface.
func (h *Hitlist) TargetFunc() func(block int) uint32 {
	return func(block int) uint32 { return h.addrs[block] }
}

// Len returns the number of blocks covered.
func (h *Hitlist) Len() int { return len(h.addrs) }

// Responsive returns how many blocks had a genuinely responsive address
// when the list was generated (zero for lists read from files).
func (h *Hitlist) Responsive() int { return h.responsive }

// WriteTo stores the hitlist as one dotted-quad address per line, in
// block order — the format FlashRoute's exterior-file option consumes.
func (h *Hitlist) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	for _, a := range h.addrs {
		n, err := fmt.Fprintln(bw, probe.FormatAddr(a))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// PingConn is the packet transport GenerateViaPings scans through.
type PingConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// GenerateViaPings builds the hitlist the way the census actually does —
// by sending ICMP echo requests through the network and keeping, per
// block, the first (lowest-candidate) address that replied. It probes a
// bounded candidate set per block: the conventional gateway octets first,
// then a deterministic sample (the census converges on popular octets the
// same way over its long run). Blocks with no replies get the octet-1
// fallback entry, like Generate.
//
// clock must be the Waiter driving the conn's network.
func GenerateViaPings(u *netsim.Universe, conn PingConn, clock simclock.Waiter, seed int64) (*Hitlist, error) {
	n := u.NumBlocks()
	h := &Hitlist{addrs: make([]uint32, n)}

	candidates := func(block int) []uint32 {
		base := u.BlockAddr(block)
		out := []uint32{base | 1, base | 2, base | 3}
		z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93
		for k := 0; k < 13; k++ {
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z ^= z >> 31
			out = append(out, base|uint32(4+z%251))
		}
		return out
	}

	// Census id: mark our pings so unrelated traffic never confuses us.
	const pingID = 0xCE45

	best := make([]int8, n) // index into candidates; -1 = none yet
	for i := range best {
		best[i] = -1
	}

	clock.AddActor()
	clock.AddActor()
	recvDone := make(chan struct{})
	var recvErr error
	go func() {
		defer close(recvDone)
		defer clock.DoneActor()
		var buf [4096]byte
		for {
			ln, err := conn.ReadPacket(buf[:])
			if err != nil {
				if err != io.EOF {
					recvErr = err
				}
				return
			}
			from, id, seq, ok := probe.ParseEchoReply(buf[:ln])
			if !ok || id != pingID {
				continue
			}
			b, inU := u.BlockIndex(from)
			if !inU {
				continue
			}
			cand := int8(seq & 0xff)
			if best[b] == -1 || cand < best[b] {
				best[b] = cand
			}
		}
	}()

	var pkt [probe.IPv4HeaderLen + probe.EchoLen]byte
	count := 0
	for b := 0; b < n; b++ {
		for ci, cand := range candidates(b) {
			ln := probe.BuildEchoRequest(pkt[:], 0x0A000001, cand, pingID, uint16(ci))
			if err := conn.WritePacket(pkt[:ln]); err != nil {
				conn.Close()
				clock.DoneActor()
				<-recvDone
				return nil, err
			}
			count++
			if count%500 == 0 {
				clock.Sleep(time.Millisecond) // ~500 Kpps census pacing
			}
		}
	}
	clock.Sleep(2 * time.Second)
	conn.Close()
	clock.DoneActor()
	<-recvDone
	if recvErr != nil {
		return nil, recvErr
	}

	for b := 0; b < n; b++ {
		if best[b] >= 0 {
			h.addrs[b] = candidates(b)[best[b]]
			h.responsive++
		} else {
			h.addrs[b] = u.BlockAddr(b) | 1
		}
	}
	return h, nil
}

// Read loads a hitlist for the given universe from one-address-per-line
// text: each address is assigned to its containing block; later entries
// for the same block win. Unlisted blocks keep a zero (no entry).
func Read(r io.Reader, u *netsim.Universe) (*Hitlist, error) {
	h := &Hitlist{addrs: make([]uint32, u.NumBlocks())}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" || s[0] == '#' {
			continue
		}
		a, err := probe.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("hitlist: line %d: %w", line, err)
		}
		if b, ok := u.BlockIndex(a); ok {
			h.addrs[b] = a
		}
	}
	return h, sc.Err()
}
