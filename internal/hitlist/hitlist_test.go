package hitlist

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

func topo(t testing.TB, blocks int, seed int64) *netsim.Topology {
	t.Helper()
	u := netsim.NewSyntheticUniverse(blocks)
	return netsim.NewTopology(u, netsim.DefaultParams(seed))
}

func TestGenerateBasics(t *testing.T) {
	tp := topo(t, 4096, 1)
	h := Generate(tp)
	if h.Len() != 4096 {
		t.Fatalf("len=%d", h.Len())
	}
	for b := 0; b < 4096; b++ {
		a := h.Addr(b)
		if a == 0 {
			t.Fatalf("block %d has no entry", b)
		}
		if got, ok := tp.U.BlockIndex(a); !ok || got != b {
			t.Fatalf("entry %#x not inside block %d", a, b)
		}
	}
	if h.Responsive() == 0 {
		t.Fatal("no responsive entries at all")
	}
	frac := float64(h.Responsive()) / 4096
	// Paper §4.1.3/§5.1: hitlist targets respond ~2-3x as often as random
	// ones (~10% vs ~4%).
	if frac < 0.05 || frac > 0.35 {
		t.Errorf("responsive fraction %.3f outside [0.05,0.35]", frac)
	}
}

// TestGatewayPreference: when a block hosts its stub's gateway, the
// census must settle on it — the §5.1 bias mechanism.
func TestGatewayPreference(t *testing.T) {
	tp := topo(t, 8192, 2)
	h := Generate(tp)
	checked, picked := 0, 0
	for b := 0; b < 8192; b++ {
		gw := tp.GatewayOfBlock(b)
		if gw == 0 {
			continue
		}
		if int(gw>>8) != int(tp.U.BlockAddr(b)>>8) {
			continue // gateway lives in another block of the stub
		}
		checked++
		if h.Addr(b) == gw {
			picked++
		}
	}
	if checked == 0 {
		t.Fatal("no gateway blocks found")
	}
	if picked < checked*9/10 {
		t.Fatalf("gateway picked for %d/%d gateway blocks", picked, checked)
	}
}

// TestHitlistShorterDistances verifies the headline of §5.1 on generated
// lists: responsive hitlist targets are closer than responsive random
// targets in the same blocks.
func TestHitlistShorterDistances(t *testing.T) {
	tp := topo(t, 8192, 3)
	h := Generate(tp)
	shorter, longer := 0, 0
	for b := 0; b < 8192; b++ {
		hl := h.Addr(b)
		dh := tp.DistanceNow(hl, 0)
		if dh == 0 {
			continue
		}
		// A "random" representative: any live host at a different octet.
		base := tp.U.BlockAddr(b)
		var rnd uint32
		for oct := uint32(200); oct > 100; oct-- {
			cand := base | oct
			if cand != hl && tp.HostExists(cand) {
				rnd = cand
				break
			}
		}
		if rnd == 0 {
			continue
		}
		dr := tp.DistanceNow(rnd, 0)
		if dr == 0 {
			continue
		}
		if dh < dr {
			shorter++
		} else if dh > dr {
			longer++
		}
	}
	if shorter <= longer {
		t.Fatalf("hitlist not biased shorter: shorter=%d longer=%d", shorter, longer)
	}
	t.Logf("hitlist shorter in %d blocks, longer in %d", shorter, longer)
}

// TestGenerateViaPings: the packet-level census must agree with the
// oracle-based generator wherever its candidate set includes the oracle's
// pick, and every responsive entry must be genuinely ping-responsive.
func TestGenerateViaPings(t *testing.T) {
	tp := topo(t, 2048, 9)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim.New(tp, clock)
	h, err := GenerateViaPings(tp.U, n.NewConn(), clock, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h.Responsive() == 0 {
		t.Fatal("ping census found nothing")
	}
	oracle := Generate(tp)
	agree, gwChecked := 0, 0
	for b := 0; b < 2048; b++ {
		// Every responsive entry must actually answer pings.
		a := h.Addr(b)
		if a != tp.U.BlockAddr(b)|1 && !tp.PingResponsive(a) {
			t.Fatalf("block %d: census picked unresponsive %#x", b, a)
		}
		// Gateway blocks: both generators must settle on the gateway
		// (octet 1, always pinged first).
		if gw := tp.GatewayOfBlock(b); gw != 0 && gw>>8 == tp.U.BlockAddr(b)>>8 {
			gwChecked++
			if h.Addr(b) == gw && oracle.Addr(b) == gw {
				agree++
			}
		}
	}
	if gwChecked == 0 {
		t.Fatal("no gateway blocks")
	}
	if agree < gwChecked*9/10 {
		t.Fatalf("census and oracle disagree on gateways: %d/%d", agree, gwChecked)
	}
	t.Logf("ping census: %d responsive entries (oracle %d); %d/%d gateway blocks agree",
		h.Responsive(), oracle.Responsive(), agree, gwChecked)
}

func TestWriteReadRoundTrip(t *testing.T) {
	tp := topo(t, 512, 4)
	h := Generate(tp)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, tp.U)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 512; b++ {
		if got.Addr(b) != h.Addr(b) {
			t.Fatalf("block %d: %#x != %#x", b, got.Addr(b), h.Addr(b))
		}
	}
}

func TestReadIgnoresCommentsAndForeign(t *testing.T) {
	u := netsim.NewSyntheticUniverse(4)
	in := "# comment\n\n4.0.1.42\n9.9.9.9\n4.0.3.7\n"
	h, err := Read(strings.NewReader(in), u)
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr(1) != 0x04000100|42 {
		t.Fatalf("block1=%#x", h.Addr(1))
	}
	if h.Addr(3) != 0x04000300|7 {
		t.Fatalf("block3=%#x", h.Addr(3))
	}
	if h.Addr(0) != 0 || h.Addr(2) != 0 {
		t.Fatal("unlisted blocks should be zero")
	}
}

func TestReadRejectsJunk(t *testing.T) {
	u := netsim.NewSyntheticUniverse(4)
	if _, err := Read(strings.NewReader("not-an-ip\n"), u); err == nil {
		t.Fatal("junk line should error")
	}
}
