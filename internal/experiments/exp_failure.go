package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/cluster"
	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// FailureRow is one fault-placement measurement: a vantage link flaps
// permanently at FailFrac of the healthy scan's span, the supervisor
// migrates the orphaned shard, and the healed run is compared to the
// undisturbed one.
type FailureRow struct {
	FailFrac     float64 // fraction of the healthy scan at which the link dies
	Migrations   int     // shard handoffs the supervisor performed
	Failures     int     // worker failures declared (≥ Migrations)
	HealedProbes uint64  // total probes of the self-healed run
	ExtraPct     float64 // healed/undisturbed - 1
	Interfaces   int     // merged interface count (healed run)
	Reached      int     // merged reached count (healed run)
	Match        bool    // healed discovery == undisturbed single-worker discovery
}

// FailureTable reports what self-healing costs (experiment F1, the
// cluster mirror of C1's crash/resume table): when one of K vantages
// dies mid-scan, the coordinator detects the dead transport, migrates
// the shard to a surviving vantage from its last checkpoint, and the
// merged discovery must equal an undisturbed run — the only price is
// the rewound probes between the last checkpoint and the failure.
type FailureTable struct {
	Workers        int
	BaseProbes     uint64 // undisturbed K-worker run
	BaseInterfaces int
	BaseReached    int
	Rows           []FailureRow
}

// WriteText renders the table for EXPERIMENTS.md.
func (t *FailureTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Failure recovery: one of %d vantages dies mid-scan, shard auto-migrates (undisturbed baseline: %d probes, %d interfaces, %d reached)\n",
		t.Workers, t.BaseProbes, t.BaseInterfaces, t.BaseReached); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %11s %9s %12s %7s %10s %8s %6s\n",
		"fail-at", "migrations", "failures", "probes", "extra", "interfaces", "reached", "match"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%7.0f%% %11d %9d %12d %+6.2f%% %10d %8d %6v\n",
			100*r.FailFrac, r.Migrations, r.Failures, r.HealedProbes,
			100*r.ExtraPct, r.Interfaces, r.Reached, r.Match); err != nil {
			return err
		}
	}
	return nil
}

// newFaultTreeScenario is newTreeScenario plus a deterministic transport
// fault schedule. The windows draw nothing from the impairment RNG, so
// probing outside them is identical to the fault-free tree.
func newFaultTreeScenario(blocks int, seed int64, faults []netsim.FaultWindow) *Scenario {
	s := newTreeScenario(blocks, seed)
	p := s.Topo.P
	p.Impair.Faults = faults
	s.Topo = netsim.NewTopology(netsim.NewSyntheticUniverse(blocks), p)
	return s
}

// runClusterHealing runs one supervised scan over a fresh network of the
// scenario's topology with the send-error abort armed: the first failed
// write surfaces the dead transport and the supervisor migrates the
// shard, with no watchdog involved (the fault is permanent, so detection
// is deterministic).
func runClusterHealing(s *Scenario, workers int) (*cluster.Result[uint32], error) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(s.Topo, clock)
	base := core.DefaultConfig()
	base.Blocks = s.Blocks
	base.Seed = s.Seed
	base.Source = s.Topo.Vantage()
	base.Targets = s.RandomTargets()
	base.BlockOf = s.BlockOf()
	base.PPS = s.ScaledPPS(PaperPPS)
	base.Preprobe = core.PreprobeOff
	base.CollectRoutes = true
	env := cluster.Env[uint32]{
		Fam:   core.IPv4Family(),
		Base:  base,
		Clock: clock,
		NewConn: func(vantage int) (core.PacketConn, func() core.PacketReader, error) {
			return net.NewVantageConn(vantage), nil, nil
		},
	}
	return cluster.Scan(context.Background(), env, cluster.Options{
		Workers:           workers,
		AbortOnSendErrors: 1,
	})
}

// FailureRecovery measures self-healing cost (experiment F1). It runs an
// undisturbed K=3 scan to calibrate the healthy span, then for each
// fraction flaps vantage 1's link permanently at that point and lets the
// supervisor heal the scan. On the strict tree topology the healed
// merged discovery must equal the undisturbed single-worker run exactly,
// so Match is an invariant; the extra-probe column is the rewind cost of
// resuming the shard from its last checkpoint on a surviving vantage.
// fracs nil means 25/50/75%.
func FailureRecovery(s *Scenario, fracs []float64) (*FailureTable, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.25, 0.5, 0.75}
	}
	const workers = 3
	tree := newTreeScenario(s.Blocks, s.Seed)

	// Single-worker run: the discovery-equality reference (the tree
	// invariant newTreeScenario documents).
	oneRes, err := runCluster(tree, 1, false)
	if err != nil {
		return nil, err
	}
	oneIfaces, oneReached := clusterSets(oneRes.Store)

	// Undisturbed K-worker run: the probe-cost baseline and the span the
	// fault placements are fractions of.
	baseRes, err := runCluster(tree, workers, false)
	if err != nil {
		return nil, err
	}
	t := &FailureTable{
		Workers:        workers,
		BaseProbes:     baseRes.ProbesSent,
		BaseInterfaces: len(oneIfaces),
		BaseReached:    oneReached,
	}
	span := baseRes.ScanTime

	for _, frac := range fracs {
		faulted := newFaultTreeScenario(s.Blocks, s.Seed, []netsim.FaultWindow{{
			Kind:     netsim.FaultFlap,
			Start:    time.Duration(float64(span) * frac),
			Duration: 1000 * time.Hour, // permanent: the vantage never comes back
			Scoped:   true,
			Vantage:  1,
		}})
		res, err := runClusterHealing(faulted, workers)
		if err != nil {
			return nil, err
		}
		ifaces, reached := clusterSets(res.Store)
		match := !res.Interrupted && reached == oneReached && len(ifaces) == len(oneIfaces)
		for a := range ifaces {
			if !oneIfaces[a] {
				match = false
				break
			}
		}
		t.Rows = append(t.Rows, FailureRow{
			FailFrac:     frac,
			Migrations:   res.Migrations,
			Failures:     len(res.Failures),
			HealedProbes: res.ProbesSent,
			ExtraPct:     float64(res.ProbesSent)/float64(baseRes.ProbesSent) - 1,
			Interfaces:   len(ifaces),
			Reached:      reached,
			Match:        match,
		})
	}
	return t, nil
}
