package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/cluster"
	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// ClusterRow is one worker-count measurement: the same destination
// universe scanned by K worker loops with the shared global stop set,
// against the control of K loops probing their shards independently.
type ClusterRow struct {
	Workers      int
	SharedProbes uint64  // total probes with the global stop set
	IndepProbes  uint64  // total probes with per-worker stop sets only
	SavingsPct   float64 // 1 - shared/indep
	Interfaces   int     // merged interface count (shared run)
	Reached      int     // merged reached count (shared run)
	Match        bool    // merged discovery == single-worker discovery
}

// ClusterTable reports what the distributed coordinator buys: the shared
// stop set suppresses the backward probing that multiple vantages would
// each spend re-discovering the same core interfaces (Doubletree's
// global stop set, applied across the cluster), without losing coverage.
type ClusterTable struct {
	BaselineProbes     uint64
	BaselineInterfaces int
	BaselineReached    int
	Rows               []ClusterRow
}

// WriteText renders the table for EXPERIMENTS.md.
func (t *ClusterTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Cluster probe savings: shared global stop set vs independent workers (K=1 baseline: %d probes, %d interfaces, %d reached)\n",
		t.BaselineProbes, t.BaselineInterfaces, t.BaselineReached); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %12s %9s %10s %8s %6s\n",
		"workers", "shared", "independent", "savings", "interfaces", "reached", "match"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%8d %12d %12d %8.2f%% %10d %8d %6v\n",
			r.Workers, r.SharedProbes, r.IndepProbes, 100*r.SavingsPct,
			r.Interfaces, r.Reached, r.Match); err != nil {
			return err
		}
	}
	return nil
}

// newTreeScenario rebuilds the scenario's universe over a strictly
// hierarchical topology: every probabilistic structure that lets one
// (interface, TTL) pair front different sub-paths — diamonds, loops,
// middleboxes, per-block appliances, balanced pairs — is disabled, along
// with the timing nondeterminism of NewLockstepNet. On a tree,
// Doubletree's same-interface⇒same-path-below closure holds exactly, so
// merged discovery across any worker count must equal the single-worker
// run and the Match column is a strict invariant rather than a
// statistical one.
func newTreeScenario(blocks int, seed int64) *Scenario {
	u := netsim.NewSyntheticUniverse(blocks)
	p := netsim.DefaultParams(seed)
	p.ICMPRateLimitPPS = 0
	p.DynamicBlockProb = 0
	p.JitterRTT = 0
	p.DiamondProb = 0
	p.RegionDiamondProb = 0
	p.LoopStubProb = 0
	p.MiddleboxTTLResetProb = 0
	p.AddrRewriteStubProb = 0
	p.ApplianceProb = 0
	p.BalancedHopProb = 0
	return &Scenario{Blocks: blocks, Seed: seed, Topo: netsim.NewTopology(u, p)}
}

// runCluster runs one coordinated scan over a fresh network of the tree
// topology. Preprobing stays off: distance prediction couples blocks
// across shard boundaries, which would make probe counts depend on the
// sharding rather than on what the experiment measures.
func runCluster(s *Scenario, workers int, independent bool) (*cluster.Result[uint32], error) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(s.Topo, clock)
	base := core.DefaultConfig()
	base.Blocks = s.Blocks
	base.Seed = s.Seed
	base.Source = s.Topo.Vantage()
	base.Targets = s.RandomTargets()
	base.BlockOf = s.BlockOf()
	base.PPS = s.ScaledPPS(PaperPPS)
	base.Preprobe = core.PreprobeOff
	base.CollectRoutes = true
	env := cluster.Env[uint32]{
		Fam:   core.IPv4Family(),
		Base:  base,
		Clock: clock,
		NewConn: func(vantage int) (core.PacketConn, func() core.PacketReader, error) {
			return net.NewVantageConn(vantage), nil, nil
		},
	}
	return cluster.Scan(context.Background(), env, cluster.Options{
		Workers: workers, Independent: independent,
	})
}

// clusterSets extracts the comparable discovery: reached destinations
// and the interfaces seen at depth ≥ 2. Depth-1 hops are each vantage's
// private attachment link — workers 1..K-1 see their synthetic ingress
// and only vantage 0 can see the real first hop, so TTL-1 interfaces
// are legitimately vantage-dependent and excluded from the invariant.
func clusterSets(st *trace.StoreOf[uint32]) (ifaces map[uint32]bool, reached int) {
	ifaces = make(map[uint32]bool)
	st.ForEachRoute(func(r *trace.RouteOf[uint32]) {
		if r.Reached {
			reached++
		}
		for _, h := range r.Hops {
			if h.TTL >= 2 && h.Addr != r.Dst {
				ifaces[h.Addr] = true
			}
		}
	})
	return ifaces, reached
}

// ClusterSavings measures the probe cost of distributing a scan over K
// vantages (experiment C2). For each K it runs the coordinator twice
// over identical fresh networks — once with the shared global stop set,
// once with each worker's stop set private — and reports the savings the
// shared set buys, plus whether the merged discovery still equals the
// single-worker scan's. workerCounts nil means 2/4/8.
func ClusterSavings(s *Scenario, workerCounts []int) (*ClusterTable, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8}
	}
	tree := newTreeScenario(s.Blocks, s.Seed)

	baseRes, err := runCluster(tree, 1, false)
	if err != nil {
		return nil, err
	}
	baseIfaces, baseReached := clusterSets(baseRes.Store)
	t := &ClusterTable{
		BaselineProbes:     baseRes.ProbesSent,
		BaselineInterfaces: len(baseIfaces),
		BaselineReached:    baseReached,
	}

	for _, k := range workerCounts {
		shared, err := runCluster(tree, k, false)
		if err != nil {
			return nil, err
		}
		indep, err := runCluster(tree, k, true)
		if err != nil {
			return nil, err
		}
		ifaces, reached := clusterSets(shared.Store)
		match := reached == baseReached && len(ifaces) == len(baseIfaces)
		for a := range ifaces {
			if !baseIfaces[a] {
				match = false
				break
			}
		}
		t.Rows = append(t.Rows, ClusterRow{
			Workers:      k,
			SharedProbes: shared.ProbesSent,
			IndepProbes:  indep.ProbesSent,
			SavingsPct:   1 - float64(shared.ProbesSent)/float64(indep.ProbesSent),
			Interfaces:   len(ifaces),
			Reached:      reached,
			Match:        match,
		})
	}
	return t, nil
}
