package experiments

import (
	"fmt"
	"io"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/metrics"
	"github.com/flashroute/flashroute/internal/trace"
)

// HitlistBiasResult carries Figure 8 and the §5.1 statistics.
type HitlistBiasResult struct {
	// Interface totals of the two exhaustive scans.
	RandomInterfaces  int
	HitlistInterfaces int

	// JaccardByDistance[d] is the similarity of the interface sets at hop
	// distance d from the destinations (Figure 8).
	JaccardByDistance []float64

	// Route-length comparison over blocks where both scans measured a
	// route (§5.1).
	RandomLonger  int
	HitlistLonger int
	// ...and restricted to blocks where both targets responded.
	BothResponsive              int
	RandomLongerBothResponsive  int
	HitlistLongerBothResponsive int

	// On-route appearances: hitlist addresses found as intermediate hops
	// on routes to random targets of the same block, and vice versa.
	HitlistOnRandomRoutes int
	RandomOnHitlistRoutes int

	// Responsive target counts (the preprobe-responsiveness asymmetry).
	ResponsiveHitlist int
	ResponsiveRandom  int

	// Loops on routes to unresponsive random targets in blocks whose
	// hitlist target responded (§5.1: 1.7% in the paper).
	LoopEligible int
	LoopRoutes   int
}

// WriteText renders the result.
func (r *HitlistBiasResult) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, `Figure 8 / §5.1: census hitlist bias
interfaces: random scan=%d hitlist scan=%d (deficit %d)
responsive targets: hitlist=%d random=%d
route lengths (all blocks with both routes): random longer=%d hitlist longer=%d
route lengths (both targets responsive, n=%d): random longer=%d hitlist longer=%d
on-route appearances: hitlist-on-random=%d random-on-hitlist=%d
loops on unresponsive-random routes: %d of %d eligible (%.2f%%)
jaccard by hop distance from destination:
`,
		r.RandomInterfaces, r.HitlistInterfaces, r.RandomInterfaces-r.HitlistInterfaces,
		r.ResponsiveHitlist, r.ResponsiveRandom,
		r.RandomLonger, r.HitlistLonger,
		r.BothResponsive, r.RandomLongerBothResponsive, r.HitlistLongerBothResponsive,
		r.HitlistOnRandomRoutes, r.RandomOnHitlistRoutes,
		r.LoopRoutes, r.LoopEligible, 100*pct(r.LoopRoutes, r.LoopEligible))
	if err != nil {
		return err
	}
	for d, j := range r.JaccardByDistance {
		if _, err := fmt.Fprintf(w, "%d\t%.3f\n", d, j); err != nil {
			return err
		}
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Figure8HitlistBias reproduces §5.1 / Figure 8: two exhaustive scans of
// the same Internet — one probing the census hitlist's representative per
// block, one probing random representatives — compared by interface
// yield, per-distance Jaccard similarity, route lengths, on-route target
// appearances, and loops.
func Figure8HitlistBias(s *Scenario) (*HitlistBiasResult, error) {
	hl := s.Hitlist()
	randomTargets := s.RandomTargets()

	runExhaustive := func(targets func(int) uint32) (*core.Result, error) {
		cfg := s.FlashConfig()
		cfg.Exhaustive = true
		cfg.CollectRoutes = true
		cfg.Targets = targets
		return s.RunFlash(cfg)
	}
	resRandom, err := runExhaustive(randomTargets)
	if err != nil {
		return nil, err
	}
	resHitlist, err := runExhaustive(hl.TargetFunc())
	if err != nil {
		return nil, err
	}

	out := &HitlistBiasResult{
		RandomInterfaces:  resRandom.Store.Interfaces().Len(),
		HitlistInterfaces: resHitlist.Store.Interfaces().Len(),
		JaccardByDistance: metrics.JaccardByDistance(resRandom.Store, resHitlist.Store, 10),
	}

	for b := 0; b < s.Blocks; b++ {
		rnd, hit := randomTargets(b), hl.Addr(b)
		rr := resRandom.Store.Route(rnd)
		rh := resHitlist.Store.Route(hit)

		rLen, hLen := routeLen(rr), routeLen(rh)
		if rLen > 0 && hLen > 0 {
			if rLen > hLen {
				out.RandomLonger++
			} else if hLen > rLen {
				out.HitlistLonger++
			}
		}

		rReached := rr != nil && rr.Reached
		hReached := rh != nil && rh.Reached
		if rReached {
			out.ResponsiveRandom++
		}
		if hReached {
			out.ResponsiveHitlist++
		}
		if rReached && hReached {
			out.BothResponsive++
			if rr.Length > rh.Length {
				out.RandomLongerBothResponsive++
			} else if rh.Length > rr.Length {
				out.HitlistLongerBothResponsive++
			}
		}

		// On-route intermediate appearances (strictly before the end).
		if rr != nil && hit != rnd && onRouteIntermediate(rr, hit) {
			out.HitlistOnRandomRoutes++
		}
		if rh != nil && rnd != hit && onRouteIntermediate(rh, rnd) {
			out.RandomOnHitlistRoutes++
		}

		// Loop census over unresponsive-random / responsive-hitlist blocks.
		if hReached && !rReached && rr != nil {
			out.LoopEligible++
			if rr.HasLoop() {
				out.LoopRoutes++
			}
		}
	}
	return out, nil
}

func routeLen(r *trace.Route) int {
	if r == nil {
		return 0
	}
	return int(r.Length)
}

// onRouteIntermediate reports whether addr appears as an intermediate hop
// of the route (not as its final destination response).
func onRouteIntermediate(r *trace.Route, addr uint32) bool {
	for _, h := range r.Hops {
		if h.Addr == addr && !(r.Reached && h.TTL == r.Length) {
			return true
		}
	}
	return false
}
