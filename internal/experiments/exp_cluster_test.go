package experiments

import "testing"

// TestClusterSavingsShape asserts C2's qualitative shape at reduced
// scale: the shared global stop set never probes more than independent
// workers, the gap grows with K, and merged discovery matches the
// single-worker scan exactly in the tree environment.
func TestClusterSavingsShape(t *testing.T) {
	r, err := ClusterSavings(scen(t, 8192), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	prev := 0.0
	for _, row := range r.Rows {
		if !row.Match {
			t.Errorf("K=%d: merged discovery diverged from the K=1 baseline", row.Workers)
		}
		if row.SharedProbes > row.IndepProbes {
			t.Errorf("K=%d: shared stop set probed more than independent (%d > %d)",
				row.Workers, row.SharedProbes, row.IndepProbes)
		}
		if row.SavingsPct < prev {
			t.Errorf("K=%d: savings %.3f%% shrank from the smaller K's %.3f%%",
				row.Workers, 100*row.SavingsPct, 100*prev)
		}
		prev = row.SavingsPct
	}
}
