package experiments

import (
	"fmt"
	"io"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/metrics"
)

// AccuracyResult is the outcome of the Figure 3 / Figure 4 experiments:
// the distribution of the difference between traceroute-style triggering
// TTLs and the one-probe (or predicted) distances.
type AccuracyResult struct {
	Name string
	// Hist is the PDF/CDF support of (triggering TTL - estimate).
	Hist *metrics.IntHist
	// Exact and WithinOne are the headline fractions the paper quotes.
	Exact     float64
	WithinOne float64
	// Compared is the number of destinations entering the comparison.
	Compared int
}

// WriteText renders the result for EXPERIMENTS.md.
func (r *AccuracyResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: compared=%d exact=%.1f%% within1=%.1f%%\n",
		r.Name, r.Compared, 100*r.Exact, 100*r.WithinOne); err != nil {
		return err
	}
	return r.Hist.WriteTSV(w)
}

// Figure3HopDistanceAccuracy reproduces §3.3.2 / Figure 3: measure each
// destination's distance with a single TTL-32 probe, then determine the
// "triggering TTL" the traditional way (probing every TTL 1..32 and
// taking the distance at which the destination answers), and compare.
//
// Both phases run on one network so route dynamics between them are live,
// exactly the effect the paper attributes the ±1 spread to.
func Figure3HopDistanceAccuracy(s *Scenario) (*AccuracyResult, error) {
	n, clock := s.NewNet()

	// Phase 1: one-probe measurements via FlashRoute's preprobing (a
	// normal scan; the main probing phase does not alter the Measured
	// array, which is frozen when preprobing ends).
	cfg := s.FlashConfig()
	cfg.Preprobe = core.PreprobeRandom
	sc, err := core.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	resA, err := sc.Run()
	if err != nil {
		return nil, err
	}

	// Phase 2 (later on the same clock): the traditional triggering-TTL
	// measurement — an exhaustive scan whose routes record the distance
	// at which each destination answered.
	cfgB := s.FlashConfig()
	cfgB.Exhaustive = true
	cfgB.CollectRoutes = false
	scB, err := core.NewScanner(cfgB, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	resB, err := scB.Run()
	if err != nil {
		return nil, err
	}

	return compareEstimates(s, resA.Measured, resB, "Figure 3 (one-probe measurement vs triggering TTL)")
}

// Figure4PredictionAccuracy reproduces §3.3.4 / Figure 4 with the paper's
// own cross-validation: prediction is applied to destinations that do not
// answer, so it cannot be checked there directly. Instead, for each block
// with a measured distance that has another measured block within the
// proximity span, predict its distance from that neighbor and compare the
// prediction against the block's triggering TTL.
func Figure4PredictionAccuracy(s *Scenario) (*AccuracyResult, error) {
	n, clock := s.NewNet()

	cfg := s.FlashConfig()
	sc, err := core.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	resA, err := sc.Run()
	if err != nil {
		return nil, err
	}

	cfgB := s.FlashConfig()
	cfgB.Exhaustive = true
	scB, err := core.NewScanner(cfgB, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	resB, err := scB.Run()
	if err != nil {
		return nil, err
	}

	// Leave-one-out prediction among measured blocks.
	span := cfg.ProximitySpan
	crossPred := make([]uint8, s.Blocks)
	for b := 0; b < s.Blocks; b++ {
		if resA.Measured[b] == 0 {
			continue
		}
		for d := 1; d <= span; d++ {
			if b-d >= 0 && resA.Measured[b-d] != 0 {
				crossPred[b] = resA.Measured[b-d]
				break
			}
			if b+d < s.Blocks && resA.Measured[b+d] != 0 {
				crossPred[b] = resA.Measured[b+d]
				break
			}
		}
	}
	return compareEstimates(s, crossPred, resB, "Figure 4 (proximity-span prediction vs triggering TTL)")
}

// compareEstimates builds the difference histogram between per-block
// distance estimates and the triggering TTLs observed in an exhaustive
// scan result.
func compareEstimates(s *Scenario, estimates []uint8, exhaustive *core.Result, name string) (*AccuracyResult, error) {
	targets := s.RandomTargets()
	hist := metrics.NewIntHist(-31, 31)
	for b := 0; b < s.Blocks; b++ {
		est := estimates[b]
		if est == 0 {
			continue
		}
		rt := exhaustive.Store.Route(targets(b))
		if rt == nil || !rt.Reached || rt.Length == 0 {
			continue
		}
		hist.Add(int(rt.Length) - int(est))
	}
	return &AccuracyResult{
		Name:      name,
		Hist:      hist,
		Exact:     hist.PDF(0),
		WithinOne: hist.FractionWithin(1),
		Compared:  int(hist.Total()),
	}, nil
}
