package experiments

import (
	"fmt"
	"io"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/trace"
	"github.com/flashroute/flashroute/internal/yarrp"
)

// LossRow is one (loss rate, tool) measurement of the loss sweep.
type LossRow struct {
	LossPct     float64
	Tool        string
	Interfaces  int
	Reached     int
	Probes      uint64
	Retransmits uint64
}

// LossSweepTable reports topology discovery under packet loss: discovered
// interfaces and reached destinations as a function of the loss rate, for
// FlashRoute as-is, FlashRoute with its loss-tolerance knobs on, and the
// Yarrp-32 baseline (whose stateless design tolerates loss by simply
// missing hops — there is nothing to retransmit).
type LossSweepTable struct {
	Rows []LossRow
}

// WriteText renders the table for EXPERIMENTS.md.
func (t *LossSweepTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Loss sweep: discovery vs packet loss rate"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s %-24s %12s %10s %12s %12s\n",
		"loss", "tool", "interfaces", "reached", "probes", "retransmits"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%5.1f%% %-24s %12d %10d %12d %12d\n",
			r.LossPct, r.Tool, r.Interfaces, r.Reached, r.Probes, r.Retransmits); err != nil {
			return err
		}
	}
	return nil
}

// Find returns the row for the given loss percentage and tool, or nil.
func (t *LossSweepTable) Find(lossPct float64, tool string) *LossRow {
	for i := range t.Rows {
		if t.Rows[i].LossPct == lossPct && t.Rows[i].Tool == tool {
			return &t.Rows[i]
		}
	}
	return nil
}

// Tool labels used in the loss sweep rows.
const (
	LossToolFlash        = "FlashRoute-16"
	LossToolFlashRetries = "FlashRoute-16+retries"
	LossToolYarrp        = "Yarrp-32"
)

// LossSweep measures discovered interfaces and reached destinations vs
// independent packet loss for FlashRoute (with and without preprobe/
// forward retries) and the Yarrp-32 baseline, all over the same topology.
// rates are loss probabilities; nil uses 0/2/5/10/20%.
func LossSweep(s *Scenario, rates []float64) (*LossSweepTable, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.02, 0.05, 0.10, 0.20}
	}
	t := &LossSweepTable{}
	for _, rate := range rates {
		im := netsim.Impairments{LossProb: rate}
		pct := rate * 100

		res, err := s.runFlashImpaired(s.FlashConfig(), im)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, lossRowFromFlash(pct, LossToolFlash, res))

		rcfg := s.FlashConfig()
		rcfg.PreprobeRetries = 1
		rcfg.ForwardRetries = 1
		res, err = s.runFlashImpaired(rcfg, im)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, lossRowFromFlash(pct, LossToolFlashRetries, res))

		yres, err := s.runYarrpImpaired(s.yarrpConfig(), im)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, LossRow{
			LossPct:    pct,
			Tool:       LossToolYarrp,
			Interfaces: yres.Store.Interfaces().Len(),
			Reached:    reachedCount(yres.Store),
			Probes:     yres.ProbesSent,
		})
	}
	return t, nil
}

func lossRowFromFlash(pct float64, tool string, res *core.Result) LossRow {
	return LossRow{
		LossPct:     pct,
		Tool:        tool,
		Interfaces:  res.Store.Interfaces().Len(),
		Reached:     reachedCount(res.Store),
		Probes:      res.ProbesSent,
		Retransmits: res.RetransmittedProbes,
	}
}

func reachedCount(st *trace.Store) int {
	n := 0
	st.ForEachRoute(func(rt *trace.Route) {
		if rt.Reached {
			n++
		}
	})
	return n
}

func (s *Scenario) runFlashImpaired(cfg core.Config, im netsim.Impairments) (*core.Result, error) {
	n, clock := s.NewImpairedNet(im)
	sc, err := core.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}

func (s *Scenario) runYarrpImpaired(cfg yarrp.Config, im netsim.Impairments) (*yarrp.Result, error) {
	n, clock := s.NewImpairedNet(im)
	sc, err := yarrp.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}
