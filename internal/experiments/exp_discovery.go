package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/metrics"
)

// DiscoveryResult carries the §5.2 discovery-optimized-mode comparison.
type DiscoveryResult struct {
	// Discovery-optimized FlashRoute: a FlashRoute-32 main scan plus
	// ExtraScans port-varied backward scans.
	ExtraScans          int
	DiscoveryInterfaces int
	DiscoveryProbes     uint64
	DiscoveryTime       time.Duration
	// Baseline: what simulated Yarrp-32-UDP discovers (in comparable or
	// greater time, since it spends its budget on exhaustive probing).
	YarrpUDPInterfaces int
	YarrpUDPProbes     uint64
	YarrpUDPTime       time.Duration
}

// WriteText renders the comparison.
func (r *DiscoveryResult) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, `§5.2 discovery-optimized mode (%d extra scans)
discovery-optimized: %d interfaces, %d probes, %s
yarrp-32-udp (sim):  %d interfaces, %d probes, %s
extra interfaces over exhaustive probing: %d
`,
		r.ExtraScans,
		r.DiscoveryInterfaces, r.DiscoveryProbes, metrics.FormatDuration(r.DiscoveryTime),
		r.YarrpUDPInterfaces, r.YarrpUDPProbes, metrics.FormatDuration(r.YarrpUDPTime),
		r.DiscoveryInterfaces-r.YarrpUDPInterfaces)
	return err
}

// Discovery5_2 reproduces §5.2: FlashRoute's discovery-optimized mode
// (FlashRoute-32 main scan + extra backward-only scans with shifted
// source ports, sharing the stop set) discovers load-balanced alternative
// routes that exhaustive single-flow probing cannot.
func Discovery5_2(s *Scenario, extraScans int) (*DiscoveryResult, error) {
	if extraScans <= 0 {
		extraScans = 3
	}
	cfg := s.FlashConfig()
	cfg.SplitTTL = 32
	cfg.ExtraScans = extraScans
	disc, err := s.RunFlash(cfg)
	if err != nil {
		return nil, err
	}

	ecfg := s.FlashConfig()
	ecfg.Exhaustive = true
	ex, err := s.RunFlash(ecfg)
	if err != nil {
		return nil, err
	}

	return &DiscoveryResult{
		ExtraScans:          extraScans,
		DiscoveryInterfaces: disc.Store.Interfaces().Len(),
		DiscoveryProbes:     disc.ProbesSent,
		DiscoveryTime:       disc.ScanTime,
		YarrpUDPInterfaces:  ex.Store.Interfaces().Len(),
		YarrpUDPProbes:      ex.ProbesSent,
		YarrpUDPTime:        ex.ScanTime,
	}, nil
}

// RewriteResult carries the §5.3 in-flight-modification measurement.
type RewriteResult struct {
	Probes     uint64
	Responses  uint64
	Mismatched uint64
}

// MismatchFraction is the share of received responses whose quoted
// destination failed the source-port checksum test.
func (r *RewriteResult) MismatchFraction() float64 {
	if r.Responses == 0 {
		return 0
	}
	return float64(r.Mismatched) / float64(r.Responses)
}

// WriteText renders the measurement.
func (r *RewriteResult) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "§5.3 in-flight destination modification: %d of %d responses mismatched (%.4f%%), %d probes\n",
		r.Mismatched, r.Responses, 100*r.MismatchFraction(), r.Probes)
	return err
}

// Rewrite5_3 reproduces §5.3: run a standard FlashRoute-16 scan and count
// responses whose quoted destination does not match the checksum carried
// in the source port — in-flight destination modification by middleboxes.
func Rewrite5_3(s *Scenario) (*RewriteResult, error) {
	net, vclock := s.NewNet()
	cfg := s.FlashConfig()
	sc, err := core.NewScanner(cfg, net.NewConn(), vclock)
	if err != nil {
		return nil, err
	}
	res, err := sc.Run()
	if err != nil {
		return nil, err
	}
	return &RewriteResult{
		Probes:     res.ProbesSent,
		Responses:  net.Stats.Responses.Load(),
		Mismatched: res.MismatchedResponses,
	}, nil
}
