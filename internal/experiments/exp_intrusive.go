package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/metrics"
	"github.com/flashroute/flashroute/internal/scamper"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
	"github.com/flashroute/flashroute/internal/yarrp"
)

// TTLProfileResult carries Figure 7's data: per tool, how many targets had
// their route probed at each TTL.
type TTLProfileResult struct {
	FlashRoute metrics.TTLProfile
	Scamper    metrics.TTLProfile
}

// WriteText renders both series side by side.
func (r *TTLProfileResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Figure 7: targets with routes probed at a given TTL\nttl\tflashroute16\tscamper16"); err != nil {
		return err
	}
	for ttl := 1; ttl <= 16; ttl++ {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\n", ttl,
			r.FlashRoute.Counts[ttl], r.Scamper.Counts[ttl]); err != nil {
			return err
		}
	}
	return nil
}

// Figure7ProbedTTLDistribution reproduces Figure 7: the distribution of
// targets whose routes are explored at each TTL, for Scamper-16 and
// FlashRoute-16. FlashRoute's earlier, progressive termination of
// backward probing is the visible difference.
func Figure7ProbedTTLDistribution(s *Scenario) (*TTLProfileResult, error) {
	out := &TTLProfileResult{}

	cfg := s.FlashConfig()
	cfg.Preprobe = core.PreprobeHitlist
	cfg.PreprobeTargets = s.Hitlist().TargetFunc()
	cfg.Observer = func(dst uint32, ttl uint8, at time.Duration) {
		if ttl <= 16 {
			out.FlashRoute.Add(ttl)
		}
	}
	if _, err := s.RunFlash(cfg); err != nil {
		return nil, err
	}

	if _, err := s.runScamper(func(c *scamper.Config) {
		c.Observer = func(dst uint32, ttl uint8, at time.Duration) {
			if ttl <= 16 {
				out.Scamper.Add(ttl)
			}
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// OverprobeRow is one line of Table 4.
type OverprobeRow struct {
	Name                 string
	OverprobedInterfaces int
	DroppedProbes        uint64
}

// OverprobeResult carries Table 4.
type OverprobeResult struct {
	Rows []OverprobeRow
}

// WriteText renders the table.
func (r *OverprobeResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table 4: interface overprobing (limit 500 ICMP/s per interface)\n%-28s %22s %16s\n",
		"tool", "overprobed interfaces", "dropped probes"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-28s %22d %16d\n",
			row.Name, row.OverprobedInterfaces, row.DroppedProbes); err != nil {
			return err
		}
	}
	return nil
}

// Table4Overprobing reproduces §4.2.2 / Table 4: replay each tool's probe
// stream against the topology discovered by a 10 Kpps Scamper scan, and
// count interfaces receiving more than the ICMP rate limit in any
// one-second window, plus the probes a limiting router would not answer.
//
// Unlike the throughput experiments, the probing rate here is NOT scaled
// down with the universe: the ICMP rate limit is an absolute 500/s, so
// overprobing only manifests at the paper's real 100 Kpps. The scans are
// shorter instead.
func Table4Overprobing(s *Scenario) (*OverprobeResult, error) {
	// Reference topology. The paper maps probes through the routes a
	// 10 Kpps Scamper scan discovered; since Scamper's Doubletree probing
	// leaves per-destination holes below its convergence points, the
	// paper implicitly relies on route sharing to complete the picture.
	// Here the simulator's ground truth provides exactly that completed
	// reference: the responsive router each (destination, TTL) pair would
	// hit on its default Paris-UDP flow.
	mapper := func(dst uint32, ttl uint8) (uint32, bool) {
		return s.Topo.RouterAt(dst, ttl, 0)
	}
	limit := s.Topo.P.ICMPRateLimitPPS

	out := &OverprobeResult{}
	addFlash := func(name string, split uint8) error {
		o := metrics.NewOverprobe(limit, mapper)
		cfg := s.FlashConfig()
		cfg.PPS = PaperPPS
		cfg.SplitTTL = split
		cfg.Preprobe = core.PreprobeHitlist
		cfg.PreprobeTargets = s.Hitlist().TargetFunc()
		cfg.Observer = o.Observe
		if _, err := s.RunFlash(cfg); err != nil {
			return err
		}
		over, dropped := o.Result()
		out.Rows = append(out.Rows, OverprobeRow{name, over, dropped})
		return nil
	}
	if err := addFlash("FlashRoute-16", 16); err != nil {
		return nil, err
	}
	if err := addFlash("FlashRoute-32", 32); err != nil {
		return nil, err
	}

	addYarrp := func(name string, protection uint8) error {
		o := metrics.NewOverprobe(limit, mapper)
		cfg := s.yarrpConfig()
		cfg.PPS = PaperPPS
		cfg.NeighborhoodLimit = protection
		// The paper's 30 s protection timeout assumes an hour-long scan;
		// scale it to this universe's scan length so protection can
		// engage at all.
		cfg.NeighborhoodTimeout = 2 * time.Second
		cfg.Observer = o.Observe
		if _, err := s.runYarrp(cfg); err != nil {
			return err
		}
		over, dropped := o.Result()
		out.Rows = append(out.Rows, OverprobeRow{name, over, dropped})
		return nil
	}
	if err := addYarrp("Yarrp-32", 0); err != nil {
		return nil, err
	}
	if err := addYarrp("Yarrp-32 3-hop protection", 3); err != nil {
		return nil, err
	}
	if err := addYarrp("Yarrp-32 6-hop protection", 6); err != nil {
		return nil, err
	}
	return out, nil
}

// buildHopMapper indexes a route store into a (dst,ttl) -> interface map.
func buildHopMapper(st *trace.Store) metrics.HopMapper {
	idx := make(map[uint64]uint32)
	st.ForEachRoute(func(r *trace.Route) {
		for _, h := range r.Hops {
			idx[uint64(r.Dst)<<8|uint64(h.TTL)] = h.Addr
		}
	})
	return func(dst uint32, ttl uint8) (uint32, bool) {
		hop, ok := idx[uint64(dst)<<8|uint64(ttl)]
		return hop, ok
	}
}

// RateRow is one line of Table 5.
type RateRow struct {
	Name string
	// MeasuredKpps is the unthrottled probing rate this host sustains.
	MeasuredKpps float64
	// EstimatedFullScan extrapolates the time a paper-scale (11.1M-block)
	// scan would take at this rate with this tool's probe budget.
	EstimatedFullScan time.Duration
}

// RateResult carries Table 5.
type RateResult struct {
	Rows []RateRow
}

// WriteText renders the table.
func (r *RateResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table 5: non-throttled scan speed\n%-16s %14s %24s\n",
		"tool", "speed (Kpps)", "est. paper-scale scan"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-16s %14.1f %24s\n",
			row.Name, row.MeasuredKpps, metrics.FormatDuration(row.EstimatedFullScan)); err != nil {
			return err
		}
	}
	return nil
}

// Table5MaxRate reproduces §4.2.3 / Table 5: run each tool unthrottled on
// the real clock and measure the probing rate it sustains; the estimated
// full-scan time extrapolates to the paper's universe with each tool's
// per-block probe budget.
func Table5MaxRate(s *Scenario) (*RateResult, error) {
	out := &RateResult{}
	scale := float64(PaperBlocks) / float64(s.Blocks)

	runFlash := func(name string, split uint8) error {
		clock := simclock.NewReal()
		n := s.newFastNet(clock)
		cfg := s.FlashConfig()
		cfg.SplitTTL = split
		cfg.PPS = 0 // unthrottled
		cfg.MinRoundTime = time.Millisecond
		cfg.DrainWait = 100 * time.Millisecond
		sc, err := core.NewScanner(cfg, n.NewConn(), clock)
		if err != nil {
			return err
		}
		res, err := sc.Run()
		if err != nil {
			return err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out.Rows = append(out.Rows, RateRow{
			Name:              name,
			MeasuredKpps:      rate / 1000,
			EstimatedFullScan: time.Duration(float64(res.ProbesSent) * scale / rate * float64(time.Second)),
		})
		return nil
	}
	if err := runFlash("FlashRoute-32", 32); err != nil {
		return nil, err
	}
	if err := runFlash("FlashRoute-16", 16); err != nil {
		return nil, err
	}

	runYarrpRate := func(name string, maxTTL uint8, fill bool) error {
		clock := simclock.NewReal()
		n := s.newFastNet(clock)
		cfg := s.yarrpConfig()
		cfg.MaxTTL = maxTTL
		cfg.FillMode = fill
		if fill {
			cfg.FillMax = 32
		}
		cfg.PPS = 0
		cfg.DrainWait = 100 * time.Millisecond
		sc, err := yarrp.NewScanner(cfg, n.NewConn(), clock)
		if err != nil {
			return err
		}
		res, err := sc.Run()
		if err != nil {
			return err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out.Rows = append(out.Rows, RateRow{
			Name:              name,
			MeasuredKpps:      rate / 1000,
			EstimatedFullScan: time.Duration(float64(res.ProbesSent) * scale / rate * float64(time.Second)),
		})
		return nil
	}
	if err := runYarrpRate("Yarrp-32", 32, false); err != nil {
		return nil, err
	}
	if err := runYarrpRate("Yarrp-16", 16, true); err != nil {
		return nil, err
	}

	// The IPv6 instantiation of the same engine, over a candidate list
	// sized like this universe, closes the table: the generic core should
	// sustain a comparable CPU-bound rate regardless of address family.
	row6, err := MaxRate6(s.Blocks, s.Seed)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row6)
	return out, nil
}

// SenderRateRow is one sender-count measurement of SenderScaling.
type SenderRateRow struct {
	Senders      int
	MeasuredKpps float64
	// Interfaces discovered — the sanity check that parallelism does not
	// change the topology the scan sees, only how fast it sees it.
	Interfaces int
}

// SenderScaling measures the unthrottled probing rate the engine sustains
// at each sender-goroutine count, on the same near-zero-RTT network used
// by the Table 5 measurement so the numbers are CPU-bound and comparable
// to it. The paper's engine is single-sender (one sending thread, §3.2);
// this quantifies what the sharded multi-sender extension buys on hosts
// with spare cores.
func SenderScaling(s *Scenario, senders []int) ([]SenderRateRow, error) {
	var out []SenderRateRow
	for _, k := range senders {
		clock := simclock.NewReal()
		n := s.newFastNet(clock)
		cfg := s.FlashConfig()
		cfg.PPS = 0 // unthrottled
		cfg.Senders = k
		cfg.MinRoundTime = time.Millisecond
		cfg.DrainWait = 100 * time.Millisecond
		sc, err := core.NewScanner(cfg, n.NewConn(), clock)
		if err != nil {
			return nil, err
		}
		res, err := sc.Run()
		if err != nil {
			return nil, err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out = append(out, SenderRateRow{
			Senders:      k,
			MeasuredKpps: rate / 1000,
			Interfaces:   res.Store.Interfaces().Len(),
		})
	}
	return out, nil
}

// ReceiverRateRow is one receiver-count measurement of ReceiverScaling.
type ReceiverRateRow struct {
	Receivers    int
	MeasuredKpps float64
	// Interfaces discovered — the sanity check that the sharded receive
	// pipeline sees the same topology as the inline receiver.
	Interfaces int
}

// ReceiverScaling measures the unthrottled probing rate at each
// receiver-worker count with the sender count held fixed, on the same
// near-zero-RTT network as SenderScaling. The paper's engine has exactly
// one receiving thread (§3.2); this quantifies what parallel reply
// parsing with block-affinity dispatch buys once senders outrun a single
// receiver.
func ReceiverScaling(s *Scenario, senders int, receivers []int) ([]ReceiverRateRow, error) {
	var out []ReceiverRateRow
	for _, r := range receivers {
		clock := simclock.NewReal()
		n := s.newFastNet(clock)
		cfg := s.FlashConfig()
		cfg.PPS = 0 // unthrottled
		cfg.Senders = senders
		cfg.Receivers = r
		cfg.MinRoundTime = time.Millisecond
		cfg.DrainWait = 100 * time.Millisecond
		conn := n.NewConn()
		if r > 1 {
			cfg.NewReader = func() core.PacketReader { return conn.NewReader() }
		}
		sc, err := core.NewScanner(cfg, conn, clock)
		if err != nil {
			return nil, err
		}
		res, err := sc.Run()
		if err != nil {
			return nil, err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out = append(out, ReceiverRateRow{
			Receivers:    r,
			MeasuredKpps: rate / 1000,
			Interfaces:   res.Store.Interfaces().Len(),
		})
	}
	return out, nil
}

// BatchRateRow is one batch-size measurement of BatchSweep.
type BatchRateRow struct {
	Batch        int
	MeasuredKpps float64
	// Interfaces discovered — the sanity check that the batched transport
	// still discovers a comparable topology (exact equivalence is proven
	// on the virtual clock by the core golden-grid tests; real-clock
	// unthrottled runs vary with timing like the other rate experiments).
	Interfaces int
}

// BatchSweepResult carries the batch-size sweep.
type BatchSweepResult struct {
	Rows []BatchRateRow
}

// WriteText renders the sweep.
func (r *BatchSweepResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Batch sweep: unthrottled scan rate vs packets per transport call\n%-8s %14s %12s\n",
		"batch", "measured kpps", "interfaces"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-8d %14.1f %12d\n",
			row.Batch, row.MeasuredKpps, row.Interfaces); err != nil {
			return err
		}
	}
	return nil
}

// BatchSweep measures the unthrottled probing rate at each batch size on
// the near-zero-RTT Table 5 network — the end-to-end view of what the
// batched data path (arena-fed WriteBatch sends, ReadBatch receive
// workers) buys over one-transport-call-per-packet. Batch 1 is the
// classic path.
func BatchSweep(s *Scenario, batches []int) (*BatchSweepResult, error) {
	if len(batches) == 0 {
		batches = []int{1, 8, 32, 128}
	}
	out := &BatchSweepResult{}
	for _, k := range batches {
		clock := simclock.NewReal()
		n := s.newFastNet(clock)
		cfg := s.FlashConfig()
		cfg.PPS = 0 // unthrottled
		cfg.Batch = k
		cfg.MinRoundTime = time.Millisecond
		cfg.DrainWait = 100 * time.Millisecond
		sc, err := core.NewScanner(cfg, n.NewConn(), clock)
		if err != nil {
			return nil, err
		}
		res, err := sc.Run()
		if err != nil {
			return nil, err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out.Rows = append(out.Rows, BatchRateRow{
			Batch:        k,
			MeasuredKpps: rate / 1000,
			Interfaces:   res.Store.Interfaces().Len(),
		})
	}
	return out, nil
}
