package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/metrics"
	"github.com/flashroute/flashroute/internal/scamper"
	"github.com/flashroute/flashroute/internal/yarrp"
)

// Row is one line of a paper-style results table.
type Row struct {
	Name       string
	Interfaces int
	Probes     uint64
	ScanTime   time.Duration
}

// Table is a named collection of rows.
type Table struct {
	Name string
	Rows []Row
}

// WriteText renders the table for EXPERIMENTS.md.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %12s %14s %12s\n", "configuration", "interfaces", "probes", "scan time"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%-28s %12d %14d %12s\n",
			r.Name, r.Interfaces, r.Probes, metrics.FormatDuration(r.ScanTime)); err != nil {
			return err
		}
	}
	return nil
}

func rowFromFlash(name string, res *core.Result) Row {
	return Row{Name: name, Interfaces: res.Store.Interfaces().Len(),
		Probes: res.ProbesSent, ScanTime: res.ScanTime}
}

// Table1RedundancyElimination reproduces Table 1: full scans with and
// without termination of backward probing at convergence points, for
// split TTLs 32 and 16 (preprobing with span-5 prediction, gap limit 5).
func Table1RedundancyElimination(s *Scenario) (*Table, error) {
	t := &Table{Name: "Table 1: impact of redundancy elimination during backward probing"}
	for _, split := range []uint8{32, 16} {
		for _, off := range []bool{false, true} {
			cfg := s.FlashConfig()
			cfg.SplitTTL = split
			cfg.NoRedundancyElimination = off
			res, err := s.RunFlash(cfg)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("split-%d/redundancy-removal-%s", split, onOff(!off))
			t.Rows = append(t.Rows, rowFromFlash(label, res))
		}
	}
	return t, nil
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// Figure6GapLimit reproduces Figure 6: discovered interfaces and scan
// time as a function of the gap limit (split 16, redundancy removal on,
// preprobing with span 5).
func Figure6GapLimit(s *Scenario, gaps []uint8) (*Table, error) {
	if len(gaps) == 0 {
		gaps = []uint8{0, 1, 2, 3, 4, 5, 6, 7, 8}
	}
	t := &Table{Name: "Figure 6: discovered interfaces and scan time vs gap limit"}
	for _, gap := range gaps {
		cfg := s.FlashConfig()
		cfg.GapLimit = gap
		res, err := s.RunFlash(cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, rowFromFlash(fmt.Sprintf("gap-limit-%d", gap), res))
	}
	return t, nil
}

// Table2Preprobing reproduces Table 2: the effect of hitlist, random and
// no preprobing for default split TTLs 32 and 16.
func Table2Preprobing(s *Scenario) (*Table, error) {
	t := &Table{Name: "Table 2: effect of preprobing on FlashRoute performance"}
	hl := s.Hitlist()
	for _, split := range []uint8{32, 16} {
		for _, mode := range []core.PreprobeMode{core.PreprobeHitlist, core.PreprobeRandom, core.PreprobeOff} {
			cfg := s.FlashConfig()
			cfg.SplitTTL = split
			cfg.Preprobe = mode
			label := fmt.Sprintf("%d/", split)
			switch mode {
			case core.PreprobeHitlist:
				cfg.PreprobeTargets = hl.TargetFunc()
				label += "hitlist preprobing"
			case core.PreprobeRandom:
				label += "random preprobing"
			case core.PreprobeOff:
				label += "no preprobing"
			}
			res, err := s.RunFlash(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, rowFromFlash(label, res))
		}
	}
	return t, nil
}

// Table3ToolComparison reproduces Table 3: FlashRoute-16, FlashRoute-32,
// Yarrp-16 (fill mode), Yarrp-32, Scamper-16 and the Yarrp-32-UDP
// simulation, each on a fresh instance of the same Internet.
func Table3ToolComparison(s *Scenario) (*Table, error) {
	t := &Table{Name: "Table 3: performance of FlashRoute, Yarrp, and Scamper on a full scan"}
	hl := s.Hitlist()

	// FlashRoute-16 and FlashRoute-32: hitlist preprobing (§4.2.1).
	for _, split := range []uint8{16, 32} {
		cfg := s.FlashConfig()
		cfg.SplitTTL = split
		cfg.Preprobe = core.PreprobeHitlist
		cfg.PreprobeTargets = hl.TargetFunc()
		res, err := s.RunFlash(cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, rowFromFlash(fmt.Sprintf("FlashRoute-%d", split), res))
	}

	// Yarrp-16 (fill mode to 32) and Yarrp-32, Paris-TCP-ACK.
	for _, maxTTL := range []uint8{16, 32} {
		ycfg := s.yarrpConfig()
		ycfg.MaxTTL = maxTTL
		if maxTTL == 16 {
			ycfg.FillMode = true
			ycfg.FillMax = 32
		}
		res, err := s.runYarrp(ycfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("Yarrp-%d", maxTTL),
			Interfaces: res.Store.Interfaces().Len(), Probes: res.ProbesSent, ScanTime: res.ScanTime})
	}

	// Scamper-16 at its 10 Kpps maximum.
	scRes, err := s.runScamper(nil)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Name: "Scamper-16",
		Interfaces: scRes.Store.Interfaces().Len(), Probes: scRes.ProbesSent, ScanTime: scRes.ScanTime})

	// Yarrp-32-UDP simulated with FlashRoute's exhaustive mode (§4.2.1).
	ecfg := s.FlashConfig()
	ecfg.Exhaustive = true
	eres, err := s.RunFlash(ecfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rowFromFlash("Yarrp-32-UDP (simulation)", eres))

	return t, nil
}

// yarrpConfig assembles the scenario's Yarrp configuration.
func (s *Scenario) yarrpConfig() yarrp.Config {
	cfg := yarrp.DefaultConfig()
	cfg.Blocks = s.Blocks
	cfg.Seed = s.Seed
	cfg.Source = s.Topo.Vantage()
	cfg.Targets = s.RandomTargets()
	cfg.BlockOf = s.BlockOf()
	cfg.PPS = s.ScaledPPS(PaperPPS)
	return cfg
}

func (s *Scenario) runYarrp(cfg yarrp.Config) (*yarrp.Result, error) {
	n, clock := s.NewNet()
	sc, err := yarrp.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}

// scamperConfig assembles the scenario's Scamper configuration; its rate
// scales from Scamper's 10 Kpps maximum.
func (s *Scenario) scamperConfig() scamper.Config {
	cfg := scamper.DefaultConfig()
	cfg.Blocks = s.Blocks
	cfg.Seed = s.Seed
	cfg.Source = s.Topo.Vantage()
	cfg.Targets = s.RandomTargets()
	cfg.BlockOf = s.BlockOf()
	cfg.PPS = s.ScaledPPS(10_000)
	return cfg
}

func (s *Scenario) runScamper(mutate func(*scamper.Config)) (*scamper.Result, error) {
	cfg := s.scamperConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	n, clock := s.NewNet()
	sc, err := scamper.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}
