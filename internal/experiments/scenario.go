// Package experiments reproduces every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// is a function from a Scenario — a seeded synthetic Internet plus scale
// policy — to a typed result that renders itself for EXPERIMENTS.md.
//
// Scale policy: the paper scans the ~11.1M routable /24 blocks at
// 100 Kpps. Experiments here run on a scaled universe with the probing
// rate scaled by the same factor, which preserves every per-interface
// probe rate (the quantity that drives ICMP rate limiting) and every
// probes-per-block figure, and therefore the paper's ratios and scan-time
// proportions, on universes that fit in seconds of virtual time.
package experiments

import (
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/hitlist"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// PaperBlocks is the number of routable /24 blocks the paper's full scans
// cover (Yarrp-32's 355.7M probes / 32 TTLs).
const PaperBlocks = 11_115_687

// PaperPPS is the probing rate negotiated in the paper.
const PaperPPS = 100_000

// Scenario is the shared substrate of one experiment run.
type Scenario struct {
	Blocks int
	Seed   int64
	Topo   *netsim.Topology

	hl *hitlist.Hitlist
}

// NewScenario builds the synthetic Internet for the given size and seed.
func NewScenario(blocks int, seed int64) *Scenario {
	u := netsim.NewSyntheticUniverse(blocks)
	topo := netsim.NewTopology(u, netsim.DefaultParams(seed))
	return &Scenario{Blocks: blocks, Seed: seed, Topo: topo}
}

// ScaledPPS translates a paper probing rate to this universe's size so
// per-interface probe rates match the paper's.
func (s *Scenario) ScaledPPS(paperRate int) int {
	pps := int(int64(paperRate) * int64(s.Blocks) / PaperBlocks)
	if pps < 50 {
		pps = 50
	}
	return pps
}

// Hitlist lazily generates the scenario's census hitlist.
func (s *Scenario) Hitlist() *hitlist.Hitlist {
	if s.hl == nil {
		s.hl = hitlist.Generate(s.Topo)
	}
	return s.hl
}

// RandomTargets returns the per-block random representative function used
// by the main scans (one deterministic pseudo-random host octet per
// block).
func (s *Scenario) RandomTargets() func(int) uint32 {
	u := s.Topo.U
	seed := uint64(s.Seed)
	return func(block int) uint32 {
		z := seed*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93 + 0x1234
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z ^= z >> 31
		return u.BlockAddr(block) | uint32(1+z%254)
	}
}

// BlockOf returns the address-to-block mapping function.
func (s *Scenario) BlockOf() func(uint32) (int, bool) {
	u := s.Topo.U
	return func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
}

// NewNet creates a fresh network on a fresh virtual clock (one isolated
// scan world).
func (s *Scenario) NewNet() (*netsim.Net, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	return netsim.New(s.Topo, clock), clock
}

// NewImpairedNet is NewNet with network impairments layered over the same
// topology (a shallow copy shares the immutable structure, so the routes
// and responders are identical — only packet delivery degrades).
func (s *Scenario) NewImpairedNet(im netsim.Impairments) (*netsim.Net, *simclock.Virtual) {
	impaired := *s.Topo
	impaired.P.Impair = im
	clock := simclock.NewVirtual(time.Unix(0, 0))
	return netsim.New(&impaired, clock), clock
}

// newFastNet builds a network over this topology on the given (real)
// clock with near-zero RTTs, so maximum-rate measurements are CPU-bound —
// matching the paper's testbed methodology — instead of drain-bound.
func (s *Scenario) newFastNet(clock simclock.Waiter) *netsim.Net {
	fast := *s.Topo // shallow copy shares the immutable structure
	fast.P.BaseRTT = 100 * time.Microsecond
	fast.P.PerHopRTT = 0
	fast.P.JitterRTT = 200 * time.Microsecond
	return netsim.New(&fast, clock)
}

// FlashConfig assembles a core.Config for this scenario with the paper's
// defaults and the scaled probing rate.
func (s *Scenario) FlashConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Blocks = s.Blocks
	cfg.Seed = s.Seed
	cfg.Source = s.Topo.Vantage()
	cfg.Targets = s.RandomTargets()
	cfg.BlockOf = s.BlockOf()
	cfg.PPS = s.ScaledPPS(PaperPPS)
	return cfg
}

// RunFlash runs a FlashRoute scan with the given config on a fresh net.
func (s *Scenario) RunFlash(cfg core.Config) (*core.Result, error) {
	n, clock := s.NewNet()
	sc, err := core.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}
