package experiments

import (
	"fmt"
	"io"

	"github.com/flashroute/flashroute/internal/metrics"
)

// SpanRow is one line of the proximity-span exploration.
type SpanRow struct {
	Span      int
	Measured  int
	Predicted int
	Row       Row
	// WithinOne is the prediction accuracy at this span (fraction of
	// cross-validated predictions within one hop of the triggering TTL).
	WithinOne float64
}

// SpanResult carries the §5.4 proximity-span exploration the paper
// planned: how prediction coverage, prediction accuracy and overall scan
// economics respond to the span.
type SpanResult struct {
	Rows []SpanRow
}

// WriteText renders the sweep.
func (r *SpanResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "§5.4 proximity-span exploration (FlashRoute-16)\n%-6s %10s %10s %12s %12s %12s %10s\n",
		"span", "measured", "predicted", "interfaces", "probes", "scan time", "within1"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-6d %10d %10d %12d %12d %12s %9.1f%%\n",
			row.Span, row.Measured, row.Predicted,
			row.Row.Interfaces, row.Row.Probes, metrics.FormatDuration(row.Row.ScanTime),
			100*row.WithinOne); err != nil {
			return err
		}
	}
	return nil
}

// SpanSweep5_4 runs FlashRoute-16 with a range of proximity spans,
// measuring prediction coverage and leave-one-out accuracy per span —
// the "additional experiments to find a substantiated recommended value"
// of §5.4.
func SpanSweep5_4(s *Scenario, spans []int) (*SpanResult, error) {
	if len(spans) == 0 {
		spans = []int{0, 1, 2, 5, 10, 16}
	}
	out := &SpanResult{}
	for _, span := range spans {
		cfg := s.FlashConfig()
		cfg.ProximitySpan = span
		res, err := s.RunFlash(cfg)
		if err != nil {
			return nil, err
		}
		row := SpanRow{
			Span:      span,
			Measured:  res.DistancesMeasured,
			Predicted: res.DistancesPredicted,
			Row:       rowFromFlash(fmt.Sprintf("span-%d", span), res),
		}
		// Leave-one-out accuracy among measured blocks at this span,
		// against the simulator's ground truth (cheaper than a second
		// exhaustive scan per span, same statistic as Figure 4).
		targets := s.RandomTargets()
		within, total := 0, 0
		for b := 0; b < s.Blocks; b++ {
			if res.Measured[b] == 0 {
				continue
			}
			var pred uint8
			for d := 1; d <= span; d++ {
				if b-d >= 0 && res.Measured[b-d] != 0 {
					pred = res.Measured[b-d]
					break
				}
				if b+d < s.Blocks && res.Measured[b+d] != 0 {
					pred = res.Measured[b+d]
					break
				}
			}
			if pred == 0 {
				continue
			}
			truth := s.Topo.DistanceNow(targets(b), 0)
			if truth == 0 {
				continue
			}
			total++
			diff := int(pred) - int(truth)
			if diff >= -1 && diff <= 1 {
				within++
			}
		}
		if total > 0 {
			row.WithinOne = float64(within) / float64(total)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
