package experiments

import (
	"strings"
	"testing"
)

// TestLossSweepRecovery pins the loss-tolerance acceptance criterion: at
// 5% packet loss with the retry knobs on (one preprobe retry, one forward
// retry), FlashRoute's reached-destination count recovers to at least 95%
// of the lossless run on seed 1. Also checks the sweep's qualitative
// shape: loss cannot help discovery, and retransmissions actually happen.
func TestLossSweepRecovery(t *testing.T) {
	s := NewScenario(4096, 1)
	tab, err := LossSweep(s, []float64{0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows=%d, want 6", len(tab.Rows))
	}

	base := tab.Find(0, LossToolFlash)
	plain := tab.Find(5, LossToolFlash)
	retried := tab.Find(5, LossToolFlashRetries)
	ybase := tab.Find(0, LossToolYarrp)
	ylossy := tab.Find(5, LossToolYarrp)
	for name, r := range map[string]*LossRow{
		"flash@0": base, "flash@5": plain, "flash+retries@5": retried,
		"yarrp@0": ybase, "yarrp@5": ylossy,
	} {
		if r == nil {
			t.Fatalf("row %s missing", name)
		}
	}

	if base.Reached == 0 {
		t.Fatal("lossless run reached no destinations")
	}
	// The acceptance criterion: ≥95% of lossless reached destinations.
	if retried.Reached*100 < base.Reached*95 {
		t.Errorf("5%% loss with retries reached %d of %d destinations (< 95%%)",
			retried.Reached, base.Reached)
	}
	if retried.Retransmits == 0 {
		t.Error("retry configuration recorded no retransmissions under loss")
	}
	if plain.Retransmits != 0 {
		t.Errorf("plain configuration retransmitted %d probes", plain.Retransmits)
	}
	// Loss cannot help the stateless baseline.
	if ylossy.Interfaces > ybase.Interfaces {
		t.Errorf("Yarrp discovered more under loss: %d > %d", ylossy.Interfaces, ybase.Interfaces)
	}

	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FlashRoute-16+retries") {
		t.Error("rendered table missing the retries configuration")
	}
	t.Logf("\n%s", sb.String())
}
