package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// CrashRow is one kill-and-resume measurement: the scan is killed after
// KillPct% of the baseline's probes, resumed from its last checkpoint on
// a fresh network, and compared against the uninterrupted run.
type CrashRow struct {
	KillPct        int
	BaselineProbes uint64
	PartialProbes  uint64 // probes the killed run got out before dying
	ResumedProbes  uint64 // cumulative total after the resumed run finished
	ExtraProbes    uint64 // ResumedProbes - BaselineProbes (re-probe cost)
	Interfaces     int    // interfaces the resumed run discovered
	Reached        int    // destinations the resumed run reached
	Match          bool   // resumed discovery == uninterrupted discovery
}

// CrashResumeTable reports the cost of crash recovery: how many extra
// probes a kill-and-resume cycle spends re-confirming unacknowledged
// state, and that discovery is unchanged.
type CrashResumeTable struct {
	BaselineInterfaces int
	BaselineReached    int
	Rows               []CrashRow
}

// WriteText renders the table for EXPERIMENTS.md.
func (t *CrashResumeTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Crash/resume: kill at N%% of baseline probes, resume from last checkpoint (baseline: %d interfaces, %d reached)\n",
		t.BaselineInterfaces, t.BaselineReached); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s %10s %10s %10s %8s %10s %8s %6s\n",
		"kill", "baseline", "partial", "resumed", "extra", "interfaces", "reached", "match"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%5d%% %10d %10d %10d %7.2f%% %10d %8d %6v\n",
			r.KillPct, r.BaselineProbes, r.PartialProbes, r.ResumedProbes,
			100*float64(r.ExtraProbes)/float64(r.BaselineProbes),
			r.Interfaces, r.Reached, r.Match); err != nil {
			return err
		}
	}
	return nil
}

// NewLockstepNet is NewNet with every source of response nondeterminism
// disabled (no ICMP rate limiting, no route dynamics, no RTT jitter), so
// the topology's answers are a pure function of the probe set and a
// killed-and-resumed scan must reproduce the uninterrupted one exactly.
func (s *Scenario) NewLockstepNet() (*netsim.Net, *simclock.Virtual) {
	lock := *s.Topo // shallow copy shares the immutable structure
	lock.P.ICMPRateLimitPPS = 0
	lock.P.DynamicBlockProb = 0
	lock.P.JitterRTT = 0
	clock := simclock.NewVirtual(time.Unix(0, 0))
	return netsim.New(&lock, clock), clock
}

// CrashResume measures the overhead of crash recovery. For each kill
// fraction it runs the scan until the checkpoint at KillPct% of the
// baseline's probe count is written, cancels, resumes the snapshot
// against a fresh network of the same topology, and reports the extra
// probes the recovery spent re-probing unconfirmed TTLs. On the lockstep
// network the resumed run must discover exactly the baseline's
// interfaces and reached destinations. fracs are kill percentages; nil
// uses 25/50/75.
func CrashResume(s *Scenario, fracs []int) (*CrashResumeTable, error) {
	if len(fracs) == 0 {
		fracs = []int{25, 50, 75}
	}
	cfg := s.FlashConfig()
	// Redundancy elimination couples a destination's probes to its
	// neighbors' replies, which depend on receive timing; lockstep
	// equivalence needs the probe set to be timing-independent.
	cfg.NoRedundancyElimination = true
	// Unthrottled: each round's probes go out as one burst and every
	// reply is processed during the round sleep. At the scaled rate a
	// round's sends overlap its replies, which makes the forward-probing
	// horizon (and so the probe set) depend on where in the round the
	// scan was killed — burst mode removes that coupling, so resumed
	// discovery is comparable probe-for-probe with the baseline.
	cfg.PPS = 0
	return crashResumeCfg(s, fracs, cfg)
}

func crashResumeCfg(s *Scenario, fracs []int, cfg core.Config) (*CrashResumeTable, error) {
	base, err := s.runLockstep(cfg)
	if err != nil {
		return nil, err
	}
	t := &CrashResumeTable{
		BaselineInterfaces: base.Store.Interfaces().Len(),
		BaselineReached:    reachedCount(base.Store),
	}

	for _, pct := range fracs {
		kill := int(base.ProbesSent) * pct / 100
		if kill < 1 {
			kill = 1
		}

		ctx, cancel := context.WithCancel(context.Background())
		var snap []byte
		kcfg := cfg
		kcfg.CheckpointEvery = kill
		kcfg.CheckpointSink = func(b []byte) error {
			if snap == nil {
				snap = append([]byte(nil), b...)
				cancel()
			}
			return nil
		}
		kcfg.CancelGrace = 100 * time.Millisecond
		n, clock := s.NewLockstepNet()
		sc, err := core.NewScanner(kcfg, n.NewConn(), clock)
		if err != nil {
			cancel()
			return nil, err
		}
		part, err := sc.RunContext(ctx)
		cancel()
		if err != nil {
			return nil, err
		}
		if snap == nil {
			return nil, fmt.Errorf("crash at %d%%: no checkpoint captured", pct)
		}

		n2, clock2 := s.NewLockstepNet()
		rsc, err := core.ResumeScanner(cfg, n2.NewConn(), clock2, snap)
		if err != nil {
			return nil, err
		}
		res, err := rsc.Run()
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, CrashRow{
			KillPct:        pct,
			BaselineProbes: base.ProbesSent,
			PartialProbes:  part.ProbesSent,
			ResumedProbes:  res.ProbesSent,
			ExtraProbes:    res.ProbesSent - base.ProbesSent,
			Interfaces:     res.Store.Interfaces().Len(),
			Reached:        reachedCount(res.Store),
			Match: res.Store.Interfaces().Len() == t.BaselineInterfaces &&
				reachedCount(res.Store) == t.BaselineReached,
		})
	}
	return t, nil
}

func (s *Scenario) runLockstep(cfg core.Config) (*core.Result, error) {
	n, clock := s.NewLockstepNet()
	sc, err := core.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}
