package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core6"
	"github.com/flashroute/flashroute/internal/metrics"
	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/yarrp6"
)

// IPv6Result carries the FlashRoute6-vs-Yarrp6 comparison — the IPv6
// analogue of Table 3 for the paper's §5.4 extension.
type IPv6Result struct {
	Targets int

	FlashProbes     uint64
	FlashInterfaces int
	FlashTime       time.Duration
	FlashMeasured   int
	FlashPredicted  int

	YarrpProbes     uint64
	YarrpFill       uint64
	YarrpInterfaces int
	YarrpTime       time.Duration
}

// WriteText renders the comparison.
func (r *IPv6Result) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, `FlashRoute6 vs Yarrp6 over a %d-target candidate list
flashroute6: %d probes, %d interfaces, %s (measured %d / predicted %d split points)
yarrp6-16+fill: %d probes (%d fill), %d interfaces, %s
flashroute6 probe budget: %.1f%% of yarrp6's
`,
		r.Targets,
		r.FlashProbes, r.FlashInterfaces, metrics.FormatDuration(r.FlashTime),
		r.FlashMeasured, r.FlashPredicted,
		r.YarrpProbes, r.YarrpFill, r.YarrpInterfaces, metrics.FormatDuration(r.YarrpTime),
		100*float64(r.FlashProbes)/float64(r.YarrpProbes))
	return err
}

// IPv6Comparison runs FlashRoute6 and Yarrp6 over identical copies of a
// synthetic IPv6 Internet and candidate list.
func IPv6Comparison(prefixes, perPrefix int, seed int64) (*IPv6Result, error) {
	build := func() (*netsim6.Topology, *netsim6.Net, *simclock.Virtual) {
		p := netsim6.DefaultParams(seed)
		p.Prefixes = prefixes
		p.TargetsPerPrefix = perPrefix
		topo := netsim6.NewTopology(p)
		clock := simclock.NewVirtual(time.Unix(0, 0))
		return topo, netsim6.New(topo, clock), clock
	}

	out := &IPv6Result{Targets: prefixes * perPrefix}
	// The IPv6 candidate space has no paper-scale reference; scale the
	// rate so per-target budgets mirror the IPv4 methodology.
	pps := out.Targets / 8
	if pps < 200 {
		pps = 200
	}

	topoF, netF, clockF := build()
	fcfg := core6.DefaultConfig()
	fcfg.Targets = topoF.Targets()
	fcfg.Source = topoF.Vantage()
	fcfg.Seed = seed
	fcfg.PPS = pps
	fsc, err := core6.NewScanner(fcfg, netF.NewConn(), clockF)
	if err != nil {
		return nil, err
	}
	fres, err := fsc.Run()
	if err != nil {
		return nil, err
	}
	out.FlashProbes = fres.ProbesSent
	out.FlashInterfaces = fres.InterfaceCount()
	out.FlashTime = fres.ScanTime
	out.FlashMeasured = fres.DistancesMeasured
	out.FlashPredicted = fres.DistancesPredicted

	topoY, netY, clockY := build()
	ycfg := yarrp6.DefaultConfig()
	ycfg.Targets = topoY.Targets()
	ycfg.Source = topoY.Vantage()
	ycfg.Seed = seed
	ycfg.PPS = pps
	ysc, err := yarrp6.NewScanner(ycfg, netY.NewConn(), clockY)
	if err != nil {
		return nil, err
	}
	yres, err := ysc.Run()
	if err != nil {
		return nil, err
	}
	out.YarrpProbes = yres.ProbesSent
	out.YarrpFill = yres.FillProbes
	out.YarrpInterfaces = yres.InterfaceCount()
	out.YarrpTime = yres.ScanTime
	return out, nil
}

// fastTopo6 builds an IPv6 topology tuned for real-clock throughput
// measurement: the same near-zero RTTs as the Table 5 fast network, so
// rates are CPU-bound and comparable across families.
func fastTopo6(prefixes, perPrefix int, seed int64) *netsim6.Topology {
	p := netsim6.DefaultParams(seed)
	p.Prefixes = prefixes
	p.TargetsPerPrefix = perPrefix
	p.BaseRTT = 100 * time.Microsecond
	p.PerHopRTT = 0
	p.JitterRTT = 200 * time.Microsecond
	return netsim6.NewTopology(p)
}

// MaxRate6 measures the unthrottled real-clock probing rate of a
// FlashRoute6 scan over a candidate list of about the given size — the
// Table 5 measurement run through the IPv6 instantiation of the same
// engine. The full-scan estimate extrapolates to a paper-scale candidate
// list of PaperBlocks addresses (one per routed /24-equivalent, the §5.4
// hitlist regime).
func MaxRate6(targetCount int, seed int64) (RateRow, error) {
	perPrefix := 16
	prefixes := targetCount / perPrefix
	if prefixes < 1 {
		prefixes = 1
	}
	clock := simclock.NewReal()
	topo := fastTopo6(prefixes, perPrefix, seed)
	n := netsim6.New(topo, clock)
	cfg := core6.DefaultConfig()
	cfg.Targets = topo.Targets()
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.PPS = 0 // unthrottled
	cfg.MinRoundTime = time.Millisecond
	cfg.DrainWait = 100 * time.Millisecond
	sc, err := core6.NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		return RateRow{}, err
	}
	res, err := sc.Run()
	if err != nil {
		return RateRow{}, err
	}
	rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
	scale := float64(PaperBlocks) / float64(len(cfg.Targets))
	return RateRow{
		Name:              "FlashRoute6-16",
		MeasuredKpps:      rate / 1000,
		EstimatedFullScan: time.Duration(float64(res.ProbesSent) * scale / rate * float64(time.Second)),
	}, nil
}

// SenderScaling6 is SenderScaling run through the IPv6 instantiation of
// the engine: unthrottled real-clock rate at each sender count over the
// same fast network, with the interface count as the invariance sanity
// check.
func SenderScaling6(prefixes, perPrefix int, seed int64, senders []int) ([]SenderRateRow, error) {
	var out []SenderRateRow
	for _, k := range senders {
		clock := simclock.NewReal()
		topo := fastTopo6(prefixes, perPrefix, seed)
		n := netsim6.New(topo, clock)
		cfg := core6.DefaultConfig()
		cfg.Targets = topo.Targets()
		cfg.Source = topo.Vantage()
		cfg.Seed = seed
		cfg.PPS = 0 // unthrottled
		cfg.Senders = k
		cfg.MinRoundTime = time.Millisecond
		cfg.DrainWait = 100 * time.Millisecond
		sc, err := core6.NewScanner(cfg, n.NewConn(), clock)
		if err != nil {
			return nil, err
		}
		res, err := sc.Run()
		if err != nil {
			return nil, err
		}
		rate := float64(res.ProbesSent) / res.ScanTime.Seconds()
		out = append(out, SenderRateRow{
			Senders:      k,
			MeasuredKpps: rate / 1000,
			Interfaces:   res.InterfaceCount(),
		})
	}
	return out, nil
}
