package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/core6"
	"github.com/flashroute/flashroute/internal/metrics"
	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/yarrp6"
)

// IPv6Result carries the FlashRoute6-vs-Yarrp6 comparison — the IPv6
// analogue of Table 3 for the paper's §5.4 extension.
type IPv6Result struct {
	Targets int

	FlashProbes     uint64
	FlashInterfaces int
	FlashTime       time.Duration
	FlashMeasured   int
	FlashPredicted  int

	YarrpProbes     uint64
	YarrpFill       uint64
	YarrpInterfaces int
	YarrpTime       time.Duration
}

// WriteText renders the comparison.
func (r *IPv6Result) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, `FlashRoute6 vs Yarrp6 over a %d-target candidate list
flashroute6: %d probes, %d interfaces, %s (measured %d / predicted %d split points)
yarrp6-16+fill: %d probes (%d fill), %d interfaces, %s
flashroute6 probe budget: %.1f%% of yarrp6's
`,
		r.Targets,
		r.FlashProbes, r.FlashInterfaces, metrics.FormatDuration(r.FlashTime),
		r.FlashMeasured, r.FlashPredicted,
		r.YarrpProbes, r.YarrpFill, r.YarrpInterfaces, metrics.FormatDuration(r.YarrpTime),
		100*float64(r.FlashProbes)/float64(r.YarrpProbes))
	return err
}

// IPv6Comparison runs FlashRoute6 and Yarrp6 over identical copies of a
// synthetic IPv6 Internet and candidate list.
func IPv6Comparison(prefixes, perPrefix int, seed int64) (*IPv6Result, error) {
	build := func() (*netsim6.Topology, *netsim6.Net, *simclock.Virtual) {
		p := netsim6.DefaultParams(seed)
		p.Prefixes = prefixes
		p.TargetsPerPrefix = perPrefix
		topo := netsim6.NewTopology(p)
		clock := simclock.NewVirtual(time.Unix(0, 0))
		return topo, netsim6.New(topo, clock), clock
	}

	out := &IPv6Result{Targets: prefixes * perPrefix}
	// The IPv6 candidate space has no paper-scale reference; scale the
	// rate so per-target budgets mirror the IPv4 methodology.
	pps := out.Targets / 8
	if pps < 200 {
		pps = 200
	}

	topoF, netF, clockF := build()
	fcfg := core6.DefaultConfig()
	fcfg.Targets = topoF.Targets()
	fcfg.Source = topoF.Vantage()
	fcfg.Seed = seed
	fcfg.PPS = pps
	fsc, err := core6.NewScanner(fcfg, netF.NewConn(), clockF)
	if err != nil {
		return nil, err
	}
	fres, err := fsc.Run()
	if err != nil {
		return nil, err
	}
	out.FlashProbes = fres.ProbesSent
	out.FlashInterfaces = fres.InterfaceCount()
	out.FlashTime = fres.ScanTime
	out.FlashMeasured = fres.DistancesMeasured
	out.FlashPredicted = fres.DistancesPredicted

	topoY, netY, clockY := build()
	ycfg := yarrp6.DefaultConfig()
	ycfg.Targets = topoY.Targets()
	ycfg.Source = topoY.Vantage()
	ycfg.Seed = seed
	ycfg.PPS = pps
	ysc, err := yarrp6.NewScanner(ycfg, netY.NewConn(), clockY)
	if err != nil {
		return nil, err
	}
	yres, err := ysc.Run()
	if err != nil {
		return nil, err
	}
	out.YarrpProbes = yres.ProbesSent
	out.YarrpFill = yres.FillProbes
	out.YarrpInterfaces = yres.InterfaceCount()
	out.YarrpTime = yres.ScanTime
	return out, nil
}
