// Package exclude implements exclusion lists: address ranges a scan must
// never probe. The paper's ethics appendix describes maintaining such a
// list from opt-out requests; FlashRoute additionally removes private,
// multicast and reserved space from its probing list at initialization
// (§3.4).
package exclude

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// List is a set of excluded address ranges with O(log n) membership.
type List struct {
	// sorted, merged, inclusive ranges
	lo, hi []uint32
}

// Reserved returns the list every scan excludes by default: private,
// loopback, link-local, multicast and class-E reserved space.
func Reserved() *List {
	l := &List{}
	for _, c := range []string{
		"0.0.0.0/8",       // "this" network
		"10.0.0.0/8",      // RFC 1918
		"127.0.0.0/8",     // loopback
		"169.254.0.0/16",  // link-local
		"172.16.0.0/12",   // RFC 1918
		"192.168.0.0/16",  // RFC 1918
		"224.0.0.0/4",     // multicast
		"240.0.0.0/4",     // reserved / class E
		"100.64.0.0/10",   // CGN
		"192.0.2.0/24",    // TEST-NET-1
		"198.51.100.0/24", // TEST-NET-2
		"203.0.113.0/24",  // TEST-NET-3
	} {
		if err := l.AddCIDR(c); err != nil {
			panic(err) // static table
		}
	}
	l.normalize()
	return l
}

// New returns an empty list.
func New() *List { return &List{} }

// AddCIDR adds a CIDR range (prefix length 0..32).
func (l *List) AddCIDR(cidr string) error {
	var a, b, c, d, plen int
	if _, err := fmt.Sscanf(strings.TrimSpace(cidr), "%d.%d.%d.%d/%d", &a, &b, &c, &d, &plen); err != nil {
		return fmt.Errorf("exclude: bad CIDR %q: %w", cidr, err)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return fmt.Errorf("exclude: bad CIDR %q", cidr)
		}
	}
	if plen < 0 || plen > 32 {
		return fmt.Errorf("exclude: bad prefix length in %q", cidr)
	}
	addr := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
	mask := uint32(0xffffffff)
	if plen < 32 {
		mask <<= 32 - plen
	}
	if plen == 0 {
		mask = 0
	}
	base := addr & mask
	l.lo = append(l.lo, base)
	l.hi = append(l.hi, base|^mask)
	return nil
}

// Read parses an exclusion file: one CIDR (or bare address) per line,
// '#' comments allowed — the format operators maintain from opt-out
// requests.
func Read(r io.Reader) (*List, error) {
	l := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if !strings.Contains(s, "/") {
			s += "/32"
		}
		if err := l.AddCIDR(s); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	l.normalize()
	return l, nil
}

// Merge adds every range of other into l.
func (l *List) Merge(other *List) {
	l.lo = append(l.lo, other.lo...)
	l.hi = append(l.hi, other.hi...)
	l.normalize()
}

// normalize sorts and merges overlapping ranges.
func (l *List) normalize() {
	if len(l.lo) == 0 {
		return
	}
	idx := make([]int, len(l.lo))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return l.lo[idx[i]] < l.lo[idx[j]] })
	lo := make([]uint32, 0, len(l.lo))
	hi := make([]uint32, 0, len(l.hi))
	for _, i := range idx {
		if n := len(lo); n > 0 && l.lo[i] <= hi[n-1]+1 && hi[n-1] != ^uint32(0) {
			if l.hi[i] > hi[n-1] {
				hi[n-1] = l.hi[i]
			}
			continue
		}
		lo = append(lo, l.lo[i])
		hi = append(hi, l.hi[i])
	}
	l.lo, l.hi = lo, hi
}

// Contains reports whether addr is excluded.
func (l *List) Contains(addr uint32) bool {
	i := sort.Search(len(l.lo), func(i int) bool { return l.lo[i] > addr })
	return i > 0 && addr <= l.hi[i-1]
}

// Len returns the number of merged ranges.
func (l *List) Len() int { return len(l.lo) }

// SkipFunc adapts the list to the scanners' per-block Skip interface: a
// block is skipped when its base address is excluded (FlashRoute excludes
// whole /24 blocks, §3.4).
func (l *List) SkipFunc(blockAddr func(int) uint32) func(int) bool {
	return func(block int) bool { return l.Contains(blockAddr(block)) }
}
