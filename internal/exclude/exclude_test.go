package exclude

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReservedCoversKnownSpace(t *testing.T) {
	l := Reserved()
	cases := map[uint32]bool{
		0x0A000001: true,  // 10.0.0.1
		0x7F000001: true,  // 127.0.0.1
		0xC0A80101: true,  // 192.168.1.1
		0xAC100001: true,  // 172.16.0.1
		0xAC200001: false, // 172.32.0.1 (just outside /12)
		0xE0000001: true,  // 224.0.0.1 multicast
		0xF0000001: true,  // 240.0.0.1 class E
		0x08080808: false, // 8.8.8.8
		0x04000001: false, // 4.0.0.1
	}
	for addr, want := range cases {
		if got := l.Contains(addr); got != want {
			t.Fatalf("Contains(%#x)=%v want %v", addr, got, want)
		}
	}
}

func TestReadMergeAndComments(t *testing.T) {
	in := `
# opt-out requests
4.0.0.0/24
4.0.1.0/24
9.9.9.9
bad-lines-are-rejected-below
`
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("junk line accepted")
	}
	l, err := Read(strings.NewReader("# c\n4.0.0.0/24\n4.0.1.0/24\n9.9.9.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent /24s merge into one range.
	if l.Len() != 2 {
		t.Fatalf("ranges=%d want 2", l.Len())
	}
	if !l.Contains(0x04000042) || !l.Contains(0x040001FF) {
		t.Fatal("merged range misses members")
	}
	if l.Contains(0x04000200) {
		t.Fatal("range too wide")
	}
	if !l.Contains(0x09090909) || l.Contains(0x09090908) {
		t.Fatal("/32 entry wrong")
	}
}

func TestContainsMatchesLinearScan(t *testing.T) {
	l := New()
	for _, c := range []string{"4.0.0.0/22", "4.0.16.0/24", "200.1.0.0/16"} {
		if err := l.AddCIDR(c); err != nil {
			t.Fatal(err)
		}
	}
	l.normalize()
	inRange := func(a uint32) bool {
		return (a >= 0x04000000 && a <= 0x040003FF) ||
			(a >= 0x04001000 && a <= 0x040010FF) ||
			(a >= 0xC8010000 && a <= 0xC801FFFF)
	}
	prop := func(a uint32) bool { return l.Contains(a) == inRange(a) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Boundary probes.
	for _, a := range []uint32{0x03FFFFFF, 0x04000000, 0x040003FF, 0x04000400} {
		if l.Contains(a) != inRange(a) {
			t.Fatalf("boundary %#x", a)
		}
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.AddCIDR("4.0.0.0/24")
	a.normalize()
	b := New()
	b.AddCIDR("5.0.0.0/24")
	b.normalize()
	a.Merge(b)
	if !a.Contains(0x04000001) || !a.Contains(0x05000001) {
		t.Fatal("merge lost ranges")
	}
}

func TestSkipFunc(t *testing.T) {
	l := New()
	l.AddCIDR("4.0.5.0/24")
	l.normalize()
	blockAddr := func(b int) uint32 { return 0x04000000 + uint32(b)<<8 }
	skip := l.SkipFunc(blockAddr)
	if !skip(5) || skip(4) || skip(6) {
		t.Fatal("skip func wrong")
	}
}

func TestBadCIDRs(t *testing.T) {
	l := New()
	for _, c := range []string{"junk", "1.2.3.4/40", "300.1.1.1/8"} {
		if err := l.AddCIDR(c); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}
