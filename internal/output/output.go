// Package output implements FlashRoute's result serialization: a compact
// binary record stream for full-scale scans (where CSV would be tens of
// gigabytes), a reader, and the summary statistics the paper reports over
// such files.
//
// The original tool writes fixed-size binary records and optionally
// delegates logging to an external sniffer for maximum probing rate
// (§4.2.3); this package is the equivalent output path, with a
// self-describing header so files are portable across runs.
package output

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/trace"
)

// Magic identifies flashroute-go binary result files.
const Magic = 0x46525634 // "FRV4"

// Version is the current file format version.
const Version = 1

// Record flags.
const (
	// FlagReached marks the record in which the destination itself
	// answered (hop == the responding destination).
	FlagReached = 1 << iota
	// FlagPreprobe marks responses from the preprobing phase.
	FlagPreprobe
)

// Record is one response observation: destination, TTL, responding hop,
// RTT and flags. 16 bytes on the wire.
type Record struct {
	Dest  uint32
	Hop   uint32
	RTTus uint32 // round-trip time in microseconds
	TTL   uint8
	Flags uint8
	_     [2]byte // reserved
}

const recordSize = 16

// Writer streams records to an io.Writer with buffering.
type Writer struct {
	bw    *bufio.Writer
	count uint64
	buf   [recordSize]byte
}

// NewWriter writes the file header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	binary.BigEndian.PutUint32(hdr[4:], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	binary.BigEndian.PutUint32(w.buf[0:], r.Dest)
	binary.BigEndian.PutUint32(w.buf[4:], r.Hop)
	binary.BigEndian.PutUint32(w.buf[8:], r.RTTus)
	w.buf[12] = r.TTL
	w.buf[13] = r.Flags
	w.buf[14], w.buf[15] = 0, 0
	if _, err := w.bw.Write(w.buf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains the buffer; call it before closing the underlying file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteStore dumps a trace.Store (routes must have been collected).
func WriteStore(w io.Writer, st *trace.Store) (uint64, error) {
	ww, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	var werr error
	st.ForEachRoute(func(r *trace.Route) {
		if werr != nil {
			return
		}
		for _, h := range r.Hops {
			rec := Record{
				Dest:  r.Dst,
				Hop:   h.Addr,
				RTTus: uint32(h.RTT.Microseconds()),
				TTL:   h.TTL,
			}
			if r.Reached && h.TTL == r.Length && h.Addr != 0 {
				rec.Flags |= FlagReached
			}
			if err := ww.Write(rec); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return ww.Count(), werr
	}
	return ww.Count(), ww.Flush()
}

// Reader streams records from a file.
type Reader struct {
	br  *bufio.Reader
	buf [recordSize]byte
}

// ErrBadHeader reports a file that is not a flashroute-go result stream.
var ErrBadHeader = errors.New("output: bad file header")

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, ErrBadHeader
	}
	if binary.BigEndian.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadHeader
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("output: unsupported version %d", v)
	}
	return &Reader{br: br}, nil
}

// Read returns the next record, or io.EOF at the end of the stream.
func (r *Reader) Read() (Record, error) {
	if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("output: truncated record: %w", err)
		}
		return Record{}, err
	}
	return Record{
		Dest:  binary.BigEndian.Uint32(r.buf[0:]),
		Hop:   binary.BigEndian.Uint32(r.buf[4:]),
		RTTus: binary.BigEndian.Uint32(r.buf[8:]),
		TTL:   r.buf[12],
		Flags: r.buf[13],
	}, nil
}

// Summary aggregates a record stream into the quantities the paper's
// tables report.
type Summary struct {
	Records       uint64
	Destinations  int
	Interfaces    int // unique hops from non-reached records (router interfaces)
	Reached       int
	LengthHist    [33]uint64 // route length distribution (reached only)
	PerTTL        [33]uint64 // responses per TTL
	RTTMeanMicros float64
}

// Summarize consumes a Reader.
func Summarize(r *Reader) (*Summary, error) {
	s := &Summary{}
	dests := make(map[uint32]struct{})
	ifaces := make(map[uint32]struct{})
	reached := make(map[uint32]struct{})
	var rttSum float64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.Records++
		dests[rec.Dest] = struct{}{}
		if rec.Flags&FlagReached != 0 {
			reached[rec.Dest] = struct{}{}
			if int(rec.TTL) < len(s.LengthHist) {
				s.LengthHist[rec.TTL]++
			}
		} else {
			ifaces[rec.Hop] = struct{}{}
		}
		if int(rec.TTL) < len(s.PerTTL) {
			s.PerTTL[rec.TTL]++
		}
		rttSum += float64(rec.RTTus)
	}
	s.Destinations = len(dests)
	s.Interfaces = len(ifaces)
	s.Reached = len(reached)
	if s.Records > 0 {
		s.RTTMeanMicros = rttSum / float64(s.Records)
	}
	return s, nil
}

// WriteText renders the summary.
func (s *Summary) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, `records:               %d
destinations observed: %d
router interfaces:     %d
destinations reached:  %d
mean rtt:              %s
`,
		s.Records, s.Destinations, s.Interfaces, s.Reached,
		time.Duration(s.RTTMeanMicros)*time.Microsecond)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "route length distribution (reached destinations):"); err != nil {
		return err
	}
	for ttl := 1; ttl < len(s.LengthHist); ttl++ {
		if s.LengthHist[ttl] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %2d: %d\n", ttl, s.LengthHist[ttl]); err != nil {
			return err
		}
	}
	return nil
}
