package output

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/flashroute/flashroute/internal/trace"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Dest: 0x04000001, Hop: 0xF0000001, RTTus: 42000, TTL: 7},
		{Dest: 0x04000001, Hop: 0x04000001, RTTus: 55000, TTL: 15, Flags: FlagReached},
		{Dest: 0x04000102, Hop: 0xF0000002, RTTus: 1, TTL: 1, Flags: FlagPreprobe},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count=%d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	prop := func(dest, hop, rtt uint32, ttl, flags uint8) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		in := Record{Dest: dest, Hop: hop, RTTus: rtt, TTL: ttl, Flags: flags}
		if w.Write(in) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := r.Read()
		return err == nil && out == in
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsJunk(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a result file")); err != ErrBadHeader {
		t.Fatalf("want ErrBadHeader, got %v", err)
	}
	if _, err := NewReader(strings.NewReader("xy")); err != ErrBadHeader {
		t.Fatalf("short header: %v", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Dest: 1})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestWriteStoreAndSummarize(t *testing.T) {
	st := trace.NewStore(true)
	// Two destinations: one reached at TTL 3, one unreached.
	st.AddHop(100, 1, 0xA, time.Millisecond)
	st.AddHop(100, 2, 0xB, 2*time.Millisecond)
	st.SetReached(100, 3, 100, 3*time.Millisecond)
	st.AddHop(200, 1, 0xA, time.Millisecond)
	st.AddHop(200, 2, 0xC, 2*time.Millisecond)

	var buf bytes.Buffer
	n, err := WriteStore(&buf, st)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("records=%d want 5", n)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 5 || s.Destinations != 2 || s.Reached != 1 {
		t.Fatalf("summary %+v", s)
	}
	// Router interfaces: A, B, C (the reached record's hop is excluded).
	if s.Interfaces != 3 {
		t.Fatalf("interfaces=%d want 3", s.Interfaces)
	}
	if s.LengthHist[3] != 1 {
		t.Fatalf("length hist %v", s.LengthHist)
	}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "router interfaces:     3") {
		t.Fatalf("text:\n%s", sb.String())
	}
}
