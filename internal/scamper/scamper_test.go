package scamper

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

func run(t testing.TB, blocks int, seed int64, mutate func(*Config)) *Result {
	t.Helper()
	u := netsim.NewSyntheticUniverse(blocks)
	topo := netsim.NewTopology(u, netsim.DefaultParams(seed))
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim.New(topo, clock)
	cfg := DefaultConfig()
	cfg.Blocks = blocks
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.Targets = func(block int) uint32 {
		z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return u.BlockAddr(block) | uint32(1+z%254)
	}
	cfg.BlockOf = func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
	if mutate != nil {
		mutate(&cfg)
	}
	sc, err := NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScamperCompletes(t *testing.T) {
	res := run(t, 1024, 1, nil)
	if res.ProbesSent == 0 || res.Store.Interfaces().Len() == 0 {
		t.Fatalf("empty scan: %d probes %d ifaces", res.ProbesSent, res.Store.Interfaces().Len())
	}
	t.Logf("scamper-16: %d probes, %d interfaces, %d rounds, %v",
		res.ProbesSent, res.Store.Interfaces().Len(), res.Rounds, res.ScanTime)
}

// TestScamperPPSCappedAt10K: the configuration cannot exceed Scamper's
// maximum rate.
func TestScamperPPSCappedAt10K(t *testing.T) {
	u := netsim.NewSyntheticUniverse(16)
	topo := netsim.NewTopology(u, netsim.DefaultParams(1))
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim.New(topo, clock)
	cfg := DefaultConfig()
	cfg.Blocks = 16
	cfg.PPS = 1_000_000
	cfg.Targets = func(block int) uint32 { return u.BlockAddr(block) | 1 }
	cfg.BlockOf = func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
	sc, err := NewScanner(cfg, n.NewConn(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if sc.cfg.PPS != 10_000 {
		t.Fatalf("PPS=%d want capped 10000", sc.cfg.PPS)
	}
}

// TestScamperDelayedElimination reproduces the Figure 7 relationship:
// Scamper's delayed redundancy elimination sends more probes than a
// FlashRoute-style immediate stop would — i.e., more backward probes reach
// low-to-mid TTLs.
func TestScamperDelayedElimination(t *testing.T) {
	immediate := run(t, 2048, 2, func(c *Config) {
		c.DelayedHits = 1
		c.StubbornFrac = 0
	})
	delayed := run(t, 2048, 2, nil)
	if delayed.ProbesSent <= immediate.ProbesSent {
		t.Fatalf("delayed elimination should cost probes: delayed=%d immediate=%d",
			delayed.ProbesSent, immediate.ProbesSent)
	}
	di, ii := delayed.Store.Interfaces().Len(), immediate.Store.Interfaces().Len()
	if di < ii {
		t.Fatalf("delayed elimination should not find fewer interfaces: %d vs %d", di, ii)
	}
	t.Logf("immediate: %d probes/%d ifaces; delayed: %d probes/%d ifaces (+%.1f%% probes)",
		immediate.ProbesSent, ii, delayed.ProbesSent, di,
		100*(float64(delayed.ProbesSent)/float64(immediate.ProbesSent)-1))
}

func TestScamperValidation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := NewScanner(Config{}, nil, clock); err == nil {
		t.Fatal("empty config should be rejected")
	}
	cfg := DefaultConfig()
	cfg.Blocks = 4
	cfg.Targets = func(int) uint32 { return 1 }
	cfg.BlockOf = func(uint32) (int, bool) { return 0, true }
	cfg.FirstTTL = 40
	if _, err := NewScanner(cfg, nil, clock); err == nil {
		t.Fatal("bad FirstTTL should be rejected")
	}
}
