// Package scamper reimplements the Scamper baseline (Luckie, IMC 2010) as
// configured in the paper's comparison (§4.2.1): Paris-UDP tracerouting of
// every block with first-TTL 16, maximum TTL 32, gap limit 5, one probe
// per hop, at Scamper's maximum rate of 10 Kpps.
//
// Scamper nominally implements Doubletree's backward probing, but the
// paper finds (Figure 7) that its redundancy elimination is delayed: it
// starts one hop later than FlashRoute's, preserves a level of probing
// redundancy in the mid-TTL range, and only converges to full elimination
// at low TTLs. This implementation models that observed behaviour: above
// StubbornFloor, backward probing stops only after DelayedHits consecutive
// stop-set hits (and a fraction of destinations keeps probing down to the
// floor regardless); at or below the floor a single hit suffices.
package scamper

import (
	"errors"
	"io"
	"time"

	"github.com/flashroute/flashroute/internal/permute"
	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// PacketConn is the raw network access (identical shape to the other
// engines').
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// Config parameterizes the scan.
type Config struct {
	Blocks  int
	Targets func(block int) uint32
	BlockOf func(addr uint32) (int, bool)
	Source  uint32

	// FirstTTL is Scamper's first-TTL (split point), 16 in the paper.
	FirstTTL uint8
	// MaxTTL bounds forward probing (32).
	MaxTTL uint8
	// GapLimit stops forward probing after this many consecutive silent
	// hops (Scamper's default 5 — the value the paper's Figure 6
	// re-validates).
	GapLimit uint8

	// PPS is the probing rate; Scamper caps at 10 Kpps.
	PPS int

	// DelayedHits is how many consecutive stop-set hits backward probing
	// needs above StubbornFloor before it terminates (the Figure 7
	// behaviour); StubbornFrac destinations ignore the stop set entirely
	// until StubbornFloor.
	DelayedHits   int
	StubbornFrac  float64
	StubbornFloor uint8

	CollectRoutes bool
	Observer      func(dst uint32, ttl uint8, at time.Duration)
	Seed          int64
	DrainWait     time.Duration
}

// DefaultConfig returns the paper's Scamper-16 configuration.
func DefaultConfig() Config {
	return Config{
		FirstTTL:      16,
		MaxTTL:        32,
		GapLimit:      5,
		PPS:           10_000,
		DelayedHits:   2,
		StubbornFrac:  0.22,
		StubbornFloor: 6,
		DrainWait:     2 * time.Second,
	}
}

// Result is what the scan produced.
type Result struct {
	Store      *trace.Store
	ProbesSent uint64
	ScanTime   time.Duration
	Rounds     int
}

// state is the per-destination probing state (Scamper keeps comparable
// per-trace state internally).
type state struct {
	dest           uint32
	nextBackward   uint8
	nextForward    uint8
	forwardHorizon uint8
	stopHits       uint8
	stubborn       bool
	forwardDone    bool
	done           bool
}

// Scanner runs Scamper-style scans.
type Scanner struct {
	cfg   Config
	conn  PacketConn
	clock simclock.Waiter
	start time.Time

	states  []state
	order   []uint32
	stopSet map[uint32]struct{}
	store   *trace.Store

	// updates carries receiver decisions to the sending thread; Scamper's
	// sequential design processes responses between probes of the same
	// trace, which the per-round application of these updates models.
	updates chan update

	probesSent   uint64
	rounds       int
	paceCount    int
	paceBatch    int
	paceInterval time.Duration
	pktBuf       [128]byte
}

type update struct {
	block       int
	stopBack    bool
	horizon     uint8
	forwardDone bool
}

// NewScanner validates the configuration.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	if cfg.Blocks <= 0 || cfg.Targets == nil || cfg.BlockOf == nil {
		return nil, errors.New("scamper: Blocks, Targets and BlockOf are required")
	}
	if cfg.FirstTTL < 1 || cfg.FirstTTL > cfg.MaxTTL || cfg.MaxTTL > probe.MaxTTL {
		return nil, errors.New("scamper: bad TTL configuration")
	}
	if cfg.PPS > 10_000 || cfg.PPS <= 0 {
		cfg.PPS = 10_000 // Scamper's hard maximum (§4.2.1)
	}
	if cfg.DelayedHits < 1 {
		cfg.DelayedHits = 1
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	s := &Scanner{
		cfg:     cfg,
		conn:    conn,
		clock:   clock,
		states:  make([]state, cfg.Blocks),
		stopSet: make(map[uint32]struct{}),
		store:   trace.NewStore(cfg.CollectRoutes),
		updates: make(chan update, 65536),
	}
	s.paceBatch = cfg.PPS / 200
	if s.paceBatch < 1 {
		s.paceBatch = 1
	}
	s.paceInterval = time.Duration(int64(time.Second) * int64(s.paceBatch) / int64(cfg.PPS))
	return s, nil
}

// Run executes the scan.
func (s *Scanner) Run() (*Result, error) {
	s.start = s.clock.Now()

	perm := permute.NewFeistel(uint64(s.cfg.Blocks), uint64(s.cfg.Seed)^0x5ca5ca5c)
	s.order = make([]uint32, 0, s.cfg.Blocks)
	h := uint64(s.cfg.Seed) * 0x9e3779b97f4a7c15
	for i := uint64(0); i < uint64(s.cfg.Blocks); i++ {
		b := uint32(perm.Map(i))
		s.order = append(s.order, b)
		st := &s.states[b]
		st.dest = s.cfg.Targets(int(b))
		st.nextBackward = s.cfg.FirstTTL
		st.nextForward = s.cfg.FirstTTL + 1
		st.forwardHorizon = min8(s.cfg.FirstTTL+s.cfg.GapLimit, s.cfg.MaxTTL)
		z := h + uint64(b)*0xd6e8feb86659fd93
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		st.stubborn = float64(z>>11)/float64(1<<53) < s.cfg.StubbornFrac
	}

	// Sender registers first; a receiver parking as the sole registered
	// actor would trip the virtual clock's deadlock detector.
	s.clock.AddActor()
	s.clock.AddActor()
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		defer s.clock.DoneActor()
		s.receiveLoop()
	}()

	remaining := s.cfg.Blocks
	for remaining > 0 {
		roundStart := s.clock.Now()
		s.applyUpdates()
		for _, b := range s.order {
			st := &s.states[b]
			if st.done {
				continue
			}
			sent := false
			if st.nextBackward > 0 {
				s.sendProbe(st.dest, st.nextBackward)
				st.nextBackward--
				sent = true
			}
			if !st.forwardDone && st.nextForward <= st.forwardHorizon {
				s.sendProbe(st.dest, st.nextForward)
				st.nextForward++
				sent = true
			}
			if !sent {
				st.done = true
				remaining--
			}
		}
		s.rounds++
		if rem := time.Second - s.clock.Now().Sub(roundStart); rem > 0 {
			s.clock.Sleep(rem)
		}
	}
	s.clock.Sleep(s.cfg.DrainWait)

	res := &Result{
		Store:      s.store,
		ProbesSent: s.probesSent,
		ScanTime:   s.clock.Now().Sub(s.start),
		Rounds:     s.rounds,
	}
	s.conn.Close()
	s.clock.DoneActor()
	<-recvDone
	return res, nil
}

// applyUpdates folds queued receiver decisions into the sending state.
func (s *Scanner) applyUpdates() {
	for {
		select {
		case u := <-s.updates:
			st := &s.states[u.block]
			if u.stopBack {
				st.nextBackward = 0
			}
			if u.forwardDone {
				st.forwardDone = true
			}
			// Horizon extensions for already-completed traces are dropped:
			// the paper configures Scamper with retries restricted so each
			// hop gets exactly one probe.
			if u.horizon > st.forwardHorizon && !st.forwardDone && !st.done {
				st.forwardHorizon = min8(u.horizon, s.cfg.MaxTTL)
			}
		default:
			return
		}
	}
}

func (s *Scanner) sendProbe(dst uint32, ttl uint8) {
	elapsed := s.clock.Now().Sub(s.start)
	n := probe.BuildFlashProbe(s.pktBuf[:], s.cfg.Source, dst, ttl, false,
		elapsed, 0, probe.TracerouteDstPort)
	_ = s.conn.WritePacket(s.pktBuf[:n])
	s.probesSent++
	if s.cfg.Observer != nil {
		s.cfg.Observer(dst, ttl, elapsed)
	}
	s.paceCount++
	if s.paceCount >= s.paceBatch {
		s.paceCount = 0
		s.clock.Sleep(s.paceInterval)
	}
}

// receiveLoop processes responses: it owns the stop set and the store, and
// forwards per-destination decisions to the sender via the updates queue.
func (s *Scanner) receiveLoop() {
	var buf [4096]byte
	for {
		n, err := s.conn.ReadPacket(buf[:])
		if err != nil {
			if err != io.EOF {
				continue
			}
			return
		}
		s.handleResponse(buf[:n])
	}
}

func (s *Scanner) handleResponse(pkt []byte) {
	resp, err := probe.ParseResponse(pkt)
	if err != nil {
		return
	}
	fi, err := probe.ParseFlashQuote(&resp.ICMP)
	if err != nil {
		return
	}
	block, ok := s.cfg.BlockOf(fi.Dst)
	if !ok {
		return
	}
	now := s.clock.Now().Sub(s.start)
	rtt := fi.RTT(now)

	switch {
	case resp.ICMP.IsTTLExceeded():
		s.store.AddHop(fi.Dst, fi.InitTTL, resp.Hop, rtt)
		_, seen := s.stopSet[resp.Hop]
		s.stopSet[resp.Hop] = struct{}{}
		if fi.InitTTL <= s.cfg.FirstTTL {
			st := &s.states[block]
			stop := false
			if seen {
				st.stopHits++
				switch {
				case fi.InitTTL <= s.cfg.StubbornFloor:
					stop = true
				case st.stubborn:
					// Keeps probing through the mid range regardless.
				case int(st.stopHits) >= s.cfg.DelayedHits:
					stop = true
				}
			} else {
				st.stopHits = 0
			}
			if fi.InitTTL == 1 {
				stop = true
			}
			if stop {
				s.enqueue(update{block: block, stopBack: true})
			}
		} else {
			s.enqueue(update{block: block, horizon: fi.InitTTL + s.cfg.GapLimit})
		}
	case resp.ICMP.IsUnreachable():
		dist := int(fi.InitTTL) - int(fi.ResidualTTL) + 1
		if dist < 1 {
			dist = 1
		}
		s.store.SetReached(fi.Dst, uint8(dist), resp.Hop, rtt)
		s.enqueue(update{block: block, forwardDone: true})
	}
}

func (s *Scanner) enqueue(u update) {
	select {
	case s.updates <- u:
	default:
		// Queue full: drop the hint; probing degrades to exhaustive for
		// this response, never to incorrectness.
	}
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
