package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/permute"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// ResultOf is what a scan produced.
type ResultOf[A comparable] struct {
	// Store holds discovered interfaces and (optionally) full routes.
	Store *trace.StoreOf[A]
	// ProbesSent is the total probe count, including preprobing and any
	// discovery-optimized extra scans (the paper's "Probes" columns).
	ProbesSent uint64
	// PreprobeProbes is the subset sent during the preprobing phase.
	PreprobeProbes uint64
	// ScanTime is the total wall (or virtual) time of the scan, including
	// preprobing and drains (the paper's "Scan time" columns).
	ScanTime time.Duration
	// Rounds is the number of main-scan rounds executed.
	Rounds int
	// DistancesMeasured / DistancesPredicted count blocks whose split
	// point came from a direct measurement / a proximity-span prediction.
	DistancesMeasured  int
	DistancesPredicted int
	// Measured[block] is the preprobe-measured hop distance (0 = none);
	// Predicted[block] the prediction used when measurement was absent.
	Measured  []uint8
	Predicted []uint8
	// MismatchedResponses counts responses dropped because the quoted
	// source port did not match the checksum of the quoted destination —
	// in-flight destination modification (§5.3).
	MismatchedResponses uint64
	// UnparsedResponses counts packets the receiver could not interpret.
	UnparsedResponses uint64
	// RetransmittedProbes is the subset of ProbesSent re-issued by
	// loss-tolerance machinery: preprobe retry passes and forward-gap
	// rewinds (Config.PreprobeRetries / Config.ForwardRetries).
	RetransmittedProbes uint64
	// DuplicateResponses counts responses discarded because an identical
	// (destination, TTL) reply had already been processed this pass —
	// duplicated or retransmit-elicited ICMP.
	DuplicateResponses uint64
	// ReadErrors counts transport read failures (not EOF). Distinct from
	// UnparsedResponses: a read error is the socket failing, not a packet
	// we could not interpret.
	ReadErrors uint64
	// SendErrors counts probes abandoned because WritePacket failed
	// permanently or exhausted Config.SendRetries; SendRetries counts the
	// retry attempts made for transient write errors (each retried probe
	// contributes one per attempt).
	SendErrors  uint64
	SendRetries uint64
	// CheckpointErrors counts CheckpointSink failures — snapshots the
	// sink could not persist (the scan continues regardless).
	CheckpointErrors uint64
	// Interrupted reports that the scan was cancelled before completing;
	// the result is the valid partial state at cancellation (plus the
	// CancelGrace drain).
	Interrupted bool
}

// Result is an IPv4 scan result.
type Result = ResultOf[uint32]

// ScannerOf runs FlashRoute scans over a PacketConn, generic over the
// address family: wire formats come from the Family, everything else —
// scheduling, rounds, sharded senders, retries, dedup, the stop set — is
// shared across instantiations.
type ScannerOf[A comparable] struct {
	cfg   ConfigOf[A]
	fam   Family[A]
	conn  PacketConn
	clock simclock.Waiter

	start time.Time

	dcbs   []dcbOf[A]
	locks  dcbLocks
	splits []uint8
	order  []uint32

	// shards partitions the permuted order among the sending goroutines.
	// With Config.Senders == 1 there is exactly one shard, run inline on
	// the Run goroutine — the paper's single-sender configuration.
	shards []*senderShardOf[A]

	// stop set: interfaces already discovered; backward probing
	// terminates upon encountering one (§3.2). The default is the local
	// sharded implementation (receive.go): a single unlocked map owned by
	// the receiver thread at Receivers == 1, sharded by address hash
	// above that. Config.StopSet substitutes a custom implementation
	// (the cluster's globally shared set).
	stopSet StopSet[A]

	distMu   sync.Mutex
	measured []uint8
	phase    atomic.Int32 // 0 = preprobing, 1 = main

	scanOffset atomic.Uint32 // source-port offset of the current scan pass

	store *trace.StoreOf[A]

	// slotDiv maps a reply's block to its store slot: block / slotDiv,
	// where slotDiv is the receiver count (worker i owns blocks ≡ i mod R,
	// so block/R is unique within a stripe; 1 in single-receiver mode).
	slotDiv int

	// sharded receive pipeline (Config.Receivers > 1): the workers, their
	// EOF join counter, and the striped store merged into the result when
	// the scan ends. All nil/zero in the classic single-receiver mode.
	recvWorkers []*recvWorkerOf[A]
	recvEOF     atomic.Int32
	striped     *trace.StripedStoreOf[A]

	mismatched   atomic.Uint64
	unparsed     atomic.Uint64
	dupResponses atomic.Uint64
	readErrors   atomic.Uint64
	sendErrors   atomic.Uint64
	sendRetries  atomic.Uint64

	// Live progress counters for external watchdogs (LiveCounters):
	// liveProbes advances on every successfully written probe,
	// liveReplies on every processed reply. A supervisor that samples
	// both and sees neither move across a deadline has a stalled worker.
	liveProbes  atomic.Uint64
	liveReplies atomic.Uint64

	// Transport-death latch (Config.AbortOnSendErrors): sendErrBase is
	// the restored error count a resumed run starts from (the threshold
	// counts only this run's failures), transportDead flips once the
	// threshold is reached, tdErr keeps the first fatal write error.
	sendErrBase   uint64
	transportDead atomic.Bool
	tdMu          sync.Mutex
	tdErr         error

	// Graceful shutdown: ctx is non-nil only for cancellable contexts
	// (so the paper-faithful Run path costs one atomic load per check);
	// cancelled latches the first observation of ctx.Err() — polled, not
	// watched, so cancellation lands at deterministic points.
	ctx       context.Context
	cancelled atomic.Bool

	// ckpt is non-nil when checkpointing is armed (CheckpointSink set).
	ckpt *ckptState

	// resume positions Run mid-scan after a checkpoint restore; base
	// carries the interrupted run's totals. preprobeProbes is the
	// preprobing phase's cumulative probe count, fixed at the phase
	// transition (written before the main phase's senders start).
	resume         *resumeInfo
	base           baseCounters
	preprobeProbes uint64

	// obsMu serializes Config.Observer callbacks when several senders are
	// probing concurrently, so observers need not be thread-safe.
	obsMu sync.Mutex

	// Live rate control (SetRate): ratePPS holds the current aggregate
	// rate and rateGen its generation; each sender shard re-derives its
	// pacer share when it observes a generation it has not seen. At
	// generation zero Config.PPS is authoritative (see currentPPS), so
	// fixed-rate scans behave bit-identically to the engine before this
	// knob existed.
	ratePPS atomic.Int64
	rateGen atomic.Uint32

	// phaseParker and phaseDone coordinate the join at the end of each
	// sending phase when Senders > 1: finished senders unpark the Run
	// goroutine, which parks (staying visible to the virtual clock)
	// until every shard has reported in.
	phaseParker *simclock.Parker
	phaseDone   atomic.Int32
}

// Scanner is the IPv4 scanner.
type Scanner = ScannerOf[uint32]

// senderShardOf is the per-sender slice of the probing workload: a
// contiguous chunk of the permuted destination order plus all the state
// one sending goroutine touches without synchronization — its packet
// buffer, probe counter and pacer. DCB probing fields stay shared with
// the receiver and are guarded by the per-DCB locks; the linked-list
// overlay built over a shard's order is traversed by that shard alone.
type senderShardOf[A comparable] struct {
	s     *ScannerOf[A]
	idx   int      // shard index, for the live-rate re-split
	order []uint32 // contiguous slice of the scan-order permutation

	probesSent  uint64
	retransmits uint64
	rounds      int
	pacer       pacer
	rateSeen    uint32 // last rateGen this shard's pacer was derived from
	pktBuf      [maxProbeBuf]byte

	// Batched-write state (Config.Batch > 1 on a BatchWriter transport;
	// see batch.go): built probes accumulate in the preallocated arena —
	// pkts[i] views slot i, metas[i] remembers how to rebuild it with a
	// fresh timestamp — and are written Config.Batch at a time, or earlier
	// at every point the shard would block. All nil/zero when unbatched.
	bw      BatchWriter
	arena   []byte
	pkts    [][]byte
	metas   []probeMeta[A]
	nbuf    int
	flushFn func() // bound sh.flush, allocated once (paceFlush hook)
}

// probeMeta is the recipe for rebuilding an arena slot's probe: retries
// after a backoff sleep must re-stamp the packet's embedded send time
// (§3.1) or derived RTTs would include the backoff.
type probeMeta[A comparable] struct {
	dst      A
	ttl      uint8
	preprobe bool
	off      uint16
}

// NewScanner validates the configuration and prepares an IPv4 scanner.
func NewScanner(cfg Config, conn PacketConn, clock simclock.Waiter) (*Scanner, error) {
	return NewScannerOf[uint32](ipv4Family{}, cfg, conn, clock)
}

// NewScannerOf validates the configuration and prepares a scanner over
// the given address family.
func NewScannerOf[A comparable](fam Family[A], cfg ConfigOf[A], conn PacketConn, clock simclock.Waiter) (*ScannerOf[A], error) {
	if cfg.Blocks <= 0 {
		return nil, errors.New("core: Config.Blocks must be positive")
	}
	if cfg.Targets == nil || cfg.BlockOf == nil {
		return nil, errors.New("core: Config.Targets and Config.BlockOf are required")
	}
	if cfg.MaxTTL == 0 || cfg.MaxTTL > fam.MaxTTL() {
		return nil, fmt.Errorf("core: MaxTTL must be in 1..%d", fam.MaxTTL())
	}
	if cfg.SplitTTL == 0 || cfg.SplitTTL > cfg.MaxTTL {
		return nil, errors.New("core: SplitTTL must be in 1..MaxTTL")
	}
	if cfg.Preprobe == PreprobeHitlist && cfg.PreprobeTargets == nil {
		return nil, errors.New("core: PreprobeHitlist requires PreprobeTargets")
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 500 * time.Millisecond
	}
	if cfg.ForwardRetries > 255 {
		cfg.ForwardRetries = 255 // stored per DCB in a uint8
	}
	if cfg.MinRoundTime <= 0 {
		cfg.MinRoundTime = time.Second
	}
	if cfg.SendRetries == 0 {
		cfg.SendRetries = 3
	} else if cfg.SendRetries < 0 {
		cfg.SendRetries = 0
	}
	if cfg.CancelGrace <= 0 {
		cfg.CancelGrace = cfg.DrainWait
	}
	if cfg.CheckpointEvery < 0 {
		cfg.CheckpointEvery = 0
	}
	if cfg.Batch < 0 {
		cfg.Batch = 0
	}
	if cfg.Batch > maxBatch {
		cfg.Batch = maxBatch
	}
	if cfg.Exhaustive {
		// The Yarrp-simulation mode probes every hop unconditionally; a
		// stop set would contradict it (§4.2.1).
		cfg.NoRedundancyElimination = true
		cfg.Preprobe = PreprobeOff
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 1
	}
	if cfg.Receivers <= 0 {
		cfg.Receivers = 1
	}
	if cfg.Receivers > 1 && cfg.NewReader == nil {
		return nil, errors.New("core: Receivers > 1 requires Config.NewReader")
	}
	// Store pre-sizing: one route record slot per block and, empirically,
	// around one interface per two blocks for the open-addressed set; the
	// stop set additionally holds reached destinations.
	ifaceHint := cfg.Blocks / 2
	stopSet := cfg.StopSet
	if stopSet == nil {
		stopSet = newStopSet(fam, cfg.Receivers, cfg.Blocks)
	}
	s := &ScannerOf[A]{
		cfg:         cfg,
		fam:         fam,
		conn:        conn,
		clock:       clock,
		dcbs:        make([]dcbOf[A], cfg.Blocks),
		splits:      make([]uint8, cfg.Blocks),
		stopSet:     stopSet,
		phaseParker: clock.NewParker(),
	}
	if cfg.CheckpointSink != nil {
		s.ckpt = &ckptState{
			every:    uint64(cfg.CheckpointEvery),
			interval: cfg.CheckpointInterval,
			sink:     cfg.CheckpointSink,
		}
	}
	switch cfg.LockMode {
	case LockMutex:
		s.locks = newMutexLocks(cfg.Blocks)
	case LockSpin:
		s.locks = newSpinLocks(cfg.Blocks)
	default:
		return nil, fmt.Errorf("core: unknown LockMode %d", cfg.LockMode)
	}
	if r := cfg.Receivers; r == 1 {
		s.slotDiv = 1
		s.store = trace.NewSlotStoreOf[A](cfg.CollectRoutes, fam.FormatAddr,
			fam.AddrLess, fam.HashAddr, cfg.Blocks, ifaceHint)
	} else {
		s.slotDiv = r
		s.striped = trace.NewStripedStoreOf[A](r, cfg.CollectRoutes,
			fam.FormatAddr, fam.AddrLess, fam.HashAddr, cfg.Blocks, ifaceHint)
		s.recvWorkers = make([]*recvWorkerOf[A], r)
		for i := range s.recvWorkers {
			w := &recvWorkerOf[A]{
				s:       s,
				idx:     i,
				reader:  cfg.NewReader(),
				parker:  clock.NewParker(),
				store:   s.striped.Stripe(i),
				scratch: make([]dispatchedReply[A], 0, 64),
			}
			if cfg.Batch > 1 {
				if br, ok := w.reader.(BatchReader); ok {
					w.batch = br
					w.bufs, w.sizes = makeRecvArena(cfg.Batch)
				}
			}
			s.recvWorkers[i] = w
		}
	}
	return s, nil
}

// makeShards splits the permuted order into Config.Senders contiguous
// slices, each with its own pacer carrying an equal share of the
// aggregate Config.PPS budget.
func (s *ScannerOf[A]) makeShards() {
	k := s.cfg.Senders
	if k > len(s.order) {
		k = len(s.order)
	}
	if k < 1 {
		k = 1
	}
	s.shards = make([]*senderShardOf[A], k)
	var bw BatchWriter
	if s.cfg.Batch > 1 {
		if w, ok := s.conn.(BatchWriter); ok {
			bw = w
		}
	}
	chunk := (len(s.order) + k - 1) / k
	total := s.currentPPS()
	base, rem := 0, 0
	if total > 0 {
		base, rem = total/k, total%k
	}
	for i := range s.shards {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(s.order) {
			hi = len(s.order)
		}
		pps := base
		if i < rem {
			pps++
		}
		if total > 0 && pps == 0 {
			pps = 1 // more senders than packets per second: floor at 1
		}
		sh := &senderShardOf[A]{
			s:        s,
			idx:      i,
			order:    s.order[lo:hi],
			pacer:    newPacer(s.clock, pps),
			rateSeen: s.rateGen.Load(),
		}
		if bw != nil {
			sh.bw = bw
			sh.arena = make([]byte, s.cfg.Batch*maxProbeBuf)
			sh.pkts = make([][]byte, s.cfg.Batch)
			sh.metas = make([]probeMeta[A], s.cfg.Batch)
			sh.flushFn = sh.flush
		}
		s.shards[i] = sh
	}
}

// SetRate retargets the aggregate probing rate, mid-scan included: the
// new rate is re-split across the sender shards exactly as Config.PPS
// was at startup, each shard adopting its new share at its next probe.
// Safe to call from any goroutine at any time (before Run included).
// pps < 1 is clamped to 1 — SetRate reshapes pacing, it cannot remove it
// (on a virtual clock an unthrottled sender would never yield), and a
// floor of one probe per second is an effective pause for any real scan.
func (s *ScannerOf[A]) SetRate(pps int) {
	if pps < 1 {
		pps = 1
	}
	s.ratePPS.Store(int64(pps))
	s.rateGen.Add(1)
}

// currentPPS is the aggregate rate in effect: Config.PPS until the first
// SetRate, the last SetRate value after. The generation check keeps
// zero-value-constructed scanners (tests build them without NewScannerOf,
// so ratePPS was never seeded) on their configured rate.
func (s *ScannerOf[A]) currentPPS() int {
	if s.rateGen.Load() == 0 {
		return s.cfg.PPS
	}
	return int(s.ratePPS.Load())
}

// shardPPS is shard idx's share of the current aggregate rate — the same
// base/remainder split makeShards applies, recomputed live.
func (s *ScannerOf[A]) shardPPS(idx int) int {
	pps := s.currentPPS()
	k := len(s.shards)
	out := pps / k
	if idx < pps%k {
		out++
	}
	if out < 1 {
		out = 1
	}
	return out
}

// pollRate adopts a pending SetRate: one predictable atomic load per
// probe, rebuilding the shard's pacer only when the generation moved.
func (sh *senderShardOf[A]) pollRate() {
	if gen := sh.s.rateGen.Load(); gen != sh.rateSeen {
		sh.rateSeen = gen
		sh.pacer.setRate(sh.s.shardPPS(sh.idx))
	}
}

// eachShard runs one sending phase: fn over every shard, inline on the
// Run goroutine for a single sender (the deterministic paper
// configuration takes exactly the pre-sharding code path), or on one
// clock-registered goroutine per extra shard otherwise. It returns once
// every shard's phase has completed.
func (s *ScannerOf[A]) eachShard(fn func(*senderShardOf[A])) {
	if len(s.shards) == 1 {
		fn(s.shards[0])
		return
	}
	s.phaseDone.Store(0)
	for _, sh := range s.shards[1:] {
		s.clock.AddActor()
		go func(sh *senderShardOf[A]) {
			fn(sh)
			s.phaseDone.Add(1)
			// Unpark before DoneActor: Run may be parked with no deadline,
			// and the virtual clock must see its pending wake before this
			// actor leaves, or it would diagnose a deadlock.
			s.clock.Unpark(s.phaseParker)
			s.clock.DoneActor()
		}(sh)
	}
	fn(s.shards[0])
	for int(s.phaseDone.Load()) < len(s.shards)-1 {
		s.clock.Park(s.phaseParker, time.Time{})
	}
}

// probesSentTotal sums the per-shard counters. Only call between phases
// (senders quiescent).
func (s *ScannerOf[A]) probesSentTotal() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.probesSent
	}
	return n
}

// noteRetransmits accounts n retransmitted probes, mirroring the
// unsynchronized per-shard counter into the armed checkpoint mirror.
func (sh *senderShardOf[A]) noteRetransmits(n uint64) {
	sh.retransmits += n
	if ck := sh.s.ckpt; ck != nil {
		ck.retrans.Add(n)
	}
}

// retransmitsTotal sums the per-shard retransmit counters. Only call
// between phases (senders quiescent).
func (s *ScannerOf[A]) retransmitsTotal() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.retransmits
	}
	return n
}

// fwdTick quantizes scan-relative time to the 16 ms ticks of
// dcb.lastForward (kept to 16 bits so the DCB stays within its
// paper-§3.4 size budget).
func (s *ScannerOf[A]) fwdTick() uint16 {
	return uint16(s.clock.Now().Sub(s.start) / (16 * time.Millisecond))
}

// Run executes the scan: optional preprobing, the main probing rounds, and
// any discovery-optimized extra scans. Run must be called from a goroutine
// that is NOT registered as a clock actor; it registers the sender and
// receiver itself.
func (s *ScannerOf[A]) Run() (*ResultOf[A], error) {
	return s.RunContext(context.Background())
}

// canceled reports whether the scan has been cancelled. The first
// observation of a cancelled context latches, so later checks cost one
// atomic load.
func (s *ScannerOf[A]) canceled() bool {
	if s.cancelled.Load() {
		return true
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		s.cancelled.Store(true)
		return true
	}
	return false
}

// RunContext is Run with graceful cancellation: when ctx is cancelled the
// senders stop at their next probing step, the receivers keep draining
// in-flight replies for Config.CancelGrace, and the partial state is
// returned as a valid Result (Interrupted set) — with a final checkpoint
// written when checkpointing is armed, so the scan can be resumed.
func (s *ScannerOf[A]) RunContext(ctx context.Context) (*ResultOf[A], error) {
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
	}
	s.start = s.clock.Now()
	if s.ckpt != nil && s.ckpt.interval > 0 {
		s.ckpt.nextAt.Store(int64(s.ckpt.interval))
	}

	// The random permutation threading the DCBs (paper §3.2, §3.4).
	perm := permute.NewFeistel(uint64(s.cfg.Blocks), uint64(s.cfg.Seed)^s.fam.PermSalt())
	s.order = make([]uint32, 0, s.cfg.Blocks)
	for i := uint64(0); i < uint64(s.cfg.Blocks); i++ {
		b := uint32(perm.Map(i))
		if s.cfg.Skip != nil && s.cfg.Skip(int(b)) {
			s.dcbs[b].flags |= dcbRemoved
			continue
		}
		s.order = append(s.order, b)
	}
	s.makeShards()

	// Register the sender (this goroutine) before the receiver can start:
	// a receiver that parks while it is the only registered actor would
	// look like a deadlock to the virtual clock.
	s.clock.AddActor()

	// Receiver side (decoupled from sending, §3.2). One receiver runs the
	// classic inline loop; Receivers > 1 runs the sharded receive pipeline
	// of receive.go, one clock-registered goroutine per worker.
	recvDone := make(chan struct{})
	if len(s.recvWorkers) > 0 {
		var wg sync.WaitGroup
		for _, w := range s.recvWorkers {
			s.clock.AddActor()
			wg.Add(1)
			go func(w *recvWorkerOf[A]) {
				defer wg.Done()
				defer s.clock.DoneActor()
				w.loop()
			}(w)
		}
		go func() {
			wg.Wait()
			close(recvDone)
		}()
	} else {
		s.clock.AddActor()
		go func() {
			defer close(recvDone)
			defer s.clock.DoneActor()
			s.receiveLoop()
		}()
	}

	usePre := s.cfg.Preprobe != PreprobeOff && !s.cfg.Exhaustive
	resumedMain := s.resume != nil && s.resume.phase == 1
	if usePre && !resumedMain {
		if s.measured == nil {
			s.measured = make([]uint8, s.cfg.Blocks)
		}
		if s.resume != nil {
			// Resuming mid-preprobe: the restored measured[] holds every
			// distance whose reply was processed before the crash; replies
			// to the rest were lost with the dead run's socket, so one
			// retry pass re-probes exactly the unmeasured blocks.
			s.eachShard((*senderShardOf[A]).runPreprobeRetry)
		} else {
			s.eachShard((*senderShardOf[A]).runPreprobe)
		}
		s.clock.Sleep(s.cfg.DrainWait)
		// Preprobe retransmission: blocks still unmeasured after the
		// drain either genuinely cannot answer or lost a packet; re-probe
		// them up to PreprobeRetries times so one lost reply does not
		// silently downgrade the block's split point.
		for r := 0; r < s.cfg.PreprobeRetries && !s.canceled(); r++ {
			before := s.retransmitsTotal()
			s.eachShard((*senderShardOf[A]).runPreprobeRetry)
			if s.retransmitsTotal() == before {
				break // every candidate block is measured
			}
			s.clock.Sleep(s.cfg.DrainWait)
		}
	}
	s.distMu.Lock()
	s.phase.Store(1)
	s.distMu.Unlock()

	res := &ResultOf[A]{Store: s.store}
	if usePre {
		if resumedMain {
			res.PreprobeProbes = s.preprobeProbes
		} else {
			res.PreprobeProbes = s.base.probes + s.probesSentTotal()
			s.preprobeProbes = res.PreprobeProbes
		}
		res.Measured = s.measured
		res.Predicted = make([]uint8, s.cfg.Blocks)
		s.predictDistances(res)
	}

	startPass := 0
	if resumedMain {
		startPass = int(s.resume.pass)
		s.rewindDCBs(startPass)
	} else {
		s.initDCBs(res)
	}
	for pass := startPass; pass <= s.cfg.ExtraScans && !s.canceled(); pass++ {
		if pass > 0 {
			s.scanOffset.Store(uint32(pass))
			if !(resumedMain && pass == startPass) {
				// The resumed pass keeps its restored (rewound) DCB state;
				// resetForExtraScan would restart the pass from scratch and
				// clear its reply dedup.
				s.resetForExtraScan(pass)
			}
		}
		s.runScanPass(uint16(pass))
		s.clock.Sleep(s.cfg.DrainWait)
	}

	res.Interrupted = s.cancelled.Load()
	if res.Interrupted {
		// Grace drain: the senders have stopped, but replies to the last
		// probes are still in flight. Keep the receivers fed so the
		// partial result (and the final checkpoint) includes them.
		s.clock.Sleep(s.cfg.CancelGrace)
	}
	res.ScanTime = s.base.scanTime + s.clock.Now().Sub(s.start)
	// Close the conn first so the receivers (possibly parked waiting for
	// packets) wake to their EOF before the sender leaves the clock.
	s.conn.Close()
	s.clock.DoneActor()
	<-recvDone
	if s.striped != nil {
		// Union is a read view over the stripes: routes stay in place and
		// emit k-way merges them, so result construction no longer builds
		// a second copy of the topology.
		res.Store = s.striped.Union()
	}

	res.ProbesSent = s.base.probes + s.probesSentTotal()
	res.Rounds = s.base.rounds
	for _, sh := range s.shards {
		if s.base.rounds+sh.rounds > res.Rounds {
			res.Rounds = s.base.rounds + sh.rounds
		}
	}
	res.MismatchedResponses = s.mismatched.Load()
	res.UnparsedResponses = s.unparsed.Load()
	res.RetransmittedProbes = s.base.retransmits + s.retransmitsTotal()
	res.DuplicateResponses = s.dupResponses.Load()
	res.ReadErrors = s.readErrors.Load()
	res.SendErrors = s.sendErrors.Load()
	res.SendRetries = s.sendRetries.Load()
	if s.ckpt != nil {
		// Final snapshot: every goroutine has joined, so encode from the
		// merged result store with no locking. A completed scan's snapshot
		// is marked complete and refuses to resume.
		s.writeCheckpoint(true, !res.Interrupted, res.Store)
		res.CheckpointErrors = s.ckpt.errs.Load()
	}
	if s.transportDead.Load() {
		// The abort threshold tripped: the partial result (and final
		// checkpoint) above are valid, but the caller must know the scan
		// did not merely get cancelled — its transport is dead.
		s.tdMu.Lock()
		last := s.tdErr
		s.tdMu.Unlock()
		return res, fmt.Errorf("%w: %d probes dropped (last write error: %v)",
			ErrTransportDead, res.SendErrors, last)
	}
	return res, nil
}

// runScanPass runs one full probing pass (the main scan or one extra
// scan) across all sender shards concurrently.
func (s *ScannerOf[A]) runScanPass(srcPortOffset uint16) {
	s.eachShard(func(sh *senderShardOf[A]) { sh.runRounds(srcPortOffset) })
}

// runPreprobe sends one TTL-MaxTTL probe to every block of the shard's
// preprobe targets (§3.3.1). The caller drains after all shards finish.
func (sh *senderShardOf[A]) runPreprobe() {
	s := sh.s
	targets := s.cfg.Targets
	if s.cfg.Preprobe == PreprobeHitlist {
		targets = s.cfg.PreprobeTargets
	}
	var zero A
	sh.pacer.reset()
	defer sh.flush() // phase end or cancel: no probe stays buffered
	for _, b := range sh.order {
		if s.canceled() {
			return
		}
		dst := targets(int(b))
		if dst == zero {
			continue // no preprobe candidate for this block
		}
		sh.sendProbe(dst, s.cfg.MaxTTL, true, 0)
	}
}

// runPreprobeRetry re-sends the preprobe to the shard's still-unmeasured
// blocks (one retry pass; the caller drains and decides whether to run
// another).
func (sh *senderShardOf[A]) runPreprobeRetry() {
	s := sh.s
	targets := s.cfg.Targets
	if s.cfg.Preprobe == PreprobeHitlist {
		targets = s.cfg.PreprobeTargets
	}
	var zero A
	sh.pacer.reset()
	defer sh.flush()
	for _, b := range sh.order {
		if s.canceled() {
			return
		}
		s.distMu.Lock()
		measured := s.measured[b] != 0
		s.distMu.Unlock()
		if measured {
			continue
		}
		dst := targets(int(b))
		if dst == zero {
			continue
		}
		sh.sendProbe(dst, s.cfg.MaxTTL, true, 0)
		sh.noteRetransmits(1)
	}
}

// predictDistances fills Predicted for unmeasured blocks: via the
// Config.Predict hook when supplied (the IPv6 same-/48 rule), else from
// the nearest measured block within ProximitySpan on either side
// (§3.3.3).
func (s *ScannerOf[A]) predictDistances(res *ResultOf[A]) {
	n := s.cfg.Blocks
	if s.cfg.Predict != nil {
		s.cfg.Predict(s.measured, res.Predicted)
		for b := 0; b < n; b++ {
			if s.measured[b] != 0 {
				res.DistancesMeasured++
			} else if res.Predicted[b] != 0 {
				res.DistancesPredicted++
			}
		}
		return
	}
	span := s.cfg.ProximitySpan
	for b := 0; b < n; b++ {
		if s.measured[b] != 0 {
			res.DistancesMeasured++
			continue
		}
		for d := 1; d <= span; d++ {
			if b-d >= 0 && s.measured[b-d] != 0 {
				res.Predicted[b] = s.measured[b-d]
				break
			}
			if b+d < n && s.measured[b+d] != 0 {
				res.Predicted[b] = s.measured[b+d]
				break
			}
		}
		if res.Predicted[b] != 0 {
			res.DistancesPredicted++
		}
	}
}

// initDCBs sets every destination's split point and probing bounds
// (§3.3.5, §3.4).
func (s *ScannerOf[A]) initDCBs(res *ResultOf[A]) {
	fold := s.cfg.foldsPreprobe() && s.cfg.Preprobe != PreprobeOff && !s.cfg.Exhaustive
	for _, b := range s.order {
		d := &s.dcbs[b]
		// Straggler preprobe replies may still be arriving; the receiver
		// touches dcbPreSeen under the per-DCB lock, so take it here too.
		s.locks.lock(b)
		d.dest = s.cfg.Targets(int(b))

		split := s.cfg.SplitTTL
		measured := false
		if s.measured != nil {
			if m := s.measured[b]; m != 0 {
				split, measured = m, true
			} else if p := res.Predicted[b]; p != 0 {
				split = p
			}
		}
		if s.cfg.Exhaustive {
			split = s.cfg.MaxTTL
		}
		if split < 1 {
			split = 1
		}
		if split > s.cfg.MaxTTL {
			split = s.cfg.MaxTTL
		}
		s.splits[b] = split

		d.nextBackward = split
		if fold && !measured && split == s.cfg.MaxTTL {
			// The preprobe at MaxTTL already served as the first round
			// (§3.3.5); main probing starts one hop lower.
			d.nextBackward = s.cfg.MaxTTL - 1
		}
		d.nextForward = split + 1
		d.forwardHorizon = split + s.cfg.GapLimit
		if d.forwardHorizon > s.cfg.MaxTTL {
			d.forwardHorizon = s.cfg.MaxTTL
		}
		if s.cfg.Exhaustive {
			d.flags |= dcbForwardDone
		}
		if fold && measured {
			// The destination already answered the preprobe: the forward
			// direction's goal (reaching the target) is met.
			d.flags |= dcbForwardDone
		}
		s.locks.unlock(b)
	}
}

// resetForExtraScan re-arms every DCB for a discovery-optimized extra scan
// (§5.2): backward-only probing from a random starting TTL, sharing the
// accumulated stop set.
func (s *ScannerOf[A]) resetForExtraScan(i int) {
	h := uint64(s.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xd6e8feb86659fd93
	var zero A
	for _, b := range s.order {
		d := &s.dcbs[b]
		z := h + uint64(b)*0xa0761d6478bd642f
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z ^= z >> 31
		s.locks.lock(b)
		if s.cfg.ExtraScanTargets != nil {
			// §5.4: vary the destination address within the block across
			// extra scans to expose address-dependent internal paths.
			if alt := s.cfg.ExtraScanTargets(int(b), i); alt != zero {
				d.dest = alt
			}
		}
		limit := uint64(s.cfg.MaxTTL)
		if s.cfg.AdaptiveExtraScans && d.routeLen > 0 {
			// §5.4: alternate routes rarely differ drastically in length;
			// bound the random start by the observed length plus slack.
			limit = uint64(d.routeLen) + 5
			if limit > uint64(s.cfg.MaxTTL) {
				limit = uint64(s.cfg.MaxTTL)
			}
		}
		start := uint8(z%limit) + 1
		d.nextBackward = start
		d.nextForward = start + 1
		d.forwardHorizon = 0 // no forward probing in extra scans
		d.flags = dcbForwardDone
		d.respSeen = 0 // each pass dedups its own replies
		d.fwRetries = 0
		s.splits[b] = start
		s.locks.unlock(b)
	}
}

// runRounds executes probing rounds over the shard's destinations until
// every one completes (§3.2): per round, up to one backward and one
// forward probe per destination, issued back-to-back; rounds last at
// least one second so responses can adjust the strategy between a
// destination's consecutive steps.
func (sh *senderShardOf[A]) runRounds(srcPortOffset uint16) {
	s := sh.s
	l := buildList(s.dcbs, sh.order)
	sh.pacer.reset()
	defer sh.flush()
	for l.size > 0 {
		roundStart := s.clock.Now()
		cur := l.head
		n := l.size
		for i := 0; i < n && l.size > 0; i++ {
			if s.canceled() {
				return
			}
			d := &l.dcbs[cur]
			next := d.next

			var bw, fw uint8
			s.locks.lock(cur)
			if d.nextBackward > 0 {
				bw = d.nextBackward
				d.nextBackward--
			}
			if d.flags&dcbForwardDone == 0 && d.nextForward <= d.forwardHorizon {
				fw = d.nextForward
				d.nextForward++
				if s.cfg.ForwardRetries > 0 {
					d.lastForward = s.fwdTick()
				}
			}
			dst := d.dest
			s.locks.unlock(cur)

			if bw > 0 {
				sh.sendProbe(dst, bw, false, srcPortOffset)
			}
			if fw > 0 {
				sh.sendProbe(dst, fw, false, srcPortOffset)
			}
			if bw == 0 && fw == 0 {
				// No work this round: re-check completion under the lock
				// (a response may have just extended the horizon).
				retried := 0
				s.locks.lock(cur)
				done := d.nextBackward == 0 &&
					(d.flags&dcbForwardDone != 0 || d.nextForward > d.forwardHorizon)
				if done && s.cfg.ForwardRetries > 0 && s.cfg.GapLimit > 0 &&
					d.flags&dcbForwardDone == 0 && d.forwardHorizon > 0 {
					// The whole gap went silent without the destination
					// answering. On a lossy network that can mean a lost
					// reply rather than genuinely silent hops: give
					// in-flight replies ForwardTimeout to arrive, then
					// rewind and re-probe the silent gap.
					wait := uint16((s.cfg.ForwardTimeout + 15*time.Millisecond) / (16 * time.Millisecond))
					if s.fwdTick()-d.lastForward < wait {
						done = false // replies may still be in flight
					} else if d.fwRetries < uint8(s.cfg.ForwardRetries) {
						d.fwRetries++
						lo := int(d.forwardHorizon) - int(s.cfg.GapLimit) + 1
						if min := int(s.splits[cur]) + 1; lo < min {
							lo = min
						}
						if lo <= int(d.forwardHorizon) {
							retried = int(d.forwardHorizon) - lo + 1
							d.nextForward = uint8(lo)
							done = false
						}
					}
				}
				s.locks.unlock(cur)
				if retried > 0 {
					sh.noteRetransmits(uint64(retried))
				}
				if done {
					l.remove(cur)
				}
			}
			cur = next
		}
		sh.rounds++
		if rem := s.cfg.MinRoundTime - s.clock.Now().Sub(roundStart); rem > 0 {
			sh.flush() // round gap: write out before blocking
			s.clock.Sleep(rem)
			sh.pacer.reset()
		}
	}
}

// isTemporary reports whether a send error is transient — the net.Error
// Temporary convention, matched structurally so the engine needs no
// transport imports.
func isTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// ErrTransportDead is wrapped by the error RunContext returns when
// Config.AbortOnSendErrors probes were dropped: the transport is
// considered dead and the (partial, checkpointed) scan aborted.
var ErrTransportDead = errors.New("core: transport dead")

// noteSendError accounts one permanently dropped probe and, when
// Config.AbortOnSendErrors is armed, aborts the scan through the
// graceful-cancel path once the threshold of this run's failures is
// reached — the senders stop at their next probing step, the receivers
// drain, the final checkpoint is written, and RunContext surfaces
// ErrTransportDead.
func (s *ScannerOf[A]) noteSendError(err error) {
	n := s.sendErrors.Add(1)
	t := s.cfg.AbortOnSendErrors
	if t <= 0 || n-s.sendErrBase < uint64(t) {
		return
	}
	s.tdMu.Lock()
	if s.tdErr == nil {
		s.tdErr = err
	}
	s.tdMu.Unlock()
	s.transportDead.Store(true)
	s.cancelled.Store(true)
}

// LiveCounters reports the scan's monotonic progress counters: probes
// successfully written and replies processed so far. Safe to call from
// any goroutine at any time; an external watchdog that samples both and
// sees neither advance across its deadline has found a stalled worker.
func (s *ScannerOf[A]) LiveCounters() (probes, replies uint64) {
	return s.liveProbes.Load(), s.liveReplies.Load()
}

// sendProbe builds, stamps, paces and writes one probe. Transient write
// errors are retried with capped exponential backoff (Config.SendRetries);
// a probe that still cannot be written is dropped and counted — one lost
// datapoint, not a failed scan. Only successfully written probes count as
// sent.
func (sh *senderShardOf[A]) sendProbe(dst A, ttl uint8, preprobe bool, srcPortOffset uint16) {
	s := sh.s
	sh.pollRate()
	if sh.bw != nil {
		sh.sendProbeBatched(dst, ttl, preprobe, srcPortOffset)
		return
	}
	elapsed := s.clock.Now().Sub(s.start)
	n := s.fam.BuildProbe(sh.pktBuf[:], s.cfg.Source, dst, ttl, preprobe,
		elapsed, srcPortOffset)
	err := s.conn.WritePacket(sh.pktBuf[:n])
	for retry := 0; err != nil && retry < s.cfg.SendRetries && isTemporary(err); retry++ {
		s.sendRetries.Add(1)
		backoff := time.Millisecond << retry
		if backoff > 50*time.Millisecond {
			backoff = 50 * time.Millisecond
		}
		s.clock.Sleep(backoff)
		// Rebuild: the probe's timestamp rides in the packet (§3.1), so a
		// retried probe must carry its actual send time or the derived RTT
		// would include the backoff.
		elapsed = s.clock.Now().Sub(s.start)
		n = s.fam.BuildProbe(sh.pktBuf[:], s.cfg.Source, dst, ttl, preprobe,
			elapsed, srcPortOffset)
		err = s.conn.WritePacket(sh.pktBuf[:n])
	}
	if err != nil {
		s.noteSendError(err)
	} else {
		sh.probesSent++
		s.liveProbes.Add(1)
		if s.ckpt != nil {
			s.maybeCheckpoint(1)
		}
	}
	if s.cfg.Observer != nil {
		if len(s.shards) > 1 {
			s.obsMu.Lock()
			s.cfg.Observer(dst, ttl, elapsed)
			s.obsMu.Unlock()
		} else {
			s.cfg.Observer(dst, ttl, elapsed)
		}
	}
	sh.pacer.pace()
}

// receiveLoop is the receiving thread of the single-receiver mode (§3.2):
// it decodes every response from the quoted probe header alone and updates
// the corresponding DCB. The sharded mode's per-worker loop lives in
// receive.go.
func (s *ScannerOf[A]) receiveLoop() {
	if s.cfg.Batch > 1 {
		if br, ok := s.conn.(BatchReader); ok {
			s.receiveLoopBatch(br)
			return
		}
	}
	var buf [4096]byte
	for {
		n, err := s.conn.ReadPacket(buf[:])
		if err != nil {
			if err != io.EOF {
				// A transport failure, not a malformed packet: account it
				// separately from UnparsedResponses.
				s.readErrors.Add(1)
			}
			return
		}
		s.handleResponse(buf[:n])
	}
}

// handleResponse decodes and fully processes one response packet on the
// calling goroutine (the single-receiver path).
func (s *ScannerOf[A]) handleResponse(pkt []byte) {
	if block, r, ok := s.parseResponse(pkt); ok {
		s.processReply(s.store, block, &r)
	}
}

// parseResponse runs the parallel-safe front half of response handling:
// decode the packet, account unparseable and mismatched ones, and map the
// quoted destination to its block. ok reports whether a reply came out.
func (s *ScannerOf[A]) parseResponse(pkt []byte) (int, Reply[A], bool) {
	now := s.clock.Now().Sub(s.start)
	r := s.fam.ParseReply(pkt, uint16(s.scanOffset.Load()), now)
	switch r.Kind {
	case ReplyUnparsed:
		s.unparsed.Add(1)
		return 0, r, false
	case ReplyMismatch:
		// The destination was modified in flight (§5.3): discard.
		s.mismatched.Add(1)
		return 0, r, false
	}
	block, ok := s.cfg.BlockOf(r.Dst)
	if !ok {
		s.unparsed.Add(1)
		return 0, r, false
	}
	return block, r, true
}

// processReply applies one decoded reply to the probing state: the
// block's DCB, the stop set, and the given result store (the scanner's
// only store in single-receiver mode, the owning worker's stripe in
// sharded mode). All replies of a block go through exactly one goroutine.
func (s *ScannerOf[A]) processReply(store *trace.StoreOf[A], block int, r *Reply[A]) {
	s.liveReplies.Add(1)
	if ck := s.ckpt; ck != nil {
		// Checkpoint write barrier: the encoder takes the write side, so a
		// snapshot never observes a half-applied reply. Disarmed scans
		// skip even the read lock.
		ck.mu.RLock()
		defer ck.mu.RUnlock()
	}
	if r.Preprobe {
		s.handlePreprobeResponse(store, block, r)
		return
	}

	d := &s.dcbs[block]
	switch r.Kind {
	case ReplyTTLExceeded:
		// Duplicate guard: a second reply for an already-processed
		// (destination, TTL) — a network duplicate or the echo of a
		// retransmitted probe — must not double-count the hop in the
		// route or re-run the strategy update below (which would see its
		// own hop in the stop set and terminate backward probing early).
		bit := uint32(1) << (r.InitTTL - 1)
		s.locks.lock(uint32(block))
		if d.respSeen&bit != 0 {
			s.locks.unlock(uint32(block))
			s.dupResponses.Add(1)
			return
		}
		d.respSeen |= bit
		seen := s.stopSet.Has(r.Hop)
		if r.InitTTL > d.routeLen && d.flags&dcbForwardDone == 0 {
			d.routeLen = r.InitTTL
		}
		if r.InitTTL <= s.splits[block] {
			// Backward side: terminate on the vantage point's first hop or
			// on route convergence with the stop set (§3.2, §3.4).
			if r.InitTTL == 1 {
				d.nextBackward = 0
			} else if seen && !s.cfg.NoRedundancyElimination {
				d.nextBackward = 0
				// Mark the termination as a stop-set decision: checkpoint
				// resume must not rewind past it (TTL-1 terminations need
				// no mark — their respSeen bit pins the rewind).
				d.flags |= dcbBwStopped
			}
		} else if d.flags&dcbForwardDone == 0 {
			// Forward side: the farthest responding hop pushes the horizon
			// out by GapLimit (§3.4).
			h := r.InitTTL + s.cfg.GapLimit
			if h > s.cfg.MaxTTL {
				h = s.cfg.MaxTTL
			}
			if h > d.forwardHorizon {
				d.forwardHorizon = h
			}
		}
		s.locks.unlock(uint32(block))
		store.AddHopAt(block/s.slotDiv, r.Dst, r.InitTTL, r.Hop, r.RTT)
		s.stopSet.Add(r.Hop)
		if sink := s.cfg.TraceSink; sink != nil {
			sink.HopDiscovered(r.Dst, r.InitTTL, r.Hop)
		}

	case ReplyUnreachable:
		// Destination answers need no duplicate guard: every step here is
		// idempotent (SetReached keeps the first answer, the stop-set
		// insert and flag set are set-like), destination addresses never
		// enter the interface set, and no backward/horizon strategy runs.
		// Probes past the destination legitimately elicit one unreachable
		// each, so repeats are not necessarily network duplicates.
		store.SetReachedAt(block/s.slotDiv, r.Dst, r.Dist, r.Hop, r.RTT)
		s.stopSet.Add(r.Hop)
		if sink := s.cfg.TraceSink; sink != nil {
			sink.DestReached(r.Dst, r.Dist)
		}
		s.locks.lock(uint32(block))
		d.flags |= dcbForwardDone
		d.routeLen = r.Dist
		s.locks.unlock(uint32(block))

	default:
		s.unparsed.Add(1)
	}
}

// handlePreprobeResponse implements §3.3.1: a destination-unreachable
// response to the TTL-MaxTTL preprobe yields the exact hop distance from a
// single probe. TTL-exceeded preprobe responses are folded into the
// discovered topology (§3.3.5).
func (s *ScannerOf[A]) handlePreprobeResponse(store *trace.StoreOf[A], block int, r *Reply[A]) {
	if r.Kind == ReplyUnreachable {
		store.SetReachedAt(block/s.slotDiv, r.Dst, r.Dist, r.Hop, r.RTT)
		s.stopSet.Add(r.Hop)
		if sink := s.cfg.TraceSink; sink != nil {
			sink.DestReached(r.Dst, r.Dist)
		}
		if r.Dist >= 1 && r.Dist <= s.cfg.MaxTTL {
			s.distMu.Lock()
			if s.phase.Load() == 0 && s.measured != nil {
				s.measured[block] = r.Dist
			}
			s.distMu.Unlock()
		}
		return
	}
	if r.Kind == ReplyTTLExceeded {
		// Preprobes always travel at MaxTTL, so every TTL-exceeded reply
		// to them quotes the same initial TTL: any reply after the first
		// (a duplicate, or a retry pass answered by the same router) adds
		// nothing and must not re-append the hop to the route.
		s.locks.lock(uint32(block))
		preSeen := s.dcbs[block].flags&dcbPreSeen != 0
		s.dcbs[block].flags |= dcbPreSeen
		s.locks.unlock(uint32(block))
		if preSeen {
			s.dupResponses.Add(1)
			return
		}
		store.AddHopAt(block/s.slotDiv, r.Dst, r.InitTTL, r.Hop, r.RTT)
		s.stopSet.Add(r.Hop)
		if sink := s.cfg.TraceSink; sink != nil {
			sink.HopDiscovered(r.Dst, r.InitTTL, r.Hop)
		}
	}
}

// StopSetSize reports the number of interfaces in the stop set (after the
// scan; used by tests and the discovery-mode analysis).
func (s *ScannerOf[A]) StopSetSize() int { return s.stopSet.Size() }
