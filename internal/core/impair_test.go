package core

import (
	"sort"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/trace"
)

// fpOf fingerprints a scan's discovered topology: FNV-1a over the sorted
// interface set and the sorted reached-destination set. Probe order and
// timing do not enter the fingerprint, only what was discovered.
func fpOf(res *Result) uint64 {
	ifaces := make([]uint32, 0, res.Store.Interfaces().Len())
	for a := range res.Store.Interfaces().All() {
		ifaces = append(ifaces, a)
	}
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i] < ifaces[j] })
	var reached []uint32
	res.Store.ForEachRoute(func(rt *trace.Route) {
		if rt.Reached {
			reached = append(reached, rt.Dst)
		}
	})
	sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= 1099511628211
		}
	}
	for _, a := range ifaces {
		mix(a)
	}
	mix(0xffffffff)
	for _, d := range reached {
		mix(d)
	}
	return h
}

// TestImpairmentZeroFingerprint pins the no-behavior-change-by-default
// guarantee: with Impairments all-zero, scans are bit-identical to the
// engine before the impairment layer existed. The fingerprints below were
// captured from that engine (blocks=1024, default params; lockstep params
// for the multi-sender rows) and must never drift.
func TestImpairmentZeroFingerprint(t *testing.T) {
	single := []struct {
		seed   int64
		fp     uint64
		probes uint64
	}{
		{1, 0xe464436d2a0b477e, 10985},
		{7, 0xf723e4bc94b806ca, 10440},
		{21, 0x477f025e0ae0c8fe, 11313},
	}
	for _, tc := range single {
		e := newEnv(t, 1024, tc.seed)
		e.topo.P.Impair = netsim.Impairments{} // explicit: the zero value
		res := e.run(t)
		if fp := fpOf(res); fp != tc.fp {
			t.Errorf("seed %d senders=1: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
		if res.ProbesSent != tc.probes {
			t.Errorf("seed %d senders=1: probes %d, want %d", tc.seed, res.ProbesSent, tc.probes)
		}
		if res.RetransmittedProbes != 0 || res.DuplicateResponses != 0 {
			t.Errorf("seed %d: perfect network counted retransmits=%d dups=%d",
				tc.seed, res.RetransmittedProbes, res.DuplicateResponses)
		}
	}

	// Multi-sender runs are only order-invariant in the lockstep
	// environment (no rate limiting, no dynamics, no jitter, no stop-set
	// coupling), where the discovered topology is a pure function of the
	// probe set.
	multi := []struct {
		seed int64
		fp   uint64
	}{
		{1, 0xe7dc416d629f035c},
		{7, 0x500ee780aefb45e9},
		{21, 0xf9ab8ad983ad9858},
	}
	for _, tc := range multi {
		e := newLockstepEnv(t, 1024, tc.seed)
		e.cfg.Senders = 4
		e.topo.P.Impair = netsim.Impairments{}
		res := e.run(t)
		if fp := fpOf(res); fp != tc.fp {
			t.Errorf("seed %d senders=4: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
	}
}

// TestImpairmentDeterminism: same topology seed + same Impairments ⇒ the
// same scan, reply for reply. Two runs must agree on the fingerprint, the
// probe count and every impairment counter.
func TestImpairmentDeterminism(t *testing.T) {
	im := netsim.Impairments{
		LossProb:      0.08,
		GEGoodToBad:   0.01,
		GEBadToGood:   0.25,
		GEBadLoss:     0.5,
		DupProb:       0.03,
		ReorderProb:   0.05,
		ReorderWindow: 40 * time.Millisecond,
		ExtraJitter:   10 * time.Millisecond,
	}
	run := func() (*Result, *netsim.Stats) {
		e := newEnv(t, 1024, 7)
		e.topo.P.Impair = im
		e.cfg.PreprobeRetries = 1
		e.cfg.ForwardRetries = 1
		return e.run(t), &e.net.Stats
	}
	r1, s1 := run()
	r2, s2 := run()

	if fp1, fp2 := fpOf(r1), fpOf(r2); fp1 != fp2 {
		t.Errorf("fingerprints differ across identical runs: %#x vs %#x", fp1, fp2)
	}
	if r1.ProbesSent != r2.ProbesSent {
		t.Errorf("probe counts differ: %d vs %d", r1.ProbesSent, r2.ProbesSent)
	}
	if r1.RetransmittedProbes != r2.RetransmittedProbes {
		t.Errorf("retransmit counts differ: %d vs %d", r1.RetransmittedProbes, r2.RetransmittedProbes)
	}
	if r1.DuplicateResponses != r2.DuplicateResponses {
		t.Errorf("duplicate counts differ: %d vs %d", r1.DuplicateResponses, r2.DuplicateResponses)
	}
	for _, c := range []struct {
		name string
		a, b uint64
	}{
		{"ProbesLost", s1.ProbesLost.Load(), s2.ProbesLost.Load()},
		{"RepliesLost", s1.RepliesLost.Load(), s2.RepliesLost.Load()},
		{"Duplicates", s1.Duplicates.Load(), s2.Duplicates.Load()},
		{"Reordered", s1.Reordered.Load(), s2.Reordered.Load()},
	} {
		if c.a != c.b {
			t.Errorf("netsim %s differs: %d vs %d", c.name, c.a, c.b)
		}
		if c.a == 0 {
			t.Errorf("netsim %s is zero — impairment not exercised", c.name)
		}
	}
	t.Logf("probes=%d retransmits=%d dups=%d interfaces=%d",
		r1.ProbesSent, r1.RetransmittedProbes, r1.DuplicateResponses,
		r1.Store.Interfaces().Len())
}

// TestImpairmentLossMonotonicity: in an environment where the discovered
// topology is a pure function of which replies arrive (no preprobing, no
// rate limiting, no dynamics, no stop-set coupling, loss the only
// impairment), losing packets can only shrink discovery: the 20%-loss
// interface set must be a subset of the lossless one.
func TestImpairmentLossMonotonicity(t *testing.T) {
	run := func(loss float64) *Result {
		e := newLockstepEnv(t, 1024, 3)
		e.cfg.Preprobe = PreprobeOff
		e.topo.P.Impair = netsim.Impairments{LossProb: loss}
		return e.run(t)
	}
	clean := run(0)
	lossy := run(0.20)

	ic, il := clean.Store.Interfaces(), lossy.Store.Interfaces()
	if il.Len() > ic.Len() {
		t.Errorf("20%% loss discovered MORE interfaces: %d > %d", il.Len(), ic.Len())
	}
	for a := range il.All() {
		if !ic.Has(a) {
			t.Errorf("interface %#x discovered only under loss", a)
		}
	}
	rc, rl := reachedSet(clean), reachedSet(lossy)
	if len(rl) > len(rc) {
		t.Errorf("20%% loss reached MORE destinations: %d > %d", len(rl), len(rc))
	}
	for d := range rl {
		if !rc[d] {
			t.Errorf("destination %#x reached only under loss", d)
		}
	}
	if il.Len() == ic.Len() {
		t.Errorf("20%% loss lost nothing (interfaces %d == %d) — impairment not exercised",
			il.Len(), ic.Len())
	}
	t.Logf("interfaces: clean=%d lossy=%d; reached: clean=%d lossy=%d",
		ic.Len(), il.Len(), len(rc), len(rl))
}

// TestImpairmentDuplicateInvariance: with every packet duplicated (and
// nothing lost), the receive-path duplicate guard must keep the discovered
// topology exactly what it is on a clean network — no double-counted
// interfaces, no prematurely terminated backward probing.
func TestImpairmentDuplicateInvariance(t *testing.T) {
	run := func(dup float64) *Result {
		e := newLockstepEnv(t, 1024, 5)
		e.topo.P.Impair = netsim.Impairments{DupProb: dup}
		return e.run(t)
	}
	clean := run(0)
	duped := run(1)

	if fc, fd := fpOf(clean), fpOf(duped); fc != fd {
		t.Errorf("duplication changed the discovered topology: %#x vs %#x", fc, fd)
	}
	if duped.DuplicateResponses == 0 {
		t.Error("DupProb=1 produced no counted duplicate responses")
	}
	t.Logf("interfaces=%d duplicates discarded=%d",
		duped.Store.Interfaces().Len(), duped.DuplicateResponses)
}

// TestImpairmentPreprobeRetry: under loss, one preprobe retry pass must
// recover measured distances a single pass lost, and never lose any.
func TestImpairmentPreprobeRetry(t *testing.T) {
	run := func(retries int) *Result {
		e := newEnv(t, 1024, 1)
		e.topo.P.Impair = netsim.Impairments{LossProb: 0.30}
		e.cfg.PreprobeRetries = retries
		return e.run(t)
	}
	plain := run(0)
	retried := run(2)

	if retried.RetransmittedProbes == 0 {
		t.Fatal("retry runs recorded no retransmitted probes")
	}
	if retried.DistancesMeasured <= plain.DistancesMeasured {
		t.Errorf("retries measured %d distances, single pass %d — no recovery",
			retried.DistancesMeasured, plain.DistancesMeasured)
	}
	t.Logf("measured: plain=%d retried=%d (retransmits=%d)",
		plain.DistancesMeasured, retried.DistancesMeasured, retried.RetransmittedProbes)
}

// TestImpairmentForwardRetry: under loss, rewinding the silent gap must
// recover forward discovery (interfaces past the split point) that lost
// replies would otherwise end. The comparison runs in the lockstep
// environment: with per-interface rate limiting on, retransmissions also
// consume ICMP budget, which can cost unrelated replies and mask the
// recovery (the same live-network trade-off the paper's GapLimit makes).
func TestImpairmentForwardRetry(t *testing.T) {
	run := func(retries int) *Result {
		e := newLockstepEnv(t, 1024, 1)
		e.topo.P.Impair = netsim.Impairments{LossProb: 0.15}
		e.cfg.ForwardRetries = retries
		return e.run(t)
	}
	plain := run(0)
	retried := run(1)

	if retried.RetransmittedProbes == 0 {
		t.Fatal("forward retries recorded no retransmitted probes")
	}
	ip, ir := plain.Store.Interfaces().Len(), retried.Store.Interfaces().Len()
	rp, rr := len(reachedSet(plain)), len(reachedSet(retried))
	if ir < ip {
		t.Errorf("forward retries discovered fewer interfaces: %d < %d", ir, ip)
	}
	if rr < rp {
		t.Errorf("forward retries reached fewer destinations: %d < %d", rr, rp)
	}
	t.Logf("interfaces: plain=%d retried=%d; reached: plain=%d retried=%d (retransmits=%d)",
		ip, ir, rp, rr, retried.RetransmittedProbes)
}
