package core

// dcbOf is the destination control block of paper §3.4 (Listing 1): the
// per-destination probing state plus the doubly-linked-list overlay,
// generic over the destination address type.
//
// The sending thread reads nextBackward/nextForward/forwardHorizon each
// round and advances them as it issues probes; the receiving thread
// updates forwardHorizon on responses and zeroes nextBackward when the
// backward scan completes (TTL-1 hop or convergence with the stop set).
// Each DCB is guarded by its own lock (a parallel array managed by
// dcbLocks — per-DCB mutexes as in the paper, or the §3.4-suggested
// test-and-set spinlocks), exactly as the paper argues: contention only
// occurs when a response for a destination arrives while the sender
// happens to be handling the same destination.
type dcbOf[A comparable] struct {
	dest A

	// respSeen has bit (TTL-1) set once a TTL-exceeded response for that
	// initial TTL has been processed this pass — the duplicate-reply
	// guard: a duplicated ICMP reply must neither double-count an
	// interface in the route nor re-run the probing-strategy update
	// (which would otherwise see its own hop in the stop set and
	// terminate backward probing early). Guarded by the per-DCB lock.
	respSeen uint32

	// Doubly linked list overlay (indexes into the DCB array).
	next, prev uint32

	// lastForward is the scan-relative issue time of this destination's
	// most recent forward probe in 16 ms ticks, read by the forward-retry
	// timeout (unsigned wrap-safe comparison; a wrap past ~17 min can at
	// worst defer a retry by one round). Only maintained when
	// Config.ForwardRetries > 0.
	lastForward uint16

	// Probing progress (paper Listing 1).
	nextBackward   uint8 // TTL of the next backward probe; 0 = backward done
	nextForward    uint8 // TTL of the next forward probe
	forwardHorizon uint8 // forward stops once nextForward > forwardHorizon
	flags          uint8
	// routeLen tracks the farthest response (or the destination's
	// distance once reached) — the input to the §5.4 adaptive heuristic
	// for discovery-optimized extra scans.
	routeLen uint8
	// fwRetries counts forward-gap rewinds performed for this
	// destination (bounded by Config.ForwardRetries).
	fwRetries uint8
}

// dcb is the IPv4 DCB (used by the footprint accounting).
type dcb = dcbOf[uint32]

// dcb flag bits.
const (
	dcbForwardDone = 1 << iota // destination answered (unreachable received)
	dcbRemoved                 // unlinked from the probing list
	dcbSplitHigh               // low bits of the split TTL continue in splitLow
	dcbPreSeen                 // a TTL-exceeded preprobe response was processed
	// dcbBwStopped marks backward probing terminated by the Doubletree
	// stop set rather than by reaching TTL 1. Checkpoint resume keys off
	// it: a stop-set termination must not be rewound (the hop that
	// triggered it is in the restored stop set, but the respSeen bitmap
	// alone cannot distinguish "stopped early" from "probes still in
	// flight").
	dcbBwStopped
)

// listOf is the circular doubly linked list threaded through the DCB
// array in random-permutation order (paper Figure 5). Only the sending
// thread traverses and modifies links, so no locking is needed on
// next/prev.
type listOf[A comparable] struct {
	dcbs []dcbOf[A]
	head uint32 // any live element; noHead when empty
	size int
}

const noHead = ^uint32(0)

// buildList threads the DCBs at the given permuted order into a circular
// list. order lists DCB indexes; already-removed DCBs are skipped.
func buildList[A comparable](dcbs []dcbOf[A], order []uint32) *listOf[A] {
	l := &listOf[A]{dcbs: dcbs, head: noHead}
	var prev uint32 = noHead
	var first uint32 = noHead
	for _, idx := range order {
		if dcbs[idx].flags&dcbRemoved != 0 {
			continue
		}
		if first == noHead {
			first = idx
		} else {
			dcbs[prev].next = idx
			dcbs[idx].prev = prev
		}
		prev = idx
		l.size++
	}
	if first == noHead {
		return l
	}
	dcbs[prev].next = first
	dcbs[first].prev = prev
	l.head = first
	return l
}

// remove unlinks idx from the list. Caller guarantees idx is linked.
func (l *listOf[A]) remove(idx uint32) {
	d := &l.dcbs[idx]
	d.flags |= dcbRemoved
	l.size--
	if l.size == 0 {
		l.head = noHead
		return
	}
	n, p := d.next, d.prev
	l.dcbs[p].next = n
	l.dcbs[n].prev = p
	if l.head == idx {
		l.head = n
	}
}
