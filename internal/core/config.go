// Package core implements FlashRoute itself: the round-based, stateful but
// highly parallel traceroute engine of the paper.
//
// The design mirrors the paper section by section:
//
//   - §3.1 probe encoding — all probing context rides in the packet
//     (implemented in internal/probe and consumed here);
//   - §3.2 probing strategy — rounds over a shuffled destination sequence,
//     up to two probes per destination per round (one backward, one
//     forward), decoupled sender and receiver threads, rounds lasting at
//     least one second;
//   - §3.3 preprobing — one-probe hop-distance measurement at TTL 32 plus
//     proximity-span prediction, used to place each route's split point;
//   - §3.4 control state — a flat array of destination control blocks
//     (DCBs) indexed by block, with a circular doubly linked list overlay
//     in random-permutation order and a per-DCB mutex;
//   - §5.2 discovery-optimized mode — extra backward-only scans with
//     shifted source ports sharing the main scan's stop set.
//
// The engine is generic over the address representation A: packet
// construction and decoding are delegated to a Family implementation,
// while all probing strategy, scheduling, retry, and dedup logic is
// shared. The IPv4 instantiation keeps its historical names (Config,
// Scanner, Result) as aliases; internal/core6 instantiates the same
// engine at the IPv6 address type.
package core

import (
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

// PacketConn is the raw network access FlashRoute needs: write whole
// probe packets, read whole response packets. internal/netsim (and
// netsim6) provide the simulated implementations; a production deployment
// would back it with a raw socket.
type PacketConn interface {
	WritePacket(pkt []byte) error
	ReadPacket(buf []byte) (int, error)
	Close() error
}

// PacketReader is a per-receiver read handle for the sharded receive
// pipeline (Config.Receivers > 1): each receive worker owns one, so R
// workers can block on the transport concurrently. ReadPacket has one
// extension over PacketConn's: it may return (0, nil) when the wait was
// interrupted by Wake before a packet arrived, letting the worker service
// replies dispatched to it by its siblings. Wake must be safe to call
// from any goroutine and must release a concurrently blocked (or the
// next) ReadPacket. netsim's and netsim6's Conn.NewReader provide the
// simulated implementations; a production deployment would back it with
// a per-worker raw socket or a shared ring with per-worker eventfds.
type PacketReader interface {
	ReadPacket(buf []byte) (int, error)
	Wake()
}

// BatchWriter is an optional capability of a PacketConn (the sendmmsg
// shape): WriteBatch writes pkts in order and returns how many were
// consumed. A non-nil error with n < len(pkts) means pkts[n] failed —
// per-packet fault semantics — and the packets after it were not
// attempted; the caller handles pkts[n] (retry or drop) and resubmits the
// rest. n == len(pkts) with a non-nil error is a connection-level failure
// after every packet was consumed. The engine detects the capability by
// interface assertion when Config.Batch > 1, so plain PacketConns keep
// working unchanged.
type BatchWriter interface {
	WriteBatch(pkts [][]byte) (int, error)
}

// BatchReader is an optional capability of a PacketConn or PacketReader
// (the recvmmsg shape): ReadBatch blocks like ReadPacket until at least
// one packet is available, then opportunistically fills additional
// already-available packets without blocking, setting sizes[i] for each
// bufs[i] filled. It returns (0, io.EOF) at end of stream; a PacketReader
// implementation may additionally return (0, nil) for a Wake interrupt —
// and so may polling transports with nothing ready, which callers must
// treat as "try again".
type BatchReader interface {
	ReadBatch(bufs [][]byte, sizes []int) (int, error)
}

// TargetFunc supplies the representative address probed for a block
// (IPv4 form; the generic ConfigOf uses the equivalent raw func type).
type TargetFunc func(block int) uint32

// BlockFunc maps an address back to its block index (ok=false if the
// address is outside the scanned universe).
type BlockFunc func(addr uint32) (int, bool)

// PreprobeMode selects how the preprobing phase picks its targets.
type PreprobeMode int

const (
	// PreprobeOff disables the preprobing phase (§4.1.3 "no preprobing").
	PreprobeOff PreprobeMode = iota
	// PreprobeRandom preprobes the same random representatives as the main
	// scan. With SplitTTL == MaxTTL this folds into the first probing
	// round at zero extra probe cost (§3.3.5).
	PreprobeRandom
	// PreprobeHitlist preprobes separately supplied, more responsive
	// addresses (the hitlist), while the main scan still probes the
	// random representatives to avoid the hitlist's topology bias
	// (§4.1.3, §5.1).
	PreprobeHitlist
)

// ProbeObserver is called for every probe issued (destination, TTL, time
// since scan start). Used by the evaluation harness for Figure 7 and the
// Table 4 overprobing analysis.
type ProbeObserver func(dst uint32, ttl uint8, at time.Duration)

// ConfigOf parameterizes a scan over address type A. Use DefaultConfig
// (IPv4) as the starting point; IPv6 call sites build it through
// internal/core6.
type ConfigOf[A comparable] struct {
	// Blocks is the number of destination blocks in the universe (DCB
	// array size): /24s for IPv4, candidate-list entries for IPv6.
	Blocks int
	// Targets supplies the per-block representative probed in the main
	// scan. A zero-valued address marks the block as having no candidate
	// and is never probed.
	Targets func(block int) A
	// BlockOf maps quoted destination addresses back to block indexes.
	BlockOf func(addr A) (int, bool)
	// Source is the vantage point address stamped into probes.
	Source A

	// SplitTTL is the default split point where backward and forward
	// probing commence for destinations without a measured or predicted
	// distance (§3.2; the paper evaluates 16 and 32).
	SplitTTL uint8
	// GapLimit stops forward probing after this many consecutive silent
	// hops (§3.2; default 5, Figure 6 sweeps it).
	GapLimit uint8
	// MaxTTL bounds probing (32, also the preprobe TTL).
	MaxTTL uint8

	// PPS is the probing rate in packets per second; <= 0 disables
	// throttling (only meaningful on a real clock — on a virtual clock an
	// unthrottled sender never yields and time cannot advance). The rate
	// is an aggregate across all senders.
	PPS int

	// Senders is the number of sending goroutines. The permuted
	// destination sequence is sharded into Senders contiguous slices, each
	// owned by one sender with its own packet buffer and pacer; the
	// receiver keeps racing against all of them through the per-DCB locks
	// (§3.4). <= 0 and 1 both mean a single sender — the paper-faithful
	// configuration every reproduction experiment pins, because probe
	// interleaving (and with it rate-limit and route-dynamics timing) is
	// only deterministic with one sender on the virtual clock.
	Senders int

	// Receivers is the number of reply-processing workers. The paper's
	// engine has exactly one receiving thread (§3.2); with Receivers > 1
	// the receive path is sharded: every worker pulls raw packets from its
	// own PacketReader and parses them in parallel, then dispatches each
	// decoded reply to the worker owning block % Receivers, so each DCB,
	// stop-set shard and trace-store stripe keeps a single writer. <= 0
	// and 1 both mean the classic inline receiver, bit-identical to the
	// paper configuration.
	Receivers int

	// NewReader supplies the per-worker read handles of the sharded
	// receive pipeline; required when Receivers > 1 (each call must return
	// a handle safe to use concurrently with its siblings), ignored
	// otherwise.
	NewReader func() PacketReader

	// Batch is the maximum number of packets moved per transport call on
	// both data paths: senders accumulate built probes in a per-shard
	// arena and flush them through BatchWriter.WriteBatch; receivers pull
	// responses through BatchReader.ReadBatch into per-worker buffer
	// arenas. <= 1 disables batching (the classic per-packet path). Each
	// capability is detected independently by interface assertion, so a
	// transport may batch one direction only; a transport with neither
	// runs exactly as before. Arenas are preallocated, keeping the
	// steady state allocation-free. Batching never distorts pacing or
	// results: shards flush before every pacer sleep, round gap and phase
	// end, so the set of written probes at every blocking point is
	// identical to the unbatched engine's.
	Batch int

	// Preprobe selects the preprobing mode; PreprobeTargets supplies
	// hitlist addresses when PreprobeHitlist is used (ignored otherwise).
	Preprobe        PreprobeMode
	PreprobeTargets func(block int) A
	// ProximitySpan is how many neighboring blocks a measured distance
	// predicts on each side (§3.3.3; default 5). Ignored when Predict is
	// set.
	ProximitySpan int

	// Predict, when non-nil, replaces the built-in proximity-span
	// prediction: it receives the per-block measured distances (0 =
	// unmeasured) and fills predicted distances for unmeasured blocks.
	// IPv6 uses this for same-/48 prediction, where block adjacency —
	// not numeric adjacency — defines proximity.
	Predict func(measured, predicted []uint8)

	// PreprobeRetries re-preprobes blocks still unmeasured after the
	// first preprobe pass and its drain, up to this many extra passes
	// (each followed by its own drain). 0 = single pass, the paper's
	// behavior on a loss-free network; on a lossy network one lost
	// unreachable reply otherwise silently downgrades the block from a
	// measured to a predicted (or default) split point.
	PreprobeRetries int

	// ForwardRetries lets a destination whose forward probing went
	// silent for the whole GapLimit rewind and re-probe the silent gap,
	// up to this many times, instead of giving up — distinguishing lost
	// replies from genuinely silent hops. 0 = no retries (paper
	// behavior: a lost reply burns the GapLimit like a silent hop).
	ForwardRetries int

	// ForwardTimeout is how long a gap-exhausted destination waits for
	// in-flight replies before a forward retry (or final removal) when
	// ForwardRetries > 0. Default 500ms.
	ForwardTimeout time.Duration

	// NoRedundancyElimination disables the Doubletree stop set so
	// backward probing always walks to TTL 1 (Table 1 "off" rows).
	NoRedundancyElimination bool

	// Exhaustive makes the scan probe every TTL from MaxTTL down to 1 for
	// every destination with no early termination, no forward probing and
	// no preprobing — the configuration the paper uses to simulate
	// Yarrp-32 with UDP probes (§4.2.1).
	Exhaustive bool

	// ExtraScans runs the discovery-optimized mode (§5.2): after the main
	// scan, this many additional backward-only scans are run with source
	// port offsets +1, +2, ... and random per-destination starting TTLs,
	// sharing the main scan's stop set.
	ExtraScans int
	// AdaptiveExtraScans implements the §5.4 refinement: instead of
	// picking each extra scan's starting TTL uniformly from 1..MaxTTL,
	// pick it from 1..(observed route length + 5), saving the backward
	// probes that would explore past the route's end on alternate paths
	// of similar length.
	AdaptiveExtraScans bool
	// ExtraScanTargets, when non-nil, implements §5.4's other mitigation
	// for the one-address-per-/24 limitation: each discovery-optimized
	// extra scan probes a different destination address within the block
	// (scan = 1..ExtraScans), exposing address-dependent internal paths.
	ExtraScanTargets func(block, scan int) A

	// Skip excludes blocks from the scan (the exclusion list and
	// reserved/private space of §3.4); nil scans everything. The cluster
	// coordinator also uses it to carve the permuted destination universe
	// into per-worker shards.
	Skip func(block int) bool

	// StopSet substitutes the engine's Doubletree stop set; nil uses the
	// default in-process sharded implementation (fingerprint-identical to
	// the engine before this knob existed). The cluster layer injects its
	// globally shared, suppress-only set here.
	StopSet StopSet[A]

	// TraceSink, when non-nil, observes every discovery event (hop
	// appends and destination arrivals) as the engine records it into its
	// trace store — a tee, never a replacement; results and checkpoints
	// are unaffected.
	TraceSink TraceSink[A]

	// CollectRoutes keeps full per-destination hop lists in the result
	// (needed by route-level analyses; costs memory on huge universes).
	CollectRoutes bool

	// Observer, if non-nil, sees every probe issuance.
	Observer func(dst A, ttl uint8, at time.Duration)

	// Seed drives the destination permutation and the random choices of
	// discovery-optimized mode.
	Seed int64

	// DrainWait is how long to keep receiving after the last probe of a
	// phase (covers in-flight RTTs). Default 2s.
	DrainWait time.Duration

	// MinRoundTime is the minimum duration of a probing round (§3.2: "the
	// sending thread ensures that each round lasts at least one second").
	// Default 1s; the maximum-rate measurement (Table 5) sets it to a
	// negligible value because at measurement scale rounds are far longer
	// than a second anyway.
	MinRoundTime time.Duration

	// LockMode selects per-DCB mutual exclusion: LockMutex (the paper's
	// portable choice, default) or LockSpin (the §3.4-suggested atomic
	// test-and-set spinlock, halving the per-destination lock footprint).
	LockMode LockMode

	// CheckpointSink, when non-nil, arms crash-safe checkpointing: the
	// engine periodically serializes its complete probing state (see
	// checkpoint.go) and hands the snapshot bytes to the sink. The sink
	// is called from a sender goroutine — it should be fast (write to a
	// temp file and rename) and must not retain the slice. Sink errors
	// are counted in Result.CheckpointErrors, never fatal. A final
	// snapshot is always written when the scan finishes or is cancelled.
	CheckpointSink func(snapshot []byte) error

	// CheckpointEvery triggers a checkpoint every N probes sent (scan
	// total, all senders). 0 disables the probe-count trigger.
	CheckpointEvery int

	// CheckpointInterval triggers a checkpoint when this much scan time
	// has passed since the last one. 0 disables the time trigger. With
	// both triggers zero and a sink set, only the final snapshot is
	// written.
	CheckpointInterval time.Duration

	// SendRetries bounds the retransmissions of a probe whose
	// WritePacket failed with a transient (Temporary() == true) error,
	// with exponential backoff between attempts. 0 means the default of
	// 3; negative disables retries. Exhausted retries and permanent
	// errors are counted in Result.SendErrors and the probe is dropped —
	// the scan continues (a traceroute probe is one datapoint, not a
	// transaction).
	SendRetries int

	// CancelGrace is how long a cancelled scan keeps receiving after the
	// senders stop, so in-flight replies still land in the partial
	// result. Default DrainWait.
	CancelGrace time.Duration

	// AbortOnSendErrors aborts the scan once this many probes have been
	// dropped for failed writes in the current run (SendRetries
	// exhausted or a permanent error each time). A dead transport then
	// surfaces as ErrTransportDead from RunContext — with the partial
	// result and a final checkpoint, so a supervisor can migrate the
	// work — instead of the scan "completing" with nothing but send
	// errors. 0 (the default) disables the abort: dropped probes stay
	// individual lost datapoints, exactly the prior behavior.
	AbortOnSendErrors int
}

// Config is the IPv4 scan configuration.
type Config = ConfigOf[uint32]

// DefaultConfig returns the paper's recommended IPv4 configuration
// (FlashRoute-16: split TTL 16, gap limit 5, redundancy elimination on,
// preprobing on, proximity span 5, 100 Kpps).
func DefaultConfig() Config {
	return Config{
		SplitTTL:      16,
		GapLimit:      5,
		MaxTTL:        probe.MaxTTL,
		PPS:           100_000,
		Preprobe:      PreprobeRandom,
		ProximitySpan: 5,
		DrainWait:     2 * time.Second,
		MinRoundTime:  time.Second,
	}
}

// foldsPreprobe reports whether preprobing can replace the first round of
// the main scan (§3.3.5): the preprobe targets are the main targets and
// both phases start at MaxTTL.
func (c *ConfigOf[A]) foldsPreprobe() bool {
	return c.Preprobe == PreprobeRandom && c.SplitTTL == c.MaxTTL
}
