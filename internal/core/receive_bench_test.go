package core

import (
	"testing"

	"github.com/flashroute/flashroute/internal/probe"
)

// buildTTLExceeded builds one valid TTL-exceeded response: hop answering a
// probe from src to dst sent with the given initial TTL.
func buildTTLExceeded(src, dst, hop uint32, initTTL uint8) []byte {
	var pbuf [128]byte
	n := probe.BuildFlashProbe(pbuf[:], src, dst, initTTL, false, 0, 0, probe.TracerouteDstPort)
	var quoted probe.IPv4
	if err := quoted.Unmarshal(pbuf[:n]); err != nil {
		panic(err)
	}
	quoted.TTL = 1
	tp := make([]byte, 8)
	copy(tp, pbuf[probe.IPv4HeaderLen:probe.IPv4HeaderLen+8])
	pkt := make([]byte, probe.IPv4HeaderLen+probe.ICMPErrorLen)
	outer := probe.IPv4{
		TotalLength: uint16(len(pkt)),
		TTL:         64,
		Protocol:    probe.ProtoICMP,
		Src:         hop,
		Dst:         src,
	}
	outer.Marshal(pkt)
	probe.MarshalICMPError(pkt[probe.IPv4HeaderLen:], probe.ICMPTypeTimeExceeded, 0, &quoted, tp)
	return pkt
}

// benchResponseSet builds a cycle of distinct valid responses — every
// block of the env answered at TTLs 1..8 — plus the scanner to feed them
// to.
func benchResponseSet(t testing.TB, blocks int) (*Scanner, [][]byte) {
	t.Helper()
	e := newEnv(t, blocks, 1)
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([][]byte, 0, blocks*8)
	for block := 0; block < blocks; block++ {
		dst := e.cfg.Targets(block)
		for ttl := uint8(1); ttl <= 8; ttl++ {
			hop := 0xC8000000 | uint32(block)<<8 | uint32(ttl)
			pkts = append(pkts, buildTTLExceeded(e.cfg.Source, dst, hop, ttl))
		}
	}
	return sc, pkts
}

// BenchmarkHandleResponse measures the full single-receiver response path:
// parse, duplicate guard, stop-set lookup and insert, strategy update, and
// store write. The per-DCB duplicate guard is reset each pass so every
// iteration takes the full path rather than the short dup exit. Steady
// state must not allocate — maps are pre-sized and warmed by the first
// pass, parsing stays on the stack.
func BenchmarkHandleResponse(b *testing.B) {
	sc, pkts := benchResponseSet(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pkts)
		if k == 0 {
			for j := range sc.dcbs {
				sc.dcbs[j].respSeen = 0
			}
		}
		sc.handleResponse(pkts[k])
	}
}

// TestReceiverHandleResponseNoAllocs pins the zero-allocation steady
// state of the receive hot path: once the first pass has populated the
// route and interface maps, re-processing the whole response set (with
// the duplicate guard cleared) must not allocate at all.
func TestReceiverHandleResponseNoAllocs(t *testing.T) {
	sc, pkts := benchResponseSet(t, 64)
	// Warm: populate the store's maps and the stop set.
	for _, p := range pkts {
		sc.handleResponse(p)
	}
	avg := testing.AllocsPerRun(10, func() {
		for j := range sc.dcbs {
			sc.dcbs[j].respSeen = 0
		}
		for _, p := range pkts {
			sc.handleResponse(p)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state receive path allocates: %.1f allocs per %d responses", avg, len(pkts))
	}
}
