package core

import (
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

// ReplyKind classifies one decoded response packet.
type ReplyKind uint8

const (
	// ReplyUnparsed: not a response to this scan's probes (foreign
	// traffic, truncated packets, unquotable ICMP).
	ReplyUnparsed ReplyKind = iota
	// ReplyMismatch: the quoted source port does not match the checksum
	// of the quoted destination — in-flight destination modification
	// (§5.3).
	ReplyMismatch
	// ReplyTTLExceeded: a router on the path answered (hop discovery).
	ReplyTTLExceeded
	// ReplyUnreachable: the destination itself answered.
	ReplyUnreachable
	// ReplyOther: a well-formed quote of our probe carrying a response
	// type the strategy has no use for.
	ReplyOther
)

// Reply is the family-independent decoding of one response packet: the
// engine's receiver consumes these and never looks at wire bytes.
type Reply[A comparable] struct {
	Kind     ReplyKind
	Dst      A     // quoted probe destination
	Hop      A     // responding interface
	InitTTL  uint8 // probe's initial TTL, recovered from the quote (§3.1)
	Dist     uint8 // destination hop distance (unreachable replies only)
	Preprobe bool  // the probe was a preprobe
	RTT      time.Duration
}

// Family supplies the per-address-family operations the generic engine
// needs: probe construction, response decoding, the probing bounds, and
// address rendering/ordering for the result store. Everything else —
// rounds, DCBs, sharded senders, pacing, retries, dedup, the stop set —
// is family-independent and lives in the ScannerOf engine.
type Family[A comparable] interface {
	// MaxTTL bounds probing and validates Config.MaxTTL.
	MaxTTL() uint8
	// PermSalt domain-separates this family's destination permutation
	// from the other consumers of the scan seed.
	PermSalt() uint64
	// BuildProbe serializes one probe into buf and returns its length.
	// buf is at least maxProbeBuf bytes.
	BuildProbe(buf []byte, src, dst A, ttl uint8, preprobe bool,
		elapsed time.Duration, srcPortOffset uint16) int
	// ParseReply decodes one received packet. scanOffset is the source
	// port offset of the current scan pass (for the §5.3 checksum
	// verification); now is the scan-relative receive time used to
	// derive the RTT from the probe's embedded timestamp.
	ParseReply(pkt []byte, scanOffset uint16, now time.Duration) Reply[A]
	// FormatAddr and AddrLess supply the result store's address
	// rendering and deterministic output order.
	FormatAddr(a A) string
	AddrLess(a, b A) bool
	// HashAddr hashes an address for the sharded stop set (shard pick of
	// the receive pipeline). It needs good avalanche over all address
	// bits, not cryptographic strength.
	HashAddr(a A) uint64
	// AddrSize, PutAddr and GetAddr are the address wire codec used by
	// the checkpoint snapshots: a fixed-width canonical encoding (4 bytes
	// big-endian for IPv4, the 16 raw bytes for IPv6). PutAddr writes
	// exactly AddrSize bytes into b; GetAddr reads them back.
	AddrSize() int
	PutAddr(b []byte, a A)
	GetAddr(b []byte) A
}

// maxProbeBuf is the per-shard probe buffer size, sized for the largest
// probe either family builds (IPv6 header + UDP + payload with margin).
const maxProbeBuf = 160

// IPv4Family returns the uint32/IPv4 family, for callers outside the
// package that drive the generic engine directly (the cluster
// coordinator's shard carving and merge ordering).
func IPv4Family() Family[uint32] { return ipv4Family{} }

// ipv4Family is the uint32/IPv4 instantiation of the engine: FlashRoute
// exactly as the paper describes it.
type ipv4Family struct{}

func (ipv4Family) MaxTTL() uint8    { return probe.MaxTTL }
func (ipv4Family) PermSalt() uint64 { return 0x5f3759df }

func (ipv4Family) BuildProbe(buf []byte, src, dst uint32, ttl uint8, preprobe bool,
	elapsed time.Duration, srcPortOffset uint16) int {
	return probe.BuildFlashProbe(buf, src, dst, ttl, preprobe, elapsed,
		srcPortOffset, probe.TracerouteDstPort)
}

func (ipv4Family) ParseReply(pkt []byte, scanOffset uint16, now time.Duration) Reply[uint32] {
	resp, err := probe.ParseResponse(pkt)
	if err != nil {
		// FlashRoute sends only UDP probes; TCP RSTs or other traffic are
		// not ours.
		return Reply[uint32]{Kind: ReplyUnparsed}
	}
	fi, err := probe.ParseFlashQuote(&resp.ICMP)
	if err != nil {
		return Reply[uint32]{Kind: ReplyUnparsed}
	}
	if !fi.ChecksumMatches(scanOffset) {
		return Reply[uint32]{Kind: ReplyMismatch}
	}
	r := Reply[uint32]{
		Dst:      fi.Dst,
		Hop:      resp.Hop,
		InitTTL:  fi.InitTTL,
		Preprobe: fi.Preprobe,
		RTT:      fi.RTT(now),
	}
	switch {
	case resp.ICMP.IsTTLExceeded():
		r.Kind = ReplyTTLExceeded
	case resp.ICMP.IsUnreachable():
		r.Kind = ReplyUnreachable
		r.Dist = distanceFrom(fi)
	default:
		r.Kind = ReplyOther
	}
	return r
}

func (ipv4Family) FormatAddr(a uint32) string { return probe.FormatAddr(a) }
func (ipv4Family) AddrLess(a, b uint32) bool  { return a < b }

func (ipv4Family) HashAddr(a uint32) uint64 {
	// splitmix64 finalizer over the 32-bit address.
	z := uint64(a) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func (ipv4Family) AddrSize() int { return 4 }

func (ipv4Family) PutAddr(b []byte, a uint32) {
	b[0], b[1], b[2], b[3] = byte(a>>24), byte(a>>16), byte(a>>8), byte(a)
}

func (ipv4Family) GetAddr(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// distanceFrom recovers the destination's hop distance from a
// destination-unreachable response: initial TTL minus residual plus one.
func distanceFrom(fi probe.FlashInfo) uint8 {
	d := int(fi.InitTTL) - int(fi.ResidualTTL) + 1
	if d < 1 {
		return 1
	}
	if d > int(probe.MaxTTL) {
		return probe.MaxTTL
	}
	return uint8(d)
}
