package core

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// testEnv bundles a topology, clock and scanner config for a
// small-universe scan.
type testEnv struct {
	topo  *netsim.Topology
	clock simclock.Waiter
	net   *netsim.Net
	cfg   Config
}

func newEnv(t testing.TB, blocks int, seed int64) *testEnv {
	t.Helper()
	return newEnvOn(t, blocks, seed, simclock.NewVirtual(time.Unix(0, 0)))
}

// newEnvOnRealClock builds the same environment on the wall clock.
func newEnvOnRealClock(t testing.TB, blocks int, seed int64) *testEnv {
	t.Helper()
	return newEnvOn(t, blocks, seed, simclock.NewReal())
}

func newEnvOn(t testing.TB, blocks int, seed int64, clock simclock.Waiter) *testEnv {
	t.Helper()
	u := netsim.NewSyntheticUniverse(blocks)
	topo := netsim.NewTopology(u, netsim.DefaultParams(seed))
	n := netsim.New(topo, clock)

	cfg := DefaultConfig()
	cfg.Blocks = blocks
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.PPS = 50_000
	cfg.Targets = func(block int) uint32 {
		return u.BlockAddr(block) | uint32(1+hashOctet(seed, block)%254)
	}
	cfg.BlockOf = func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
	return &testEnv{topo: topo, clock: clock, net: n, cfg: cfg}
}

func hashOctet(seed int64, block int) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(block)*0xd6e8feb86659fd93
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func (e *testEnv) run(t testing.TB) *Result {
	t.Helper()
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanCompletes(t *testing.T) {
	e := newEnv(t, 512, 1)
	res := e.run(t)
	if res.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if res.Store.Interfaces().Len() == 0 {
		t.Fatal("no interfaces discovered")
	}
	if res.ScanTime <= 0 {
		t.Fatal("scan time not measured")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds counted")
	}
	t.Logf("blocks=512 probes=%d interfaces=%d rounds=%d time=%v measured=%d predicted=%d",
		res.ProbesSent, res.Store.Interfaces().Len(), res.Rounds, res.ScanTime,
		res.DistancesMeasured, res.DistancesPredicted)
}

// TestExhaustiveProbeCount: the Yarrp-simulation mode must send exactly
// MaxTTL probes per block — one per hop, no early termination (§4.2.1).
func TestExhaustiveProbeCount(t *testing.T) {
	const blocks = 256
	e := newEnv(t, blocks, 2)
	e.cfg.Exhaustive = true
	res := e.run(t)
	want := uint64(blocks) * uint64(e.cfg.MaxTTL)
	if res.ProbesSent != want {
		t.Fatalf("exhaustive probes=%d want %d", res.ProbesSent, want)
	}
	if res.PreprobeProbes != 0 {
		t.Fatal("exhaustive mode must not preprobe")
	}
}

// TestRedundancyElimination reproduces the direction of Table 1: turning
// the stop set off must cost substantially more probes and discover at
// least as many (marginally more) interfaces.
func TestRedundancyElimination(t *testing.T) {
	const blocks = 2048
	on := newEnv(t, blocks, 3)
	resOn := on.run(t)

	off := newEnv(t, blocks, 3)
	off.cfg.NoRedundancyElimination = true
	resOff := off.run(t)

	if resOff.ProbesSent < resOn.ProbesSent*3/2 {
		t.Fatalf("redundancy elimination saved too little: on=%d off=%d",
			resOn.ProbesSent, resOff.ProbesSent)
	}
	ion, ioff := resOn.Store.Interfaces().Len(), resOff.Store.Interfaces().Len()
	if ion > ioff {
		t.Fatalf("stop set should not discover more: on=%d off=%d", ion, ioff)
	}
	// The paper reports a very small discovery cost (0.3–2.5%); allow 8%
	// at this tiny scale.
	if float64(ion) < float64(ioff)*0.92 {
		t.Fatalf("elimination lost too many interfaces: on=%d off=%d", ion, ioff)
	}
	t.Logf("on: %d probes/%d ifaces; off: %d probes/%d ifaces",
		resOn.ProbesSent, ion, resOff.ProbesSent, ioff)
}

// TestInterfaceCoverageVsExhaustive: FlashRoute must discover nearly all
// the interfaces exhaustive probing finds (paper: within ~2.6%).
func TestInterfaceCoverageVsExhaustive(t *testing.T) {
	const blocks = 2048
	ex := newEnv(t, blocks, 4)
	ex.cfg.Exhaustive = true
	resEx := ex.run(t)

	fr := newEnv(t, blocks, 4)
	resFr := fr.run(t)

	ie, if_ := resEx.Store.Interfaces().Len(), resFr.Store.Interfaces().Len()
	if float64(if_) < float64(ie)*0.90 {
		t.Fatalf("FlashRoute found %d of %d exhaustive interfaces", if_, ie)
	}
	if resFr.ProbesSent*2 > resEx.ProbesSent {
		t.Fatalf("FlashRoute should use <50%% of exhaustive probes: %d vs %d",
			resFr.ProbesSent, resEx.ProbesSent)
	}
	t.Logf("exhaustive: %d probes/%d ifaces; flashroute-16: %d probes/%d ifaces (%.1f%% probes)",
		resEx.ProbesSent, ie, resFr.ProbesSent, if_,
		100*float64(resFr.ProbesSent)/float64(resEx.ProbesSent))
}

// TestPreprobeMeasuresDistances checks §3.3: a few percent of random
// representatives yield a measured distance, predictions extend coverage,
// and measured distances match the topology's ground truth.
func TestPreprobeMeasuresDistances(t *testing.T) {
	const blocks = 4096
	e := newEnv(t, blocks, 5)
	res := e.run(t)
	if res.DistancesMeasured == 0 {
		t.Fatal("no distances measured")
	}
	frac := float64(res.DistancesMeasured) / blocks
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("measured fraction %.3f outside [0.01,0.15] (paper: ~0.04)", frac)
	}
	if res.DistancesPredicted == 0 {
		t.Fatal("no distances predicted")
	}
	// Verify measured values against ground truth where routes are static.
	exact, total := 0, 0
	for b := 0; b < blocks; b++ {
		m := res.Measured[b]
		if m == 0 {
			continue
		}
		dst := e.cfg.Targets(b)
		d := e.topo.DistanceNow(dst, 0)
		if d == 0 {
			continue
		}
		total++
		if m == d || m == d+1 || m == d-1 {
			exact++
		}
	}
	if total == 0 {
		t.Fatal("no measured block had ground truth")
	}
	if float64(exact)/float64(total) < 0.85 {
		t.Fatalf("only %d/%d measured distances within 1 hop of truth", exact, total)
	}
}

// TestFoldedPreprobeSavesProbes reproduces the §3.3.5/Table 2 effect: with
// split TTL 32, random preprobing replaces the first round and must not
// cost more probes than no preprobing.
func TestFoldedPreprobeSavesProbes(t *testing.T) {
	const blocks = 2048
	with := newEnv(t, blocks, 6)
	with.cfg.SplitTTL = 32
	with.cfg.Preprobe = PreprobeRandom
	resWith := with.run(t)

	without := newEnv(t, blocks, 6)
	without.cfg.SplitTTL = 32
	without.cfg.Preprobe = PreprobeOff
	resWithout := without.run(t)

	if resWith.ProbesSent >= resWithout.ProbesSent {
		t.Fatalf("folded preprobing must save probes: with=%d without=%d",
			resWith.ProbesSent, resWithout.ProbesSent)
	}
	t.Logf("split-32: with preprobe %d, without %d (%.1f%% saved)",
		resWith.ProbesSent, resWithout.ProbesSent,
		100*(1-float64(resWith.ProbesSent)/float64(resWithout.ProbesSent)))
}

// TestSplit16BeatsSplit32 reproduces the headline of Table 2/3: default
// split TTL 16 uses substantially fewer probes than 32.
func TestSplit16BeatsSplit32(t *testing.T) {
	const blocks = 2048
	s16 := newEnv(t, blocks, 7)
	res16 := s16.run(t)

	s32 := newEnv(t, blocks, 7)
	s32.cfg.SplitTTL = 32
	res32 := s32.run(t)

	if res16.ProbesSent >= res32.ProbesSent {
		t.Fatalf("split-16 should use fewer probes: 16=%d 32=%d",
			res16.ProbesSent, res32.ProbesSent)
	}
	t.Logf("split16=%d split32=%d probes (ratio %.2f)",
		res16.ProbesSent, res32.ProbesSent,
		float64(res32.ProbesSent)/float64(res16.ProbesSent))
}

// TestDiscoveryOptimizedMode reproduces §5.2: extra port-varied backward
// scans discover additional (load-balanced) interfaces at modest probe
// cost, thanks to the shared stop set.
func TestDiscoveryOptimizedMode(t *testing.T) {
	const blocks = 4096
	base := newEnv(t, blocks, 8)
	base.cfg.SplitTTL = 32
	resBase := base.run(t)

	disc := newEnv(t, blocks, 8)
	disc.cfg.SplitTTL = 32
	disc.cfg.ExtraScans = 3
	resDisc := disc.run(t)

	ib, id := resBase.Store.Interfaces().Len(), resDisc.Store.Interfaces().Len()
	if id <= ib {
		t.Fatalf("discovery mode found no extra interfaces: base=%d disc=%d", ib, id)
	}
	extraProbes := resDisc.ProbesSent - resBase.ProbesSent
	if extraProbes == 0 {
		t.Fatal("extra scans sent nothing")
	}
	// Extra scans must be much cheaper than the main scan (stop set
	// shared): paper's three extra scans cost ~2x the main scan's time in
	// total; at our scale just require they are not exorbitant.
	if extraProbes > resBase.ProbesSent*3 {
		t.Fatalf("extra scans too expensive: main=%d extra=%d", resBase.ProbesSent, extraProbes)
	}
	t.Logf("base: %d ifaces/%d probes; +3 scans: %d ifaces (+%d)/%d extra probes",
		ib, resBase.ProbesSent, id, id-ib, extraProbes)
}

// TestGapLimitSweep reproduces Figure 6's direction: larger gap limits
// cost probes and discover more interfaces, flattening around 5.
func TestGapLimitSweep(t *testing.T) {
	const blocks = 2048
	var lastProbes uint64
	var ifaces []int
	for _, gap := range []uint8{0, 2, 5} {
		e := newEnv(t, blocks, 9)
		e.cfg.GapLimit = gap
		res := e.run(t)
		if res.ProbesSent < lastProbes {
			t.Fatalf("gap %d sent fewer probes (%d) than smaller gap (%d)",
				gap, res.ProbesSent, lastProbes)
		}
		lastProbes = res.ProbesSent
		ifaces = append(ifaces, res.Store.Interfaces().Len())
	}
	if !(ifaces[0] <= ifaces[1] && ifaces[1] <= ifaces[2]) {
		t.Fatalf("interfaces not nondecreasing with gap: %v", ifaces)
	}
	if ifaces[2] == ifaces[0] {
		t.Fatal("forward probing discovered nothing beyond gap 0")
	}
	t.Logf("gap sweep interfaces: %v", ifaces)
}

func TestSkipExcludesBlocks(t *testing.T) {
	const blocks = 256
	e := newEnv(t, blocks, 10)
	e.cfg.Exhaustive = true
	e.cfg.Skip = func(b int) bool { return b%2 == 0 }
	res := e.run(t)
	want := uint64(blocks/2) * uint64(e.cfg.MaxTTL)
	if res.ProbesSent != want {
		t.Fatalf("probes=%d want %d (half the blocks excluded)", res.ProbesSent, want)
	}
}

func TestConfigValidation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	bad := []Config{
		{},
		{Blocks: 10},
		{Blocks: 10, Targets: func(int) uint32 { return 1 }},
		func() Config {
			c := DefaultConfig()
			c.Blocks = 10
			c.Targets = func(int) uint32 { return 1 }
			c.BlockOf = func(uint32) (int, bool) { return 0, true }
			c.SplitTTL = 40
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Blocks = 10
			c.Targets = func(int) uint32 { return 1 }
			c.BlockOf = func(uint32) (int, bool) { return 0, true }
			c.Preprobe = PreprobeHitlist // without PreprobeTargets
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := NewScanner(cfg, nil, clock); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestListBuildRemove(t *testing.T) {
	dcbs := make([]dcb, 5)
	l := buildList(dcbs, []uint32{3, 1, 4, 0, 2})
	if l.size != 5 {
		t.Fatalf("size=%d", l.size)
	}
	// Walk the ring: must visit all five in permuted order.
	var seen []uint32
	cur := l.head
	for i := 0; i < l.size; i++ {
		seen = append(seen, cur)
		cur = dcbs[cur].next
	}
	if cur != l.head {
		t.Fatal("not circular")
	}
	want := []uint32{3, 1, 4, 0, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order %v want %v", seen, want)
		}
	}
	l.remove(1)
	l.remove(3) // removing the head
	if l.size != 3 {
		t.Fatalf("size=%d", l.size)
	}
	cur = l.head
	for i := 0; i < l.size; i++ {
		if cur == 1 || cur == 3 {
			t.Fatal("removed element still linked")
		}
		cur = dcbs[cur].next
	}
	l.remove(4)
	l.remove(0)
	l.remove(2)
	if l.size != 0 || l.head != noHead {
		t.Fatal("list not empty after removing all")
	}
}

func TestBuildListSkipsRemoved(t *testing.T) {
	dcbs := make([]dcb, 4)
	dcbs[2].flags = dcbRemoved
	l := buildList(dcbs, []uint32{0, 1, 2, 3})
	if l.size != 3 {
		t.Fatalf("size=%d want 3", l.size)
	}
}

func TestPredictDistances(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blocks = 12
	cfg.ProximitySpan = 2
	s := &Scanner{cfg: cfg, measured: make([]uint8, 12)}
	s.measured[3] = 15
	s.measured[9] = 20
	res := &Result{Predicted: make([]uint8, 12)}
	s.predictDistances(res)
	if res.DistancesMeasured != 2 {
		t.Fatalf("measured=%d", res.DistancesMeasured)
	}
	// Blocks 1,2,4,5 predicted 15; 7,8,10,11 predicted 20; 0,6 out of span.
	wants := map[int]uint8{1: 15, 2: 15, 4: 15, 5: 15, 7: 20, 8: 20, 10: 20, 11: 20, 0: 0, 6: 0}
	for b, w := range wants {
		if res.Predicted[b] != w {
			t.Fatalf("predicted[%d]=%d want %d", b, res.Predicted[b], w)
		}
	}
	if res.DistancesPredicted != 8 {
		t.Fatalf("predicted count=%d want 8", res.DistancesPredicted)
	}
}

func BenchmarkScanSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newEnv(b, 1024, int64(i))
		res := e.run(b)
		b.ReportMetric(float64(res.ProbesSent), "probes")
	}
}
