package core

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
)

// Fault-window tests: the deterministic transport faults of
// simnet.Impairments.Faults, exercised end-to-end through the scanner's
// retry and loss-tolerance machinery. The windows are pure functions of
// scan time — no RNG stream — so runs repeat exactly.

// TestFaultWindowDeterminism: the same fault schedule twice ⇒ the same
// fingerprint, probe counts and fault statistics.
func TestFaultWindowDeterminism(t *testing.T) {
	// Probes go out in bursts: the preprobe sweep at t≈0 and one burst per
	// round (MinRoundTime apart, after the preprobe drain) — so the
	// write-error window sits on the second-round burst, and the stall and
	// flap windows sit on later rounds' reply tails.
	faults := []netsim.FaultWindow{
		{Start: 2000 * time.Millisecond, Duration: 20 * time.Millisecond, Kind: netsim.FaultWriteError},
		{Start: 3020 * time.Millisecond, Duration: 100 * time.Millisecond, Kind: netsim.FaultReadStall},
		{Start: 4020 * time.Millisecond, Duration: 60 * time.Millisecond, Kind: netsim.FaultFlap},
	}
	type snap struct {
		fp                          uint64
		probes, retries, errs       uint64
		wfaults, fdropped, fstalled uint64
	}
	run := func() snap {
		e := newEnv(t, 256, 6)
		e.topo.P.Impair.Faults = faults
		e.cfg.SendRetries = 8
		res := e.run(t)
		return snap{
			fp: fpOf(res), probes: res.ProbesSent, retries: res.SendRetries, errs: res.SendErrors,
			wfaults:  e.net.Stats.WriteFaults.Load(),
			fdropped: e.net.Stats.FaultDropped.Load(),
			fstalled: e.net.Stats.FaultStalled.Load(),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault schedule not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
	if a.wfaults == 0 && a.fdropped == 0 && a.fstalled == 0 {
		t.Fatal("fault windows never fired")
	}
}

// TestFaultWindowWriteErrorSurvived: a write-error window shorter than
// the retry backoff budget is ridden out entirely by retries — in the
// lockstep environment the discovered topology is bit-identical to a
// clean transport, with the window visible only in the retry counters.
func TestFaultWindowWriteErrorSurvived(t *testing.T) {
	const blocks, seed = 256, 4
	clean := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)

	e := newLockstepEnv(t, blocks, seed)
	e.topo.P.Impair.Faults = []netsim.FaultWindow{
		// On the second-round send burst (preprobe drain puts it at ~2 s).
		{Start: 2000 * time.Millisecond, Duration: 30 * time.Millisecond, Kind: netsim.FaultWriteError},
	}
	e.cfg.SendRetries = 10 // backoff budget ~260 ms, outlasts the window
	res := e.runReceivers(t, 1, 1)
	if fp, want := fpOf(res), fpOf(clean); fp != want {
		t.Errorf("write-error window changed the topology: fingerprint %#x, want %#x", fp, want)
	}
	if res.SendRetries == 0 {
		t.Error("window produced no retries")
	}
	if res.SendErrors != 0 {
		t.Errorf("survivable window still abandoned %d probes", res.SendErrors)
	}
	if e.net.Stats.WriteFaults.Load() == 0 {
		t.Error("WriteFaults not counted")
	}
}

// TestFaultWindowStall: a reader stall delays in-window replies to the
// window's end; the scan absorbs the burst and completes.
func TestFaultWindowStall(t *testing.T) {
	e := newEnv(t, 256, 6)
	e.topo.P.Impair.Faults = []netsim.FaultWindow{
		{Start: 60 * time.Millisecond, Duration: 150 * time.Millisecond, Kind: netsim.FaultReadStall},
	}
	res := e.run(t)
	if e.net.Stats.FaultStalled.Load() == 0 {
		t.Fatal("stall window never delayed a delivery")
	}
	if res.Store.Interfaces().Len() == 0 {
		t.Fatal("scan discovered nothing through a stall window")
	}
}

// TestFaultWindowFlap: a conn flap blackholes both directions — writes
// error and in-window deliveries vanish. The scan's loss tolerance must
// carry it to completion with discoveries intact.
func TestFaultWindowFlap(t *testing.T) {
	e := newEnv(t, 256, 6)
	e.topo.P.Impair.Faults = []netsim.FaultWindow{
		{Start: 2000 * time.Millisecond, Duration: 80 * time.Millisecond, Kind: netsim.FaultFlap},
	}
	e.cfg.SendRetries = 10
	res := e.run(t)
	if e.net.Stats.WriteFaults.Load() == 0 {
		t.Error("flap window never rejected a write")
	}
	if res.Store.Interfaces().Len() == 0 {
		t.Fatal("scan discovered nothing through a flap window")
	}
}

// TestFaultWindowZeroUnchanged: an empty fault schedule must leave the
// golden single-sender fingerprints untouched (the fast no-faults path).
func TestFaultWindowZeroUnchanged(t *testing.T) {
	e := newEnv(t, 1024, 1)
	e.topo.P.Impair.Faults = nil
	res := e.run(t)
	if fp := fpOf(res); fp != 0xe464436d2a0b477e {
		t.Fatalf("seed 1 fingerprint drifted with empty fault schedule: %#x", fp)
	}
}
