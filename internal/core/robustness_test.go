package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
)

// TestReceiverSurvivesGarbage: the receiving thread must treat arbitrary
// bytes as noise — count them, never panic, never corrupt state. (On a
// raw socket the receiver sees every ICMP packet on the host.)
func TestReceiverSurvivesGarbage(t *testing.T) {
	e := newEnv(t, 64, 1)
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(128)
		pkt := make([]byte, n)
		rng.Read(pkt)
		sc.handleResponse(pkt)
	}
	if sc.unparsed.Load() == 0 {
		t.Fatal("garbage not counted")
	}
}

// TestReceiverSurvivesHostileQuotes: syntactically valid ICMP responses
// with adversarial quoted fields (wrong ports, out-of-universe
// destinations, foreign protocols) must be rejected without panics or
// misattribution.
func TestReceiverSurvivesHostileQuotes(t *testing.T) {
	e := newEnv(t, 64, 2)
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}

	build := func(mut func(q *probe.IPv4, tp []byte)) []byte {
		var pbuf [128]byte
		dst := e.cfg.Targets(5)
		n := probe.BuildFlashProbe(pbuf[:], e.cfg.Source, dst, 10, false, 0, 0, probe.TracerouteDstPort)
		var quoted probe.IPv4
		if err := quoted.Unmarshal(pbuf[:n]); err != nil {
			t.Fatal(err)
		}
		quoted.TTL = 1
		tp := make([]byte, 8)
		copy(tp, pbuf[probe.IPv4HeaderLen:probe.IPv4HeaderLen+8])
		if mut != nil {
			mut(&quoted, tp)
		}
		pkt := make([]byte, probe.IPv4HeaderLen+probe.ICMPErrorLen)
		outer := probe.IPv4{
			TotalLength: uint16(len(pkt)),
			TTL:         64,
			Protocol:    probe.ProtoICMP,
			Src:         0xF0000009,
			Dst:         e.cfg.Source,
		}
		outer.Marshal(pkt)
		probe.MarshalICMPError(pkt[probe.IPv4HeaderLen:], probe.ICMPTypeTimeExceeded, 0, &quoted, tp)
		return pkt
	}

	// Destination rewritten to a foreign universe -> checksum mismatch.
	sc.handleResponse(build(func(q *probe.IPv4, tp []byte) { q.Dst = 0xDEADBEEF }))
	if sc.mismatched.Load() != 1 {
		t.Fatalf("foreign-dst not counted as mismatch: %d", sc.mismatched.Load())
	}
	// Source port zeroed -> checksum mismatch.
	sc.handleResponse(build(func(q *probe.IPv4, tp []byte) { tp[0], tp[1] = 0, 0 }))
	if sc.mismatched.Load() != 2 {
		t.Fatal("zeroed source port not counted")
	}
	// Quoted protocol TCP -> unparsable quote.
	before := sc.unparsed.Load()
	sc.handleResponse(build(func(q *probe.IPv4, tp []byte) { q.Protocol = probe.ProtoTCP }))
	if sc.unparsed.Load() != before+1 {
		t.Fatal("TCP quote not rejected")
	}
	// Valid response still works after all the hostility.
	sc.handleResponse(build(nil))
	if sc.store.Interfaces().Len() != 1 {
		t.Fatalf("valid response not processed: %d interfaces", sc.store.Interfaces().Len())
	}
}

// TestScanWithDroppedWrites: an unreliable transport (every write
// errors, permanently) must not wedge the scan — it completes with zero
// discoveries, every failed send surfaced in SendErrors and none of them
// miscounted as sent.
func TestScanWithDroppedWrites(t *testing.T) {
	e := newEnv(t, 64, 3)
	conn := &flakyConn{inner: e.net.NewConn()}
	sc, err := NewScanner(e.cfg, conn, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Interfaces().Len() != 0 {
		t.Fatal("discoveries without any delivered probe")
	}
	if res.ProbesSent != 0 {
		t.Fatalf("failed writes counted as sent: %d", res.ProbesSent)
	}
	if res.SendErrors == 0 {
		t.Fatal("failed writes not surfaced in SendErrors")
	}
	if res.SendRetries != 0 {
		t.Fatalf("permanent errors must not be retried: %d retries", res.SendRetries)
	}
}

// TestScanWithTransientWriteErrors: writes that fail with a Temporary()
// error are retried with backoff and succeed on the next attempt — the
// scan discovers exactly what a clean transport does, every retry is
// surfaced in SendRetries, and nothing lands in SendErrors.
func TestScanWithTransientWriteErrors(t *testing.T) {
	clean := newLockstepEnv(t, 256, 4).runReceivers(t, 1, 1)

	e := newLockstepEnv(t, 256, 4)
	conn := &transientConn{inner: e.net.NewConn()}
	sc, err := NewScanner(e.cfg, conn, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fp, want := fpOf(res), fpOf(clean); fp != want {
		t.Errorf("transient write errors changed the topology: fingerprint %#x, want %#x", fp, want)
	}
	if res.SendRetries == 0 {
		t.Error("transient failures not retried")
	}
	if res.SendErrors != 0 {
		t.Errorf("recovered sends wrongly surfaced as errors: %d", res.SendErrors)
	}
	if res.ProbesSent != clean.ProbesSent {
		t.Errorf("probe counts diverge: %d with retries, %d clean", res.ProbesSent, clean.ProbesSent)
	}
}

// transientConn fails every 50th write attempt with a Temporary() error;
// the immediate retry (the next attempt) goes through. Single sender, so
// no synchronization needed on the counter.
type transientConn struct {
	inner    PacketConn
	attempts int
}

func (c *transientConn) WritePacket(p []byte) error {
	c.attempts++
	if c.attempts%50 == 0 {
		return errTransient
	}
	return c.inner.WritePacket(p)
}
func (c *transientConn) ReadPacket(buf []byte) (int, error) {
	return c.inner.ReadPacket(buf)
}
func (c *transientConn) Close() error { return c.inner.Close() }

var errTransient = &transientErr{}

type transientErr struct{}

func (*transientErr) Error() string   { return "transient write failure" }
func (*transientErr) Temporary() bool { return true }

type flakyConn struct {
	inner PacketConn
}

func (f *flakyConn) WritePacket([]byte) error { return errDropped }
func (f *flakyConn) ReadPacket(buf []byte) (int, error) {
	return f.inner.ReadPacket(buf)
}
func (f *flakyConn) Close() error { return f.inner.Close() }

var errDropped = &droppedErr{}

type droppedErr struct{}

func (*droppedErr) Error() string { return "dropped" }

// TestVirtualRealClockAgreement (DESIGN.md ablation 2): a small scan on
// the real clock must report the same probe counts and a scan time within
// pacing slop of its virtual-clock twin.
func TestVirtualRealClockAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock scan takes seconds")
	}
	virt := newEnv(t, 96, 9)
	virt.cfg.PPS = 2000
	virt.cfg.DrainWait = 300 * time.Millisecond
	vres := virt.run(t)

	realEnv := newEnvOnRealClock(t, 96, 9)
	realEnv.cfg.PPS = 2000
	realEnv.cfg.DrainWait = 300 * time.Millisecond
	rres := realEnv.run(t)

	if diffPct(vres.ProbesSent, rres.ProbesSent) > 15 {
		t.Fatalf("probe counts diverge: virtual=%d real=%d", vres.ProbesSent, rres.ProbesSent)
	}
	ratio := float64(rres.ScanTime) / float64(vres.ScanTime)
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("scan times diverge: virtual=%v real=%v", vres.ScanTime, rres.ScanTime)
	}
	t.Logf("virtual: %d probes/%v; real: %d probes/%v",
		vres.ProbesSent, vres.ScanTime, rres.ProbesSent, rres.ScanTime)
}
