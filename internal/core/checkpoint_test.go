package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/snapshot"
)

// killAndSnapshot runs e's scan with checkpointing armed to fire after
// `every` probes, cancels the scan the moment the first snapshot lands,
// and returns that snapshot together with the partial result. The sink
// keeps only the first snapshot: the kill point is the first checkpoint,
// and the final snapshot the cancelled run writes on its way out is
// deliberately ignored (TestCancelResumeEquivalence covers that one).
func killAndSnapshot(t *testing.T, e *testEnv, senders, receivers, every int) ([]byte, *Result) {
	t.Helper()
	e.cfg.Senders = senders
	e.cfg.Receivers = receivers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var snap []byte
	e.cfg.CheckpointEvery = every
	e.cfg.CheckpointSink = func(b []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if snap == nil {
			snap = append([]byte(nil), b...)
			cancel()
		}
		return nil
	}
	e.cfg.CancelGrace = 100 * time.Millisecond
	conn := e.net.NewConn()
	if receivers > 1 {
		e.cfg.NewReader = func() PacketReader { return conn.NewReader() }
	}
	sc, err := NewScanner(e.cfg, conn, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if snap == nil {
		t.Fatalf("no checkpoint captured (every=%d, %d probes sent)", every, res.ProbesSent)
	}
	if !res.Interrupted {
		t.Fatalf("killed scan not marked Interrupted (every=%d)", every)
	}
	return snap, res
}

// resumeFrom resumes a snapshot in the given (fresh) environment and runs
// the scan to completion.
func resumeFrom(t *testing.T, e *testEnv, senders, receivers int, snap []byte) *Result {
	t.Helper()
	e.cfg.Senders = senders
	e.cfg.Receivers = receivers
	conn := e.net.NewConn()
	if receivers > 1 {
		e.cfg.NewReader = func() PacketReader { return conn.NewReader() }
	}
	sc, err := ResumeScanner(e.cfg, conn, e.clock, snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResumeEquivalenceGrid is the crash-safety property: kill a scan at
// an arbitrary probe (varied pseudo-randomly per grid point, anywhere in
// the first three quarters of the run — preprobe snapshots included),
// resume the snapshot in a fresh environment, and the union of the two
// runs must discover exactly the interfaces and reach exactly the
// destinations the uninterrupted scan does. The lockstep environment
// makes the discovered topology a pure function of the probe set, so the
// equality is exact across every Senders × Receivers combination.
func TestResumeEquivalenceGrid(t *testing.T) {
	const blocks = 512
	for _, seed := range []int64{1, 7, 21} {
		for _, senders := range []int{1, 4} {
			for _, receivers := range []int{1, 4} {
				baseline := newLockstepEnv(t, blocks, seed).runReceivers(t, senders, receivers)
				baseFP := fpOf(baseline)
				if baseline.Store.Interfaces().Len() == 0 {
					t.Fatalf("seed %d: degenerate baseline", seed)
				}
				every := 1 + int(hashOctet(seed, senders*8+receivers)%(baseline.ProbesSent*3/4))
				snap, part := killAndSnapshot(t, newLockstepEnv(t, blocks, seed), senders, receivers, every)
				resumed := resumeFrom(t, newLockstepEnv(t, blocks, seed), senders, receivers, snap)
				if fp := fpOf(resumed); fp != baseFP {
					t.Errorf("seed=%d senders=%d receivers=%d killed@%d: resumed fingerprint %#x, want %#x (interfaces %d vs %d, reached %d vs %d)",
						seed, senders, receivers, every, fp, baseFP,
						resumed.Store.Interfaces().Len(), baseline.Store.Interfaces().Len(),
						len(reachedSet(resumed)), len(reachedSet(baseline)))
				}
				if resumed.ProbesSent < part.ProbesSent {
					t.Errorf("seed=%d senders=%d receivers=%d: resumed total %d probes < interrupted run's %d",
						seed, senders, receivers, resumed.ProbesSent, part.ProbesSent)
				}
			}
		}
	}
}

// TestCancelResumeEquivalence: cancelling mid-scan must yield a valid
// partial Result (Interrupted set, discoveries intact) plus a final
// checkpoint, and resuming that final checkpoint must complete the scan
// to the uninterrupted topology.
func TestCancelResumeEquivalence(t *testing.T) {
	const blocks, seed = 512, 7
	baseline := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)
	baseFP := fpOf(baseline)

	e := newLockstepEnv(t, blocks, seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopAt := baseline.ProbesSent / 2
	var issued atomic.Uint64
	e.cfg.Observer = func(dst uint32, ttl uint8, at time.Duration) {
		if issued.Add(1) == stopAt {
			cancel()
		}
	}
	var mu sync.Mutex
	var final []byte
	e.cfg.CheckpointSink = func(b []byte) error {
		mu.Lock()
		final = append([]byte(nil), b...)
		mu.Unlock()
		return nil
	}
	e.cfg.CancelGrace = 200 * time.Millisecond
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled scan not marked Interrupted")
	}
	if res.ProbesSent >= baseline.ProbesSent {
		t.Errorf("cancelled scan sent %d probes, uninterrupted needs only %d", res.ProbesSent, baseline.ProbesSent)
	}
	if res.Store.Interfaces().Len() == 0 {
		t.Fatal("partial result lost its discoveries")
	}
	mu.Lock()
	snap := final
	mu.Unlock()
	if snap == nil {
		t.Fatal("cancelled scan wrote no final checkpoint")
	}

	resumed := resumeFrom(t, newLockstepEnv(t, blocks, seed), 1, 1, snap)
	if fp := fpOf(resumed); fp != baseFP {
		t.Errorf("resume after cancel: fingerprint %#x, want %#x (interfaces %d vs %d, reached %d vs %d)",
			fp, baseFP,
			resumed.Store.Interfaces().Len(), baseline.Store.Interfaces().Len(),
			len(reachedSet(resumed)), len(reachedSet(baseline)))
	}
}

// TestResumePreprobePhase pins phase-0 resume: a checkpoint taken during
// preprobing (first trigger well below one probe per block) restores the
// partial measured[] array, re-probes only what is unmeasured, and the
// scan still converges to the uninterrupted topology.
func TestResumePreprobePhase(t *testing.T) {
	const blocks, seed = 512, 3
	baseline := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)
	snap, part := killAndSnapshot(t, newLockstepEnv(t, blocks, seed), 1, 1, 100)
	if part.ProbesSent >= uint64(blocks) {
		t.Fatalf("kill landed after the preprobe phase: %d probes for %d blocks", part.ProbesSent, blocks)
	}
	resumed := resumeFrom(t, newLockstepEnv(t, blocks, seed), 1, 1, snap)
	if fp, want := fpOf(resumed), fpOf(baseline); fp != want {
		t.Errorf("preprobe-phase resume: fingerprint %#x, want %#x", fp, want)
	}
	if resumed.PreprobeProbes == 0 {
		t.Error("resumed run lost preprobe accounting")
	}
	if resumed.PreprobeProbes < part.ProbesSent {
		t.Errorf("resumed PreprobeProbes %d below the interrupted run's %d sent", resumed.PreprobeProbes, part.ProbesSent)
	}
}

// TestResumeRejectsCompleteSnapshot: the final snapshot of a scan that
// ran to completion must refuse to resume with ErrCheckpointComplete.
func TestResumeRejectsCompleteSnapshot(t *testing.T) {
	const blocks, seed = 64, 5
	e := newLockstepEnv(t, blocks, seed)
	var snap []byte
	e.cfg.CheckpointSink = func(b []byte) error {
		snap = append([]byte(nil), b...)
		return nil
	}
	res := e.runReceivers(t, 1, 1)
	if res.Interrupted {
		t.Fatal("uncancelled scan marked Interrupted")
	}
	if snap == nil {
		t.Fatal("completed scan wrote no final checkpoint")
	}
	e2 := newLockstepEnv(t, blocks, seed)
	sc, err := ResumeScanner(e2.cfg, e2.net.NewConn(), e2.clock, snap)
	if !errors.Is(err, ErrCheckpointComplete) {
		t.Fatalf("resume of a complete snapshot: scanner=%v err=%v, want ErrCheckpointComplete", sc, err)
	}
	if sc != nil {
		t.Fatal("rejected resume still returned a scanner")
	}
}

// TestResumeRejectsConfigMismatch: a snapshot must only resume under the
// configuration that produced it — any drift in the scan geometry is a
// descriptive refusal, never a silent partial resume.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	const blocks, seed = 64, 5
	snap, _ := killAndSnapshot(t, newLockstepEnv(t, blocks, seed), 1, 1, 40)

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"seed", func(c *Config) { c.Seed++ }, "Seed"},
		{"blocks", func(c *Config) { c.Blocks *= 2 }, "Blocks"},
		{"splitTTL", func(c *Config) { c.SplitTTL += 3 }, "SplitTTL"},
		{"gapLimit", func(c *Config) { c.GapLimit++ }, "GapLimit"},
		{"maxTTL", func(c *Config) { c.MaxTTL-- }, "MaxTTL"},
	}
	for _, tc := range cases {
		e := newLockstepEnv(t, blocks, seed)
		tc.mut(&e.cfg)
		sc, err := ResumeScanner(e.cfg, e.net.NewConn(), e.clock, snap)
		if err == nil || sc != nil {
			t.Fatalf("%s mismatch accepted: scanner=%v err=%v", tc.name, sc, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s mismatch: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestResumeRejectsCorruptSnapshot: truncation, bit flips and version
// skew must all fail loudly — a damaged checkpoint never resumes
// partially.
func TestResumeRejectsCorruptSnapshot(t *testing.T) {
	const blocks, seed = 64, 5
	snap, _ := killAndSnapshot(t, newLockstepEnv(t, blocks, seed), 1, 1, 40)

	try := func(name string, data []byte) error {
		t.Helper()
		e := newLockstepEnv(t, blocks, seed)
		sc, err := ResumeScanner(e.cfg, e.net.NewConn(), e.clock, data)
		if err == nil || sc != nil {
			t.Fatalf("%s: corrupt snapshot accepted (scanner=%v err=%v)", name, sc, err)
		}
		return err
	}

	try("empty", nil)
	try("under-header", snap[:6])
	try("truncated", snap[:len(snap)-3])
	if err := try("half", snap[:len(snap)/2]); !errors.Is(err, snapshot.ErrChecksum) && !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("half-truncated snapshot: %v, want checksum or truncation error", err)
	}

	flip := func(i int) []byte {
		b := append([]byte(nil), snap...)
		b[i] ^= 0x40
		return b
	}
	if err := try("magic", flip(0)); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Errorf("flipped magic: %v, want ErrBadMagic", err)
	}
	for _, i := range []int{6, len(snap) / 3, len(snap) / 2, len(snap) - 5} {
		if err := try("payload-bit", flip(i)); !errors.Is(err, snapshot.ErrChecksum) {
			t.Errorf("flipped byte %d: %v, want ErrChecksum", i, err)
		}
	}

	// A future format version (with its checksum recomputed so only the
	// version differs) must be refused as a version error.
	w := snapshot.NewWriter(checkpointVersion + 1)
	w.Raw(snap[6 : len(snap)-4])
	if err := try("version", w.Finish()); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("future version: %v, want ErrVersion", err)
	}
}

// TestCheckpointSinkFailure: a sink that cannot persist must not derail
// the scan — the run completes to the clean fingerprint with the failures
// counted in CheckpointErrors.
func TestCheckpointSinkFailure(t *testing.T) {
	const blocks, seed = 256, 9
	baseline := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)

	e := newLockstepEnv(t, blocks, seed)
	e.cfg.CheckpointEvery = 500
	e.cfg.CheckpointSink = func([]byte) error { return errors.New("disk full") }
	res := e.runReceivers(t, 1, 1)
	if fp, want := fpOf(res), fpOf(baseline); fp != want {
		t.Errorf("scan with failing sink: fingerprint %#x, want %#x", fp, want)
	}
	if res.CheckpointErrors == 0 {
		t.Error("sink failures not surfaced in CheckpointErrors")
	}
}

// TestCheckpointIntervalTrigger: with only the time-based cadence armed,
// snapshots must still flow.
func TestCheckpointIntervalTrigger(t *testing.T) {
	const blocks, seed = 256, 9
	e := newLockstepEnv(t, blocks, seed)
	var count atomic.Int64
	e.cfg.CheckpointInterval = 20 * time.Millisecond
	e.cfg.CheckpointSink = func([]byte) error { count.Add(1); return nil }
	res := e.runReceivers(t, 1, 1)
	// At least one interval snapshot plus the final one.
	if count.Load() < 2 {
		t.Fatalf("interval cadence produced %d snapshots over %v", count.Load(), res.ScanTime)
	}
}
