package core

import (
	"errors"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
)

// Batched data-path tests: Config.Batch > 1 must change how many packets
// move per transport call and nothing else. The equivalence argument: a
// batching sender flushes its arena before every blocking point, and on
// the virtual clock no time passes between blocking points, so the set
// of packets on the wire at each instant — and with it every response,
// every impairment draw, and every receiver decision — is identical to
// the unbatched engine's.

// TestBatchGoldenFingerprint pins Batch: 32 to the exact single-sender
// goldens the unbatched engine produces (the same values
// TestImpairmentZeroFingerprint pins): batching must be bit-identical,
// probe for probe.
func TestBatchGoldenFingerprint(t *testing.T) {
	single := []struct {
		seed   int64
		fp     uint64
		probes uint64
	}{
		{1, 0xe464436d2a0b477e, 10985},
		{7, 0xf723e4bc94b806ca, 10440},
		{21, 0x477f025e0ae0c8fe, 11313},
	}
	for _, tc := range single {
		e := newEnv(t, 1024, tc.seed)
		e.cfg.Batch = 32
		res := e.run(t)
		if fp := fpOf(res); fp != tc.fp {
			t.Errorf("seed %d batch=32: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
		if res.ProbesSent != tc.probes {
			t.Errorf("seed %d batch=32: probes %d, want %d", tc.seed, res.ProbesSent, tc.probes)
		}
	}
}

// TestBatchEquivalenceGrid: for every Senders × Receivers combination of
// {1,4} × {1,4} and three seeds, the batched scan must discover exactly
// what the unbatched sequential scan does. The lockstep environment
// makes the discovered topology a pure function of the probe set, so the
// equality is exact. Run under -race this also exercises concurrent
// WriteBatch callers and batched readers against the shared netsim conn.
func TestBatchEquivalenceGrid(t *testing.T) {
	const blocks = 512
	for _, seed := range []int64{1, 7, 21} {
		base := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)
		baseFP := fpOf(base)
		if base.Store.Interfaces().Len() == 0 {
			t.Fatalf("seed %d: degenerate baseline", seed)
		}
		for _, senders := range []int{1, 4} {
			for _, receivers := range []int{1, 4} {
				e := newLockstepEnv(t, blocks, seed)
				e.cfg.Batch = 32
				res := e.runReceivers(t, senders, receivers)
				if fp := fpOf(res); fp != baseFP {
					t.Errorf("seed=%d senders=%d receivers=%d batch=32: fingerprint %#x, want %#x (interfaces %d vs %d, reached %d vs %d)",
						seed, senders, receivers, fp, baseFP,
						res.Store.Interfaces().Len(), base.Store.Interfaces().Len(),
						len(reachedSet(res)), len(reachedSet(base)))
				}
				if senders == 1 && receivers == 1 && res.ProbesSent != base.ProbesSent {
					t.Errorf("seed=%d batch=32: probes %d, unbatched %d", seed, res.ProbesSent, base.ProbesSent)
				}
			}
		}
	}
}

// TestBatchImpairmentDeterminism: under a full impairment mix the batched
// single-sender scan must equal the unbatched one exactly — fingerprint,
// probe counts and every netsim RNG-driven counter. This is the strong
// form of the equivalence argument: batching must not reorder a single
// per-packet impairment draw.
func TestBatchImpairmentDeterminism(t *testing.T) {
	im := netsim.Impairments{
		LossProb:      0.08,
		GEGoodToBad:   0.01,
		GEBadToGood:   0.25,
		GEBadLoss:     0.5,
		DupProb:       0.03,
		ReorderProb:   0.05,
		ReorderWindow: 40 * time.Millisecond,
		ExtraJitter:   10 * time.Millisecond,
	}
	run := func(batch int) (*Result, *netsim.Stats) {
		e := newEnv(t, 1024, 7)
		e.topo.P.Impair = im
		e.cfg.PreprobeRetries = 1
		e.cfg.ForwardRetries = 1
		e.cfg.Batch = batch
		return e.run(t), &e.net.Stats
	}
	r1, s1 := run(0)
	r2, s2 := run(64)

	if fp1, fp2 := fpOf(r1), fpOf(r2); fp1 != fp2 {
		t.Errorf("impaired fingerprints differ: unbatched %#x, batch=64 %#x", fp1, fp2)
	}
	if r1.ProbesSent != r2.ProbesSent {
		t.Errorf("probe counts differ: %d vs %d", r1.ProbesSent, r2.ProbesSent)
	}
	if r1.RetransmittedProbes != r2.RetransmittedProbes {
		t.Errorf("retransmit counts differ: %d vs %d", r1.RetransmittedProbes, r2.RetransmittedProbes)
	}
	if r1.DuplicateResponses != r2.DuplicateResponses {
		t.Errorf("duplicate counts differ: %d vs %d", r1.DuplicateResponses, r2.DuplicateResponses)
	}
	for _, c := range []struct {
		name string
		a, b uint64
	}{
		{"ProbesSent", s1.ProbesSent.Load(), s2.ProbesSent.Load()},
		{"ProbesLost", s1.ProbesLost.Load(), s2.ProbesLost.Load()},
		{"RepliesLost", s1.RepliesLost.Load(), s2.RepliesLost.Load()},
		{"Duplicates", s1.Duplicates.Load(), s2.Duplicates.Load()},
		{"Reordered", s1.Reordered.Load(), s2.Reordered.Load()},
	} {
		if c.a != c.b {
			t.Errorf("netsim %s differs: unbatched %d, batched %d", c.name, c.a, c.b)
		}
		if c.a == 0 {
			t.Errorf("netsim %s is zero — impairment not exercised", c.name)
		}
	}
}

// TestBatchCancelMidBatch is the graceful-shutdown regression test: kill
// a batched scan at a checkpoint landing mid-arena (every not a multiple
// of the batch size), and (a) the partial result must account every
// probe the transport saw — nothing may die buffered-unwritten in an
// arena — and (b) resuming the snapshot must complete to the unbatched
// uninterrupted topology.
func TestBatchCancelMidBatch(t *testing.T) {
	const blocks, seed, batch = 512, 7, 32
	baseline := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)
	baseFP := fpOf(baseline)

	e := newLockstepEnv(t, blocks, seed)
	e.cfg.Batch = batch
	// 487 is prime: the trigger (and with it the cancel) lands mid-arena.
	snap, part := killAndSnapshot(t, e, 1, 1, 487)
	if !part.Interrupted {
		t.Fatal("killed scan not marked Interrupted")
	}
	if got, wrote := part.ProbesSent, e.net.Stats.ProbesSent.Load(); got != wrote {
		t.Errorf("interrupted result accounts %d probes, transport saw %d — a batch was dropped or double-counted", got, wrote)
	}

	e2 := newLockstepEnv(t, blocks, seed)
	e2.cfg.Batch = batch
	resumed := resumeFrom(t, e2, 1, 1, snap)
	if fp := fpOf(resumed); fp != baseFP {
		t.Errorf("resume of mid-batch kill: fingerprint %#x, want %#x (interfaces %d vs %d)",
			fp, baseFP, resumed.Store.Interfaces().Len(), baseline.Store.Interfaces().Len())
	}
}

// TestBatchFaultWindowMidBatch: a write-error window that opens while an
// arena is in flight must surface per-packet through WriteBatch's
// partial-return contract — the failed probe is retried through the
// backoff machinery and the probes behind it are re-submitted, never
// dropped. With a retry budget outlasting the window, the lockstep
// topology must come out bit-identical to a clean transport.
func TestBatchFaultWindowMidBatch(t *testing.T) {
	const blocks, seed = 256, 4
	clean := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)

	e := newLockstepEnv(t, blocks, seed)
	e.cfg.Batch = 32
	e.topo.P.Impair.Faults = []netsim.FaultWindow{
		// On the second-round send burst (preprobe drain puts it at ~2 s).
		{Start: 2000 * time.Millisecond, Duration: 30 * time.Millisecond, Kind: netsim.FaultWriteError},
	}
	e.cfg.SendRetries = 10 // backoff budget ~260 ms, outlasts the window
	res := e.runReceivers(t, 1, 1)
	if fp, want := fpOf(res), fpOf(clean); fp != want {
		t.Errorf("mid-batch write-error window changed the topology: fingerprint %#x, want %#x", fp, want)
	}
	if res.SendRetries == 0 {
		t.Error("window produced no retries")
	}
	if res.SendErrors != 0 {
		t.Errorf("survivable window still abandoned %d probes", res.SendErrors)
	}
	if e.net.Stats.WriteFaults.Load() == 0 {
		t.Error("WriteFaults not counted")
	}
}

// --- flush unit tests against a scripted BatchWriter ---

type tempError struct{}

func (tempError) Error() string   { return "transient send failure" }
func (tempError) Temporary() bool { return true }

// scriptedBW implements PacketConn + BatchWriter, failing exactly one
// packet (by global write index) with a configurable error. Packets that
// precede the failure in a batch ARE consumed — the sendmmsg shape.
type scriptedBW struct {
	wrote  [][]byte
	failAt int // global index of the packet to reject once; -1 = never
	failed bool
	err    error
}

func (b *scriptedBW) WritePacket(pkt []byte) error {
	n, err := b.WriteBatch([][]byte{pkt})
	if n == 1 {
		return nil
	}
	return err
}

func (b *scriptedBW) WriteBatch(pkts [][]byte) (int, error) {
	for i, p := range pkts {
		if !b.failed && len(b.wrote) == b.failAt {
			b.failed = true
			return i, b.err
		}
		b.wrote = append(b.wrote, append([]byte(nil), p...))
	}
	return len(pkts), nil
}

func (b *scriptedBW) ReadPacket(buf []byte) (int, error) { select {} }
func (b *scriptedBW) Close() error                       { return nil }

// newFlushHarness builds a minimal scanner + shard pair around a
// scripted writer, with n probes already buffered in the arena.
func newFlushHarness(t *testing.T, bw *scriptedBW, n int) (*Scanner, *senderShardOf[uint32]) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Blocks = n
	cfg.Source = 0x0a000001
	cfg.SendRetries = 3
	cfg.PPS = 0       // no pacing: flushes happen only when the test says so
	cfg.Batch = 2 * n // arena larger than n so buffering never auto-flushes
	cfg.Targets = func(block int) uint32 { return 0x08080000 | uint32(block) }
	cfg.BlockOf = func(addr uint32) (int, bool) { return int(addr & 0xffff), true }
	s, err := NewScannerOf[uint32](ipv4Family{}, cfg, bw, simclock.NewReal())
	if err != nil {
		t.Fatal(err)
	}
	s.start = s.clock.Now()
	s.order = make([]uint32, n)
	for i := range s.order {
		s.order[i] = uint32(i)
	}
	s.makeShards()
	sh := s.shards[0]
	if sh.bw == nil {
		t.Fatal("harness shard did not detect the BatchWriter")
	}
	for i := 0; i < n; i++ {
		sh.sendProbeBatched(cfg.Targets(i), 10, false, 0)
	}
	return s, sh
}

// TestFlushPartialBatchRetried: a transient mid-batch failure costs
// nothing — the failed packet is retried on the single-packet path and
// the packets behind it are re-submitted, so all n probes reach the
// wire and none is double-written.
func TestFlushPartialBatchRetried(t *testing.T) {
	bw := &scriptedBW{failAt: 3, err: tempError{}}
	s, sh := newFlushHarness(t, bw, 8)
	sh.flush()
	if len(bw.wrote) != 8 {
		t.Fatalf("transport saw %d packets, want all 8", len(bw.wrote))
	}
	if sh.probesSent != 8 {
		t.Errorf("probesSent = %d, want 8", sh.probesSent)
	}
	if got := s.sendRetries.Load(); got != 1 {
		t.Errorf("sendRetries = %d, want 1", got)
	}
	if got := s.sendErrors.Load(); got != 0 {
		t.Errorf("sendErrors = %d, want 0", got)
	}
	if sh.nbuf != 0 {
		t.Errorf("arena not emptied: nbuf = %d", sh.nbuf)
	}
}

// TestFlushPartialBatchPermanentError: a permanent mid-batch failure
// drops exactly the one failed probe; the rest of the arena is still
// written, and the drop is counted.
func TestFlushPartialBatchPermanentError(t *testing.T) {
	bw := &scriptedBW{failAt: 3, err: errors.New("permanent")}
	s, sh := newFlushHarness(t, bw, 8)
	sh.flush()
	if len(bw.wrote) != 7 {
		t.Fatalf("transport saw %d packets, want 7 (one dropped)", len(bw.wrote))
	}
	if sh.probesSent != 7 {
		t.Errorf("probesSent = %d, want 7", sh.probesSent)
	}
	if got := s.sendErrors.Load(); got != 1 {
		t.Errorf("sendErrors = %d, want 1", got)
	}
	if got := s.sendRetries.Load(); got != 0 {
		t.Errorf("sendRetries = %d, want 0 (permanent errors are not retried)", got)
	}
}

// TestBatchValidation: Batch is clamped to [0, maxBatch], and a Batch on
// a transport without batch capabilities silently falls back to the
// unbatched data path.
func TestBatchValidation(t *testing.T) {
	e := newEnv(t, 64, 1)
	e.cfg.Batch = -5
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	if sc.cfg.Batch != 0 {
		t.Errorf("negative Batch not clamped to 0: %d", sc.cfg.Batch)
	}
	e2 := newEnv(t, 64, 1)
	e2.cfg.Batch = maxBatch * 2
	sc2, err := NewScanner(e2.cfg, e2.net.NewConn(), e2.clock)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.cfg.Batch != maxBatch {
		t.Errorf("oversized Batch not clamped to %d: %d", maxBatch, sc2.cfg.Batch)
	}

	// A plain PacketConn without WriteBatch: shards stay unbatched and the
	// scan still completes (fingerprint pinned by the golden suite).
	e3 := newEnv(t, 64, 1)
	e3.cfg.Batch = 32
	conn := struct{ PacketConn }{e3.net.NewConn()}
	sc3, err := NewScanner(e3.cfg, conn, e3.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbesSent == 0 || res.Store.Interfaces().Len() == 0 {
		t.Fatal("fallback scan discovered nothing")
	}
}
