package core

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// newLockstepEnv builds an environment whose response behavior is a pure
// function of which probes are sent, independent of when they are sent:
// no per-interface ICMP rate limiting, no route dynamics, no RTT jitter.
// With redundancy elimination off as well (the stop set couples
// destinations through probe order), the discovered topology depends only
// on the probe set — which is identical for any sender count — so runs
// with different Senders values must agree exactly.
func newLockstepEnv(t testing.TB, blocks int, seed int64) *testEnv {
	t.Helper()
	u := netsim.NewSyntheticUniverse(blocks)
	p := netsim.DefaultParams(seed)
	p.ICMPRateLimitPPS = 0
	p.DynamicBlockProb = 0
	p.JitterRTT = 0
	topo := netsim.NewTopology(u, p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := netsim.New(topo, clock)

	cfg := DefaultConfig()
	cfg.Blocks = blocks
	cfg.Source = topo.Vantage()
	cfg.Seed = seed
	cfg.PPS = 50_000
	cfg.NoRedundancyElimination = true
	cfg.Targets = func(block int) uint32 {
		return u.BlockAddr(block) | uint32(1+hashOctet(seed, block)%254)
	}
	cfg.BlockOf = func(addr uint32) (int, bool) { return u.BlockIndex(addr) }
	return &testEnv{topo: topo, clock: clock, net: n, cfg: cfg}
}

// reachedSet extracts the destinations whose scans reached the target.
func reachedSet(res *Result) map[uint32]bool {
	m := make(map[uint32]bool)
	res.Store.ForEachRoute(func(rt *trace.Route) {
		if rt.Reached {
			m[rt.Dst] = true
		}
	})
	return m
}

// TestMultiSenderTopologyInvariant: Senders: 4 must discover exactly the
// interfaces and reach exactly the destinations Senders: 1 does. Probe
// order (and with it probe counts and round counts) may differ; the
// topology must not. Run with -race, this also exercises four senders and
// the receiver hammering the shared DCB array through the per-DCB locks.
func TestMultiSenderTopologyInvariant(t *testing.T) {
	const blocks, seed = 1024, 11

	run := func(senders int) *Result {
		e := newLockstepEnv(t, blocks, seed)
		e.cfg.Senders = senders
		return e.run(t)
	}
	r1 := run(1)
	r4 := run(4)

	if r1.ProbesSent == 0 || r4.ProbesSent == 0 {
		t.Fatalf("degenerate scans: probes %d vs %d", r1.ProbesSent, r4.ProbesSent)
	}

	i1, i4 := r1.Store.Interfaces(), r4.Store.Interfaces()
	if i1.Len() != i4.Len() {
		t.Errorf("interfaces: 1 sender found %d, 4 senders found %d", i1.Len(), i4.Len())
	}
	missing := 0
	for a := range i1.All() {
		if !i4.Has(a) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d interfaces found by 1 sender missing from the 4-sender run", missing)
	}

	re1, re4 := reachedSet(r1), reachedSet(r4)
	if len(re1) != len(re4) {
		t.Errorf("reached destinations: %d vs %d", len(re1), len(re4))
	}
	for dst := range re1 {
		if !re4[dst] {
			t.Errorf("destination %#x reached by 1 sender but not by 4", dst)
			break
		}
	}
	t.Logf("senders=1: probes=%d rounds=%d; senders=4: probes=%d rounds=%d; interfaces=%d reached=%d",
		r1.ProbesSent, r1.Rounds, r4.ProbesSent, r4.Rounds, i1.Len(), len(re1))
}

// TestMakeShardsPartition: the shards must cover the permuted order
// exactly — every entry in exactly one shard, in order — and split the
// aggregate PPS budget without starving any shard.
func TestMakeShardsPartition(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	for _, tc := range []struct {
		n, senders, pps int
	}{
		{1000, 1, 50_000},
		{1000, 3, 50_000},
		{1000, 7, 99_999},
		{7, 16, 100}, // more senders than work
		{1024, 8, 5}, // more senders than packets per second
		{5, 5, 0},    // unthrottled
		{1, 4, 1},
	} {
		s := &Scanner{cfg: Config{Senders: tc.senders, PPS: tc.pps}, clock: clock}
		s.order = make([]uint32, tc.n)
		for i := range s.order {
			s.order[i] = uint32(i) // identity stands in for the permutation
		}
		s.makeShards()

		if len(s.shards) < 1 || len(s.shards) > tc.senders {
			t.Fatalf("n=%d senders=%d: got %d shards", tc.n, tc.senders, len(s.shards))
		}
		var got []uint32
		for _, sh := range s.shards {
			got = append(got, sh.order...)
		}
		if len(got) != tc.n {
			t.Fatalf("n=%d senders=%d: shards cover %d entries", tc.n, tc.senders, len(got))
		}
		for i, b := range got {
			if b != uint32(i) {
				t.Fatalf("n=%d senders=%d: entry %d is %d (order not preserved)", tc.n, tc.senders, i, b)
			}
		}
		for i, sh := range s.shards {
			if tc.pps > 0 && sh.pacer.batch == 0 {
				t.Fatalf("n=%d senders=%d pps=%d: shard %d unthrottled", tc.n, tc.senders, tc.pps, i)
			}
			if tc.pps == 0 && sh.pacer.batch != 0 {
				t.Fatalf("n=%d senders=%d: shard %d throttled despite PPS=0", tc.n, tc.senders, i)
			}
		}
		if tc.pps >= tc.senders {
			// Aggregate rate: sum of per-shard rates within 1% of PPS.
			var sum float64
			for _, sh := range s.shards {
				if sh.pacer.batch > 0 {
					sum += float64(sh.pacer.batch) * float64(time.Second) / float64(sh.pacer.interval)
				}
			}
			if tc.pps > 0 && (sum < 0.99*float64(tc.pps) || sum > 1.01*float64(tc.pps)) {
				t.Fatalf("n=%d senders=%d pps=%d: aggregate pacer rate %.1f", tc.n, tc.senders, tc.pps, sum)
			}
		}
	}
}
