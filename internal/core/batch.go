package core

import (
	"io"
	"time"
)

// This file implements the batched data path (Config.Batch > 1).
//
// Send side: a shard whose transport implements BatchWriter builds
// probes into a preallocated per-shard arena instead of writing them one
// at a time, and flushes the arena as one WriteBatch call when it fills
// — or earlier, at every point the shard is about to block (the pacer
// sleep, the round gap, phase end, cancellation). Flushing before every
// blocking point is what keeps results identical to the unbatched
// engine: between blocking points no response can influence the sender's
// decisions (on the virtual clock no time passes at all), so the set of
// packets on the wire at each blocking instant is the same either way.
//
// Receive side: a receiver whose transport implements BatchReader pulls
// up to Config.Batch packets per call into a preallocated buffer arena
// and processes them in arrival order — the same packet sequence the
// one-at-a-time loop would have seen, just with fewer transport
// crossings. Both sides reuse their arenas, so the steady state
// allocates nothing.

// maxBatch caps Config.Batch: beyond this the arenas' memory dominates
// any further syscall amortization (it is also comfortably above
// Linux's UIO_MAXIOV = 1024 sendmmsg ceiling).
const maxBatch = 4096

// recvBufSize is the per-packet stride of the receive arenas, matching
// the 4096-byte read buffers of the unbatched paths.
const recvBufSize = 4096

// makeRecvArena builds one receive arena: n packet buffers carved from a
// single backing allocation, plus the length slice ReadBatch fills.
func makeRecvArena(n int) ([][]byte, []int) {
	backing := make([]byte, n*recvBufSize)
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = backing[i*recvBufSize : (i+1)*recvBufSize]
	}
	return bufs, make([]int, n)
}

// sendProbeBatched is sendProbe's arena path (sh.bw != nil): build the
// probe into the next arena slot, flush if the arena filled, and run the
// same observer and pacing steps as the unbatched path. The pacer's
// flush hook writes the arena out before any pacing sleep, so batch
// boundaries never distort pacing and no probe waits out a sleep in the
// arena.
func (sh *senderShardOf[A]) sendProbeBatched(dst A, ttl uint8, preprobe bool, srcPortOffset uint16) {
	s := sh.s
	elapsed := s.clock.Now().Sub(s.start)
	slot := sh.arena[sh.nbuf*maxProbeBuf : (sh.nbuf+1)*maxProbeBuf]
	n := s.fam.BuildProbe(slot, s.cfg.Source, dst, ttl, preprobe, elapsed, srcPortOffset)
	sh.pkts[sh.nbuf] = slot[:n]
	sh.metas[sh.nbuf] = probeMeta[A]{dst: dst, ttl: ttl, preprobe: preprobe, off: srcPortOffset}
	sh.nbuf++
	if sh.nbuf == len(sh.pkts) {
		sh.flush()
	}
	if s.cfg.Observer != nil {
		if len(s.shards) > 1 {
			s.obsMu.Lock()
			s.cfg.Observer(dst, ttl, elapsed)
			s.obsMu.Unlock()
		} else {
			s.cfg.Observer(dst, ttl, elapsed)
		}
	}
	sh.pacer.paceFlush(sh.flushFn)
}

// flush writes every buffered probe out, honoring WriteBatch's
// partial-write contract: a short return with an error singles out one
// failed packet, which gets the unbatched path's transient-retry
// treatment while the rest of the arena is re-submitted — a mid-batch
// failure costs that one probe at most, never the packets behind it.
// Accounting (probesSent, checkpoint triggers) happens here, so a probe
// counts as sent only once it has actually been written. No-op when
// nothing is buffered, so it is safe at every blocking point.
func (sh *senderShardOf[A]) flush() {
	if sh.nbuf == 0 {
		return
	}
	s := sh.s
	sent := uint64(0)
	i := 0
	for i < sh.nbuf {
		w, err := sh.bw.WriteBatch(sh.pkts[i:sh.nbuf])
		if w < 0 {
			w = 0
		}
		i += w
		sent += uint64(w)
		if err == nil {
			continue // short write with no error: submit the rest
		}
		if i >= sh.nbuf {
			// Connection-level failure after every packet was consumed
			// (e.g. the transport closed while committing).
			s.noteSendError(err)
			break
		}
		// err refers to pkts[i]: retry that one probe, then resume the
		// batch behind it.
		if sh.retrySlot(i, err) {
			sent++
		}
		i++
		if i < sh.nbuf {
			// The retry may have slept; re-stamp the remaining probes so
			// their embedded send time is their actual send time.
			sh.restampSlots(i)
		}
	}
	sh.nbuf = 0
	sh.probesSent += sent
	if sent > 0 {
		s.liveProbes.Add(sent)
	}
	if s.ckpt != nil && sent > 0 {
		s.maybeCheckpoint(sent)
	}
}

// retrySlot gives one failed arena slot the unbatched path's treatment:
// capped exponential backoff and a single-packet rewrite per attempt, up
// to Config.SendRetries for transient errors. Reports whether the probe
// was eventually written; a dropped probe is counted as a send error.
func (sh *senderShardOf[A]) retrySlot(i int, err error) bool {
	s := sh.s
	for retry := 0; retry < s.cfg.SendRetries && isTemporary(err); retry++ {
		s.sendRetries.Add(1)
		backoff := time.Millisecond << retry
		if backoff > 50*time.Millisecond {
			backoff = 50 * time.Millisecond
		}
		s.clock.Sleep(backoff)
		if err = s.conn.WritePacket(sh.restampSlot(i)); err == nil {
			return true
		}
	}
	s.noteSendError(err)
	return false
}

// restampSlot rebuilds arena slot i from its meta with a fresh
// timestamp: the probe's send time rides in the packet (§3.1), so a
// probe written after a sleep must carry its actual send time or the
// derived RTT would include the wait.
func (sh *senderShardOf[A]) restampSlot(i int) []byte {
	s := sh.s
	m := &sh.metas[i]
	slot := sh.arena[i*maxProbeBuf : (i+1)*maxProbeBuf]
	elapsed := s.clock.Now().Sub(s.start)
	n := s.fam.BuildProbe(slot, s.cfg.Source, m.dst, m.ttl, m.preprobe, elapsed, m.off)
	sh.pkts[i] = slot[:n]
	return sh.pkts[i]
}

// restampSlots re-stamps slots from..nbuf-1 (after a retry backoff).
func (sh *senderShardOf[A]) restampSlots(from int) {
	for i := from; i < sh.nbuf; i++ {
		sh.restampSlot(i)
	}
}

// receiveLoopBatch is the single-receiver loop over a BatchReader:
// responses arrive into a reused buffer arena up to Config.Batch at a
// time and are processed in arrival order, preserving the unbatched
// loop's processReply sequence exactly.
func (s *ScannerOf[A]) receiveLoopBatch(br BatchReader) {
	bufs, sizes := makeRecvArena(s.cfg.Batch)
	for {
		k, err := br.ReadBatch(bufs, sizes)
		for i := 0; i < k; i++ {
			s.handleResponse(bufs[i][:sizes[i]])
		}
		if err != nil {
			if err != io.EOF {
				s.readErrors.Add(1)
			}
			return
		}
		// k == 0 with a nil err: a polling transport had nothing ready;
		// loop and block again.
	}
}
