package core

import (
	"testing"
	"unsafe"
)

// TestLockModesEquivalent: both per-DCB locking strategies (§3.4) must
// produce equivalent scans.
func TestLockModesEquivalent(t *testing.T) {
	const blocks = 1024
	run := func(mode LockMode) *Result {
		e := newEnv(t, blocks, 31)
		e.cfg.LockMode = mode
		return e.run(t)
	}
	m := run(LockMutex)
	sp := run(LockSpin)
	// Scans are concurrency-timing-dependent, so allow small drift but
	// demand near-identical outcomes.
	if diffPct(m.ProbesSent, sp.ProbesSent) > 2 {
		t.Fatalf("lock modes diverge in probes: mutex=%d spin=%d", m.ProbesSent, sp.ProbesSent)
	}
	im, is := m.Store.Interfaces().Len(), sp.Store.Interfaces().Len()
	if diffPct(uint64(im), uint64(is)) > 2 {
		t.Fatalf("lock modes diverge in interfaces: mutex=%d spin=%d", im, is)
	}
}

func diffPct(a, b uint64) float64 {
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo == 0 {
		return 100
	}
	return 100 * float64(hi-lo) / float64(lo)
}

func TestBadLockModeRejected(t *testing.T) {
	e := newEnv(t, 16, 1)
	e.cfg.LockMode = LockMode(99)
	if _, err := NewScanner(e.cfg, e.net.NewConn(), e.clock); err == nil {
		t.Fatal("bad lock mode accepted")
	}
}

// TestFootprintAccounting verifies the §3.4/§5.4 memory math: the control
// state for the full 2^24 /24 universe must land in the hundreds of
// megabytes (the paper reports ~900 MB for its C++ layout), and one
// target per /28 must stay under the paper's ~15 GB bound.
func TestFootprintAccounting(t *testing.T) {
	var d dcb
	if unsafe.Sizeof(d) > 24 {
		t.Fatalf("dcb grew to %d bytes; keep it compact", unsafe.Sizeof(d))
	}

	full24 := EstimateFootprint(1<<24, LockMutex)
	control := full24.Total() - full24.ResultBytes
	if control < 300<<20 || control > 1<<30 {
		t.Fatalf("full /24 control state %d bytes outside [300MB, 1GB]", control)
	}
	spin24 := EstimateFootprint(1<<24, LockSpin)
	if spin24.Total() >= full24.Total() {
		t.Fatal("spinlocks should shrink the footprint (§3.4)")
	}
	if full24.LockBytes != 8<<24 || spin24.LockBytes != 4<<24 {
		t.Fatalf("lock accounting wrong: %d / %d", full24.LockBytes, spin24.LockBytes)
	}

	// The result-store estimate — the side the paper leaves implicit —
	// must be priced too: collected routes for the full /24 universe cost
	// a few GB of slab, far more than the control state, and the whole
	// estimate stays in single-digit GB.
	if full24.ResultBytes < control {
		t.Fatalf("result estimate %d below control state %d — hop slab unpriced?",
			full24.ResultBytes, control)
	}
	if full24.Total() > 10<<30 {
		t.Fatalf("full /24 total %d exceeds 10 GB — estimate model inflated", full24.Total())
	}

	full28 := EstimateFootprint(1<<28, LockMutex)
	if c28 := full28.Total() - full28.ResultBytes; c28 > 15<<30 {
		t.Fatalf("/28 control state %d bytes exceeds the paper's ~15 GB bound", c28)
	}
}

// TestScannerFootprintMatchesEstimate: the scanner reports its own
// configured footprint. Control-state fields match the estimate exactly;
// ResultBytes is the store's live allocation — nonzero from construction
// (record capacity, slot array, interface table) and below the estimate's
// every-block-responds ceiling until the scan fills the slab.
func TestScannerFootprintMatchesEstimate(t *testing.T) {
	e := newEnv(t, 4096, 1)
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	got, want := sc.Footprint(), EstimateFootprint(4096, LockMutex)
	if got.Blocks != want.Blocks || got.DCBBytes != want.DCBBytes ||
		got.LockBytes != want.LockBytes || got.SideBytes != want.SideBytes {
		t.Fatalf("control footprint %+v want %+v", got, want)
	}
	if got.ResultBytes == 0 {
		t.Fatal("live ResultBytes is zero — store allocation unaccounted")
	}
	if got.ResultBytes > want.ResultBytes {
		t.Fatalf("pre-scan ResultBytes %d exceeds full-response estimate %d",
			got.ResultBytes, want.ResultBytes)
	}
}

// TestAdaptiveExtraScansSaveProbes reproduces the §5.4 heuristic's goal:
// bounding extra-scan start TTLs by observed route lengths must reduce
// extra-scan probes without reducing discovery below the uniform variant
// materially.
func TestAdaptiveExtraScansSaveProbes(t *testing.T) {
	const blocks = 4096
	run := func(adaptive bool) *Result {
		e := newEnv(t, blocks, 17)
		e.cfg.SplitTTL = 32
		e.cfg.ExtraScans = 3
		e.cfg.AdaptiveExtraScans = adaptive
		return e.run(t)
	}
	uniform := run(false)
	adaptive := run(true)
	if adaptive.ProbesSent >= uniform.ProbesSent {
		t.Fatalf("adaptive starts should save probes: adaptive=%d uniform=%d",
			adaptive.ProbesSent, uniform.ProbesSent)
	}
	iu, ia := uniform.Store.Interfaces().Len(), adaptive.Store.Interfaces().Len()
	if float64(ia) < 0.97*float64(iu) {
		t.Fatalf("adaptive starts lost too much discovery: %d vs %d", ia, iu)
	}
	t.Logf("uniform: %d probes/%d ifaces; adaptive: %d probes/%d ifaces (%.1f%% probes saved)",
		uniform.ProbesSent, iu, adaptive.ProbesSent, ia,
		100*(1-float64(adaptive.ProbesSent)/float64(uniform.ProbesSent)))
}

func BenchmarkAblationLockModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    LockMode
	}{{"mutex", LockMutex}, {"spin", LockSpin}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := newEnv(b, 2048, int64(i))
				e.cfg.LockMode = mode.m
				e.cfg.PPS = 1 << 30
				e.cfg.MinRoundTime = 1
				res := e.run(b)
				b.ReportMetric(float64(res.ProbesSent), "probes")
			}
		})
	}
}
