package core

import (
	"math"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
)

// TestPacerSetRate: after a mid-stream setRate the achieved rate must
// track the new target within 1%, with no debt or credit carried across
// the change.
func TestPacerSetRate(t *testing.T) {
	v := simclock.NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := newPacer(v, 50_000)
	if rate := pacedRate(v, &p, 100_000); math.Abs(rate-50_000)/50_000 > 0.01 {
		t.Fatalf("before setRate: %.1f pps, want 50000 ±1%%", rate)
	}
	p.setRate(5_000)
	if rate := pacedRate(v, &p, 10_000); math.Abs(rate-5_000)/5_000 > 0.01 {
		t.Errorf("after setRate(5000): %.1f pps, want 5000 ±1%%", rate)
	}
	p.setRate(200_000)
	if rate := pacedRate(v, &p, 400_000); math.Abs(rate-200_000)/200_000 > 0.01 {
		t.Errorf("after setRate(200000): %.1f pps, want 200000 ±1%%", rate)
	}
}

// TestSetRateMidScan: retargeting the aggregate rate mid-scan must slow
// (or speed) the scan without changing what it discovers — the
// fingerprint is rate-invariant in the lockstep environment — and the
// same holds when the re-split spans several sender shards.
func TestSetRateMidScan(t *testing.T) {
	const blocks, seed = 512, 7
	for _, senders := range []int{1, 4} {
		base := newLockstepEnv(t, blocks, seed)
		base.cfg.Senders = senders
		baseline := base.run(t)
		baseFP := fpOf(baseline)

		e := newLockstepEnv(t, blocks, seed)
		e.cfg.Senders = senders
		// Drop the rate a hundredfold at the quarter mark (deep enough to
		// dominate the 1s minimum round time), restore at the half: the
		// scan must take longer than the fixed-rate baseline but find
		// exactly the same topology. The observer is serialized across
		// senders, so the counter needs no synchronization.
		var sc *Scanner
		var n uint64
		quarter, half := baseline.ProbesSent/4, baseline.ProbesSent/2
		e.cfg.Observer = func(dst uint32, ttl uint8, at time.Duration) {
			n++
			switch n {
			case quarter:
				sc.SetRate(e.cfg.PPS / 100)
			case half:
				sc.SetRate(e.cfg.PPS)
			}
		}
		sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if fp := fpOf(res); fp != baseFP {
			t.Errorf("senders=%d: rate change altered discovery: fingerprint %#x, want %#x", senders, fp, baseFP)
		}
		if res.ScanTime <= baseline.ScanTime {
			t.Errorf("senders=%d: scan with a rate dip took %v, fixed-rate baseline %v", senders, res.ScanTime, baseline.ScanTime)
		}
	}
}

// TestSetRateBeforeRun: a rate set before Run starts replaces Config.PPS
// for the whole scan.
func TestSetRateBeforeRun(t *testing.T) {
	const blocks, seed = 256, 3
	slow := newLockstepEnv(t, blocks, seed)
	slow.cfg.PPS = 5_000
	slowRes := slow.run(t)

	e := newLockstepEnv(t, blocks, seed)
	e.cfg.PPS = 50_000
	sc, err := NewScanner(e.cfg, e.net.NewConn(), e.clock)
	if err != nil {
		t.Fatal(err)
	}
	sc.SetRate(5_000)
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fp, want := fpOf(res), fpOf(slowRes); fp != want {
		t.Errorf("fingerprint %#x, want %#x", fp, want)
	}
	// Same rate, same single-sender lockstep environment: the paced
	// timeline must match a scan configured at that rate from the start.
	if res.ScanTime != slowRes.ScanTime {
		t.Errorf("SetRate-before-Run scan took %v, PPS-configured scan %v", res.ScanTime, slowRes.ScanTime)
	}
}
