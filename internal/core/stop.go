package core

// StopSet is the pluggable Doubletree stop set (§3.2): the set of
// interfaces already discovered, consulted by backward probing to
// terminate on route convergence. The engine's default is the sharded
// in-process implementation in receive.go (NewLocalStopSet); a
// distributed deployment substitutes one that also consults entries
// published by other vantage points (internal/cluster).
//
// Concurrency contract: with Config.Receivers == 1 all calls come from
// the single receive goroutine; with Receivers > 1, Has and Add are
// called concurrently from R receive workers and implementations must
// synchronize. ForEach and Size are only called from quiesced points
// (checkpoint barrier, post-scan) but may race an Add on other shards;
// entries may only ever be added, never removed — the engine's rewind
// logic (checkpoint.go) and the suppress-only semantics of the
// distributed set both rely on monotonicity.
type StopSet[A comparable] interface {
	// Has reports membership. This is the engine's hottest read (one per
	// TTL-exceeded reply); implementations keep it allocation-free.
	Has(a A) bool
	// Add inserts a discovered interface.
	Add(a A)
	// ForEach visits every member (checkpoint encoding).
	ForEach(fn func(A))
	// Size reports the cardinality (post-scan statistics).
	Size() int
}

// NewLocalStopSet builds the engine's default in-process stop set:
// sharded `shards` ways by Family.HashAddr (lock-free at one shard),
// pre-sized for roughly one interface per universe block (hint). This is
// exactly the instantiation the engine uses when Config.StopSet is nil,
// exported so wrappers (the cluster's worker set) can embed it as their
// local tier.
func NewLocalStopSet[A comparable](fam Family[A], shards, hint int) StopSet[A] {
	return newStopSet(fam, shards, hint)
}

// TraceSink observes every discovery event the engine records into its
// trace store, as it happens: hop appends and destination arrivals. The
// store itself stays the engine's (results, checkpoints and striped
// merging are unchanged); a sink is a tee, not a replacement — it sees
// exactly the events that mutate the store, after the store applied
// them. Same concurrency contract as StopSet: with Receivers > 1 the
// callbacks arrive concurrently from R workers.
type TraceSink[A comparable] interface {
	// HopDiscovered reports a router interface recorded for dst at ttl.
	HopDiscovered(dst A, ttl uint8, hop A)
	// DestReached reports dst answered from distance dist.
	DestReached(dst A, dist uint8)
}
