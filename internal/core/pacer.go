package core

import (
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
)

// pacer throttles one sender to a fixed packet rate. Probes are accounted
// in batches of a ~5 ms quantum (as in the paper's sender loop); when a
// batch completes the pacer sleeps until an absolute next-deadline rather
// than for a fixed interval, so sleep overshoot on the real clock is
// absorbed by the following batch instead of accumulating as rate drift.
//
// Each sender shard owns its own pacer: aggregate throughput honors
// Config.PPS with no shared pacing lock between senders.
type pacer struct {
	clock    simclock.Clock
	batch    int           // probes per pacing quantum; 0 = unthrottled
	interval time.Duration // time budget of one full batch
	count    int           // probes accounted in the current batch
	next     time.Time     // absolute deadline of the current batch; zero = unanchored
}

// newPacer builds a pacer for the given rate; pps <= 0 disables pacing.
func newPacer(clock simclock.Clock, pps int) pacer {
	p := pacer{clock: clock}
	if pps <= 0 {
		return p
	}
	p.batch = pps / 200 // ~5 ms pacing quantum
	if p.batch < 1 {
		p.batch = 1
	}
	p.interval = time.Duration(int64(time.Second) * int64(p.batch) / int64(pps))
	return p
}

// setRate retargets the pacer to a new rate mid-scan: batch size and
// interval are recomputed exactly as newPacer would, the in-batch count
// is cleared and the deadline anchor dropped, so the next batch paces at
// the new rate with no sending debt (or credit) carried across the
// change.
func (p *pacer) setRate(pps int) {
	*p = newPacer(p.clock, pps)
}

// reset drops the deadline anchor (the in-batch probe count is kept).
// Called at phase starts and after non-pacing sleeps — round gaps, drain
// waits — so idle time is not treated as banked sending budget that would
// otherwise be repaid as an unpaced burst.
func (p *pacer) reset() { p.next = time.Time{} }

// pace accounts one sent probe and, when the batch is full, sleeps until
// the batch's absolute deadline.
func (p *pacer) pace() { p.paceFlush(nil) }

// paceFlush is pace with a pre-sleep hook: flush (if non-nil) runs after
// the sleep decision but before the sleep itself, so a batching sender
// can write out its arena before blocking. The deadline is computed
// before flush runs and the sleep targets that absolute instant, so time
// spent flushing is absorbed by the sleep — batch boundaries do not
// distort pacing.
func (p *pacer) paceFlush(flush func()) {
	if p.batch == 0 {
		return
	}
	p.count++
	if p.count < p.batch {
		return
	}
	p.count = 0
	now := p.clock.Now()
	if p.next.IsZero() {
		p.next = now
	}
	p.next = p.next.Add(p.interval)
	if d := p.next.Sub(now); d > 0 {
		if flush != nil {
			flush()
		}
		p.clock.Sleep(d)
	} else {
		// The sender cannot keep up with the target rate; re-anchor at the
		// present instead of accumulating debt that would burst later.
		p.next = now
	}
}
