package core

import "unsafe"

// Footprint describes the control-state memory cost of a scan
// configuration — the accounting behind the paper's §3.4 claim that the
// full-/24 structure occupies around 900 MB, and behind its §5.4
// projections for finer granularities (< 15 GB at one target per /28,
// ~230 GB at /32).
type Footprint struct {
	Blocks int
	// DCBBytes is the destination control block array (Listing 1 fields
	// plus the linked-list overlay).
	DCBBytes uint64
	// LockBytes is the per-DCB lock array (8 B mutexes, or 4 B spinlocks
	// with LockSpin — the §3.4 footprint reduction).
	LockBytes uint64
	// SideBytes covers the split-TTL, measured/predicted-distance and
	// permutation-order arrays.
	SideBytes uint64
}

// Total returns the summed footprint in bytes.
func (f Footprint) Total() uint64 { return f.DCBBytes + f.LockBytes + f.SideBytes }

// EstimateFootprint computes the IPv4 control-state footprint for a
// universe of the given size under the given lock mode, without
// allocating it.
func EstimateFootprint(blocks int, mode LockMode) Footprint {
	var d dcb
	lockBytes := uint64(8)
	if mode == LockSpin {
		lockBytes = 4
	}
	return Footprint{
		Blocks:    blocks,
		DCBBytes:  uint64(blocks) * uint64(unsafe.Sizeof(d)),
		LockBytes: uint64(blocks) * lockBytes,
		// splits + measured + predicted (1 B each) + order (4 B).
		SideBytes: uint64(blocks) * (3 + 4),
	}
}

// Footprint reports the scanner's own control-state accounting, sized
// for the instantiated address family's DCB layout.
func (s *ScannerOf[A]) Footprint() Footprint {
	var d dcbOf[A]
	lockBytes := uint64(8)
	if s.cfg.LockMode == LockSpin {
		lockBytes = 4
	}
	return Footprint{
		Blocks:    s.cfg.Blocks,
		DCBBytes:  uint64(s.cfg.Blocks) * uint64(unsafe.Sizeof(d)),
		LockBytes: uint64(s.cfg.Blocks) * lockBytes,
		SideBytes: uint64(s.cfg.Blocks) * (3 + 4),
	}
}
