package core

import "unsafe"

// Footprint describes the memory cost of a scan configuration — the
// accounting behind the paper's §3.4 claim that the full-/24 control
// structure occupies around 900 MB, and behind its §5.4 projections for
// finer granularities (< 15 GB at one target per /28, ~230 GB at /32) —
// extended with the result-store side, which the paper leaves implicit
// but which dominates once routes are collected.
type Footprint struct {
	Blocks int
	// DCBBytes is the destination control block array (Listing 1 fields
	// plus the linked-list overlay).
	DCBBytes uint64
	// LockBytes is the per-DCB lock array (8 B mutexes, or 4 B spinlocks
	// with LockSpin — the §3.4 footprint reduction).
	LockBytes uint64
	// SideBytes covers the split-TTL, measured/predicted-distance and
	// permutation-order arrays.
	SideBytes uint64
	// ResultBytes is the slab-backed result store: route records and the
	// block-slot array, the hop slab (when routes are collected), and the
	// open-addressed interface table. For a live scanner this is the
	// store's actual allocation; for EstimateFootprint it assumes every
	// block responds with hops out to the expected route length.
	ResultBytes uint64
}

// Total returns the summed footprint in bytes.
func (f Footprint) Total() uint64 {
	return f.DCBBytes + f.LockBytes + f.SideBytes + f.ResultBytes
}

// Result-store sizing model for EstimateFootprint, mirroring the slab
// layout in internal/trace: a fixed-size route record plus the 4-byte
// slot entry per block, estHopsPerRoute slab hops per responding route
// (paper Table 3 puts the mean route length near 16; slab hops cost
// addr+rtt+link+ttl), and an interface-table slot for every two blocks
// (the empirical interface-per-block ratio the engine also uses for its
// pre-sizing) at a 4/3 open-addressing load factor.
const (
	estHopsPerRoute = 16
	estRecBytes     = 20 // dst(4) + head/tail/nhops(12) + length/reached + pad
	estHopBytes     = 17 // addr(4) + rtt(8) + next(4) + ttl(1), v4 slab
)

// EstimateFootprint computes the IPv4 footprint for a universe of the
// given size under the given lock mode, without allocating it. Routes
// are assumed collected (collectRoutes true); subtract the hop-slab term
// for interface-counting-only scans.
func EstimateFootprint(blocks int, mode LockMode) Footprint {
	var d dcb
	lockBytes := uint64(8)
	if mode == LockSpin {
		lockBytes = 4
	}
	b := uint64(blocks)
	ifaceSlots := uint64(tableSizeForEstimate(blocks / 2))
	return Footprint{
		Blocks:    blocks,
		DCBBytes:  b * uint64(unsafe.Sizeof(d)),
		LockBytes: b * lockBytes,
		// splits + measured + predicted (1 B each) + order (4 B).
		SideBytes:   b * (3 + 4),
		ResultBytes: b*(estRecBytes+4) + b*estHopsPerRoute*estHopBytes + ifaceSlots*4,
	}
}

// tableSizeForEstimate mirrors the interface table's power-of-two growth
// under its 3/4 load-factor bound.
func tableSizeForEstimate(n int) int {
	size := 16
	for size*3 < n*4 {
		size <<= 1
	}
	return size
}

// Footprint reports the scanner's own accounting, sized for the
// instantiated address family's DCB layout. ResultBytes is the result
// store's live allocation (slab chunks, record array, slot array,
// interface table) at the time of the call.
func (s *ScannerOf[A]) Footprint() Footprint {
	var d dcbOf[A]
	lockBytes := uint64(8)
	if s.cfg.LockMode == LockSpin {
		lockBytes = 4
	}
	var result uint64
	switch {
	case s.striped != nil:
		for _, rw := range s.recvWorkers {
			result += rw.store.MemoryBytes()
		}
	case s.store != nil:
		result = s.store.MemoryBytes()
	}
	return Footprint{
		Blocks:      s.cfg.Blocks,
		DCBBytes:    uint64(s.cfg.Blocks) * uint64(unsafe.Sizeof(d)),
		LockBytes:   uint64(s.cfg.Blocks) * lockBytes,
		SideBytes:   uint64(s.cfg.Blocks) * (3 + 4),
		ResultBytes: result,
	}
}
