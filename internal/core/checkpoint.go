package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/snapshot"
	"github.com/flashroute/flashroute/internal/trace"
)

// This file implements crash-safe checkpointing: the engine periodically
// serializes its complete probing state into a versioned, checksummed
// snapshot (internal/snapshot carries the codec), and Resume reconstructs
// a scanner mid-scan from one.
//
// The correctness argument rests on one distinction. The respSeen bitmap
// (and the preprobe's measured[] array, the stop set and the result
// store) record replies whose processing COMPLETED — durable truth. The
// DCB probing pointers record probes that were SENT — but a sent probe's
// reply may have been in flight when the scan died, and in-flight replies
// do not survive a crash. Resume therefore treats the pointers as
// advisory and rewinds them so that every TTL not confirmed by respSeen
// is probed again; confirmed progress is never repeated (the duplicate
// guard discards the occasional re-elicited reply). Destinations whose
// probing had finished are re-linked into the round list whenever the
// rewind leaves them work to do.
//
// Two flags make the rewind safe:
//   - dcbBwStopped distinguishes "backward probing terminated at the stop
//     set" (a confirmed decision that must not be rewound) from "backward
//     probing ran out of sent TTLs" (which must be);
//   - dcbForwardDone is never cleared: it is only ever set by a processed
//     unreachable reply, which the restored store also records.

// checkpointVersion is the snapshot format version this build reads and
// writes. Version 2 accompanies the slab-backed result store: the route
// section is produced by the store's sorted streaming iterator (hops
// arrive TTL-sorted, no in-memory collection of the whole topology), and
// a resumed scan restores routes into block slots rather than a map.
const checkpointVersion = 2

// ErrCheckpointComplete is returned by Resume for the final snapshot of a
// scan that ran to completion: there is nothing left to resume.
var ErrCheckpointComplete = errors.New("core: checkpoint records a completed scan")

// ckptState is the armed checkpoint machinery (Config.CheckpointSink set).
//
// The write barrier: every reply processor holds mu.RLock for the
// duration of processReply, and the encoder takes mu.Lock — so a snapshot
// never observes a half-applied reply (respSeen set but the hop not yet
// in the stop set, say), without adding any locking to the disarmed path.
type ckptState struct {
	mu       sync.RWMutex
	every    uint64
	interval time.Duration
	sink     func([]byte) error

	// probes and retrans mirror the per-shard counters, which are
	// deliberately unsynchronized and must never be read mid-scan; the
	// mirrors are maintained only when checkpointing is armed.
	probes  atomic.Uint64
	retrans atomic.Uint64

	// nextAt is the scan-elapsed nanosecond deadline of the next
	// interval-triggered checkpoint.
	nextAt atomic.Int64

	errs atomic.Uint64
}

// resumeInfo is where a restored snapshot positions the scan.
type resumeInfo struct {
	phase int32  // 0 = preprobing, 1 = main
	pass  uint32 // scan pass (0 = main, n = extra scan n); phase 1 only
}

// baseCounters are the restored totals of the interrupted run(s); the
// resumed run adds its own on top when building the Result.
type baseCounters struct {
	probes      uint64
	retransmits uint64
	scanTime    time.Duration
	rounds      int
}

// maybeCheckpoint runs the probe-count and interval triggers after k
// probes were successfully sent while armed (k > 1 when a batch flush
// accounts a whole arena at once; a crossed CheckpointEvery boundary
// anywhere inside the batch triggers).
func (s *ScannerOf[A]) maybeCheckpoint(k uint64) {
	ck := s.ckpt
	n := ck.probes.Add(k)
	if ck.every > 0 && n/ck.every != (n-k)/ck.every {
		s.writeCheckpoint(false, false, nil)
		return
	}
	if ck.interval > 0 {
		now := int64(s.clock.Now().Sub(s.start))
		next := ck.nextAt.Load()
		if now >= next && ck.nextAt.CompareAndSwap(next, now+int64(ck.interval)) {
			s.writeCheckpoint(false, false, nil)
		}
	}
}

// writeCheckpoint serializes the scan state and hands it to the sink.
// Mid-scan (final == false) it takes the write barrier to quiesce reply
// processing; final snapshots run after every goroutine has joined and
// encode the merged result store passed in.
func (s *ScannerOf[A]) writeCheckpoint(final, complete bool, merged *trace.StoreOf[A]) {
	ck := s.ckpt
	if !final {
		ck.mu.Lock()
		defer ck.mu.Unlock()
	}
	if err := ck.sink(s.encodeCheckpoint(final, complete, merged)); err != nil {
		ck.errs.Add(1)
	}
}

func (s *ScannerOf[A]) encodeCheckpoint(final, complete bool, merged *trace.StoreOf[A]) []byte {
	ck := s.ckpt
	asz := s.fam.AddrSize()
	var ab [16]byte
	putAddr := func(w *snapshot.Writer, a A) {
		s.fam.PutAddr(ab[:asz], a)
		w.Raw(ab[:asz])
	}

	w := snapshot.NewWriter(checkpointVersion)
	w.Bool(complete)

	// Configuration fingerprint: resuming under a different universe or
	// probing geometry would silently corrupt the scan, so these must
	// match exactly at decode.
	w.I64(s.cfg.Seed)
	w.U32(uint32(s.cfg.Blocks))
	w.U8(s.cfg.SplitTTL)
	w.U8(s.cfg.GapLimit)
	w.U8(s.cfg.MaxTTL)
	w.U8(uint8(asz))

	w.U8(uint8(s.phase.Load()))
	w.U32(s.scanOffset.Load()) // current pass (0 = main scan)

	s.distMu.Lock()
	w.Bool(s.measured != nil)
	if s.measured != nil {
		w.Bytes(s.measured)
	}
	s.distMu.Unlock()
	w.Bytes(s.splits)

	// Cumulative counters (include any base restored from an earlier
	// resume). The per-shard counters are unsynchronized; only the armed
	// mirrors are safe to read here.
	w.U64(ck.probes.Load())
	w.U64(s.preprobeProbes)
	w.U64(ck.retrans.Load())
	w.U64(s.mismatched.Load())
	w.U64(s.unparsed.Load())
	w.U64(s.dupResponses.Load())
	w.U64(s.readErrors.Load())
	w.U64(s.sendErrors.Load())
	w.U64(s.sendRetries.Load())
	w.I64(int64(s.base.scanTime + s.clock.Now().Sub(s.start)))
	rounds := s.base.rounds
	if final {
		// Mid-scan the per-shard round counters are as unsynchronized as
		// the probe counters, so interior snapshots carry only the base:
		// a Result built through such a resume undercounts Rounds by the
		// interrupted run's in-progress passes.
		for _, sh := range s.shards {
			if sh.rounds > rounds-s.base.rounds {
				rounds = s.base.rounds + sh.rounds
			}
		}
	}
	w.U32(uint32(rounds))

	// Per-destination control blocks, in scan order. Each block is read
	// under its own lock: per-block consistency is all resume needs (the
	// rewind re-probes anything unconfirmed).
	w.U32(uint32(len(s.order)))
	for _, b := range s.order {
		s.locks.lock(b)
		d := s.dcbs[b]
		s.locks.unlock(b)
		w.U32(b)
		putAddr(w, d.dest)
		w.U32(d.respSeen)
		w.U16(d.lastForward)
		w.U8(d.nextBackward)
		w.U8(d.nextForward)
		w.U8(d.forwardHorizon)
		w.U8(d.flags)
		w.U8(d.routeLen)
		w.U8(d.fwRetries)
	}

	// Stop set, sorted for deterministic bytes.
	var stops []A
	s.stopSet.ForEach(func(a A) { stops = append(stops, a) })
	sort.Slice(stops, func(i, j int) bool { return s.fam.AddrLess(stops[i], stops[j]) })
	w.U32(uint32(len(stops)))
	for _, a := range stops {
		putAddr(w, a)
	}

	// Result store: routes (destination-sorted, hops TTL-sorted) and the
	// interface set, streamed from the slab via the sorted iterators — no
	// in-memory collection of the whole topology. The worker stripes are
	// destination-disjoint, so streaming them through a union view yields
	// the same global sort order the old collect-and-sort produced.
	var stores []*trace.StoreOf[A]
	switch {
	case merged != nil:
		stores = []*trace.StoreOf[A]{merged}
	case s.striped != nil:
		for _, rw := range s.recvWorkers {
			stores = append(stores, rw.store)
		}
	default:
		stores = []*trace.StoreOf[A]{s.store}
	}
	nRoutes := 0
	for _, st := range stores {
		nRoutes += st.NumRoutes()
	}
	w.U32(uint32(nRoutes))
	emit := func(r *trace.RouteOf[A]) {
		putAddr(w, r.Dst)
		w.Bool(r.Reached)
		w.U8(r.Length)
		w.U16(uint16(len(r.Hops)))
		for _, h := range r.Hops {
			w.U8(h.TTL)
			putAddr(w, h.Addr)
			w.I64(int64(h.RTT))
		}
	}
	if len(stores) == 1 {
		stores[0].ForEachRouteSorted(emit)
	} else {
		trace.UnionOf(stores).ForEachRouteSorted(emit)
	}
	ifaces := make(map[A]struct{})
	for _, st := range stores {
		st.Interfaces().ForEach(func(a A) { ifaces[a] = struct{}{} })
	}
	ifs := make([]A, 0, len(ifaces))
	for a := range ifaces {
		ifs = append(ifs, a)
	}
	sort.Slice(ifs, func(i, j int) bool { return s.fam.AddrLess(ifs[i], ifs[j]) })
	w.U32(uint32(len(ifs)))
	for _, a := range ifs {
		putAddr(w, a)
	}

	return w.Finish()
}

// Resume reconstructs a scanner mid-scan from a checkpoint snapshot. The
// configuration must describe the same scan (same universe seed, block
// count and probing geometry); cfg fields that only shape the machinery —
// Senders, Receivers, PPS, LockMode, checkpointing itself — are free to
// differ. Run on the returned scanner continues the interrupted scan.
func Resume[A comparable](fam Family[A], cfg ConfigOf[A], conn PacketConn, clock simclock.Waiter, data []byte) (*ScannerOf[A], error) {
	s, err := NewScannerOf(fam, cfg, conn, clock)
	if err != nil {
		return nil, err
	}
	if err := s.restore(data); err != nil {
		return nil, err
	}
	return s, nil
}

// ResumeScanner is the IPv4 Resume.
func ResumeScanner(cfg Config, conn PacketConn, clock simclock.Waiter, data []byte) (*Scanner, error) {
	return Resume[uint32](ipv4Family{}, cfg, conn, clock, data)
}

// restore decodes a snapshot into the freshly constructed scanner. Any
// error leaves nothing partially resumed: the caller discards the scanner.
func (s *ScannerOf[A]) restore(data []byte) error {
	r, err := snapshot.NewReader(data, checkpointVersion)
	if err != nil {
		return fmt.Errorf("core: reading checkpoint: %w", err)
	}
	asz := s.fam.AddrSize()
	getAddr := func() A {
		if b := r.Raw(asz); b != nil {
			return s.fam.GetAddr(b)
		}
		var zero A
		return zero
	}

	complete := r.Bool()
	seed := r.I64()
	blocks := r.U32()
	splitTTL, gapLimit, maxTTL := r.U8(), r.U8(), r.U8()
	famSize := r.U8()
	phase := r.U8()
	pass := r.U32()
	var measured []uint8
	if r.Bool() {
		measured = append([]uint8(nil), r.Bytes()...)
	}
	splits := append([]uint8(nil), r.Bytes()...)
	probes := r.U64()
	preprobeProbes := r.U64()
	retransmits := r.U64()
	mismatched := r.U64()
	unparsed := r.U64()
	dups := r.U64()
	readErrors := r.U64()
	sendErrors := r.U64()
	sendRetries := r.U64()
	elapsed := time.Duration(r.I64())
	rounds := r.U32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: reading checkpoint header: %w", err)
	}

	// Validate before decoding the bulk sections: a mismatched config
	// must never partially resume.
	switch {
	case complete:
		return ErrCheckpointComplete
	case famSize != uint8(asz):
		return fmt.Errorf("core: checkpoint is for a %d-byte address family, scanner uses %d", famSize, asz)
	case seed != s.cfg.Seed:
		return fmt.Errorf("core: checkpoint Seed %d does not match config Seed %d", seed, s.cfg.Seed)
	case int(blocks) != s.cfg.Blocks:
		return fmt.Errorf("core: checkpoint Blocks %d does not match config Blocks %d", blocks, s.cfg.Blocks)
	case splitTTL != s.cfg.SplitTTL:
		return fmt.Errorf("core: checkpoint SplitTTL %d does not match config SplitTTL %d", splitTTL, s.cfg.SplitTTL)
	case gapLimit != s.cfg.GapLimit:
		return fmt.Errorf("core: checkpoint GapLimit %d does not match config GapLimit %d", gapLimit, s.cfg.GapLimit)
	case maxTTL != s.cfg.MaxTTL:
		return fmt.Errorf("core: checkpoint MaxTTL %d does not match config MaxTTL %d", maxTTL, s.cfg.MaxTTL)
	case phase > 1:
		return fmt.Errorf("core: checkpoint has impossible phase %d", phase)
	case measured != nil && len(measured) != s.cfg.Blocks:
		return fmt.Errorf("core: checkpoint measured[] has %d blocks, config has %d", len(measured), s.cfg.Blocks)
	case len(splits) != s.cfg.Blocks:
		return fmt.Errorf("core: checkpoint splits[] has %d blocks, config has %d", len(splits), s.cfg.Blocks)
	}

	numDCBs := r.U32()
	if r.Err() == nil && numDCBs > blocks {
		return fmt.Errorf("core: checkpoint has %d DCBs for %d blocks", numDCBs, blocks)
	}
	type entry struct {
		block uint32
		d     dcbOf[A]
	}
	entries := make([]entry, 0, numDCBs)
	for i := uint32(0); i < numDCBs && r.Err() == nil; i++ {
		var e entry
		e.block = r.U32()
		e.d.dest = getAddr()
		e.d.respSeen = r.U32()
		e.d.lastForward = r.U16()
		e.d.nextBackward = r.U8()
		e.d.nextForward = r.U8()
		e.d.forwardHorizon = r.U8()
		e.d.flags = r.U8()
		e.d.routeLen = r.U8()
		e.d.fwRetries = r.U8()
		if e.block >= blocks {
			return fmt.Errorf("core: checkpoint DCB block %d out of range", e.block)
		}
		entries = append(entries, e)
	}

	numStops := r.U32()
	stops := make([]A, 0, numStops)
	for i := uint32(0); i < numStops && r.Err() == nil; i++ {
		stops = append(stops, getAddr())
	}

	numRoutes := r.U32()
	routes := make([]*trace.RouteOf[A], 0, numRoutes)
	for i := uint32(0); i < numRoutes && r.Err() == nil; i++ {
		rt := &trace.RouteOf[A]{}
		rt.Dst = getAddr()
		rt.Reached = r.Bool()
		rt.Length = r.U8()
		numHops := r.U16()
		if numHops > 0 {
			rt.Hops = make([]trace.HopOf[A], numHops)
			for j := range rt.Hops {
				rt.Hops[j].TTL = r.U8()
				rt.Hops[j].Addr = getAddr()
				rt.Hops[j].RTT = time.Duration(r.I64())
			}
		}
		routes = append(routes, rt)
	}

	numIfaces := r.U32()
	ifaces := make([]A, 0, numIfaces)
	for i := uint32(0); i < numIfaces && r.Err() == nil; i++ {
		ifaces = append(ifaces, getAddr())
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: reading checkpoint state: %w", err)
	}

	// All decoded and validated; install.
	s.resume = &resumeInfo{phase: int32(phase), pass: pass}
	s.base = baseCounters{
		probes:      probes,
		retransmits: retransmits,
		scanTime:    elapsed,
		rounds:      int(rounds),
	}
	s.preprobeProbes = preprobeProbes
	s.mismatched.Store(mismatched)
	s.unparsed.Store(unparsed)
	s.dupResponses.Store(dups)
	s.readErrors.Store(readErrors)
	s.sendErrors.Store(sendErrors)
	s.sendErrBase = sendErrors // AbortOnSendErrors counts this run only
	s.sendRetries.Store(sendRetries)
	if s.ckpt != nil {
		s.ckpt.probes.Store(probes)
		s.ckpt.retrans.Store(retransmits)
	}
	s.measured = measured
	copy(s.splits, splits)
	for i := range entries {
		s.dcbs[entries[i].block] = entries[i].d
	}
	for _, a := range stops {
		s.stopSet.Add(a)
	}
	restore := func(rt *trace.RouteOf[A]) {
		// Block-affinity dispatch owns each destination's route on the
		// worker (and stripe) block % R, at stripe slot block / R;
		// restoring elsewhere would leave two stores claiming the same
		// destination in the Union view.
		b, ok := s.cfg.BlockOf(rt.Dst)
		if !ok {
			// No block for the destination (cannot happen for routes the
			// scan itself recorded): fall back to the dst-keyed overflow
			// index of worker 0's stripe.
			if s.striped != nil {
				s.recvWorkers[0].store.RestoreRoute(rt)
			} else {
				s.store.RestoreRoute(rt)
			}
			return
		}
		if s.striped != nil {
			r := len(s.recvWorkers)
			s.recvWorkers[b%r].store.RestoreRouteAt(b/r, rt)
		} else {
			s.store.RestoreRouteAt(b, rt)
		}
	}
	for _, rt := range routes {
		restore(rt)
	}
	ifaceStore := s.store
	if s.striped != nil {
		ifaceStore = s.recvWorkers[0].store // Merge unions interface sets
	}
	for _, a := range ifaces {
		ifaceStore.AddInterface(a)
	}
	return nil
}

// rewindDCBs repositions every destination's probing pointers after a
// phase-1 restore (see the file comment for the confirmed-vs-sent
// argument), then re-links destinations with remaining work into the
// round list. Runs after the scan order is built, before the first pass.
func (s *ScannerOf[A]) rewindDCBs(pass int) {
	fold := s.cfg.foldsPreprobe() && s.cfg.Preprobe != PreprobeOff && !s.cfg.Exhaustive
	for _, b := range s.order {
		d := &s.dcbs[b]

		// The TTL backward probing counts down from this pass.
		initBW := s.splits[b]
		if pass == 0 && fold && initBW == s.cfg.MaxTTL {
			measured := s.measured != nil && s.measured[b] != 0
			if !measured {
				initBW = s.cfg.MaxTTL - 1 // preprobe served as the first round
			}
		}

		// Backward: rewind to one below the lowest confirmed TTL. Probes
		// are sent top-down one round apart and per-destination replies
		// arrive in probe order, so the confirmed responsive TTLs form a
		// prefix of the sent ones; everything below the lowest confirmed
		// TTL is unconfirmed and gets re-probed. A stop-set termination
		// (dcbBwStopped) was decided on a confirmed reply: keep it.
		if d.flags&dcbBwStopped == 0 && initBW > 0 {
			nb := initBW
			for t := int(d.nextBackward) + 1; t <= int(initBW); t++ {
				if d.respSeen&(uint32(1)<<(t-1)) != 0 {
					nb = uint8(t - 1)
					break
				}
			}
			if nb > d.nextBackward {
				d.nextBackward = nb
			}
		}

		// Forward: rewind to the lowest unconfirmed sent TTL. Never touch
		// a destination whose forward side finished — dcbForwardDone is
		// only set by a processed unreachable reply, which the restored
		// store also carries.
		if d.flags&dcbForwardDone == 0 {
			for t := int(s.splits[b]) + 1; t < int(d.nextForward); t++ {
				if d.respSeen&(uint32(1)<<(t-1)) == 0 {
					d.nextForward = uint8(t)
					break
				}
			}
		}

		// The retry timer restarts from the resumed scan's epoch.
		d.lastForward = 0

		live := d.nextBackward > 0 ||
			(d.flags&dcbForwardDone == 0 && d.nextForward <= d.forwardHorizon)
		if !live && s.cfg.ForwardRetries > 0 && d.flags&dcbForwardDone == 0 &&
			d.forwardHorizon > 0 && d.fwRetries < uint8(s.cfg.ForwardRetries) {
			// Forward-retry budget remains: keep the destination linked so
			// runRounds re-evaluates the gap under its timeout logic.
			live = true
		}
		if live {
			d.flags &^= dcbRemoved
		} else {
			d.flags |= dcbRemoved
		}
	}
}
