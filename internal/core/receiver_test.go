package core

import (
	"errors"
	"testing"

	"github.com/flashroute/flashroute/internal/netsim"
)

// runReceivers runs the env's scan with the given sender and receiver
// counts, wiring the per-worker read handles from a fresh connection.
func (e *testEnv) runReceivers(t testing.TB, senders, receivers int) *Result {
	t.Helper()
	e.cfg.Senders = senders
	e.cfg.Receivers = receivers
	conn := e.net.NewConn()
	if receivers > 1 {
		e.cfg.NewReader = func() PacketReader { return conn.NewReader() }
	}
	sc, err := NewScanner(e.cfg, conn, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReceiverGridTopologyInvariant: every Senders × Receivers combination
// of {1,4} × {1,4} must discover exactly the interfaces and reach exactly
// the destinations the sequential (1,1) scan does. The lockstep
// environment makes the discovered topology a pure function of the probe
// set, so the equality is exact, not statistical. Run under -race this
// also exercises four parsers dispatching into four single-writer shards.
func TestReceiverGridTopologyInvariant(t *testing.T) {
	const blocks, seed = 1024, 11

	base := newLockstepEnv(t, blocks, seed).runReceivers(t, 1, 1)
	baseFP := fpOf(base)
	if base.Store.Interfaces().Len() == 0 {
		t.Fatal("baseline discovered nothing")
	}

	for _, senders := range []int{1, 4} {
		for _, receivers := range []int{1, 4} {
			if senders == 1 && receivers == 1 {
				continue
			}
			res := newLockstepEnv(t, blocks, seed).runReceivers(t, senders, receivers)
			if fp := fpOf(res); fp != baseFP {
				t.Errorf("senders=%d receivers=%d: fingerprint %#x, want %#x (interfaces %d vs %d, reached %d vs %d)",
					senders, receivers, fp, baseFP,
					res.Store.Interfaces().Len(), base.Store.Interfaces().Len(),
					len(reachedSet(res)), len(reachedSet(base)))
			}
			if res.ReadErrors != 0 {
				t.Errorf("senders=%d receivers=%d: %d read errors on a healthy transport",
					senders, receivers, res.ReadErrors)
			}
		}
	}
}

// TestReceiverOneGoldenFingerprint pins Receivers: 1 to the exact goldens
// captured before the sharded receive pipeline existed (the same values
// TestImpairmentZeroFingerprint pins): the single-receiver path must stay
// bit-identical, probe for probe, whatever the sender count.
func TestReceiverOneGoldenFingerprint(t *testing.T) {
	single := []struct {
		seed   int64
		fp     uint64
		probes uint64
	}{
		{1, 0xe464436d2a0b477e, 10985},
		{7, 0xf723e4bc94b806ca, 10440},
		{21, 0x477f025e0ae0c8fe, 11313},
	}
	for _, tc := range single {
		e := newEnv(t, 1024, tc.seed)
		res := e.runReceivers(t, 1, 1)
		if fp := fpOf(res); fp != tc.fp {
			t.Errorf("seed %d senders=1 receivers=1: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
		if res.ProbesSent != tc.probes {
			t.Errorf("seed %d senders=1 receivers=1: probes %d, want %d", tc.seed, res.ProbesSent, tc.probes)
		}
	}

	// Senders: 4 is only order-invariant in the lockstep environment;
	// these are the same multi-sender goldens the impairment suite pins.
	multi := []struct {
		seed int64
		fp   uint64
	}{
		{1, 0xe7dc416d629f035c},
		{7, 0x500ee780aefb45e9},
		{21, 0xf9ab8ad983ad9858},
	}
	for _, tc := range multi {
		e := newLockstepEnv(t, 1024, tc.seed)
		res := e.runReceivers(t, 4, 1)
		if fp := fpOf(res); fp != tc.fp {
			t.Errorf("seed %d senders=4 receivers=1: fingerprint %#x, want %#x", tc.seed, fp, tc.fp)
		}
	}
}

// TestReceiverImpairedLossInvariant: under 5% packet loss the sharded
// pipeline must still discover exactly what the inline receiver does. In
// the lockstep environment with one sender the impairment draws are
// send-side deterministic — the same packets are lost in both runs — so
// the equality is exact even though the network is lossy.
func TestReceiverImpairedLossInvariant(t *testing.T) {
	run := func(receivers int) *Result {
		e := newLockstepEnv(t, 1024, 9)
		e.topo.P.Impair = netsim.Impairments{LossProb: 0.05}
		return e.runReceivers(t, 1, receivers)
	}
	inline := run(1)
	sharded := run(4)

	if fi, fs := fpOf(inline), fpOf(sharded); fi != fs {
		t.Errorf("5%% loss: receivers=4 fingerprint %#x, receivers=1 %#x (interfaces %d vs %d)",
			fs, fi, sharded.Store.Interfaces().Len(), inline.Store.Interfaces().Len())
	}
	if inline.Store.Interfaces().Len() == 0 {
		t.Fatal("lossy baseline discovered nothing")
	}
}

// readErrConn fails its first read with a transport error, then passes
// through. The receiver must count the failure as a read error — not as
// an unparseable packet — and exit cleanly.
type readErrConn struct {
	PacketConn
	failed bool
}

func (c *readErrConn) ReadPacket(buf []byte) (int, error) {
	if !c.failed {
		c.failed = true
		return 0, errors.New("transport busted")
	}
	return c.PacketConn.ReadPacket(buf)
}

// TestReceiverReadErrorCounted: a non-EOF read failure surfaces in
// Result.ReadErrors and leaves UnparsedResponses alone (the historical
// behavior folded transport failures into the unparsed count).
func TestReceiverReadErrorCounted(t *testing.T) {
	e := newEnv(t, 64, 3)
	conn := &readErrConn{PacketConn: e.net.NewConn()}
	sc, err := NewScanner(e.cfg, conn, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1", res.ReadErrors)
	}
	if res.UnparsedResponses != 0 {
		t.Errorf("read error leaked into UnparsedResponses: %d", res.UnparsedResponses)
	}
}

// TestReceiverRequiresNewReader: Receivers > 1 without read handles is a
// configuration error, caught at construction.
func TestReceiverRequiresNewReader(t *testing.T) {
	e := newEnv(t, 64, 1)
	e.cfg.Receivers = 4
	if _, err := NewScanner(e.cfg, e.net.NewConn(), e.clock); err == nil {
		t.Fatal("Receivers=4 without NewReader accepted")
	}
}
