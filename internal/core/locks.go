package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// LockMode selects how per-DCB mutual exclusion between the sending and
// receiving threads is implemented.
//
// The paper (§3.4) ships general mutexes for portability and notes that
// the footprint could be reduced "most significantly by replacing general
// per-DCB mutexes with primitive atomic operations (such as a spinlock
// over the test-and-set instruction)". Both options are implemented here
// so the trade-off is measurable (BenchmarkAblationLockModes): contention
// is rare by design — it requires the receiver to handle a response for
// the exact destination the sender is touching — which is the regime
// where a spinlock's single CAS beats a mutex's fast path in space and
// roughly matches it in time.
type LockMode int

const (
	// LockMutex uses one sync.Mutex per DCB (the paper's choice).
	LockMutex LockMode = iota
	// LockSpin uses one 4-byte test-and-set spinlock per DCB.
	LockSpin
)

// dcbLocks provides per-DCB mutual exclusion by index.
type dcbLocks interface {
	lock(i uint32)
	unlock(i uint32)
	// bytesPerDCB reports the per-destination memory cost, for the
	// footprint accounting of §3.4.
	bytesPerDCB() int
}

type mutexLocks struct{ mus []sync.Mutex }

func newMutexLocks(n int) *mutexLocks { return &mutexLocks{mus: make([]sync.Mutex, n)} }

func (m *mutexLocks) lock(i uint32)    { m.mus[i].Lock() }
func (m *mutexLocks) unlock(i uint32)  { m.mus[i].Unlock() }
func (m *mutexLocks) bytesPerDCB() int { return 8 } // sizeof(sync.Mutex)

type spinLocks struct{ words []atomic.Uint32 }

func newSpinLocks(n int) *spinLocks { return &spinLocks{words: make([]atomic.Uint32, n)} }

func (s *spinLocks) lock(i uint32) {
	w := &s.words[i]
	for !w.CompareAndSwap(0, 1) {
		// Contention here means the other thread is inside a handful of
		// field updates; yield rather than burn the core.
		runtime.Gosched()
	}
}

func (s *spinLocks) unlock(i uint32)  { s.words[i].Store(0) }
func (s *spinLocks) bytesPerDCB() int { return 4 }
