package core

import (
	"io"
	"sync"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/trace"
)

// This file implements the sharded receive pipeline (Config.Receivers > 1).
//
// R workers each own a PacketReader handle onto the connection. A worker
// pulls raw packets, runs Family.ParseReply in parallel with its siblings,
// and then applies block-affinity dispatch: a decoded reply for block b is
// processed by worker b % R. Replies a worker parsed for a block it does
// not own are pushed onto the owner's reply ring and the owner is woken;
// replies for its own blocks it processes inline. The result is a single
// writer per DCB pass-state, per stop-set shard home, and per trace-store
// stripe, with all replies of a block applied serially by one goroutine.
//
// Termination: the engine closes the connection after the last drain;
// each reader then returns EOF once the in-flight responses are drained.
// A worker that hits EOF increments recvEOF and — if it was the last —
// wakes everyone. Because every ring push happens before the pusher's
// recvEOF increment, a drain performed after observing recvEOF == R is
// guaranteed to see the final contents of the ring.

// stopSetOf is the engine's Doubletree stop set (§3.2), sharded by
// address hash so R receive workers can insert concurrently. With a
// single shard (Receivers <= 1) all locking is elided and the map is
// touched exactly as the classic single-receiver engine did.
type stopSetOf[A comparable] struct {
	fam    Family[A]
	shards []stopShard[A]
}

type stopShard[A comparable] struct {
	mu sync.RWMutex
	m  map[A]struct{}
}

// newStopSet builds a stop set with the given shard count; hint pre-sizes
// the membership maps for roughly one interface per universe block.
func newStopSet[A comparable](fam Family[A], shards, hint int) *stopSetOf[A] {
	if shards < 1 {
		shards = 1
	}
	ss := &stopSetOf[A]{fam: fam, shards: make([]stopShard[A], shards)}
	for i := range ss.shards {
		ss.shards[i].m = make(map[A]struct{}, hint/shards)
	}
	return ss
}

func (ss *stopSetOf[A]) shardOf(a A) *stopShard[A] {
	return &ss.shards[ss.fam.HashAddr(a)%uint64(len(ss.shards))]
}

// Has reports membership. Reads dominate (one per TTL-exceeded reply), so
// sharded mode takes only the read side of the shard lock.
func (ss *stopSetOf[A]) Has(a A) bool {
	if len(ss.shards) == 1 {
		_, ok := ss.shards[0].m[a]
		return ok
	}
	sh := ss.shardOf(a)
	sh.mu.RLock()
	_, ok := sh.m[a]
	sh.mu.RUnlock()
	return ok
}

// Add inserts a into its home shard.
func (ss *stopSetOf[A]) Add(a A) {
	if len(ss.shards) == 1 {
		ss.shards[0].m[a] = struct{}{}
		return
	}
	sh := ss.shardOf(a)
	sh.mu.Lock()
	sh.m[a] = struct{}{}
	sh.mu.Unlock()
}

// ForEach visits every member under the shard read locks (checkpoint
// encoding; safe concurrently with Add, though the caller normally holds
// the checkpoint barrier that quiesces receivers anyway).
func (ss *stopSetOf[A]) ForEach(fn func(A)) {
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.RLock()
		for a := range sh.m {
			fn(a)
		}
		sh.mu.RUnlock()
	}
}

// Size sums the shard cardinalities (post-scan use).
func (ss *stopSetOf[A]) Size() int {
	n := 0
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// dispatchedReply is one decoded reply in flight between receive workers.
type dispatchedReply[A comparable] struct {
	block int
	reply Reply[A]
}

// replyRing is the per-worker dispatch queue: any worker pushes, only the
// owner drains. A mutex-guarded growable ring rather than a Go channel
// because draining must never block (workers drain opportunistically
// between reads) and the steady state must not allocate — the ring grows
// to the peak in-flight burst once and is then reused.
type replyRing[A comparable] struct {
	mu   sync.Mutex
	buf  []dispatchedReply[A]
	head int
	n    int
}

func (q *replyRing[A]) push(d dispatchedReply[A]) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = d
	q.n++
	q.mu.Unlock()
}

// grow doubles the ring (power-of-two sizes keep the index mask cheap).
// Caller holds q.mu.
func (q *replyRing[A]) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 64
	}
	nb := make([]dispatchedReply[A], size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

// drainInto appends all queued replies to dst and empties the ring.
func (q *replyRing[A]) drainInto(dst []dispatchedReply[A]) []dispatchedReply[A] {
	q.mu.Lock()
	for ; q.n > 0; q.n-- {
		dst = append(dst, q.buf[q.head])
		q.head = (q.head + 1) & (len(q.buf) - 1)
	}
	q.head = 0
	q.mu.Unlock()
	return dst
}

// recvWorkerOf is one worker of the sharded receive pipeline.
type recvWorkerOf[A comparable] struct {
	s      *ScannerOf[A]
	idx    int
	reader PacketReader
	// parker is the worker's own blocking site for the post-EOF join;
	// while reading, the worker blocks inside the reader instead.
	parker *simclock.Parker
	// store is this worker's stripe of the striped result store.
	store *trace.StoreOf[A]

	ring    replyRing[A]
	scratch []dispatchedReply[A]
	buf     [4096]byte

	// Batched reads (Config.Batch > 1 on a BatchReader handle): ReadBatch
	// fills the worker's preallocated buffer arena bufs and the per-packet
	// lengths in sizes. All nil when unbatched.
	batch BatchReader
	bufs  [][]byte
	sizes []int
}

// wake releases the owner wherever it is blocked: inside its reader
// (waiting for packets) or on its own parker (post-EOF join). Unpark
// signals are retained, so over-waking only costs a spurious wakeup.
func (w *recvWorkerOf[A]) wake() {
	w.reader.Wake()
	w.s.clock.Unpark(w.parker)
}

// drain processes every reply currently queued for this worker.
func (w *recvWorkerOf[A]) drain() {
	w.scratch = w.ring.drainInto(w.scratch[:0])
	for i := range w.scratch {
		d := &w.scratch[i]
		w.s.processReply(w.store, d.block, &d.reply)
	}
}

// loop is the worker body: drain dispatched replies, read one packet,
// parse and dispatch it; on EOF, join the termination protocol described
// at the top of the file.
func (w *recvWorkerOf[A]) loop() {
	s := w.s
	for {
		w.drain()
		var err error
		if w.batch != nil {
			var k int
			k, err = w.batch.ReadBatch(w.bufs, w.sizes)
			for i := 0; i < k; i++ {
				w.handlePacket(w.bufs[i][:w.sizes[i]])
			}
			// k == 0 with a nil err is a wake interrupt (or a polling
			// transport with nothing ready); the top-of-loop drain picks
			// up whatever the wake dispatched.
		} else {
			var n int
			n, err = w.reader.ReadPacket(w.buf[:])
			if n > 0 {
				w.handlePacket(w.buf[:n])
			}
		}
		if err != nil {
			if err != io.EOF {
				s.readErrors.Add(1)
			}
			break
		}
	}

	// This reader is finished: all its pushes are visible before the
	// counter increment below. The last reader to finish wakes every
	// worker so their final drains run.
	if int(s.recvEOF.Add(1)) == len(s.recvWorkers) {
		for _, o := range s.recvWorkers {
			o.wake()
		}
	}
	for int(s.recvEOF.Load()) < len(s.recvWorkers) {
		w.drain()
		s.clock.Park(w.parker, time.Time{})
	}
	w.drain()
}

// handlePacket parses one raw response and applies block-affinity
// dispatch: replies for blocks this worker owns are processed inline,
// the rest are pushed to the owner's ring.
func (w *recvWorkerOf[A]) handlePacket(pkt []byte) {
	s := w.s
	if block, r, ok := s.parseResponse(pkt); ok {
		if owner := s.recvWorkers[block%len(s.recvWorkers)]; owner != w {
			owner.ring.push(dispatchedReply[A]{block: block, reply: r})
			owner.wake()
		} else {
			s.processReply(w.store, block, &r)
		}
	}
}
