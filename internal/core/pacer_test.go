package core

import (
	"math"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
)

// pacedRate issues n pace() calls against p and returns the achieved rate
// in packets per second of virtual time.
func pacedRate(v *simclock.Virtual, p *pacer, n int) float64 {
	start := v.Now()
	for i := 0; i < n; i++ {
		p.pace()
	}
	elapsed := v.Now().Sub(start)
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(n) / elapsed.Seconds()
}

// TestPacerRate: the achieved rate must be within 1% of Config.PPS on the
// virtual clock, including rates that don't divide evenly into the ~5 ms
// batch quantum.
func TestPacerRate(t *testing.T) {
	for _, pps := range []int{50, 333, 9_999, 50_000, 100_000, 123_456} {
		v := simclock.NewVirtual(time.Unix(0, 0))
		v.AddActor()
		p := newPacer(v, pps)
		rate := pacedRate(v, &p, 2*pps) // two seconds' worth of probes
		v.DoneActor()
		if err := math.Abs(rate-float64(pps)) / float64(pps); err > 0.01 {
			t.Errorf("pps=%d: achieved %.1f pps (%.2f%% off target)", pps, rate, 100*err)
		}
	}
}

// oversleeper models scheduler overshoot: every sleep runs 10% long. The
// old relative pacer (sleep a fixed interval per batch) accumulated that
// overshoot as rate drift — 10% oversleep meant ~9% under the target rate.
// Absolute-deadline pacing must absorb it.
type oversleeper struct {
	simclock.Clock
}

func (o oversleeper) Sleep(d time.Duration) { o.Clock.Sleep(d + d/10) }

func TestPacerAbsorbsOversleep(t *testing.T) {
	const pps = 50_000
	v := simclock.NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := newPacer(oversleeper{v}, pps)
	start := v.Now()
	const probes = 10 * pps
	for i := 0; i < probes; i++ {
		p.pace()
	}
	rate := float64(probes) / v.Now().Sub(start).Seconds()
	if err := math.Abs(rate-pps) / pps; err > 0.01 {
		t.Fatalf("achieved %.1f pps under 10%% oversleep, want %d ±1%%", rate, pps)
	}
}

// TestPacerResetDropsIdleBudget: idle time (round gaps, drain waits) must
// not be banked as sending budget; after reset, a second's worth of
// probes still takes about a second.
func TestPacerResetDropsIdleBudget(t *testing.T) {
	const pps = 50_000
	v := simclock.NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := newPacer(v, pps)
	// Anchor the pacer with one full batch, then sit out a round gap.
	for i := 0; i < p.batch; i++ {
		p.pace()
	}
	v.Sleep(time.Second)
	p.reset()
	start := v.Now()
	for i := 0; i < pps; i++ {
		p.pace()
	}
	if elapsed := v.Now().Sub(start); elapsed < 990*time.Millisecond {
		t.Fatalf("1s of probes paced in %v after idle+reset: idle time was repaid as a burst", elapsed)
	}
}

// TestPacerUnthrottled: pps <= 0 must never sleep.
func TestPacerUnthrottled(t *testing.T) {
	v := simclock.NewVirtual(time.Unix(0, 0))
	v.AddActor()
	defer v.DoneActor()
	p := newPacer(v, 0)
	start := v.Now()
	for i := 0; i < 100_000; i++ {
		p.pace()
	}
	if elapsed := v.Now().Sub(start); elapsed != 0 {
		t.Fatalf("unthrottled pacer advanced the clock by %v", elapsed)
	}
}
