package netsim

import (
	"sync"
	"testing"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

// TestConnConcurrentWriters: WritePacket must be safe under several
// concurrent senders sharing one Conn (run with -race). Every probe's
// response must still come out of ReadPacket exactly once.
func TestConnConcurrentWriters(t *testing.T) {
	u := NewSyntheticUniverse(1 << 10)
	p := DefaultParams(3)
	p.BaseRTT, p.PerHopRTT, p.JitterRTT = 0, 0, 0 // immediately deliverable
	p.ICMPRateLimitPPS = 0
	topo := NewTopology(u, p)
	n := New(topo, simclock.NewReal())
	conn := n.NewConn()

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var pkt [128]byte
			for i := 0; i < perWriter; i++ {
				blk := (w*perWriter + i) % u.NumBlocks()
				dst := u.BlockAddr(blk) | uint32(1+i%254)
				ln := probe.BuildFlashProbe(pkt[:], topo.Vantage(), dst, uint8(1+i%32),
					false, 0, 0, probe.TracerouteDstPort)
				if err := conn.WritePacket(pkt[:ln]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := n.Stats.ProbesSent.Load(); got != writers*perWriter {
		t.Fatalf("ProbesSent=%d, want %d", got, writers*perWriter)
	}
	var buf [MaxResponseLen]byte
	read := uint64(0)
	for conn.Pending() > 0 {
		if _, err := conn.ReadPacket(buf[:]); err != nil {
			t.Fatal(err)
		}
		read++
	}
	if read == 0 {
		t.Fatal("no responses delivered")
	}
	if want := n.Stats.Responses.Load(); read != want {
		t.Fatalf("read %d responses, network generated %d", read, want)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
}

// The inbox heap's (deliverAt, seq) ordering property moved to
// internal/simnet with the heap itself (TestInboxHeapOrdering).
