package netsim

import "github.com/flashroute/flashroute/internal/simnet"

// Impairments is the shared packet-impairment model (loss, bursts,
// duplication, reordering, jitter), aliased here so IPv4 call sites keep
// reading netsim.Impairments. The model itself — and the deterministic
// per-connection draw stream — lives in the family-independent simnet
// package, where netsim6 picks it up too.
type Impairments = simnet.Impairments
