package netsim

import "github.com/flashroute/flashroute/internal/simnet"

// Impairments is the shared packet-impairment model (loss, bursts,
// duplication, reordering, jitter), aliased here so IPv4 call sites keep
// reading netsim.Impairments. The model itself — and the deterministic
// per-connection draw stream — lives in the family-independent simnet
// package, where netsim6 picks it up too.
type Impairments = simnet.Impairments

// FaultWindow and FaultKind describe the deterministic transport-fault
// windows (Impairments.Faults), aliased for the same reason.
type (
	FaultWindow = simnet.FaultWindow
	FaultKind   = simnet.FaultKind
)

const (
	FaultWriteError = simnet.FaultWriteError
	FaultReadStall  = simnet.FaultReadStall
	FaultFlap       = simnet.FaultFlap
)
