package netsim

import (
	"io"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

func TestImpairmentsEnabled(t *testing.T) {
	var zero Impairments
	if zero.Enabled() {
		t.Error("zero value must be disabled")
	}
	cases := []Impairments{
		{LossProb: 0.01},
		{GEGoodToBad: 0.01},
		{DupProb: 0.01},
		{ReorderProb: 0.5, ReorderWindow: time.Millisecond},
		{ExtraJitter: time.Millisecond},
	}
	for i, im := range cases {
		if !im.Enabled() {
			t.Errorf("case %d: %+v should be enabled", i, im)
		}
	}
	// A reordering probability without a window (or vice versa) is inert.
	if (&Impairments{ReorderProb: 0.5}).Enabled() {
		t.Error("ReorderProb without ReorderWindow should be inert")
	}
}

// The draw-level impairment properties (loss rate, GE burst statistics,
// stream determinism) moved to internal/simnet with the state itself;
// the tests below cover the netsim Conn's use of that state.

// responsiveDest finds a gateway that answers UDP-to-high-port directly,
// so each probe deterministically yields exactly one response on a
// perfect network.
func responsiveDest(t *testing.T, topo *Topology, blocks int) uint32 {
	t.Helper()
	for blk := 0; blk < blocks; blk++ {
		if gw := topo.GatewayOfBlock(blk); gw != 0 {
			s := &topo.stubs[topo.blockStub[blk]]
			if s.midReset || s.midRewrite {
				continue
			}
			if topo.Resolve(gw, 32, 0, 0, probe.ProtoUDP).Kind != HopDestUDP {
				continue
			}
			return gw
		}
	}
	t.Fatal("no responsive gateway found")
	return 0
}

// TestImpairConnLossAndDup drives packets end to end: full loss delivers
// nothing, full duplication delivers four copies of a reply (probe
// duplicated on the way out, each response duplicated on the way back).
func TestImpairConnLossAndDup(t *testing.T) {
	build := func(im Impairments) (*Net, *Conn, uint32, *simclock.Virtual) {
		u := NewSyntheticUniverse(1024)
		p := DefaultParams(5)
		p.Impair = im
		topo := NewTopology(u, p)
		clock := simclock.NewVirtual(time.Unix(0, 0))
		n := New(topo, clock)
		return n, n.NewConn(), responsiveDest(t, topo, 1024), clock
	}

	var pkt [128]byte

	// Total loss: the probe is counted lost, nothing is scheduled.
	n, conn, dst, clock := build(Impairments{LossProb: 1})
	clock.AddActor()
	ln := probe.BuildFlashProbe(pkt[:], n.Topo().Vantage(), dst, 32, false, 0, 0, probe.TracerouteDstPort)
	if err := conn.WritePacket(pkt[:ln]); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats.ProbesLost.Load(); got != 1 {
		t.Errorf("ProbesLost = %d, want 1", got)
	}
	if conn.Pending() != 0 {
		t.Errorf("lost probe scheduled %d responses", conn.Pending())
	}
	clock.DoneActor()

	// Total duplication: 2 probe copies × 2 response copies = 4 reads.
	n, conn, dst, clock = build(Impairments{DupProb: 1})
	clock.AddActor()
	ln = probe.BuildFlashProbe(pkt[:], n.Topo().Vantage(), dst, 32, false, 0, 0, probe.TracerouteDstPort)
	if err := conn.WritePacket(pkt[:ln]); err != nil {
		t.Fatal(err)
	}
	if conn.Pending() != 4 {
		t.Fatalf("DupProb=1 scheduled %d responses, want 4", conn.Pending())
	}
	var buf [MaxResponseLen]byte
	for i := 0; i < 4; i++ {
		rn, err := conn.ReadPacket(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := probe.ParseResponse(buf[:rn])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Hop != dst {
			t.Errorf("copy %d from %#x, want %#x", i, resp.Hop, dst)
		}
	}
	if got := n.Stats.Duplicates.Load(); got != 3 {
		t.Errorf("Duplicates = %d, want 3 (1 probe + 2 responses)", got)
	}
	conn.Close()
	if _, err := conn.ReadPacket(buf[:]); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
	clock.DoneActor()
}

// TestImpairConnReorder: with reordering forced on, responses still all
// arrive (loss-free), each delayed within the window and counted.
func TestImpairConnReorder(t *testing.T) {
	u := NewSyntheticUniverse(1024)
	p := DefaultParams(9)
	p.JitterRTT = 0
	p.Impair = Impairments{ReorderProb: 1, ReorderWindow: 50 * time.Millisecond}
	topo := NewTopology(u, p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(topo, clock)
	conn := n.NewConn()
	dst := responsiveDest(t, topo, 1024)

	clock.AddActor()
	defer clock.DoneActor()

	const probes = 50
	var pkt [128]byte
	for i := 0; i < probes; i++ {
		ln := probe.BuildFlashProbe(pkt[:], topo.Vantage(), dst, 32, false,
			clock.Elapsed(), 0, probe.TracerouteDstPort)
		if err := conn.WritePacket(pkt[:ln]); err != nil {
			t.Fatal(err)
		}
	}
	delivered := int(n.Stats.Responses.Load())
	if lost := n.Stats.RepliesLost.Load() + n.Stats.ProbesLost.Load(); lost != 0 {
		t.Fatalf("reorder-only impairment lost %d packets", lost)
	}
	if got := int(n.Stats.Reordered.Load()); got != delivered {
		t.Errorf("Reordered = %d, want %d (every delivered copy)", got, delivered)
	}

	// Delivery times must stay within base RTT + window, and ReadPacket
	// must hand them out in nondecreasing virtual time.
	var buf [MaxResponseLen]byte
	var last time.Duration
	maxRTT := p.BaseRTT + 33*p.PerHopRTT + p.Impair.ReorderWindow
	for i := 0; i < delivered; i++ {
		if _, err := conn.ReadPacket(buf[:]); err != nil {
			t.Fatal(err)
		}
		at := clock.Elapsed()
		if at < last {
			t.Fatalf("delivery %d at %v before previous %v", i, at, last)
		}
		last = at
	}
	if last > maxRTT {
		t.Errorf("last delivery at %v exceeds RTT+window bound %v", last, maxRTT)
	}
}
