package netsim

import "time"

// Params are the knobs of the synthetic topology and network behaviour.
// Defaults are calibrated so that scaled-down universes reproduce the
// statistical structure the paper measures on the live Internet: route
// length distribution centered in the mid-teens, ~4% of random per-block
// representatives responding to preprobes, hitlist representatives ~2.5x
// more responsive and one hop or more closer, and roughly one unique
// responding interface per handful of blocks.
type Params struct {
	// Seed drives every deterministic choice in the topology. Two
	// topologies with equal Params are identical.
	Seed int64

	// Infrastructure shape. Regions and ProvidersPerRegion autoscale with
	// the universe size when left zero, keeping the infrastructure a
	// realistic minority of all interfaces at any scale.
	CoreHops           int // hops shared by every route, nearest the VP
	Regions            int
	RegionHopsMin      int
	RegionHopsMax      int
	ProvidersPerRegion int
	ProviderHopsMin    int
	ProviderHopsMax    int
	// DiamondProb is the fraction of provider paths containing a per-flow
	// load-balancer diamond (Figure 2); RegionDiamondProb likewise for
	// region paths. DiamondWidthMax bounds the number of parallel
	// branches.
	DiamondProb       float64
	RegionDiamondProb float64
	DiamondWidthMax   int

	// Stub structure. Stubs cover 2^k contiguous blocks, k uniform in
	// [0, StubSizeLogMax] — the supernets that make proximity-span
	// prediction work (§3.3.3).
	StubSizeLogMax int
	// RoutedFraction is the fraction of blocks belonging to a routed stub;
	// the rest have routes that die inside the provider (unresponsive
	// tails, §3.2.1).
	RoutedFraction float64
	// InteriorMax is the maximum number of interior routers per stub,
	// behind the gateway.
	InteriorMax int
	// ApplianceProb is the fraction of routed blocks fronted by their own
	// edge appliance (router/firewall/NAT box at the block periphery, at
	// host octet 1) — the devices the census hitlist preferentially
	// settles on, shielding everything behind them (§5.1).
	ApplianceProb float64
	// BalancedHopProb is the fraction of occupied blocks whose last hop
	// toward the hosts is a per-flow balanced router pair; only one of
	// the two is visible to a destination's default flow, so the other is
	// discoverable only by varying source ports — the interfaces
	// discovery-optimized mode exists for (§5.2).
	BalancedHopProb float64
	// EdgeUnreachProb is the probability a stub edge device (gateway or
	// appliance), probed as the destination, answers UDP-to-high-port
	// with port unreachable (firewalls mostly drop it; this calibrates
	// the paper's 10% hitlist preprobe success, §4.1.3).
	EdgeUnreachProb float64
	// LoopStubProb is the fraction of routed stubs that forward packets
	// for nonexistent addresses back toward the ISP, creating forwarding
	// loops (§5.1).
	LoopStubProb float64

	// Responsiveness.
	SilentRouterProb   float64 // infrastructure routers that never answer
	SilentInteriorProb float64 // stub interior routers that never answer
	// TCPQuietRouterProb is the extra fraction of routers that answer UDP
	// probes but not TCP ones — why UDP scans discover more interfaces
	// ([16], §4.2.1).
	TCPQuietRouterProb float64
	// OccupiedBlockProb is the fraction of blocks containing live hosts;
	// OccupiedDensityMin/Max bound the fraction of live host octets
	// within an occupied block.
	OccupiedBlockProb  float64
	OccupiedDensityMin float64
	OccupiedDensityMax float64
	// HostPingProb is the probability a live host answers ICMP echo (used
	// for hitlist construction); HostTCPRSTProb the probability it
	// answers an unsolicited TCP ACK with RST, relative to answering UDP
	// (UDP probes elicit more responses, §4.2.1 / [16]).
	HostPingProb   float64
	HostTCPRSTProb float64
	// RouterUnreachProb is the probability a router interface, when it is
	// itself the probe destination, answers port-unreachable.
	RouterUnreachProb float64

	// Path dynamics and middleboxes.
	// DynamicBlockProb blocks flap between two routes differing by one
	// hop, switching every DynamicEpoch (route dynamicity, §3.3.2).
	DynamicBlockProb float64
	DynamicEpoch     time.Duration
	// MiddleboxTTLResetProb is the fraction of stubs whose entrance
	// resets the TTL of transiting probes to MiddleboxResetValue
	// (§3.3.2); AddrRewriteStubProb the fraction whose entrance rewrites
	// destination addresses (§5.3).
	MiddleboxTTLResetProb float64
	MiddleboxResetValue   uint8
	AddrRewriteStubProb   float64

	// Network behaviour.
	// ICMPRateLimitPPS is the per-interface ICMP response budget per
	// second ([19]: most routers limit to 500/s or less).
	ICMPRateLimitPPS int
	BaseRTT          time.Duration
	PerHopRTT        time.Duration
	JitterRTT        time.Duration

	// Impair models live-Internet packet pathologies (loss, burst loss,
	// duplication, reordering, jitter; see Impairments). The zero value —
	// the default — is the perfect network.
	Impair Impairments
}

// DefaultParams returns the calibrated defaults for the given seed.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:              seed,
		CoreHops:          3,
		Regions:           0, // autoscale
		RegionHopsMin:     2,
		RegionHopsMax:     6,
		ProviderHopsMin:   4,
		ProviderHopsMax:   11,
		DiamondProb:       0.40,
		RegionDiamondProb: 0.25,
		DiamondWidthMax:   3,

		StubSizeLogMax:  6,
		RoutedFraction:  0.72,
		InteriorMax:     3,
		ApplianceProb:   0.015,
		BalancedHopProb: 0.10,
		LoopStubProb:    0.012,

		SilentRouterProb:   0.18,
		SilentInteriorProb: 0.30,
		TCPQuietRouterProb: 0.035,
		EdgeUnreachProb:    0.22,
		OccupiedBlockProb:  0.11,
		OccupiedDensityMin: 0.10,
		OccupiedDensityMax: 0.60,
		HostPingProb:       0.90,
		HostTCPRSTProb:     0.90,
		RouterUnreachProb:  0.95,

		DynamicBlockProb:      0.14,
		DynamicEpoch:          37 * time.Second,
		MiddleboxTTLResetProb: 0.033,
		MiddleboxResetValue:   32,
		AddrRewriteStubProb:   0.002,

		ICMPRateLimitPPS: 500,
		BaseRTT:          10 * time.Millisecond,
		PerHopRTT:        2 * time.Millisecond,
		JitterRTT:        30 * time.Millisecond,
	}
}
