// Package netsim is the Internet substrate of this reproduction: a seeded,
// deterministic simulation of the IPv4 routing topology as seen from a
// single vantage point, together with a packet-level network that delivers
// real serialized probe packets to it and returns real serialized ICMP
// responses on a virtual (or real) clock.
//
// The paper evaluates FlashRoute against the live Internet; this package
// substitutes a synthetic Internet with the structural properties every
// probing decision depends on (see DESIGN.md §1):
//
//   - routes from the vantage point form a tree that converges close to
//     the source (Doubletree's observation, paper §3.2.1, Figure 1);
//   - stub networks advertise supernets, so adjacent /24 blocks share hop
//     distance (the basis of proximity-span prediction, §3.3.3);
//   - per-flow load balancers create diamonds whose alternative branches
//     are only visible to distinct flow identifiers (Figure 2, §5.2);
//   - routers may be persistently silent; nonexistent hosts produce
//     unresponsive route tails; a small fraction of stubs loop packets
//     for nonexistent addresses back toward the ISP (§5.1);
//   - middleboxes occasionally reset TTLs (§3.3.2) or rewrite destination
//     addresses (§5.3) in flight;
//   - every responding interface enforces an ICMP rate limit (§4.2.2).
package netsim

import (
	"fmt"
	"sort"
	"strings"
)

// Universe is the set of /24 blocks a scan covers, with a dense index.
// FlashRoute's control structure is an array indexed by /24 prefix (paper
// §3.4, Figure 5); Universe provides the mapping between that dense index
// and real addresses, for universes given as CIDR ranges or synthesized.
type Universe struct {
	ranges []blockRange
	cum    []int // cumulative block counts, len == len(ranges)
	total  int
}

type blockRange struct {
	firstPrefix uint32 // address>>8 of the first /24 block
	count       int
}

// SyntheticBase is the first address of synthetic universes: 4.0.0.0.
const SyntheticBase = uint32(0x04000000)

// NewSyntheticUniverse returns a universe of n contiguous /24 blocks
// starting at SyntheticBase. n may be up to 2^22 (a quarter of the IPv4
// /24 space) without colliding with the simulator's infrastructure
// address ranges.
func NewSyntheticUniverse(n int) *Universe {
	if n <= 0 || n > 1<<22 {
		panic(fmt.Sprintf("netsim: synthetic universe size %d out of range (1..2^22)", n))
	}
	return &Universe{
		ranges: []blockRange{{firstPrefix: SyntheticBase >> 8, count: n}},
		cum:    []int{n},
		total:  n,
	}
}

// ParseUniverse builds a universe from CIDR strings like "10.0.0.0/8".
// Prefix lengths longer than /24 are rejected; blocks are deduplicated
// and ordered by address.
func ParseUniverse(cidrs []string) (*Universe, error) {
	type span struct{ first, last uint32 } // prefix space, inclusive
	var spans []span
	for _, c := range cidrs {
		addr, plen, err := parseCIDR(c)
		if err != nil {
			return nil, err
		}
		if plen > 24 {
			return nil, fmt.Errorf("netsim: CIDR %q: prefix length must be 0..24", c)
		}
		mask := uint32(0xffffffff) << (32 - plen)
		if plen == 0 {
			mask = 0
		}
		base := addr & mask
		nBlocks := 1 << (24 - plen)
		spans = append(spans, span{first: base >> 8, last: base>>8 + uint32(nBlocks) - 1})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].first < spans[j].first })
	// Merge overlaps.
	var merged []span
	for _, s := range spans {
		if len(merged) > 0 && s.first <= merged[len(merged)-1].last+1 {
			if s.last > merged[len(merged)-1].last {
				merged[len(merged)-1].last = s.last
			}
			continue
		}
		merged = append(merged, s)
	}
	u := &Universe{}
	for _, s := range merged {
		n := int(s.last - s.first + 1)
		u.ranges = append(u.ranges, blockRange{firstPrefix: s.first, count: n})
		u.total += n
		u.cum = append(u.cum, u.total)
	}
	if u.total == 0 {
		return nil, fmt.Errorf("netsim: empty universe")
	}
	return u, nil
}

// parseCIDR strictly parses "a.b.c.d/len": four decimal octets, a slash,
// a decimal prefix length, nothing else. The previous fmt.Sscanf-based
// parse silently accepted trailing garbage ("10.0.0.0/8x" parsed as /8),
// which matters now that user-supplied ranges reach this code through a
// network API: every malformed input must be an error, not a scan of the
// wrong universe.
func parseCIDR(c string) (addr uint32, plen int, err error) {
	ipStr, plStr, ok := strings.Cut(c, "/")
	if !ok {
		return 0, 0, fmt.Errorf("netsim: bad CIDR %q: missing prefix length", c)
	}
	octets := strings.Split(ipStr, ".")
	if len(octets) != 4 {
		return 0, 0, fmt.Errorf("netsim: bad CIDR %q: address must be four octets", c)
	}
	for _, o := range octets {
		v, ok := parseDec(o, 255)
		if !ok {
			return 0, 0, fmt.Errorf("netsim: bad CIDR %q: octet %q out of range", c, o)
		}
		addr = addr<<8 | uint32(v)
	}
	plen, ok = parseDec(plStr, 32)
	if !ok {
		return 0, 0, fmt.Errorf("netsim: bad CIDR %q: bad prefix length %q", c, plStr)
	}
	return addr, plen, nil
}

// parseDec parses an unsigned decimal with no sign, no spaces and no
// leftovers, bounded by max.
func parseDec(s string, max int) (int, bool) {
	if s == "" || len(s) > 3 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		n = n*10 + int(d-'0')
	}
	return n, n <= max
}

// NumBlocks returns the number of /24 blocks in the universe.
func (u *Universe) NumBlocks() int { return u.total }

// BlockAddr returns the base address (host octet zero) of block i.
func (u *Universe) BlockAddr(i int) uint32 {
	if i < 0 || i >= u.total {
		panic(fmt.Sprintf("netsim: block index %d out of range [0,%d)", i, u.total))
	}
	lo := 0
	for r := 0; r < len(u.ranges); r++ {
		if i < u.cum[r] {
			return (u.ranges[r].firstPrefix + uint32(i-lo)) << 8
		}
		lo = u.cum[r]
	}
	panic("unreachable")
}

// BlockIndex returns the dense index of the block containing addr, and
// whether the address is inside the universe.
func (u *Universe) BlockIndex(addr uint32) (int, bool) {
	prefix := addr >> 8
	lo := 0
	for r := 0; r < len(u.ranges); r++ {
		br := u.ranges[r]
		if prefix >= br.firstPrefix && prefix < br.firstPrefix+uint32(br.count) {
			return lo + int(prefix-br.firstPrefix), true
		}
		lo = u.cum[r]
	}
	return 0, false
}
