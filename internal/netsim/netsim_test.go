package netsim

import (
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

func testTopo(t *testing.T, blocks int, seed int64) *Topology {
	t.Helper()
	u := NewSyntheticUniverse(blocks)
	return NewTopology(u, DefaultParams(seed))
}

func TestUniverseSynthetic(t *testing.T) {
	u := NewSyntheticUniverse(1000)
	if u.NumBlocks() != 1000 {
		t.Fatalf("blocks=%d", u.NumBlocks())
	}
	for _, i := range []int{0, 1, 999} {
		addr := u.BlockAddr(i)
		if addr&0xff != 0 {
			t.Fatalf("block base %#x has nonzero host octet", addr)
		}
		j, ok := u.BlockIndex(addr | 37)
		if !ok || j != i {
			t.Fatalf("BlockIndex(BlockAddr(%d)|37) = %d,%v", i, j, ok)
		}
	}
	if _, ok := u.BlockIndex(0x01000000); ok {
		t.Fatal("address outside universe should not resolve")
	}
}

func TestUniverseParse(t *testing.T) {
	u, err := ParseUniverse([]string{"10.0.0.0/16", "10.1.0.0/16", "192.168.5.0/24"})
	if err != nil {
		t.Fatal(err)
	}
	// Two adjacent /16s merge into 512 blocks, plus one /24.
	if u.NumBlocks() != 513 {
		t.Fatalf("blocks=%d want 513", u.NumBlocks())
	}
	i, ok := u.BlockIndex(0x0A01FF01) // 10.1.255.1
	if !ok || i != 511 {
		t.Fatalf("BlockIndex=%d,%v want 511", i, ok)
	}
	i, ok = u.BlockIndex(0xC0A80563) // 192.168.5.99
	if !ok || i != 512 {
		t.Fatalf("BlockIndex=%d,%v want 512", i, ok)
	}
	if _, err := ParseUniverse([]string{"10.0.0.0/28"}); err == nil {
		t.Fatal("prefix longer than /24 must be rejected")
	}
	if _, err := ParseUniverse([]string{"bogus"}); err == nil {
		t.Fatal("junk must be rejected")
	}
}

// TestUniverseParseStrict: regression for the Sscanf-era parser, which
// accepted trailing garbage ("10.0.0.0/8x" scanned as /8) and signed or
// padded numerals. Every malformed string must be an error — these now
// arrive from a network API, where a silently mis-parsed range means
// scanning the wrong universe.
func TestUniverseParseStrict(t *testing.T) {
	for _, bad := range []string{
		"",
		"10.0.0.0",      // no prefix length
		"10.0.0.0/",     // empty prefix length
		"10.0.0.0/8x",   // trailing garbage after the length
		"10.0.0.0/8 ",   // trailing space
		" 10.0.0.0/8",   // leading space
		"10.0.0.0/+8",   // signed length
		"10.0.0.0/-8",   // negative length
		"10.0.0.0/33",   // length out of range
		"10.0.0.0/8/8",  // second slash
		"10.0.0/8",      // three octets
		"10.0.0.0.0/8",  // five octets
		"10.0.0.x/8",    // non-numeric octet
		"256.0.0.0/8",   // octet out of range
		"-1.0.0.0/8",    // signed octet
		"10.0.0.1e1/8",  // exponent notation
		"10.0.0.0/24\n", // trailing newline
		"0x0a.0.0.0/8",  // hex octet
		"1000.0.0.0/8",  // four-digit octet
		"10..0.0/8",     // empty octet
	} {
		if _, err := ParseUniverse([]string{bad}); err == nil {
			t.Errorf("ParseUniverse(%q) accepted, want error", bad)
		}
	}
	for _, good := range []string{"0.0.0.0/0", "10.0.0.0/8", "192.168.5.0/24", "4.0.0.0/16"} {
		if _, err := ParseUniverse([]string{good}); err != nil {
			t.Errorf("ParseUniverse(%q): %v", good, err)
		}
	}
}

func TestUniverseIndexRoundTripProperty(t *testing.T) {
	u, err := ParseUniverse([]string{"10.0.0.0/12", "172.16.0.0/14"})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw uint32) bool {
		i := int(raw) % u.NumBlocks()
		if i < 0 {
			i = -i
		}
		j, ok := u.BlockIndex(u.BlockAddr(i) | 200)
		return ok && j == i
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyDeterminism(t *testing.T) {
	a := testTopo(t, 2048, 7)
	b := testTopo(t, 2048, 7)
	for blk := 0; blk < 2048; blk += 17 {
		dst := a.U.BlockAddr(blk) | 23
		for ttl := uint8(1); ttl <= 32; ttl++ {
			ha := a.Resolve(dst, ttl, 5, 0, probe.ProtoUDP)
			hb := b.Resolve(dst, ttl, 5, 0, probe.ProtoUDP)
			if ha != hb {
				t.Fatalf("nondeterministic at blk=%d ttl=%d: %+v vs %+v", blk, ttl, ha, hb)
			}
		}
	}
}

// TestRouteStructure walks routes hop by hop and checks the fundamental
// TTL semantics: router hops strictly up to the destination's distance,
// destination reached at and beyond it, with the right residual TTL.
func TestRouteStructure(t *testing.T) {
	topo := testTopo(t, 4096, 42)
	checked := 0
	for blk := 0; blk < 4096 && checked < 300; blk++ {
		dst := topo.U.BlockAddr(blk) | 77
		d := topo.DistanceNow(dst, 0)
		if d == 0 || !topo.HostExists(dst) {
			continue
		}
		s := &topo.stubs[topo.blockStub[blk]]
		if s.midReset || s.midRewrite {
			continue
		}
		checked++
		for ttl := uint8(1); ttl < d; ttl++ {
			h := topo.Resolve(dst, ttl, 1, 0, probe.ProtoUDP)
			if h.Kind != HopRouter && h.Kind != HopSilentRouter {
				t.Fatalf("blk=%d ttl=%d (dist %d): want router hop, got %+v", blk, ttl, d, h)
			}
			if h.Residual != 1 {
				t.Fatalf("router hop residual=%d", h.Residual)
			}
		}
		for _, ttl := range []uint8{d, d + 1, 32} {
			if ttl < d {
				continue
			}
			h := topo.Resolve(dst, ttl, 1, 0, probe.ProtoUDP)
			if !h.Kind.Terminal() {
				t.Fatalf("blk=%d ttl=%d (dist %d): want terminal, got %+v", blk, ttl, d, h)
			}
			if h.Kind == HopDestUDP {
				if got := ttl - h.Residual + 1; got != d {
					t.Fatalf("residual arithmetic: ttl=%d residual=%d dist=%d", ttl, h.Residual, d)
				}
				if h.Addr != dst {
					t.Fatalf("dest responder %#x != dst %#x", h.Addr, dst)
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("too few live destinations checked: %d", checked)
	}
}

// TestOneProbeDistanceMeasurement verifies the paper's §3.3.1 mechanism
// end to end at the topology level: a single TTL-32 probe to a responsive
// destination yields its exact hop distance.
func TestOneProbeDistanceMeasurement(t *testing.T) {
	topo := testTopo(t, 4096, 3)
	n := 0
	for blk := 0; blk < 4096; blk++ {
		dst := topo.U.BlockAddr(blk) | 1 // gateways: reliably responsive
		d := topo.DistanceNow(dst, 0)
		if d == 0 {
			continue
		}
		s := &topo.stubs[topo.blockStub[blk]]
		if s.midReset {
			continue
		}
		h := topo.Resolve(dst, 32, 9, 0, probe.ProtoUDP)
		if h.Kind != HopDestUDP {
			continue
		}
		if got := uint8(32) - h.Residual + 1; got != d {
			t.Fatalf("blk=%d: measured %d, true %d", blk, got, d)
		}
		n++
	}
	if n < 100 {
		t.Fatalf("too few gateways measured: %d", n)
	}
}

func TestFlowDependentDiamonds(t *testing.T) {
	topo := testTopo(t, 8192, 11)
	diverged := false
	for blk := 0; blk < 8192 && !diverged; blk += 3 {
		dst := topo.U.BlockAddr(blk) | 9
		for ttl := uint8(4); ttl <= 16; ttl++ {
			h1 := topo.Resolve(dst, ttl, 100, 0, probe.ProtoUDP)
			h2 := topo.Resolve(dst, ttl, 101, 0, probe.ProtoUDP)
			// Same flow must always agree.
			h1b := topo.Resolve(dst, ttl, 100, 0, probe.ProtoUDP)
			if h1 != h1b {
				t.Fatal("same flow resolved differently")
			}
			if h1.Addr != h2.Addr && h1.Addr != 0 && h2.Addr != 0 {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("no load-balancer diamond observed across flows")
	}
}

func TestDynamicRouteFlaps(t *testing.T) {
	topo := testTopo(t, 8192, 5)
	p := topo.P
	flapped := 0
	for blk := 0; blk < 8192; blk++ {
		if topo.blockFlags[blk]&blockDynamic == 0 {
			continue
		}
		dst := topo.U.BlockAddr(blk) | 50
		d0 := topo.DistanceNow(dst, 0)
		if d0 == 0 {
			continue
		}
		for e := 1; e < 8; e++ {
			d := topo.DistanceNow(dst, time.Duration(e)*p.DynamicEpoch)
			if d != d0 {
				if d != d0+1 && d != d0-1 {
					t.Fatalf("flap changed distance by more than 1: %d -> %d", d0, d)
				}
				flapped++
				break
			}
		}
	}
	if flapped == 0 {
		t.Fatal("no dynamic block ever flapped")
	}
}

func TestLoopyStubsProduceLoops(t *testing.T) {
	u := NewSyntheticUniverse(16384)
	p := DefaultParams(21)
	p.LoopStubProb = 0.05 // raise the rare behaviour so the test can see it
	topo := NewTopology(u, p)
	found := false
	for si := range topo.stubs {
		s := &topo.stubs[si]
		if !s.routed || !s.loopy {
			continue
		}
		// Probe a nonexistent host in the stub's first block.
		blk := int(s.firstBlock)
		var dst uint32
		for o := uint32(3); o < 250; o++ {
			cand := topo.U.BlockAddr(blk) | o
			if !topo.HostExists(cand) {
				dst = cand
				break
			}
		}
		if dst == 0 {
			continue
		}
		seen := map[uint32]uint8{}
		for ttl := uint8(1); ttl <= 32; ttl++ {
			h := topo.Resolve(dst, ttl, 1, 0, probe.ProtoUDP)
			if h.Kind == HopRouter || h.Kind == HopSilentRouter {
				if prev, ok := seen[h.Addr]; ok && prev != ttl {
					found = true
				}
				seen[h.Addr] = ttl
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no forwarding loop observed in loopy stubs")
	}
}

func TestMiddleboxRewriteQuotesDifferentDst(t *testing.T) {
	topo := testTopo(t, 65536, 13)
	found := false
	for si := range topo.stubs {
		s := &topo.stubs[si]
		if !s.routed || !s.midRewrite || s.midReset {
			continue
		}
		blk := int(s.firstBlock)
		for o := uint32(2); o < 254 && !found; o++ {
			dst := topo.U.BlockAddr(blk) | o
			// The rewritten address must exist for a response to come back.
			if !topo.HostExists(dst ^ 1) {
				continue
			}
			h := topo.Resolve(dst, 32, 1, 0, probe.ProtoUDP)
			if h.Kind == HopDestUDP && h.QuotedDst != dst {
				if h.QuotedDst != dst^1 {
					t.Fatalf("rewrite produced unexpected dst %#x", h.QuotedDst)
				}
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no rewrite-stub with live rewritten host in this seed (probabilistic)")
	}
}

// TestCalibration checks the topology's aggregate statistics against the
// bands the paper reports (see DESIGN.md): random representatives respond
// to preprobes at a few percent, distances center in the mid-teens, and a
// reasonable share of destinations sit beyond TTL 16.
func TestCalibration(t *testing.T) {
	const blocks = 32768
	topo := testTopo(t, blocks, 1)
	respRandom := 0
	distSum, distN, beyond16 := 0, 0, 0
	for blk := 0; blk < blocks; blk++ {
		oct := uint32(1 + topo.hash64(uint64(blk), 0xabc, 0)%254)
		dst := topo.U.BlockAddr(blk) | oct
		h := topo.Resolve(dst, 32, 1, 0, probe.ProtoUDP)
		if h.Kind == HopDestUDP {
			respRandom++
		}
		if d := topo.DistanceNow(dst, 0); d > 0 {
			distSum += int(d)
			distN++
			if d > 16 {
				beyond16++
			}
		}
	}
	frac := float64(respRandom) / blocks
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("random-rep response rate %.3f outside [0.02,0.10] (paper: ~0.04)", frac)
	}
	mean := float64(distSum) / float64(distN)
	if mean < 12 || mean > 20 {
		t.Errorf("mean distance %.1f outside [12,20]", mean)
	}
	fb := float64(beyond16) / float64(distN)
	if fb < 0.25 || fb > 0.75 {
		t.Errorf("fraction of destinations beyond TTL16 %.2f outside [0.25,0.75]", fb)
	}
}

func TestHitlistBiasPresent(t *testing.T) {
	topo := testTopo(t, 16384, 2)
	shorter, longer := 0, 0
	for blk := 0; blk < 16384; blk++ {
		gw := topo.GatewayOfBlock(blk)
		if gw == 0 || int(gw>>8)<<8 != int(topo.U.BlockAddr(blk)) {
			continue // only blocks that host their stub's gateway
		}
		oct := uint32(2 + topo.hash64(uint64(blk), 0xdef, 0)%252)
		rnd := topo.U.BlockAddr(blk) | oct
		if !topo.HostExists(rnd) {
			continue
		}
		dg := topo.DistanceNow(gw, 0)
		dr := topo.DistanceNow(rnd, 0)
		if dg < dr {
			shorter++
		} else if dg > dr {
			longer++
		}
	}
	if shorter <= longer*2 {
		t.Fatalf("gateway (hitlist-style) targets not closer: shorter=%d longer=%d", shorter, longer)
	}
}

func TestRateLimiting(t *testing.T) {
	u := NewSyntheticUniverse(64)
	p := DefaultParams(9)
	p.ICMPRateLimitPPS = 10
	topo := NewTopology(u, p)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(topo, clock)
	now := n.Elapsed()
	addr := topo.core[0]
	allowed := 0
	for i := 0; i < 25; i++ {
		if n.allowICMP(addr, now) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("allowed=%d want 10", allowed)
	}
	// New second: budget refreshes.
	if !n.allowICMP(addr, now+time.Second) {
		t.Fatal("budget should refresh next second")
	}
}

// TestConnEndToEnd drives a complete probe/response cycle over the virtual
// clock: build a real FlashRoute probe, write it, read the ICMP response,
// parse it, and confirm the encoding survives the round trip with a
// plausible RTT.
func TestConnEndToEnd(t *testing.T) {
	topo := testTopo(t, 1024, 123)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(topo, clock)
	conn := n.NewConn()

	// Find a gateway destination that answers UDP-to-high-port (edge
	// devices mostly drop it, so check the resolved response kind).
	var dst uint32
	var dist uint8
	for blk := 0; blk < 1024; blk++ {
		if gw := topo.GatewayOfBlock(blk); gw != 0 {
			s := &topo.stubs[topo.blockStub[blk]]
			if s.midReset || s.midRewrite {
				continue
			}
			if topo.Resolve(gw, 32, 0, 0, probe.ProtoUDP).Kind != HopDestUDP {
				continue
			}
			dst = gw
			dist = topo.DistanceNow(gw, 0)
			break
		}
	}
	if dst == 0 {
		t.Fatal("no responsive gateway found")
	}

	var pkt [128]byte
	ln := probe.BuildFlashProbe(pkt[:], topo.Vantage(), dst, 32, true, 0, 0, probe.TracerouteDstPort)

	clock.AddActor()
	defer clock.DoneActor()
	if err := conn.WritePacket(pkt[:ln]); err != nil {
		t.Fatal(err)
	}

	var buf [MaxResponseLen]byte
	rn, err := conn.ReadPacket(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := probe.ParseResponse(buf[:rn])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ICMP.IsUnreachable() {
		t.Fatalf("want port unreachable, got type %d", resp.ICMP.Type)
	}
	if resp.Hop != dst {
		t.Fatalf("responder %#x want %#x", resp.Hop, dst)
	}
	fi, err := probe.ParseFlashQuote(&resp.ICMP)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint8(32) - fi.ResidualTTL + 1; got != dist {
		t.Fatalf("measured distance %d want %d", got, dist)
	}
	if !fi.ChecksumMatches(0) {
		t.Fatal("checksum should match")
	}
	if !fi.Preprobe {
		t.Fatal("preprobe bit lost")
	}
	// RTT sanity: virtual time advanced by the modeled RTT.
	if e := clock.Elapsed(); e < topo.P.BaseRTT || e > time.Second {
		t.Fatalf("elapsed %v implausible", e)
	}

	// After close and drain, EOF.
	conn.Close()
	if _, err := conn.ReadPacket(buf[:]); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestConnDecoupledSenderReceiver runs sender and receiver as separate
// actors, paper-style, and checks every responsive probe produces exactly
// one readable response.
func TestConnDecoupledSenderReceiver(t *testing.T) {
	topo := testTopo(t, 2048, 77)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(topo, clock)
	conn := n.NewConn()

	const probes = 2000
	clock.AddActor() // sender
	clock.AddActor() // receiver

	received := make(chan int, 1)
	go func() {
		defer clock.DoneActor()
		count := 0
		var buf [MaxResponseLen]byte
		for {
			_, err := conn.ReadPacket(buf[:])
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				break
			}
			count++
		}
		received <- count
	}()

	go func() {
		defer clock.DoneActor()
		var pkt [128]byte
		for i := 0; i < probes; i++ {
			blk := i % topo.U.NumBlocks()
			dst := topo.U.BlockAddr(blk) | uint32(1+i%254)
			ttl := uint8(1 + i%32)
			ln := probe.BuildFlashProbe(pkt[:], topo.Vantage(), dst, ttl, false,
				n.Elapsed(), 0, probe.TracerouteDstPort)
			if err := conn.WritePacket(pkt[:ln]); err != nil {
				t.Error(err)
			}
			clock.Sleep(time.Millisecond) // 1 Kpps pacing
		}
		clock.Sleep(5 * time.Second) // drain
		conn.Close()
	}()

	got := <-received
	want := int(n.Stats.Responses.Load())
	if got != want {
		t.Fatalf("received %d responses, network delivered %d", got, want)
	}
	if got == 0 {
		t.Fatal("no responses at all")
	}
	sent := n.Stats.ProbesSent.Load()
	if sent != probes {
		t.Fatalf("sent=%d", sent)
	}
	// Accounting identity: every probe is answered, silent, unrouted,
	// rate-limited, or reached a silent destination.
	acc := n.Stats.Responses.Load() + n.Stats.SilentHops.Load() +
		n.Stats.NoRoute.Load() + n.Stats.RateLimited.Load() + n.Stats.DestSilent.Load()
	if acc != sent {
		t.Fatalf("accounting mismatch: %d classified vs %d sent", acc, sent)
	}
}

func TestWriteMalformed(t *testing.T) {
	topo := testTopo(t, 64, 1)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n := New(topo, clock)
	conn := n.NewConn()
	if err := conn.WritePacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for short packet")
	}
	if n.Stats.MalformedSends.Load() != 1 {
		t.Fatal("malformed not counted")
	}
}

func BenchmarkResolve(b *testing.B) {
	u := NewSyntheticUniverse(1 << 16)
	topo := NewTopology(u, DefaultParams(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := i & (1<<16 - 1)
		dst := topo.U.BlockAddr(blk) | uint32(1+i%254)
		topo.Resolve(dst, uint8(1+i%32), uint32(i), 0, probe.ProtoUDP)
	}
}

func BenchmarkConnWriteRead(b *testing.B) {
	u := NewSyntheticUniverse(1 << 12)
	p := DefaultParams(1)
	// Zero RTT so responses are immediately deliverable.
	p.BaseRTT, p.PerHopRTT, p.JitterRTT = 0, 0, 0
	topo := NewTopology(u, p)
	clock := simclock.NewReal()
	n := New(topo, clock)
	conn := n.NewConn()
	var pkt [128]byte
	var buf [MaxResponseLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := i & (1<<12 - 1)
		dst := topo.U.BlockAddr(blk) | uint32(1+i%254)
		ln := probe.BuildFlashProbe(pkt[:], topo.Vantage(), dst, uint8(1+i%32), false, 0, 0, probe.TracerouteDstPort)
		conn.WritePacket(pkt[:ln])
		for conn.Pending() > 0 {
			if _, err := conn.ReadPacket(buf[:]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
