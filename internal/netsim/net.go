package netsim

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

// ErrClosed is returned by writes on a closed Conn.
var ErrClosed = errors.New("netsim: connection closed")

// Stats counts what the network saw. All fields are updated atomically and
// may be read during a scan.
type Stats struct {
	ProbesSent     atomic.Uint64 // packets written
	Responses      atomic.Uint64 // responses delivered to the inbox
	RateLimited    atomic.Uint64 // ICMP responses suppressed by rate limits
	SilentHops     atomic.Uint64 // probes expiring at persistently silent routers
	NoRoute        atomic.Uint64 // probes falling off route ends
	DestSilent     atomic.Uint64 // probes reaching hosts that don't answer this type
	MalformedSends atomic.Uint64 // unparseable probe packets

	// Impairment-layer counters (all zero on a perfect network).
	ProbesLost  atomic.Uint64 // outbound probes dropped before any hop
	RepliesLost atomic.Uint64 // responses dropped after the responder sent them
	Duplicates  atomic.Uint64 // packets (either direction) delivered twice
	Reordered   atomic.Uint64 // response copies delayed by the reordering window
}

// Net binds a Topology to a clock and delivers packets with modeled RTTs,
// per-interface ICMP rate limiting, and all middlebox behaviours.
type Net struct {
	topo  *Topology
	clock simclock.Waiter
	epoch time.Time

	Stats Stats

	// Rate-limit buckets, sharded so concurrent senders do not contend on
	// one global mutex for every probe.
	buckets [bucketShards]bucketShard
}

// bucketShards is the number of independently locked rate-limit bucket
// maps; a power of two so the shard pick is a mask.
const bucketShards = 256

type bucketShard struct {
	mu sync.Mutex
	m  map[uint32]*bucket
	// padding to keep neighbouring shards off one cache line under
	// concurrent senders.
	_ [24]byte
}

type bucket struct {
	second int64
	count  int
}

// bucketShardOf spreads addresses over the shards. Responder populations
// are biased in their low octet (gateways at .1, appliances at .1), so
// fold all four octets in rather than masking the low byte.
func bucketShardOf(addr uint32) uint32 {
	return (addr ^ addr>>8 ^ addr>>16 ^ addr>>24) & (bucketShards - 1)
}

// New creates a network over the topology, driven by the given clock. The
// clock's current time becomes the network epoch (time zero for route
// dynamics and rate-limit windows).
func New(topo *Topology, clock simclock.Waiter) *Net {
	n := &Net{
		topo:  topo,
		clock: clock,
		epoch: clock.Now(),
	}
	for i := range n.buckets {
		n.buckets[i].m = make(map[uint32]*bucket)
	}
	return n
}

// Topo returns the underlying topology.
func (n *Net) Topo() *Topology { return n.topo }

// Clock returns the clock driving this network.
func (n *Net) Clock() simclock.Waiter { return n.clock }

// Elapsed returns time since the network epoch.
func (n *Net) Elapsed() time.Duration { return n.clock.Now().Sub(n.epoch) }

// allowICMP consumes one unit of the interface's ICMP budget for the
// current one-second window and reports whether the response may be sent
// (fixed-window limit of ICMPRateLimitPPS per interface, per [19]).
func (n *Net) allowICMP(addr uint32, now time.Duration) bool {
	limit := n.topo.P.ICMPRateLimitPPS
	if limit <= 0 {
		return true
	}
	sec := int64(now / time.Second)
	sh := &n.buckets[bucketShardOf(addr)]
	sh.mu.Lock()
	b := sh.m[addr]
	if b == nil {
		b = &bucket{second: -1}
		sh.m[addr] = b
	}
	if b.second != sec {
		b.second = sec
		b.count = 0
	}
	b.count++
	ok := b.count <= limit
	sh.mu.Unlock()
	return ok
}

// rtt models the round-trip time to a responder at the given depth, with
// per-(probe,instant) jitter.
func (n *Net) rtt(dst uint32, depth uint8, now time.Duration) time.Duration {
	p := &n.topo.P
	j := time.Duration(0)
	if p.JitterRTT > 0 {
		h := n.topo.hash64(uint64(dst), uint64(depth), uint64(now))
		j = time.Duration(h % uint64(p.JitterRTT))
	}
	return p.BaseRTT + time.Duration(depth)*p.PerHopRTT + j
}

// response kinds on the wire.
const (
	respICMPTimeExceeded = iota
	respICMPPortUnreach
	respTCPRST
	respEchoReply
)

// pendingResp is a scheduled response, materialized into bytes at read
// time (identical bytes, no per-probe allocation while in flight).
type pendingResp struct {
	deliverAt time.Duration // since epoch
	seq       uint64        // tiebreaker for deterministic ordering
	kind      uint8
	hop       uint32
	quote     probe.IPv4
	transport [8]byte
}

// respHeap is a value-typed binary min-heap of pending responses ordered
// by delivery time (seq breaks ties deterministically). It deliberately
// does not go through container/heap: the interface-based API boxes every
// pushed and popped element into an `any` allocation, which on the probe
// write path would mean one heap allocation per response in flight. The
// inlined sift operations below keep the steady-state write/read path
// allocation-free (the backing array grows amortized and is then reused).
type respHeap []pendingResp

func (h respHeap) less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}

// push inserts r, sifting it up to its heap position.
func (h *respHeap) push(r pendingResp) {
	q := append(*h, r)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the earliest-delivery response.
func (h *respHeap) pop() pendingResp {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(q) {
			break
		}
		c := l
		if r := l + 1; r < len(q) && q.less(r, l) {
			c = r
		}
		if !q.less(c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	*h = q
	return top
}

func (h respHeap) peek() *pendingResp { return &h[0] }

// Conn is a raw-socket-like connection from the vantage point into the
// simulated network. One goroutine may write while another reads — the
// decoupled sender/receiver design of the paper (§3.2).
type Conn struct {
	net    *Net
	src    uint32
	parker *simclock.Parker
	imp    *impairState // nil unless Params.Impair is enabled

	mu     sync.Mutex
	inbox  respHeap
	seq    uint64
	closed bool
}

// NewConn opens a connection sourced at the vantage point.
func (n *Net) NewConn() *Conn {
	c := &Conn{
		net:    n,
		src:    n.topo.Vantage(),
		parker: n.clock.NewParker(),
	}
	if n.topo.P.Impair.Enabled() {
		c.imp = newImpairState(n.topo.P.Seed)
	}
	return c
}

// WritePacket injects one serialized IPv4 probe packet into the network.
// The write itself never blocks; the response (if any) is scheduled for
// delivery after the modeled RTT.
func (c *Conn) WritePacket(pkt []byte) error {
	n := c.net
	n.Stats.ProbesSent.Add(1)

	var hdr probe.IPv4
	if err := hdr.Unmarshal(pkt); err != nil || len(pkt) < probe.IPv4HeaderLen+8 {
		n.Stats.MalformedSends.Add(1)
		if err == nil {
			err = probe.ErrTruncated
		}
		return err
	}
	if int(hdr.TotalLength) > probe.MTU {
		n.Stats.MalformedSends.Add(1)
		return probe.ErrMessageTooLong
	}
	if hdr.TTL == 0 {
		return nil // dies immediately, no response from ourselves
	}

	// Outbound impairments: a lost probe never reaches a hop (no resolve,
	// no rate-limit debit); a duplicated probe traverses the network twice.
	copies := 1
	if c.imp != nil {
		copies = c.imp.probeFate(&n.topo.P.Impair)
		if copies == 0 {
			n.Stats.ProbesLost.Add(1)
			return nil
		}
		if copies == 2 {
			n.Stats.Duplicates.Add(1)
		}
	}

	var transport [8]byte
	copy(transport[:], pkt[probe.IPv4HeaderLen:probe.IPv4HeaderLen+8])
	srcPort := uint16(transport[0])<<8 | uint16(transport[1])
	dstPort := uint16(transport[2])<<8 | uint16(transport[3])

	now := n.Elapsed()

	// ICMP echo requests (the census hitlist's probe type, §5.1): answered
	// by ping-responsive entities, subject to the same ICMP rate limits.
	if hdr.Protocol == probe.ProtoICMP {
		if transport[0] != probe.ICMPTypeEchoRequest {
			n.Stats.MalformedSends.Add(1)
			return nil
		}
		if !n.topo.PingResponsive(hdr.Dst) {
			n.Stats.DestSilent.Add(uint64(copies))
			return nil
		}
		depth := n.topo.DistanceNow(hdr.Dst, now)
		if depth == 0 {
			depth = 16 // infra or unrouted responders: nominal RTT depth
		}
		resp := pendingResp{
			deliverAt: now + n.rtt(hdr.Dst, depth, now),
			kind:      respEchoReply,
			hop:       hdr.Dst,
			transport: transport,
		}
		for i := 0; i < copies; i++ {
			if !n.allowICMP(hdr.Dst, now) {
				n.Stats.RateLimited.Add(1)
				continue
			}
			if err := c.deliver(resp); err != nil {
				return err
			}
		}
		return nil
	}
	flow := flowHash(hdr.Src, hdr.Dst, srcPort, dstPort, hdr.Protocol)
	hop := n.topo.Resolve(hdr.Dst, hdr.TTL, flow, now, hdr.Protocol)

	var kind uint8
	switch hop.Kind {
	case HopNone:
		n.Stats.NoRoute.Add(uint64(copies))
		return nil
	case HopSilentRouter:
		n.Stats.SilentHops.Add(uint64(copies))
		return nil
	case HopDestSilent:
		n.Stats.DestSilent.Add(uint64(copies))
		return nil
	case HopRouter:
		kind = respICMPTimeExceeded
	case HopDestUDP:
		kind = respICMPPortUnreach
	case HopDestTCP:
		kind = respTCPRST
	}

	// The quoted header is the probe's header as the responder saw it:
	// TTL decayed to the residual, destination possibly rewritten.
	quote := hdr
	quote.TTL = hop.Residual
	quote.Dst = hop.QuotedDst

	resp := pendingResp{
		deliverAt: now + n.rtt(hdr.Dst, hop.Depth, now),
		kind:      kind,
		hop:       hop.Addr,
		quote:     quote,
		transport: transport,
	}

	for i := 0; i < copies; i++ {
		// ICMP rate limiting at the responder (TCP RSTs are not ICMP and
		// are not throttled by it; each duplicate debits the budget).
		if kind != respTCPRST && !n.allowICMP(hop.Addr, now) {
			n.Stats.RateLimited.Add(1)
			continue
		}
		if err := c.deliver(resp); err != nil {
			return err
		}
	}
	return nil
}

// deliver schedules one emitted response for delivery to the inbox,
// applying inbound impairments (loss, duplication, reordering, extra
// jitter) when enabled. With impairments off it is exactly the
// pre-impairment scheduling path.
func (c *Conn) deliver(resp pendingResp) error {
	n := c.net
	copies := 1
	var extra [2]time.Duration
	if c.imp != nil {
		var reordered int
		copies, extra, reordered = c.imp.responseFate(&n.topo.P.Impair)
		if copies == 0 {
			n.Stats.RepliesLost.Add(1)
			return nil
		}
		if copies == 2 {
			n.Stats.Duplicates.Add(1)
		}
		if reordered > 0 {
			n.Stats.Reordered.Add(uint64(reordered))
		}
	}
	base := resp.deliverAt
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	for i := 0; i < copies; i++ {
		resp.deliverAt = base + extra[i]
		resp.seq = c.seq
		c.seq++
		c.inbox.push(resp)
	}
	c.mu.Unlock()
	n.Stats.Responses.Add(uint64(copies))
	n.clock.Unpark(c.parker)
	return nil
}

// ReadPacket blocks until a response is deliverable, materializes it into
// buf, and returns its length. It returns io.EOF once the connection is
// closed and drained.
func (c *Conn) ReadPacket(buf []byte) (int, error) {
	for {
		c.mu.Lock()
		now := c.net.Elapsed()
		if len(c.inbox) > 0 && c.inbox.peek().deliverAt <= now {
			resp := c.inbox.pop()
			c.mu.Unlock()
			return c.materialize(buf, &resp), nil
		}
		if c.closed && len(c.inbox) == 0 {
			c.mu.Unlock()
			return 0, io.EOF
		}
		var deadline time.Time
		if len(c.inbox) > 0 {
			deadline = c.net.epoch.Add(c.inbox.peek().deliverAt)
		}
		c.mu.Unlock()
		c.net.clock.Park(c.parker, deadline)
	}
}

// materialize renders a pending response into wire bytes in buf.
func (c *Conn) materialize(buf []byte, r *pendingResp) int {
	switch r.kind {
	case respEchoReply:
		total := probe.IPv4HeaderLen + probe.EchoLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoICMP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		b := buf[probe.IPv4HeaderLen:]
		b[0], b[1] = probe.ICMPTypeEchoReply, 0
		b[2], b[3] = 0, 0
		copy(b[4:8], r.transport[4:8]) // echoed id/seq
		cs := probe.Checksum(b[:probe.EchoLen])
		b[2], b[3] = byte(cs>>8), byte(cs)
		return total

	case respTCPRST:
		total := probe.IPv4HeaderLen + probe.TCPHeaderLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoTCP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		var pt probe.TCP
		_ = pt.Unmarshal(r.transport[:])
		rst := probe.TCP{
			SrcPort: pt.DstPort,
			DstPort: pt.SrcPort,
			Seq:     pt.Seq, // echo for scanner-side matching
			Ack:     pt.Seq + 1,
			Flags:   probe.FlagRST | probe.FlagACK,
		}
		rst.Marshal(buf[probe.IPv4HeaderLen:])
		return total

	default:
		icmpType := uint8(probe.ICMPTypeTimeExceeded)
		icmpCode := uint8(probe.ICMPCodeTTLExceeded)
		if r.kind == respICMPPortUnreach {
			icmpType = probe.ICMPTypeDestUnreachable
			icmpCode = probe.ICMPCodePortUnreachable
		}
		total := probe.IPv4HeaderLen + probe.ICMPErrorLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoICMP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		q := r.quote
		probe.MarshalICMPError(buf[probe.IPv4HeaderLen:], icmpType, icmpCode, &q, r.transport[:])
		return total
	}
}

// MaxResponseLen is the largest packet ReadPacket can produce.
const MaxResponseLen = probe.IPv4HeaderLen + probe.ICMPErrorLen

// Close closes the connection; pending deliverable responses may still be
// read, after which ReadPacket returns io.EOF.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.net.clock.Unpark(c.parker)
	return nil
}

// Pending returns the number of scheduled, not yet read responses.
func (c *Conn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inbox)
}

// flowHash derives the load-balancer flow identifier from the 5-tuple
// (FNV-1a over the tuple bytes), as a per-flow balancer would.
func flowHash(src, dst uint32, sport, dport uint16, proto uint8) uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for i := 0; i < 4; i++ {
		mix(byte(src >> (8 * i)))
		mix(byte(dst >> (8 * i)))
	}
	mix(byte(sport >> 8))
	mix(byte(sport))
	mix(byte(dport >> 8))
	mix(byte(dport))
	mix(proto)
	return h
}
