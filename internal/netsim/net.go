package netsim

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
	"github.com/flashroute/flashroute/internal/simnet"
)

// ErrClosed is returned by writes on a closed Conn.
var ErrClosed = errors.New("netsim: connection closed")

// Stats counts what the network saw. All fields are updated atomically and
// may be read during a scan.
type Stats struct {
	ProbesSent     atomic.Uint64 // packets written
	RateLimited    atomic.Uint64 // ICMP responses suppressed by rate limits
	SilentHops     atomic.Uint64 // probes expiring at persistently silent routers
	NoRoute        atomic.Uint64 // probes falling off route ends
	DestSilent     atomic.Uint64 // probes reaching hosts that don't answer this type
	MalformedSends atomic.Uint64 // unparseable probe packets

	// Responses plus the impairment-layer counters, promoted from the
	// shared substrate (all impairment counters zero on a perfect
	// network).
	simnet.DeliveryStats
}

// Net binds a Topology to a clock and delivers packets with modeled RTTs,
// per-interface ICMP rate limiting, and all middlebox behaviours.
type Net struct {
	topo  *Topology
	clock simclock.Waiter
	epoch time.Time

	Stats Stats

	// Rate-limit buckets, sharded so concurrent senders do not contend on
	// one global mutex for every probe.
	buckets *simnet.Buckets[uint32]
}

// bucketShardOf spreads addresses over the shards. Responder populations
// are biased in their low octet (gateways at .1, appliances at .1), so
// fold all four octets in rather than masking the low byte.
func bucketShardOf(addr uint32) uint32 {
	return addr ^ addr>>8 ^ addr>>16 ^ addr>>24
}

// New creates a network over the topology, driven by the given clock. The
// clock's current time becomes the network epoch (time zero for route
// dynamics and rate-limit windows).
func New(topo *Topology, clock simclock.Waiter) *Net {
	return &Net{
		topo:    topo,
		clock:   clock,
		epoch:   clock.Now(),
		buckets: simnet.NewBuckets[uint32](bucketShardOf),
	}
}

// Topo returns the underlying topology.
func (n *Net) Topo() *Topology { return n.topo }

// Clock returns the clock driving this network.
func (n *Net) Clock() simclock.Waiter { return n.clock }

// Elapsed returns time since the network epoch.
func (n *Net) Elapsed() time.Duration { return n.clock.Now().Sub(n.epoch) }

// allowICMP consumes one unit of the interface's ICMP budget for the
// current one-second window and reports whether the response may be sent
// (fixed-window limit of ICMPRateLimitPPS per interface, per [19]).
func (n *Net) allowICMP(addr uint32, now time.Duration) bool {
	return n.buckets.Allow(addr, n.topo.P.ICMPRateLimitPPS, now)
}

// rtt models the round-trip time to a responder at the given depth, with
// per-(probe,instant) jitter.
func (n *Net) rtt(dst uint32, depth uint8, now time.Duration) time.Duration {
	p := &n.topo.P
	j := time.Duration(0)
	if p.JitterRTT > 0 {
		h := n.topo.hash64(uint64(dst), uint64(depth), uint64(now))
		j = time.Duration(h % uint64(p.JitterRTT))
	}
	return p.BaseRTT + time.Duration(depth)*p.PerHopRTT + j
}

// response kinds on the wire.
const (
	respICMPTimeExceeded = iota
	respICMPPortUnreach
	respTCPRST
	respEchoReply
)

// respPayload is a scheduled response, materialized into bytes at read
// time (identical bytes, no per-probe allocation while in flight). Its
// delivery time and ordering sequence live in the inbox item wrapping it.
type respPayload struct {
	kind      uint8
	hop       uint32
	quote     probe.IPv4
	transport [8]byte
}

// Conn is a raw-socket-like connection from the vantage point into the
// simulated network. One goroutine may write while another reads — the
// decoupled sender/receiver design of the paper (§3.2).
type Conn struct {
	net *Net
	src uint32
	// vantage selects the ingress path probes take into the topology
	// (Topology.ResolveFrom): 0 is the classic vantage point, higher
	// values are cluster workers with a private first hop. The source
	// address stays the vantage point's for every value — replies route
	// back by connection, and keeping the 5-tuple identical keeps
	// per-flow load-balancer decisions invariant across vantages.
	vantage int
	imp     *simnet.ImpairState // nil unless Params.Impair is enabled
	inbox   *simnet.Inbox[respPayload]

	// Batch-path scratch, reused across calls so the steady state stays
	// allocation-free. wrMu serializes WriteBatch callers (several sender
	// shards may batch-write the same Conn; single-packet writers never
	// take it); rdScratch belongs to the Conn-level reader, of which the
	// contract allows exactly one.
	wrMu      sync.Mutex
	wrStage   []simnet.Pending[respPayload]
	rdScratch []respPayload
}

// NewConn opens a connection sourced at the vantage point.
func (n *Net) NewConn() *Conn {
	return n.NewVantageConn(0)
}

// NewVantageConn opens a connection entering the topology at vantage v:
// v == 0 is NewConn exactly; v > 0 routes the connection's probes over a
// private ingress link whose first hop is IngressIface(v). One Net
// supports any number of concurrently probing connections (stats are
// atomic, rate-limit buckets sharded, inboxes per connection).
func (n *Net) NewVantageConn(v int) *Conn {
	c := &Conn{
		net:     n,
		src:     n.topo.Vantage(),
		vantage: v,
		inbox:   simnet.NewInbox[respPayload](n.clock, n.epoch),
	}
	if n.topo.P.Impair.Enabled() {
		c.imp = simnet.NewImpairState(n.topo.P.Seed)
	}
	return c
}

// WritePacket injects one serialized IPv4 probe packet into the network.
// The write itself never blocks; the response (if any) is scheduled for
// delivery after the modeled RTT.
func (c *Conn) WritePacket(pkt []byte) error {
	return c.write1(pkt, c.net.Elapsed(), nil)
}

// WriteBatch injects pkts in order (sendmmsg shape). It returns the
// number of packets consumed; a non-nil error with n < len(pkts) means
// pkts[n] failed — per-packet fault semantics, exactly as the equivalent
// WritePacket would have failed — and packets after it were not
// attempted. All responses elicited by the batch are committed to the
// inbox under a single lock with a single reader wakeup; per-packet
// impairment and fault draws happen in write order, so a batched write
// sequence consumes the RNG identically to the unbatched one.
func (c *Conn) WriteBatch(pkts [][]byte) (int, error) {
	n := c.net
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	// One clock read covers the whole batch: on the virtual clock no time
	// can pass while the writer runs, and fault windows — the only
	// behavior where sub-batch timing matters — re-read the clock below.
	now := n.Elapsed()
	faults := n.topo.P.Impair.HasFaults()
	c.wrStage = c.wrStage[:0]
	for i, pkt := range pkts {
		pktNow := now
		if faults {
			pktNow = n.Elapsed() // a window edge may split the batch on a real clock
		}
		if err := c.write1(pkt, pktNow, &c.wrStage); err != nil {
			if !simnet.ScheduleAllResponses(c.inbox, &n.Stats.DeliveryStats, c.wrStage) {
				return i, ErrClosed
			}
			return i, err
		}
	}
	if !simnet.ScheduleAllResponses(c.inbox, &n.Stats.DeliveryStats, c.wrStage) {
		return len(pkts), ErrClosed
	}
	return len(pkts), nil
}

// write1 is the full per-packet write path at instant now. Responses are
// delivered straight to the inbox (stage nil, the WritePacket path) or
// appended to *stage for one batched commit.
func (c *Conn) write1(pkt []byte, now time.Duration, stage *[]simnet.Pending[respPayload]) error {
	n := c.net

	// Transport-fault windows: a faulted write fails before the probe
	// enters the network at all — not counted as sent, no impairment
	// draws consumed, so zero-fault runs are bit-identical.
	if im := &n.topo.P.Impair; im.HasFaults() && im.WriteFault(now, c.vantage) {
		n.Stats.WriteFaults.Add(1)
		return &simnet.TransientError{Op: "write"}
	}

	n.Stats.ProbesSent.Add(1)

	var hdr probe.IPv4
	if err := hdr.Unmarshal(pkt); err != nil || len(pkt) < probe.IPv4HeaderLen+8 {
		n.Stats.MalformedSends.Add(1)
		if err == nil {
			err = probe.ErrTruncated
		}
		return err
	}
	if int(hdr.TotalLength) > probe.MTU {
		n.Stats.MalformedSends.Add(1)
		return probe.ErrMessageTooLong
	}
	if hdr.TTL == 0 {
		return nil // dies immediately, no response from ourselves
	}

	// Outbound impairments: a lost probe never reaches a hop (no resolve,
	// no rate-limit debit); a duplicated probe traverses the network twice.
	copies := 1
	if c.imp != nil {
		copies = c.imp.ProbeFate(&n.topo.P.Impair)
		if copies == 0 {
			n.Stats.ProbesLost.Add(1)
			return nil
		}
		if copies == 2 {
			n.Stats.Duplicates.Add(1)
		}
	}

	var transport [8]byte
	copy(transport[:], pkt[probe.IPv4HeaderLen:probe.IPv4HeaderLen+8])
	srcPort := uint16(transport[0])<<8 | uint16(transport[1])
	dstPort := uint16(transport[2])<<8 | uint16(transport[3])

	// ICMP echo requests (the census hitlist's probe type, §5.1): answered
	// by ping-responsive entities, subject to the same ICMP rate limits.
	if hdr.Protocol == probe.ProtoICMP {
		if transport[0] != probe.ICMPTypeEchoRequest {
			n.Stats.MalformedSends.Add(1)
			return nil
		}
		if !n.topo.PingResponsive(hdr.Dst) {
			n.Stats.DestSilent.Add(uint64(copies))
			return nil
		}
		depth := n.topo.DistanceNow(hdr.Dst, now)
		if depth == 0 {
			depth = 16 // infra or unrouted responders: nominal RTT depth
		}
		resp := respPayload{
			kind:      respEchoReply,
			hop:       hdr.Dst,
			transport: transport,
		}
		at := now + n.rtt(hdr.Dst, depth, now)
		for i := 0; i < copies; i++ {
			if !n.allowICMP(hdr.Dst, now) {
				n.Stats.RateLimited.Add(1)
				continue
			}
			if err := c.deliver(resp, at, stage); err != nil {
				return err
			}
		}
		return nil
	}
	flow := flowHash(hdr.Src, hdr.Dst, srcPort, dstPort, hdr.Protocol)
	hop := n.topo.ResolveFrom(c.vantage, hdr.Dst, hdr.TTL, flow, now, hdr.Protocol)

	var kind uint8
	switch hop.Kind {
	case HopNone:
		n.Stats.NoRoute.Add(uint64(copies))
		return nil
	case HopSilentRouter:
		n.Stats.SilentHops.Add(uint64(copies))
		return nil
	case HopDestSilent:
		n.Stats.DestSilent.Add(uint64(copies))
		return nil
	case HopRouter:
		kind = respICMPTimeExceeded
	case HopDestUDP:
		kind = respICMPPortUnreach
	case HopDestTCP:
		kind = respTCPRST
	}

	// The quoted header is the probe's header as the responder saw it:
	// TTL decayed to the residual, destination possibly rewritten.
	quote := hdr
	quote.TTL = hop.Residual
	quote.Dst = hop.QuotedDst

	resp := respPayload{
		kind:      kind,
		hop:       hop.Addr,
		quote:     quote,
		transport: transport,
	}
	at := now + n.rtt(hdr.Dst, hop.Depth, now)

	for i := 0; i < copies; i++ {
		// ICMP rate limiting at the responder (TCP RSTs are not ICMP and
		// are not throttled by it; each duplicate debits the budget).
		if kind != respTCPRST && !n.allowICMP(hop.Addr, now) {
			n.Stats.RateLimited.Add(1)
			continue
		}
		if err := c.deliver(resp, at, stage); err != nil {
			return err
		}
	}
	return nil
}

// deliver schedules one emitted response for delivery to the inbox,
// applying inbound impairments (loss, duplication, reordering, extra
// jitter) when enabled. With impairments off it is exactly the
// pre-impairment scheduling path. With stage non-nil the surviving
// response is appended there instead — same fault and impairment draws,
// commit deferred to the caller's ScheduleAllResponses.
func (c *Conn) deliver(resp respPayload, at time.Duration, stage *[]simnet.Pending[respPayload]) error {
	if im := &c.net.topo.P.Impair; im.HasFaults() {
		adj, dropped := im.DeliveryFault(at, c.vantage)
		if dropped {
			c.net.Stats.FaultDropped.Add(1)
			return nil
		}
		if adj != at {
			c.net.Stats.FaultStalled.Add(1)
			at = adj
		}
	}
	if stage != nil {
		if p, ok := simnet.StageResponse(c.imp, &c.net.topo.P.Impair,
			&c.net.Stats.DeliveryStats, resp, at); ok {
			*stage = append(*stage, p)
		}
		return nil
	}
	if !simnet.ScheduleResponse(c.inbox, c.imp, &c.net.topo.P.Impair,
		&c.net.Stats.DeliveryStats, resp, at) {
		return ErrClosed
	}
	return nil
}

// ReadPacket blocks until a response is deliverable, materializes it into
// buf, and returns its length. It returns io.EOF once the connection is
// closed and drained.
func (c *Conn) ReadPacket(buf []byte) (int, error) {
	resp, ok := c.inbox.Next()
	if !ok {
		return 0, io.EOF
	}
	return c.materialize(buf, &resp), nil
}

// ReadBatch is the batch form of ReadPacket (recvmmsg shape): it blocks
// until a response is deliverable, then fills bufs[i]/sizes[i] with every
// response already deliverable at that instant — in the exact (delivery
// time, sequence) order consecutive ReadPacket calls would observe — up
// to len(bufs). It returns (0, io.EOF) once the connection is closed and
// drained. Like ReadPacket, at most one goroutine may use it.
func (c *Conn) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	if len(c.rdScratch) < len(bufs) {
		c.rdScratch = make([]respPayload, len(bufs))
	}
	k, ok := c.inbox.NextBatch(c.rdScratch[:len(bufs)])
	if !ok {
		return 0, io.EOF
	}
	for i := 0; i < k; i++ {
		sizes[i] = c.materialize(bufs[i], &c.rdScratch[i])
	}
	return k, nil
}

// Reader is a per-receiver read handle on the Conn: each receive worker of
// a sharded receive pipeline holds its own Reader so R workers can block
// on (and drain) the same inbox concurrently under the virtual clock.
type Reader struct {
	c       *Conn
	rd      *simnet.Reader[respPayload]
	scratch []respPayload // ReadBatch staging, owned by this handle's worker
}

// NewReader opens a read handle. The plain Conn.ReadPacket and any number
// of Readers may be used on the same Conn, though engines use one or the
// other.
func (c *Conn) NewReader() *Reader {
	return &Reader{c: c, rd: c.inbox.NewReader()}
}

// ReadPacket is Conn.ReadPacket on this handle, with one addition: it
// returns (0, nil) when the wait was interrupted by Wake before a response
// became deliverable, so the caller can service out-of-band work.
func (r *Reader) ReadPacket(buf []byte) (int, error) {
	resp, ok, eof := r.rd.Next()
	if eof {
		return 0, io.EOF
	}
	if !ok {
		return 0, nil
	}
	return r.c.materialize(buf, &resp), nil
}

// ReadBatch is Conn.ReadBatch on this handle, with the Reader extension:
// it returns (0, nil) when the wait was interrupted by Wake before any
// response became deliverable.
func (r *Reader) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	if len(r.scratch) < len(bufs) {
		r.scratch = make([]respPayload, len(bufs))
	}
	k, eof := r.rd.NextBatch(r.scratch[:len(bufs)])
	if eof {
		return 0, io.EOF
	}
	for i := 0; i < k; i++ {
		sizes[i] = r.c.materialize(bufs[i], &r.scratch[i])
	}
	return k, nil
}

// Wake interrupts this handle's blocked (or next) ReadPacket.
func (r *Reader) Wake() { r.rd.Wake() }

// materialize renders a pending response into wire bytes in buf.
func (c *Conn) materialize(buf []byte, r *respPayload) int {
	switch r.kind {
	case respEchoReply:
		total := probe.IPv4HeaderLen + probe.EchoLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoICMP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		b := buf[probe.IPv4HeaderLen:]
		b[0], b[1] = probe.ICMPTypeEchoReply, 0
		b[2], b[3] = 0, 0
		copy(b[4:8], r.transport[4:8]) // echoed id/seq
		cs := probe.Checksum(b[:probe.EchoLen])
		b[2], b[3] = byte(cs>>8), byte(cs)
		return total

	case respTCPRST:
		total := probe.IPv4HeaderLen + probe.TCPHeaderLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoTCP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		var pt probe.TCP
		_ = pt.Unmarshal(r.transport[:])
		rst := probe.TCP{
			SrcPort: pt.DstPort,
			DstPort: pt.SrcPort,
			Seq:     pt.Seq, // echo for scanner-side matching
			Ack:     pt.Seq + 1,
			Flags:   probe.FlagRST | probe.FlagACK,
		}
		rst.Marshal(buf[probe.IPv4HeaderLen:])
		return total

	default:
		icmpType := uint8(probe.ICMPTypeTimeExceeded)
		icmpCode := uint8(probe.ICMPCodeTTLExceeded)
		if r.kind == respICMPPortUnreach {
			icmpType = probe.ICMPTypeDestUnreachable
			icmpCode = probe.ICMPCodePortUnreachable
		}
		total := probe.IPv4HeaderLen + probe.ICMPErrorLen
		outer := probe.IPv4{
			TotalLength: uint16(total),
			TTL:         64,
			Protocol:    probe.ProtoICMP,
			Src:         r.hop,
			Dst:         c.src,
		}
		outer.Marshal(buf)
		q := r.quote
		probe.MarshalICMPError(buf[probe.IPv4HeaderLen:], icmpType, icmpCode, &q, r.transport[:])
		return total
	}
}

// MaxResponseLen is the largest packet ReadPacket can produce.
const MaxResponseLen = probe.IPv4HeaderLen + probe.ICMPErrorLen

// Close closes the connection; pending deliverable responses may still be
// read, after which ReadPacket returns io.EOF.
func (c *Conn) Close() error {
	c.inbox.Close()
	return nil
}

// Pending returns the number of scheduled, not yet read responses.
func (c *Conn) Pending() int { return c.inbox.Len() }

// flowHash derives the load-balancer flow identifier from the 5-tuple
// (FNV-1a over the tuple bytes), as a per-flow balancer would.
func flowHash(src, dst uint32, sport, dport uint16, proto uint8) uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for i := 0; i < 4; i++ {
		mix(byte(src >> (8 * i)))
		mix(byte(dst >> (8 * i)))
	}
	mix(byte(sport >> 8))
	mix(byte(sport))
	mix(byte(dport >> 8))
	mix(byte(dport))
	mix(proto)
	return h
}
