package netsim

import (
	"math/rand"
	"time"
)

// Infrastructure interface addresses are allocated from 240.0.0.0/4
// (reserved space), which cannot collide with destination universes.
const infraBase = uint32(0xF0000000)

// Hash domain-separation tags for the different per-query random choices.
const (
	tagRouterSilent   = 0x5e111001
	tagHostExists     = 0xb10cb10c
	tagInteriorChain  = 0x1c41a1c4
	tagDynamicFlap    = 0xd1a0d1a0
	tagInteriorSilent = 0x51e11751
	tagTCPRst         = 0x7c97c97c
	tagRouterUnreach  = 0x0d310d31
	tagHostPing       = 0x811c9dc5
	tagTCPQuiet       = 0x7c041e70
)

// HopKind classifies what a probe encounters at a given TTL.
type HopKind uint8

const (
	// HopNone: nothing there — the probe fell off the end of a route
	// (unresponsive tail or nonexistent host).
	HopNone HopKind = iota
	// HopRouter: TTL expired at a responsive router interface.
	HopRouter
	// HopSilentRouter: TTL expired at a router that never answers.
	HopSilentRouter
	// HopDestUDP: the probe reached its destination, which answers with
	// ICMP port unreachable.
	HopDestUDP
	// HopDestTCP: the probe reached its destination, which answers with a
	// TCP RST (Yarrp's TCP-ACK mode).
	HopDestTCP
	// HopDestSilent: the probe reached a live destination that does not
	// answer this probe type.
	HopDestSilent
)

// Terminal reports whether the probe reached its destination.
func (k HopKind) Terminal() bool {
	return k == HopDestUDP || k == HopDestTCP || k == HopDestSilent
}

// Hop is the outcome of resolving one probe against the topology.
type Hop struct {
	Kind HopKind
	// Addr is the responding (or silent) entity's address; zero for
	// HopNone.
	Addr uint32
	// Depth is the hop distance at which the probe terminated: the TTL at
	// which it expired for router hops, or the destination's distance for
	// destination hops (used for RTT modeling).
	Depth uint8
	// Residual is the TTL remaining in the probe as the responder saw it:
	// 1 for TTL-exceeded reports, initialTTL-distance+1 for destinations.
	// This is what gets quoted back and is the basis of the one-probe
	// hop-distance measurement (paper §3.3.1).
	Residual uint8
	// QuotedDst is the destination address as the responder saw it —
	// differs from the probed destination after in-flight rewriting
	// (§5.3).
	QuotedDst uint32
}

type region struct {
	path       []uint32
	diamondPos int8 // -1 = none; else index into path replaced by branches
	branches   []uint32
}

type provider struct {
	region     int32
	path       []uint32
	diamondPos int8
	branches   []uint32
	// altIface is the extra hop inserted on the flapped variant of
	// dynamic blocks' routes.
	altIface uint32
}

type stub struct {
	firstBlock int32
	nBlocks    int32
	provider   int32
	routed     bool
	loopy      bool
	midReset   bool
	midRewrite bool
	truncHops  int8 // unrouted: provider hops present before silence
	gateway    uint32
	interiors  []uint32
}

// Block flag bits.
const (
	blockOccupied = 1 << iota
	blockDynamic
	// blockAppliance: the block is fronted by its own edge appliance at
	// host octet 1 (census-magnet device, §5.1).
	blockAppliance
	// blockBalanced: the last hop toward the block's hosts is a per-flow
	// balanced router pair at host octets 252/253 (§5.2).
	blockBalanced
)

// Well-known host octets of synthetic in-block devices.
const (
	applianceOctet = 1
	balancedOctetA = 252
	balancedOctetB = 253
)

// Topology is the synthetic Internet. All methods are safe for concurrent
// use after construction (the structure is immutable; only hashing is
// performed at query time).
type Topology struct {
	P Params
	U *Universe

	vantage uint32
	core    []uint32

	regions   []region
	providers []provider

	stubs        []stub
	blockStub    []int32 // index into stubs; always valid
	blockFlags   []uint8
	blockDensity []uint8 // live-octet density * 255 for occupied blocks

	hashSeed uint64
}

// Vantage is the scanner's source address.
func (t *Topology) Vantage() uint32 { return t.vantage }

// NewTopology generates the synthetic Internet for the given universe.
func NewTopology(u *Universe, p Params) *Topology {
	if p.Regions == 0 || p.ProvidersPerRegion == 0 {
		// Autoscale the infrastructure so it stays a minority of the
		// interface population at any universe size: roughly one provider
		// per 256 blocks.
		providers := u.NumBlocks() / 256
		if providers < 16 {
			providers = 16
		}
		if providers > 4096 {
			providers = 4096
		}
		// Few regions: regional transit routers each carry traffic for a
		// sizable share of the universe, putting their per-interface probe
		// rates near the ICMP limit at full probing speed — the
		// mid-distance overprobing population of the paper's Table 4.
		regions := providers / 64
		if regions < 4 {
			regions = 4
		}
		if regions > 24 {
			regions = 24
		}
		p.Regions = regions
		p.ProvidersPerRegion = (providers + regions - 1) / regions
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{
		P:        p,
		U:        u,
		vantage:  0x0A000001, // 10.0.0.1
		hashSeed: uint64(p.Seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3,
	}

	next := infraBase
	iface := func() uint32 {
		next++
		return next
	}

	t.core = make([]uint32, p.CoreHops)
	for i := range t.core {
		t.core[i] = iface()
	}

	span := func(min, max int) int {
		if max <= min {
			return min
		}
		return min + rng.Intn(max-min+1)
	}

	t.regions = make([]region, p.Regions)
	for i := range t.regions {
		r := &t.regions[i]
		r.path = make([]uint32, span(p.RegionHopsMin, p.RegionHopsMax))
		for j := range r.path {
			r.path[j] = iface()
		}
		r.diamondPos = -1
		if rng.Float64() < p.RegionDiamondProb && len(r.path) > 1 {
			r.diamondPos = int8(rng.Intn(len(r.path)))
			w := 2 + rng.Intn(p.DiamondWidthMax-1)
			r.branches = make([]uint32, w)
			r.branches[0] = r.path[r.diamondPos]
			for b := 1; b < w; b++ {
				r.branches[b] = iface()
			}
		}
	}

	t.providers = make([]provider, p.Regions*p.ProvidersPerRegion)
	for i := range t.providers {
		pr := &t.providers[i]
		pr.region = int32(i / p.ProvidersPerRegion)
		pr.path = make([]uint32, span(p.ProviderHopsMin, p.ProviderHopsMax))
		for j := range pr.path {
			pr.path[j] = iface()
		}
		pr.diamondPos = -1
		if rng.Float64() < p.DiamondProb && len(pr.path) > 1 {
			pr.diamondPos = int8(rng.Intn(len(pr.path)))
			w := 2 + rng.Intn(p.DiamondWidthMax-1)
			pr.branches = make([]uint32, w)
			pr.branches[0] = pr.path[pr.diamondPos]
			for b := 1; b < w; b++ {
				pr.branches[b] = iface()
			}
		}
		pr.altIface = iface()
	}

	// Carve the universe into contiguous stub runs.
	n := u.NumBlocks()
	t.blockStub = make([]int32, n)
	t.blockFlags = make([]uint8, n)
	t.blockDensity = make([]uint8, n)
	for b := 0; b < n; {
		size := 1 << rng.Intn(p.StubSizeLogMax+1)
		if b+size > n {
			size = n - b
		}
		s := stub{
			firstBlock: int32(b),
			nBlocks:    int32(size),
			provider:   int32(rng.Intn(len(t.providers))),
			routed:     rng.Float64() < p.RoutedFraction,
		}
		if s.routed {
			s.loopy = rng.Float64() < p.LoopStubProb
			s.midReset = rng.Float64() < p.MiddleboxTTLResetProb
			s.midRewrite = rng.Float64() < p.AddrRewriteStubProb
			// The gateway lives in the stub's first block at host octet 1.
			s.gateway = u.BlockAddr(b) | 1
			nInt := rng.Intn(p.InteriorMax + 1)
			s.interiors = make([]uint32, nInt)
			for j := 0; j < nInt; j++ {
				// Interior router j lives in block (firstBlock + 1 + j) when
				// the stub is large enough, else stacked in the first block
				// at ascending host octets.
				ib := b
				octet := uint32(2 + j)
				if 1+j < size {
					ib = b + 1 + j
					octet = 2
				}
				s.interiors[j] = u.BlockAddr(ib) | octet
			}
		} else {
			plen := len(t.providers[s.provider].path)
			s.truncHops = int8(rng.Intn(plen))
		}
		si := int32(len(t.stubs))
		t.stubs = append(t.stubs, s)
		for j := b; j < b+size; j++ {
			t.blockStub[j] = si
			var fl uint8
			if rng.Float64() < p.OccupiedBlockProb {
				fl |= blockOccupied
				d := p.OccupiedDensityMin + rng.Float64()*(p.OccupiedDensityMax-p.OccupiedDensityMin)
				t.blockDensity[j] = uint8(d * 255)
			}
			if rng.Float64() < p.DynamicBlockProb {
				fl |= blockDynamic
			}
			if s.routed && j != b && rng.Float64() < p.ApplianceProb {
				// The stub's first block is fronted by the gateway itself;
				// other blocks may have their own edge appliance.
				fl |= blockAppliance
			}
			if fl&blockOccupied != 0 && rng.Float64() < p.BalancedHopProb {
				fl |= blockBalanced
			}
			t.blockFlags[j] = fl
		}
		b += size
	}
	return t
}

// hash64 is a splitmix-style stateless hash used for all per-query
// deterministic randomness.
func (t *Topology) hash64(a, b, c uint64) uint64 {
	z := t.hashSeed + a*0x9e3779b97f4a7c15 + b*0xd6e8feb86659fd93 + c*0xa0761d6478bd642f
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Topology) chance(h uint64, p float64) bool {
	return float64(h>>11)/float64(1<<53) < p
}

// ingressBase is the address space of per-vantage ingress interfaces:
// vantage v > 0 reaches the shared core through its own first-hop link
// whose interface is IngressIface(v). The range sits above the infra
// minting base, so it can never collide with generated router
// interfaces or universe addresses.
const ingressBase uint32 = 0xFFFF0000

// IngressIface returns the first-hop interface address seen by probes
// sourced at vantage v (v > 0; vantage 0 uses the classic core path).
func IngressIface(v int) uint32 { return ingressBase | uint32(v) }

// IsIngressIface reports whether addr is a per-vantage ingress
// interface — used by the cluster merge to compare discovery sets
// modulo each worker's private first hop.
func IsIngressIface(addr uint32) bool { return addr&0xFFFF0000 == ingressBase }

// silentRouter reports whether an infrastructure interface is persistently
// unresponsive. The first core hop always answers: a vantage point whose
// own gateway were silent could not traceroute at all — and the same
// holds for every per-vantage ingress interface.
func (t *Topology) silentRouter(addr uint32) bool {
	if addr == t.core[0] || IsIngressIface(addr) {
		return false
	}
	return t.chance(t.hash64(uint64(addr), tagRouterSilent, 0), t.P.SilentRouterProb)
}

func (t *Topology) silentInterior(addr uint32) bool {
	return t.chance(t.hash64(uint64(addr), tagInteriorSilent, 0), t.P.SilentInteriorProb)
}

// HostExists reports whether the given in-universe address is a live host
// (router interfaces, appliances and balanced-pair routers always exist).
func (t *Topology) HostExists(addr uint32) bool {
	b, ok := t.U.BlockIndex(addr)
	if !ok {
		return false
	}
	s := &t.stubs[t.blockStub[b]]
	if t.isStubIface(s, addr) || t.isBlockDevice(b, addr) {
		return true
	}
	if t.blockFlags[b]&blockOccupied == 0 {
		return false
	}
	octet := addr & 0xff
	if octet == 0 || octet == 255 {
		return false
	}
	density := float64(t.blockDensity[b]) / 255
	return t.chance(t.hash64(uint64(addr), tagHostExists, 0), density)
}

// isBlockDevice reports whether addr is the block's edge appliance or one
// of its balanced-pair routers.
func (t *Topology) isBlockDevice(block int, addr uint32) bool {
	fl := t.blockFlags[block]
	octet := addr & 0xff
	if fl&blockAppliance != 0 && octet == applianceOctet {
		return true
	}
	if fl&blockBalanced != 0 && (octet == balancedOctetA || octet == balancedOctetB) {
		return true
	}
	return false
}

// isStubIface reports whether addr is s's gateway or one of its interiors.
func (t *Topology) isStubIface(s *stub, addr uint32) bool {
	if !s.routed {
		return false
	}
	if addr == s.gateway {
		return true
	}
	for _, in := range s.interiors {
		if addr == in {
			return true
		}
	}
	return false
}

// interiorChainLen returns how many of the stub's interior routers sit on
// the path to hosts of the given block. Adjacent blocks share chain
// lengths in runs of eight: internal topology changes at sub-allocation
// boundaries, not per /24, which is what makes proximity-span distance
// prediction work as well as the paper measures (§3.3.4).
func (t *Topology) interiorChainLen(s *stub, block int) int {
	if len(s.interiors) == 0 {
		return 0
	}
	return int(t.hash64(uint64(block>>3), tagInteriorChain, 0) % uint64(len(s.interiors)+1))
}

// dynamicExtra reports whether the block's route currently includes the
// flapped extra hop.
func (t *Topology) dynamicExtra(block int, now time.Duration) bool {
	if t.blockFlags[block]&blockDynamic == 0 {
		return false
	}
	epoch := uint64(now / t.P.DynamicEpoch)
	return t.hash64(uint64(block), tagDynamicFlap, epoch)&1 == 1
}

// Resolve determines what a probe encounters. dst is the probe's
// destination, ttl its initial TTL, flow the load-balancer flow hash
// (derived from the 5-tuple by the Net), now the send time (for route
// dynamics), proto the transport protocol number.
func (t *Topology) Resolve(dst uint32, ttl uint8, flow uint32, now time.Duration, proto uint8) Hop {
	return t.ResolveFrom(0, dst, ttl, flow, now, proto)
}

// ResolveFrom is Resolve for a probe entering at vantage v: vantage 0 is
// the classic path, any other vantage reaches the same core through a
// private one-hop ingress link, so its first hop resolves to
// IngressIface(v) instead of the shared first core router. Everything
// past depth 1 — and all reply semantics — is identical across
// vantages, which is what lets a cluster of workers merge their
// discoveries into one topology.
func (t *Topology) ResolveFrom(v int, dst uint32, ttl uint8, flow uint32, now time.Duration, proto uint8) Hop {
	block, ok := t.U.BlockIndex(dst)
	if !ok {
		return Hop{Kind: HopNone, QuotedDst: dst}
	}
	if v > 0 && ttl == 1 {
		return t.routerHop(IngressIface(v), ttl, dst, false, proto)
	}
	s := &t.stubs[t.blockStub[block]]
	pr := &t.providers[s.provider]
	rg := &t.regions[pr.region]

	coreLen := len(t.core)
	regLen := len(rg.path)
	provLen := len(pr.path)
	d := int(ttl)

	// Segment 1: core.
	if d <= coreLen {
		return t.routerHop(t.core[d-1], ttl, dst, false, proto)
	}
	d -= coreLen

	// Segment 2: region path (with optional diamond).
	if d <= regLen {
		addr := rg.path[d-1]
		if int8(d-1) == rg.diamondPos {
			addr = rg.branches[flow%uint32(len(rg.branches))]
		}
		return t.routerHop(addr, ttl, dst, false, proto)
	}
	d -= regLen

	// Segment 3: provider path. Unrouted stubs' routes die after
	// truncHops provider hops.
	if !s.routed && d > int(s.truncHops) {
		return Hop{Kind: HopNone, QuotedDst: dst}
	}
	if d <= provLen {
		addr := pr.path[d-1]
		if int8(d-1) == pr.diamondPos {
			addr = pr.branches[flow%uint32(len(pr.branches))]
		}
		return t.routerHop(addr, ttl, dst, false, proto)
	}
	d -= provLen

	// Optional flapped extra hop between provider and gateway.
	if t.dynamicExtra(block, now) {
		if d == 1 {
			return t.routerHop(pr.altIface, ttl, dst, false, proto)
		}
		d--
	}
	gwDepth := int(ttl) - d + 1 // absolute depth of the gateway

	// Segment 4: stub gateway. A probe expiring exactly here is a router
	// hop; a probe destined to the gateway itself terminates here.
	if dst == s.gateway {
		// Destination is the gateway: reached once d >= 1.
		return t.destHop(s.gateway, uint8(gwDepth), ttl, dst, proto)
	}
	if d == 1 {
		return t.routerHop(s.gateway, ttl, dst, false, proto)
	}
	d-- // now d is the position beyond the gateway (1 = first hop inside)

	// Beyond the gateway: middleboxes act at the stub entrance, so
	// everything from here on sees (and quotes) the possibly-rewritten
	// destination.
	quotedDst := dst
	if s.midRewrite {
		quotedDst = dst ^ 1 // rewrite the low host-octet bit
	}
	effDst := quotedDst
	base := dst &^ 0xff
	fl := t.blockFlags[block]
	ap := 0
	if fl&blockAppliance != 0 {
		ap = 1
	}

	// TTL-resetting middlebox: probes that survive past the gateway get a
	// fresh TTL and always reach the end host; the residual TTL the host
	// quotes derives from the reset value, not the probe's (§3.3.2).
	if s.midReset {
		if t.HostExists(effDst) {
			steps := t.stepsBeyondGateway(s, block, effDst)
			residual := int(t.P.MiddleboxResetValue) - steps + 1
			if residual < 1 {
				residual = 1
			}
			// Unlike destHop, the probe may arrive with ttl below the
			// host's true depth: the reset refreshed it in flight. The
			// quoted residual reflects the reset value, which is what
			// corrupts one-probe distance measurement (§3.3.2).
			return Hop{
				Kind:      t.destKind(effDst, proto),
				Addr:      effDst,
				Depth:     uint8(gwDepth + steps),
				Residual:  uint8(residual),
				QuotedDst: quotedDst,
			}
		}
		return Hop{Kind: HopNone, QuotedDst: quotedDst}
	}

	// Destination is the block's edge appliance (or one of a balanced
	// pair): reached one hop past the gateway / at the pair's depth.
	if ap == 1 && effDst == base|applianceOctet {
		return t.destHop(effDst, uint8(gwDepth+1), ttl, quotedDst, proto)
	}
	chain := t.blockChainLen(s, block)
	if fl&blockBalanced != 0 &&
		(effDst == base|balancedOctetA || effDst == base|balancedOctetB) {
		// Destination is one of the balanced pair: walk the in-block path
		// to its position (appliance, interiors, then the pair).
		if ap == 1 && d == 1 {
			return t.routerHop(base|applianceOctet, ttl, quotedDst, true, proto)
		}
		if rel := d - ap; rel <= chain {
			return t.routerHop(s.interiors[rel-1], ttl, quotedDst, true, proto)
		}
		return t.destHop(effDst, uint8(gwDepth+ap+chain+1), ttl, quotedDst, proto)
	}

	// Destination is one of the stub's interior router interfaces.
	for j, in := range s.interiors {
		if effDst != in {
			continue
		}
		// Interior j sits behind the (possible) appliance of its own
		// block, reached through interiors 0..j-1.
		return t.insideStub(s, block, d, ttl, gwDepth, flow, quotedDst, proto,
			j, in, uint8(gwDepth+ap+j+1))
	}

	exists := t.HostExists(effDst)
	if !exists && s.loopy {
		// The stub bounces packets for nonexistent addresses back to its
		// provider: hops alternate provider's last hop <-> gateway.
		var addr uint32
		if d%2 == 1 {
			addr = pr.path[provLen-1]
		} else {
			addr = s.gateway
		}
		return t.routerHop(addr, ttl, quotedDst, false, proto)
	}

	// Walk the in-block path: appliance, interiors, balanced pair, host.
	if ap == 1 && d == 1 {
		return t.routerHop(base|applianceOctet, ttl, quotedDst, true, proto)
	}
	rel := d - ap // position past the appliance
	if rel <= chain {
		return t.routerHop(s.interiors[rel-1], ttl, quotedDst, true, proto)
	}
	rel -= chain
	bl := 0
	if fl&blockBalanced != 0 {
		bl = 1
	}
	if bl == 1 && rel == 1 {
		pair := base | balancedOctetA
		if flow&1 == 1 {
			pair = base | balancedOctetB
		}
		return t.routerHop(pair, ttl, quotedDst, true, proto)
	}
	rel -= bl
	if exists && rel == 1 {
		return t.destHop(effDst, uint8(gwDepth+ap+chain+bl+1), ttl, quotedDst, proto)
	}
	if exists && rel > 1 {
		// Past the host: the probe already terminated there with a
		// larger-or-equal TTL; unreachable in practice because rel was
		// derived from ttl, but keep the invariant explicit.
		return t.destHop(effDst, uint8(gwDepth+ap+chain+bl+1), ttl, quotedDst, proto)
	}
	return Hop{Kind: HopNone, QuotedDst: quotedDst}
}

// insideStub resolves probes destined to an interior router: the path
// runs through the interior's own block appliance (if any) and the
// preceding interiors.
func (t *Topology) insideStub(s *stub, block, d int, ttl uint8, gwDepth int, flow uint32,
	quotedDst uint32, proto uint8, j int, in uint32, destDepth uint8) Hop {
	ap := 0
	if t.blockFlags[block]&blockAppliance != 0 {
		ap = 1
	}
	if ap == 1 && d == 1 {
		return t.routerHop((in&^0xff)|applianceOctet, ttl, quotedDst, true, proto)
	}
	rel := d - ap
	if rel <= j {
		return t.routerHop(s.interiors[rel-1], ttl, quotedDst, true, proto)
	}
	return t.destHop(in, destDepth, ttl, quotedDst, proto)
}

// blockChainLen is interiorChainLen gated on block occupancy: empty blocks
// have no interior routers configured toward them.
func (t *Topology) blockChainLen(s *stub, block int) int {
	if t.blockFlags[block]&blockOccupied == 0 {
		return 0
	}
	return t.interiorChainLen(s, block)
}

// inBlockExtras returns the number of appliance (0/1) and balanced-pair
// (0/1) hops on the in-block path of the given block.
func (t *Topology) inBlockExtras(block int) (ap, bl int) {
	fl := t.blockFlags[block]
	if fl&blockAppliance != 0 {
		ap = 1
	}
	if fl&blockBalanced != 0 {
		bl = 1
	}
	return
}

// stepsBeyondGateway returns the number of hops from the gateway to the
// destination.
func (t *Topology) stepsBeyondGateway(s *stub, block int, dst uint32) int {
	ap, bl := t.inBlockExtras(block)
	base := dst &^ 0xff
	if ap == 1 && dst == base|applianceOctet {
		return 1
	}
	chain := t.blockChainLen(s, block)
	if bl == 1 && (dst == base|balancedOctetA || dst == base|balancedOctetB) {
		return ap + chain + 1
	}
	for j, in := range s.interiors {
		if dst == in {
			return ap + j + 1
		}
	}
	return ap + chain + bl + 1
}

// routerHop builds the Hop for a TTL expiry at a router interface,
// accounting for persistent silence and for routers that answer UDP but
// not TCP probes ([16]).
func (t *Topology) routerHop(addr uint32, ttl uint8, quotedDst uint32, interior bool, proto uint8) Hop {
	var silent bool
	if interior {
		silent = t.silentInterior(addr)
	} else {
		silent = t.silentRouter(addr)
	}
	if !silent && proto == 6 {
		silent = t.chance(t.hash64(uint64(addr), tagTCPQuiet, 0), t.P.TCPQuietRouterProb)
	}
	kind := HopRouter
	if silent {
		kind = HopSilentRouter
	}
	return Hop{Kind: kind, Addr: addr, Depth: ttl, Residual: 1, QuotedDst: quotedDst}
}

// destHop builds the Hop for a probe reaching its destination at absolute
// depth. The probe survives past depth with any larger TTL; the quoted
// residual is ttl-depth+1.
func (t *Topology) destHop(addr uint32, depth, ttl uint8, quotedDst uint32, proto uint8) Hop {
	if ttl < depth {
		// Callers only invoke destHop when the probe actually arrives.
		panic("netsim: destHop with ttl < depth")
	}
	kind := t.destKind(addr, proto)
	return Hop{
		Kind:      kind,
		Addr:      addr,
		Depth:     depth,
		Residual:  ttl - depth + 1,
		QuotedDst: quotedDst,
	}
}

// destKind decides how a live destination answers the given probe type.
func (t *Topology) destKind(addr uint32, proto uint8) HopKind {
	if proto == 6 { // TCP: hosts may answer unsolicited ACKs with RST
		if t.chance(t.hash64(uint64(addr), tagTCPRst, 0), t.P.HostTCPRSTProb) {
			return HopDestTCP
		}
		return HopDestSilent
	}
	// UDP to a high port: port unreachable. Stub edge devices (gateways,
	// appliances) mostly drop it (firewalls); other routers answer with
	// RouterUnreachProb; live hosts always (their existence already folds
	// in responsiveness).
	if t.isEdgeDevice(addr) {
		if !t.chance(t.hash64(uint64(addr), tagRouterUnreach, 1), t.P.EdgeUnreachProb) {
			return HopDestSilent
		}
		return HopDestUDP
	}
	if t.isRouterAddr(addr) {
		if !t.chance(t.hash64(uint64(addr), tagRouterUnreach, 0), t.P.RouterUnreachProb) {
			return HopDestSilent
		}
	}
	return HopDestUDP
}

// isEdgeDevice reports whether addr is a stub gateway or a block edge
// appliance.
func (t *Topology) isEdgeDevice(addr uint32) bool {
	b, ok := t.U.BlockIndex(addr)
	if !ok {
		return false
	}
	s := &t.stubs[t.blockStub[b]]
	if s.routed && addr == s.gateway {
		return true
	}
	return t.blockFlags[b]&blockAppliance != 0 && addr&0xff == applianceOctet
}

// isRouterAddr reports whether addr is any router interface (infra, stub
// gateway, interior or block device).
func (t *Topology) isRouterAddr(addr uint32) bool {
	if addr >= infraBase {
		return true
	}
	b, ok := t.U.BlockIndex(addr)
	if !ok {
		return false
	}
	return t.isStubIface(&t.stubs[t.blockStub[b]], addr) || t.isBlockDevice(b, addr)
}

// PingResponsive reports whether addr answers ICMP echo — the signal the
// hitlist builder uses (§5.1). Edge devices answer reliably (which is
// exactly why the census settles on them); other routers answer unless
// silent; hosts answer with HostPingProb.
func (t *Topology) PingResponsive(addr uint32) bool {
	if addr >= infraBase {
		return !t.silentRouter(addr)
	}
	b, ok := t.U.BlockIndex(addr)
	if !ok {
		return false
	}
	if t.isEdgeDevice(addr) {
		return true
	}
	s := &t.stubs[t.blockStub[b]]
	if s.routed {
		for _, in := range s.interiors {
			if addr == in {
				return !t.silentInterior(addr)
			}
		}
	}
	if t.blockFlags[b]&blockBalanced != 0 &&
		(addr&0xff == balancedOctetA || addr&0xff == balancedOctetB) {
		return !t.silentInterior(addr)
	}
	if !t.HostExists(addr) {
		return false
	}
	return t.chance(t.hash64(uint64(addr), tagHostPing, 0), t.P.HostPingProb)
}

// DistanceNow returns the current hop distance of dst from the vantage
// point (the TTL at which a probe first reaches it), or 0 if dst has no
// complete route.
func (t *Topology) DistanceNow(dst uint32, now time.Duration) uint8 {
	block, ok := t.U.BlockIndex(dst)
	if !ok {
		return 0
	}
	s := &t.stubs[t.blockStub[block]]
	if !s.routed {
		return 0
	}
	pr := &t.providers[s.provider]
	rg := &t.regions[pr.region]
	base := len(t.core) + len(rg.path) + len(pr.path)
	if t.dynamicExtra(block, now) {
		base++
	}
	gw := base + 1
	if dst == s.gateway {
		return uint8(gw)
	}
	return uint8(gw + t.stepsBeyondGateway(s, block, dst))
}

// BlockOccupied reports whether block contains any live hosts.
func (t *Topology) BlockOccupied(block int) bool {
	return t.blockFlags[block]&blockOccupied != 0
}

// RouterAt returns the responsive router interface a probe to dst with
// the given TTL would hit using the default Paris-UDP flow (FlashRoute's
// checksum source port and the traceroute destination port), or ok=false
// if that hop is silent, the destination itself, or nonexistent. This is
// the complete reference topology the paper approximates with a Scamper
// scan for its Table 4 overprobing analysis.
func (t *Topology) RouterAt(dst uint32, ttl uint8, now time.Duration) (uint32, bool) {
	flow := flowHash(t.vantage, dst, addrChecksumPort(dst), 33434, 17)
	h := t.Resolve(dst, ttl, flow, now, 17)
	if h.Kind != HopRouter {
		return 0, false
	}
	return h.Addr, true
}

// addrChecksumPort mirrors probe.AddrChecksum without importing it (the
// Internet checksum of the address, folded, with 0 mapped to 0xffff).
func addrChecksumPort(addr uint32) uint16 {
	sum := (addr >> 16) + (addr & 0xffff)
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	cs := ^uint16(sum)
	if cs == 0 {
		cs = 0xffff
	}
	return cs
}

// StubOfBlock returns, for inspection tools and tests, the identity of the
// stub covering the block: its first block, size, and whether it is
// routed.
func (t *Topology) StubOfBlock(block int) (firstBlock, nBlocks int, routed bool) {
	s := &t.stubs[t.blockStub[block]]
	return int(s.firstBlock), int(s.nBlocks), s.routed
}

// GatewayOfBlock returns the gateway interface address of the stub routing
// the block, or 0 for unrouted blocks.
func (t *Topology) GatewayOfBlock(block int) uint32 {
	s := &t.stubs[t.blockStub[block]]
	if !s.routed {
		return 0
	}
	return s.gateway
}

// NumStubs returns the number of stub runs in the topology.
func (t *Topology) NumStubs() int { return len(t.stubs) }
