package netsim

import (
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/probe"
	"github.com/flashroute/flashroute/internal/simclock"
)

// TestResolveDistanceConsistency is the central topology invariant: for
// any in-universe destination, walking TTLs 1..32 must terminate exactly
// where DistanceNow says the destination lives — no probe may reach the
// destination earlier, and the first terminal TTL must equal the
// distance (excluding TTL-resetting middlebox stubs, which exist to break
// exactly this).
func TestResolveDistanceConsistency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		topo := testTopo(t, 8192, seed)
		for blk := 0; blk < 8192; blk += 7 {
			s := &topo.stubs[topo.blockStub[blk]]
			if s.midReset {
				continue
			}
			for _, oct := range []uint32{1, 77, 252} {
				dst := topo.U.BlockAddr(blk) | oct
				d := topo.DistanceNow(dst, 0)
				if d == 0 {
					continue
				}
				if !topo.HostExists(dst) {
					continue
				}
				firstTerminal := uint8(0)
				for ttl := uint8(1); ttl <= 32; ttl++ {
					h := topo.Resolve(dst, ttl, 3, 0, probe.ProtoUDP)
					if h.Kind.Terminal() {
						if firstTerminal == 0 {
							firstTerminal = ttl
						}
					} else if firstTerminal != 0 {
						t.Fatalf("seed=%d blk=%d oct=%d: non-terminal at ttl %d after terminal at %d",
							seed, blk, oct, ttl, firstTerminal)
					}
				}
				if firstTerminal != d {
					t.Fatalf("seed=%d blk=%d oct=%d: first terminal at %d, DistanceNow says %d",
						seed, blk, oct, firstTerminal, d)
				}
			}
		}
	}
}

// TestResolveResidualInvariant: for every destination response, initial
// TTL minus residual plus one must equal the destination's distance
// (again excluding reset middleboxes).
func TestResolveResidualInvariant(t *testing.T) {
	topo := testTopo(t, 8192, 11)
	checked := 0
	for blk := 0; blk < 8192; blk++ {
		s := &topo.stubs[topo.blockStub[blk]]
		if s.midReset || s.midRewrite {
			continue
		}
		dst := topo.U.BlockAddr(blk) | 1
		d := topo.DistanceNow(dst, 0)
		if d == 0 || !topo.HostExists(dst) {
			continue
		}
		for ttl := d; ttl <= 32; ttl += 5 {
			h := topo.Resolve(dst, ttl, 1, 0, probe.ProtoUDP)
			if !h.Kind.Terminal() {
				t.Fatalf("blk=%d ttl=%d: not terminal beyond distance %d", blk, ttl, d)
			}
			if got := ttl - h.Residual + 1; got != d {
				t.Fatalf("blk=%d ttl=%d: residual %d implies distance %d, want %d",
					blk, ttl, h.Residual, got, d)
			}
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("checked only %d gateways", checked)
	}
}

// TestQuotedDstAlwaysSameBlock: even rewritten destinations stay within
// the probed /24 (the rewrite flips the low host-octet bit only), so
// BlockOf-based attribution can never cross blocks.
func TestQuotedDstAlwaysSameBlock(t *testing.T) {
	topo := testTopo(t, 32768, 5)
	for blk := 0; blk < 32768; blk += 3 {
		dst := topo.U.BlockAddr(blk) | 130
		for _, ttl := range []uint8{8, 16, 24, 32} {
			h := topo.Resolve(dst, ttl, 7, 0, probe.ProtoUDP)
			if h.QuotedDst == 0 {
				continue
			}
			if h.QuotedDst>>8 != dst>>8 {
				t.Fatalf("blk=%d: quoted dst %#x left the block of %#x", blk, h.QuotedDst, dst)
			}
		}
	}
}

// TestRouterAtMatchesResolve: the Table 4 reference mapper must agree
// with direct resolution under the default flow.
func TestRouterAtMatchesResolve(t *testing.T) {
	topo := testTopo(t, 4096, 8)
	for blk := 0; blk < 4096; blk += 5 {
		dst := topo.U.BlockAddr(blk) | 9
		for ttl := uint8(1); ttl <= 20; ttl += 3 {
			addr, ok := topo.RouterAt(dst, ttl, 0)
			if ok && addr == 0 {
				t.Fatal("RouterAt returned ok with zero addr")
			}
			if ok {
				flow := flowHash(topo.Vantage(), dst, addrChecksumPort(dst), 33434, 17)
				h := topo.Resolve(dst, ttl, flow, 0, probe.ProtoUDP)
				if h.Kind != HopRouter || h.Addr != addr {
					t.Fatalf("RouterAt %#x disagrees with Resolve %+v", addr, h)
				}
			}
		}
	}
}

// TestRateLimitRecoversNextSecond: suppression in one window must not
// leak into the next (fixed-window semantics of the Table 4 model).
func TestRateLimitRecoversNextSecond(t *testing.T) {
	u := NewSyntheticUniverse(16)
	p := DefaultParams(1)
	p.ICMPRateLimitPPS = 3
	topo := NewTopology(u, p)
	n := New(topo, simclock.NewVirtual(time.Unix(0, 0)))
	addr := topo.core[0]
	for sec := 0; sec < 5; sec++ {
		allowed := 0
		for i := 0; i < 10; i++ {
			if n.allowICMP(addr, time.Duration(sec)*time.Second+time.Millisecond) {
				allowed++
			}
		}
		if allowed != 3 {
			t.Fatalf("second %d: allowed=%d", sec, allowed)
		}
	}
}
