package simnet

import (
	"sync"
	"time"
)

// Impairments models the packet-level pathologies of probing the live
// Internet, which the paper's measurement engine has to survive but a
// perfect simulator never exercises: probes and ICMP responses are lost
// (independently and in bursts), duplicated, reordered and jittered.
//
// The zero value is the perfect network: every packet delivered exactly
// once, in order, with only the topology's modeled RTT — bit-identical to
// the simulator's behavior before impairments existed.
//
// All impairment decisions are drawn from a deterministic generator
// seeded by the topology seed, so a scan over an impaired network is as
// reproducible as one over a perfect network: same seed, same
// Impairments, same (single-sender) probe sequence ⇒ same losses, same
// duplicates, same delivery order. With multiple concurrent senders the
// draw order follows the packet interleaving, so runs are race-safe but
// only statistically reproducible — the same trade multi-sender scans
// already make for probe interleaving.
type Impairments struct {
	// LossProb is the independent per-packet loss probability, applied
	// symmetrically: an outbound probe is lost before it reaches any hop
	// (so it consumes no ICMP rate budget — a silent hop from the
	// scanner's view), an inbound response is lost after the responder
	// sent it (the budget is spent, the scanner still sees nothing).
	LossProb float64

	// Gilbert–Elliott burst loss: a two-state Markov chain advanced once
	// per packet. In the good state only LossProb applies; in the bad
	// state losses combine to 1-(1-LossProb)(1-GEBadLoss). GEGoodToBad
	// and GEBadToGood are the per-packet transition probabilities; the
	// stationary bad fraction is GEGoodToBad/(GEGoodToBad+GEBadToGood)
	// and the mean burst length 1/GEBadToGood packets.
	GEGoodToBad float64
	GEBadToGood float64
	GEBadLoss   float64

	// DupProb is the probability a surviving packet is duplicated once.
	// A duplicated probe traverses the network twice (two responses, two
	// rate-limit debits); a duplicated response is delivered to the
	// scanner twice.
	DupProb float64

	// ReorderProb delays a response by an extra uniform [0, ReorderWindow)
	// on top of its modeled RTT. Because the connection inbox delivers in
	// deliverAt order, a delayed packet is overtaken by up to
	// ReorderWindow's worth of later traffic — bounded reordering: no
	// packet is ever reordered past more than ReorderWindow of the
	// stream.
	ReorderProb   float64
	ReorderWindow time.Duration

	// ExtraJitter adds uniform [0, ExtraJitter) latency to every
	// delivered response, independent of reordering (the topology's
	// JitterRTT models path RTT variance; this models measurement-host
	// and queueing noise).
	ExtraJitter time.Duration

	// Faults are deterministic transport-fault windows: intervals of
	// network time during which the vantage point's connection itself
	// misbehaves — writes fail transiently, the reader stalls, or the
	// whole conn "flaps" (see FaultKind). Unlike the probabilistic
	// impairments above, fault windows are purely time-driven and draw
	// nothing from the impairment RNG stream, so adding a fault window
	// never perturbs which packets the probabilistic layer drops.
	Faults []FaultWindow
}

// FaultKind classifies one transport-fault window.
type FaultKind uint8

const (
	// FaultWriteError makes WritePacket fail with a transient
	// (Temporary) error for the window's duration; the probe is not
	// injected and not counted as sent.
	FaultWriteError FaultKind = iota
	// FaultReadStall delays every response whose delivery falls inside
	// the window until the window ends — the receiver sees a silent gap
	// followed by a burst, as when a socket's read side wedges.
	FaultReadStall
	// FaultFlap models the connection dropping entirely: writes fail
	// transiently AND responses that would be delivered during the
	// window are lost.
	FaultFlap
)

// FaultWindow is one fault interval, relative to the network epoch. A
// window applies to every connection by default; setting Scoped restricts
// it to connections entering the topology at exactly Vantage — the
// deterministic "this worker's link died" primitive cluster chaos tests
// are built on. (Scoped is a separate flag because vantage 0 is a real
// vantage: the zero value must keep meaning "unscoped".)
type FaultWindow struct {
	Start    time.Duration
	Duration time.Duration
	Kind     FaultKind
	Scoped   bool
	Vantage  int
}

// contains reports whether t falls inside the window.
func (f *FaultWindow) contains(t time.Duration) bool {
	return t >= f.Start && t < f.Start+f.Duration
}

// applies reports whether the window concerns a connection at vantage v.
func (f *FaultWindow) applies(v int) bool {
	return !f.Scoped || f.Vantage == v
}

// HasFaults reports whether any fault windows are configured. Kept
// separate from Enabled so that fault-only configurations do not create
// an ImpairState (whose draws would change probabilistic behavior).
func (im *Impairments) HasFaults() bool { return len(im.Faults) > 0 }

// WriteFault reports whether a write at network time now, from a
// connection at the given vantage, fails transiently (write-error and
// flap windows; unscoped windows hit every vantage).
func (im *Impairments) WriteFault(now time.Duration, vantage int) bool {
	for i := range im.Faults {
		f := &im.Faults[i]
		if (f.Kind == FaultWriteError || f.Kind == FaultFlap) &&
			f.applies(vantage) && f.contains(now) {
			return true
		}
	}
	return false
}

// DeliveryFault adjusts a response's delivery time at for the fault
// windows applying to the given vantage: a read stall pushes delivery to
// the end of its window, a flap drops the response. Windows are checked
// in order; the first that applies wins.
func (im *Impairments) DeliveryFault(at time.Duration, vantage int) (adjusted time.Duration, dropped bool) {
	for i := range im.Faults {
		f := &im.Faults[i]
		if !f.applies(vantage) || !f.contains(at) {
			continue
		}
		switch f.Kind {
		case FaultReadStall:
			return f.Start + f.Duration, false
		case FaultFlap:
			return at, true
		}
	}
	return at, false
}

// TransientError is the transport error fault windows surface from
// WritePacket: it reports Temporary() == true, signaling the sender that
// a retry with backoff may succeed.
type TransientError struct {
	Op string
}

func (e *TransientError) Error() string {
	return "simnet: transient " + e.Op + " fault"
}

// Temporary marks the error retryable (the net.Error convention the
// engine's send path keys off).
func (e *TransientError) Temporary() bool { return true }

// Enabled reports whether any impairment is active. When false the
// network takes the exact pre-impairment fast path: no draws, no locks.
func (im *Impairments) Enabled() bool {
	return im.LossProb > 0 || im.GEGoodToBad > 0 || im.DupProb > 0 ||
		(im.ReorderProb > 0 && im.ReorderWindow > 0) || im.ExtraJitter > 0
}

// impairSeedTag domain-separates the impairment stream from every other
// consumer of the topology seed.
const impairSeedTag = 0x1e55bad0fade0ff1

// ImpairState is the per-connection impairment randomness: a splitmix64
// stream plus the Gilbert–Elliott channel state. Guarded by its own
// mutex so K concurrent senders draw race-safely; with one sender the
// draw sequence is a pure function of the packet sequence.
type ImpairState struct {
	mu  sync.Mutex
	rng uint64
	bad bool // Gilbert–Elliott channel state
}

// NewImpairState seeds the impairment stream for one connection.
func NewImpairState(seed int64) *ImpairState {
	return &ImpairState{rng: uint64(seed) ^ impairSeedTag}
}

// next advances the splitmix64 stream.
func (st *ImpairState) next() uint64 {
	st.rng += 0x9e3779b97f4a7c15
	z := st.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below draws one uniform variate and reports whether it fell under p.
// p <= 0 still consumes a draw, keeping the stream aligned across
// configurations that differ only in probabilities.
func (st *ImpairState) below(p float64) bool {
	return float64(st.next()>>11)/(1<<53) < p
}

// within draws a uniform duration in [0, d).
func (st *ImpairState) within(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(st.next() % uint64(d))
}

// step advances the Gilbert–Elliott chain one packet and draws that
// packet's loss. Caller holds st.mu.
func (st *ImpairState) step(im *Impairments) bool {
	if st.bad {
		if st.below(im.GEBadToGood) {
			st.bad = false
		}
	} else if im.GEGoodToBad > 0 && st.below(im.GEGoodToBad) {
		st.bad = true
	}
	p := im.LossProb
	if st.bad {
		p = 1 - (1-p)*(1-im.GEBadLoss)
	}
	if p <= 0 {
		return false
	}
	return st.below(p)
}

// ProbeFate draws the outbound fate of one probe: dropped entirely, or
// delivered 1 or 2 times (duplication in the forward direction).
func (st *ImpairState) ProbeFate(im *Impairments) (copies int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.step(im) {
		return 0
	}
	if im.DupProb > 0 && st.below(im.DupProb) {
		return 2
	}
	return 1
}

// ResponseFate draws the inbound fate of one scheduled response: how many
// copies reach the scanner (0..2) and each copy's extra delay from
// reordering and jitter.
func (st *ImpairState) ResponseFate(im *Impairments) (copies int, delay [2]time.Duration, reordered int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.step(im) {
		return 0, delay, 0
	}
	copies = 1
	if im.DupProb > 0 && st.below(im.DupProb) {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		if im.ReorderProb > 0 && im.ReorderWindow > 0 && st.below(im.ReorderProb) {
			delay[i] += st.within(im.ReorderWindow)
			reordered++
		}
		if im.ExtraJitter > 0 {
			delay[i] += st.within(im.ExtraJitter)
		}
	}
	return copies, delay, reordered
}
