package simnet

import (
	"sync"
	"time"
)

// bucketShards is the number of independently locked rate-limit bucket
// maps; a power of two so the shard pick is a mask.
const bucketShards = 256

// Buckets is a per-address fixed-window rate limiter (the per-interface
// ICMP generation limit of real routers), sharded so concurrent senders
// do not contend on one global mutex for every probe. The shard function
// is injected because address distributions are family-specific: IPv4
// responder populations are biased in their low octet, IPv6 ones in
// their interface identifier.
type Buckets[A comparable] struct {
	shardOf func(A) uint32
	shards  [bucketShards]bucketShard[A]
}

type bucketShard[A comparable] struct {
	mu sync.Mutex
	m  map[A]*bucket
	// padding to keep neighbouring shards off one cache line under
	// concurrent senders.
	_ [24]byte
}

type bucket struct {
	second int64
	count  int
}

// NewBuckets creates the limiter; shardOf spreads addresses over the 256
// shards (only the low 8 bits of its result are used).
func NewBuckets[A comparable](shardOf func(A) uint32) *Buckets[A] {
	bk := &Buckets[A]{shardOf: shardOf}
	for i := range bk.shards {
		bk.shards[i].m = make(map[A]*bucket)
	}
	return bk
}

// Allow consumes one unit of the address's budget for the current
// one-second window and reports whether the response may be sent
// (fixed-window limit per address). limit <= 0 disables limiting.
func (bk *Buckets[A]) Allow(addr A, limit int, now time.Duration) bool {
	if limit <= 0 {
		return true
	}
	sec := int64(now / time.Second)
	sh := &bk.shards[bk.shardOf(addr)&(bucketShards-1)]
	sh.mu.Lock()
	b := sh.m[addr]
	if b == nil {
		b = &bucket{second: -1}
		sh.m[addr] = b
	}
	if b.second != sec {
		b.second = sec
		b.count = 0
	}
	b.count++
	ok := b.count <= limit
	sh.mu.Unlock()
	return ok
}
